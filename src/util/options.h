// A small command-line flag parser for the bench harnesses and examples.
//
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--no-name` forms. Unknown flags are an error (returned, not thrown).
#ifndef CHAOS_UTIL_OPTIONS_H_
#define CHAOS_UTIL_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace chaos {

class Options {
 public:
  // Registration. `help` is shown by PrintHelp(). Registration order is kept.
  void AddInt(const std::string& name, int64_t default_value, const std::string& help);
  void AddDouble(const std::string& name, double default_value, const std::string& help);
  void AddBool(const std::string& name, bool default_value, const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  // Parses argv (excluding argv[0]); returns error text or nullopt on
  // success. A `--help` flag is handled by the caller via help_requested().
  std::optional<std::string> Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  void PrintHelp(const char* program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  const Flag& Find(const std::string& name, Type type) const;
  std::optional<std::string> SetFromString(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace chaos

#endif  // CHAOS_UTIL_OPTIONS_H_
