// Recovery (extension of Fig. 13, §6.6): a fault-injected machine failure
// mid-run, recovered automatically from the last committed checkpoint by
// the recovery driver (core/recovery.h), on a same-size replacement cluster
// and on the N-1 survivors with repartitioned vertex ranges.
//
// Sweeps the checkpoint interval and reports time-to-recover (takeover
// until the crashed superstep is re-executed), lost-work supersteps and
// end-to-end runtime. The paper's claim closed here: checkpointing is cheap
// *because* recovery is a restart from the last committed checkpoint — so
// the recovered run must produce the same results as a fault-free one.
//
// The run fails (exit 1) — making `ok` in the chaos-bench JSON an
// executable record of the recovery claim — if any recovered run's results
// differ from the fault-free run's (BFS levels must match bitwise; PageRank
// ranks to 1e-4 relative, since re-executed gathers fold float updates in a
// different arrival order), or if the failure was not detected, or if the
// every-superstep-checkpoint run fails to resume from a checkpoint.
#include <cmath>

#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

namespace {

bool ValuesMatch(const std::string& algo, const std::vector<double>& truth,
                 const std::vector<double>& got) {
  if (truth.size() != got.size()) {
    return false;
  }
  for (size_t v = 0; v < truth.size(); ++v) {
    if (algo == "pagerank") {
      // Float ranks: gather order differs between the original and the
      // re-executed supersteps, so only last-ulp rounding may drift.
      if (std::abs(got[v] - truth[v]) > 1e-4 * (1.0 + std::abs(truth[v]))) {
        return false;
      }
    } else if (got[v] != truth[v]) {  // bfs levels: bitwise
      return false;
    }
  }
  return true;
}

}  // namespace

CHAOS_BENCH_MAIN(fig_recovery, "Recovery: machine failure vs checkpoint interval") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (2^scale vertices)");
  opt.AddInt("machines", 4, "simulated machines");
  opt.AddInt("victim", 1, "machine that fails mid-run");
  opt.AddInt("iterations", 8, "pagerank iterations");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto victim = static_cast<MachineId>(opt.GetInt("victim"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  if (victim < 0 || victim >= machines || machines < 2) {
    std::fprintf(stderr, "--victim must be in [0, %d) and --machines >= 2\n", machines);
    return 1;
  }
  AlgoParams params;
  params.iterations = static_cast<uint32_t>(opt.GetInt("iterations"));

  const std::vector<std::string> algos = {"bfs", "pagerank"};
  // Interval sweep plus the N-1 rescale case at interval 1.
  struct Case {
    uint32_t interval;
    bool rescale;
  };
  const std::vector<Case> cases = {{1, false}, {2, false}, {4, false}, {1, true}};

  // Wave 1: fault-free ground truth per algorithm — the recovery points
  // need its runtime to place the kill, so it must join first.
  std::vector<std::shared_ptr<InputGraph>> graphs;
  Sweep<AlgoResult> truth_sweep;
  for (const std::string& algo : algos) {
    auto g = std::make_shared<InputGraph>(PrepareInput(algo, BenchRmat(scale, false, seed)));
    graphs.push_back(g);
    truth_sweep.Add(
        [algo, g, machines, seed, params] {
          return RunJob(MakeJob(algo, *g, BenchClusterConfig(*g, machines, seed), params));
        });
  }
  const std::vector<AlgoResult> truths = truth_sweep.Run();

  // Wave 2: every (algorithm x recovery case) as an independent point.
  struct RecoveryPoint {
    AlgoResult result;
    RecoveryReport report;
  };
  Sweep<RecoveryPoint> sweep;
  for (size_t a = 0; a < algos.size(); ++a) {
    const std::string& algo = algos[a];
    const auto g = graphs[a];
    const AlgoResult& truth = truths[a];
    // Kill ~60% into the post-preprocessing computation: late enough that
    // checkpoints have committed, early enough that work remains to redo.
    const TimeNs kill_at =
        truth.metrics.preprocess_time +
        static_cast<TimeNs>(0.6 * static_cast<double>(truth.metrics.total_time -
                                                      truth.metrics.preprocess_time));
    for (const Case c : cases) {
      sweep.Add([algo, g, machines, seed, params, victim, kill_at, c] {
        ClusterConfig cfg = BenchClusterConfig(*g, machines, seed);
        cfg.checkpoint_interval = c.interval;
        cfg.faults = FaultSchedule::MachineCrash(victim, kill_at);
        RecoveryOptions recovery;
        if (c.rescale) {
          recovery.replacement_machines = machines - 1;
        }
        JobSpec spec = MakeJob(algo, *g, cfg, params);
        spec.recover = true;
        spec.recovery = recovery;
        JobResult run = RunJob(spec);
        RecoveryPoint point;
        point.report = run.recovery;
        point.result = std::move(static_cast<AlgoResult&>(run));
        return point;
      });
    }
  }
  const std::vector<RecoveryPoint> points = sweep.Run();

  std::printf("== Recovery: machine %d fails mid-run, %d machines, RMAT-%u ==\n", victim,
              machines, scale);
  PrintHeader({"algorithm", "ckpt-every", "rescale", "fault-free s", "end-to-end s",
               "recover s", "lost ss", "match"});
  bool ok = true;
  size_t idx = 0;
  for (size_t a = 0; a < algos.size(); ++a) {
    const std::string& algo = algos[a];
    const AlgoResult& truth = truths[a];
    const double truth_s = truth.metrics.total_seconds();
    RecordMetric("fig_recovery." + algo + ".fault_free_sim_s", truth_s);
    for (const Case c : cases) {
      const RecoveryPoint& point = points[idx++];
      const RecoveryReport& report = point.report;
      const bool match = ValuesMatch(algo, truth.values, point.result.values);
      PrintCell(algo);
      PrintCell(Fixed(c.interval, 0));
      PrintCell(c.rescale ? "N-1" : "no");
      PrintCell(truth_s, "%.4f");
      PrintCell(ToSeconds(report.end_to_end_time), "%.4f");
      PrintCell(ToSeconds(report.time_to_recover), "%.4f");
      PrintCell(Fixed(static_cast<double>(report.lost_work_supersteps), 0));
      PrintCell(match ? "yes" : "NO");
      EndRow();
      const std::string prefix = "fig_recovery." + algo + ".ckpt" +
                                 std::to_string(c.interval) + (c.rescale ? ".rescale" : "");
      RecordMetric(prefix + ".end_to_end_sim_s", ToSeconds(report.end_to_end_time));
      RecordMetric(prefix + ".time_to_recover_sim_s", ToSeconds(report.time_to_recover));
      RecordMetric(prefix + ".lost_supersteps",
                   static_cast<double>(report.lost_work_supersteps));
      RecordMetric(prefix + ".match", match ? 1.0 : 0.0);
      auto fail = [&](const char* why) {
        std::printf("FAIL [%s, ckpt-every=%u%s]: %s\n", algo.c_str(), c.interval,
                    c.rescale ? ", N-1" : "", why);
        ok = false;
      };
      if (!report.crash_detected) {
        fail("the machine failure never fired (run finished before the kill time)");
      } else if (!match) {
        fail("recovered results diverged from the fault-free run");
      }
      // With a checkpoint at every superstep the failure must be recovered
      // from a checkpoint, and it must cost at most a superstep of lost work
      // plus re-provisioning — never a from-scratch restart.
      if (c.interval == 1 && report.crash_detected && !report.recovered_from_checkpoint) {
        fail("expected a checkpoint resume, got a from-scratch restart");
      }
      if (c.interval == 1 && report.lost_work_supersteps > 1) {
        fail("every-superstep checkpoints lost more than one superstep of work");
      }
    }
  }
  if (!ok) {
    std::printf("\nFAIL: a recovery invariant was violated (see FAIL lines above)\n");
    return 1;
  }
  std::printf("\nrecovered runs match the fault-free results; shorter checkpoint "
              "intervals bound the lost work\n");
  return 0;
}
