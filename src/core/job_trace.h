// Synthetic arrival traces for the serving layer: deterministic generators
// for the load shapes real clusters see — uniform background load, bursty
// batch submission, and a diurnal (sinusoidal-rate) day cycle.
//
// A trace entry carries only scheduling metadata (arrival, priority) plus a
// per-entry seed derived as DeriveSeed(trace_seed, index); the consumer
// (bench/bench_serving.cc, examples/chaos_run.cpp --trace-preset) maps each
// entry onto a concrete JobSpec, drawing algorithm/graph/shape choices from
// that seed so the whole trace is a pure function of (options, seed).
#ifndef CHAOS_CORE_JOB_TRACE_H_
#define CHAOS_CORE_JOB_TRACE_H_

#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace chaos {

enum class TracePreset { kUniform, kBursty, kDiurnal };

const char* TracePresetName(TracePreset preset);
std::optional<TracePreset> TracePresetByName(const std::string& name);

struct TraceOptions {
  TracePreset preset = TracePreset::kBursty;
  int num_jobs = 12;
  // Arrivals land in [0, horizon).
  TimeNs horizon = 60'000'000'000;  // 60 s
  uint64_t seed = 1;
  // Two-class priority mix: each entry is high with this probability.
  double high_fraction = 0.25;
  int high_priority = 2;
  int low_priority = 0;
};

struct TraceEntry {
  TimeNs arrival = 0;
  int priority = 0;
  uint64_t seed = 0;  // DeriveSeed(options.seed, submission index)
};

// Generates `options.num_jobs` entries sorted by (arrival, index). Entry
// seeds are assigned by submission index *after* the sort, so entry i's
// derived choices are stable for a given (options, seed) pair.
std::vector<TraceEntry> GenerateTrace(const TraceOptions& options);

}  // namespace chaos

#endif  // CHAOS_CORE_JOB_TRACE_H_
