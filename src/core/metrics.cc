#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/stats.h"

namespace chaos {

const char* BucketName(Bucket b) {
  switch (b) {
    case Bucket::kGpMaster:
      return "gp,master==me";
    case Bucket::kGpSteal:
      return "gp,master!=me";
    case Bucket::kCopy:
      return "copy";
    case Bucket::kMerge:
      return "merge";
    case Bucket::kMergeWait:
      return "merge wait";
    case Bucket::kBarrier:
      return "barrier";
    case Bucket::kPreprocess:
      return "preprocess";
    case Bucket::kCheckpoint:
      return "checkpoint";
    case Bucket::kMutate:
      return "mutate";
    case Bucket::kNumBuckets:
      break;
  }
  return "?";
}

TimeNs MachineMetrics::TotalTracked() const {
  TimeNs total = 0;
  for (const TimeNs t : buckets) {
    total += t;
  }
  return total;
}

uint64_t RunMetrics::StorageBytesMoved() const {
  uint64_t total = SpillBytesMoved();
  for (const DeviceMetrics& d : devices) {
    total += d.bytes_read + d.bytes_written;
  }
  return total;
}

uint64_t RunMetrics::SpillBytesMoved() const {
  uint64_t total = 0;
  for (const PoolMetrics& p : pools) {
    total += p.spill_out_bytes + p.spill_in_bytes;
  }
  return total;
}

uint64_t RunMetrics::PeakMemoryBytes() const {
  uint64_t peak = 0;
  for (const PoolMetrics& p : pools) {
    peak = std::max(peak, p.peak_bytes);
  }
  return peak;
}

double RunMetrics::AggregateStorageBandwidth() const {
  if (total_time <= 0) {
    return 0.0;
  }
  return static_cast<double>(StorageBytesMoved()) / ToSeconds(total_time);
}

double RunMetrics::MeanDeviceUtilization() const {
  if (devices.empty() || total_time <= 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (const DeviceMetrics& d : devices) {
    sum += static_cast<double>(d.busy) / static_cast<double>(total_time);
  }
  return sum / static_cast<double>(devices.size());
}

TimeNs RunMetrics::MaxBucket(Bucket b) const {
  TimeNs best = 0;
  for (const MachineMetrics& m : machines) {
    best = std::max(best, m.bucket(b));
  }
  return best;
}

TimeNs RunMetrics::SumBucket(Bucket b) const {
  TimeNs total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.bucket(b);
  }
  return total;
}

double RunMetrics::BucketFraction(Bucket b) const {
  TimeNs tracked = 0;
  for (const MachineMetrics& m : machines) {
    tracked += m.TotalTracked();
  }
  if (tracked <= 0) {
    return 0.0;
  }
  return static_cast<double>(SumBucket(b)) / static_cast<double>(tracked);
}

uint64_t RunMetrics::StealsDuringFault(const FaultRecord& r) const {
  if (r.applied_at < 0) {
    return 0;  // the run ended before the event fired
  }
  const uint64_t before = r.at_apply.proposals_accepted;
  if (r.cleared_at >= 0) {
    return r.at_clear.proposals_accepted - before;
  }
  // Still active at end of run: compare against the final counters.
  const auto m = static_cast<size_t>(r.event.machine);
  if (m >= machines.size()) {
    return 0;
  }
  return machines[m].proposals_accepted - before;
}

std::vector<TimeNs> RunMetrics::SuperstepDurations() const {
  std::vector<TimeNs> out;
  out.reserve(superstep_end_times.size());
  TimeNs prev = preprocess_time;
  for (const TimeNs t : superstep_end_times) {
    out.push_back(t - prev);
    prev = t;
  }
  return out;
}

TimeNs RunMetrics::SuperstepTail(double q) const {
  std::vector<TimeNs> d = SuperstepDurations();
  if (d.empty()) {
    return 0;
  }
  std::sort(d.begin(), d.end());
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(d.size())));
  rank = std::min(std::max<size_t>(rank, 1), d.size());
  return d[rank - 1];
}

uint64_t RunMetrics::StealProposalsSent() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.steal_proposals_sent;
  }
  return total;
}

uint64_t RunMetrics::StealRequestsDeclined() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.steal_requests_declined;
  }
  return total;
}

uint64_t RunMetrics::StealBackoffs() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.steal_backoffs;
  }
  return total;
}

uint64_t RunMetrics::PartitionsGranted() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.partitions_granted;
  }
  return total;
}

uint64_t RunMetrics::StolenChunks() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.stolen_chunks;
  }
  return total;
}

uint64_t RunMetrics::UpdateWireBytesSaved() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.update_wire_bytes_saved;
  }
  return total;
}

uint64_t RunMetrics::UpdateChunksPacked() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.update_chunks_packed;
  }
  return total;
}

uint64_t RunMetrics::StealProposalsCombined() const {
  uint64_t total = 0;
  for (const MachineMetrics& m : machines) {
    total += m.steal_proposals_combined;
  }
  return total;
}

double RunMetrics::VictimMissRate() const {
  const uint64_t sent = StealProposalsSent();
  if (sent == 0) {
    return 0.0;
  }
  uint64_t misses = 0;
  for (const MachineMetrics& m : machines) {
    misses += m.victim_misses;
  }
  return static_cast<double>(misses) / static_cast<double>(sent);
}

uint64_t RunMetrics::MutationEdgesApplied() const {
  uint64_t total = 0;
  for (const MutationEpochRecord& e : mutation_epochs) {
    total += e.edges_inserted + e.edges_deleted;
  }
  return total;
}

uint64_t RunMetrics::MutationFrontierTotal() const {
  uint64_t total = 0;
  for (const MutationEpochRecord& e : mutation_epochs) {
    total += e.frontier;
  }
  return total;
}

uint64_t RunMetrics::MutationResetsTotal() const {
  uint64_t total = 0;
  for (const MutationEpochRecord& e : mutation_epochs) {
    total += e.resets;
  }
  return total;
}

std::string RunMetrics::Summary() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "runtime=%s preprocess=%s supersteps=%llu io=%s agg_bw=%s util=%.1f%% net=%s\n",
                FormatSeconds(total_seconds()).c_str(),
                FormatSeconds(ToSeconds(preprocess_time)).c_str(),
                static_cast<unsigned long long>(supersteps),
                FormatBytes(StorageBytesMoved()).c_str(),
                FormatBandwidth(AggregateStorageBandwidth()).c_str(),
                100.0 * MeanDeviceUtilization(), FormatBytes(network_bytes).c_str());
  out += line;
  if (SpillBytesMoved() > 0) {
    std::snprintf(line, sizeof(line), "  memory: peak=%s spill=%s (budget %s/machine)\n",
                  FormatBytes(PeakMemoryBytes()).c_str(),
                  FormatBytes(SpillBytesMoved()).c_str(),
                  pools.empty() ? "?" : FormatBytes(pools.front().budget_bytes).c_str());
    out += line;
  }
  for (int b = 0; b < static_cast<int>(Bucket::kNumBuckets); ++b) {
    std::snprintf(line, sizeof(line), "  %-14s %6.2f%%\n",
                  BucketName(static_cast<Bucket>(b)),
                  100.0 * BucketFraction(static_cast<Bucket>(b)));
    out += line;
  }
  if (StealProposalsSent() > 0) {
    std::snprintf(line, sizeof(line),
                  "  steal: sent=%llu declined=%llu granted=%llu chunks=%llu "
                  "backoffs=%llu miss=%.1f%%\n",
                  static_cast<unsigned long long>(StealProposalsSent()),
                  static_cast<unsigned long long>(StealRequestsDeclined()),
                  static_cast<unsigned long long>(PartitionsGranted()),
                  static_cast<unsigned long long>(StolenChunks()),
                  static_cast<unsigned long long>(StealBackoffs()),
                  100.0 * VictimMissRate());
    out += line;
  }
  if (UpdateChunksPacked() > 0 || StealProposalsCombined() > 0) {
    std::snprintf(line, sizeof(line),
                  "  combine: packed_chunks=%llu wire_saved=%s proposals_merged=%llu\n",
                  static_cast<unsigned long long>(UpdateChunksPacked()),
                  FormatBytes(UpdateWireBytesSaved()).c_str(),
                  static_cast<unsigned long long>(StealProposalsCombined()));
    out += line;
  }
  if (!mutation_epochs.empty()) {
    std::snprintf(line, sizeof(line),
                  "  mutations: epochs=%llu edges_applied=%llu frontier=%llu resets=%llu\n",
                  static_cast<unsigned long long>(mutation_epochs.size()),
                  static_cast<unsigned long long>(MutationEdgesApplied()),
                  static_cast<unsigned long long>(MutationFrontierTotal()),
                  static_cast<unsigned long long>(MutationResetsTotal()));
    out += line;
  }
  if (recovered) {
    std::snprintf(line, sizeof(line),
                  "  recovered: lost_supersteps=%llu time_to_recover=%s crashed_run=%s\n",
                  static_cast<unsigned long long>(lost_work_supersteps),
                  FormatSeconds(ToSeconds(time_to_recover)).c_str(),
                  FormatSeconds(ToSeconds(crashed_run_time)).c_str());
    out += line;
  }
  for (const FaultRecord& r : faults) {
    if (r.applied_at < 0) {
      std::snprintf(line, sizeof(line), "  fault m%d %s x%.2f: not reached\n",
                    r.event.machine, FaultTargetName(r.event.target), r.event.factor);
    } else if (r.event.kind == FaultKind::kMachineCrash) {
      std::snprintf(line, sizeof(line), "  fault m%d crashed: at=%s (fail-stop)\n",
                    r.event.machine, FormatSeconds(ToSeconds(r.applied_at)).c_str());
    } else {
      std::snprintf(line, sizeof(line),
                    "  fault m%d %s x%.2f: at=%s %s victim_steals=%llu\n", r.event.machine,
                    FaultTargetName(r.event.target), r.event.factor,
                    FormatSeconds(ToSeconds(r.applied_at)).c_str(),
                    r.cleared_at >= 0
                        ? ("cleared=" + FormatSeconds(ToSeconds(r.cleared_at))).c_str()
                        : "permanent",
                    static_cast<unsigned long long>(StealsDuringFault(r)));
    }
    out += line;
  }
  return out;
}

}  // namespace chaos
