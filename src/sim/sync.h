// Coroutine synchronization primitives for the simulator: condition events,
// queues, semaphores, barriers, latches and task groups.
//
// All wakeups are routed through the event queue (same timestamp), so
// primitives are deterministic and safe against notify-before-wait races in
// the usual condition-variable style: waiters must re-check predicates.
#ifndef CHAOS_SIM_SYNC_H_
#define CHAOS_SIM_SYNC_H_

#include <coroutine>
#include <deque>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/common.h"

namespace chaos {

// Edge-triggered broadcast condition. Wait() always suspends until the next
// NotifyAll(); use in a predicate loop.
class CondEvent {
 public:
  explicit CondEvent(Simulator* sim) : sim_(sim) {}

  auto Wait() {
    struct Awaiter {
      CondEvent* cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cond->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void NotifyAll() {
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    for (auto h : woken) {
      sim_->Resume(h);
    }
  }

  size_t num_waiters() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Unbounded FIFO queue. Multiple concurrent consumers are supported.
template <typename T>
class SimQueue {
 public:
  explicit SimQueue(Simulator* sim) : cond_(sim) {}

  void Push(T value) {
    items_.push_back(std::move(value));
    cond_.NotifyAll();
  }

  Task<T> Pop() {
    while (items_.empty()) {
      co_await cond_.Wait();
    }
    T value = std::move(items_.front());
    items_.pop_front();
    co_return value;
  }

  // Non-suspending accessors for consumers that batch over already-queued
  // items (e.g. the control server's proposal combining): peek the front,
  // then take it synchronously. Both require !empty().
  const T& front() const {
    CHAOS_CHECK(!items_.empty());
    return items_.front();
  }
  T PopNow() {
    CHAOS_CHECK(!items_.empty());
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

 private:
  CondEvent cond_;
  std::deque<T> items_;
};

// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator* sim, int64_t initial) : cond_(sim), count_(initial) {
    CHAOS_CHECK_GE(initial, 0);
  }

  Task<> Acquire() {
    while (count_ == 0) {
      co_await cond_.Wait();
    }
    --count_;
  }

  void Release() {
    ++count_;
    cond_.NotifyAll();
  }

  int64_t count() const { return count_; }

 private:
  CondEvent cond_;
  int64_t count_;
};

// Reusable barrier for a fixed number of participants.
class SimBarrier {
 public:
  SimBarrier(Simulator* sim, int participants) : cond_(sim), participants_(participants) {
    CHAOS_CHECK_GT(participants, 0);
  }

  Task<> Arrive() {
    const uint64_t gen = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cond_.NotifyAll();
      co_return;
    }
    while (generation_ == gen) {
      co_await cond_.Wait();
    }
  }

  uint64_t generation() const { return generation_; }

 private:
  CondEvent cond_;
  int participants_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

// Count-down latch.
class Latch {
 public:
  Latch(Simulator* sim, int64_t count) : cond_(sim), count_(count) { CHAOS_CHECK_GE(count, 0); }

  void CountDown() {
    CHAOS_CHECK_GT(count_, 0);
    if (--count_ == 0) {
      cond_.NotifyAll();
    }
  }

  Task<> Wait() {
    while (count_ > 0) {
      co_await cond_.Wait();
    }
  }

  int64_t count() const { return count_; }

 private:
  CondEvent cond_;
  int64_t count_;
};

// Spawns sub-tasks and joins them. The group must outlive its sub-tasks.
class TaskGroup {
 public:
  explicit TaskGroup(Simulator* sim) : sim_(sim), cond_(sim) {}
  ~TaskGroup() { CHAOS_CHECK_MSG(pending_ == 0, "TaskGroup destroyed with pending tasks"); }

  void Spawn(Task<> task) {
    ++pending_;
    sim_->Spawn(Wrap(this, std::move(task)));
  }

  Task<> Join() {
    while (pending_ > 0) {
      co_await cond_.Wait();
    }
  }

  int64_t pending() const { return pending_; }

 private:
  static Task<> Wrap(TaskGroup* group, Task<> task) {
    co_await std::move(task);
    if (--group->pending_ == 0) {
      group->cond_.NotifyAll();
    }
  }

  Simulator* sim_;
  CondEvent cond_;
  int64_t pending_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_SIM_SYNC_H_
