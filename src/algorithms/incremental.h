// Incremental variants of the monotone benchmark algorithms for evolving
// graphs (PR 8): a warm-startable BFS program plus the host-side seed
// computations that turn a converged state and one mutation batch into the
// reseeded state the engines re-converge from.
//
// The contract shared by all three seeders: seeds are an ACHIEVABLE upper
// bound of the new fixed point (every non-reset value can still be realized
// by a path/component of the post-batch graph), and every vertex whose value
// can start an improvement carries its changed flag. Monotone min-fold then
// converges to the unique fixed point of the mutated graph — bitwise the
// same values a from-scratch run computes (1e-3 for SSSP's float sums).
//
//  * BFS / SSSP: the ANY-rule. A vertex is suspect when any tight arc into
//    it (one that could have produced its value) was deleted or originates
//    at a suspect; suspects reset to "unreached" and the intact boundary
//    re-announces. Conservative — over-marking only costs recompute work,
//    never correctness.
//  * WCC: per deleted intra-component edge, a budgeted reachability probe
//    on the new graph; if the endpoints may have split (or the budget runs
//    out), the entire old component resets to self-labels and re-floods.
#ifndef CHAOS_ALGORITHMS_INCREMENTAL_H_
#define CHAOS_ALGORITHMS_INCREMENTAL_H_

#include <cstdint>
#include <limits>
#include <span>
#include <unordered_set>
#include <vector>

#include "algorithms/basic.h"
#include "core/gas.h"
#include "graph/types.h"

namespace chaos {

// ---------------------------------------------------------------- inc-bfs
// Warm-startable BFS: min-propagation of depth over unit-weight arcs,
// driven by per-vertex changed flags (the level-synchronous BfsProgram
// cannot resume from a partially correct state — its scatter condition is
// depth == global level). From fresh seeds it walks the same frontier
// waves; from incremental seeds it re-converges only the reset region.
// Extract maps the unreached sentinel to -1, bitwise matching BfsProgram.
class IncBfsProgram {
 public:
  static constexpr const char* kName = "incbfs";
  static constexpr bool kNeedsOutDegrees = false;
  static constexpr int64_t kUnreached = std::numeric_limits<int64_t>::max();

  struct VertexState {
    int64_t depth;
    uint8_t changed;
  };
  struct UpdateValue {
    int64_t depth;
  };
  struct Accumulator {
    int64_t min_depth;
    uint8_t valid;
  };
  struct GlobalState {
    VertexId source;
  };
  using OutputRecord = NoOutput;

  explicit IncBfsProgram(VertexId source = 0) : source_(source) {}

  GlobalState InitGlobal(uint64_t) const { return GlobalState{source_}; }
  GlobalState InitLocal() const { return GlobalState{0}; }
  Accumulator InitAccum() const { return Accumulator{kUnreached, 0}; }
  VertexState InitVertex(const GlobalState& g, VertexId v, uint32_t) const {
    return v == g.source ? VertexState{0, 1} : VertexState{kUnreached, 0};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (e.flags == kEdgeForward && s.changed && s.depth != kUnreached) {
      emit(e.dst, UpdateValue{s.depth + 1});
    }
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (!a.valid || u.depth < a.min_depth) {
      a.min_depth = u.depth;
      a.valid = 1;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    if (b.valid && (!a.valid || b.min_depth < a.min_depth)) {
      a = b;
    }
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState&, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    const bool improved = a.valid && a.min_depth < v.depth;
    if (improved) {
      v.depth = a.min_depth;
    }
    v.changed = improved ? 1 : 0;
    return improved;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  bool Advance(GlobalState&, uint64_t, uint64_t changed) const { return changed == 0; }
  double Extract(const VertexState& v) const {
    return v.depth == kUnreached ? -1.0 : static_cast<double>(v.depth);
  }

 private:
  VertexId source_;
};

// ----------------------------------------------------------- host helpers

// Host-side CSR over the forward arcs of a prepared graph. Iteration order
// is edge-list order within each source — deterministic.
class HostAdjacency {
 public:
  struct Arc {
    VertexId dst;
    float weight;
  };

  explicit HostAdjacency(const InputGraph& g) : offsets_(g.num_vertices + 1, 0) {
    for (const Edge& e : g.edges) {
      if (e.flags == kEdgeForward) {
        ++offsets_[e.src + 1];
      }
    }
    for (uint64_t v = 0; v < g.num_vertices; ++v) {
      offsets_[v + 1] += offsets_[v];
    }
    arcs_.resize(offsets_.back());
    std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const Edge& e : g.edges) {
      if (e.flags == kEdgeForward) {
        arcs_[cursor[e.src]++] = Arc{e.dst, e.weight};
      }
    }
  }

  std::span<const Arc> Out(VertexId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<Arc> arcs_;
};

// Seed accounting, surfaced through MutationDelta into MutationEpochRecord.
struct SeedStats {
  uint64_t frontier = 0;  // seeds left with their changed flag set
  uint64_t resets = 0;    // seeds reset to the init value
};

// ------------------------------------------------------------- BFS seeder
// `deleted_arcs`/`inserted_arcs` are the batch in PREPARED per-arc form
// (undirected preparation turns each raw edge into two forward arcs).
// `states` holds the engine's converged pre-batch states in, seeds out.
inline SeedStats SeedIncBfs(const InputGraph& old_prepared, const InputGraph& new_prepared,
                            const std::vector<Edge>& deleted_arcs,
                            const std::vector<Edge>& inserted_arcs, VertexId source,
                            std::vector<IncBfsProgram::VertexState>* states) {
  constexpr int64_t kUnreached = IncBfsProgram::kUnreached;
  auto& st = *states;
  const uint64_t n = old_prepared.num_vertices;
  CHAOS_CHECK_EQ(st.size(), n);
  std::vector<uint8_t> suspect(n, 0);
  std::vector<VertexId> work;
  auto mark = [&](VertexId v) {
    if (v != source && suspect[v] == 0 && st[v].depth != kUnreached) {
      suspect[v] = 1;
      work.push_back(v);
    }
  };
  // Direct suspects: the deleted arc was tight (could have set dst's depth).
  for (const Edge& e : deleted_arcs) {
    if (st[e.src].depth != kUnreached && st[e.dst].depth == st[e.src].depth + 1) {
      mark(e.dst);
    }
  }
  // Propagate over the OLD graph's tight arcs: anything whose depth may have
  // depended on a suspect becomes suspect. All reads are of the unmodified
  // converged depths; st is only rewritten in the final loop.
  const HostAdjacency old_adj(old_prepared);
  while (!work.empty()) {
    const VertexId u = work.back();
    work.pop_back();
    for (const auto& arc : old_adj.Out(u)) {
      if (st[arc.dst].depth == st[u].depth + 1) {
        mark(arc.dst);
      }
    }
  }
  // Frontier: intact vertices bordering the reset region in the NEW graph
  // re-announce their still-valid depth; sources of inserted arcs may open
  // shortcuts anywhere.
  const HostAdjacency new_adj(new_prepared);
  std::vector<uint8_t> frontier(n, 0);
  for (uint64_t u = 0; u < n; ++u) {
    if (suspect[u] != 0 || st[u].depth == kUnreached) {
      continue;
    }
    for (const auto& arc : new_adj.Out(u)) {
      if (suspect[arc.dst] != 0) {
        frontier[u] = 1;
        break;
      }
    }
  }
  for (const Edge& e : inserted_arcs) {
    if (suspect[e.src] == 0 && st[e.src].depth != kUnreached) {
      frontier[e.src] = 1;
    }
  }
  SeedStats stats;
  for (uint64_t u = 0; u < n; ++u) {
    if (suspect[u] != 0) {
      st[u] = IncBfsProgram::VertexState{kUnreached, 0};
      ++stats.resets;
    } else {
      st[u].changed = frontier[u];
      stats.frontier += frontier[u];
    }
  }
  return stats;
}

// ------------------------------------------------------------ SSSP seeder
// Same ANY-rule as BFS with float distances. Tightness is checked with the
// exact float expression the engine's scatter evaluates (dist + weight), so
// every arc that could have produced a distance is recognized.
inline SeedStats SeedSssp(const InputGraph& old_prepared, const InputGraph& new_prepared,
                          const std::vector<Edge>& deleted_arcs,
                          const std::vector<Edge>& inserted_arcs, VertexId source,
                          std::vector<SsspProgram::VertexState>* states) {
  constexpr float kInf = SsspProgram::kInf;
  auto& st = *states;
  const uint64_t n = old_prepared.num_vertices;
  CHAOS_CHECK_EQ(st.size(), n);
  std::vector<uint8_t> suspect(n, 0);
  std::vector<VertexId> work;
  auto mark = [&](VertexId v) {
    if (v != source && suspect[v] == 0 && st[v].dist != kInf) {
      suspect[v] = 1;
      work.push_back(v);
    }
  };
  for (const Edge& e : deleted_arcs) {
    if (st[e.src].dist != kInf && st[e.dst].dist == st[e.src].dist + e.weight) {
      mark(e.dst);
    }
  }
  const HostAdjacency old_adj(old_prepared);
  while (!work.empty()) {
    const VertexId u = work.back();
    work.pop_back();
    for (const auto& arc : old_adj.Out(u)) {
      if (st[arc.dst].dist == st[u].dist + arc.weight) {
        mark(arc.dst);
      }
    }
  }
  const HostAdjacency new_adj(new_prepared);
  std::vector<uint8_t> frontier(n, 0);
  for (uint64_t u = 0; u < n; ++u) {
    if (suspect[u] != 0 || st[u].dist == kInf) {
      continue;
    }
    for (const auto& arc : new_adj.Out(u)) {
      if (suspect[arc.dst] != 0) {
        frontier[u] = 1;
        break;
      }
    }
  }
  for (const Edge& e : inserted_arcs) {
    if (suspect[e.src] == 0 && st[e.src].dist != kInf) {
      frontier[e.src] = 1;
    }
  }
  SeedStats stats;
  for (uint64_t u = 0; u < n; ++u) {
    if (suspect[u] != 0) {
      st[u] = SsspProgram::VertexState{kInf, 0};
      ++stats.resets;
    } else {
      st[u].changed = frontier[u];
      stats.frontier += frontier[u];
    }
  }
  return stats;
}

// ------------------------------------------------------------- WCC seeder

// Bounded DFS reachability on the new graph: true iff `to` is reached from
// `from` within `budget` arc traversals. Budget exhaustion reports false —
// the caller treats "don't know" as "split" (a conservative full reset).
inline bool HostConnected(const HostAdjacency& adj, VertexId from, VertexId to,
                          uint64_t budget) {
  if (from == to) {
    return true;
  }
  std::vector<VertexId> stack{from};
  std::unordered_set<VertexId> seen{from};
  uint64_t traversed = 0;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (const auto& arc : adj.Out(u)) {
      if (++traversed > budget) {
        return false;
      }
      if (arc.dst == to) {
        return true;
      }
      if (seen.insert(arc.dst).second) {
        stack.push_back(arc.dst);
      }
    }
  }
  return false;  // component exhausted without reaching `to`
}

// `deleted_edges` are the RAW batch deletions (one probe per edge, not per
// prepared arc); `inserted_arcs` are prepared (both directions, so both
// endpoints of every raw insert get their changed flag).
inline SeedStats SeedWcc(const InputGraph& new_prepared, const std::vector<Edge>& deleted_edges,
                         const std::vector<Edge>& inserted_arcs, uint64_t connectivity_budget,
                         std::vector<WccProgram::VertexState>* states) {
  auto& st = *states;
  const uint64_t n = new_prepared.num_vertices;
  CHAOS_CHECK_EQ(st.size(), n);
  const HostAdjacency adj(new_prepared);
  std::unordered_set<VertexId> reset_labels;
  for (const Edge& e : deleted_edges) {
    // At convergence both endpoints of an existing edge carry their
    // component's min label, so unequal labels mean nothing to check.
    if (st[e.src].label != st[e.dst].label) {
      continue;
    }
    if (reset_labels.count(st[e.src].label) != 0) {
      continue;  // this component already resets wholesale
    }
    if (!HostConnected(adj, e.src, e.dst, connectivity_budget)) {
      reset_labels.insert(st[e.src].label);
    }
  }
  std::vector<uint8_t> frontier(n, 0);
  for (const Edge& e : inserted_arcs) {
    frontier[e.src] = 1;
  }
  SeedStats stats;
  for (uint64_t u = 0; u < n; ++u) {
    if (reset_labels.count(st[u].label) != 0) {
      // The whole old component re-floods from self-labels; min-label
      // flooding re-derives each surviving sub-component's min id.
      st[u] = WccProgram::VertexState{static_cast<VertexId>(u), 1};
      ++stats.resets;
      ++stats.frontier;
    } else {
      st[u].changed = frontier[u];
      stats.frontier += frontier[u];
    }
  }
  return stats;
}

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_INCREMENTAL_H_
