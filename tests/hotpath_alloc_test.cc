// Allocation-count guard for the DES hot paths (PR 9 tentpole): after
// warmup, neither event Push/Pop (either queue implementation, inline
// EventFn) nor the per-record RecordBinner::Add path may touch the heap.
// The global operator new/delete are replaced with counting wrappers, so
// any allocation creeping back into these loops fails loudly here — also
// under ASan/TSan, which route through the replaced operators.
//
// Chunk-granularity allocations (one shared_ptr control block per *parked
// chunk*) are explicitly allowed: the guarantee is per record and per
// event, where the old code paid a vector regrowth per chunk per partition.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/gas.h"
#include "core/partition.h"
#include "core/record_arena.h"
#include "core/record_binner.h"
#include "core/update_chunk_view.h"
#include "graph/types.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

void* CountedAlloc(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  ++g_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

// Replace every global allocation entry point. posix_memalign-backed
// pointers free with free(), so one delete path serves both.
void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace chaos {
namespace {

// Runs `fn` and returns how many heap allocations it performed.
template <typename Fn>
uint64_t CountAllocs(Fn&& fn) {
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

void ExpectZeroAllocSteadyState(EventQueueImpl impl) {
  EventQueue q(impl);
  Rng rng(17);
  // Warm: same time values the measurement phase will use, so calendar
  // bucket vectors and the heap array retain the needed capacity.
  std::vector<TimeNs> times;
  times.reserve(4096);
  TimeNs now = 0;
  for (int i = 0; i < 4096; ++i) {
    now += static_cast<TimeNs>(rng.Below(5000));
    times.push_back(now);
  }
  for (const TimeNs t : times) {
    q.Push(t, [] {});
  }
  while (!q.empty()) {
    q.Pop();
  }
  // Steady state: identical stream again — zero heap allocations for both
  // the push and the pop side (EventFn capture is inline, containers keep
  // their capacity, no calendar rebuild below the growth threshold).
  const uint64_t push_allocs = CountAllocs([&] {
    for (const TimeNs t : times) {
      q.Push(t, [] {});
    }
  });
  EXPECT_EQ(push_allocs, 0u) << "impl=" << static_cast<int>(impl);
  const uint64_t pop_allocs = CountAllocs([&] {
    while (!q.empty()) {
      q.Pop();
    }
  });
  EXPECT_EQ(pop_allocs, 0u) << "impl=" << static_cast<int>(impl);
}

TEST(HotPathAllocTest, BinaryHeapPushPopAllocFree) {
  ExpectZeroAllocSteadyState(EventQueueImpl::kBinaryHeap);
}

TEST(HotPathAllocTest, CalendarPushPopAllocFree) {
  ExpectZeroAllocSteadyState(EventQueueImpl::kCalendar);
}

TEST(HotPathAllocTest, InterleavedPushPopAllocFree) {
  // The simulator's actual access pattern: pop one, push a few, forever.
  for (const auto impl : {EventQueueImpl::kBinaryHeap, EventQueueImpl::kCalendar}) {
    EventQueue q(impl);
    Rng warm_rng(3);
    TimeNs now = 0;
    auto step = [&](Rng* rng) {
      for (int i = 0; i < 3; ++i) {
        q.Push(now + static_cast<TimeNs>(rng->Below(10'000)), [] {});
      }
      now = q.Pop().time;
      now = q.Pop().time;
      now = q.Pop().time;
    };
    for (int round = 0; round < 2000; ++round) {
      step(&warm_rng);  // warm: grows containers and calendar buckets
    }
    // Replay the warm schedule exactly (same rng stream, same time values,
    // so the same per-bucket occupancy peaks): the queue drained to empty,
    // so the first measured push re-anchors the calendar window via the
    // sole-event jump and the rest follows the warmed path.
    now = 0;
    Rng rng(3);
    const uint64_t allocs = CountAllocs([&] {
      for (int round = 0; round < 2000; ++round) {
        step(&rng);
      }
    });
    EXPECT_EQ(allocs, 0u) << "impl=" << static_cast<int>(impl);
  }
}

TEST(HotPathAllocTest, BinnerAddWithinBlockAllocFree) {
  auto parts = Partitioning::Compute(4096, 4, 16, 16 << 10);
  RecordArena arena;
  using Rec = UpdateRecord<float>;
  // 1 KiB chunks of 16-byte wire records -> 64 records per chunk.
  RecordBinner binner(&parts, sizeof(Rec), /*record_wire_bytes=*/16,
                      /*chunk_bytes=*/1 << 10, &arena);
  // Warm: fill and park a chunk per partition, then drop the parked chunks
  // so their blocks return to the arena freelist.
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    for (int i = 0; i < 64; ++i) {
      binner.Add(p, Rec{parts.Base(p), 1.0f});
    }
  }
  while (binner.HasPending()) {
    binner.PopPendingForTest();
  }
  // Steady state: every Add inside a block is memcpy + cursor bump; block
  // leases are freelist hits. 63 adds per partition — no park, no chunk.
  const uint64_t allocs = CountAllocs([&] {
    for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
      for (int i = 0; i < 63; ++i) {
        binner.Add(p, Rec{parts.Base(p), 2.0f});
      }
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_FALSE(binner.HasPending());
}

TEST(HotPathAllocTest, SoaBinnerAddWithinBlockAllocFree) {
  auto parts = Partitioning::Compute(4096, 4, 16, 16 << 10);
  RecordArena arena;
  RecordBinner binner(&parts, sizeof(Edge), /*record_wire_bytes=*/16,
                      /*chunk_bytes=*/1 << 10, &arena, RecordBinner::Format::kEdgeSoA);
  const Edge e{1, 2, 1.0f, 0};
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    for (int i = 0; i < 64; ++i) {
      binner.Add(p, e);
    }
  }
  while (binner.HasPending()) {
    binner.PopPendingForTest();
  }
  const uint64_t allocs = CountAllocs([&] {
    for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
      for (int i = 0; i < 63; ++i) {
        binner.Add(p, e);
      }
    }
  });
  EXPECT_EQ(allocs, 0u);
}

// One warmed gather/apply update cycle, end to end: staged SoA AddUpdates
// (the apply side's re-binning), then a full SoA scan of a parked update
// chunk through UpdateChunkView plus the wire sizer (the gather side and
// the combined send-size computation) — all allocation-free per record.
TEST(HotPathAllocTest, UpdateSoaBinAndScanCycleAllocFree) {
  auto parts = Partitioning::Compute(4096, 4, 16, 16 << 10);
  RecordArena arena;
  // 12-byte wire updates, 768-byte chunks -> 64 per chunk (a multiple of
  // the write-combining stage, so the staged NT-store path is exercised).
  RecordBinner binner(&parts, sizeof(UpdateRecord<float>), /*record_wire_bytes=*/12,
                      /*chunk_bytes=*/768, &arena, RecordBinner::Format::kUpdateSoA,
                      /*update_value_bytes=*/sizeof(float));
  // Warm: park one chunk per partition; keep one parked chunk to scan and
  // let the rest return their blocks to the arena freelist.
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    for (int i = 0; i < 64; ++i) {
      binner.AddUpdate(p, parts.Base(p) + static_cast<VertexId>(i), 1.0f);
    }
  }
  Chunk scanned;
  while (binner.HasPending()) {
    scanned = binner.PopPendingForTest().second;
  }
  // `scanned` pins one block, so warm a second round to put a full set of
  // fill blocks back on the freelist before measuring.
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    for (int i = 0; i < 64; ++i) {
      binner.AddUpdate(p, parts.Base(p) + static_cast<VertexId>(i), 1.0f);
    }
  }
  while (binner.HasPending()) {
    binner.PopPendingForTest();
  }
  float sink = 0.0f;
  const uint64_t allocs = CountAllocs([&] {
    for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
      for (int i = 0; i < 63; ++i) {  // 63: within-block, no park
        binner.AddUpdate(p, parts.Base(p) + static_cast<VertexId>(i), 2.0f);
      }
    }
    const UpdateChunkView view(scanned, sizeof(float));
    const VertexId* dst = view.dst();
    const float* value = view.values_as<float>();
    UpdateWireSizer sizer;
    for (uint32_t i = 0; i < view.size(); ++i) {
      sink += value[i] + static_cast<float>(dst[i] & 1);
      sizer.Add(dst[i]);
    }
    sink += static_cast<float>(sizer.PackedWireBytes(12, sizeof(float)));
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(sink, 0.0f);
  EXPECT_FALSE(binner.HasPending());
}

// The counting operators themselves must be live (otherwise the zero
// deltas above would be vacuously true).
TEST(HotPathAllocTest, CounterObservesAllocations) {
  const uint64_t allocs = CountAllocs([] {
    auto* p = new int(7);
    delete p;
    std::vector<uint8_t> v(1 << 16);
    (void)v;
  });
  EXPECT_GE(allocs, 2u);
}

}  // namespace
}  // namespace chaos
