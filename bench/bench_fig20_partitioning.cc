// Figure 20: cost of dynamic load balancing vs upfront partitioning. For
// each algorithm, the worst-case per-machine rebalancing time of a Chaos
// run (stolen-partition copying + merging + merge waits) is compared to the
// time PowerGraph's grid partitioner would need on the same graph. Paper:
// the ratio stays around or below 0.1 even under assumptions favorable to
// partitioning.
#include "baselines/grid_partitioner.h"
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig20, "Figure 20: dynamic load balancing vs upfront partitioning") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 27)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  opt.AddDouble("grid-ns-per-edge", 0.0,
                "grid partitioner cost override; 0 = calibrate from a measured "
                "GridPartition run on this host");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  struct Fig20Point {
    AlgoResult result;
    uint64_t num_edges = 0;
    uint64_t edge_wire_bytes = 0;
  };
  Sweep<Fig20Point> sweep;
  for (const auto& info : Algorithms()) {
    const std::string name = info.name;
    const bool weighted = info.needs_weights;
    sweep.Add([name, weighted, scale, machines, seed] {
      InputGraph prepared = PrepareInput(name, BenchRmat(scale, weighted, seed));
      Fig20Point point;
      point.result =
          RunJob(MakeJob(name, prepared, BenchClusterConfig(prepared, machines, seed)));
      point.num_edges = prepared.num_edges();
      point.edge_wire_bytes = prepared.edge_wire_bytes();
      return point;
    });
  }
  const std::vector<Fig20Point> points = sweep.Run();

  // The grid-partitioning side of the ratio is simulated from a per-edge CPU
  // cost. By default that cost is calibrated right here, from a measured
  // GridPartition run on this host's sample graph (host_seconds over edges),
  // instead of trusting a hardcoded constant from whatever machine last ran
  // bench_micro; --grid-ns-per-edge > 0 overrides the calibration.
  InputGraph sample = BenchRmat(scale, false, seed);
  auto grid_result = GridPartition(sample, machines, seed);
  double grid_ns_per_edge = opt.GetDouble("grid-ns-per-edge");
  if (grid_ns_per_edge <= 0.0) {
    grid_ns_per_edge = grid_result.host_seconds * 1e9 /
                       static_cast<double>(std::max<uint64_t>(sample.num_edges(), 1));
    std::printf("grid-ns-per-edge auto-calibrated: %.1f ns/edge (host GridPartition "
                "%.3fs over %llu edges)\n",
                grid_ns_per_edge, grid_result.host_seconds,
                static_cast<unsigned long long>(sample.num_edges()));
  }

  std::printf("== Figure 20: rebalance time / grid partitioning time (RMAT-%u, m=%d) ==\n",
              scale, machines);
  PrintHeader({"algorithm", "rebalance(s)", "gridpart(s)", "ratio"});
  RunningStat ratios;
  size_t idx = 0;
  for (const auto& info : Algorithms()) {
    const Fig20Point& point = points[idx++];
    // Worst-case per-machine load-balancing *overhead* (the paper's
    // metric): vertex-set copying plus accumulator merging and waits.
    // Stolen-partition processing itself is useful work, not overhead.
    TimeNs rebalance = 0;
    for (const auto& mm : point.result.metrics.machines) {
      const TimeNs cost = mm.bucket(Bucket::kCopy) + mm.bucket(Bucket::kMerge) +
                          mm.bucket(Bucket::kMergeWait);
      rebalance = std::max(rebalance, cost);
    }
    const TimeNs grid = GridPartitionSimTime(
        point.num_edges, point.edge_wire_bytes, machines,
        StorageConfig::Ssd().bandwidth_bps, grid_ns_per_edge, 16);
    const double ratio =
        static_cast<double>(rebalance) / static_cast<double>(std::max<TimeNs>(grid, 1));
    ratios.Add(ratio);
    PrintCell(info.name);
    PrintCell(ToSeconds(rebalance), "%.4f");
    PrintCell(ToSeconds(grid), "%.4f");
    PrintCell(ratio, "%.3f");
    EndRow();
    RecordMetric("fig20." + info.name + ".ratio", ratio);
  }
  // Also report the real (host-measured) grid partitioner on this graph.
  // Host seconds are wall-clock and deliberately NOT recorded as a metric.
  std::printf("\ngrid partitioner on this host: %.3fs, replication %.2f, imbalance %.2f\n",
              grid_result.host_seconds, grid_result.replication_factor,
              grid_result.imbalance);
  RecordMetric("fig20.mean_ratio", ratios.mean());
  std::printf("mean ratio: %.3f (paper: ~0.1 or below for every algorithm)\n", ratios.mean());
  return 0;
}
