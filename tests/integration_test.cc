// Integration tests: checkpointing + crash recovery (paper §6.6, Fig. 13),
// file-backed storage in a full cluster run, and performance-shape
// invariants that back the evaluation figures (batching utilization,
// stealing benefit, centralized-directory slowdown, network bottleneck).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "algorithms/basic.h"
#include "algorithms/runner.h"
#include "core/cluster.h"
#include "graph/generators.h"
#include "graph/ref/reference.h"

namespace chaos {
namespace {

ClusterConfig BaseConfig(int machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.seed = 99;
  return cfg;
}

InputGraph TestGraph(uint64_t seed = 7) {
  RmatOptions opt;
  opt.scale = 9;
  opt.seed = seed;
  return GenerateRmat(opt);
}

// ------------------------------------------------------- checkpoint + crash

TEST(CheckpointTest, OverheadIsBounded) {
  InputGraph g = TestGraph();
  ClusterConfig cfg = BaseConfig(4);
  Cluster<PageRankProgram> off(cfg, PageRankProgram(5));
  auto base = off.Run(g);
  cfg.checkpoint_interval = 1;
  Cluster<PageRankProgram> on(cfg, PageRankProgram(5));
  auto with = on.Run(g);
  EXPECT_TRUE(with.has_checkpoint);
  // Same answer.
  for (size_t v = 0; v < base.values.size(); ++v) {
    ASSERT_NEAR(base.values[v], with.values[v], 1e-4);
  }
  // Checkpointing costs something but not much (paper: < 6%; our small
  // scale inflates fixed costs, so allow more headroom).
  EXPECT_GT(with.metrics.total_time, base.metrics.total_time);
  EXPECT_LT(static_cast<double>(with.metrics.total_time),
            static_cast<double>(base.metrics.total_time) * 1.40);
}

TEST(CheckpointTest, CrashStopsEarlyAndLeavesCommittedCheckpoint) {
  InputGraph g = TestGraph();
  ClusterConfig cfg = BaseConfig(4);
  cfg.checkpoint_interval = 1;
  cfg.crash_after_superstep = 2;
  Cluster<PageRankProgram> cluster(cfg, PageRankProgram(6));
  auto result = cluster.Run(g);
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.metrics.crashed);
  EXPECT_EQ(result.supersteps, 3u);  // supersteps 0..2 ran
  ASSERT_TRUE(result.has_checkpoint);
  EXPECT_EQ(result.checkpoint_superstep, 2u);  // resume point
}

TEST(CheckpointTest, RecoveryMatchesUninterruptedRun) {
  InputGraph g = TestGraph(13);
  const uint32_t kIters = 6;

  // Ground truth: uninterrupted run.
  Cluster<PageRankProgram> truth_cluster(BaseConfig(4), PageRankProgram(kIters));
  auto truth = truth_cluster.Run(g);

  // Run that checkpoints every superstep and crashes after superstep 3.
  ClusterConfig crash_cfg = BaseConfig(4);
  crash_cfg.checkpoint_interval = 1;
  crash_cfg.crash_after_superstep = 3;
  Cluster<PageRankProgram> crashed_cluster(crash_cfg, PageRankProgram(kIters));
  auto crashed = crashed_cluster.Run(g);
  ASSERT_TRUE(crashed.crashed);
  ASSERT_TRUE(crashed.has_checkpoint);
  ASSERT_EQ(crashed.checkpoint_superstep, 3u);

  // Recovery: new cluster (fresh memory), durable storage imported — edge
  // sets as-is, the committed checkpoint side as the vertex sets.
  ClusterConfig resume_cfg = BaseConfig(4);
  resume_cfg.resume = true;
  resume_cfg.resume_superstep = crashed.checkpoint_superstep;
  Cluster<PageRankProgram> recovery(resume_cfg, PageRankProgram(kIters));
  recovery.PreparePartitioning(g.num_vertices);
  recovery.ImportSets(crashed_cluster, SetKind::kEdges, SetKind::kEdges);
  recovery.ImportSets(crashed_cluster, crashed.checkpoint_side, SetKind::kVertices);
  GraphMeta meta;
  meta.num_vertices = g.num_vertices;
  meta.weighted = g.weighted;
  meta.edge_wire_bytes = g.edge_wire_bytes();
  meta.vertex_id_wire_bytes = g.vertex_id_wire_bytes();
  auto resumed = recovery.Resume(meta, crashed.checkpoint_global);

  EXPECT_FALSE(resumed.crashed);
  ASSERT_EQ(resumed.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_NEAR(resumed.values[v], truth.values[v], 1e-3 * (1.0 + std::abs(truth.values[v])))
        << "vertex " << v;
  }
}

TEST(CheckpointTest, TwoPhaseCommittedSideIsComplete) {
  InputGraph g = TestGraph(17);
  ClusterConfig cfg = BaseConfig(2);
  cfg.checkpoint_interval = 2;
  Cluster<PageRankProgram> cluster(cfg, PageRankProgram(6));
  auto result = cluster.Run(g);
  ASSERT_TRUE(result.has_checkpoint);
  // The committed side must hold a complete copy of every partition's
  // vertex set: the same chunk count as the live vertex sets. (The other
  // side may hold the final superstep's in-flight uncommitted copy — the
  // normal intermediate state of a 2-phase protocol.)
  const SetKind committed = result.checkpoint_side;
  uint64_t committed_chunks = 0;
  uint64_t vertex_chunks = 0;
  for (MachineId m = 0; m < cfg.machines; ++m) {
    for (const SetId& id : cluster.storage(m)->HostListSets()) {
      if (id.kind == committed) {
        committed_chunks += cluster.storage(m)->NumChunks(id);
      }
      if (id.kind == SetKind::kVertices) {
        vertex_chunks += cluster.storage(m)->NumChunks(id);
      }
    }
  }
  EXPECT_GT(committed_chunks, 0u);
  EXPECT_EQ(committed_chunks, vertex_chunks);
}

// -------------------------------------------------------------- file spill

TEST(FileSpillIntegrationTest, FullRunThroughRealFilesystem) {
  const std::string dir = ::testing::TempDir() + "/chaos_cluster_spill";
  InputGraph g = TestGraph(19);
  auto expect = ref::PageRank(g, 3);
  {
    ClusterConfig cfg = BaseConfig(2);
    cfg.storage.spill_dir = dir;
    Cluster<PageRankProgram> cluster(cfg, PageRankProgram(3));
    auto result = cluster.Run(g);
    for (size_t v = 0; v < expect.size(); ++v) {
      ASSERT_NEAR(result.values[v], expect[v], 1e-3 * (1.0 + std::abs(expect[v])));
    }
  }
  EXPECT_FALSE(std::filesystem::exists(dir));  // engines clean their spill
}

// -------------------------------------------------- performance invariants

// Batching (Fig. 16): a window of 1 leaves devices idle; the paper's
// phi*k = 10 is significantly faster.
TEST(PerfShapeTest, SmallBatchWindowIsSlower) {
  InputGraph g = PrepareInput("pagerank", TestGraph(23));
  ClusterConfig small = BaseConfig(8);
  small.phi = 1.0;
  small.batch_k = 1;
  ClusterConfig sweet = BaseConfig(8);
  sweet.phi = 2.0;
  sweet.batch_k = 5;
  auto slow = RunJob(MakeJob("pagerank", g, small));
  auto fast = RunJob(MakeJob("pagerank", g, sweet));
  EXPECT_GT(slow.metrics.total_time, fast.metrics.total_time);
}

// Stealing (Fig. 18): on a skewed graph, alpha = 1 beats alpha = 0 and the
// no-stealing run shows the imbalance as barrier time.
TEST(PerfShapeTest, StealingHelpsOnSkewedGraphs) {
  RmatOptions opt;
  opt.scale = 11;
  opt.permute_ids = false;  // heavy low-id partitions
  opt.seed = 3;
  InputGraph g = PrepareInput("pagerank", GenerateRmat(opt));
  // Bandwidth-bound configuration (stealing economics assume transfer time
  // dominates per-request latency, as on the paper's testbed).
  ClusterConfig cfg = BaseConfig(8);
  cfg.memory_budget_bytes = 24 << 10;
  // Many chunks per partition (the steal granularity) and latencies small
  // against the 2 KB transfer time, as in the paper's regime.
  cfg.chunk_bytes = 2 << 10;
  cfg.storage.access_latency = 2 * kNsPerUs;
  cfg.net.one_way_latency = kNsPerUs;
  auto with = RunJob(MakeJob("pagerank", g, cfg));
  cfg.alpha = 0.0;
  auto without = RunJob(MakeJob("pagerank", g, cfg));
  // Steals must actually happen and pay for themselves. At miniature scale
  // the absolute runtime win is within noise (bench_fig18 demonstrates it
  // at figure scale), so assert the robust observables: no regression, and
  // the no-steal run exposes its load imbalance as extra barrier wait.
  uint64_t steals = 0;
  for (const auto& mm : with.metrics.machines) {
    steals += mm.steals_worked;
  }
  EXPECT_GT(steals, 0u);
  EXPECT_LT(static_cast<double>(with.metrics.total_time),
            static_cast<double>(without.metrics.total_time) * 1.15);
  EXPECT_GT(without.metrics.SumBucket(Bucket::kBarrier),
            with.metrics.SumBucket(Bucket::kBarrier));
}

// Centralized directory (Fig. 15): slower than randomized placement at a
// non-trivial machine count.
TEST(PerfShapeTest, CentralizedDirectoryIsSlower) {
  InputGraph g = PrepareInput("pagerank", TestGraph(29));
  ClusterConfig cfg = BaseConfig(8);
  auto chaos_run = RunJob(MakeJob("pagerank", g, cfg));
  cfg.placement = Placement::kCentralDirectory;
  auto central = RunJob(MakeJob("pagerank", g, cfg));
  EXPECT_GT(central.metrics.total_time, chaos_run.metrics.total_time);
}

// Network bottleneck (Fig. 12): a 1GigE network slows the same multi-
// machine run down; storage bandwidth halving slows it proportionally
// (Fig. 11).
TEST(PerfShapeTest, SlowNetworkAndSlowDisksHurt) {
  RmatOptions opt;
  opt.scale = 11;
  opt.seed = 31;
  InputGraph g = PrepareInput("pagerank", GenerateRmat(opt));
  // Chunks large enough that transfer time dominates fixed latencies, so
  // bandwidth differences are visible (the paper's regime).
  auto config = [](StorageConfig storage, NetworkConfig net) {
    ClusterConfig cfg = BaseConfig(8);
    cfg.chunk_bytes = 32 << 10;
    cfg.memory_budget_bytes = 24 << 10;
    cfg.storage = storage;
    cfg.net = net;
    return cfg;
  };
  auto base = RunJob(MakeJob(
      "pagerank", g, config(StorageConfig::Ssd(), NetworkConfig::FortyGigE())));
  auto slow = RunJob(MakeJob(
      "pagerank", g, config(StorageConfig::Ssd(), NetworkConfig::OneGigE())));
  auto disks = RunJob(MakeJob(
      "pagerank", g, config(StorageConfig::Hdd(), NetworkConfig::FortyGigE())));
  EXPECT_GT(slow.metrics.total_time, base.metrics.total_time);
  EXPECT_GT(disks.metrics.total_time, base.metrics.total_time);
}

// Weak-scaling headline (Fig. 7): doubling machines and problem size
// together must not blow the runtime up (the whole point of Chaos).
TEST(PerfShapeTest, WeakScalingStaysBounded) {
  RmatOptions small;
  small.scale = 9;
  small.seed = 5;
  InputGraph g1 = PrepareInput("pagerank", GenerateRmat(small));
  RmatOptions big = small;
  big.scale = 12;  // 8x the edges on 8x the machines
  InputGraph g8 = PrepareInput("pagerank", GenerateRmat(big));

  ClusterConfig cfg1 = BaseConfig(1);
  cfg1.memory_budget_bytes = g1.num_vertices * 12;
  ClusterConfig cfg8 = BaseConfig(8);
  cfg8.memory_budget_bytes = g8.num_vertices * 12 / 8;
  auto one = RunJob(MakeJob("pagerank", g1, cfg1));
  auto eight = RunJob(MakeJob("pagerank", g8, cfg8));
  const double ratio = static_cast<double>(eight.metrics.total_time) /
                       static_cast<double>(one.metrics.total_time);
  EXPECT_LT(ratio, 3.0) << "weak scaling ratio " << ratio;
}

// Update conservation across machine counts and placements: every update
// written is gathered exactly once.
TEST(PerfShapeTest, UpdateConservationEverywhere) {
  InputGraph g = PrepareInput("sssp", MakeUndirected(TestGraph(37)));
  for (const Placement placement :
       {Placement::kRandom, Placement::kLocalMaster, Placement::kCentralDirectory}) {
    ClusterConfig cfg = BaseConfig(4);
    cfg.placement = placement;
    auto result = RunJob(MakeJob("sssp", g, cfg));
    uint64_t emitted = 0;
    uint64_t gathered = 0;
    for (const auto& mm : result.metrics.machines) {
      emitted += mm.updates_emitted;
      gathered += mm.updates_processed;
    }
    EXPECT_EQ(emitted, gathered) << "placement " << static_cast<int>(placement);
  }
}

}  // namespace
}  // namespace chaos
