// Figure 16: runtime as a function of the batching window phi*k, all ten
// algorithms at the largest machine count, normalized to phi*k = 10 (the
// paper's sweet spot: k = 5, phi = 2 measured on its SSD/40GigE testbed).
// Small windows leave storage engines idle (Eq. 4); very large windows
// degrade through queueing and incast.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig16, "Figure 16: runtime vs batching window phi*k") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<int> windows = {1, 2, 3, 5, 10, 16, 32};

  std::printf("== Figure 16: runtime vs batch window phi*k (RMAT-%u, m=%d), norm to 10 ==\n",
              scale, machines);
  PrintHeader({"algorithm", "pk=1", "pk=2", "pk=3", "pk=5", "pk=10", "pk=16", "pk=32"});
  for (const auto& info : Algorithms()) {
    InputGraph raw = BenchRmat(scale, info.needs_weights, seed);
    InputGraph prepared = PrepareInput(info.name, raw);
    std::vector<double> seconds;
    double sweet = 0.0;
    for (const int window : windows) {
      ClusterConfig cfg = BenchClusterConfig(prepared, machines, seed);
      cfg.phi = 1.0;
      cfg.batch_k = window;  // fetch window = phi * k = window
      auto result = RunChaosAlgorithm(info.name, prepared, cfg);
      seconds.push_back(result.metrics.total_seconds());
      if (window == 10) {
        sweet = seconds.back();
      }
    }
    PrintCell(info.name);
    for (const double s : seconds) {
      PrintCell(sweet > 0 ? s / sweet : 0.0);
    }
    EndRow();
  }
  std::printf("\npaper: clear sweet spot at phi*k = 10; slower below (idle devices)\n"
              "and slightly slower above (queueing delay and incast congestion)\n");
  return 0;
}
