// Figure 13: checkpointing overhead. Vertex state is checkpointed with the
// 2-phase protocol at every superstep barrier; the paper measures under 6%
// runtime overhead on a scale-36 graph (BFS and PR, 32 machines, HDD).
//
// The run fails (exit 1) — making `ok` in the chaos-bench JSON an
// executable record of the cheap-checkpointing claim — if the overhead at
// any measured point exceeds --max-overhead-pct. Miniaturized runs inflate
// fixed per-superstep costs relative to the paper's hundreds-of-GB scans,
// so the default threshold is looser than the paper's 6%; it still fails
// loudly if checkpointing ever becomes a first-order cost.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig13, "Figure 13: checkpointing overhead") {
  Options opt;
  opt.AddInt("scale", 13, "RMAT scale (paper: 35)");
  opt.AddInt("machines", 8, "machines (paper: 32)");
  opt.AddDouble("max-overhead-pct", 15.0, "fail if overhead exceeds this at any point");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const double max_overhead = opt.GetDouble("max-overhead-pct");
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Figure 13: checkpointing overhead (RMAT-%u, m=%d, HDD) ==\n", scale,
              machines);
  PrintHeader({"algorithm", "off(s)", "every-step(s)", "overhead"});
  bool ok = true;
  for (const std::string name : {"pagerank", "bfs"}) {
    InputGraph raw = BenchRmat(scale, false, seed);
    InputGraph prepared = PrepareInput(name, raw);
    ClusterConfig cfg =
        BenchClusterConfig(prepared, machines, seed, StorageConfig::Hdd());

    auto off = RunChaosAlgorithm(name, prepared, cfg);
    cfg.checkpoint_interval = 1;
    auto on = RunChaosAlgorithm(name, prepared, cfg);

    const double off_s = off.metrics.total_seconds();
    const double on_s = on.metrics.total_seconds();
    const double overhead_pct = off_s > 0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
    PrintCell(name);
    PrintCell(off_s);
    PrintCell(on_s);
    PrintCell(overhead_pct, "%.1f%%");
    EndRow();
    if (overhead_pct > max_overhead) {
      ok = false;
    }
  }
  if (!ok) {
    std::printf("\nFAIL: checkpoint overhead exceeded %.1f%% at a measured point\n",
                max_overhead);
    return 1;
  }
  std::printf("\npaper: overhead under 6%% even with hundreds of TB written\n");
  return 0;
}
