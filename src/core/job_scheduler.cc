#include "core/job_scheduler.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <sstream>

#include "util/parallel.h"

namespace chaos {

const char* SchedEventKindName(SchedEventKind kind) {
  switch (kind) {
    case SchedEventKind::kArrive:
      return "arrive";
    case SchedEventKind::kReject:
      return "reject";
    case SchedEventKind::kDispatch:
      return "dispatch";
    case SchedEventKind::kPreempt:
      return "preempt";
    case SchedEventKind::kComplete:
      return "complete";
  }
  return "?";
}

std::string SchedEvent::ToString() const {
  std::ostringstream os;
  os << "t=" << at << " " << SchedEventKindName(kind) << " job=" << job;
  if (machine_count > 0) {
    os << " m=" << machine_lo << "+" << machine_count;
  }
  os << " s=" << superstep;
  return os.str();
}

namespace {

// One in-flight slice.
struct Running {
  int job = 0;
  TimeNs finish = 0;
  SliceResult slice;
  std::vector<int> machines;
};

}  // namespace

ScheduleResult RunJobSchedule(const ServingConfig& config,
                              const std::vector<JobExecution*>& executions) {
  CHAOS_CHECK_MSG(config.machines >= 1, "serving cluster needs at least one machine");
  CHAOS_CHECK_MSG(config.preempt_quantum >= 1, "preempt_quantum must be >= 1");
  const int n = static_cast<int>(executions.size());

  ScheduleResult out;
  out.jobs.resize(static_cast<size_t>(n));

  // Admissibility is a static property of the job's shape; decide it (and
  // the trace's top priority, which drives the slicing rule) up front.
  std::vector<bool> admissible(static_cast<size_t>(n), false);
  int top_priority = std::numeric_limits<int>::min();
  for (int j = 0; j < n; ++j) {
    const JobSpec& spec = executions[static_cast<size_t>(j)]->spec();
    CHAOS_CHECK_MSG(spec.cluster.machines >= 1, "job needs at least one machine");
    CHAOS_CHECK_MSG(spec.arrival >= 0, "job arrival must be non-negative");
    JobSchedStats& stats = out.jobs[static_cast<size_t>(j)];
    stats.arrival = spec.arrival;
    stats.machines = spec.cluster.machines;
    const bool fits_machines = spec.cluster.machines <= config.machines;
    const bool fits_memory = config.machine_memory_bytes == 0 ||
                             spec.cluster.EffectivePoolBudget() <= config.machine_memory_bytes;
    admissible[static_cast<size_t>(j)] = fits_machines && fits_memory;
    if (admissible[static_cast<size_t>(j)]) {
      top_priority = std::max(top_priority, spec.priority);
    }
  }

  // Arrival order: (arrival, submission index).
  std::vector<int> arrivals(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    arrivals[static_cast<size_t>(j)] = j;
  }
  std::sort(arrivals.begin(), arrivals.end(), [&](int a, int b) {
    const TimeNs ta = executions[static_cast<size_t>(a)]->spec().arrival;
    const TimeNs tb = executions[static_cast<size_t>(b)]->spec().arrival;
    return ta != tb ? ta < tb : a < b;
  });

  SweepExecutor executor(config.jobs);
  ReadyQueue ready(config.policy);
  MachineLedger ledger(config.machines);
  std::vector<Running> running;
  std::vector<TimeNs> ready_since(static_cast<size_t>(n), 0);
  size_t next_arrival = 0;

  while (next_arrival < arrivals.size() || !ready.empty() || !running.empty()) {
    // Next decision instant: first pending arrival or first slice finish.
    TimeNs now = std::numeric_limits<TimeNs>::max();
    if (next_arrival < arrivals.size()) {
      now = executions[static_cast<size_t>(arrivals[next_arrival])]->spec().arrival;
    }
    for (const Running& r : running) {
      now = std::min(now, r.finish);
    }
    CHAOS_CHECK_MSG(now != std::numeric_limits<TimeNs>::max(),
                    "scheduler stalled with ready jobs and no machines ever freeing");

    // Retire slices finishing now, in submission order.
    std::vector<Running> finishing;
    for (auto it = running.begin(); it != running.end();) {
      if (it->finish == now) {
        finishing.push_back(std::move(*it));
        it = running.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(finishing.begin(), finishing.end(),
              [](const Running& a, const Running& b) { return a.job < b.job; });
    for (Running& r : finishing) {
      JobExecution& exec = *executions[static_cast<size_t>(r.job)];
      JobSchedStats& stats = out.jobs[static_cast<size_t>(r.job)];
      stats.service_time += r.slice.slice_time;
      stats.supersteps += r.slice.end_superstep - r.slice.start_superstep;
      out.metrics.busy_machine_time +=
          r.slice.slice_time * static_cast<TimeNs>(r.machines.size());
      ledger.Release(r.machines);
      if (r.slice.completed) {
        stats.completed = true;
        stats.completion = now;
        ++out.metrics.completed;
        out.metrics.makespan = std::max(out.metrics.makespan, now);
        out.events.push_back(
            {now, SchedEventKind::kComplete, r.job, -1, 0, r.slice.end_superstep});
      } else {
        ++stats.preemptions;
        ++out.metrics.preemptions;
        ready_since[static_cast<size_t>(r.job)] = now;
        ready.Push({r.job, exec.spec().priority, exec.spec().arrival});
        out.events.push_back(
            {now, SchedEventKind::kPreempt, r.job, -1, 0, r.slice.end_superstep});
      }
    }

    // Admit arrivals due now.
    while (next_arrival < arrivals.size() &&
           executions[static_cast<size_t>(arrivals[next_arrival])]->spec().arrival == now) {
      const int j = arrivals[next_arrival++];
      const JobSpec& spec = executions[static_cast<size_t>(j)]->spec();
      out.events.push_back({now, SchedEventKind::kArrive, j, -1, 0, 0});
      if (!admissible[static_cast<size_t>(j)]) {
        ++out.metrics.rejected;
        out.events.push_back({now, SchedEventKind::kReject, j, -1, spec.cluster.machines, 0});
        continue;
      }
      out.jobs[static_cast<size_t>(j)].admitted = true;
      ready_since[static_cast<size_t>(j)] = now;
      ready.Push({j, spec.priority, spec.arrival});
    }

    // Dispatch in policy order; stop at the first job that does not fit so
    // nothing ranked lower can overtake it (no backfill, no inversion).
    struct Dispatch {
      int job = 0;
      int64_t stop = -1;
      std::vector<int> machines;
    };
    std::vector<Dispatch> batch;
    while (!ready.empty()) {
      const ReadyJob front = ready.Front();
      JobExecution& exec = *executions[static_cast<size_t>(front.job)];
      const JobSpec& spec = exec.spec();
      if (!ledger.Fits(spec.cluster.machines)) {
        break;
      }
      ready.PopFront();
      Dispatch d;
      d.job = front.job;
      d.machines = ledger.Claim(spec.cluster.machines);
      // Slicing rule: under priority scheduling, a preemptible job that is
      // not in the trace's top class runs one quantum at a time so a waiting
      // higher-priority job never waits longer than one quantum.
      if (config.policy == SchedPolicy::kPriority && spec.preemptible &&
          spec.priority < top_priority) {
        d.stop = static_cast<int64_t>(exec.next_superstep() + config.preempt_quantum);
      }
      JobSchedStats& stats = out.jobs[static_cast<size_t>(front.job)];
      stats.queue_wait += now - ready_since[static_cast<size_t>(front.job)];
      if (stats.slices == 0) {
        stats.first_dispatch = now;
      }
      ++stats.slices;
      ++out.metrics.dispatches;
      out.events.push_back({now, SchedEventKind::kDispatch, front.job, d.machines.front(),
                            static_cast<int>(d.machines.size()), exec.next_superstep()});
      batch.push_back(std::move(d));
    }

    // Simulate the batch's slices concurrently; all scheduling state above
    // was already updated in submission order, so results are bitwise
    // independent of the executor's thread count.
    if (!batch.empty()) {
      std::vector<std::function<SliceResult()>> points;
      points.reserve(batch.size());
      for (const Dispatch& d : batch) {
        JobExecution* exec = executions[static_cast<size_t>(d.job)];
        const int64_t stop = d.stop;
        points.emplace_back([exec, stop] { return exec->RunSlice(stop); });
      }
      std::vector<SliceResult> slices = executor.RunPoints(points);
      for (size_t i = 0; i < batch.size(); ++i) {
        CHAOS_CHECK_MSG(slices[i].slice_time > 0, "slice with zero simulated duration");
        Running r;
        r.job = batch[i].job;
        r.finish = now + slices[i].slice_time;
        r.slice = slices[i];
        r.machines = std::move(batch[i].machines);
        running.push_back(std::move(r));
      }
    }
  }

  if (out.metrics.makespan > 0) {
    out.metrics.utilization =
        static_cast<double>(out.metrics.busy_machine_time) /
        (static_cast<double>(config.machines) * static_cast<double>(out.metrics.makespan));
  }
  return out;
}

}  // namespace chaos
