// Strongly Connected Components via forward-backward coloring (Orzan-style),
// the standard edge-centric SCC used by streaming engines.
//
// Rounds over the unassigned subgraph:
//   forward:  propagate the maximum vertex id (color) along forward edges
//             to a fixed point; a vertex whose color equals its own id is
//             the root of its color class.
//   backward: from each root, propagate "confirmed" along reverse edges but
//             only between vertices of the same color; the confirmed set is
//             exactly the SCC of the root.
//   assign:   confirmed vertices take their color as SCC id and drop out;
//             the rest reset and the next round begins.
//
// Requires a bidirected edge list (MakeBidirected): reverse traversal uses
// the kEdgeReverse records.
#ifndef CHAOS_ALGORITHMS_SCC_H_
#define CHAOS_ALGORITHMS_SCC_H_

#include <cstdint>

#include "core/gas.h"
#include "graph/types.h"

namespace chaos {

class SccProgram {
 public:
  static constexpr const char* kName = "scc";
  static constexpr bool kNeedsOutDegrees = false;
  static constexpr VertexId kNone = ~VertexId{0};

  enum Phase : uint8_t { kForward = 0, kBackward = 1, kAssign = 2 };

  struct VertexState {
    VertexId color;
    VertexId scc;
    uint8_t confirmed;
    uint8_t color_changed;
  };
  struct UpdateValue {
    VertexId color;
  };
  struct Accumulator {
    VertexId max_color;
    uint8_t has;
    uint8_t confirm;
  };
  struct GlobalState {
    uint8_t phase;
    uint64_t remaining;
  };
  using OutputRecord = NoOutput;

  GlobalState InitGlobal(uint64_t) const { return GlobalState{kForward, 0}; }
  GlobalState InitLocal() const { return GlobalState{kForward, 0}; }
  Accumulator InitAccum() const { return Accumulator{0, 0, 0}; }
  VertexState InitVertex(const GlobalState&, VertexId v, uint32_t) const {
    return VertexState{v, kNone, 0, 1};
  }
  bool WantScatter(const GlobalState& g) const { return g.phase != kAssign; }

  template <typename Emit>
  void Scatter(const GlobalState& g, VertexId src, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (s.scc != kNone) {
      return;  // already assigned: removed from the subgraph
    }
    if (g.phase == kForward) {
      if (e.flags == kEdgeForward && s.color_changed) {
        emit(e.dst, UpdateValue{s.color});
      }
    } else if (g.phase == kBackward) {
      // Roots (color == id) self-confirm; confirmed vertices spread along
      // reverse edges within their color class.
      if (e.flags == kEdgeReverse && (s.confirmed || s.color == src)) {
        emit(e.dst, UpdateValue{s.color});
      }
    }
  }

  template <typename Emit>
  void Gather(const GlobalState& g, VertexId, const VertexState& dst, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (g.phase == kForward) {
      if (!a.has || u.color > a.max_color) {
        a.max_color = u.color;
        a.has = 1;
      }
    } else if (g.phase == kBackward) {
      if (u.color == dst.color) {
        a.confirm = 1;
      }
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    if (b.has && (!a.has || b.max_color > a.max_color)) {
      a.max_color = b.max_color;
      a.has = 1;
    }
    a.confirm |= b.confirm;
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState& g, VertexId v, VertexState& s, const Accumulator& a,
             GlobalState& local, Emit&&, Sink&&) const {
    if (s.scc != kNone) {
      return false;
    }
    switch (g.phase) {
      case kForward: {
        const bool improved = a.has && a.max_color > s.color;
        if (improved) {
          s.color = a.max_color;
        }
        s.color_changed = improved ? 1 : 0;
        return improved;
      }
      case kBackward: {
        bool changed = false;
        if (!s.confirmed && (a.confirm || s.color == v)) {
          s.confirmed = 1;
          changed = true;
        }
        return changed;
      }
      case kAssign: {
        if (s.confirmed) {
          s.scc = s.color;
        } else {
          s.color = v;
          s.color_changed = 1;
          ++local.remaining;
        }
        return false;
      }
      default:
        break;
    }
    return false;
  }

  void ReduceGlobal(GlobalState& g, const GlobalState& other) const {
    g.remaining += other.remaining;
  }

  bool Advance(GlobalState& g, uint64_t, uint64_t changed) const {
    switch (g.phase) {
      case kForward:
        if (changed == 0) {
          g.phase = kBackward;
        }
        return false;
      case kBackward:
        if (changed == 0) {
          g.phase = kAssign;
        }
        return false;
      case kAssign: {
        const bool done = g.remaining == 0;
        g.remaining = 0;
        g.phase = kForward;
        return done;
      }
      default:
        return true;
    }
  }

  double Extract(const VertexState& s) const { return static_cast<double>(s.scc); }
};

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_SCC_H_
