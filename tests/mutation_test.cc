// Evolving graphs (PR 8): the mutation differential battery.
//
//  * MutationLog: seeded determinism, GraphAfter == manual batch replay,
//    preset/fraction behavior.
//  * Apply-then-rebin equivalence: an evolving run (mutations applied at
//    convergence barriers, incremental re-convergence) must produce the
//    same final values as building the fully mutated graph from scratch —
//    bitwise for BFS/WCC, 1e-3 for SSSP.
//  * Hand-checked incremental seeder math on micro graphs.
//  * Compositions, asserted not assumed: crash during the mutation stage
//    (same-size and rescaled recovery replays uncommitted epochs),
//    scheduler preemption slices, all three steal modes, tight memory.
//  * Regression: ImportRepartitioned rejects edge batches referencing
//    vertices beyond the vertex-count bound.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "algorithms/evolving.h"
#include "algorithms/incremental.h"
#include "algorithms/runner.h"
#include "graph/generators.h"
#include "graph/mutation_log.h"
#include "graph/ref/reference.h"

namespace chaos {
namespace {

ClusterConfig SmallConfig(int machines, uint64_t seed = 42) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.seed = seed;
  return cfg;
}

InputGraph SmallRmat(uint64_t seed, bool weighted = false, uint32_t scale = 7) {
  RmatOptions opt;
  opt.scale = scale;
  opt.edges_per_vertex = 8;
  opt.weighted = weighted;
  opt.seed = seed;
  return GenerateRmat(opt);
}

MutationLogOptions Schedule(uint32_t batches, double rate,
                            MutatePreset preset = MutatePreset::kUniform, uint64_t seed = 7) {
  MutationLogOptions opt;
  opt.num_batches = batches;
  opt.rate = rate;
  opt.preset = preset;
  opt.seed = seed;
  return opt;
}

JobSpec EvolvingJob(const std::string& algo, const InputGraph& raw, ClusterConfig cfg,
                    const MutationLogOptions& log, bool incremental = true) {
  JobSpec spec = MakeJob(algo, raw, std::move(cfg));
  spec.mutations.log = log;
  spec.mutations.incremental = incremental;
  return spec;
}

// The from-scratch truth: run the STATIC engine on the fully mutated graph.
JobResult FromScratch(const std::string& algo, const InputGraph& raw,
                      const MutationLogOptions& opt, ClusterConfig cfg) {
  MutationLog log(raw, opt);
  InputGraph prepared = PrepareInput(algo, log.GraphAfter(log.num_batches()));
  return RunJob(MakeJob(algo, prepared, std::move(cfg)));
}

void ExpectNearValues(const std::vector<double>& got, const std::vector<double>& want,
                      double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(got[i]) || std::isinf(want[i])) {
      EXPECT_EQ(std::isinf(got[i]), std::isinf(want[i])) << "vertex " << i;
      continue;
    }
    EXPECT_NEAR(got[i], want[i], tol) << "vertex " << i;
  }
}

bool SameEdge(const Edge& a, const Edge& b) {
  return a.src == b.src && a.dst == b.dst && a.weight == b.weight && a.flags == b.flags;
}

bool SameBatch(const MutationBatch& a, const MutationBatch& b) {
  if (a.inserts.size() != b.inserts.size() || a.deletes.size() != b.deletes.size()) {
    return false;
  }
  for (size_t i = 0; i < a.inserts.size(); ++i) {
    if (!SameEdge(a.inserts[i], b.inserts[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < a.deletes.size(); ++i) {
    if (!SameEdge(a.deletes[i], b.deletes[i])) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------- mutation log

TEST(MutationLogTest, DeterministicAndSeedSensitive) {
  InputGraph g = SmallRmat(3);
  const MutationLogOptions opt = Schedule(4, 0.02, MutatePreset::kHotspot, 11);
  MutationLog a(g, opt);
  MutationLog b(g, opt);
  ASSERT_EQ(a.num_batches(), 4u);
  for (uint64_t k = 0; k < a.num_batches(); ++k) {
    EXPECT_TRUE(SameBatch(a.batch(k), b.batch(k))) << "batch " << k;
  }
  MutationLogOptions other = opt;
  other.seed = 12;
  MutationLog c(g, other);
  bool any_diff = false;
  for (uint64_t k = 0; k < a.num_batches(); ++k) {
    any_diff = any_diff || !SameBatch(a.batch(k), c.batch(k));
  }
  EXPECT_TRUE(any_diff);
}

TEST(MutationLogTest, GraphAfterMatchesManualReplay) {
  InputGraph g = SmallRmat(5, /*weighted=*/true);
  MutationLog log(g, Schedule(3, 0.05, MutatePreset::kChurn, 9));
  InputGraph manual = g;
  for (uint64_t k = 0; k < log.num_batches(); ++k) {
    MutationLog::Apply(&manual, log.batch(k));
    const InputGraph after = log.GraphAfter(k + 1);
    ASSERT_EQ(after.edges.size(), manual.edges.size()) << "epoch " << k;
    for (size_t i = 0; i < manual.edges.size(); ++i) {
      ASSERT_TRUE(SameEdge(after.edges[i], manual.edges[i])) << "epoch " << k << " edge " << i;
    }
  }
  // GraphAfter(0) is the base.
  EXPECT_EQ(log.GraphAfter(0).edges.size(), g.edges.size());
}

TEST(MutationLogTest, RateAndDeleteFractionShapeBatches) {
  InputGraph g = SmallRmat(4);
  const auto total = static_cast<uint64_t>(0.01 * static_cast<double>(g.edges.size()) + 0.5);
  MutationLog log(g, Schedule(2, 0.01));
  for (uint64_t k = 0; k < 2; ++k) {
    const auto& b = log.batch(k);
    EXPECT_NEAR(static_cast<double>(b.inserts.size() + b.deletes.size()),
                static_cast<double>(total), 2.0);
  }
  MutationLogOptions all_del = Schedule(1, 0.02);
  all_del.delete_fraction = 1.0;
  MutationLog d(g, all_del);
  EXPECT_EQ(d.batch(0).inserts.size(), 0u);
  EXPECT_GT(d.batch(0).deletes.size(), 0u);
  EXPECT_LT(d.GraphAfter(1).edges.size(), g.edges.size());
  MutationLogOptions all_ins = Schedule(1, 0.02);
  all_ins.delete_fraction = 0.0;
  MutationLog i(g, all_ins);
  EXPECT_EQ(i.batch(0).deletes.size(), 0u);
  EXPECT_GT(i.GraphAfter(1).edges.size(), g.edges.size());
}

TEST(MutationLogTest, PresetsProduceDistinctLogs) {
  InputGraph g = SmallRmat(6);
  MutationLog uni(g, Schedule(2, 0.02, MutatePreset::kUniform));
  MutationLog hot(g, Schedule(2, 0.02, MutatePreset::kHotspot));
  MutationLog churn(g, Schedule(2, 0.02, MutatePreset::kChurn));
  EXPECT_FALSE(SameBatch(uni.batch(0), hot.batch(0)));
  // Churn's batch 1 deletes are drawn from batch 0's inserts.
  bool recycles = false;
  for (const Edge& d : churn.batch(1).deletes) {
    for (const Edge& ins : churn.batch(0).inserts) {
      recycles = recycles || SameEdge(d, ins);
    }
  }
  EXPECT_TRUE(recycles);
}

// ------------------------------------------- evolving == from scratch

TEST(EvolvingTest, BfsMatchesFromScratchBitwise) {
  InputGraph raw = SmallRmat(21);
  const MutationLogOptions opt = Schedule(3, 0.03, MutatePreset::kUniform, 17);
  JobResult evolved = RunJob(EvolvingJob("bfs", raw, SmallConfig(3), opt));
  JobResult scratch = FromScratch("bfs", raw, opt, SmallConfig(3));
  EXPECT_EQ(evolved.values, scratch.values);
  ASSERT_EQ(evolved.metrics.mutation_epochs.size(), 3u);
  for (const MutationEpochRecord& rec : evolved.metrics.mutation_epochs) {
    EXPECT_GT(rec.edges_inserted + rec.edges_deleted, 0u);
    EXPECT_GT(rec.end_time, rec.start_time);  // the apply stage costs sim time
  }
  EXPECT_EQ(scratch.metrics.mutation_epochs.size(), 0u);
}

TEST(EvolvingTest, SsspMatchesFromScratch) {
  InputGraph raw = SmallRmat(22, /*weighted=*/true);
  const MutationLogOptions opt = Schedule(3, 0.03, MutatePreset::kHotspot, 19);
  JobResult evolved = RunJob(EvolvingJob("sssp", raw, SmallConfig(3), opt));
  JobResult scratch = FromScratch("sssp", raw, opt, SmallConfig(3));
  ExpectNearValues(evolved.values, scratch.values, 1e-3);
}

TEST(EvolvingTest, WccMatchesFromScratchBitwise) {
  InputGraph raw = SmallRmat(23);
  const MutationLogOptions opt = Schedule(3, 0.03, MutatePreset::kChurn, 23);
  JobResult evolved = RunJob(EvolvingJob("wcc", raw, SmallConfig(3), opt));
  JobResult scratch = FromScratch("wcc", raw, opt, SmallConfig(3));
  EXPECT_EQ(evolved.values, scratch.values);
}

TEST(EvolvingTest, FullRecomputeBaselineMatchesIncremental) {
  InputGraph raw = SmallRmat(24);
  const MutationLogOptions opt = Schedule(2, 0.05, MutatePreset::kUniform, 29);
  JobResult inc = RunJob(EvolvingJob("wcc", raw, SmallConfig(2), opt, /*incremental=*/true));
  JobResult full = RunJob(EvolvingJob("wcc", raw, SmallConfig(2), opt, /*incremental=*/false));
  EXPECT_EQ(inc.values, full.values);
  // The baseline restarts every vertex each epoch; incremental resets fewer
  // and therefore needs no more supersteps.
  ASSERT_EQ(full.metrics.mutation_epochs.size(), 2u);
  ASSERT_EQ(inc.metrics.mutation_epochs.size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(full.metrics.mutation_epochs[k].resets, raw.num_vertices);
    EXPECT_LE(inc.metrics.mutation_epochs[k].resets,
              full.metrics.mutation_epochs[k].resets);
  }
  EXPECT_LE(inc.supersteps, full.supersteps);
}

TEST(EvolvingTest, MachineCountInvariant) {
  InputGraph raw = SmallRmat(25);
  const MutationLogOptions opt = Schedule(2, 0.04, MutatePreset::kUniform, 31);
  JobResult base = RunJob(EvolvingJob("wcc", raw, SmallConfig(1), opt));
  for (const int machines : {2, 4}) {
    JobResult r = RunJob(EvolvingJob("wcc", raw, SmallConfig(machines), opt));
    EXPECT_EQ(r.values, base.values) << "machines=" << machines;
  }
}

// The warm-startable BFS substitute is exact on a static graph too.
TEST(EvolvingTest, IncBfsMatchesStaticBfsOnStaticGraph) {
  InputGraph prepared = PrepareInput("bfs", SmallRmat(26));
  JobResult bfs = RunJob(MakeJob("bfs", prepared, SmallConfig(2)));
  Cluster<IncBfsProgram> cluster(SmallConfig(2), IncBfsProgram(0));
  auto inc = cluster.Run(prepared);
  EXPECT_EQ(inc.values, bfs.values);
}

// ------------------------------------------------- hand-checked seeders

// Undirected path 0-1-2-3 prepared into forward arc pairs.
InputGraph PreparedPath(uint64_t n, float weight = 1.0f) {
  InputGraph g;
  g.num_vertices = n;
  g.weighted = weight != 1.0f;
  for (uint64_t v = 0; v + 1 < n; ++v) {
    g.edges.push_back(Edge{v, v + 1, weight, kEdgeForward});
  }
  return MakeUndirected(g);
}

std::vector<Edge> Arcs(std::vector<Edge> raw) {
  std::vector<Edge> arcs;
  for (const Edge& e : raw) {
    arcs.push_back(Edge{e.src, e.dst, e.weight, kEdgeForward});
    arcs.push_back(Edge{e.dst, e.src, e.weight, kEdgeForward});
  }
  return arcs;
}

TEST(SeederTest, BfsDeleteCutsTailUnreachable) {
  const InputGraph old_p = PreparedPath(4);
  // Delete {1,2}: the tail {2,3} loses its only path and resets; no intact
  // vertex borders the reset region afterwards, so the frontier is empty.
  InputGraph new_raw;
  new_raw.num_vertices = 4;
  new_raw.edges = {Edge{0, 1, 1.0f, kEdgeForward}, Edge{2, 3, 1.0f, kEdgeForward}};
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<IncBfsProgram::VertexState> st = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  SeedStats s = SeedIncBfs(old_p, new_p, Arcs({Edge{1, 2, 1.0f, kEdgeForward}}), {}, 0, &st);
  EXPECT_EQ(s.resets, 2u);
  EXPECT_EQ(s.frontier, 0u);
  EXPECT_EQ(st[0].depth, 0);
  EXPECT_EQ(st[1].depth, 1);
  EXPECT_EQ(st[2].depth, IncBfsProgram::kUnreached);
  EXPECT_EQ(st[3].depth, IncBfsProgram::kUnreached);
  EXPECT_EQ(st[1].changed, 0);  // its arc into 2 was the deleted one
}

TEST(SeederTest, BfsAlternatePathKeepsBoundaryFrontier) {
  // Square: 0-1, 1-2, 0-3, 3-2. Depths 0,1,2 with 3 at depth 1. Deleting
  // {1,2} suspects only 2 (its other tight parent 3 is intact) and the
  // boundary vertex 3 re-announces.
  InputGraph old_raw;
  old_raw.num_vertices = 4;
  old_raw.edges = {Edge{0, 1, 1.0f, kEdgeForward}, Edge{1, 2, 1.0f, kEdgeForward},
                   Edge{0, 3, 1.0f, kEdgeForward}, Edge{3, 2, 1.0f, kEdgeForward}};
  const InputGraph old_p = MakeUndirected(old_raw);
  InputGraph new_raw = old_raw;
  new_raw.edges.erase(new_raw.edges.begin() + 1);
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<IncBfsProgram::VertexState> st = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  st[1].depth = 1;
  st[3].depth = 1;
  st[2].depth = 2;
  SeedStats s = SeedIncBfs(old_p, new_p, Arcs({Edge{1, 2, 1.0f, kEdgeForward}}), {}, 0, &st);
  EXPECT_EQ(s.resets, 1u);
  EXPECT_EQ(st[2].depth, IncBfsProgram::kUnreached);
  EXPECT_EQ(st[3].changed, 1);  // still borders 2 in the new graph
  EXPECT_EQ(st[0].changed, 0);
  EXPECT_EQ(s.frontier, 1u);
}

TEST(SeederTest, BfsInsertMarksEndpointFrontier) {
  const InputGraph old_p = PreparedPath(5);
  InputGraph new_raw;
  new_raw.num_vertices = 5;
  for (uint64_t v = 0; v + 1 < 5; ++v) {
    new_raw.edges.push_back(Edge{v, v + 1, 1.0f, kEdgeForward});
  }
  new_raw.edges.push_back(Edge{0, 4, 1.0f, kEdgeForward});
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<IncBfsProgram::VertexState> st = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  for (uint64_t v = 0; v < 5; ++v) {
    st[v].depth = static_cast<int64_t>(v);
  }
  SeedStats s = SeedIncBfs(old_p, new_p, {}, Arcs({Edge{0, 4, 1.0f, kEdgeForward}}), 0, &st);
  EXPECT_EQ(s.resets, 0u);
  // Both endpoints of the inserted edge re-announce; depths are untouched.
  EXPECT_EQ(st[0].changed, 1);
  EXPECT_EQ(st[4].changed, 1);
  EXPECT_EQ(st[2].changed, 0);
  EXPECT_EQ(st[4].depth, 4);
}

TEST(SeederTest, SsspTightArcPropagation) {
  // Path 0 -2.0- 1 -3.0- 2: dists 0, 2, 5. Deleting {0,1} invalidates 1 and
  // transitively 2 (its dist came through the tight arc 1->2).
  InputGraph old_raw;
  old_raw.num_vertices = 3;
  old_raw.weighted = true;
  old_raw.edges = {Edge{0, 1, 2.0f, kEdgeForward}, Edge{1, 2, 3.0f, kEdgeForward}};
  const InputGraph old_p = MakeUndirected(old_raw);
  InputGraph new_raw = old_raw;
  new_raw.edges.erase(new_raw.edges.begin());
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<SsspProgram::VertexState> st = {{0.0f, 0}, {2.0f, 0}, {5.0f, 0}};
  SeedStats s = SeedSssp(old_p, new_p, Arcs({Edge{0, 1, 2.0f, kEdgeForward}}), {}, 0, &st);
  EXPECT_EQ(s.resets, 2u);
  EXPECT_EQ(st[1].dist, SsspProgram::kInf);
  EXPECT_EQ(st[2].dist, SsspProgram::kInf);
  EXPECT_EQ(st[0].dist, 0.0f);
}

TEST(SeederTest, SsspNonTightDeleteKeepsState) {
  // Triangle 0-1 (1.0), 1-2 (1.0), 0-2 (5.0): dists 0, 1, 2. The 0-2 arc is
  // slack (5 > 2), so deleting it invalidates nothing.
  InputGraph old_raw;
  old_raw.num_vertices = 3;
  old_raw.weighted = true;
  old_raw.edges = {Edge{0, 1, 1.0f, kEdgeForward}, Edge{1, 2, 1.0f, kEdgeForward},
                   Edge{0, 2, 5.0f, kEdgeForward}};
  const InputGraph old_p = MakeUndirected(old_raw);
  InputGraph new_raw = old_raw;
  new_raw.edges.pop_back();
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<SsspProgram::VertexState> st = {{0.0f, 0}, {1.0f, 0}, {2.0f, 0}};
  SeedStats s = SeedSssp(old_p, new_p, Arcs({Edge{0, 2, 5.0f, kEdgeForward}}), {}, 0, &st);
  EXPECT_EQ(s.resets, 0u);
  EXPECT_EQ(s.frontier, 0u);
  EXPECT_EQ(st[2].dist, 2.0f);
}

TEST(SeederTest, WccSplitResetsWholeComponent) {
  // Components {0,1,2} (path) and {3,4}. Deleting {1,2} splits the first:
  // all three reset to self-labels; {3,4} is untouched.
  InputGraph new_raw;
  new_raw.num_vertices = 5;
  new_raw.edges = {Edge{0, 1, 1.0f, kEdgeForward}, Edge{3, 4, 1.0f, kEdgeForward}};
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<WccProgram::VertexState> st = {{0, 0}, {0, 0}, {0, 0}, {3, 0}, {3, 0}};
  SeedStats s =
      SeedWcc(new_p, {Edge{1, 2, 1.0f, kEdgeForward}}, {}, kWccConnectivityBudget, &st);
  EXPECT_EQ(s.resets, 3u);
  EXPECT_EQ(st[0].label, 0u);
  EXPECT_EQ(st[1].label, 1u);
  EXPECT_EQ(st[2].label, 2u);
  EXPECT_EQ(st[1].changed, 1);
  EXPECT_EQ(st[3].label, 3u);
  EXPECT_EQ(st[3].changed, 0);
}

TEST(SeederTest, WccCycleSurvivesDeleteWithoutResets) {
  // Triangle 0-1-2-0: deleting {0,1} leaves the component connected, so the
  // labels are certified and nothing resets or re-floods.
  InputGraph new_raw;
  new_raw.num_vertices = 3;
  new_raw.edges = {Edge{1, 2, 1.0f, kEdgeForward}, Edge{2, 0, 1.0f, kEdgeForward}};
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<WccProgram::VertexState> st = {{0, 0}, {0, 0}, {0, 0}};
  SeedStats s =
      SeedWcc(new_p, {Edge{0, 1, 1.0f, kEdgeForward}}, {}, kWccConnectivityBudget, &st);
  EXPECT_EQ(s.resets, 0u);
  EXPECT_EQ(s.frontier, 0u);
  EXPECT_EQ(st[1].label, 0u);
}

TEST(SeederTest, WccInsertMarksBothEndpoints) {
  InputGraph new_raw;
  new_raw.num_vertices = 4;
  new_raw.edges = {Edge{0, 1, 1.0f, kEdgeForward}, Edge{2, 3, 1.0f, kEdgeForward},
                   Edge{1, 2, 1.0f, kEdgeForward}};
  const InputGraph new_p = MakeUndirected(new_raw);
  std::vector<WccProgram::VertexState> st = {{0, 0}, {0, 0}, {2, 0}, {2, 0}};
  SeedStats s = SeedWcc(new_p, {}, Arcs({Edge{1, 2, 1.0f, kEdgeForward}}),
                        kWccConnectivityBudget, &st);
  EXPECT_EQ(s.resets, 0u);
  EXPECT_EQ(st[1].changed, 1);
  EXPECT_EQ(st[2].changed, 1);
  EXPECT_EQ(st[0].changed, 0);
  EXPECT_EQ(s.frontier, 2u);
}

// ------------------------------------------------------- crash replay

// Crash a machine in the middle of a mutation apply stage: the commit point
// had not been reached, so recovery must rewind to the last committed epoch
// and replay the batch. Values must still match the from-scratch run.
TEST(EvolvingRecoveryTest, CrashDuringMutationStageReplays) {
  InputGraph raw = SmallRmat(31);
  const MutationLogOptions opt = Schedule(3, 0.04, MutatePreset::kUniform, 37);
  ClusterConfig cfg = SmallConfig(4);
  cfg.checkpoint_interval = 2;

  JobResult healthy = RunJob(EvolvingJob("wcc", raw, cfg, opt));
  ASSERT_EQ(healthy.metrics.mutation_epochs.size(), 3u);
  const MutationEpochRecord& target = healthy.metrics.mutation_epochs[1];
  ASSERT_GT(target.end_time, target.start_time);

  JobSpec spec = EvolvingJob("wcc", raw, cfg, opt);
  spec.recover = true;
  spec.cluster.faults =
      FaultSchedule::MachineCrash(2, (target.start_time + target.end_time) / 2);
  JobResult recovered = RunJob(spec);
  EXPECT_TRUE(recovered.recovery.crash_detected);
  EXPECT_TRUE(recovered.metrics.recovered);
  EXPECT_EQ(recovered.values, healthy.values);
  // The replacement replayed at least the epoch the crash interrupted.
  EXPECT_GE(recovered.metrics.mutation_epochs.size(), 1u);
}

TEST(EvolvingRecoveryTest, RescaledRecoveryReplaysOnSurvivors) {
  InputGraph raw = SmallRmat(32);
  const MutationLogOptions opt = Schedule(2, 0.04, MutatePreset::kHotspot, 41);
  ClusterConfig cfg = SmallConfig(4, 51);
  cfg.checkpoint_interval = 2;

  JobResult healthy = RunJob(EvolvingJob("bfs", raw, cfg, opt));
  ASSERT_EQ(healthy.metrics.mutation_epochs.size(), 2u);
  const MutationEpochRecord& target = healthy.metrics.mutation_epochs[0];

  JobSpec spec = EvolvingJob("bfs", raw, cfg, opt);
  spec.recover = true;
  spec.recovery.replacement_machines = 3;  // the N-1 survivors absorb the work
  spec.cluster.faults =
      FaultSchedule::MachineCrash(1, (target.start_time + target.end_time) / 2);
  JobResult recovered = RunJob(spec);
  EXPECT_TRUE(recovered.recovery.crash_detected);
  EXPECT_EQ(recovered.recovery.machines_after, 3);
  EXPECT_EQ(recovered.values, healthy.values);
}

// Crash AFTER an epoch's commit point: the committed side may be kEdgesB;
// recovery must import that side (relabeled kEdges) and not replay epoch 0.
TEST(EvolvingRecoveryTest, CrashAfterCommitResumesMutatedEdges) {
  InputGraph raw = SmallRmat(33);
  const MutationLogOptions opt = Schedule(2, 0.04, MutatePreset::kUniform, 43);
  ClusterConfig cfg = SmallConfig(3);
  cfg.checkpoint_interval = 2;

  JobResult healthy = RunJob(EvolvingJob("wcc", raw, cfg, opt));
  ASSERT_EQ(healthy.metrics.mutation_epochs.size(), 2u);
  // Kill between the two epochs, well after epoch 0's apply finished.
  const TimeNs between = (healthy.metrics.mutation_epochs[0].end_time +
                          healthy.metrics.mutation_epochs[1].start_time) /
                         2;
  ASSERT_GT(between, healthy.metrics.mutation_epochs[0].end_time);

  JobSpec spec = EvolvingJob("wcc", raw, cfg, opt);
  spec.recover = true;
  spec.cluster.faults = FaultSchedule::MachineCrash(1, between);
  JobResult recovered = RunJob(spec);
  EXPECT_TRUE(recovered.recovery.crash_detected);
  EXPECT_EQ(recovered.values, healthy.values);
}

// ------------------------------------------------------- compositions

TEST(EvolvingCompositionTest, PreemptedSlicesMatchIsolatedBitwise) {
  InputGraph raw = SmallRmat(34);
  const MutationLogOptions opt = Schedule(2, 0.04, MutatePreset::kUniform, 47);
  JobSpec spec = EvolvingJob("wcc", raw, SmallConfig(3), opt);
  JobResult isolated = RunJob(spec);

  auto exec = MakeJobExecution(spec);
  int slices = 0;
  for (;;) {
    SliceResult slice = exec->RunSlice(static_cast<int64_t>(exec->next_superstep() + 2));
    ++slices;
    if (slice.completed) {
      break;
    }
  }
  EXPECT_GE(slices, 2);
  AlgoResult sliced = exec->TakeResult();
  EXPECT_EQ(sliced.supersteps, isolated.supersteps);
  EXPECT_EQ(sliced.values, isolated.values);
}

TEST(EvolvingCompositionTest, StealModesAgreeBitwise) {
  InputGraph raw = SmallRmat(35);
  const MutationLogOptions opt = Schedule(2, 0.04, MutatePreset::kHotspot, 53);
  JobResult base = RunJob(EvolvingJob("bfs", raw, SmallConfig(4), opt));
  for (const StealMode mode :
       {StealMode::kStealOne, StealMode::kStealHalf, StealMode::kAdaptive}) {
    ClusterConfig cfg = SmallConfig(4);
    cfg.steal.mode = mode;
    JobResult r = RunJob(EvolvingJob("bfs", raw, cfg, opt));
    EXPECT_EQ(r.values, base.values) << StealModeName(mode);
  }
}

TEST(EvolvingCompositionTest, TightMemoryBudgetAgrees) {
  InputGraph raw = SmallRmat(36);
  const MutationLogOptions opt = Schedule(2, 0.05, MutatePreset::kChurn, 59);
  JobResult base = RunJob(EvolvingJob("sssp", raw, SmallConfig(2), opt));
  ClusterConfig tight = SmallConfig(2);
  tight.memory_budget_bytes = 4 << 10;  // half the usual pool: forced spills
  JobResult r = RunJob(EvolvingJob("sssp", raw, tight, opt));
  EXPECT_EQ(r.values, base.values);
}

// ------------------------------------------------ import validation fix

// A malformed input whose edge list references vertices >= num_vertices
// used to flow through ImportRepartitioned silently (PartitionOf only
// range-checks the SOURCE endpoint). The re-bin now rejects both ends.
TEST(ImportValidationTest, RepartitionRejectsOutOfRangeEdges) {
  InputGraph bad;
  bad.num_vertices = 8;
  // 6 -> 12: dst beyond the vertex count. Vertex 6 is unreachable from the
  // BFS source, so the run converges without ever scattering the bad edge.
  bad.edges = {Edge{0, 1, 1.0f, kEdgeForward}, Edge{1, 2, 1.0f, kEdgeForward},
               Edge{6, 12, 1.0f, kEdgeForward}};
  ClusterConfig cfg = SmallConfig(3);
  Cluster<BfsProgram> donor(cfg, BfsProgram(0));
  auto run = donor.Run(bad);
  ASSERT_FALSE(run.crashed);

  ClusterConfig rcfg = SmallConfig(2);
  GraphMeta meta;
  meta.num_vertices = bad.num_vertices;
  meta.weighted = bad.weighted;
  meta.edge_wire_bytes = bad.edge_wire_bytes();
  meta.vertex_id_wire_bytes = bad.vertex_id_wire_bytes();
  Cluster<BfsProgram> replacement(rcfg, BfsProgram(0));
  replacement.PreparePartitioning(bad.num_vertices);
  EXPECT_DEATH(replacement.ImportRepartitioned(donor, SetKind::kVertices, meta),
               "references a vertex beyond");
}

}  // namespace
}  // namespace chaos
