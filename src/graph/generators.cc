#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.h"

namespace chaos {
namespace {

float RandomWeight(Rng& rng, double max_weight) {
  // Strictly positive, effectively-distinct weights (helps MSF tie-breaks).
  return static_cast<float>(rng.NextDouble() * (max_weight - 0.001) + 0.001);
}

// Samples an index in [0, n) from a Zipf-like distribution with exponent s
// using inverse-CDF over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s) : cdf_(n) {
    CHAOS_CHECK_GT(n, 0u);
    double total = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& v : cdf_) {
      v /= total;
    }
  }

  uint64_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Shared RMAT core: one code path drives both the materializing and the
// streaming entry points, so their RNG consumption (and thus the edge
// sequence) cannot diverge. `emit` returns whether to keep generating.
template <typename EmitFn>
void RmatEdges(const RmatOptions& options, EmitFn&& emit) {
  CHAOS_CHECK_LE(options.scale, 40u);
  const double d = 1.0 - options.a - options.b - options.c;
  CHAOS_CHECK_MSG(d > 0.0, "RMAT quadrant probabilities must sum to < 1");
  const uint64_t n = 1ull << options.scale;
  const uint64_t m = n * options.edges_per_vertex;

  Rng rng(options.seed);
  std::vector<uint32_t> perm;
  if (options.permute_ids) {
    CHAOS_CHECK_LE(n, (1ull << 32));
    perm = rng.Permutation(static_cast<uint32_t>(n));
  }

  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t src = 0;
    uint64_t dst = 0;
    for (uint32_t level = 0; level < options.scale; ++level) {
      const double u = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (u < options.a) {
        // top-left: no bits set
      } else if (u < ab) {
        dst |= 1;
      } else if (u < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    Edge e;
    e.src = options.permute_ids ? perm[src] : src;
    e.dst = options.permute_ids ? perm[dst] : dst;
    e.weight = options.weighted ? RandomWeight(rng, 100.0) : 1.0f;
    if (!emit(e)) {
      return;
    }
  }
}

}  // namespace

InputGraph GenerateRmat(const RmatOptions& options) {
  InputGraph g;
  g.num_vertices = 1ull << options.scale;
  g.weighted = options.weighted;
  g.edges.reserve(g.num_vertices * options.edges_per_vertex);
  RmatEdges(options, [&g](const Edge& e) {
    g.edges.push_back(e);
    return true;
  });
  return g;
}

void StreamRmat(const RmatOptions& options, uint64_t batch_edges,
                const std::function<bool(const std::vector<Edge>&)>& sink) {
  CHAOS_CHECK_GT(batch_edges, 0u);
  std::vector<Edge> batch;
  batch.reserve(batch_edges);
  bool more = true;
  RmatEdges(options, [&](const Edge& e) {
    batch.push_back(e);
    if (batch.size() >= batch_edges) {
      more = sink(batch);
      batch.clear();
    }
    return more;
  });
  if (more && !batch.empty()) {
    sink(batch);
  }
}

InputGraph GenerateWebGraph(const WebGraphOptions& options) {
  CHAOS_CHECK_GT(options.num_hosts, 0u);
  CHAOS_CHECK_GE(options.num_pages, options.num_hosts);
  InputGraph g;
  g.num_vertices = options.num_pages;
  g.weighted = options.weighted;

  Rng rng(options.seed);

  // Assign pages to hosts with Zipf-distributed host sizes.
  ZipfSampler host_sampler(options.num_hosts, options.host_zipf_exponent);
  std::vector<uint64_t> host_of(options.num_pages);
  std::vector<std::vector<uint64_t>> host_pages(options.num_hosts);
  for (uint64_t p = 0; p < options.num_pages; ++p) {
    const uint64_t h = p < options.num_hosts ? p : host_sampler.Sample(rng);
    host_of[p] = h;
    host_pages[h].push_back(p);
  }

  // Popular cross-host targets (global Zipf over pages).
  ZipfSampler page_sampler(options.num_pages, options.page_zipf_exponent);

  const auto target_edges =
      static_cast<uint64_t>(options.mean_out_degree * static_cast<double>(options.num_pages));
  g.edges.reserve(target_edges);
  for (uint64_t i = 0; i < target_edges; ++i) {
    // Source pages: heavier pages link more (size-biased via global Zipf).
    const uint64_t src = page_sampler.Sample(rng);
    uint64_t dst;
    if (rng.Bernoulli(options.intra_host_fraction)) {
      const auto& pages = host_pages[host_of[src]];
      dst = pages[rng.Below(pages.size())];
    } else {
      dst = page_sampler.Sample(rng);
    }
    Edge e;
    e.src = src;
    e.dst = dst;
    e.weight = options.weighted ? RandomWeight(rng, 10.0) : 1.0f;
    g.edges.push_back(e);
  }
  return g;
}

InputGraph GenerateGridGraph(const GridGraphOptions& options) {
  InputGraph g;
  const uint64_t w = options.width;
  const uint64_t h = options.height;
  g.num_vertices = w * h;
  g.weighted = options.weighted;
  Rng rng(options.seed);
  auto id = [w](uint64_t x, uint64_t y) { return y * w + x; };
  for (uint64_t y = 0; y < h; ++y) {
    for (uint64_t x = 0; x < w; ++x) {
      if (x + 1 < w) {
        const float weight =
            options.weighted ? RandomWeight(rng, options.max_weight) : 1.0f;
        g.edges.push_back(Edge{id(x, y), id(x + 1, y), weight, kEdgeForward});
        g.edges.push_back(Edge{id(x + 1, y), id(x, y), weight, kEdgeForward});
      }
      if (y + 1 < h) {
        const float weight =
            options.weighted ? RandomWeight(rng, options.max_weight) : 1.0f;
        g.edges.push_back(Edge{id(x, y), id(x, y + 1), weight, kEdgeForward});
        g.edges.push_back(Edge{id(x, y + 1), id(x, y), weight, kEdgeForward});
      }
    }
  }
  return g;
}

InputGraph GenerateUniformRandom(uint64_t num_vertices, uint64_t num_edges, bool weighted,
                                 uint64_t seed) {
  CHAOS_CHECK_GT(num_vertices, 0u);
  InputGraph g;
  g.num_vertices = num_vertices;
  g.weighted = weighted;
  g.edges.reserve(num_edges);
  Rng rng(seed);
  for (uint64_t i = 0; i < num_edges; ++i) {
    Edge e;
    e.src = rng.Below(num_vertices);
    e.dst = rng.Below(num_vertices);
    e.weight = weighted ? RandomWeight(rng, 100.0) : 1.0f;
    g.edges.push_back(e);
  }
  return g;
}

}  // namespace chaos
