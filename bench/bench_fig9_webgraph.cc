// Figure 9: strong scaling on the web graph (Data Commons substitute) from
// HDDs, BFS and PageRank, m = 1..32. Paper: speedups of 20x (BFS) and
// 18.5x (PR) at 32 machines — better than RMAT-27 strong scaling because
// the graph is much larger.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig9, "Figure 9: strong scaling on the web graph from HDDs") {
  Options opt;
  opt.AddInt("pages-log2", 15, "log2 of page count (paper: 1.7B pages)");
  opt.AddInt("mean-degree", 20, "mean out-degree (Data Commons 2014: ~38)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  WebGraphOptions wopt;
  wopt.num_pages = 1ull << static_cast<uint32_t>(opt.GetInt("pages-log2"));
  wopt.num_hosts = std::max<uint64_t>(wopt.num_pages >> 8, 16);
  wopt.mean_out_degree = static_cast<double>(opt.GetInt("mean-degree"));
  wopt.seed = static_cast<uint64_t>(opt.GetInt("seed"));
  InputGraph raw = GenerateWebGraph(wopt);

  std::printf("== Figure 9: strong scaling, web graph (%llu pages, %llu links), HDD ==\n",
              static_cast<unsigned long long>(raw.num_vertices),
              static_cast<unsigned long long>(raw.num_edges()));
  PrintHeader({"algorithm", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "speedup@32"});
  for (const std::string name : {"bfs", "pagerank"}) {
    PrintCell(name);
    InputGraph prepared = PrepareInput(name, raw);
    double base_seconds = 0.0;
    double last = 1.0;
    for (const int m : MachineSweep()) {
      // The web graph does not fit on SSDs (§9.2): HDD profile.
      ClusterConfig cfg =
          BenchClusterConfig(prepared, m, wopt.seed, StorageConfig::Hdd());
      auto result = RunChaosAlgorithm(name, prepared, cfg);
      const double seconds = result.metrics.total_seconds();
      if (m == 1) {
        base_seconds = seconds;
      }
      last = base_seconds > 0 ? seconds / base_seconds : 0.0;
      PrintCell(last);
    }
    PrintCell(last > 0 ? 1.0 / last : 0.0, "%.1fx");
    EndRow();
  }
  std::printf("\npaper: BFS 20x, PR 18.5x at m=32 on Data Commons\n");
  return 0;
}
