#include "graph/types.h"

namespace chaos {

InputGraph MakeUndirected(const InputGraph& g) {
  InputGraph out;
  out.num_vertices = g.num_vertices;
  out.weighted = g.weighted;
  out.edges.reserve(g.edges.size() * 2);
  for (const Edge& e : g.edges) {
    out.edges.push_back(e);
    Edge reverse = e;
    reverse.src = e.dst;
    reverse.dst = e.src;
    out.edges.push_back(reverse);
  }
  return out;
}

InputGraph MakeBidirected(const InputGraph& g) {
  InputGraph out;
  out.num_vertices = g.num_vertices;
  out.weighted = g.weighted;
  out.edges.reserve(g.edges.size() * 2);
  for (const Edge& e : g.edges) {
    out.edges.push_back(e);
    Edge reverse = e;
    reverse.src = e.dst;
    reverse.dst = e.src;
    reverse.flags = kEdgeReverse;
    out.edges.push_back(reverse);
  }
  return out;
}

std::vector<uint32_t> OutDegrees(const InputGraph& g) {
  std::vector<uint32_t> degrees(g.num_vertices, 0);
  for (const Edge& e : g.edges) {
    if (e.flags == kEdgeForward) {
      degrees[e.src]++;
    }
  }
  return degrees;
}

bool ValidateGraph(const InputGraph& g, std::string* error) {
  for (const Edge& e : g.edges) {
    if (e.src >= g.num_vertices || e.dst >= g.num_vertices) {
      if (error != nullptr) {
        *error = "edge endpoint out of range: " + std::to_string(e.src) + " -> " +
                 std::to_string(e.dst) + " (n=" + std::to_string(g.num_vertices) + ")";
      }
      return false;
    }
  }
  return true;
}

}  // namespace chaos
