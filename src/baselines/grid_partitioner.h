// PowerGraph grid (2D constrained) vertex-cut partitioner, the upfront
// partitioning baseline of Fig. 20.
//
// Machines are arranged in an r x c grid. Each vertex hashes to a shard
// whose constraint set is its grid row plus column; an edge may be placed on
// any machine in the intersection of its endpoints' constraint sets, and the
// least-loaded candidate is chosen. This is the in-memory algorithm the
// paper runs for its comparison (§10.3); the bench charges its cost in
// simulated time using a calibrated per-edge cost plus the input-scan I/O.
#ifndef CHAOS_BASELINES_GRID_PARTITIONER_H_
#define CHAOS_BASELINES_GRID_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sim/time.h"

namespace chaos {

struct GridPartitionResult {
  int machines = 0;
  int rows = 0;
  int cols = 0;
  std::vector<uint64_t> edges_per_machine;
  // Average number of machines holding a replica of each vertex (the
  // vertex-cut replication factor PowerGraph optimizes).
  double replication_factor = 0.0;
  // Load imbalance: max/mean edges per machine.
  double imbalance = 0.0;
  // Host-side wall time of the partitioning algorithm itself, used to
  // calibrate the per-edge cost charged in simulated time.
  double host_seconds = 0.0;
};

GridPartitionResult GridPartition(const InputGraph& graph, int machines, uint64_t seed);

// Simulated time for grid-partitioning `edges` edges on `machines` machines:
// one scan of the input from storage at aggregate bandwidth plus the
// partitioning CPU cost (ns_per_edge, single core, measured by bench_micro;
// PowerGraph parallelizes across machines and cores).
TimeNs GridPartitionSimTime(uint64_t edges, uint64_t edge_wire_bytes, int machines,
                            double device_bandwidth_bps, double ns_per_edge, int cores);

}  // namespace chaos

#endif  // CHAOS_BASELINES_GRID_PARTITIONER_H_
