// Validation of the ten GAS benchmark algorithms on the Chaos cluster and
// the X-Stream baseline against in-memory references, including the
// extended-model algorithms (MIS, SCC, MCST) and parameterized sweeps over
// machine counts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algorithms/runner.h"
#include "baselines/grid_partitioner.h"
#include "graph/generators.h"
#include "graph/ref/reference.h"

namespace chaos {
namespace {

ClusterConfig SmallConfig(int machines, uint64_t seed = 42) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.seed = seed;
  return cfg;
}

InputGraph SmallRmat(uint64_t seed, bool weighted = false, uint32_t scale = 8) {
  RmatOptions opt;
  opt.scale = scale;
  opt.weighted = weighted;
  opt.seed = seed;
  return GenerateRmat(opt);
}

// ---------------------------------------------------------------- MIS

TEST(MisTest, ProducesMaximalIndependentSet) {
  InputGraph g = PrepareInput("mis", SmallRmat(3));
  auto result = RunJob(MakeJob("mis", g, SmallConfig(4)));
  std::vector<uint8_t> in_set(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    in_set[v] = result.values[v] > 0.5 ? 1 : 0;
  }
  EXPECT_TRUE(ref::IsMaximalIndependentSet(g, in_set));
}

TEST(MisTest, IndependentOfMachineCount) {
  InputGraph g = PrepareInput("mis", SmallRmat(5));
  auto base = RunJob(MakeJob("mis", g, SmallConfig(1)));
  for (const int machines : {2, 8}) {
    auto result = RunJob(MakeJob("mis", g, SmallConfig(machines)));
    EXPECT_EQ(result.values, base.values) << "machines=" << machines;
  }
}

TEST(MisTest, SparseGraphManyRounds) {
  InputGraph g = PrepareInput("mis", GenerateUniformRandom(500, 400, false, 7));
  auto result = RunJob(MakeJob("mis", g, SmallConfig(2)));
  std::vector<uint8_t> in_set(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    in_set[v] = result.values[v] > 0.5 ? 1 : 0;
  }
  EXPECT_TRUE(ref::IsMaximalIndependentSet(g, in_set));
  // Isolated vertices must all join the set.
  std::vector<uint8_t> has_edge(g.num_vertices, 0);
  for (const Edge& e : g.edges) {
    has_edge[e.src] = has_edge[e.dst] = 1;
  }
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (!has_edge[v]) {
      EXPECT_EQ(in_set[v], 1) << "isolated vertex " << v;
    }
  }
}

// ---------------------------------------------------------------- SCC

std::vector<uint32_t> ToGroupIds(const std::vector<double>& values) {
  std::vector<uint32_t> out;
  out.reserve(values.size());
  std::map<double, uint32_t> ids;
  for (const double v : values) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(ids.size()));
    out.push_back(it->second);
  }
  return out;
}

TEST(SccTest, MatchesTarjanOnRandomDigraph) {
  InputGraph raw = GenerateUniformRandom(300, 900, false, 11);
  InputGraph prepared = PrepareInput("scc", raw);
  auto result = RunJob(MakeJob("scc", prepared, SmallConfig(4)));
  auto expect = ref::StronglyConnectedComponents(raw);
  EXPECT_TRUE(ref::SamePartition(ToGroupIds(result.values), expect));
}

TEST(SccTest, CycleChainAndSingletons) {
  // Two 3-cycles joined by a one-way bridge plus isolated vertices.
  InputGraph raw;
  raw.num_vertices = 9;
  auto add = [&](VertexId a, VertexId b) {
    raw.edges.push_back(Edge{a, b, 1.0f, kEdgeForward});
  };
  add(0, 1);
  add(1, 2);
  add(2, 0);
  add(3, 4);
  add(4, 5);
  add(5, 3);
  add(2, 3);  // bridge
  auto result = RunJob(MakeJob("scc", PrepareInput("scc", raw), SmallConfig(2)));
  auto expect = ref::StronglyConnectedComponents(raw);
  EXPECT_TRUE(ref::SamePartition(ToGroupIds(result.values), expect));
}

TEST(SccTest, IndependentOfMachineCount) {
  InputGraph raw = GenerateUniformRandom(200, 600, false, 13);
  InputGraph prepared = PrepareInput("scc", raw);
  auto base = RunJob(MakeJob("scc", prepared, SmallConfig(1)));
  auto multi = RunJob(MakeJob("scc", prepared, SmallConfig(8)));
  EXPECT_EQ(base.values, multi.values);
}

TEST(SccTest, DenseRmatDigraph) {
  InputGraph raw = SmallRmat(17);
  auto result = RunJob(MakeJob("scc", PrepareInput("scc", raw), SmallConfig(4)));
  auto expect = ref::StronglyConnectedComponents(raw);
  EXPECT_TRUE(ref::SamePartition(ToGroupIds(result.values), expect));
}

// ---------------------------------------------------------------- MCST

TEST(McstTest, MatchesKruskalWeight) {
  InputGraph raw = SmallRmat(19, /*weighted=*/true, /*scale=*/7);
  InputGraph prepared = PrepareInput("mcst", raw);
  auto result = RunJob(MakeJob("mcst", prepared, SmallConfig(4)));
  auto expect = ref::KruskalMsf(prepared);
  EXPECT_EQ(result.output_records, expect.num_edges);
  EXPECT_NEAR(result.scalar, expect.total_weight, 1e-2);
}

TEST(McstTest, ForestOnDisconnectedGraph) {
  InputGraph raw = GenerateUniformRandom(200, 150, true, 23);
  InputGraph prepared = PrepareInput("mcst", raw);
  auto result = RunJob(MakeJob("mcst", prepared, SmallConfig(2)));
  auto expect = ref::KruskalMsf(prepared);
  EXPECT_EQ(result.output_records, expect.num_edges);
  EXPECT_NEAR(result.scalar, expect.total_weight, 1e-2);
  // Final component labels must match weak connectivity.
  auto wcc = ref::ComponentLabels(prepared);
  std::vector<uint32_t> got32 = ToGroupIds(result.values);
  std::vector<uint32_t> want32;
  want32.reserve(wcc.size());
  for (const VertexId label : wcc) {
    want32.push_back(static_cast<uint32_t>(label));
  }
  EXPECT_TRUE(ref::SamePartition(got32, want32));
}

TEST(McstTest, PathGraphPicksAllEdges) {
  InputGraph raw;
  raw.num_vertices = 32;
  raw.weighted = true;
  for (VertexId v = 0; v + 1 < raw.num_vertices; ++v) {
    raw.edges.push_back(Edge{v, v + 1, 1.0f + static_cast<float>(v), kEdgeForward});
  }
  InputGraph prepared = PrepareInput("mcst", raw);
  auto result = RunJob(MakeJob("mcst", prepared, SmallConfig(2)));
  EXPECT_EQ(result.output_records, raw.num_vertices - 1);
}

TEST(McstTest, IndependentOfMachineCountAndSteal) {
  InputGraph raw = SmallRmat(29, true, 7);
  InputGraph prepared = PrepareInput("mcst", raw);
  auto expect = ref::KruskalMsf(prepared);
  for (const int machines : {1, 4}) {
    ClusterConfig cfg = SmallConfig(machines);
    cfg.alpha = machines == 1 ? 0.0 : std::numeric_limits<double>::infinity();
    auto result = RunJob(MakeJob("mcst", prepared, cfg));
    EXPECT_EQ(result.output_records, expect.num_edges) << "machines=" << machines;
    EXPECT_NEAR(result.scalar, expect.total_weight, 1e-2) << "machines=" << machines;
  }
}

// ------------------------------------------------------------- registry

TEST(RunnerTest, AlgorithmTableMatchesPaper) {
  const auto& algorithms = Algorithms();
  ASSERT_EQ(algorithms.size(), 10u);
  EXPECT_EQ(algorithms[0].name, "bfs");
  EXPECT_EQ(algorithms[2].name, "mcst");
  EXPECT_TRUE(algorithms[2].needs_weights);
  EXPECT_TRUE(AlgorithmByName("scc").needs_bidirected);
  EXPECT_FALSE(AlgorithmByName("pagerank").needs_undirected);
}

TEST(RunnerTest, PrepareInputTransforms) {
  InputGraph raw = SmallRmat(31, false, 6);
  EXPECT_EQ(PrepareInput("bfs", raw).num_edges(), raw.num_edges() * 2);
  EXPECT_EQ(PrepareInput("scc", raw).num_edges(), raw.num_edges() * 2);
  EXPECT_EQ(PrepareInput("pagerank", raw).num_edges(), raw.num_edges());
}

TEST(RunnerTest, UnknownAlgorithmAborts) {
  InputGraph raw = SmallRmat(31, false, 6);
  EXPECT_DEATH(RunJob(MakeJob("nope", raw, SmallConfig(1))), "unknown algorithm");
}

// Parameterized sweep: every algorithm runs end-to-end on 1 and 4 machines
// and produces consistent results between the two.
class AllAlgorithmsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithmsTest, ClusterConsistentAcrossMachines) {
  const std::string& name = GetParam();
  InputGraph raw = SmallRmat(37, AlgorithmByName(name).needs_weights, 7);
  InputGraph prepared = PrepareInput(name, raw);
  auto one = RunJob(MakeJob(name, prepared, SmallConfig(1)));
  auto four = RunJob(MakeJob(name, prepared, SmallConfig(4)));
  ASSERT_EQ(one.values.size(), four.values.size());
  for (size_t v = 0; v < one.values.size(); ++v) {
    if (std::isinf(one.values[v])) {
      ASSERT_TRUE(std::isinf(four.values[v])) << name << " vertex " << v;
      continue;
    }
    // Float gather order differs across machine counts.
    ASSERT_NEAR(one.values[v], four.values[v], 1e-2 * (1.0 + std::abs(one.values[v])))
        << name << " vertex " << v;
  }
  EXPECT_GT(four.metrics.total_time, 0);
}

TEST_P(AllAlgorithmsTest, XStreamMatchesCluster) {
  const std::string& name = GetParam();
  InputGraph raw = SmallRmat(41, AlgorithmByName(name).needs_weights, 7);
  InputGraph prepared = PrepareInput(name, raw);
  XStreamConfig xcfg;
  xcfg.memory_budget_bytes = 8 << 10;
  xcfg.chunk_bytes = 2 << 10;
  auto xs = RunXStreamAlgorithm(name, prepared, xcfg);
  auto chaos_run = RunJob(MakeJob(name, prepared, SmallConfig(1)));
  ASSERT_EQ(xs.values.size(), chaos_run.values.size());
  for (size_t v = 0; v < xs.values.size(); ++v) {
    if (std::isinf(xs.values[v])) {
      ASSERT_TRUE(std::isinf(chaos_run.values[v])) << name << " vertex " << v;
      continue;
    }
    ASSERT_NEAR(xs.values[v], chaos_run.values[v], 1e-2 * (1.0 + std::abs(xs.values[v])))
        << name << " vertex " << v;
  }
  EXPECT_EQ(xs.output_records, chaos_run.output_records);
  EXPECT_GT(xs.total_time, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTen, AllAlgorithmsTest,
                         ::testing::Values("bfs", "wcc", "mcst", "mis", "sssp", "pagerank",
                                           "scc", "conductance", "spmv", "bp"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------------------ baselines

TEST(GridPartitionerTest, AssignsEveryEdgeWithinConstraints) {
  InputGraph g = SmallRmat(43, false, 8);
  auto result = GridPartition(g, 16, 7);
  uint64_t total = 0;
  for (const uint64_t count : result.edges_per_machine) {
    total += count;
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(result.machines, 16);
  EXPECT_EQ(result.rows * result.cols, 16);
}

TEST(GridPartitionerTest, ReplicationBoundedByGridDimensions) {
  InputGraph g = SmallRmat(47, false, 8);
  auto result = GridPartition(g, 16, 7);
  // Grid vertex-cuts replicate each vertex at most 2*sqrt(M)-1 times.
  EXPECT_GT(result.replication_factor, 1.0);
  EXPECT_LE(result.replication_factor, 2.0 * 4 - 1);
}

TEST(GridPartitionerTest, LoadBalanceReasonable) {
  InputGraph g = SmallRmat(49, false, 10);
  auto result = GridPartition(g, 8, 7);
  EXPECT_LT(result.imbalance, 1.5);
  EXPECT_GE(result.imbalance, 1.0);
}

TEST(GridPartitionerTest, SimTimeScalesWithEdges) {
  const TimeNs small = GridPartitionSimTime(1 << 20, 8, 8, 400e6, 60.0, 16);
  const TimeNs large = GridPartitionSimTime(1 << 22, 8, 8, 400e6, 60.0, 16);
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 4.0, 0.01);
  EXPECT_GT(small, 0);
}

}  // namespace
}  // namespace chaos
