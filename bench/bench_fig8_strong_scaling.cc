// Figure 8: strong scaling — fixed RMAT graph, m = 1..32, runtime
// normalized to 1 machine. Paper: ~13x mean speedup at 32 machines on
// RMAT-27 (Cond 23x, MCST 8x); sub-linear because the graph is small.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig8, "Figure 8: strong scaling on fixed RMAT graph") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 27)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Figure 8: strong scaling RMAT-%u, runtime normalized to m=1 ==\n", scale);
  PrintHeader({"algorithm", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "speedup@32"});
  RunningStat speedups;
  for (const auto& info : Algorithms()) {
    PrintCell(info.name);
    InputGraph raw = BenchRmat(scale, info.needs_weights, seed);
    InputGraph prepared = PrepareInput(info.name, raw);
    double base_seconds = 0.0;
    double last_norm = 1.0;
    for (const int m : MachineSweep()) {
      auto result =
          RunChaosAlgorithm(info.name, prepared, BenchClusterConfig(prepared, m, seed));
      const double seconds = result.metrics.total_seconds();
      if (m == 1) {
        base_seconds = seconds;
      }
      last_norm = base_seconds > 0 ? seconds / base_seconds : 0.0;
      PrintCell(last_norm);
    }
    const double speedup = last_norm > 0 ? 1.0 / last_norm : 0.0;
    speedups.Add(speedup);
    PrintCell(speedup, "%.1fx");
    EndRow();
  }
  std::printf("\nmean speedup at m=32: %.1fx (paper: ~13x on RMAT-27)\n", speedups.mean());
  return 0;
}
