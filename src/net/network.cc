#include "net/network.h"

#include <utility>

namespace chaos {

NetworkConfig NetworkConfig::FortyGigE() {
  NetworkConfig c;
  c.nic_bandwidth_bps = 5e9;  // 40 Gbit/s
  c.one_way_latency = 50 * kNsPerUs;
  return c;
}

NetworkConfig NetworkConfig::OneGigE() {
  NetworkConfig c;
  c.nic_bandwidth_bps = 1.25e8;  // 1 Gbit/s
  c.one_way_latency = 50 * kNsPerUs;
  return c;
}

uint64_t UpdateWireCodec::PackedFrameBytes(const uint64_t* dst, uint32_t n,
                                           uint64_t value_bytes) {
  UpdateWireSizer sizer;
  for (uint32_t i = 0; i < n; ++i) {
    sizer.Add(dst[i]);
  }
  return sizer.PackedFrameBytes(value_bytes);
}

namespace {

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t GetVarint(const uint8_t* in, size_t in_len, size_t* pos) {
  uint64_t v = 0;
  uint32_t shift = 0;
  while (true) {
    CHAOS_CHECK(*pos < in_len);
    const uint8_t b = in[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
    CHAOS_CHECK(shift < 64);
  }
}

constexpr uint8_t kPackedUpdateFrame = 1;

}  // namespace

void UpdateWireCodec::Encode(const uint64_t* dst, const uint8_t* values, uint32_t n,
                             uint64_t value_bytes, std::vector<uint8_t>* out) {
  out->push_back(kPackedUpdateFrame);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    PutVarint(ZigZag(static_cast<int64_t>(dst[i]) - static_cast<int64_t>(prev)), out);
    prev = dst[i];
  }
  out->insert(out->end(), values, values + n * value_bytes);
}

uint32_t UpdateWireCodec::Decode(const uint8_t* in, size_t in_len, uint64_t value_bytes,
                                 std::vector<uint64_t>* dst,
                                 std::vector<uint8_t>* values) {
  CHAOS_CHECK(in_len >= 1);
  CHAOS_CHECK_EQ(in[0], kPackedUpdateFrame);
  // The value column sits at the tail; its length pins the record count:
  // frame = 1 + varints + n * value_bytes, so walk varints until the
  // remaining bytes are exactly the value column.
  size_t pos = 1;
  uint32_t n = 0;
  uint64_t prev = 0;
  const size_t first_dst = dst->size();
  while (pos + (static_cast<size_t>(n) + 1) * value_bytes <= in_len) {
    // Peek-free: every varint consumed must still leave room for one value
    // per decoded id. Stop once ids and values exactly tile the frame.
    if (pos + static_cast<size_t>(n) * value_bytes == in_len) {
      break;
    }
    const uint64_t delta = GetVarint(in, in_len, &pos);
    prev = static_cast<uint64_t>(static_cast<int64_t>(prev) + UnZigZag(delta));
    dst->push_back(prev);
    ++n;
  }
  CHAOS_CHECK_EQ(pos + static_cast<size_t>(n) * value_bytes, in_len);
  CHAOS_CHECK_EQ(dst->size() - first_dst, n);
  values->insert(values->end(), in + pos, in + in_len);
  return n;
}

Network::Network(Simulator* sim, int machines, const NetworkConfig& config)
    : sim_(sim), machines_(machines), config_(config) {
  CHAOS_CHECK_GT(machines, 0);
  links_.resize(static_cast<size_t>(machines));
  for (int m = 0; m < machines; ++m) {
    links_[static_cast<size_t>(m)].up =
        std::make_unique<FifoResource>(sim, "nic-up-" + std::to_string(m));
    links_[static_cast<size_t>(m)].down =
        std::make_unique<FifoResource>(sim, "nic-down-" + std::to_string(m));
    links_[static_cast<size_t>(m)].bandwidth_bps = config.nic_bandwidth_bps;
  }
}

uint64_t Network::total_bytes() const {
  uint64_t total = 0;
  for (const auto& link : links_) {
    total += link.bytes_sent;
  }
  return total;
}

MessageBus::MessageBus(Simulator* sim, Network* network) : sim_(sim), net_(network) {
  inboxes_.reserve(static_cast<size_t>(network->machines()) * kNumServices);
  for (int m = 0; m < network->machines(); ++m) {
    for (int s = 0; s < kNumServices; ++s) {
      inboxes_.push_back(std::make_unique<SimQueue<Message>>(sim));
    }
  }
}

SimQueue<Message>& MessageBus::Inbox(MachineId machine, int service) {
  CHAOS_CHECK(machine >= 0 && machine < net_->machines());
  CHAOS_CHECK(service >= 0 && service < kNumServices);
  return *inboxes_[static_cast<size_t>(machine) * kNumServices + static_cast<size_t>(service)];
}

void MessageBus::Deliver(Message m) {
  ++delivered_;
  if (m.is_response) {
    auto it = pending_.find(m.rpc_id);
    CHAOS_CHECK_MSG(it != pending_.end(),
                    "response for unknown rpc_id " + std::to_string(m.rpc_id));
    PendingCall* call = it->second;
    pending_.erase(it);
    call->response = std::move(m);
    call->ready = true;
    if (call->waiter) {
      sim_->Resume(call->waiter);
    }
    return;
  }
  Inbox(m.dst, m.service).Push(std::move(m));
}

internal::DetachedTask MessageBus::FinishRemote(Message m, TimeNs extra_latency) {
  co_await sim_->Delay(extra_latency);
  FifoResource& down = net_->Downlink(m.dst);
  TimeNs service = net_->TxTime(m.dst, m.wire_bytes);
  const NetworkConfig& cfg = net_->config();
  if (cfg.model_incast && down.Backlog(sim_->now()) > cfg.incast_backlog_threshold) {
    service += cfg.incast_penalty;
    net_->NoteIncast();
  }
  co_await down.Acquire(service);
  net_->NoteReceived(m.dst, m.wire_bytes);
  Deliver(std::move(m));
}

Task<> MessageBus::Send(Message m) {
  CHAOS_CHECK(m.dst >= 0 && m.dst < net_->machines());
  if (m.src == m.dst) {
    // Same machine: no NIC involvement, just IPC latency.
    co_await sim_->Delay(net_->config().local_latency);
    Deliver(std::move(m));
    co_return;
  }
  net_->NoteSent(m.src, m.wire_bytes);
  co_await net_->Uplink(m.src).Acquire(net_->TxTime(m.src, m.wire_bytes));
  // Propagation and receiver-side work continue without blocking the sender.
  FinishRemote(std::move(m), net_->config().one_way_latency);
}

Task<Message> MessageBus::Call(Message request) {
  CHAOS_CHECK_EQ(request.rpc_id, 0u);
  CHAOS_CHECK(!request.is_response);
  request.rpc_id = next_rpc_id_++;
  PendingCall call;
  pending_.emplace(request.rpc_id, &call);
  co_await Send(std::move(request));
  struct ResponseAwaiter {
    PendingCall* call;
    bool await_ready() const noexcept { return call->ready; }
    void await_suspend(std::coroutine_handle<> h) { call->waiter = h; }
    void await_resume() const noexcept {}
  };
  co_await ResponseAwaiter{&call};
  CHAOS_CHECK(call.ready);
  co_return std::move(call.response);
}

void MessageBus::PostReply(const Message& request, uint32_t type, uint64_t wire_bytes,
                           std::any body) {
  CHAOS_CHECK_NE(request.rpc_id, 0u);
  Message response;
  response.src = request.dst;
  response.dst = request.src;
  response.service = request.service;
  response.rpc_id = request.rpc_id;
  response.is_response = true;
  response.type = type;
  response.wire_bytes = wire_bytes;
  response.body = std::move(body);
  PostSend(std::move(response));
}

}  // namespace chaos
