// Batched chunk I/O between a computation engine and the storage
// sub-system: the fetch pipeline implementing the paper's batching (§6.5)
// and the windowed chunk writer.
#ifndef CHAOS_CORE_CHUNK_IO_H_
#define CHAOS_CORE_CHUNK_IO_H_

#include <deque>
#include <optional>
#include <vector>

#include "core/buffer_pool.h"
#include "core/config.h"
#include "core/metrics.h"
#include "net/network.h"
#include "sim/sync.h"
#include "storage/chunk.h"
#include "storage/directory.h"
#include "storage/storage_engine.h"
#include "util/rng.h"

namespace chaos {

// Graph facts an engine may know without holding the graph in memory.
struct GraphMeta {
  uint64_t num_vertices = 0;
  bool weighted = false;
  uint64_t edge_wire_bytes = 8;
  uint64_t vertex_id_wire_bytes = 4;
};

// Everything a computation engine needs to talk to the rest of the cluster.
// Storage engine pointers are used for *local* queries only (the D estimate,
// §5.4) — all data moves through the message bus.
struct EngineContext {
  Simulator* sim = nullptr;
  Network* net = nullptr;
  MessageBus* bus = nullptr;
  std::vector<StorageEngine*> storage;
  DirectoryServer* directory = nullptr;  // non-null in kCentralDirectory mode
  const ClusterConfig* config = nullptr;
  const FaultInjector* faults = nullptr;  // non-null when a schedule is set
  // This machine's buffer pool (core/buffer_pool.h): every sizable buffer
  // the engine and its I/O pipelines hold acquires pages here. May be null
  // (tests assembling a bare context), in which case memory is untracked.
  BufferPool* pool = nullptr;
  // Evolving-graph mutation feed (core/mutation_feed.h), shared by every
  // engine of the cluster; null for static runs. The coordinator plans
  // epochs at convergence barriers, every engine applies the planned delta.
  class MutationFeed* mutations = nullptr;
  // This machine's record arena (core/record_arena.h): binner fill blocks,
  // RecordBatch buffers and chunk payloads lease here. May be null (bare
  // test contexts) — consumers fall back to private arenas / direct
  // aligned allocation. Host memory only; invisible to the simulation.
  class RecordArena* arena = nullptr;
  MachineId machine = 0;

  int machines() const { return config->machines; }
  StorageEngine* local_storage() const { return storage[static_cast<size_t>(machine)]; }

  // This machine's CPU cost model (heterogeneous profiles honored).
  const CostModel& cost() const { return config->cost_for(machine); }

  // Stretches a nominal CPU delay by any active fault on this machine; all
  // engine compute delays route through here so CPU degradation applies.
  TimeNs ScaleCpu(TimeNs t) const {
    return faults == nullptr ? t : faults->ScaleCpu(machine, t);
  }
  TimeNs CpuTime(uint64_t items, double ns_per_item) const {
    return ScaleCpu(cost().ItemsTime(items, ns_per_item));
  }
  TimeNs MessageTime() const { return ScaleCpu(cost().MessageTime()); }
};

// Fetches all chunks of one (set, epoch), keeping `window` requests
// outstanding across distinct uniformly-chosen storage engines that have not
// yet reported the set empty. Exhaustion is detected when every engine has
// answered empty (§6.3). In kLocalMaster mode only the owning engine is
// queried; in kCentralDirectory mode targets come from the directory.
class ChunkFetcher {
 public:
  // `preserve_payload` marks a non-consuming scan (checkpoint snapshots):
  // the storage engines keep update-set payloads resident after serving.
  ChunkFetcher(EngineContext* ctx, Rng* rng, SetId set, uint64_t epoch, int window,
               MachineId local_master_target = kNoMachine, bool preserve_payload = false);

  // Must be called once; spawns the fetch workers.
  void Start();

  // Next chunk, or nullopt when the set is exhausted for this epoch.
  Task<std::optional<Chunk>> Next();

  // Abandons the scan: stops issuing requests, lets in-flight ones complete
  // and waits for every worker to exit, then discards buffered chunks.
  // Unserved chunks stay in storage. Used by an engine whose machine was
  // fault-killed mid-scan, so its coroutines drain instead of leaking.
  Task<> Cancel();

  uint64_t chunks_fetched() const { return chunks_fetched_; }
  uint64_t bytes_fetched() const { return bytes_fetched_; }

 private:
  Task<> Worker();
  Task<> DirectoryWorker();
  // Chooses a target engine: uniform among engines not known-empty, biased
  // to those with the fewest of our in-flight requests (approximates the
  // k-distinct-engines window of the utilization analysis, §6.5).
  MachineId PickTarget();

  EngineContext* ctx_;
  Rng* rng_;
  SetId set_;
  uint64_t epoch_;
  int window_;
  bool preserve_payload_;
  MachineId forced_target_;

  // A fetched-but-unconsumed chunk and the pool lease backing its bytes.
  struct Buffered {
    Chunk chunk;
    BufferPool::Lease lease;
  };

  CondEvent cond_;
  std::deque<Buffered> ready_;
  int credits_;  // window minus (in-flight requests + unconsumed chunks)
  std::vector<uint8_t> engine_empty_;
  std::vector<int> in_flight_per_engine_;
  int engines_left_ = 0;
  int workers_active_ = 0;
  bool directory_exhausted_ = false;
  bool cancelled_ = false;
  bool started_ = false;
  uint64_t chunks_fetched_ = 0;
  uint64_t bytes_fetched_ = 0;
};

// Writes chunks with bounded in-flight window; placement per config. Write
// completions are collected by Drain(), which must be awaited before the
// phase barrier (updates must be durable before gather starts).
class ChunkWriter {
 public:
  ChunkWriter(EngineContext* ctx, Rng* rng, int window);

  // Acquires a window slot, then transfers in the background. Sequential
  // sets are placed per the configured policy; indexed sets (vertex and
  // checkpoint chunks) always go to `home_or_master`, their hashed home.
  Task<> Write(SetId set, Chunk chunk, MachineId home_or_master);

  // Waits until every issued write has been acknowledged.
  Task<> Drain();

  // Enables columnar wire combining (config wire_combine) for outbound
  // update-set chunks: kUpdatesEven/kUpdatesOdd writes charge the NIC the
  // combined frame size (net/network.h, UpdateWireCodec) instead of the
  // verbatim batch. Pure re-encoding of the transfer — model_bytes, the
  // pool lease and the stored chunk are untouched, so storage-side
  // accounting and every downstream read are identical. `metrics` may be
  // null (tests); the saved bytes accrue there otherwise.
  void EnableUpdateCombining(uint64_t vertex_id_wire_bytes, MachineMetrics* metrics) {
    combine_updates_ = true;
    vid_wire_ = vertex_id_wire_bytes;
    metrics_ = metrics;
  }

  uint64_t chunks_written() const { return chunks_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Task<> WriteToEngine(SetId set, Chunk chunk, MachineId target);
  // Combined wire charge for one outbound update chunk (<= model_bytes).
  uint64_t CombinedUpdateWire(const Chunk& chunk) const;

  EngineContext* ctx_;
  Rng* rng_;
  Semaphore window_;
  TaskGroup group_;
  uint64_t chunks_written_ = 0;
  uint64_t bytes_written_ = 0;
  bool combine_updates_ = false;
  uint64_t vid_wire_ = 0;
  MachineMetrics* metrics_ = nullptr;
};

// Broadcast helpers used by masters (update-set deletion, §6.1).
Task<> DeleteSetEverywhere(EngineContext* ctx, SetId set);

}  // namespace chaos

#endif  // CHAOS_CORE_CHUNK_IO_H_
