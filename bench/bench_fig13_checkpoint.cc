// Figure 13: checkpointing overhead. Vertex state is checkpointed with the
// 2-phase protocol at every superstep barrier; the paper measures under 6%
// runtime overhead on a scale-36 graph (BFS and PR, 32 machines, HDD).
//
// The run fails (exit 1) — making `ok` in the chaos-bench JSON an
// executable record of the cheap-checkpointing claim — if the overhead at
// any measured point exceeds --max-overhead-pct. Miniaturized runs inflate
// fixed per-superstep costs relative to the paper's hundreds-of-GB scans,
// so the default threshold is looser than the paper's 6%; it still fails
// loudly if checkpointing ever becomes a first-order cost.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig13, "Figure 13: checkpointing overhead") {
  Options opt;
  opt.AddInt("scale", 13, "RMAT scale (paper: 35)");
  opt.AddInt("machines", 8, "machines (paper: 32)");
  opt.AddDouble("max-overhead-pct", 15.0, "fail if overhead exceeds this at any point");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const double max_overhead = opt.GetDouble("max-overhead-pct");
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"pagerank", "bfs"};

  // Points: (algorithm x {checkpointing off, every superstep}).
  Sweep<double> sweep;
  for (const std::string& name : algos) {
    auto prepared =
        std::make_shared<InputGraph>(PrepareInput(name, BenchRmat(scale, false, seed)));
    for (const uint32_t interval : {0u, 1u}) {
      sweep.Add([name, prepared, machines, seed, interval] {
        ClusterConfig cfg =
            BenchClusterConfig(*prepared, machines, seed, StorageConfig::Hdd());
        cfg.checkpoint_interval = interval;
        return RunJob(MakeJob(name, *prepared, cfg)).metrics.total_seconds();
      });
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 13: checkpointing overhead (RMAT-%u, m=%d, HDD) ==\n", scale,
              machines);
  PrintHeader({"algorithm", "off(s)", "every-step(s)", "overhead"});
  bool ok = true;
  size_t idx = 0;
  for (const std::string& name : algos) {
    const double off_s = seconds[idx++];
    const double on_s = seconds[idx++];
    const double overhead_pct = off_s > 0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
    PrintCell(name);
    PrintCell(off_s);
    PrintCell(on_s);
    PrintCell(overhead_pct, "%.1f%%");
    EndRow();
    RecordMetric("fig13." + name + ".off_sim_s", off_s);
    RecordMetric("fig13." + name + ".ckpt_sim_s", on_s);
    RecordMetric("fig13." + name + ".overhead_pct", overhead_pct);
    if (overhead_pct > max_overhead) {
      ok = false;
    }
  }
  if (!ok) {
    std::printf("\nFAIL: checkpoint overhead exceeded %.1f%% at a measured point\n",
                max_overhead);
    return 1;
  }
  std::printf("\npaper: overhead under 6%% even with hundreds of TB written\n");
  return 0;
}
