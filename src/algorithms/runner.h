// Type-erased entry points over the ten GAS benchmark algorithms, used by
// tests, benches and examples that sweep algorithms by name.
#ifndef CHAOS_ALGORITHMS_RUNNER_H_
#define CHAOS_ALGORITHMS_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/xstream.h"
#include "core/cluster.h"
#include "core/recovery.h"
#include "graph/types.h"

namespace chaos {

// Per-algorithm knobs; unused fields are ignored.
struct AlgoParams {
  VertexId source = 0;      // bfs, sssp
  uint32_t iterations = 5;  // pagerank, bp
  float damping = 0.85f;    // pagerank
  float bp_damping = 0.5f;  // bp
};

struct AlgorithmInfo {
  std::string name;
  bool needs_undirected = false;  // BFS, WCC, MCST, MIS, SSSP (Table 1)
  bool needs_bidirected = false;  // SCC (reverse-flagged edges)
  bool needs_weights = false;     // SSSP, MCST
};

// The paper's Table 1 set, in its order.
const std::vector<AlgorithmInfo>& Algorithms();
const AlgorithmInfo& AlgorithmByName(const std::string& name);

// Applies the required input transformation (undirected / bidirected) for
// the named algorithm. Weighted inputs keep their weights.
InputGraph PrepareInput(const std::string& name, const InputGraph& raw);

struct AlgoResult {
  RunMetrics metrics;
  std::vector<double> values;  // Extract() per vertex
  double scalar = 0.0;         // conductance value / MSF total weight
  uint64_t output_records = 0; // MSF edges emitted
  uint64_t supersteps = 0;
  bool crashed = false;
};

// Runs the named algorithm on a Chaos cluster. `prepared` must already have
// gone through PrepareInput.
AlgoResult RunChaosAlgorithm(const std::string& name, const InputGraph& prepared,
                             const ClusterConfig& config, const AlgoParams& params = {});

// Same, but with automatic machine-failure recovery (core/recovery.h): if
// the run aborts on a fault-injected MachineCrash, a replacement cluster —
// same size, or `recovery.replacement_machines` — is re-provisioned from
// the last committed checkpoint and the run resumes. The returned metrics
// carry the recovery accounting; `report`, when non-null, gets the full
// timeline.
AlgoResult RunChaosAlgorithmWithRecovery(const std::string& name, const InputGraph& prepared,
                                         const ClusterConfig& config,
                                         const AlgoParams& params = {},
                                         const RecoveryOptions& recovery = {},
                                         RecoveryReport* report = nullptr);

struct XStreamRunResult {
  std::vector<double> values;
  double scalar = 0.0;
  uint64_t output_records = 0;
  uint64_t supersteps = 0;
  TimeNs total_time = 0;
  TimeNs preprocess_time = 0;
  uint64_t bytes_moved = 0;
};

// Runs the named algorithm on the single-machine X-Stream baseline.
XStreamRunResult RunXStreamAlgorithm(const std::string& name, const InputGraph& prepared,
                                     const XStreamConfig& config, const AlgoParams& params = {});

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_RUNNER_H_
