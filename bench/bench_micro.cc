// Microbenchmarks backing the simulator's CPU cost parameters: per-edge
// scatter cost, per-edge grid-partitioning cost, event queue and chunk
// machinery throughput, and generator speed. Run these on a new host to
// recalibrate CostModel / --grid-ns-per-edge.
//
// Self-contained timing harness (no google-benchmark dependency): each
// benchmark body is run for an adaptive number of iterations until the
// measured window exceeds --min-ms, then ns/op and items/s are reported.
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "algorithms/basic.h"
#include "baselines/grid_partitioner.h"
#include "bench/bench_common.h"
#include "core/edge_chunk_view.h"
#include "core/gas.h"
#include "core/partition.h"
#include "core/record_arena.h"
#include "core/record_binner.h"
#include "core/steal_policy.h"
#include "core/update_chunk_view.h"
#include "graph/generators.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "storage/chunk.h"
#include "util/rng.h"

namespace chaos {
namespace {

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

struct MicroCase {
  const char* name;
  // Runs `iters` iterations of the benchmark body and returns the number of
  // logical items processed (edges, events, ...) across all iterations.
  std::function<uint64_t(uint64_t iters)> run;
};

InputGraph& BenchGraph() {
  static InputGraph g = [] {
    RmatOptions opt;
    opt.scale = 14;
    opt.seed = 7;
    return GenerateRmat(opt);
  }();
  return g;
}

// Per-edge cost of the PageRank scatter path (binning included): the basis
// for CostModel::ns_per_edge_scatter.
uint64_t RunScatterPerEdge(uint64_t iters) {
  const InputGraph& g = BenchGraph();
  auto parts = Partitioning::Compute(g.num_vertices, 4, 16, 1 << 20);
  PageRankProgram prog(1);
  PageRankProgram::GlobalState global{1};
  std::vector<PageRankProgram::VertexState> states(g.num_vertices,
                                                   PageRankProgram::VertexState{1.0f, 16});
  std::vector<std::vector<UpdateRecord<float>>> bins(parts.num_partitions());
  for (uint64_t it = 0; it < iters; ++it) {
    for (auto& bin : bins) {
      bin.clear();
    }
    auto emit = [&](VertexId dst, const float& value) {
      bins[parts.PartitionOf(dst)].push_back(UpdateRecord<float>{dst, value});
    };
    for (const Edge& e : g.edges) {
      prog.Scatter(global, e.src, states[e.src], e, emit);
    }
    DoNotOptimize(bins);
  }
  return iters * g.num_edges();
}

// Per-edge cost of grid partitioning: the basis for --grid-ns-per-edge.
uint64_t RunGridPartitionPerEdge(uint64_t iters) {
  const InputGraph& g = BenchGraph();
  for (uint64_t it = 0; it < iters; ++it) {
    auto result = GridPartition(g, 16, 7);
    DoNotOptimize(result);
  }
  return iters * g.num_edges();
}

uint64_t RunEventQueueThroughput(uint64_t iters) {
  for (uint64_t it = 0; it < iters; ++it) {
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
      q.Push((i * 2654435761u) % 100000, [] {});
    }
    while (!q.empty()) {
      DoNotOptimize(q.Pop());
    }
  }
  return iters * 10000;
}

// Event push/pop with a realistic wakeup capture (shared flag + pointer,
// ~24 B — what FifoResource and the sync primitives post): the case EventFn
// stores inline where a std::function-based queue heap-allocated per Push.
uint64_t RunEventQueueCapturedPush(uint64_t iters) {
  auto flag = std::make_shared<bool>(false);
  uint64_t sink = 0;
  for (uint64_t it = 0; it < iters; ++it) {
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
      q.Push((i * 2654435761u) % 100000, [flag, &sink] {
        if (!*flag) {
          ++sink;
        }
      });
    }
    while (!q.empty()) {
      q.Pop().fn();
    }
  }
  DoNotOptimize(sink);
  return iters * 10000;
}

uint64_t RunCoroutineDelayRoundtrip(uint64_t iters) {
  for (uint64_t it = 0; it < iters; ++it) {
    Simulator sim;
    sim.Spawn([](Simulator* s) -> Task<> {
      for (int i = 0; i < 1000; ++i) {
        co_await s->Delay(10);
      }
    }(&sim));
    sim.Run();
  }
  return iters * 1000;
}

uint64_t RunRmatGeneration(uint64_t iters) {
  RmatOptions opt;
  opt.scale = 12;
  opt.seed = 7;
  for (uint64_t it = 0; it < iters; ++it) {
    auto g = GenerateRmat(opt);
    DoNotOptimize(g);
  }
  return iters * (16ull << 12);
}

uint64_t RunChunkRoundTrip(uint64_t iters) {
  std::vector<Edge> edges(8192);
  for (uint64_t it = 0; it < iters; ++it) {
    auto copy = edges;
    Chunk c = MakeChunk<Edge>(0, copy.size() * 8, std::move(copy));
    auto span = ChunkSpan<Edge>(c);
    DoNotOptimize(span);
  }
  return iters * 8192;
}

const std::vector<MicroCase>& MicroCases() {
  static const std::vector<MicroCase> kCases = {
      {"ScatterPerEdge", RunScatterPerEdge},
      {"GridPartitionPerEdge", RunGridPartitionPerEdge},
      {"EventQueueThroughput", RunEventQueueThroughput},
      {"EventQueueCapturedPush", RunEventQueueCapturedPush},
      {"CoroutineDelayRoundtrip", RunCoroutineDelayRoundtrip},
      {"RmatGeneration", RunRmatGeneration},
      {"ChunkRoundTrip", RunChunkRoundTrip},
  };
  return kCases;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------- paired A/B micros
//
// Baseline-vs-optimized pairs for the DES hot-path work: the calendar queue
// against the binary heap, the arena-backed binner against the old
// regrow-a-vector-per-chunk binner (replicated here verbatim as the A side),
// and the update-plane trio — SoA update bin/scan cycle, wire-format
// combining ratio, and steal-proposal combining ratio. Host timings (or, for
// the two ratio pairs, deterministic model quantities) — recorded as metrics
// so the pinned BENCH json documents the measured speedups, but excluded
// from the cross-host byte-compare.

// Classic hold model: a large resident event population; every op pops the
// minimum and schedules a replacement at a random future offset. This is
// the simulator's steady-state shape, where a binary heap pays O(log n)
// sifts per op and the calendar queue stays O(1).
class HoldWorkload {
 public:
  explicit HoldWorkload(EventQueueImpl impl) : q_(impl), rng_(42) {
    for (int i = 0; i < kResident; ++i) {
      q_.Push(now_ + Jitter(), [] {});
    }
  }

  uint64_t RunBatch() {
    for (int i = 0; i < kBatch; ++i) {
      now_ = q_.Pop().time;
      q_.Push(now_ + Jitter(), [] {});
    }
    DoNotOptimize(now_);
    return kBatch;
  }

  static constexpr int kResident = 1 << 20;  // 1M queued events: RMAT-32-
                                             // cluster-scale outstanding I/O

 private:
  // Reschedule offsets up to ~65 us (in sim ns): the spread of storage and
  // network completion latencies that dominate the simulator's event mix.
  // Dense timestamps at a large resident count are exactly where the heap's
  // O(log n) sift (random leaf paths through a multi-MB array) loses to the
  // calendar's O(1) bucket ops.
  TimeNs Jitter() { return static_cast<TimeNs>(1 + rng_.Below(1 << 16)); }
  static constexpr int kBatch = 1 << 17;
  EventQueue q_;
  Rng rng_;
  TimeNs now_ = 0;
};

// The edge-record lifecycle, both eras: bin a full edge set by partition,
// park chunks as they fill, then stream every parked chunk kScanPasses
// times — edge sets are written once at preprocessing and re-scanned every
// superstep (fig_scale's default BFS runs more supersteps than this). The
// set is larger than any server L3 so the scan passes stream from DRAM,
// like real supersteps walking a partition's whole edge set, rather than
// re-reading a still-cached just-parked chunk.
constexpr int kBinnerPartitions = 64;
// Chunk size in the range the figure-bench configs compute (fig_scale's
// default lands at ~262 KB chunks); large enough that the legacy path's
// per-cycle buffer regrowth churns the allocator's large-block machinery.
constexpr uint64_t kBinnerChunkBytes = 256 << 10;
constexpr uint64_t kEdgeWireBytes = 16;  // paper wire format: two 8-byte ids
constexpr int kScanPasses = 8;
constexpr uint64_t kBinnerBatchEdges = 16ull << 20;  // 384 MB AoS working set

// AoS scan as the pre-SoA GasKernel did it: 24-byte-stride Edge loads.
uint64_t ScanEdgesAos(const Edge* e, uint32_t n) {
  uint64_t acc = 0;
  for (uint32_t i = 0; i < n; ++i) {
    acc += e[i].flags == kEdgeForward ? e[i].dst : 0;
  }
  return acc;
}

// SoA scan as GasEngine::ScatterChunk's fast path does it: contiguous
// per-field arrays (see core/edge_chunk_view.h).
uint64_t ScanEdgesSoa(const EdgeChunkView& view) {
  const VertexId* __restrict dst = view.dst();
  const uint32_t* __restrict flags = view.flags();
  uint64_t acc = 0;
  const uint32_t n = view.size();
  for (uint32_t i = 0; i < n; ++i) {
    acc += flags[i] == kEdgeForward ? dst[i] : 0;
  }
  return acc;
}

// The pre-arena RecordBinner path, replicated from its last vector
// incarnation: per-record vector::insert, and a park that moves the buffer
// into a make_shared holder — so every chunk cycle regrows the partition's
// vector from scratch (the moved-from buffer has no capacity left) and
// allocates a fresh payload per chunk. Parked payloads are retained, like
// chunks written to a partition's edge set.
class LegacyVectorBinner {
 public:
  LegacyVectorBinner(size_t partitions, uint64_t records_per_chunk)
      : records_per_chunk_(records_per_chunk), buffers_(partitions) {}

  // Mirrors the old Add() line for line, including the per-record counter
  // and the fill check's multiply.
  void Add(PartitionId p, const Edge& record) {
    auto& buffer = buffers_[p];
    const auto* raw = reinterpret_cast<const uint8_t*>(&record);
    buffer.insert(buffer.end(), raw, raw + sizeof(Edge));
    ++emitted_;
    if (buffer.size() >= records_per_chunk_ * sizeof(Edge)) {
      parked_.push_back(std::make_shared<std::vector<uint8_t>>(std::move(buffer)));
      buffer.clear();
    }
  }

  // One superstep: stream every parked chunk with the AoS loop.
  uint64_t ScanAll() const {
    uint64_t acc = 0;
    for (const auto& holder : parked_) {
      acc += ScanEdgesAos(reinterpret_cast<const Edge*>(holder->data()),
                          static_cast<uint32_t>(holder->size() / sizeof(Edge)));
    }
    return acc;
  }

  void DropParked() { parked_.clear(); }

 private:
  uint64_t records_per_chunk_;
  uint64_t emitted_ = 0;
  std::vector<std::vector<uint8_t>> buffers_;
  std::vector<std::shared_ptr<std::vector<uint8_t>>> parked_;
};

uint64_t RunLegacyBinnerBatch(LegacyVectorBinner* binner) {
  for (uint64_t i = 0; i < kBinnerBatchEdges; ++i) {
    Edge e{i, i ^ 0x9e3779b9u, 1.0f, kEdgeForward};
    binner->Add(static_cast<PartitionId>(i & (kBinnerPartitions - 1)), e);
  }
  uint64_t acc = 0;
  for (int s = 0; s < kScanPasses; ++s) {
    acc += binner->ScanAll();
  }
  DoNotOptimize(acc);
  binner->DropParked();  // chunks freed after their last superstep scan
  return kBinnerBatchEdges;
}

uint64_t RunArenaBinnerBatch(RecordBinner* binner) {
  std::vector<Chunk> parked;
  for (uint64_t i = 0; i < kBinnerBatchEdges; ++i) {
    Edge e{i, i ^ 0x9e3779b9u, 1.0f, kEdgeForward};
    binner->Add(static_cast<PartitionId>(i & (kBinnerPartitions - 1)), e);
  }
  // Drain parked chunks after the bin loop, like the engine's between-chunk
  // FlushPending (the per-record path never polls the pending queue).
  while (binner->HasPending()) {
    parked.push_back(binner->PopPendingForTest().second);
  }
  uint64_t acc = 0;
  for (int s = 0; s < kScanPasses; ++s) {
    for (const Chunk& chunk : parked) {
      EdgeChunkView view(chunk);
      acc += ScanEdgesSoa(view);
    }
  }
  DoNotOptimize(acc);
  parked.clear();  // payload blocks return to the arena freelist
  return kBinnerBatchEdges;
}

// The update-record lifecycle, same cycle at gather scale: updates are
// binned by destination partition during scatter and the parked chunks are
// re-scanned by gather. 12-byte wire records (8-byte dst id + 4-byte float
// value, PageRank's shape); the chunk size keeps records-per-chunk (16384)
// a multiple of the write-combining stage so the NT-store path engages,
// like an engine whose configured chunk size lands on a stage boundary.
// Unlike edge sets (re-scanned every superstep, kScanPasses), an update
// chunk is consumed exactly once by gather, so this pair scans once —
// the bin/park side carries its real per-superstep weight. The batch
// matches the edge pair's record count (256 MB AoS here): update streams
// are superstep-sized, and the batch has to clear even the largest server
// L3s so both eras stream from DRAM instead of measuring cache residency.
constexpr uint64_t kUpdateWireBytes = 12;
constexpr uint64_t kUpdateChunkBytes = 16384 * kUpdateWireBytes;
constexpr int kUpdateScanPasses = 1;
constexpr uint64_t kUpdateBatch = 16ull << 20;

// AoS update scan as the pre-SoA gather loop did it: 16-byte-stride
// UpdateRecord<float> loads for an 8+4-byte logical payload.
uint64_t ScanUpdatesAos(const UpdateRecord<float>* r, uint32_t n) {
  uint64_t acc = 0;
  for (uint32_t i = 0; i < n; ++i) {
    acc += r[i].value > 0.0f ? r[i].dst : 0;
  }
  return acc;
}

// SoA update scan as GasEngine::GatherChunk's fast path does it: contiguous
// dst and value columns under __restrict (core/update_chunk_view.h).
uint64_t ScanUpdatesSoa(const UpdateChunkView& view) {
  const VertexId* __restrict dst = view.dst();
  const float* __restrict value = view.values_as<float>();
  uint64_t acc = 0;
  const uint32_t n = view.size();
  for (uint32_t i = 0; i < n; ++i) {
    acc += value[i] > 0.0f ? dst[i] : 0;
  }
  return acc;
}

// The pre-SoA update path, mirroring LegacyVectorBinner's incarnation for
// the update plane: per-partition std::vector<UpdateRecord<float>> bins
// (the shape the kernel's emit lambdas materialized before the binner
// grew AddUpdate), each full bin moved into a fresh make_shared holder —
// so every chunk cycle regrows the partition's vector from scratch and
// allocates a fresh payload per chunk — and re-scanned with AoS loads.
class LegacyUpdateBinner {
 public:
  LegacyUpdateBinner(size_t partitions, uint64_t records_per_chunk)
      : records_per_chunk_(records_per_chunk), buffers_(partitions) {}

  void Add(PartitionId p, VertexId dst, float value) {
    auto& buffer = buffers_[p];
    buffer.push_back(UpdateRecord<float>{dst, value});
    if (buffer.size() >= records_per_chunk_) {
      parked_.push_back(
          std::make_shared<std::vector<UpdateRecord<float>>>(std::move(buffer)));
      buffer.clear();
    }
  }

  uint64_t ScanAll() const {
    uint64_t acc = 0;
    for (const auto& holder : parked_) {
      acc += ScanUpdatesAos(holder->data(), static_cast<uint32_t>(holder->size()));
    }
    return acc;
  }

  void DropParked() { parked_.clear(); }

 private:
  uint64_t records_per_chunk_;
  std::vector<std::vector<UpdateRecord<float>>> buffers_;
  std::vector<std::shared_ptr<std::vector<UpdateRecord<float>>>> parked_;
};

uint64_t RunLegacyUpdateBatch(LegacyUpdateBinner* binner) {
  for (uint64_t i = 0; i < kUpdateBatch; ++i) {
    binner->Add(static_cast<PartitionId>(i & (kBinnerPartitions - 1)),
                i ^ 0x9e3779b9u, static_cast<float>(i & 0xff) + 1.0f);
  }
  uint64_t acc = 0;
  for (int s = 0; s < kUpdateScanPasses; ++s) {
    acc += binner->ScanAll();
  }
  DoNotOptimize(acc);
  binner->DropParked();  // chunks freed after their gather scan
  return kUpdateBatch;
}

uint64_t RunSoaUpdateBatch(RecordBinner* binner) {
  std::vector<Chunk> parked;
  for (uint64_t i = 0; i < kUpdateBatch; ++i) {
    binner->AddUpdate(static_cast<PartitionId>(i & (kBinnerPartitions - 1)),
                      i ^ 0x9e3779b9u, static_cast<float>(i & 0xff) + 1.0f);
  }
  while (binner->HasPending()) {
    parked.push_back(binner->PopPendingForTest().second);
  }
  uint64_t acc = 0;
  for (int s = 0; s < kUpdateScanPasses; ++s) {
    for (const Chunk& chunk : parked) {
      const UpdateChunkView view(chunk, sizeof(float));
      acc += ScanUpdatesSoa(view);
    }
  }
  DoNotOptimize(acc);
  parked.clear();  // payload blocks return to the arena freelist
  return kUpdateBatch;
}

// Wire-format combining ratio (net/network.h UpdateWireCodec): verbatim
// per-record wire bytes vs the packed columnar frame, on a partition-
// clustered update batch — dst ids confined to one partition's vertex
// range, in emission order, exactly what one binned update chunk carries.
// Model quantities (bytes per record, not host time), so the measured
// ratio is deterministic across hosts.
double WirePackBytesPerRecord(bool packed) {
  constexpr uint32_t kRecords = 1 << 16;
  constexpr uint64_t kPartitionBase = 5ull << 20;
  if (!packed) {
    return static_cast<double>(kUpdateWireBytes);
  }
  Rng rng(2026);
  std::vector<uint64_t> dst(kRecords);
  std::vector<uint8_t> values(kRecords * sizeof(float), 0x5a);
  for (uint32_t i = 0; i < kRecords; ++i) {
    dst[i] = kPartitionBase + rng.Below(1 << 16);
  }
  std::vector<uint8_t> frame;
  UpdateWireCodec::Encode(dst.data(), values.data(), kRecords, sizeof(float),
                          &frame);
  CHAOS_CHECK_EQ(frame.size(), UpdateWireCodec::PackedFrameBytes(
                                   dst.data(), kRecords, sizeof(float)));
  return static_cast<double>(frame.size()) / kRecords;
}

// Steal-combining charge ratio (core/steal_policy.h): per-message CPU
// charges a victim pays over a seeded synthetic proposal stream, uncombined
// (one per proposal) vs combined (one per maximal co-domain run). 64
// machines in domains of 8; a domain's helpers go idle together and sweep
// the same victim order, so proposals arrive in domain bursts — the arrival
// pattern the combining targets. Deterministic model quantities.
double StealChargesPerProposal(bool combined) {
  constexpr int kStealMachines = 64;
  constexpr int kStealDomain = 8;
  Rng rng(2026);
  std::vector<int> srcs;
  while (srcs.size() < (1u << 15)) {
    const int domain = static_cast<int>(rng.Below(kStealMachines / kStealDomain));
    const uint64_t burst = 2 + rng.Below(5);
    for (uint64_t i = 0; i < burst; ++i) {
      srcs.push_back(domain * kStealDomain + static_cast<int>(rng.Below(kStealDomain)));
    }
  }
  const uint64_t charges =
      combined ? CombinedProposalCharges(srcs, kStealDomain) : srcs.size();
  return static_cast<double>(charges) / static_cast<double>(srcs.size());
}

// Adaptive ns-per-item over a persistent-state batch body.
double MeasureNsPerItem(const std::function<uint64_t()>& batch, double min_ms) {
  batch();  // warm: containers, arena freelists, calendar buckets
  uint64_t reps = 1;
  for (;;) {
    const double start = NowMs();
    uint64_t items = 0;
    for (uint64_t r = 0; r < reps; ++r) {
      items += batch();
    }
    const double elapsed_ms = NowMs() - start;
    if (elapsed_ms >= min_ms || reps >= (1ull << 24)) {
      return elapsed_ms * 1e6 / static_cast<double>(items);
    }
    const double growth = elapsed_ms > 0.0 ? (min_ms * 1.4) / elapsed_ms : 16.0;
    reps = std::max<uint64_t>(reps + 1, static_cast<uint64_t>(reps * growth));
  }
}

}  // namespace
}  // namespace chaos

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(micro, "Microbenchmarks for CostModel calibration") {
  Options opt;
  opt.AddDouble("min-ms", 100.0, "minimum measured window per benchmark, in ms");
  opt.AddString("filter", "", "only run benchmarks whose name contains this substring");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const double min_ms = opt.GetDouble("min-ms");
  const std::string& filter = opt.GetString("filter");

  PrintHeader({"benchmark", "iters", "ns/op", "items/s"});
  for (const MicroCase& c : MicroCases()) {
    if (!filter.empty() && std::string(c.name).find(filter) == std::string::npos) {
      continue;
    }
    // Warm up once, then grow the iteration count until the window is long
    // enough to be trustworthy.
    c.run(1);
    uint64_t iters = 1;
    double elapsed_ms = 0.0;
    uint64_t items = 0;
    for (;;) {
      const double start = NowMs();
      items = c.run(iters);
      elapsed_ms = NowMs() - start;
      if (elapsed_ms >= min_ms || iters >= (1ull << 30)) {
        break;
      }
      const double growth = elapsed_ms > 0.0 ? (min_ms * 1.4) / elapsed_ms : 16.0;
      iters = std::max<uint64_t>(iters + 1, static_cast<uint64_t>(iters * growth));
    }
    const double ns_per_op = elapsed_ms * 1e6 / static_cast<double>(iters);
    const double items_per_sec =
        elapsed_ms > 0.0 ? static_cast<double>(items) * 1e3 / elapsed_ms : 0.0;
    PrintCell(c.name);
    PrintCell(static_cast<double>(iters), "%.0f");
    PrintCell(ns_per_op, "%.1f");
    PrintCell(items_per_sec, "%.3g");
    EndRow();
  }

  // Paired A/B hot-path micros (see the section comment above). Each row is
  // baseline-vs-optimized on the identical workload; the speedups are
  // recorded as metrics so the pinned BENCH json carries them.
  struct Pair {
    const char* name;
    const char* metric;  // metric key prefix
    std::function<double(double)> baseline_ns;
    std::function<double(double)> optimized_ns;
  };
  const std::vector<Pair> pairs = {
      {"EventQueueHold1M", "micro.event_queue_hold",
       [](double ms) {
         HoldWorkload w(EventQueueImpl::kBinaryHeap);
         return MeasureNsPerItem([&] { return w.RunBatch(); }, ms);
       },
       [](double ms) {
         HoldWorkload w(EventQueueImpl::kCalendar);
         return MeasureNsPerItem([&] { return w.RunBatch(); }, ms);
       }},
      {"EdgeBinParkScanCycle", "micro.binner_cycle",
       [](double ms) {
         LegacyVectorBinner binner(
             kBinnerPartitions,
             RecordBinner::RecordsPerChunk(kBinnerChunkBytes, kEdgeWireBytes));
         return MeasureNsPerItem([&] { return RunLegacyBinnerBatch(&binner); }, ms);
       },
       [](double ms) {
         auto parts = Partitioning::WithPartitions(4096, 4, kBinnerPartitions);
         RecordArena arena;
         RecordBinner binner(&parts, sizeof(Edge), kEdgeWireBytes, kBinnerChunkBytes,
                             &arena, RecordBinner::Format::kEdgeSoA);
         return MeasureNsPerItem([&] { return RunArenaBinnerBatch(&binner); }, ms);
       }},
      // Update-plane pairs (metric keys keep the *_ns_per_op names so the CI
      // gate machinery reads every pair uniformly; for the two model-quantity
      // pairs below the recorded unit is bytes/record resp. charges/proposal,
      // and the speedups are deterministic across hosts).
      {"UpdateBinGatherCycle", "micro.update_bin_cycle",
       [](double ms) {
         LegacyUpdateBinner binner(
             kBinnerPartitions,
             RecordBinner::RecordsPerChunk(kUpdateChunkBytes, kUpdateWireBytes));
         return MeasureNsPerItem([&] { return RunLegacyUpdateBatch(&binner); }, ms);
       },
       [](double ms) {
         auto parts = Partitioning::WithPartitions(4096, 4, kBinnerPartitions);
         RecordArena arena;
         RecordBinner binner(&parts, sizeof(UpdateRecord<float>), kUpdateWireBytes,
                             kUpdateChunkBytes, &arena,
                             RecordBinner::Format::kUpdateSoA, sizeof(float));
         return MeasureNsPerItem([&] { return RunSoaUpdateBatch(&binner); }, ms);
       }},
      {"UpdateWirePack", "micro.wire_pack",
       [](double) { return WirePackBytesPerRecord(false); },
       [](double) { return WirePackBytesPerRecord(true); }},
      {"StealProposalCombine", "micro.steal_combine",
       [](double) { return StealChargesPerProposal(false); },
       [](double) { return StealChargesPerProposal(true); }},
  };
  std::printf("\n");
  PrintHeader({"pair", "baseline", "optimized", "speedup"});
  for (const Pair& p : pairs) {
    if (!filter.empty() && std::string(p.name).find(filter) == std::string::npos) {
      continue;
    }
    const double base_ns = p.baseline_ns(min_ms);
    const double opt_ns = p.optimized_ns(min_ms);
    const double speedup = opt_ns > 0.0 ? base_ns / opt_ns : 0.0;
    RecordMetric(std::string(p.metric) + ".baseline_ns_per_op", base_ns);
    RecordMetric(std::string(p.metric) + ".optimized_ns_per_op", opt_ns);
    RecordMetric(std::string(p.metric) + ".speedup", speedup);
    PrintCell(p.name);
    PrintCell(base_ns, "%.1f");
    PrintCell(opt_ns, "%.1f");
    PrintCell(speedup, "%.2fx");
    EndRow();
  }
  return 0;
}
