// Core engine integration tests: partitioning math, the batching theory,
// and full cluster runs of basic GAS programs validated against in-memory
// references across machine counts, placements and stealing settings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <type_traits>

#include "algorithms/basic.h"
#include "core/cluster.h"
#include "core/edge_chunk_view.h"
#include "core/record_arena.h"
#include "core/record_binner.h"
#include "core/update_chunk_view.h"
#include "graph/generators.h"
#include "graph/ref/reference.h"

namespace chaos {
namespace {

// ------------------------------------------------------------ partitioning

TEST(PartitioningTest, MultipleOfMachinesAndFitsBudget) {
  // 10000 vertices, 16 B per vertex, 20 KB budget -> >= 8 partitions, and
  // the count must be a multiple of 4.
  auto parts = Partitioning::Compute(10000, 4, 16, 20000);
  EXPECT_EQ(parts.num_partitions() % 4, 0u);
  EXPECT_LE(parts.verts_per_partition() * 16, 20000u);
  // Smallest such multiple: 10000*16/20000 = 8 partitions exactly.
  EXPECT_EQ(parts.num_partitions(), 8u);
}

TEST(PartitioningTest, RangesCoverAllVerticesOnce) {
  auto parts = Partitioning::Compute(1000, 3, 8, 1024);
  uint64_t total = 0;
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    total += parts.Count(p);
    if (p > 0) {
      EXPECT_EQ(parts.Base(p), parts.Base(p - 1) + parts.Count(p - 1));
    }
  }
  EXPECT_EQ(total, 1000u);
  for (VertexId v = 0; v < 1000; v += 7) {
    const PartitionId p = parts.PartitionOf(v);
    EXPECT_GE(v, parts.Base(p));
    EXPECT_LT(v, parts.Base(p) + parts.Count(p));
  }
}

TEST(PartitioningTest, MastersRoundRobin) {
  auto parts = Partitioning::WithPartitions(100, 4, 12);
  for (PartitionId p = 0; p < 12; ++p) {
    EXPECT_EQ(parts.Master(p), static_cast<MachineId>(p % 4));
  }
  EXPECT_EQ(parts.partitions_per_machine(), 3u);
}

TEST(PartitioningTest, SingleVertexBudgetAborts) {
  EXPECT_DEATH(Partitioning::Compute(100, 1, 2000, 1000), "memory_budget");
}

// Regression: with ceil-rounded verts-per-partition, trailing partitions can
// start past the vertex range (4096 / 112 partitions -> 37 per partition,
// partition 111 would start at 4107). Their count must be 0, not an
// underflowed full range of phantom vertices — the overflow corrupted
// result extraction for any (n, partitions) pair of this shape.
TEST(PartitioningTest, TrailingPartitionsPastTheRangeAreEmpty) {
  auto parts = Partitioning::WithPartitions(4096, 16, 112);
  EXPECT_EQ(parts.verts_per_partition(), 37u);
  uint64_t total = 0;
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    total += parts.Count(p);
    if (parts.Count(p) > 0) {
      EXPECT_LE(parts.Base(p) + parts.Count(p), 4096u);
    }
  }
  EXPECT_EQ(total, 4096u);
  EXPECT_EQ(parts.Count(111), 0u);
  EXPECT_EQ(parts.PartitionOf(4095), 110u);  // no vertex maps to an empty one
}

// ---------------------------------------------------------- batching math

TEST(BatchingTheoryTest, UtilizationFormula) {
  // rho(m, k) = 1 - (1 - k/m)^m; spot values from the paper's Fig. 5.
  EXPECT_DOUBLE_EQ(TheoreticalUtilization(1, 1), 1.0);
  EXPECT_NEAR(TheoreticalUtilization(32, 1), 1.0 - std::pow(1.0 - 1.0 / 32, 32), 1e-12);
  EXPECT_GT(TheoreticalUtilization(32, 5), 0.993);  // paper: k=5 -> >= 99.3%
  EXPECT_NEAR(UtilizationLowerBound(5), 1.0 - std::exp(-5.0), 1e-12);
  // Monotone in k, decreasing in m toward the bound.
  for (int k = 1; k <= 5; ++k) {
    EXPECT_GT(TheoreticalUtilization(16, k + 1), TheoreticalUtilization(16, k));
    EXPECT_GT(TheoreticalUtilization(8, k), TheoreticalUtilization(32, k));
    EXPECT_GT(TheoreticalUtilization(32, k), UtilizationLowerBound(k));
  }
}

TEST(ConfigTest, FetchWindowAndStealing) {
  ClusterConfig cfg;
  cfg.batch_k = 5;
  cfg.phi = 2.0;
  EXPECT_EQ(cfg.fetch_window(), 10);
  cfg.alpha = 0.0;
  EXPECT_FALSE(cfg.stealing_enabled());
  cfg.alpha = 1.0;
  EXPECT_TRUE(cfg.stealing_enabled());
}

// ------------------------------------------------------------ record binner

TEST(RecordBinnerTest, RecordsPerChunkFloorsAtOne) {
  // Normal regime: the chunk holds many records.
  EXPECT_EQ(RecordBinner::RecordsPerChunk(4 << 20, 8), (4u << 20) / 8);
  // Record wider than the chunk: floor at one record per chunk.
  EXPECT_EQ(RecordBinner::RecordsPerChunk(16, 64), 1u);
  EXPECT_EQ(RecordBinner::RecordsPerChunk(0, 64), 1u);
  // Zero-width records must not divide by zero; they bin as one byte wide.
  EXPECT_EQ(RecordBinner::RecordsPerChunk(1 << 10, 0), 1u << 10);
  EXPECT_EQ(RecordBinner::RecordsPerChunk(0, 0), 1u);
}

TEST(RecordBinnerTest, ZeroWireWidthBinsWithoutCrashing) {
  auto parts = Partitioning::Compute(64, 2, 16, 1 << 10);
  RecordBinner binner(&parts, sizeof(UpdateRecord<float>), /*record_wire_bytes=*/0,
                      /*chunk_bytes=*/1 << 10);
  for (VertexId v = 0; v < 64; ++v) {
    binner.Add(parts.PartitionOf(v), UpdateRecord<float>{v, 1.0f});
  }
  EXPECT_EQ(binner.emitted(), 64u);
}

TEST(RecordBinnerTest, OversizedRecordParksEveryAdd) {
  auto parts = Partitioning::Compute(64, 2, 16, 1 << 10);
  // chunk_bytes smaller than one record: every Add should fill a chunk.
  RecordBinner binner(&parts, sizeof(UpdateRecord<float>), /*record_wire_bytes=*/64,
                      /*chunk_bytes=*/16);
  binner.Add(parts.PartitionOf(0), UpdateRecord<float>{0, 1.0f});
  EXPECT_TRUE(binner.HasPending());
}

// Regression: chunk indices used to be uint32_t and wrapped silently at
// 2^32 chunks (paper-scale edge sets with small chunk_bytes get there),
// colliding indexed-set keys. Indices are uint64_t end to end now.
TEST(RecordBinnerTest, IndexCrossesThirtyTwoBitsWithoutWrapping) {
  auto parts = Partitioning::Compute(64, 2, 16, 1 << 10);
  RecordBinner binner(&parts, sizeof(UpdateRecord<float>), /*record_wire_bytes=*/64,
                      /*chunk_bytes=*/16);  // one record per chunk
  binner.set_next_index_for_test((1ull << 32) - 1);
  binner.Add(parts.PartitionOf(0), UpdateRecord<float>{0, 1.0f});
  binner.Add(parts.PartitionOf(0), UpdateRecord<float>{0, 2.0f});
  auto first = binner.PopPendingForTest();
  auto second = binner.PopPendingForTest();
  EXPECT_EQ(first.second.index, (1ull << 32) - 1);
  EXPECT_EQ(second.second.index, 1ull << 32);  // not 0
  static_assert(std::is_same_v<decltype(Chunk::index), uint64_t>);
}

// ------------------------------------------------- arena & chunk alignment

TEST(RecordArenaTest, LeasesAreAlignedAndRecycled) {
  RecordArena arena;
  uint8_t* first = nullptr;
  {
    auto block = arena.Lease(1000);
    ASSERT_TRUE(block);
    EXPECT_GE(block.capacity(), 1000u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(block.data()) % RecordArena::kAlign, 0u);
    first = block.data();
  }  // returned to the freelist
  EXPECT_EQ(arena.blocks_allocated(), 1u);
  auto again = arena.Lease(1000);
  EXPECT_EQ(again.data(), first);  // freelist hit, no new allocation
  EXPECT_EQ(arena.blocks_allocated(), 1u);
  EXPECT_EQ(arena.blocks_recycled(), 1u);
}

TEST(RecordArenaTest, SharedPayloadsOutliveTheArena) {
  std::shared_ptr<uint8_t> payload;
  {
    RecordArena arena;
    payload = arena.LeaseShared(256);
    std::memset(payload.get(), 0xAB, 256);
  }  // arena destroyed with the payload still out
  EXPECT_EQ(payload.get()[255], 0xAB);
  payload.reset();  // returns after close: freed directly, no crash/leak
}

TEST(MakeChunkFromBytesTest, PayloadIsAlignedCopy) {
  std::vector<uint8_t> bytes(192);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(i);
  }
  Chunk c = MakeChunkFromBytes(/*index=*/7, /*model_bytes=*/100, /*count=*/3, bytes.data(),
                               bytes.size());
  EXPECT_EQ(c.index, 7u);
  EXPECT_EQ(c.payload_bytes, bytes.size());
  // The old std::vector-backed payload only guaranteed alignof(uint8_t);
  // the chunk payload must now satisfy any record type's alignment.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data.get()) % RecordArena::kAlign, 0u);
  EXPECT_EQ(std::memcmp(c.data.get(), bytes.data(), bytes.size()), 0);
}

TEST(RecordBatchTest, ArenaBackedZeroedAlignedAndBorrowable) {
  RecordArena arena;
  RecordBatch batch(&arena, sizeof(double), 100);
  auto span = batch.Span<double>();
  ASSERT_EQ(span.size(), 100u);
  for (double v : span) {
    EXPECT_EQ(v, 0.0);  // recycled blocks are dirty; the batch must zero
  }
  span[42] = 3.5;
  Chunk c = batch.BorrowChunk(/*index=*/0, /*start=*/40, /*n=*/10, /*model_bytes=*/80);
  auto view = ChunkSpan<double>(c);
  ASSERT_EQ(view.size(), 10u);
  EXPECT_EQ(view[2], 3.5);  // aliases the batch buffer, zero copy
}

// ----------------------------------------------------------- SoA edge chunks

std::vector<Edge> TestEdges(uint32_t n) {
  std::vector<Edge> edges(n);
  for (uint32_t i = 0; i < n; ++i) {
    edges[i] = Edge{i, 2 * i + 1, static_cast<float>(i) * 0.5f, i % 3};
  }
  return edges;
}

TEST(EdgeChunkViewTest, SoaRoundTripsAndIsAligned) {
  const auto edges = TestEdges(129);  // odd count: no accidental padding luck
  Chunk c = MakeSoaEdgeChunk(/*index=*/0, /*model_bytes=*/edges.size() * 8, edges,
                             /*arena=*/nullptr);
  EXPECT_EQ(c.layout, ChunkLayout::kEdgeSoA);
  EXPECT_EQ(c.count, edges.size());
  EXPECT_EQ(c.payload_bytes, edges.size() * sizeof(Edge));
  EdgeChunkView view(c);
  ASSERT_TRUE(view.soa());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(view.src()) % alignof(VertexId), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(view.weight()) % alignof(float), 0u);
  for (uint32_t i = 0; i < view.size(); ++i) {
    const Edge e = view.At(i);
    EXPECT_EQ(e.src, edges[i].src);
    EXPECT_EQ(e.dst, edges[i].dst);
    EXPECT_EQ(e.weight, edges[i].weight);
    EXPECT_EQ(e.flags, edges[i].flags);
  }
}

TEST(EdgeChunkViewTest, BinnerParksSoaChunksThatRoundTrip) {
  auto parts = Partitioning::Compute(1024, 2, 16, 4 << 10);
  RecordArena arena;
  // 16-byte wire edges, 1 KiB chunks -> 64 edges per chunk.
  RecordBinner binner(&parts, sizeof(Edge), /*record_wire_bytes=*/16,
                      /*chunk_bytes=*/1 << 10, &arena, RecordBinner::Format::kEdgeSoA);
  const auto edges = TestEdges(64);
  for (const Edge& e : edges) {
    binner.Add(/*p=*/0, e);
  }
  ASSERT_TRUE(binner.HasPending());
  auto parked = binner.PopPendingForTest();
  const Chunk& c = parked.second;
  EXPECT_EQ(c.layout, ChunkLayout::kEdgeSoA);
  EXPECT_EQ(c.count, 64u);
  EdgeChunkView view(c);
  ASSERT_TRUE(view.soa());
  for (uint32_t i = 0; i < 64; ++i) {
    const Edge e = view.At(i);
    EXPECT_EQ(e.src, edges[i].src);
    EXPECT_EQ(e.dst, edges[i].dst);
    EXPECT_EQ(e.weight, edges[i].weight);
    EXPECT_EQ(e.flags, edges[i].flags);
  }
}

// Tail parks must fold in records still sitting in the write-combining
// staging buffers: partition 0 gets two full 16-record flushes plus a
// 5-record staged remainder, partition 1 only staged records (its fill
// block is never leased until the drain).
TEST(EdgeChunkViewTest, BinnerParksStagedSoaTailsThatRoundTrip) {
  auto parts = Partitioning::Compute(1024, 2, 16, 4 << 10);
  RecordArena arena;
  // 16-byte wire edges, 1 KiB chunks -> 64 edges per chunk.
  RecordBinner binner(&parts, sizeof(Edge), /*record_wire_bytes=*/16,
                      /*chunk_bytes=*/1 << 10, &arena, RecordBinner::Format::kEdgeSoA);
  const auto edges = TestEdges(40);
  for (uint32_t i = 0; i < 37; ++i) {
    binner.Add(/*p=*/0, edges[i]);
  }
  for (uint32_t i = 37; i < 40; ++i) {
    binner.Add(/*p=*/1, edges[i]);
  }
  EXPECT_EQ(binner.emitted(), 40u);
  EXPECT_FALSE(binner.HasPending());  // nothing filled a chunk
  binner.ParkAllForTest();
  ASSERT_TRUE(binner.HasPending());
  auto first = binner.PopPendingForTest();
  ASSERT_TRUE(binner.HasPending());
  auto second = binner.PopPendingForTest();
  EXPECT_FALSE(binner.HasPending());
  const Chunk& c0 = first.first == 0 ? first.second : second.second;
  const Chunk& c1 = first.first == 0 ? second.second : first.second;
  ASSERT_EQ(c0.count, 37u);
  ASSERT_EQ(c1.count, 3u);
  EXPECT_EQ(c0.layout, ChunkLayout::kEdgeSoA);
  EdgeChunkView v0(c0);
  for (uint32_t i = 0; i < 37; ++i) {
    const Edge e = v0.At(i);
    EXPECT_EQ(e.src, edges[i].src);
    EXPECT_EQ(e.dst, edges[i].dst);
    EXPECT_EQ(e.weight, edges[i].weight);
    EXPECT_EQ(e.flags, edges[i].flags);
  }
  EdgeChunkView v1(c1);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(v1.At(i).dst, edges[37 + i].dst);
  }
  EXPECT_EQ(binner.emitted(), 40u);  // parked records still counted
}

TEST(EdgeChunkViewTest, AosChunksStillReadable) {
  const auto edges = TestEdges(16);
  Chunk c = MakeChunk<Edge>(/*index=*/0, /*model_bytes=*/128, edges);
  EXPECT_EQ(c.layout, ChunkLayout::kAoS);
  EdgeChunkView view(c);
  EXPECT_FALSE(view.soa());
  ASSERT_EQ(view.size(), 16u);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(view.At(i).dst, edges[i].dst);
  }
}

// ------------------------------------------------- update chunk SoA layout

std::vector<UpdateRecord<float>> TestUpdates(uint32_t n) {
  std::vector<UpdateRecord<float>> updates;
  updates.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    updates.push_back(UpdateRecord<float>{static_cast<VertexId>(i * 37 % 1024),
                                          static_cast<float>(i) * 0.5f + 1.0f});
  }
  return updates;
}

TEST(UpdateChunkViewTest, SoaRoundTripsAndIsAligned) {
  const auto updates = TestUpdates(129);  // odd count: no accidental padding luck
  Chunk c = MakeSoaUpdateChunk<float>(/*index=*/0, /*model_bytes=*/updates.size() * 12,
                                      updates, /*arena=*/nullptr);
  EXPECT_EQ(c.layout, ChunkLayout::kUpdateSoA);
  EXPECT_EQ(c.count, updates.size());
  EXPECT_EQ(c.payload_bytes, updates.size() * (sizeof(VertexId) + sizeof(float)));
  UpdateChunkView view(c, sizeof(float));
  ASSERT_TRUE(view.soa());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(view.dst()) % alignof(VertexId), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(view.values_as<float>()) % alignof(float), 0u);
  for (uint32_t i = 0; i < view.size(); ++i) {
    const UpdateRecord<float> r = view.At<float>(i);
    EXPECT_EQ(r.dst, updates[i].dst);
    EXPECT_EQ(r.value, updates[i].value);
    EXPECT_EQ(view.DstAt(i), updates[i].dst);
  }
}

TEST(UpdateChunkViewTest, BinnerParksSoaUpdateChunksThatRoundTrip) {
  auto parts = Partitioning::Compute(1024, 2, 16, 4 << 10);
  RecordArena arena;
  // 12-byte wire updates, 768-byte chunks -> 64 updates per chunk (a
  // multiple of the write-combining stage, so the NT-store path engages).
  RecordBinner binner(&parts, sizeof(UpdateRecord<float>), /*record_wire_bytes=*/12,
                      /*chunk_bytes=*/768, &arena, RecordBinner::Format::kUpdateSoA,
                      /*update_value_bytes=*/sizeof(float));
  const auto updates = TestUpdates(64);
  for (const auto& u : updates) {
    binner.AddUpdate(/*p=*/0, u.dst, u.value);
  }
  ASSERT_TRUE(binner.HasPending());
  auto parked = binner.PopPendingForTest();
  const Chunk& c = parked.second;
  EXPECT_EQ(c.layout, ChunkLayout::kUpdateSoA);
  EXPECT_EQ(c.count, 64u);
  EXPECT_EQ(c.payload_bytes, 64u * (sizeof(VertexId) + sizeof(float)));
  UpdateChunkView view(c, sizeof(float));
  ASSERT_TRUE(view.soa());
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(view.dst()[i], updates[i].dst);
    EXPECT_EQ(view.values_as<float>()[i], updates[i].value);
  }
}

// Tail parks must fold in updates still sitting in the write-combining
// staging slots: partition 0 gets two full 16-record flushes plus a staged
// remainder, partition 1 only staged records.
TEST(UpdateChunkViewTest, BinnerParksStagedUpdateTailsThatRoundTrip) {
  auto parts = Partitioning::Compute(1024, 2, 16, 4 << 10);
  RecordArena arena;
  RecordBinner binner(&parts, sizeof(UpdateRecord<float>), /*record_wire_bytes=*/12,
                      /*chunk_bytes=*/768, &arena, RecordBinner::Format::kUpdateSoA,
                      /*update_value_bytes=*/sizeof(float));
  const auto updates = TestUpdates(40);
  for (uint32_t i = 0; i < 37; ++i) {
    binner.AddUpdate(/*p=*/0, updates[i].dst, updates[i].value);
  }
  for (uint32_t i = 37; i < 40; ++i) {
    binner.AddUpdate(/*p=*/1, updates[i].dst, updates[i].value);
  }
  EXPECT_EQ(binner.emitted(), 40u);
  EXPECT_FALSE(binner.HasPending());  // nothing filled a chunk
  binner.ParkAllForTest();
  ASSERT_TRUE(binner.HasPending());
  auto first = binner.PopPendingForTest();
  ASSERT_TRUE(binner.HasPending());
  auto second = binner.PopPendingForTest();
  EXPECT_FALSE(binner.HasPending());
  const Chunk& c0 = first.first == 0 ? first.second : second.second;
  const Chunk& c1 = first.first == 0 ? second.second : first.second;
  ASSERT_EQ(c0.count, 37u);
  ASSERT_EQ(c1.count, 3u);
  EXPECT_EQ(c0.layout, ChunkLayout::kUpdateSoA);
  UpdateChunkView v0(c0, sizeof(float));
  for (uint32_t i = 0; i < 37; ++i) {
    EXPECT_EQ(v0.At<float>(i).dst, updates[i].dst);
    EXPECT_EQ(v0.At<float>(i).value, updates[i].value);
  }
  UpdateChunkView v1(c1, sizeof(float));
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(v1.DstAt(i), updates[37 + i].dst);
  }
  EXPECT_EQ(binner.emitted(), 40u);  // parked records still counted
}

TEST(UpdateChunkViewTest, AosUpdateChunksStillReadable) {
  const auto updates = TestUpdates(16);
  Chunk c = MakeChunk<UpdateRecord<float>>(/*index=*/0, /*model_bytes=*/16 * 12, updates);
  EXPECT_EQ(c.layout, ChunkLayout::kAoS);
  UpdateChunkView view(c, sizeof(float));
  EXPECT_FALSE(view.soa());
  ASSERT_EQ(view.size(), 16u);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(view.At<float>(i).dst, updates[i].dst);
    EXPECT_EQ(view.At<float>(i).value, updates[i].value);
    EXPECT_EQ(view.DstAt(i), updates[i].dst);
  }
}

// --------------------------------------------------------------- clusters

ClusterConfig SmallConfig(int machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 4 << 10;  // force several partitions per machine
  cfg.chunk_bytes = 2 << 10;          // many small chunks -> stealing units
  cfg.seed = 42;
  return cfg;
}

InputGraph TestGraph(uint64_t seed = 7) {
  RmatOptions opt;
  opt.scale = 9;  // 512 vertices, 8192 edges
  opt.edges_per_vertex = 16;
  opt.seed = seed;
  return GenerateRmat(opt);
}

TEST(ClusterPageRankTest, MatchesReferenceOnOneMachine) {
  InputGraph g = TestGraph();
  Cluster<PageRankProgram> cluster(SmallConfig(1), PageRankProgram(5));
  auto result = cluster.Run(g);
  EXPECT_EQ(result.supersteps, 5u);
  EXPECT_FALSE(result.crashed);
  auto expect = ref::PageRank(g, 5);
  ASSERT_EQ(result.values.size(), expect.size());
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR(result.values[v], expect[v], 1e-3 * (1.0 + std::abs(expect[v])))
        << "vertex " << v;
  }
  EXPECT_GT(result.metrics.total_time, 0);
  EXPECT_GT(result.metrics.StorageBytesMoved(), 0u);
}

TEST(ClusterPageRankTest, MatchesReferenceAcrossMachineCounts) {
  InputGraph g = TestGraph();
  auto expect = ref::PageRank(g, 5);
  for (const int machines : {2, 4, 8}) {
    Cluster<PageRankProgram> cluster(SmallConfig(machines), PageRankProgram(5));
    auto result = cluster.Run(g);
    ASSERT_EQ(result.values.size(), expect.size());
    for (size_t v = 0; v < expect.size(); ++v) {
      ASSERT_NEAR(result.values[v], expect[v], 1e-3 * (1.0 + std::abs(expect[v])))
          << "machines=" << machines << " vertex " << v;
    }
  }
}

TEST(ClusterBfsTest, MatchesReferenceUndirected) {
  InputGraph g = MakeUndirected(TestGraph(11));
  auto expect = ref::BfsDepths(g, 0);
  for (const int machines : {1, 4}) {
    Cluster<BfsProgram> cluster(SmallConfig(machines), BfsProgram(0));
    auto result = cluster.Run(g);
    for (size_t v = 0; v < expect.size(); ++v) {
      ASSERT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v]))
          << "machines=" << machines << " vertex " << v;
    }
  }
}

TEST(ClusterWccTest, MatchesUnionFind) {
  // Use a sparser graph so several components exist.
  InputGraph g = MakeUndirected(GenerateUniformRandom(600, 500, false, 13));
  auto expect = ref::ComponentLabels(g);
  Cluster<WccProgram> cluster(SmallConfig(4), WccProgram{});
  auto result = cluster.Run(g);
  for (size_t v = 0; v < expect.size(); ++v) {
    ASSERT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v])) << "vertex " << v;
  }
}

TEST(ClusterSsspTest, MatchesDijkstra) {
  RmatOptions opt;
  opt.scale = 8;
  opt.weighted = true;
  opt.seed = 17;
  InputGraph g = MakeUndirected(GenerateRmat(opt));
  auto expect = ref::DijkstraDistances(g, 3);
  Cluster<SsspProgram> cluster(SmallConfig(4), SsspProgram(3));
  auto result = cluster.Run(g);
  for (size_t v = 0; v < expect.size(); ++v) {
    if (std::isinf(expect[v])) {
      ASSERT_TRUE(std::isinf(result.values[v])) << "vertex " << v;
    } else {
      ASSERT_NEAR(result.values[v], expect[v], 1e-2) << "vertex " << v;
    }
  }
}

TEST(ClusterSpmvTest, MatchesReference) {
  RmatOptions opt;
  opt.scale = 8;
  opt.weighted = true;
  opt.seed = 19;
  InputGraph g = GenerateRmat(opt);
  std::vector<double> x(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    x[v] = SpmvProgram::InputVector(v);
  }
  auto expect = ref::SpMV(g, x);
  Cluster<SpmvProgram> cluster(SmallConfig(2), SpmvProgram{});
  auto result = cluster.Run(g);
  EXPECT_EQ(result.supersteps, 1u);
  for (size_t v = 0; v < expect.size(); ++v) {
    ASSERT_NEAR(result.values[v], expect[v], 1e-2 * (1.0 + std::abs(expect[v])))
        << "vertex " << v;
  }
}

TEST(ClusterConductanceTest, MatchesReference) {
  InputGraph g = TestGraph(23);
  std::vector<uint8_t> member(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    member[v] = ConductanceProgram::InSubset(v) ? 1 : 0;
  }
  const double expect = ref::Conductance(g, member);
  Cluster<ConductanceProgram> cluster(SmallConfig(4), ConductanceProgram{});
  auto result = cluster.Run(g);
  EXPECT_EQ(result.supersteps, 1u);
  EXPECT_NEAR(result.final_global.conductance, expect, 1e-12);
}

TEST(ClusterBpTest, MatchesDenseReference) {
  RmatOptions opt;
  opt.scale = 8;
  opt.weighted = true;
  opt.seed = 29;
  InputGraph g = GenerateRmat(opt);
  std::vector<double> priors(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    priors[v] = static_cast<double>(BpProgram::Prior(v));
  }
  auto expect = ref::BeliefPropagation(g, priors, 4, 0.5);
  Cluster<BpProgram> cluster(SmallConfig(2), BpProgram(4, 0.5f));
  auto result = cluster.Run(g);
  for (size_t v = 0; v < expect.size(); ++v) {
    ASSERT_NEAR(result.values[v], expect[v], 1e-2 * (1.0 + std::abs(expect[v])))
        << "vertex " << v;
  }
}

// Order-independence property (§2): the same run with different stealing
// bias, placement or seed produces the same answer.
TEST(ClusterPropertyTest, ResultInvariantUnderStealingAndPlacement) {
  InputGraph g = MakeUndirected(TestGraph(31));
  auto expect = ref::BfsDepths(g, 0);
  for (const double alpha : {0.0, 1.0, std::numeric_limits<double>::infinity()}) {
    ClusterConfig cfg = SmallConfig(4);
    cfg.alpha = alpha;
    Cluster<BfsProgram> cluster(cfg, BfsProgram(0));
    auto result = cluster.Run(g);
    for (size_t v = 0; v < expect.size(); ++v) {
      ASSERT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v]))
          << "alpha=" << alpha << " vertex " << v;
    }
  }
  for (const Placement placement :
       {Placement::kLocalMaster, Placement::kCentralDirectory}) {
    ClusterConfig cfg = SmallConfig(4);
    cfg.placement = placement;
    Cluster<BfsProgram> cluster(cfg, BfsProgram(0));
    auto result = cluster.Run(g);
    for (size_t v = 0; v < expect.size(); ++v) {
      ASSERT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v]))
          << "placement=" << static_cast<int>(placement) << " vertex " << v;
    }
  }
}

TEST(ClusterPropertyTest, DeterministicRuntimeForSameSeed) {
  InputGraph g = TestGraph(37);
  auto run = [&](uint64_t seed) {
    ClusterConfig cfg = SmallConfig(4);
    cfg.seed = seed;
    Cluster<PageRankProgram> cluster(cfg, PageRankProgram(3));
    return cluster.Run(g).metrics.total_time;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // placement randomness shifts timing
}

TEST(ClusterPropertyTest, ChunkSizeDoesNotChangeResults) {
  InputGraph g = TestGraph(41);
  auto expect = ref::PageRank(g, 3);
  for (const uint64_t chunk : {512u, 4096u, 65536u}) {
    ClusterConfig cfg = SmallConfig(2);
    cfg.chunk_bytes = chunk;
    Cluster<PageRankProgram> cluster(cfg, PageRankProgram(3));
    auto result = cluster.Run(g);
    for (size_t v = 0; v < expect.size(); ++v) {
      ASSERT_NEAR(result.values[v], expect[v], 1e-3 * (1.0 + std::abs(expect[v])))
          << "chunk=" << chunk << " vertex " << v;
    }
  }
}

// Update-plane combining is pure re-encoding (wire) plus control-message
// merging (steal): the switches must not change any result, and a combined
// run must move strictly fewer simulated NIC bytes — the packed frame is
// only charged when smaller than the verbatim one. BFS keeps the answer
// integer-valued, so "identical" is exact equality, not a tolerance.
TEST(ClusterPropertyTest, CombiningKeepsResultsAndShrinksWire) {
  InputGraph g = MakeUndirected(TestGraph(47));
  auto run = [&](bool combine) {
    ClusterConfig cfg = SmallConfig(4);
    cfg.wire_combine = combine;
    cfg.steal_combine = combine;
    Cluster<BfsProgram> cluster(cfg, BfsProgram(0));
    return cluster.Run(g);
  };
  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(off.values.size(), on.values.size());
  for (size_t v = 0; v < off.values.size(); ++v) {
    ASSERT_DOUBLE_EQ(on.values[v], off.values[v]) << "vertex " << v;
  }
  // Defaults-off run accrues no combining metrics (the pinned benchmarks
  // depend on that); the combined run packs chunks and saves wire bytes.
  EXPECT_EQ(off.metrics.UpdateChunksPacked(), 0u);
  EXPECT_EQ(off.metrics.UpdateWireBytesSaved(), 0u);
  EXPECT_GT(on.metrics.UpdateChunksPacked(), 0u);
  EXPECT_GT(on.metrics.UpdateWireBytesSaved(), 0u);
  EXPECT_LT(on.metrics.network_bytes, off.metrics.network_bytes);
}

TEST(ClusterMetricsTest, AccountingSane) {
  InputGraph g = TestGraph(43);
  Cluster<PageRankProgram> cluster(SmallConfig(4), PageRankProgram(3));
  auto result = cluster.Run(g);
  const RunMetrics& m = result.metrics;
  EXPECT_EQ(m.machines.size(), 4u);
  EXPECT_EQ(m.devices.size(), 4u);
  EXPECT_GT(m.preprocess_time, 0);
  EXPECT_LT(m.preprocess_time, m.total_time);
  // All edges processed once per scatter superstep.
  uint64_t edges = 0;
  for (const auto& mm : m.machines) {
    edges += mm.edges_processed;
  }
  EXPECT_EQ(edges, g.num_edges() * 3u);  // 3 supersteps (PR runs scatter each)
  // Every update emitted is gathered exactly once.
  uint64_t emitted = 0;
  uint64_t gathered = 0;
  for (const auto& mm : m.machines) {
    emitted += mm.updates_emitted;
    gathered += mm.updates_processed;
  }
  EXPECT_EQ(emitted, gathered);
  // Device utilization within [0, 1]; some bytes on every device.
  EXPECT_GT(m.MeanDeviceUtilization(), 0.0);
  EXPECT_LE(m.MeanDeviceUtilization(), 1.0);
  for (const auto& d : m.devices) {
    EXPECT_GT(d.bytes_read + d.bytes_written, 0u);
  }
  EXPECT_GT(m.network_bytes, 0u);
}

TEST(ClusterMetricsTest, BreakdownBucketsCoverRuntime) {
  InputGraph g = TestGraph(47);
  Cluster<PageRankProgram> cluster(SmallConfig(4), PageRankProgram(3));
  auto result = cluster.Run(g);
  for (const auto& mm : result.metrics.machines) {
    const TimeNs tracked = mm.TotalTracked();
    EXPECT_GT(tracked, 0);
    // Buckets are measured on the main engine coroutine; they may not sum
    // exactly to wall time but must never exceed it (plus scheduling slop).
    EXPECT_LE(tracked, result.metrics.total_time + kNsPerMs);
  }
}

TEST(ClusterStealingTest, StealsHappenOnSkewedLoad) {
  // Unpermuted RMAT concentrates edges at low vertex ids -> partition 0 is
  // heavy -> other machines should steal.
  RmatOptions opt;
  opt.scale = 10;
  opt.permute_ids = false;
  opt.seed = 5;
  InputGraph g = GenerateRmat(opt);
  ClusterConfig cfg = SmallConfig(4);
  Cluster<PageRankProgram> cluster(cfg, PageRankProgram(3));
  auto result = cluster.Run(g);
  uint64_t steals = 0;
  for (const auto& mm : result.metrics.machines) {
    steals += mm.steals_worked;
  }
  EXPECT_GT(steals, 0u);
}

TEST(ClusterStealingTest, AlphaZeroDisablesStealing) {
  RmatOptions opt;
  opt.scale = 10;
  opt.permute_ids = false;
  opt.seed = 5;
  InputGraph g = GenerateRmat(opt);
  ClusterConfig cfg = SmallConfig(4);
  cfg.alpha = 0.0;
  Cluster<PageRankProgram> cluster(cfg, PageRankProgram(3));
  auto result = cluster.Run(g);
  for (const auto& mm : result.metrics.machines) {
    EXPECT_EQ(mm.steals_worked, 0u);
    EXPECT_EQ(mm.bucket(Bucket::kGpSteal), 0);
  }
}

}  // namespace
}  // namespace chaos
