// GasKernel<P>: the thin typed adapter between a GAS program (gas.h) and
// the untemplated engine core. Everything per-edge / per-update / per-vertex
// is a tight typed loop here — emitters are lambdas, records are real
// structs, nothing virtual inside the loop — while the engine's control
// flow (engine_core.h, scatter_phase.cc, gather_phase.cc) calls through the
// chunk-granularity ProgramKernel interface and compiles once for all ten
// algorithms.
#ifndef CHAOS_CORE_GAS_KERNEL_H_
#define CHAOS_CORE_GAS_KERNEL_H_

#include <cstring>
#include <utility>
#include <vector>

#include "core/edge_chunk_view.h"
#include "core/gas.h"
#include "core/partition.h"
#include "core/program_kernel.h"
#include "core/update_chunk_view.h"
#include "graph/types.h"

namespace chaos {

template <GasProgram P>
class GasKernel final : public ProgramKernel {
 public:
  using VState = typename P::VertexState;
  using U = typename P::UpdateValue;
  using A = typename P::Accumulator;
  using G = typename P::GlobalState;
  using Out = typename P::OutputRecord;
  using Rec = UpdateRecord<U>;

  GasKernel(const P* prog, const Partitioning* parts, uint64_t vertex_id_wire_bytes,
            const G& initial_global)
      : prog_(prog),
        parts_(parts),
        update_wire_(UpdateWireBytes<U>(vertex_id_wire_bytes)),
        global_(initial_global),
        local_(prog->InitLocal()) {}

  // ---- Static facts.
  const char* name() const override { return P::kName; }
  bool needs_out_degrees() const override { return P::kNeedsOutDegrees; }
  uint64_t vertex_state_bytes() const override { return sizeof(VState); }
  uint64_t accum_bytes() const override { return sizeof(A); }
  uint64_t update_stride_bytes() const override { return sizeof(Rec); }
  uint64_t update_wire_bytes() const override { return update_wire_; }
  uint64_t update_value_bytes() const override { return sizeof(U); }
  bool update_soa_capable() const override { return alignof(U) <= 8; }
  uint64_t global_wire_bytes() const override { return sizeof(G); }

  // ---- Aggregator state.
  bool WantScatter() const override { return prog_->WantScatter(global_); }

  std::vector<uint8_t> TakeLocalBlob() override {
    std::vector<uint8_t> blob(sizeof(G));
    std::memcpy(blob.data(), &local_, sizeof(G));
    local_ = prog_->InitLocal();
    return blob;
  }

  void SetGlobal(const std::vector<uint8_t>& blob) override {
    CHAOS_CHECK_EQ(blob.size(), sizeof(G));
    std::memcpy(&global_, blob.data(), sizeof(G));
  }

  std::vector<uint8_t> GlobalBlob() const override {
    std::vector<uint8_t> blob(sizeof(G));
    std::memcpy(blob.data(), &global_, sizeof(G));
    return blob;
  }

  void CommitCheckpointGlobal() override { checkpointed_global_ = global_; }

  // ---- Coordinator-side blob folds.
  void ReduceGlobal(void* folded, const void* local) const override {
    G f;
    G l;
    std::memcpy(&f, folded, sizeof(G));
    std::memcpy(&l, local, sizeof(G));
    prog_->ReduceGlobal(f, l);
    std::memcpy(folded, &f, sizeof(G));
  }

  bool Advance(void* folded, uint64_t superstep, uint64_t changed) const override {
    G f;
    std::memcpy(&f, folded, sizeof(G));
    const bool done = prog_->Advance(f, superstep, changed);
    std::memcpy(folded, &f, sizeof(G));
    return done;
  }

  // ---- Batch kernels.
  void InitVertexBatch(RecordBatch* states, VertexId base, const uint32_t* degrees) override {
    auto out = states->template Span<VState>();
    for (uint64_t i = 0; i < out.size(); ++i) {
      out[i] = prog_->InitVertex(global_, base + i, degrees == nullptr ? 0 : degrees[i]);
    }
  }

  void InitAccumBatch(RecordBatch* accums) override {
    auto out = accums->template Span<A>();
    for (A& a : out) {
      a = prog_->InitAccum();
    }
  }

  void ScatterChunk(const Chunk& edges, const RecordBatch& vstate, VertexId base,
                    RecordBinner* binner) override {
    auto states = vstate.template Span<const VState>();
    auto emit = [&](VertexId dst, const U& value) {
      binner->AddUpdate(parts_->PartitionOf(dst), dst, value);
    };
    const EdgeChunkView view(edges);
    if (view.soa()) {
      // SoA fast path (core/edge_chunk_view.h): the four packed arrays
      // stream sequentially — src scans and state indexing vectorize
      // instead of striding over 24-byte structs.
      const VertexId* __restrict src = view.src();
      const VertexId* __restrict dst = view.dst();
      const float* __restrict weight = view.weight();
      const uint32_t* __restrict flags = view.flags();
      const uint32_t n = view.size();
      for (uint32_t i = 0; i < n; ++i) {
        const Edge e{src[i], dst[i], weight[i], flags[i]};
        CHAOS_DCHECK(e.src - base < states.size());
        prog_->Scatter(global_, e.src, states[e.src - base], e, emit);
      }
    } else {
      for (const Edge& e : ChunkSpan<Edge>(edges)) {
        CHAOS_DCHECK(e.src - base < states.size());
        prog_->Scatter(global_, e.src, states[e.src - base], e, emit);
      }
    }
  }

  void GatherChunk(const Chunk& updates, const RecordBatch& vstate, RecordBatch* accums,
                   VertexId base, RecordBinner* binner) override {
    auto states = vstate.template Span<const VState>();
    auto acc = accums->template Span<A>();
    auto emit = [&](VertexId dst, const U& value) {
      binner->AddUpdate(parts_->PartitionOf(dst), dst, value);
    };
    const UpdateChunkView view(updates, sizeof(U));
    if (view.soa()) {
      if constexpr (alignof(U) <= 8) {
        // SoA fast path (core/update_chunk_view.h): the dst and value
        // arrays stream sequentially — accumulator indexing and value loads
        // vectorize instead of striding over padded UpdateRecord structs.
        const VertexId* __restrict dst = view.dst();
        const U* __restrict value = view.template values_as<U>();
        const uint32_t n = view.size();
        for (uint32_t i = 0; i < n; ++i) {
          CHAOS_DCHECK(dst[i] - base < acc.size());
          prog_->Gather(global_, dst[i], states[dst[i] - base],
                        acc[dst[i] - base], value[i], emit);
        }
        return;
      }
    }
    for (const Rec& r : ChunkSpan<Rec>(updates)) {
      CHAOS_DCHECK(r.dst - base < acc.size());
      prog_->Gather(global_, r.dst, states[r.dst - base], acc[r.dst - base], r.value, emit);
    }
  }

  void MergeAccumChunk(RecordBatch* accums, const Chunk& theirs) override {
    auto acc = accums->template Span<A>();
    auto other = ChunkSpan<A>(theirs);
    CHAOS_CHECK_EQ(other.size(), acc.size());
    for (size_t i = 0; i < acc.size(); ++i) {
      prog_->MergeAccum(acc[i], other[i]);
    }
  }

  uint64_t ApplyBatch(RecordBatch* vstate, const RecordBatch& accums, VertexId base,
                      RecordBinner* binner) override {
    auto states = vstate->template Span<VState>();
    auto acc = accums.template Span<const A>();
    auto emit = [&](VertexId dst, const U& value) {
      binner->AddUpdate(parts_->PartitionOf(dst), dst, value);
    };
    auto sink = [&](const Out& out) { outputs_.push_back(out); };
    uint64_t changed = 0;
    for (size_t i = 0; i < states.size(); ++i) {
      if (prog_->Apply(global_, base + i, states[i], acc[i], local_, emit, sink)) {
        ++changed;
      }
    }
    return changed;
  }

  size_t num_outputs() const override { return outputs_.size(); }

  // ---- Typed accessors for the composition layer (compute_engine.h).
  const G& global() const { return global_; }
  const G& checkpointed_global() const { return checkpointed_global_; }
  const std::vector<Out>& outputs() const { return outputs_; }

 private:
  const P* prog_;
  const Partitioning* parts_;
  uint64_t update_wire_;
  G global_;
  G local_;
  G checkpointed_global_{};
  std::vector<Out> outputs_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_GAS_KERNEL_H_
