// Multi-job serving layer: a deterministic job-level event loop that admits,
// places, preempts and completes JobSpecs on one simulated serving cluster.
//
// Model. The serving cluster has `machines` identical machines with
// `machine_memory_bytes` of RAM each. A job reserves `spec.cluster.machines`
// whole machines for the duration of each of its slices (machines are not
// shared between concurrent jobs — the per-job cluster simulation models a
// saturated machine, so colocation would need an interference model we do
// not have). Admission control rejects, permanently and at arrival, any job
// whose shape can never fit: more machines than the cluster has, or an
// enforced per-machine BufferPool budget (ClusterConfig::EffectivePoolBudget)
// larger than a machine's RAM.
//
// Time. Job-level time is the serving cluster's clock: arrivals happen at
// spec.arrival, and a slice dispatched at T occupies its machines until
// T + slice_sim_time, where slice_sim_time is the per-job cluster DES's own
// simulated duration for that slice. Discovering a slice's duration means
// actually simulating it; slices dispatched at the same instant are
// simulated concurrently on host threads (SweepExecutor), but every
// scheduling decision is made in submission-index order on the event loop,
// so the schedule — timings, placements, event log, metrics — is bitwise
// independent of `jobs`.
//
// Preemption. Under kPriority, a preemptible job that does not hold the
// trace's top priority runs in quantum-sized slices; each slice boundary is
// a scripted stop at a superstep barrier that commits a checkpoint
// (core/job_execution.h), so a waiting higher-priority job gets the machines
// after at most one quantum. Under kFifo every job runs to completion.
#ifndef CHAOS_CORE_JOB_SCHEDULER_H_
#define CHAOS_CORE_JOB_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/job_queue.h"
#include "core/job_spec.h"

namespace chaos {

// Serving-cluster shape and policy knobs.
struct ServingConfig {
  int machines = 8;
  // Per-machine RAM for admission control; 0 disables the memory gate.
  uint64_t machine_memory_bytes = 0;
  SchedPolicy policy = SchedPolicy::kFifo;
  // Supersteps per slice for preemptible jobs under kPriority; a larger
  // quantum trades preemption latency for less checkpoint/import overhead.
  uint64_t preempt_quantum = 4;
  // Host threads simulating same-instant slices; <= 0 = hardware cores.
  // Results are bitwise independent of this value.
  int jobs = 1;
};

// Per-job scheduling outcome. All times are serving-cluster times.
struct JobSchedStats {
  bool admitted = false;
  bool completed = false;
  TimeNs arrival = 0;
  TimeNs first_dispatch = 0;
  TimeNs completion = 0;   // == latency end; 0 if never completed
  TimeNs queue_wait = 0;   // total time ready-but-not-running
  TimeNs service_time = 0; // sum of slice sim times (incl. preempted work)
  uint64_t supersteps = 0; // supersteps executed across slices
  int slices = 0;
  int preemptions = 0;
  int machines = 0;        // machines the job reserves per slice

  TimeNs latency() const { return completion - arrival; }
};

enum class SchedEventKind { kArrive, kReject, kDispatch, kPreempt, kComplete };

const char* SchedEventKindName(SchedEventKind kind);

// One scheduling decision, for the event log (tests replay it to check the
// no-inversion invariant; benches fingerprint it for determinism checks).
struct SchedEvent {
  TimeNs at = 0;
  SchedEventKind kind = SchedEventKind::kArrive;
  int job = 0;
  int machine_lo = -1;  // first reserved machine id (dispatch)
  int machine_count = 0;
  uint64_t superstep = 0;  // resume/stop point where meaningful

  std::string ToString() const;
};

// Whole-schedule accounting.
struct ServingMetrics {
  TimeNs makespan = 0;           // last completion time
  TimeNs busy_machine_time = 0;  // sum over slices of slice_time * machines
  double utilization = 0.0;      // busy_machine_time / (machines * makespan)
  int dispatches = 0;
  int preemptions = 0;
  int completed = 0;
  int rejected = 0;
};

struct ScheduleResult {
  std::vector<JobSchedStats> jobs;  // parallel to the submitted executions
  ServingMetrics metrics;
  std::vector<SchedEvent> events;   // chronological; deterministic
};

// Runs the schedule to completion. `executions` is the submission order;
// each entry must outlive the call. Scheduled jobs must not request
// single-job recovery or inject faults (the scheduler owns the crash
// script used for preemption); violations CHAOS_CHECK-fail.
ScheduleResult RunJobSchedule(const ServingConfig& config,
                              const std::vector<JobExecution*>& executions);

}  // namespace chaos

#endif  // CHAOS_CORE_JOB_SCHEDULER_H_
