// Cluster-level configuration for a Chaos run.
#ifndef CHAOS_CORE_CONFIG_H_
#define CHAOS_CORE_CONFIG_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/steal_policy.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/time.h"
#include "storage/storage_engine.h"
#include "util/common.h"

namespace chaos {

// CPU cost model, calibrated by bench_micro on the host machine. Costs are
// per item on one core; the engine divides by the configured core count
// (the paper's machines have 16 cores, §8).
struct CostModel {
  double ns_per_edge_scatter = 6.0;
  double ns_per_update_gather = 6.0;
  double ns_per_vertex_apply = 4.0;
  double ns_per_vertex_merge = 2.0;
  // Per-message CPU cost (0MQ handling, §7); paid per chunk exchanged.
  double ns_per_message = 4000.0;
  int cores = 16;

  TimeNs ItemsTime(uint64_t items, double ns_per_item) const {
    const double total = static_cast<double>(items) * ns_per_item / cores;
    return static_cast<TimeNs>(std::ceil(total));
  }
  TimeNs MessageTime() const { return ItemsTime(1, ns_per_message); }
};

// Hardware overrides for one machine of a heterogeneous cluster. Unset
// fields fall back to the cluster-wide defaults; machines beyond the
// `ClusterConfig::profiles` vector use the defaults for everything. This is
// static heterogeneity (a machine that *is* slower); dynamic degradation
// mid-run (a machine that *becomes* slower) is `ClusterConfig::faults`.
struct MachineProfile {
  std::optional<CostModel> cost;            // CPU speed / core count
  std::optional<StorageConfig> storage;     // device bandwidth / latency
  std::optional<double> nic_bandwidth_bps;  // NIC speed (both directions)
};

// How chunk placement targets are chosen (paper default: uniform random).
enum class Placement {
  kRandom,            // Chaos: uniformly random engine per chunk (§6.2)
  kLocalMaster,       // Giraph-like baseline: partition data on its master
  kCentralDirectory,  // Fig. 15 baseline: a directory server picks targets
};

struct ClusterConfig {
  int machines = 4;

  // Memory available per machine for one partition's vertex state plus
  // accumulators; determines the number of streaming partitions (§3) and —
  // through EffectivePoolBudget() — the enforced per-machine buffer-pool
  // budget (core/buffer_pool.h) every sizable buffer acquires pages from.
  uint64_t memory_budget_bytes = 8ull << 20;

  // Buffer-pool enforcement. With `memory_enforced` (the default), each
  // machine's live buffers are capped at EffectivePoolBudget() bytes;
  // overflow spills to the machine's storage device (simulated I/O + FIFO
  // stall). `pool_budget_bytes` overrides the enforced budget without
  // touching the partitioning — the knob behind chaos_run --mem-mb and the
  // bench_fig_memory degradation sweep, where the partition layout (and
  // therefore the record streams) must stay fixed while RAM shrinks.
  // 0 = auto: twice the partition working set (vertex state + accumulators,
  // doubled for a stolen partition's replica) plus streaming-window
  // headroom (fetch + write + storage staging + sub-chunk binner fill).
  bool memory_enforced = true;
  uint64_t pool_budget_bytes = 0;

  // Chunk size. The paper uses 4 MB; scaled-down runs use smaller chunks so
  // that partition chunk counts (the work-stealing granularity) match the
  // paper's regime.
  uint64_t chunk_bytes = 256 << 10;

  // Batching (§6.5): each engine keeps floor(phi * batch_k) chunk requests
  // outstanding. phi = 1 + Rnetwork/Rstorage; the paper measures phi ~= 2 on
  // its SSD/40GigE testbed and uses k = 5 (phi*k = 10, Fig. 16).
  int batch_k = 5;
  double phi = 2.0;

  // Work-stealing bias alpha (§10.2): master accepts a steal proposal iff
  // V + D/(H+1) < alpha * D/H. 0 disables stealing; infinity always steals.
  double alpha = 1.0;

  // Steal policy (core/steal_policy.h): how idle engines sweep victims and
  // how much a granted proposal takes. The default is the paper's baseline
  // (randomized steal-one, no backoff, no victim hints, flat routing);
  // alpha above stays the accept/decline bias under every mode.
  StealPolicy steal;

  // Update-plane combining knobs. wire_combine re-encodes outbound update
  // batches columnar with delta-varint destination ids before charging the
  // NIC (net/network.h, UpdateWireCodec) — pure re-encoding, every record
  // is reproduced exactly, only wire-byte charges shrink. steal_combine
  // merges co-domain steal proposals queued at a victim into one
  // MessageTime() charge (core/steal_policy.h, engine_core.cc
  // ControlServer). Both default off so pinned benchmarks reproduce
  // byte-for-byte; chaos_run turns both on (--wire-combine/--steal-combine)
  // and fig12 A/Bs the wire savings.
  bool wire_combine = false;
  bool steal_combine = false;

  Placement placement = Placement::kRandom;

  // Checkpoint every N supersteps (0 = off, the default), 2-phase protocol
  // (§6.6). Units: supersteps. The checkpoint copy is written during gather
  // (ComputeEngine::ProcessPartitionGatherMaster) and committed at the
  // phase-1 barrier of ComputeEngine::CommitCheckpoint; the recovery driver
  // (core/recovery.h) and bench fig13/fig_recovery consume the result.
  uint32_t checkpoint_interval = 0;

  // Scripted whole-cluster crash: stop all compute engines after the gather
  // barrier of this superstep (units: absolute superstep index; -1 = never,
  // the default). Storage contents survive for recovery. Consumed by the
  // barrier coordinator (ComputeEngine::BarrierService); for a *machine*
  // failure mid-run use FaultSchedule::MachineCrash in `faults` instead.
  int64_t crash_after_superstep = -1;

  // Resume a crashed run (default false): skip pre-processing; vertex and
  // edge sets must already be present in storage, imported from the
  // committed checkpoint side via Cluster::ImportSets (same machine count)
  // or Cluster::ImportRepartitioned (rescaled). Consumed by Cluster::Resume
  // and ComputeEngine::Main; RunWithRecovery sets both fields up.
  bool resume = false;
  // First superstep of the resumed run (units: absolute superstep index;
  // meaningful only with `resume`): RunResult::checkpoint_superstep of the
  // crashed run, i.e. the superstep after the last committed checkpoint.
  uint64_t resume_superstep = 0;

  // Safety bound on supersteps.
  uint64_t max_supersteps = 100000;

  NetworkConfig net = NetworkConfig::FortyGigE();
  StorageConfig storage = StorageConfig::Ssd();
  CostModel cost;

  // Per-machine hardware overrides (heterogeneous clusters); indexed by
  // machine id, may be shorter than `machines`.
  std::vector<MachineProfile> profiles;

  // Declarative fault/straggler schedule replayed during the run (see
  // sim/fault_injector.h): rate degradations and fail-stop MachineCrash
  // events. Empty = perfectly healthy cluster.
  FaultSchedule faults;

  uint64_t seed = 1;

  // Event-queue structure for the cluster's Simulator (sim/event_queue.h).
  // The pop order is identical for every choice, so results are bitwise
  // independent of it; kBinaryHeap is kept as the differential golden.
  EventQueueImpl event_queue = EventQueueImpl::kCalendar;

  int fetch_window() const {
    const int w = static_cast<int>(std::floor(phi * batch_k));
    return w < 1 ? 1 : w;
  }

  // The enforced per-machine buffer-pool budget; 0 = enforcement off.
  uint64_t EffectivePoolBudget() const {
    if (!memory_enforced) {
      return 0;
    }
    if (pool_budget_bytes > 0) {
      return pool_budget_bytes;
    }
    return 2 * memory_budget_bytes +
           4ull * static_cast<uint64_t>(fetch_window()) * chunk_bytes;
  }
  bool stealing_enabled() const { return alpha > 0.0; }

  const MachineProfile* profile_for(MachineId m) const {
    const auto i = static_cast<size_t>(m);
    return i < profiles.size() ? &profiles[i] : nullptr;
  }
  const CostModel& cost_for(MachineId m) const {
    const MachineProfile* p = profile_for(m);
    return p != nullptr && p->cost.has_value() ? *p->cost : cost;
  }
  const StorageConfig& storage_for(MachineId m) const {
    const MachineProfile* p = profile_for(m);
    return p != nullptr && p->storage.has_value() ? *p->storage : storage;
  }
  double nic_bandwidth_for(MachineId m) const {
    const MachineProfile* p = profile_for(m);
    return p != nullptr && p->nic_bandwidth_bps.has_value() ? *p->nic_bandwidth_bps
                                                           : net.nic_bandwidth_bps;
  }
};

// Theoretical storage utilization from the paper's batching analysis:
// rho(m, k) = 1 - (1 - k/m)^m   (Eq. 4); for k >= m utilization is 1.
inline double TheoreticalUtilization(int m, int k) {
  CHAOS_CHECK_GT(m, 0);
  CHAOS_CHECK_GT(k, 0);
  if (k >= m) {
    return 1.0;
  }
  return 1.0 - std::pow(1.0 - static_cast<double>(k) / m, m);
}

// Limit of Eq. 4 as m -> infinity: 1 - e^-k (Eq. 5).
inline double UtilizationLowerBound(int k) { return 1.0 - std::exp(-static_cast<double>(k)); }

}  // namespace chaos

#endif  // CHAOS_CORE_CONFIG_H_
