// Social-network analytics: the paper's motivating workload class. On a
// power-law "follower" graph, compute influencer scores (PageRank),
// communities (WCC) and a maximal independent "seed set" (MIS) for viral
// marketing — three runs over the same cluster configuration.
//
//   build/examples/social_influence [--scale N] [--machines M]
#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "algorithms/runner.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/stats.h"

using namespace chaos;

int main(int argc, char** argv) {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale of the social graph");
  opt.AddInt("machines", 8, "simulated machines");
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }
  const int machines = static_cast<int>(opt.GetInt("machines"));

  RmatOptions graph_opt;
  graph_opt.scale = static_cast<uint32_t>(opt.GetInt("scale"));
  graph_opt.seed = 7;
  InputGraph follows = GenerateRmat(graph_opt);
  std::printf("social graph: %llu users, %llu follow edges\n",
              static_cast<unsigned long long>(follows.num_vertices),
              static_cast<unsigned long long>(follows.num_edges()));

  ClusterConfig config;
  config.machines = machines;
  config.memory_budget_bytes = follows.num_vertices * 12;
  config.chunk_bytes = 64 << 10;

  // --- Influencers: PageRank over the directed follow graph.
  auto pr = RunJob(MakeJob("pagerank", PrepareInput("pagerank", follows), config));
  std::vector<VertexId> order(follows.num_vertices);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) { return pr.values[a] > pr.values[b]; });
  std::printf("\ntop influencers (PageRank, %s simulated):\n",
              FormatSeconds(pr.metrics.total_seconds()).c_str());
  for (int i = 0; i < 5; ++i) {
    std::printf("  user %8llu  score %.2f\n",
                static_cast<unsigned long long>(order[static_cast<size_t>(i)]),
                pr.values[order[static_cast<size_t>(i)]]);
  }

  // --- Communities: weakly connected components of the friendship graph.
  auto wcc = RunJob(MakeJob("wcc", PrepareInput("wcc", follows), config));
  std::map<double, uint64_t> sizes;
  for (const double label : wcc.values) {
    sizes[label]++;
  }
  std::vector<uint64_t> by_size;
  for (const auto& [label, count] : sizes) {
    by_size.push_back(count);
  }
  std::sort(by_size.rbegin(), by_size.rend());
  std::printf("\ncommunities (WCC, %s): %zu total; largest: %llu users (%.1f%%)\n",
              FormatSeconds(wcc.metrics.total_seconds()).c_str(), sizes.size(),
              static_cast<unsigned long long>(by_size.front()),
              100.0 * static_cast<double>(by_size.front()) /
                  static_cast<double>(follows.num_vertices));

  // --- Seed set: maximal independent set = pairwise non-adjacent users.
  auto mis = RunJob(MakeJob("mis", PrepareInput("mis", follows), config));
  const auto seeds = static_cast<uint64_t>(
      std::count_if(mis.values.begin(), mis.values.end(), [](double v) { return v > 0.5; }));
  std::printf("\nseed set (MIS, %s, %llu rounds): %llu users, none adjacent\n",
              FormatSeconds(mis.metrics.total_seconds()).c_str(),
              static_cast<unsigned long long>(mis.supersteps),
              static_cast<unsigned long long>(seeds));

  std::printf("\ncluster: %d machines, %.0f%% mean device utilization on the PR run\n",
              machines, 100.0 * pr.metrics.MeanDeviceUtilization());
  return 0;
}
