#include "sim/simulator.h"

#include <utility>

namespace chaos {

internal::DetachedTask Simulator::RunDetached(Simulator* sim, Task<> task) {
  co_await std::move(task);
  --sim->live_tasks_;
}

void Simulator::Spawn(Task<> task) {
  CHAOS_CHECK_MSG(task.valid(), "Spawn() requires a valid task");
  ++live_tasks_;
  ++spawned_;
  RunDetached(this, std::move(task));
}

uint64_t Simulator::Run() {
  uint64_t ran = 0;
  while (!queue_.empty()) {
    EventQueue::Event ev = queue_.Pop();
    CHAOS_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ev.fn();
    ++ran;
    ++processed_;
  }
  return ran;
}

bool Simulator::RunUntil(TimeNs deadline) {
  while (!queue_.empty()) {
    if (queue_.Peek().time > deadline) {
      return false;
    }
    EventQueue::Event ev = queue_.Pop();
    CHAOS_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ev.fn();
    ++processed_;
  }
  return true;
}

}  // namespace chaos
