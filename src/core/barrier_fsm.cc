// The barrier and 2-phase-checkpoint FSMs of the engine core (paper §5.2,
// §6.6). Untemplated: aggregator state crosses the wire as kernel-
// serialized blobs (protocol.h), and the coordinator folds them through
// the type-erased ProgramKernel.
#include <string>
#include <utility>
#include <vector>

#include "core/engine_core.h"

namespace chaos {

Task<std::pair<bool, bool>> EngineCore::Barrier(bool advance) {
  BucketTimer t(ctx_.sim, metrics_, Bucket::kBarrier);
  Message req;
  req.src = ctx_.machine;
  req.dst = 0;
  req.service = kComputeService;
  req.type = kBarrierArrive;
  req.wire_bytes = kControlMsgBytes + kernel_->global_wire_bytes();
  BarrierArriveMsg body;
  body.phase_id = next_phase_id_++;
  body.local = kernel_->TakeLocalBlob();  // snapshots and resets the delta
  body.vertices_changed = changed_;
  body.advance = advance;
  body.failed = Dead();  // barrier doubles as the failure detector (§6.6)
  body.superstep = superstep_;
  req.body = std::move(body);
  changed_ = 0;
  Message resp = co_await ctx_.bus->Call(std::move(req));
  const auto& release = std::any_cast<const BarrierReleaseMsg&>(resp.body);
  kernel_->SetGlobal(release.global);
  if (release.crash) {
    // The coordinator stops serving barriers after a crash release; every
    // caller must unwind to Main without arriving at another barrier.
    aborted_ = true;
  }
  co_return std::make_pair(release.done, release.crash);
}

Task<> EngineCore::BarrierService() {
  SimQueue<Message>& inbox = ctx_.bus->Inbox(0, kComputeService);
  std::vector<uint8_t> canonical = kernel_->GlobalBlob();
  const int m = ctx_.machines();
  while (true) {
    std::vector<Message> arrivals;
    arrivals.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      Message msg = co_await inbox.Pop();
      CHAOS_CHECK_EQ(msg.type, static_cast<uint32_t>(kBarrierArrive));
      arrivals.push_back(std::move(msg));
    }
    const auto& first = std::any_cast<const BarrierArriveMsg&>(arrivals.front().body);
    const bool advance = first.advance;
    const uint64_t superstep = first.superstep;
    bool done = false;
    // Failure detection (§6.6): any flagged arrival — at any barrier —
    // aborts the run cluster-wide. Recovery is a fresh cluster resuming
    // from the last committed checkpoint (core/recovery.h).
    bool crash = false;
    for (const Message& msg : arrivals) {
      crash = crash || std::any_cast<const BarrierArriveMsg&>(msg.body).failed;
    }
    if (advance) {
      std::vector<uint8_t> folded = canonical;
      uint64_t changed = 0;
      for (const Message& msg : arrivals) {
        const auto& body = std::any_cast<const BarrierArriveMsg&>(msg.body);
        CHAOS_CHECK_EQ(body.phase_id, first.phase_id);
        CHAOS_CHECK_EQ(body.superstep, superstep);
        kernel_->ReduceGlobal(folded.data(), body.local.data());
        changed += body.vertices_changed;
      }
      done = kernel_->Advance(folded.data(), superstep, changed);
      canonical = std::move(folded);
      crash = crash || (ctx_.config->crash_after_superstep >= 0 &&
                        static_cast<uint64_t>(ctx_.config->crash_after_superstep) == superstep);
      if (!crash) {
        superstep_end_times_.push_back(ctx_.sim->now());
      }
    }
    for (const Message& msg : arrivals) {
      BarrierReleaseMsg release;
      release.global = canonical;
      release.done = done;
      release.crash = crash;
      ctx_.bus->PostReply(msg, kBarrierRelease, kControlMsgBytes + kernel_->global_wire_bytes(),
                          std::move(release));
    }
    if (crash || (advance && done)) {
      co_return;
    }
  }
}

// ----------------------------------------------------------- checkpoint

Task<> EngineCore::CommitCheckpoint() {
  co_await Barrier(/*advance=*/false);  // phase 1: all writes acked cluster-wide
  if (aborted_) {
    co_return;  // failure before the commit point: this checkpoint never was
  }
  // Snapshot the in-flight update set of the resume superstep into the
  // incoming snapshot side. Updates emitted by the just-finished gather
  // (targeting superstep_ + 1) cannot be regenerated from the vertex
  // checkpoint — resume re-runs that superstep's *scatter*, not the
  // previous gather — so they are part of the recoverable state. For
  // pure-scatter programs (WantScatter always true) this set is empty and
  // the snapshot costs only the scan handshakes.
  const SetKind new_usnap =
      checkpoint_counter_ % 2 == 0 ? SetKind::kUpdatesCkptA : SetKind::kUpdatesCkptB;
  {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    for (const PartitionId p : own_partitions_) {
      ChunkFetcher fetcher(&ctx_, &rng_, UpdatesSet(p, superstep_ + 1), CheckpointScanEpoch(),
                           ctx_.config->fetch_window(), LocalMasterTarget(parts_->Master(p)),
                           /*preserve_payload=*/true);
      fetcher.Start();
      while (true) {
        auto chunk = co_await fetcher.Next();
        if (!chunk.has_value()) {
          break;
        }
        co_await writer.Write(SetId{p, new_usnap}, std::move(*chunk), ctx_.machine);
      }
    }
    co_await writer.Drain();
  }
  co_await Barrier(/*advance=*/false);  // update snapshots durable cluster-wide
  if (aborted_) {
    co_return;  // failure before the commit point: prior checkpoint intact
  }
  kernel_->CommitCheckpointGlobal();
  checkpointed_superstep_ = superstep_ + 1;
  has_checkpoint_ = true;
  const SetKind old_side =
      checkpoint_counter_ % 2 == 0 ? SetKind::kCheckpointB : SetKind::kCheckpointA;
  const SetKind old_usnap =
      checkpoint_counter_ % 2 == 0 ? SetKind::kUpdatesCkptB : SetKind::kUpdatesCkptA;
  ++checkpoint_counter_;  // commit point passed: the new side is current
  {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
    for (const PartitionId p : own_partitions_) {
      co_await DeleteSetEverywhere(&ctx_, SetId{p, old_side});
      co_await DeleteSetEverywhere(&ctx_, SetId{p, old_usnap});
    }
  }
  co_await Barrier(/*advance=*/false);  // phase 2: commit visible everywhere
}

}  // namespace chaos
