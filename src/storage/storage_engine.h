// The Chaos storage engine (paper §6): one per machine, serving chunk
// requests over the message bus against a FIFO storage device.
//
// Key protocol properties implemented here:
//  * Sequential chunk reads: any unserved chunk of the requested set may be
//    returned; a per-(set, epoch) cursor guarantees each chunk is served
//    exactly once per epoch, which is what lets multiple computation engines
//    drain one partition without synchronizing (§6.3).
//  * Epoch reset: the first request of a new epoch rewinds the cursor — the
//    paper's "file pointer is reset at the end of each iteration" (§7).
//  * Indexed access for vertex chunks (§6.4), placed by hashing.
//  * A local remaining-bytes query backing the master's D estimate (§5.4).
#ifndef CHAOS_STORAGE_STORAGE_ENGINE_H_
#define CHAOS_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

class BufferPool;  // core/buffer_pool.h; serve/write staging charges pages

struct StorageConfig {
  double bandwidth_bps = 400e6;           // device bandwidth (SSD ~ 400 MB/s, §8)
  TimeNs access_latency = 100 * kNsPerUs; // per-request latency
  uint64_t chunk_bytes = 4ull << 20;      // nominal chunk size (4 MB, §7)
  // Optional directory for file-backed payload spilling ("" = in-memory).
  std::string spill_dir;

  static StorageConfig Ssd();
  static StorageConfig Hdd();  // RAID0 of 2 disks, ~200 MB/s aggregate (§8)
};

// Storage protocol message types.
enum StorageMsgType : uint32_t {
  kReadChunkReq = 100,   // body: ReadChunkReq  -> kReadChunkResp
  kReadChunkResp = 101,  // body: ReadChunkResp
  kWriteChunkReq = 102,  // body: WriteChunkReq -> kWriteAck
  kWriteAck = 103,       // no body
  kReadIndexedReq = 104, // body: ReadIndexedReq -> kReadChunkResp
  kDeleteSetReq = 105,   // body: DeleteSetReq  -> kDeleteAck
  kDeleteAck = 106,      // no body
  kStorageShutdown = 107,
};

struct ReadChunkReq {
  SetId set;
  uint64_t epoch = 0;
  // Keep consume-once payloads (update sets) resident after serving: set by
  // checkpoint snapshot scans, which read the set a later gather must still
  // be able to drain.
  bool preserve_payload = false;
};

struct ReadChunkResp {
  bool ok = false;
  Chunk chunk;
};

struct WriteChunkReq {
  SetId set;
  Chunk chunk;
};

struct ReadIndexedReq {
  SetId set;
  uint64_t index = 0;
  // When true the read counts against the epoch's served bytes (and frees
  // consume-once payloads), so the D estimate works in directory mode too.
  bool consume = false;
  uint64_t epoch = 0;
};

struct DeleteSetReq {
  SetId set;
};

// Modeled wire size of a bare request/ack message.
constexpr uint64_t kControlMsgBytes = 64;

class StorageEngine {
 public:
  StorageEngine(Simulator* sim, MessageBus* bus, MachineId machine, const StorageConfig& config);
  ~StorageEngine();
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // Spawns the serve loop. The engine runs until a kStorageShutdown message.
  void Start();

  // Attaches this machine's buffer pool: chunk payloads staged in memory
  // while being served or ingested acquire pages from it (the resident
  // sets themselves model the disk, not RAM). Optional; null = untracked.
  void set_pool(BufferPool* pool) { pool_ = pool; }

  // ---- Host-side (non-simulated) access, used for setup and inspection.
  void HostAddChunk(const SetId& set, Chunk chunk);
  // Returns nullptr if the set does not exist on this engine.
  const std::vector<Chunk>* HostGetSet(const SetId& set) const;
  std::vector<SetId> HostListSets() const;
  void HostDeleteSet(const SetId& set);

  // Rematerializes a (possibly file-spilled) chunk's payload for host-side
  // consumers (result extraction, checkpoint export).
  Chunk HostMaterialize(const SetId& set, const Chunk& chunk) const {
    return Materialize(set, chunk);
  }

  // ---- Local queries (same-machine, free: used for the D estimate, §5.4).
  uint64_t RemainingBytes(const SetId& set, uint64_t epoch) const;
  uint64_t TotalBytes(const SetId& set) const;
  uint64_t NumChunks(const SetId& set) const;

  // ---- Statistics.
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t chunks_served() const { return chunks_served_; }
  uint64_t empty_responses() const { return empty_responses_; }
  FifoResource& device() { return device_; }
  const FifoResource& device() const { return device_; }
  MachineId machine() const { return machine_; }
  const StorageConfig& config() const { return config_; }

 private:
  struct SetStore {
    std::vector<Chunk> chunks;
    std::unordered_map<uint64_t, size_t> by_index;  // chunk.index -> position
    uint64_t bytes_total = 0;
    // Sequential-serve state for the current epoch.
    uint64_t epoch = std::numeric_limits<uint64_t>::max();
    size_t cursor = 0;
    uint64_t bytes_served_epoch = 0;
  };

  Task<> Serve();
  Task<> HandleRead(Message m);
  Task<> HandleReadIndexed(Message m);
  Task<> HandleWrite(Message m);
  Task<> HandleDelete(Message m);

  SetStore& GetOrCreate(const SetId& set);
  void RollEpoch(SetStore& store, uint64_t epoch) const;

  // File-backed payload spill support.
  std::string SpillPath(const SetId& set, uint64_t spill_id) const;
  void MaybeSpill(const SetId& set, Chunk& chunk);
  Chunk Materialize(const SetId& set, const Chunk& chunk) const;

  Simulator* sim_;
  MessageBus* bus_;
  MachineId machine_;
  StorageConfig config_;
  BufferPool* pool_ = nullptr;
  FifoResource device_;
  mutable std::unordered_map<SetId, SetStore, SetIdHash> sets_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t chunks_served_ = 0;
  uint64_t empty_responses_ = 0;
  uint64_t next_spill_id_ = 1;
  bool started_ = false;
};

// Returns the machine hosting vertex chunk `chunk_idx` of `partition`
// (paper §6.4: "the equivalent of hashing on the partition identifier and
// the chunk number").
inline MachineId VertexChunkHome(PartitionId partition, uint64_t chunk_idx, int machines) {
  CHAOS_CHECK_GT(machines, 0);
  return static_cast<MachineId>(Mix64(HashCombine(partition, chunk_idx)) %
                                static_cast<uint64_t>(machines));
}

}  // namespace chaos

#endif  // CHAOS_STORAGE_STORAGE_ENGINE_H_
