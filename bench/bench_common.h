// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every bench accepts --scale / --machines / --seed flags so the paper-scale
// experiments can be approached on bigger hosts; defaults are sized for a
// laptop-class machine. Times reported are simulated cluster times.
#ifndef CHAOS_BENCH_BENCH_COMMON_H_
#define CHAOS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/runner.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace chaos::bench {

inline const std::vector<int>& MachineSweep() {
  static const std::vector<int> kSweep = {1, 2, 4, 8, 16, 32};
  return kSweep;
}

// Cluster configuration mirroring the paper's testbed shape at reduced
// scale: the memory budget targets ~4 streaming partitions per machine and
// the chunk size targets ~128 chunks per machine per scan, preserving the
// work-stealing granularity of the 4 MB / RMAT-32 regime.
//
// Miniaturization: when the chunk shrinks below the paper's 4 MB, every
// fixed per-request latency (device access, network propagation, IPC,
// per-message CPU) is scaled by the same factor, so the system stays in the
// paper's bandwidth-bound regime (latency/transfer ratios preserved) and
// runtime ratios remain meaningful. Without this, kilobyte chunks would be
// latency-dominated — a regime the real system never operates in.
// Sized variant for streamed inputs (bench_fig_scale): the graph never
// materializes, so the caller passes the two facts the formula needs.
inline ClusterConfig BenchClusterConfigSized(uint64_t num_vertices, uint64_t input_wire_bytes,
                                             int machines, uint64_t seed = 1,
                                             StorageConfig storage = StorageConfig::Ssd(),
                                             NetworkConfig net = NetworkConfig::FortyGigE()) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.seed = seed;
  cfg.storage = storage;
  cfg.net = net;
  constexpr uint64_t kBytesPerVertex = 48;  // generous bound over all programs
  const uint64_t total_vertex_bytes = num_vertices * kBytesPerVertex;
  cfg.memory_budget_bytes =
      std::max<uint64_t>(total_vertex_bytes / (4 * static_cast<uint64_t>(machines)) + 1,
                         4 << 10);
  const uint64_t wire = input_wire_bytes;
  cfg.chunk_bytes = std::min<uint64_t>(
      std::max<uint64_t>(wire / (static_cast<uint64_t>(machines) * 128) + 1, 2 << 10),
      4ull << 20);
  const double miniature =
      std::min(1.0, static_cast<double>(cfg.chunk_bytes) / static_cast<double>(4ull << 20));
  auto shrink = [miniature](TimeNs t) {
    const auto scaled = static_cast<TimeNs>(static_cast<double>(t) * miniature);
    return scaled > 1 ? scaled : 1;
  };
  cfg.storage.access_latency = shrink(cfg.storage.access_latency);
  cfg.net.one_way_latency = shrink(cfg.net.one_way_latency);
  cfg.net.local_latency = shrink(cfg.net.local_latency);
  cfg.net.incast_backlog_threshold = shrink(cfg.net.incast_backlog_threshold);
  cfg.net.incast_penalty = shrink(cfg.net.incast_penalty);
  cfg.cost.ns_per_message = std::max(1.0, cfg.cost.ns_per_message * miniature);
  return cfg;
}

inline ClusterConfig BenchClusterConfig(const InputGraph& graph, int machines,
                                        uint64_t seed = 1,
                                        StorageConfig storage = StorageConfig::Ssd(),
                                        NetworkConfig net = NetworkConfig::FortyGigE()) {
  return BenchClusterConfigSized(graph.num_vertices, graph.input_wire_bytes(), machines,
                                 seed, storage, net);
}

// The latency-miniaturization ratio BenchClusterConfig applied (configured
// chunk size vs the paper's 4 MB). Benches that set policy time knobs after
// building the config (e.g. steal backoff windows) scale them with this so
// they stay proportionate to the shrunken per-request latencies.
inline double BenchMiniature(const ClusterConfig& cfg) {
  return std::min(1.0,
                  static_cast<double>(cfg.chunk_bytes) / static_cast<double>(4ull << 20));
}

inline TimeNs BenchShrinkTime(const ClusterConfig& cfg, TimeNs t) {
  const auto scaled = static_cast<TimeNs>(static_cast<double>(t) * BenchMiniature(cfg));
  return scaled > 1 ? scaled : 1;
}

inline InputGraph BenchRmat(uint32_t scale, bool weighted, uint64_t seed) {
  RmatOptions opt;
  opt.scale = scale;
  opt.weighted = weighted;
  opt.seed = seed;
  return GenerateRmat(opt);
}

// Column-aligned row printing for paper-style tables.
inline void PrintHeader(const std::vector<std::string>& columns) {
  for (const auto& c : columns) {
    std::printf("%14s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%14s", "------------");
  }
  std::printf("\n");
}

inline void PrintCell(const std::string& value) { std::printf("%14s", value.c_str()); }
inline void PrintCell(double value, const char* fmt = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  std::printf("%14s", buf);
}
inline void EndRow() { std::printf("\n"); }

inline std::string Fixed(double value, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

// Standard flag set; returns false (after printing help) if --help given.
inline bool ParseFlags(Options& opt, int argc, char** argv) {
  auto err = opt.Parse(argc - 1, argv + 1);
  if (err.has_value()) {
    std::fprintf(stderr, "error: %s\n", err->c_str());
    opt.PrintHelp(argv[0]);
    return false;
  }
  if (opt.help_requested()) {
    opt.PrintHelp(argv[0]);
    return false;
  }
  return true;
}

inline std::vector<std::string> AllAlgorithmNames() {
  std::vector<std::string> names;
  for (const auto& info : Algorithms()) {
    names.push_back(info.name);
  }
  return names;
}

// ----------------------------------------------------------------------
// Parallel sweep plumbing (--jobs).
//
// The driver parses --jobs and calls SetSweepJobs() before dispatching any
// bench; the shared SweepExecutor is created lazily with that setting on
// the first sweep. 0 = hardware concurrency, 1 = fully sequential (no
// threads spawned — today's behavior, bit-for-bit).
inline int& SweepJobsSetting() {
  static int jobs = 0;
  return jobs;
}

inline void SetSweepJobs(int jobs) { SweepJobsSetting() = jobs; }

inline SweepExecutor& SharedSweepExecutor() {
  static SweepExecutor executor(SweepJobsSetting());
  return executor;
}

// ----------------------------------------------------------------------
// Point-list sweep API: benches declare their trial grid as a list of
// self-contained closures, run them all (in parallel under --jobs), then
// print tables from the results — which arrive indexed in declaration
// order regardless of the schedule, so output and statistics are bitwise
// independent of the thread count (see util/parallel.h for the contract).
//
// Pattern:
//   Sweep<double> sweep;
//   for (...) sweep.Add([=] { return RunJob(MakeJob(...)).metrics.total_seconds(); });
//   const auto seconds = sweep.Run();
//   // print phase: walk the same loop nest with a running index.
template <typename R>
class Sweep {
 public:
  // Declares a point; returns its index into Run()'s result vector.
  size_t Add(std::function<R()> point) {
    points_.push_back(std::move(point));
    return points_.size() - 1;
  }

  size_t size() const { return points_.size(); }

  std::vector<R> Run() { return SharedSweepExecutor().RunPoints(points_); }

 private:
  std::vector<std::function<R()>> points_;
};

// ----------------------------------------------------------------------
// Deterministic metric record. Benches record named simulation-derived
// values (simulated seconds, speedups, counts — never host wall-clock);
// the driver emits them per trial under "metrics", sorted by key. Sorted
// emission + sim-only values is what makes the metric JSON byte-identical
// between --jobs=1 and --jobs=N runs. Thread-safe so points may record
// from executor threads, though most benches record in the print phase.
inline std::mutex& RecordedMetricsMutex() {
  static std::mutex mu;
  return mu;
}

inline std::map<std::string, double>& RecordedMetricsMap() {
  static std::map<std::string, double> metrics;
  return metrics;
}

inline void RecordMetric(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(RecordedMetricsMutex());
  RecordedMetricsMap()[key] = value;
}

// Driver-side: drains everything recorded since the last call (one trial).
inline std::map<std::string, double> TakeRecordedMetrics() {
  std::lock_guard<std::mutex> lock(RecordedMetricsMutex());
  std::map<std::string, double> out;
  out.swap(RecordedMetricsMap());
  return out;
}

// ----------------------------------------------------------------------
// Bench registry: every bench translation unit registers itself here and
// the unified driver (bench_main.cc) dispatches by name, times each trial,
// and emits the BENCH JSON schema (see README.md).
using BenchFn = int (*)(int argc, char** argv);

struct BenchEntry {
  std::string name;
  std::string description;
  BenchFn fn;
};

inline std::vector<BenchEntry>& BenchRegistry() {
  static std::vector<BenchEntry> registry;
  return registry;
}

inline bool RegisterBench(const char* name, const char* description, BenchFn fn) {
  BenchRegistry().push_back(BenchEntry{name, description, fn});
  return true;
}

// Defines a bench entry point and registers it under `id`. Usage:
//   CHAOS_BENCH_MAIN(fig8, "Figure 8: strong scaling") { ... return 0; }
// The body receives (int argc, char** argv) with argv[0] set to the bench
// name and driver-level flags already stripped.
#define CHAOS_BENCH_MAIN(id, description)                                   \
  static int ChaosBenchRun_##id(int argc, char** argv);                     \
  static const bool chaos_bench_registered_##id [[maybe_unused]] =          \
      ::chaos::bench::RegisterBench(#id, description, &ChaosBenchRun_##id); \
  static int ChaosBenchRun_##id(int argc, char** argv)

}  // namespace chaos::bench

#endif  // CHAOS_BENCH_BENCH_COMMON_H_
