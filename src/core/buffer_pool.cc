#include "core/buffer_pool.h"

#include <algorithm>

namespace chaos {

Task<BufferPool::Lease> BufferPool::Acquire(uint64_t bytes) {
  const uint64_t id = next_id_++;
  slots_.push_back(Slot{id, bytes, 0});
  resident_ += bytes;
  ++metrics_.acquires;
  const uint64_t evicted = EvictToBudget();
  // Peak is sampled after admission control: the high-water mark of bytes
  // RAM actually held, never above an enforced budget. Unenforced pools
  // never evict, so there it is the true peak working set (fig_memory's
  // B0 baseline).
  metrics_.peak_bytes = std::max(metrics_.peak_bytes, resident_);
  if (evicted > 0) {
    co_await ChargeSpill(evicted);
  }
  co_return Lease(this, id);
}

Task<> BufferPool::Touch(const Lease& lease) {
  if (lease.pool_ == nullptr) {
    co_return;
  }
  CHAOS_CHECK(lease.pool_ == this);
  // Move to most-recently-used position regardless of spill state, so the
  // eviction order tracks actual access recency.
  auto it = std::find_if(slots_.begin(), slots_.end(),
                         [&](const Slot& s) { return s.id == lease.id_; });
  CHAOS_CHECK_MSG(it != slots_.end(), "Touch of unknown buffer-pool lease");
  Slot slot = *it;
  slots_.erase(it);
  slots_.push_back(slot);
  const uint64_t fault = slots_.back().spilled;
  if (fault == 0) {
    co_return;
  }
  // Fault the evicted pages back in; someone colder pays for the room.
  slots_.back().resident += fault;
  slots_.back().spilled = 0;
  resident_ += fault;
  spilled_ -= fault;
  metrics_.spill_in_bytes += fault;
  const uint64_t evicted = EvictToBudget();
  metrics_.peak_bytes = std::max(metrics_.peak_bytes, resident_);
  co_await ChargeSpill(fault + evicted);
}

uint64_t BufferPool::EvictToBudget() {
  if (!enforced()) {
    return 0;
  }
  uint64_t evicted = 0;
  for (Slot& slot : slots_) {
    if (resident_ <= budget_) {
      break;
    }
    if (slot.resident == 0) {
      continue;
    }
    const uint64_t take = std::min(slot.resident, resident_ - budget_);
    slot.resident -= take;
    slot.spilled += take;
    resident_ -= take;
    spilled_ += take;
    evicted += take;
  }
  if (evicted > 0) {
    metrics_.spill_out_bytes += evicted;
    ++metrics_.spill_events;
  }
  return evicted;
}

Task<> BufferPool::ChargeSpill(uint64_t bytes) {
  const TimeNs start = sim_->now();
  co_await device_->Acquire(access_latency_ + TransferTimeNs(bytes, bandwidth_bps_));
  metrics_.stall_time += sim_->now() - start;
}

void BufferPool::Release(uint64_t id) {
  auto it = std::find_if(slots_.begin(), slots_.end(),
                         [&](const Slot& s) { return s.id == id; });
  CHAOS_CHECK_MSG(it != slots_.end(), "Release of unknown buffer-pool lease");
  // Dropped pages cost nothing: resident ones are simply freed, spilled
  // ones are dead blocks on the device.
  resident_ -= it->resident;
  spilled_ -= it->spilled;
  slots_.erase(it);
}

const BufferPool::Slot* BufferPool::Find(uint64_t id) const {
  for (const Slot& s : slots_) {
    if (s.id == id) {
      return &s;
    }
  }
  return nullptr;
}

uint64_t BufferPool::lease_resident_bytes(const Lease& lease) const {
  const Slot* s = Find(lease.id_);
  return s == nullptr ? 0 : s->resident;
}

uint64_t BufferPool::lease_spilled_bytes(const Lease& lease) const {
  const Slot* s = Find(lease.id_);
  return s == nullptr ? 0 : s->spilled;
}

}  // namespace chaos
