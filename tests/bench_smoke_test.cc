// Smoke test for the unified bench driver: runs `chaos_bench --bench=micro
// --trials=1 --out=<tmp>` as a subprocess and validates that the emitted
// file is well-formed JSON carrying nonzero timings. The driver path is
// passed as argv[1] by ctest (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string g_bench_path;

// Single-quote a path for /bin/sh so build trees with spaces or shell
// metacharacters in their path still run the driver correctly.
std::string ShellQuote(const std::string& s) {
  std::string quoted = "'";
  for (char c : s) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

// ------------------------------------------------------------------
// Minimal recursive-descent JSON parser: validates syntax and records the
// numeric values seen for a key of interest. No external dependencies.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Parse() {
    pos_ = 0;
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

  const std::vector<double>& values_for(const std::string& key) const {
    static const std::vector<double> kEmpty;
    auto it = numeric_by_key_.find(key);
    return it == numeric_by_key_.end() ? kEmpty : it->second;
  }

  const std::vector<std::string>& strings_for(const std::string& key) const {
    static const std::vector<std::string> kEmpty;
    auto it = string_by_key_.find(key);
    return it == string_by_key_.end() ? kEmpty : it->second;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      s += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    if (out != nullptr) {
      *out = s;
    }
    return true;
  }

  bool ParseNumber(double* out) {
    SkipWs();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    pos_ += static_cast<size_t>(end - start);
    if (out != nullptr) {
      *out = v;
    }
    return true;
  }

  bool ParseValue(const std::string& key = "") {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray(key);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      if (!key.empty()) {
        string_by_key_[key].push_back(s);
      }
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    double v = 0.0;
    if (!ParseNumber(&v)) {
      return false;
    }
    if (!key.empty()) {
      numeric_by_key_[key].push_back(v);
    }
    return true;
  }

  bool ParseObject() {
    if (!Consume('{')) {
      return false;
    }
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      std::string key;
      if (!ParseString(&key) || !Consume(':') || !ParseValue(key)) {
        return false;
      }
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(const std::string& key) {
    if (!Consume('[')) {
      return false;
    }
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      if (!ParseValue(key)) {
        return false;
      }
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::map<std::string, std::vector<double>> numeric_by_key_;
  std::map<std::string, std::vector<std::string>> string_by_key_;
};

TEST(BenchSmokeTest, MicroEmitsValidJsonWithNonzeroTimings) {
  ASSERT_FALSE(g_bench_path.empty()) << "pass the chaos_bench path as argv[1]";

  const std::string out_path = ::testing::TempDir() + "/chaos_bench_micro.json";
  const std::string cmd = ShellQuote(g_bench_path) +
                          " --bench=micro --trials=1 --min-ms=5 --out=" + ShellQuote(out_path) +
                          " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "bench driver failed: " << cmd;

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good()) << "driver did not write " << out_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ASSERT_FALSE(text.empty());

  JsonChecker json(text);
  ASSERT_TRUE(json.Parse()) << "emitted file is not valid JSON:\n" << text;

  const auto& schemas = json.strings_for("schema");
  ASSERT_EQ(schemas.size(), 1u);
  EXPECT_EQ(schemas[0], "chaos-bench-v1");

  const auto& benches = json.strings_for("bench");
  ASSERT_FALSE(benches.empty());
  EXPECT_EQ(benches[0], "micro");

  const auto& timings = json.values_for("wall_ms");
  ASSERT_FALSE(timings.empty()) << "no per-trial wall_ms in JSON:\n" << text;
  for (double ms : timings) {
    EXPECT_GT(ms, 0.0);
  }
  const auto& means = json.values_for("wall_ms_mean");
  ASSERT_FALSE(means.empty());
  EXPECT_GT(means[0], 0.0);
}

// ------------------------------------------------------------------
// Parallel-sweep determinism: running the same bench with --jobs=1 and
// --jobs=8 must produce byte-identical output, except for host wall-clock
// fields. stdout tables carry only simulated values, so they are compared
// verbatim; the JSON is compared after dropping wall_ms and the jobs count.

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Removes lines that legitimately differ between runs: host timings in the
// JSON, the jobs count itself, and the "wrote <path>" driver line.
std::string StripVolatileLines(const std::string& text) {
  std::stringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("wall_ms") != std::string::npos ||
        line.find("\"jobs\"") != std::string::npos || line.rfind("wrote ", 0) == 0) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

void ExpectJobsInvariant(const std::string& bench, const std::string& extra_flags) {
  ASSERT_FALSE(g_bench_path.empty()) << "pass the chaos_bench path as argv[1]";
  const std::string base = ::testing::TempDir() + "/chaos_det_" + bench;
  struct Run {
    std::string json;
    std::string stdout_text;
  };
  Run runs[2];
  const int jobs[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    const std::string json_path = base + "_j" + std::to_string(jobs[i]) + ".json";
    const std::string out_path = base + "_j" + std::to_string(jobs[i]) + ".txt";
    const std::string cmd = ShellQuote(g_bench_path) + " --bench=" + bench +
                            " --trials=1 --jobs=" + std::to_string(jobs[i]) + " " +
                            extra_flags + " --out=" + ShellQuote(json_path) + " > " +
                            ShellQuote(out_path);
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "bench driver failed: " << cmd;
    runs[i].json = StripVolatileLines(ReadWholeFile(json_path));
    runs[i].stdout_text = StripVolatileLines(ReadWholeFile(out_path));
    ASSERT_FALSE(runs[i].json.empty());
    ASSERT_FALSE(runs[i].stdout_text.empty());
  }
  EXPECT_EQ(runs[0].stdout_text, runs[1].stdout_text)
      << bench << ": stdout differs between --jobs=1 and --jobs=8";
  EXPECT_EQ(runs[0].json, runs[1].json)
      << bench << ": metric JSON differs between --jobs=1 and --jobs=8";
  // The metric JSON must actually carry simulation metrics, otherwise the
  // comparison above proves nothing.
  EXPECT_NE(runs[0].json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(runs[0].json.find("sim_s"), std::string::npos);
}

TEST(BenchDeterminismTest, Fig8IdenticalAcrossJobCounts) {
  ExpectJobsInvariant("fig8", "--scale=9");
}

TEST(BenchDeterminismTest, FigRecoveryIdenticalAcrossJobCounts) {
  ExpectJobsInvariant("fig_recovery", "--scale=10");
}

// Doubles as the 64-machine smoke: the policy matrix (off/one/half/adaptive
// with seeded victim sweeps, backoff and domain routing) must stay byte-
// identical across --jobs, at a machine count past the paper's testbed.
// severities=1 keeps the healthy column only — the straggler gates
// (severity >= 4) are exercised by the CI bench job, not this smoke.
TEST(BenchDeterminismTest, Fig21At64MachinesIdenticalAcrossJobCounts) {
  ExpectJobsInvariant("fig21_stragglers", "--machines-list=64 --severities=1 --scale=8");
}

// The evolving sweep runs two cluster runs plus a golden per point; every
// value printed or recorded is simulation-derived, so the mutation planner
// (host-side seeding included) must be schedule-independent too.
TEST(BenchDeterminismTest, FigEvolvingIdenticalAcrossJobCounts) {
  ExpectJobsInvariant("fig_evolving", "--scale=9");
}

TEST(BenchSmokeTest, ListIncludesAllRegisteredBenches) {
  ASSERT_FALSE(g_bench_path.empty());
  FILE* pipe = popen((ShellQuote(g_bench_path) + " --list").c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char chunk[512];
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) {
    output += chunk;
  }
  ASSERT_EQ(pclose(pipe), 0);
  // All benches must be registered with the driver.
  for (const char* name :
       {"capacity", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21_stragglers",
        "fig_evolving", "fig_memory", "micro", "table1"}) {
    EXPECT_NE(output.find(name), std::string::npos) << "missing bench: " << name;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) {
    g_bench_path = argv[1];
  }
  return RUN_ALL_TESTS();
}
