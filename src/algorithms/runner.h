// Type-erased entry points over the ten GAS benchmark algorithms, used by
// tests, benches and examples that sweep algorithms by name.
//
// The unified entry point is RunJob(JobSpec): one spec describes the
// algorithm, the prepared input, the cluster shape, optional recovery mode
// and the scheduling metadata — the same unit the serving layer
// (core/job_scheduler.h) enqueues, and the same struct the chaos_run CLI
// builds from its flags. Build specs with MakeJob (core/job_spec.h).
#ifndef CHAOS_ALGORITHMS_RUNNER_H_
#define CHAOS_ALGORITHMS_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/xstream.h"
#include "core/cluster.h"
#include "core/job_scheduler.h"
#include "core/job_spec.h"
#include "core/recovery.h"
#include "graph/types.h"

namespace chaos {

struct AlgorithmInfo {
  std::string name;
  bool needs_undirected = false;  // BFS, WCC, MCST, MIS, SSSP (Table 1)
  bool needs_bidirected = false;  // SCC (reverse-flagged edges)
  bool needs_weights = false;     // SSSP, MCST
};

// The paper's Table 1 set, in its order.
const std::vector<AlgorithmInfo>& Algorithms();
const AlgorithmInfo& AlgorithmByName(const std::string& name);

// Applies the required input transformation (undirected / bidirected) for
// the named algorithm. Weighted inputs keep their weights.
InputGraph PrepareInput(const std::string& name, const InputGraph& raw);

// Everything one job produced: the algorithm result, plus the recovery
// timeline (when spec.recover) and the scheduling outcome (when the job ran
// under RunJobTrace; synthesized trivially for single-job RunJob).
struct JobResult : AlgoResult {
  RecoveryReport recovery;
  JobSchedStats sched;
};

// Runs one job to completion on its own cluster. `spec.input` must already
// have gone through PrepareInput for `spec.algorithm`. With spec.recover,
// the run goes through the machine-failure recovery driver
// (core/recovery.h) and the report lands in JobResult::recovery.
JobResult RunJob(const JobSpec& spec);

// Result of serving a multi-job trace through the job scheduler.
struct TraceRunResult {
  std::vector<JobResult> jobs;  // submission order; rejected jobs carry only
                                // sched (admitted = false)
  ServingMetrics metrics;
  std::vector<SchedEvent> events;
};

// Serves `specs` on one simulated cluster under `serving`'s policy: admission
// control, placement, priority and quantum preemption per
// core/job_scheduler.h. Scheduled specs must not set recover or inject
// faults. Deterministic: bitwise independent of serving.jobs, and each job's
// values are bitwise equal to its isolated RunJob result.
TraceRunResult RunJobTrace(const std::vector<JobSpec>& specs, const ServingConfig& serving);

// Type-erases `spec` into the slice-wise execution handle the scheduler
// drives (core/job_execution.h), binding the program type by name.
std::unique_ptr<JobExecution> MakeJobExecution(const JobSpec& spec);

// Deprecated single-algorithm entry points, kept as shims over RunJob. New
// code must not call these outside runner.{h,cc} (CI greps for violations).
[[deprecated("use RunJob(MakeJob(...))")]]
AlgoResult RunChaosAlgorithm(const std::string& name, const InputGraph& prepared,
                             const ClusterConfig& config, const AlgoParams& params = {});

[[deprecated("use RunJob with JobSpec::recover")]]
AlgoResult RunChaosAlgorithmWithRecovery(const std::string& name, const InputGraph& prepared,
                                         const ClusterConfig& config,
                                         const AlgoParams& params = {},
                                         const RecoveryOptions& recovery = {},
                                         RecoveryReport* report = nullptr);

struct XStreamRunResult {
  std::vector<double> values;
  double scalar = 0.0;
  uint64_t output_records = 0;
  uint64_t supersteps = 0;
  TimeNs total_time = 0;
  TimeNs preprocess_time = 0;
  uint64_t bytes_moved = 0;
};

// Runs the named algorithm on the single-machine X-Stream baseline.
XStreamRunResult RunXStreamAlgorithm(const std::string& name, const InputGraph& prepared,
                                     const XStreamConfig& config, const AlgoParams& params = {});

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_RUNNER_H_
