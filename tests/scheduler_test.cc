// Serving-layer tests (core/job_scheduler.h + core/job_execution.h):
// admission control against the enforced BufferPool budget, preempt-at-
// barrier-then-resume bitwise equality with unpreempted runs, the
// no-priority-inversion invariant, and byte-identical scheduler output
// across host thread counts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/runner.h"
#include "core/job_execution.h"
#include "core/job_queue.h"
#include "core/job_scheduler.h"
#include "core/job_trace.h"
#include "graph/generators.h"

namespace chaos {
namespace {

ClusterConfig SmallConfig(int machines, uint64_t seed = 42) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.seed = seed;
  return cfg;
}

std::shared_ptr<const InputGraph> SharedGraph(const std::string& algo, uint32_t scale,
                                              uint64_t seed, bool weighted = false) {
  RmatOptions opt;
  opt.scale = scale;
  opt.seed = seed;
  opt.weighted = weighted;
  return std::make_shared<const InputGraph>(PrepareInput(algo, GenerateRmat(opt)));
}

// A serving cluster generously sized for the test jobs' enforced budgets.
ServingConfig Serving(SchedPolicy policy, int machines = 4, int jobs = 1) {
  ServingConfig serving;
  serving.machines = machines;
  serving.machine_memory_bytes = 64 << 20;
  serving.policy = policy;
  serving.preempt_quantum = 2;
  serving.jobs = jobs;
  return serving;
}

std::string Fingerprint(const TraceRunResult& run) {
  std::ostringstream os;
  for (const SchedEvent& e : run.events) {
    os << e.ToString() << "\n";
  }
  for (const JobResult& job : run.jobs) {
    os << "job admitted=" << job.sched.admitted << " completed=" << job.sched.completed
       << " completion=" << job.sched.completion << " wait=" << job.sched.queue_wait
       << " service=" << job.sched.service_time << " slices=" << job.sched.slices
       << " preemptions=" << job.sched.preemptions << " supersteps=" << job.sched.supersteps
       << "\n";
  }
  os << "makespan=" << run.metrics.makespan << " busy=" << run.metrics.busy_machine_time
     << " dispatches=" << run.metrics.dispatches << " preemptions=" << run.metrics.preemptions
     << " completed=" << run.metrics.completed << " rejected=" << run.metrics.rejected << "\n";
  return os.str();
}

void ExpectBitwiseEqualValues(const AlgoResult& a, const AlgoResult& b) {
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t v = 0; v < a.values.size(); ++v) {
    ASSERT_EQ(a.values[v], b.values[v]) << "vertex " << v;
  }
  EXPECT_EQ(a.scalar, b.scalar);
  EXPECT_EQ(a.output_records, b.output_records);
}

TEST(AdmissionTest, RejectsJobsThatCanNeverFit) {
  auto g = SharedGraph("bfs", 8, 7);
  std::vector<JobSpec> specs;

  JobSpec fits = MakeJob("bfs", g, SmallConfig(2));
  fits.arrival = 0;
  specs.push_back(fits);

  // More machines than the serving cluster has.
  JobSpec too_wide = MakeJob("bfs", g, SmallConfig(9));
  too_wide.arrival = 0;
  specs.push_back(too_wide);

  // Enforced per-machine buffer-pool budget above a machine's RAM.
  JobSpec too_fat = MakeJob("bfs", g, SmallConfig(2));
  too_fat.cluster.memory_budget_bytes = 1ull << 30;
  too_fat.arrival = 0;
  specs.push_back(too_fat);
  ASSERT_GT(too_fat.cluster.EffectivePoolBudget(), uint64_t{64} << 20);

  TraceRunResult run = RunJobTrace(specs, Serving(SchedPolicy::kFifo));
  EXPECT_TRUE(run.jobs[0].sched.admitted);
  EXPECT_TRUE(run.jobs[0].sched.completed);
  EXPECT_FALSE(run.jobs[1].sched.admitted);
  EXPECT_FALSE(run.jobs[2].sched.admitted);
  EXPECT_EQ(run.metrics.rejected, 2);
  EXPECT_EQ(run.metrics.completed, 1);
}

// The heart of the preemption design: stopping a job at a superstep barrier
// (scripted crash + checkpoint commit at stop-1) and resuming it via the
// recovery import path must reproduce the unpreempted run's values exactly.
TEST(PreemptionTest, SliceChainMatchesUnpreemptedRunBitwise) {
  for (const char* algo : {"bfs", "wcc"}) {
    auto g = SharedGraph(algo, 9, 11);
    JobSpec spec = MakeJob(algo, g, SmallConfig(3));
    JobResult isolated = RunJob(spec);
    ASSERT_FALSE(isolated.crashed);
    ASSERT_GE(isolated.supersteps, 4u) << algo;

    auto exec = MakeJobExecution(spec);
    int slices = 0;
    for (;;) {
      // Quantum 2: every slice but possibly the last ends in a preemption.
      SliceResult slice = exec->RunSlice(static_cast<int64_t>(exec->next_superstep() + 2));
      ++slices;
      if (slice.completed) {
        break;
      }
      EXPECT_EQ(slice.end_superstep, slice.start_superstep + 2);
    }
    EXPECT_GE(slices, 2) << algo;
    AlgoResult sliced = exec->TakeResult();
    EXPECT_EQ(sliced.supersteps, isolated.supersteps);
    ExpectBitwiseEqualValues(sliced, isolated);
  }
}

// MCST exercises the carried-output path: forest edges emitted by completed
// supersteps must survive every preemption, exactly once.
TEST(PreemptionTest, SliceChainCarriesEmittedOutputs) {
  auto g = SharedGraph("mcst", 8, 31, /*weighted=*/true);
  JobSpec spec = MakeJob("mcst", g, SmallConfig(3));
  JobResult isolated = RunJob(spec);
  ASSERT_GT(isolated.output_records, 0u);

  auto exec = MakeJobExecution(spec);
  while (!exec->RunSlice(static_cast<int64_t>(exec->next_superstep() + 2)).completed) {
  }
  AlgoResult sliced = exec->TakeResult();
  EXPECT_EQ(sliced.output_records, isolated.output_records);
  EXPECT_EQ(sliced.scalar, isolated.scalar);
}

// End to end through the scheduler: an overloaded priority trace preempts
// the bulk job at least once, and every completed job's result is bitwise
// equal to its isolated single-job run.
TEST(SchedulerTest, PreemptedJobsMatchIsolatedRunsBitwise) {
  auto g_bulk = SharedGraph("wcc", 9, 5);
  auto g_hi = SharedGraph("bfs", 8, 6);
  std::vector<JobSpec> specs;

  JobSpec bulk = MakeJob("wcc", g_bulk, SmallConfig(4, 21));
  bulk.priority = 0;
  bulk.arrival = 0;
  specs.push_back(bulk);

  // Arrives while the bulk job holds the whole cluster.
  JobSpec hi = MakeJob("bfs", g_hi, SmallConfig(2, 22));
  hi.priority = 2;
  hi.arrival = 1;
  specs.push_back(hi);

  TraceRunResult run = RunJobTrace(specs, Serving(SchedPolicy::kPriority));
  ASSERT_TRUE(run.jobs[0].sched.completed);
  ASSERT_TRUE(run.jobs[1].sched.completed);
  EXPECT_GE(run.jobs[0].sched.preemptions, 1);
  EXPECT_EQ(run.jobs[1].sched.preemptions, 0);  // top class never sliced

  for (size_t i = 0; i < specs.size(); ++i) {
    JobResult isolated = RunJob(specs[i]);
    ExpectBitwiseEqualValues(run.jobs[i], isolated);
    EXPECT_EQ(run.jobs[i].sched.supersteps, isolated.supersteps);
  }
}

// Replay the event log and assert the dispatch invariant: whenever a job is
// dispatched, no strictly-higher-priority job is sitting in the ready queue
// (the dispatch loop stops at the first non-fitting head, so lower classes
// can never overtake — no priority inversion by construction).
TEST(SchedulerTest, NoPriorityInversionInEventLog) {
  auto g = SharedGraph("bfs", 8, 9);
  std::vector<JobSpec> specs;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec = MakeJob("bfs", g, SmallConfig(2, 100 + static_cast<uint64_t>(i)));
    spec.priority = i % 3;
    spec.arrival = static_cast<TimeNs>(i);
    specs.push_back(spec);
  }

  TraceRunResult run = RunJobTrace(specs, Serving(SchedPolicy::kPriority));
  std::map<int, int> ready;  // job -> priority
  for (const SchedEvent& e : run.events) {
    switch (e.kind) {
      case SchedEventKind::kArrive:
        ready[e.job] = specs[static_cast<size_t>(e.job)].priority;
        break;
      case SchedEventKind::kReject:
      case SchedEventKind::kDispatch:
        ready.erase(e.job);
        if (e.kind == SchedEventKind::kDispatch) {
          for (const auto& [other, priority] : ready) {
            EXPECT_LE(priority, specs[static_cast<size_t>(e.job)].priority)
                << "job " << e.job << " dispatched at t=" << e.at << " while higher-priority job "
                << other << " waited";
          }
        }
        break;
      case SchedEventKind::kPreempt:
        ready[e.job] = specs[static_cast<size_t>(e.job)].priority;
        break;
      case SchedEventKind::kComplete:
        break;
    }
  }
  EXPECT_EQ(run.metrics.completed, 6);
}

// The schedule — events, per-job stats, metrics — must be bitwise
// independent of the host thread count simulating same-instant slices.
TEST(SchedulerTest, ByteIdenticalAcrossHostJobs) {
  TraceOptions topt;
  topt.preset = TracePreset::kBursty;
  topt.num_jobs = 6;
  topt.horizon = 1'000'000'000;
  topt.seed = 17;
  std::vector<TraceEntry> entries = GenerateTrace(topt);

  auto g = SharedGraph("bfs", 8, 13);
  std::vector<JobSpec> specs;
  for (const TraceEntry& entry : entries) {
    JobSpec spec = MakeJob("bfs", g, SmallConfig(2, entry.seed));
    spec.priority = entry.priority;
    spec.arrival = entry.arrival;
    specs.push_back(spec);
  }

  TraceRunResult serial = RunJobTrace(specs, Serving(SchedPolicy::kPriority, 4, 1));
  TraceRunResult parallel = RunJobTrace(specs, Serving(SchedPolicy::kPriority, 4, 8));
  EXPECT_EQ(Fingerprint(serial), Fingerprint(parallel));
  for (size_t i = 0; i < specs.size(); ++i) {
    if (serial.jobs[i].sched.completed) {
      ExpectBitwiseEqualValues(serial.jobs[i], parallel.jobs[i]);
    }
  }
}

TEST(SchedulerTest, FifoRunsInArrivalOrderWithoutPreemption) {
  auto g = SharedGraph("bfs", 8, 23);
  std::vector<JobSpec> specs;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec = MakeJob("bfs", g, SmallConfig(4, 200 + static_cast<uint64_t>(i)));
    spec.priority = 3 - i;  // priority must be ignored under FIFO
    spec.arrival = static_cast<TimeNs>(i);
    specs.push_back(spec);
  }
  TraceRunResult run = RunJobTrace(specs, Serving(SchedPolicy::kFifo));
  EXPECT_EQ(run.metrics.preemptions, 0);
  TimeNs last = 0;
  for (const JobResult& job : run.jobs) {
    EXPECT_GT(job.sched.completion, last);  // full-width jobs serialize FIFO
    last = job.sched.completion;
  }
}

TEST(TraceTest, PresetsAreDeterministicAndInRange) {
  for (const TracePreset preset :
       {TracePreset::kUniform, TracePreset::kBursty, TracePreset::kDiurnal}) {
    TraceOptions opt;
    opt.preset = preset;
    opt.num_jobs = 32;
    opt.horizon = 10'000'000'000;
    opt.seed = 77;
    std::vector<TraceEntry> a = GenerateTrace(opt);
    std::vector<TraceEntry> b = GenerateTrace(opt);
    ASSERT_EQ(a.size(), 32u);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival, b[i].arrival);
      EXPECT_EQ(a[i].priority, b[i].priority);
      EXPECT_EQ(a[i].seed, b[i].seed);
      EXPECT_GE(a[i].arrival, 0);
      EXPECT_LT(a[i].arrival, opt.horizon);
      if (i > 0) {
        EXPECT_GE(a[i].arrival, a[i - 1].arrival);
      }
    }
  }
}

}  // namespace
}  // namespace chaos
