// Deterministic fault and straggler injection for simulated clusters.
//
// A FaultSchedule is a declarative list of timed degradation events: at time
// `at`, machine `machine`'s CPU / storage device / NIC (or all three) runs
// at `factor` of nominal speed, for `duration` ns (0 = permanently, i.e. a
// straggler rather than a transient brownout). The FaultInjector replays the
// schedule as a coroutine on the simulator, applying rate multipliers to the
// attached FifoResources (storage devices, NIC links) and to a per-machine
// CPU-rate table consulted by the compute engines. Overlapping events on the
// same machine/dimension compose multiplicatively.
//
// Everything here is seeded and replayed through the deterministic event
// queue, so a run with faults is exactly as reproducible as one without:
// identical (schedule, seed, workload) triples give identical traces.
#ifndef CHAOS_SIM_FAULT_INJECTOR_H_
#define CHAOS_SIM_FAULT_INJECTOR_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

// Which of a machine's resources an event degrades.
enum class FaultTarget : uint8_t {
  kCpu = 0,      // compute-engine CPU (scatter/gather/apply/merge costs)
  kStorage = 1,  // the machine's storage device (FIFO chunk service)
  kNic = 2,      // both NIC directions (uplink and downlink)
  kMachine = 3,  // all of the above — a whole-machine straggler
};

// What an event does to its victim.
enum class FaultKind : uint8_t {
  kDegrade = 0,       // rate degradation of `target` by `factor`
  kMachineCrash = 1,  // fail-stop machine failure: the victim's compute
                      // engine is dead from `at` on (target/factor/duration
                      // ignored). Durable storage survives — the recovery
                      // model is the paper's §6.6: restart from the last
                      // committed checkpoint on a repaired/rescaled cluster.
};

const char* FaultTargetName(FaultTarget target);

// Parses "cpu" | "storage" | "nic" | "machine" (CLI flag form). Returns
// false on unknown text.
bool ParseFaultTarget(const std::string& text, FaultTarget* out);

struct FaultEvent {
  TimeNs at = 0;        // simulated time the degradation begins
  TimeNs duration = 0;  // 0 = permanent for the rest of the run
  MachineId machine = 0;
  FaultTarget target = FaultTarget::kMachine;
  double factor = 1.0;  // rate multiplier while active (0.25 = 4x slower)
  FaultKind kind = FaultKind::kDegrade;

  bool permanent() const { return duration == 0 || kind == FaultKind::kMachineCrash; }
  TimeNs end() const { return at + duration; }
};

// Declarative, ordered-by-construction fault plan for one run.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  FaultSchedule& Add(const FaultEvent& event) {
    CHAOS_CHECK_GT(event.factor, 0.0);
    CHAOS_CHECK_GE(event.at, 0);
    CHAOS_CHECK_GE(event.duration, 0);
    events.push_back(event);
    return *this;
  }

  // A machine that runs `severity` times slower than its peers from `at`
  // until the end of the run (the paper's "slow machine" scenario).
  static FaultSchedule Straggler(MachineId machine, double severity,
                                 FaultTarget target = FaultTarget::kCpu, TimeNs at = 0);

  // A transient slowdown: `factor` speed between `at` and `at + duration`.
  static FaultSchedule TransientSlowdown(MachineId machine, FaultTarget target, double factor,
                                         TimeNs at, TimeNs duration);

  // A storage-device brownout (e.g. SSD garbage-collection stall).
  static FaultSchedule StorageBrownout(MachineId machine, double factor, TimeNs at,
                                       TimeNs duration);

  // A fail-stop machine failure at `at`: the victim's compute engine dies
  // mid-run (detected cluster-wide at the next barrier); its durable storage
  // survives. One crash per run is the supported model (§6.6).
  static FaultSchedule MachineCrash(MachineId machine, TimeNs at);

  // `count` seeded random transient events over [0, horizon): uniformly
  // chosen machine, target, factor in [min_factor, max_factor], duration in
  // (0, horizon / 4]. Identical seeds produce identical schedules.
  static FaultSchedule Random(uint64_t seed, int machines, int count, TimeNs horizon,
                              double min_factor = 0.1, double max_factor = 0.9);
};

// Counters sampled from the victim machine when an event is applied and
// cleared, so steal activity and idle time are attributable to each event.
struct FaultProbeSample {
  uint64_t proposals_accepted = 0;  // victim's partitions handed to stealers
  uint64_t steals_worked = 0;       // stolen work items the victim executed
  TimeNs barrier_wait = 0;          // victim's accumulated barrier idle time
};

using FaultProbe = std::function<FaultProbeSample(MachineId)>;

// One schedule entry as it actually played out.
struct FaultRecord {
  FaultEvent event;
  TimeNs applied_at = -1;  // -1: never applied (run ended first)
  TimeNs cleared_at = -1;  // -1: still active at end of run (straggler)
  FaultProbeSample at_apply;
  FaultProbeSample at_clear;
};

class FaultInjector {
 public:
  // Rate-controllable resources of one machine. Null entries are skipped
  // (e.g. a test harness wiring only a storage device).
  struct MachineHooks {
    FifoResource* storage = nullptr;
    FifoResource* nic_up = nullptr;
    FifoResource* nic_down = nullptr;
  };

  FaultInjector(Simulator* sim, FaultSchedule schedule, int machines);

  void AttachMachine(MachineId machine, const MachineHooks& hooks);
  void set_probe(FaultProbe probe) { probe_ = std::move(probe); }

  // Spawns the replay coroutine (no-op for an empty schedule). Call after
  // attaching hooks and before Simulator::Run.
  void Start();

  // Stops the replay: schedule entries not yet applied stay recorded as
  // "not reached" (applied_at == -1) instead of firing after the workload
  // has finished. Called by the cluster supervisor at completion.
  void Cancel() { cancelled_ = true; }

  // Current CPU rate multiplier of `machine` (product of active factors).
  double CpuRate(MachineId machine) const {
    return cpu_rate_[static_cast<size_t>(machine)];
  }

  // True once a kMachineCrash event for `machine` has been applied. The
  // compute engine polls this at its streaming/steal loop boundaries and
  // flags its next barrier arrival, which aborts the superstep cluster-wide
  // (see BarrierArrive::failed in core/protocol.h).
  bool dead(MachineId machine) const { return dead_[static_cast<size_t>(machine)] != 0; }
  // Simulated time the machine died, or -1 while alive.
  TimeNs dead_since(MachineId machine) const {
    return dead_since_[static_cast<size_t>(machine)];
  }
  int dead_count() const { return dead_count_; }

  // Stretches a nominal CPU delay by the machine's current degradation.
  // Granularity caveat: CPU scaling applies when a compute delay is issued
  // (per chunk scanned), so a transient CPU fault shorter than one
  // chunk-scan delay may miss delays already in flight — unlike storage/NIC
  // faults, which re-project in-flight queues via FifoResource::SetRate.
  TimeNs ScaleCpu(MachineId machine, TimeNs t) const {
    const double rate = CpuRate(machine);
    if (rate == 1.0 || t == 0) {
      return t;
    }
    return static_cast<TimeNs>(std::ceil(static_cast<double>(t) / rate));
  }

  const FaultSchedule& schedule() const { return schedule_; }
  const std::vector<FaultRecord>& records() const { return records_; }
  uint64_t events_applied() const { return events_applied_; }

 private:
  struct Change {
    TimeNs at = 0;
    size_t event_index = 0;
    bool begin = false;
  };

  Task<> Run();
  void Apply(const Change& change);
  void RecomputeRates(MachineId machine, FaultTarget target);
  bool Covers(FaultTarget event_target, FaultTarget dimension) const;

  Simulator* sim_;
  FaultSchedule schedule_;
  int machines_;
  std::vector<MachineHooks> hooks_;
  std::vector<double> cpu_rate_;
  std::vector<uint8_t> dead_;
  std::vector<TimeNs> dead_since_;
  int dead_count_ = 0;
  std::vector<std::vector<size_t>> active_;  // per machine: active event idxs
  std::vector<Change> timeline_;             // sorted by (at, begin-last, index)
  std::vector<FaultRecord> records_;
  FaultProbe probe_;
  uint64_t events_applied_ = 0;
  bool started_ = false;
  bool cancelled_ = false;
};

}  // namespace chaos

#endif  // CHAOS_SIM_FAULT_INJECTOR_H_
