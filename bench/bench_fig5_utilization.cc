// Figure 5: theoretical storage-engine utilization rho(m, k) = 1-(1-k/m)^m
// as a function of the number of machines for batch factors k = 1, 2, 3, 5,
// with the m -> infinity asymptote 1 - e^-k (Eqs. 4 and 5).
#include "bench/bench_common.h"
#include "core/config.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig5, "Figure 5: theoretical storage-engine utilization rho(m, k)") {
  Options opt;
  opt.AddInt("max-machines", 32, "largest machine count to tabulate");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const int max_m = static_cast<int>(opt.GetInt("max-machines"));
  const std::vector<int> ks = {1, 2, 3, 5};

  // Closed-form rows; pointified for uniformity with the simulation benches
  // (and as the cheapest possible exercise of the sweep executor).
  std::vector<int> machine_rows;
  for (int m = 1; m <= max_m; m = m < 4 ? m + 1 : m + 2) {
    machine_rows.push_back(m);
  }
  Sweep<std::vector<double>> sweep;
  for (const int m : machine_rows) {
    sweep.Add([m, ks] {
      std::vector<double> row;
      row.reserve(ks.size());
      for (const int k : ks) {
        row.push_back(TheoreticalUtilization(m, k));
      }
      return row;
    });
  }
  const auto rows = sweep.Run();

  std::printf("== Figure 5: theoretical utilization rho(m,k) = 1-(1-k/m)^m ==\n");
  PrintHeader({"machines", "k=1", "k=2", "k=3", "k=5"});
  for (size_t r = 0; r < machine_rows.size(); ++r) {
    PrintCell(static_cast<double>(machine_rows[r]), "%.0f");
    for (size_t i = 0; i < ks.size(); ++i) {
      PrintCell(rows[r][i], "%.4f");
    }
    EndRow();
  }
  std::printf("\nasymptotes (1 - e^-k):\n");
  for (const int k : ks) {
    const double bound = UtilizationLowerBound(k);
    std::printf("  k=%d: %.4f\n", k, bound);
    RecordMetric("fig5.k" + std::to_string(k) + ".asymptote", bound);
  }
  std::printf("paper: k=5 keeps utilization above 99.3%% at any cluster size\n");
  return 0;
}
