// A minimal lazily-started coroutine task for the discrete-event simulator.
//
// Tasks are single-owner: awaiting a Task transfers control to it via
// symmetric transfer and resumes the awaiter on completion. Root tasks are
// detached with Simulator::Spawn. Per the repository's no-exceptions policy,
// an exception escaping a coroutine aborts the process.
//
// TOOLCHAIN WARNING (g++ 12 wrong-code, observed on 12.2): a braced
// aggregate temporary passed *directly* as an argument of a coroutine call
// from inside another coroutine is materialized at the wrong address — the
// callee's parameter copy is move-constructed from never-constructed stack
// memory and the real temporary receives a stray extra destructor call
// (refcount corruption for shared_ptr members; garbage for PODs). Function
// return values and named locals are handled correctly. Rule for this
// codebase: bind aggregates to a named local (or build them via a factory
// function) before passing them to any Task-returning function.
#ifndef CHAOS_SIM_TASK_H_
#define CHAOS_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/common.h"

namespace chaos {

template <typename T = void>
class Task;

namespace internal {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::abort(); }
};

}  // namespace internal

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> coro;
      bool await_ready() const noexcept { return !coro || coro.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        coro.promise().continuation = cont;
        return coro;
      }
      T await_resume() {
        CHAOS_CHECK(coro && coro.promise().value.has_value());
        return std::move(*coro.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> coro;
      bool await_ready() const noexcept { return !coro || coro.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        coro.promise().continuation = cont;
        return coro;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

// Self-destroying fire-and-forget coroutine used by Simulator::Spawn.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::abort(); }
  };
};

}  // namespace internal

}  // namespace chaos

#endif  // CHAOS_SIM_TASK_H_
