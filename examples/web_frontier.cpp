// Web-graph exploration: BFS reachability from a seed page over a
// host-clustered web graph (the Data Commons substitute of §9.2), followed
// by conductance of the odd/even page split — the two one-pass/traversal
// workloads the paper runs on its real-world graph.
//
//   build/examples/web_frontier [--pages-log2 N] [--machines M]
#include <algorithm>
#include <cstdio>
#include <map>

#include "algorithms/runner.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/stats.h"

using namespace chaos;

int main(int argc, char** argv) {
  Options opt;
  opt.AddInt("pages-log2", 14, "log2 number of pages");
  opt.AddInt("machines", 8, "simulated machines");
  opt.AddInt("seed-page", 0, "BFS start page");
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }

  WebGraphOptions graph_opt;
  graph_opt.num_pages = 1ull << static_cast<uint32_t>(opt.GetInt("pages-log2"));
  graph_opt.num_hosts = graph_opt.num_pages >> 7;
  graph_opt.seed = 2014;
  InputGraph web = GenerateWebGraph(graph_opt);
  std::printf("web graph: %llu pages, %llu hyperlinks across %llu hosts\n",
              static_cast<unsigned long long>(web.num_vertices),
              static_cast<unsigned long long>(web.num_edges()),
              static_cast<unsigned long long>(graph_opt.num_hosts));

  ClusterConfig config;
  config.machines = static_cast<int>(opt.GetInt("machines"));
  config.memory_budget_bytes = web.num_vertices * 16;
  config.chunk_bytes = 64 << 10;
  config.storage = StorageConfig::Hdd();  // big graphs live on disks (§9.2)

  AlgoParams params;
  params.source = static_cast<VertexId>(opt.GetInt("seed-page"));
  auto bfs = RunJob(MakeJob("bfs", PrepareInput("bfs", web), config, params));

  std::map<int64_t, uint64_t> by_depth;
  uint64_t reached = 0;
  for (const double d : bfs.values) {
    if (d >= 0) {
      by_depth[static_cast<int64_t>(d)]++;
      ++reached;
    }
  }
  std::printf("\ncrawl frontier from page %llu (BFS, %s simulated on HDDs):\n",
              static_cast<unsigned long long>(params.source),
              FormatSeconds(bfs.metrics.total_seconds()).c_str());
  for (const auto& [depth, count] : by_depth) {
    if (depth > 8) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %2lld clicks: %8llu pages\n", static_cast<long long>(depth),
                static_cast<unsigned long long>(count));
  }
  std::printf("  reachable: %llu/%llu pages (%.1f%%)\n",
              static_cast<unsigned long long>(reached),
              static_cast<unsigned long long>(web.num_vertices),
              100.0 * static_cast<double>(reached) / static_cast<double>(web.num_vertices));

  auto cond = RunJob(MakeJob("conductance", PrepareInput("conductance", web), config));
  std::printf("\nconductance of the odd/even page split: %.4f (%s)\n", cond.scalar,
              FormatSeconds(cond.metrics.total_seconds()).c_str());
  std::printf("I/O moved for both runs: %s\n",
              FormatBytes(bfs.metrics.StorageBytesMoved() +
                          cond.metrics.StorageBytesMoved()).c_str());
  return 0;
}
