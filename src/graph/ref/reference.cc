#include "graph/ref/reference.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <numeric>
#include <queue>

#include "util/common.h"

namespace chaos::ref {
namespace {

// CSR-ish adjacency (targets + weights per source).
struct Adjacency {
  std::vector<uint64_t> offsets;  // n + 1
  std::vector<VertexId> targets;
  std::vector<float> weights;
};

Adjacency BuildAdjacency(const InputGraph& g) {
  Adjacency adj;
  adj.offsets.assign(g.num_vertices + 1, 0);
  for (const Edge& e : g.edges) {
    adj.offsets[e.src + 1]++;
  }
  std::partial_sum(adj.offsets.begin(), adj.offsets.end(), adj.offsets.begin());
  adj.targets.resize(g.edges.size());
  adj.weights.resize(g.edges.size());
  std::vector<uint64_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const Edge& e : g.edges) {
    const uint64_t pos = cursor[e.src]++;
    adj.targets[pos] = e.dst;
    adj.weights[pos] = e.weight;
  }
  return adj;
}

// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(uint64_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return false;
    }
    if (a < b) {
      parent_[b] = a;  // keep the smaller id as root
    } else {
      parent_[a] = b;
    }
    return true;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

std::vector<int64_t> BfsDepths(const InputGraph& g, VertexId source) {
  CHAOS_CHECK_LT(source, g.num_vertices);
  Adjacency adj = BuildAdjacency(g);
  std::vector<int64_t> depth(g.num_vertices, kUnreachable);
  std::deque<VertexId> frontier{source};
  depth[source] = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (uint64_t i = adj.offsets[v]; i < adj.offsets[v + 1]; ++i) {
      const VertexId t = adj.targets[i];
      if (depth[t] == kUnreachable) {
        depth[t] = depth[v] + 1;
        frontier.push_back(t);
      }
    }
  }
  return depth;
}

std::vector<VertexId> ComponentLabels(const InputGraph& g) {
  UnionFind uf(g.num_vertices);
  for (const Edge& e : g.edges) {
    uf.Union(e.src, e.dst);
  }
  std::vector<VertexId> labels(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    labels[v] = uf.Find(v);  // root is the component minimum by construction
  }
  return labels;
}

std::vector<double> DijkstraDistances(const InputGraph& g, VertexId source) {
  CHAOS_CHECK_LT(source, g.num_vertices);
  Adjacency adj = BuildAdjacency(g);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_vertices, kInf);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) {
      continue;
    }
    for (uint64_t i = adj.offsets[v]; i < adj.offsets[v + 1]; ++i) {
      const VertexId t = adj.targets[i];
      const double nd = d + static_cast<double>(adj.weights[i]);
      if (nd < dist[t]) {
        dist[t] = nd;
        heap.emplace(nd, t);
      }
    }
  }
  return dist;
}

std::vector<double> PageRank(const InputGraph& g, int iterations, double damping) {
  std::vector<uint32_t> degree = OutDegrees(g);
  std::vector<double> rank(g.num_vertices, 1.0);
  std::vector<double> accum(g.num_vertices, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(accum.begin(), accum.end(), 0.0);
    for (const Edge& e : g.edges) {
      if (e.flags != kEdgeForward) {
        continue;
      }
      accum[e.dst] += rank[e.src] / static_cast<double>(degree[e.src]);
    }
    for (VertexId v = 0; v < g.num_vertices; ++v) {
      rank[v] = (1.0 - damping) + damping * accum[v];
    }
  }
  return rank;
}

MsfResult KruskalMsf(const InputGraph& g) {
  // Undirected interpretation: sort by (weight, src, dst) for deterministic
  // tie-breaking; self-loops skipped.
  std::vector<uint64_t> order(g.edges.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    const Edge& ea = g.edges[a];
    const Edge& eb = g.edges[b];
    if (ea.weight != eb.weight) {
      return ea.weight < eb.weight;
    }
    if (ea.src != eb.src) {
      return ea.src < eb.src;
    }
    return ea.dst < eb.dst;
  });
  UnionFind uf(g.num_vertices);
  MsfResult result;
  for (const uint64_t i : order) {
    const Edge& e = g.edges[i];
    if (e.src == e.dst) {
      continue;
    }
    if (uf.Union(e.src, e.dst)) {
      result.total_weight += static_cast<double>(e.weight);
      ++result.num_edges;
    }
  }
  return result;
}

std::vector<uint32_t> StronglyConnectedComponents(const InputGraph& g) {
  Adjacency adj = BuildAdjacency(g);
  const uint64_t n = g.num_vertices;
  constexpr uint32_t kUnset = 0xffffffffu;
  std::vector<uint32_t> comp(n, kUnset);
  std::vector<uint32_t> index(n, kUnset);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<VertexId> stack;
  uint32_t next_index = 0;
  uint32_t next_comp = 0;

  // Iterative Tarjan with an explicit DFS work stack.
  struct Frame {
    VertexId v;
    uint64_t edge_cursor;
  };
  std::vector<Frame> dfs;
  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnset) {
      continue;
    }
    dfs.push_back({root, adj.offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const VertexId v = frame.v;
      if (frame.edge_cursor < adj.offsets[v + 1]) {
        const VertexId w = adj.targets[frame.edge_cursor++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, adj.offsets[w]});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        while (true) {
          const VertexId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = next_comp;
          if (w == v) {
            break;
          }
        }
        ++next_comp;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
      }
    }
  }
  return comp;
}

namespace {

template <typename T>
bool SamePartitionImpl(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  std::map<T, T> fwd;
  std::map<T, T> rev;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [fit, finserted] = fwd.emplace(a[i], b[i]);
    if (!finserted && fit->second != b[i]) {
      return false;
    }
    auto [rit, rinserted] = rev.emplace(b[i], a[i]);
    if (!rinserted && rit->second != a[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SamePartition(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  return SamePartitionImpl(a, b);
}

bool SamePartition(const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  return SamePartitionImpl(a, b);
}

bool IsMaximalIndependentSet(const InputGraph& g, const std::vector<uint8_t>& in_set) {
  CHAOS_CHECK_EQ(in_set.size(), g.num_vertices);
  std::vector<uint8_t> has_in_neighbor(g.num_vertices, 0);
  for (const Edge& e : g.edges) {
    if (e.src == e.dst) {
      continue;
    }
    if (in_set[e.src] && in_set[e.dst]) {
      return false;  // not independent
    }
    if (in_set[e.src]) {
      has_in_neighbor[e.dst] = 1;
    }
    if (in_set[e.dst]) {
      has_in_neighbor[e.src] = 1;
    }
  }
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (!in_set[v] && !has_in_neighbor[v]) {
      return false;  // not maximal: v could join
    }
  }
  return true;
}

double Conductance(const InputGraph& g, const std::vector<uint8_t>& member) {
  CHAOS_CHECK_EQ(member.size(), g.num_vertices);
  uint64_t cut = 0;
  uint64_t vol_in = 0;
  uint64_t vol_out = 0;
  for (const Edge& e : g.edges) {
    if (member[e.src]) {
      ++vol_in;
    } else {
      ++vol_out;
    }
    if (member[e.src] != member[e.dst]) {
      ++cut;
    }
  }
  const uint64_t denom = std::min(vol_in, vol_out);
  if (denom == 0) {
    return 0.0;
  }
  return static_cast<double>(cut) / static_cast<double>(denom);
}

std::vector<double> SpMV(const InputGraph& g, const std::vector<double>& x) {
  CHAOS_CHECK_EQ(x.size(), g.num_vertices);
  std::vector<double> y(g.num_vertices, 0.0);
  for (const Edge& e : g.edges) {
    y[e.dst] += static_cast<double>(e.weight) * x[e.src];
  }
  return y;
}

std::vector<double> BeliefPropagation(const InputGraph& g, const std::vector<double>& priors,
                                      int iterations, double damping) {
  CHAOS_CHECK_EQ(priors.size(), g.num_vertices);
  std::vector<double> belief = priors;
  std::vector<double> accum(g.num_vertices, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(accum.begin(), accum.end(), 0.0);
    for (const Edge& e : g.edges) {
      accum[e.dst] += std::tanh(belief[e.src] * 0.5) * static_cast<double>(e.weight);
    }
    for (VertexId v = 0; v < g.num_vertices; ++v) {
      belief[v] = priors[v] + damping * accum[v];
    }
  }
  return belief;
}

}  // namespace chaos::ref
