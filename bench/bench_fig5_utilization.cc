// Figure 5: theoretical storage-engine utilization rho(m, k) = 1-(1-k/m)^m
// as a function of the number of machines for batch factors k = 1, 2, 3, 5,
// with the m -> infinity asymptote 1 - e^-k (Eqs. 4 and 5).
#include "bench/bench_common.h"
#include "core/config.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig5, "Figure 5: theoretical storage-engine utilization rho(m, k)") {
  Options opt;
  opt.AddInt("max-machines", 32, "largest machine count to tabulate");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const int max_m = static_cast<int>(opt.GetInt("max-machines"));

  std::printf("== Figure 5: theoretical utilization rho(m,k) = 1-(1-k/m)^m ==\n");
  PrintHeader({"machines", "k=1", "k=2", "k=3", "k=5"});
  for (int m = 1; m <= max_m; m = m < 4 ? m + 1 : m + 2) {
    PrintCell(static_cast<double>(m), "%.0f");
    for (const int k : {1, 2, 3, 5}) {
      PrintCell(TheoreticalUtilization(m, k), "%.4f");
    }
    EndRow();
  }
  std::printf("\nasymptotes (1 - e^-k):\n");
  for (const int k : {1, 2, 3, 5}) {
    std::printf("  k=%d: %.4f\n", k, UtilizationLowerBound(k));
  }
  std::printf("paper: k=5 keeps utilization above 99.3%% at any cluster size\n");
  return 0;
}
