#include "storage/storage_engine.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/buffer_pool.h"
#include "util/logging.h"

namespace chaos {

StorageConfig StorageConfig::Ssd() {
  StorageConfig c;
  c.bandwidth_bps = 400e6;
  c.access_latency = 100 * kNsPerUs;
  return c;
}

StorageConfig StorageConfig::Hdd() {
  StorageConfig c;
  c.bandwidth_bps = 200e6;  // 2 x 6 TB disks in RAID0, paper §8
  c.access_latency = 5 * kNsPerMs;
  return c;
}

const char* SetKindName(SetKind kind) {
  switch (kind) {
    case SetKind::kInput:
      return "input";
    case SetKind::kEdges:
      return "edges";
    case SetKind::kUpdatesEven:
      return "updates0";
    case SetKind::kUpdatesOdd:
      return "updates1";
    case SetKind::kVertices:
      return "vertices";
    case SetKind::kCheckpointA:
      return "ckptA";
    case SetKind::kCheckpointB:
      return "ckptB";
    case SetKind::kDegrees:
      return "degrees";
    case SetKind::kUpdatesCkptA:
      return "uckptA";
    case SetKind::kUpdatesCkptB:
      return "uckptB";
    case SetKind::kEdgesB:
      return "edgesB";
  }
  return "?";
}

std::string SetIdName(const SetId& id) {
  return std::string(SetKindName(id.kind)) + "/p" + std::to_string(id.partition);
}

StorageEngine::StorageEngine(Simulator* sim, MessageBus* bus, MachineId machine,
                             const StorageConfig& config)
    : sim_(sim),
      bus_(bus),
      machine_(machine),
      config_(config),
      device_(sim, "device-" + std::to_string(machine)) {
  if (!config_.spill_dir.empty()) {
    std::filesystem::create_directories(config_.spill_dir);
  }
}

StorageEngine::~StorageEngine() {
  if (!config_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(config_.spill_dir, ec);
  }
}

void StorageEngine::Start() {
  CHAOS_CHECK(!started_);
  started_ = true;
  sim_->Spawn(Serve());
}

StorageEngine::SetStore& StorageEngine::GetOrCreate(const SetId& set) { return sets_[set]; }

void StorageEngine::RollEpoch(SetStore& store, uint64_t epoch) const {
  if (store.epoch != epoch) {
    store.epoch = epoch;
    store.cursor = 0;
    store.bytes_served_epoch = 0;
  }
}

void StorageEngine::HostAddChunk(const SetId& set, Chunk chunk) {
  SetStore& store = GetOrCreate(set);
  MaybeSpill(set, chunk);
  store.bytes_total += chunk.model_bytes;
  if (IsIndexedKind(set.kind)) {
    auto pos = store.by_index.find(chunk.index);
    if (pos != store.by_index.end()) {
      store.bytes_total -= store.chunks[pos->second].model_bytes;
      store.chunks[pos->second] = std::move(chunk);
      return;
    }
  }
  store.by_index.emplace(chunk.index, store.chunks.size());
  store.chunks.push_back(std::move(chunk));
}

const std::vector<Chunk>* StorageEngine::HostGetSet(const SetId& set) const {
  auto it = sets_.find(set);
  return it == sets_.end() ? nullptr : &it->second.chunks;
}

std::vector<SetId> StorageEngine::HostListSets() const {
  std::vector<SetId> out;
  out.reserve(sets_.size());
  for (const auto& [id, store] : sets_) {
    out.push_back(id);
  }
  return out;
}

void StorageEngine::HostDeleteSet(const SetId& set) { sets_.erase(set); }

uint64_t StorageEngine::RemainingBytes(const SetId& set, uint64_t epoch) const {
  auto it = sets_.find(set);
  if (it == sets_.end()) {
    return 0;
  }
  const SetStore& store = it->second;
  if (store.epoch != epoch) {
    return store.bytes_total;  // nothing consumed in this epoch yet
  }
  return store.bytes_total - store.bytes_served_epoch;
}

uint64_t StorageEngine::TotalBytes(const SetId& set) const {
  auto it = sets_.find(set);
  return it == sets_.end() ? 0 : it->second.bytes_total;
}

uint64_t StorageEngine::NumChunks(const SetId& set) const {
  auto it = sets_.find(set);
  return it == sets_.end() ? 0 : it->second.chunks.size();
}

Task<> StorageEngine::Serve() {
  SimQueue<Message>& inbox = bus_->Inbox(machine_, kStorageService);
  while (true) {
    Message m = co_await inbox.Pop();
    switch (m.type) {
      case kReadChunkReq:
        co_await HandleRead(std::move(m));
        break;
      case kReadIndexedReq:
        co_await HandleReadIndexed(std::move(m));
        break;
      case kWriteChunkReq:
        co_await HandleWrite(std::move(m));
        break;
      case kDeleteSetReq:
        co_await HandleDelete(std::move(m));
        break;
      case kStorageShutdown:
        co_return;
      default:
        CHAOS_CHECK_MSG(false, "unknown storage message type " + std::to_string(m.type));
    }
  }
}

Task<> StorageEngine::HandleRead(Message m) {
  const auto& req = std::any_cast<const ReadChunkReq&>(m.body);
  auto it = sets_.find(req.set);
  ReadChunkResp resp;
  if (it != sets_.end()) {
    SetStore& store = it->second;
    RollEpoch(store, req.epoch);
    if (store.cursor < store.chunks.size()) {
      Chunk& stored = store.chunks[store.cursor++];
      resp.ok = true;
      resp.chunk = Materialize(req.set, stored);
      store.bytes_served_epoch += stored.model_bytes;
      // Input chunks are consumed exactly once; free the payload early.
      // Checkpoint snapshot scans preserve it — the superstep's real gather
      // still has to drain this set.
      if (!req.preserve_payload &&
          (req.set.kind == SetKind::kInput || req.set.kind == SetKind::kUpdatesEven ||
           req.set.kind == SetKind::kUpdatesOdd)) {
        stored.data.reset();
      }
    }
  }
  if (resp.ok) {
    // The served payload is staged in this machine's memory between the
    // device read and the wire handoff.
    BufferPool::Lease lease;
    if (pool_ != nullptr) {
      lease = co_await pool_->Acquire(resp.chunk.model_bytes);
    }
    // Serve the chunk from the device, in its entirety, FIFO (§6.2).
    co_await device_.Acquire(config_.access_latency +
                             TransferTimeNs(resp.chunk.model_bytes, config_.bandwidth_bps));
    bytes_read_ += resp.chunk.model_bytes;
    ++chunks_served_;
    const uint64_t wire = resp.chunk.model_bytes + kControlMsgBytes;
    bus_->PostReply(m, kReadChunkResp, wire, std::move(resp));
  } else {
    ++empty_responses_;
    bus_->PostReply(m, kReadChunkResp, kControlMsgBytes, std::move(resp));
  }
}

Task<> StorageEngine::HandleReadIndexed(Message m) {
  const auto& req = std::any_cast<const ReadIndexedReq&>(m.body);
  auto it = sets_.find(req.set);
  ReadChunkResp resp;
  if (it != sets_.end()) {
    SetStore& store = it->second;
    auto pos = store.by_index.find(req.index);
    if (pos != store.by_index.end()) {
      Chunk& stored = store.chunks[pos->second];
      resp.ok = true;
      resp.chunk = Materialize(req.set, stored);
      if (req.consume) {
        RollEpoch(store, req.epoch);
        store.bytes_served_epoch += stored.model_bytes;
        if (req.set.kind == SetKind::kInput || req.set.kind == SetKind::kUpdatesEven ||
            req.set.kind == SetKind::kUpdatesOdd) {
          stored.data.reset();
        }
      }
    }
  }
  if (resp.ok) {
    BufferPool::Lease lease;
    if (pool_ != nullptr) {
      lease = co_await pool_->Acquire(resp.chunk.model_bytes);
    }
    co_await device_.Acquire(config_.access_latency +
                             TransferTimeNs(resp.chunk.model_bytes, config_.bandwidth_bps));
    bytes_read_ += resp.chunk.model_bytes;
    ++chunks_served_;
    bus_->PostReply(m, kReadChunkResp, resp.chunk.model_bytes + kControlMsgBytes,
                    std::move(resp));
  } else {
    bus_->PostReply(m, kReadChunkResp, kControlMsgBytes, std::move(resp));
  }
}

Task<> StorageEngine::HandleWrite(Message m) {
  auto& req = std::any_cast<WriteChunkReq&>(m.body);
  const uint64_t bytes = req.chunk.model_bytes;
  // Ingest staging: the arriving payload sits in memory until the device
  // write completes.
  BufferPool::Lease lease;
  if (pool_ != nullptr) {
    lease = co_await pool_->Acquire(bytes);
  }
  SetStore& store = GetOrCreate(req.set);
  MaybeSpill(req.set, req.chunk);
  bool appended = true;
  if (IsIndexedKind(req.set.kind)) {
    auto pos = store.by_index.find(req.chunk.index);
    if (pos != store.by_index.end()) {
      // Overwrite in place (vertex write-back path).
      store.bytes_total -= store.chunks[pos->second].model_bytes;
      store.bytes_total += bytes;
      store.chunks[pos->second] = std::move(req.chunk);
      appended = false;
    }
  }
  if (appended) {
    store.bytes_total += bytes;
    store.by_index.emplace(req.chunk.index, store.chunks.size());
    store.chunks.push_back(std::move(req.chunk));
  }
  co_await device_.Acquire(config_.access_latency + TransferTimeNs(bytes, config_.bandwidth_bps));
  bytes_written_ += bytes;
  bus_->PostReply(m, kWriteAck, kControlMsgBytes, std::any());
}

Task<> StorageEngine::HandleDelete(Message m) {
  const auto& req = std::any_cast<const DeleteSetReq&>(m.body);
  sets_.erase(req.set);
  // Deletion is metadata-only: negligible device time.
  co_await device_.Acquire(0);
  bus_->PostReply(m, kDeleteAck, kControlMsgBytes, std::any());
}

std::string StorageEngine::SpillPath(const SetId& set, uint64_t spill_id) const {
  return config_.spill_dir + "/m" + std::to_string(machine_) + "_" +
         std::to_string(spill_id) + "_" + SetKindName(set.kind) + "_p" +
         std::to_string(set.partition) + ".chunk";
}

void StorageEngine::MaybeSpill(const SetId& set, Chunk& chunk) {
  if (config_.spill_dir.empty() || chunk.data == nullptr || chunk.payload_bytes == 0) {
    return;
  }
  chunk.spill_id = next_spill_id_++;  // writer-local indexes are not unique
  const std::string path = SpillPath(set, chunk.spill_id);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CHAOS_CHECK_MSG(out.good(), "cannot open spill file " + path);
  out.write(static_cast<const char*>(chunk.data.get()),
            static_cast<std::streamsize>(chunk.payload_bytes));
  CHAOS_CHECK_MSG(out.good(), "short write to spill file " + path);
  out.close();
  chunk.data.reset();  // payload now lives on the real filesystem
}

Chunk StorageEngine::Materialize(const SetId& set, const Chunk& chunk) const {
  if (config_.spill_dir.empty() || chunk.data != nullptr || chunk.payload_bytes == 0) {
    return chunk;
  }
  const std::string path = SpillPath(set, chunk.spill_id);
  std::ifstream in(path, std::ios::binary);
  CHAOS_CHECK_MSG(in.good(), "cannot open spill file " + path);
  // Cache-line-aligned buffer: re-materialized payloads must satisfy the
  // same alignment ChunkSpan<T>/EdgeChunkView assert of fresh ones (a
  // vector's allocator only guarantees element alignment).
  constexpr std::align_val_t kAlign{64};
  auto holder = std::shared_ptr<uint8_t>(
      static_cast<uint8_t*>(::operator new(chunk.payload_bytes, kAlign)),
      [](uint8_t* p) { ::operator delete(p, std::align_val_t{64}); });
  in.read(reinterpret_cast<char*>(holder.get()),
          static_cast<std::streamsize>(chunk.payload_bytes));
  CHAOS_CHECK_MSG(in.gcount() == static_cast<std::streamsize>(chunk.payload_bytes),
                  "short read from spill file " + path);
  Chunk loaded = chunk;
  loaded.data = std::shared_ptr<const void>(holder, holder.get());
  return loaded;
}

}  // namespace chaos
