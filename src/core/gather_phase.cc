#include "core/gather_phase.h"

namespace chaos {

GatherPhase::GatherPhase(EngineCore* core)
    : core_(core),
      binner_(core->parts_, core->kernel_->update_stride_bytes(),
              core->kernel_->update_wire_bytes(), core->ctx_.config->chunk_bytes,
              core->ctx_.arena,
              core->kernel_->update_soa_capable()
                  ? RecordBinner::Format::kUpdateSoA
                  : RecordBinner::Format::kRaw,
              core->kernel_->update_value_bytes()),
      writer_(&core->ctx_, &core->rng_, core->ctx_.config->fetch_window()) {
  if (core->ctx_.config->wire_combine) {
    writer_.EnableUpdateCombining(
        core->kernel_->update_wire_bytes() - core->kernel_->update_value_bytes(),
        core->metrics_);
  }
}

Task<> GatherPhase::Run() {
  EngineCore& c = *core_;
  c.phase_ = EnginePhase::kGather;
  c.ResetOwnStatuses();
  // A dead master still visits every owned partition: registered gather
  // stealers are parked on the accumulator handshake and must be released
  // even though the superstep is doomed (streams themselves abort early).
  for (const PartitionId p : c.own_partitions_) {
    co_await ProcessMaster(p);
  }
  if (c.ctx_.config->stealing_enabled() && !c.Dead()) {
    auto work = [this](PartitionId p) { return ProcessStolen(p); };
    co_await c.StealLoop(EnginePhase::kGather, work);
  }
  if (!c.Dead()) {
    co_await binner_.FlushAll(&writer_, UpdatesFor(c.superstep_ + 1));
  }
  co_await writer_.Drain();
  c.metrics_->updates_emitted += binner_.emitted();
  c.phase_ = EnginePhase::kScatter;
}

Task<GatherPhase::Streamed> GatherPhase::Stream(PartitionId p, bool stolen) {
  EngineCore& c = *core_;
  Streamed out;
  {
    BucketTimer load_t(c.ctx_.sim, c.metrics_, stolen ? Bucket::kCopy : Bucket::kGpMaster);
    out.vstate = co_await c.LoadVertexSet(p);
  }
  BucketTimer t(c.ctx_.sim, c.metrics_, stolen ? Bucket::kGpSteal : Bucket::kGpMaster);
  const uint64_t count = c.parts_->Count(p);
  if (c.ctx_.pool != nullptr) {
    out.accums.lease = co_await c.ctx_.pool->Acquire(count * c.kernel_->accum_bytes());
  }
  out.accums.batch = RecordBatch(c.ctx_.arena, c.kernel_->accum_bytes(), count);
  c.kernel_->InitAccumBatch(&out.accums.batch);
  const VertexId base = c.parts_->Base(p);
  const auto& cost = c.ctx_.cost();
  ChunkFetcher fetcher(&c.ctx_, &c.rng_, c.UpdatesSet(p, c.superstep_), c.GatherEpoch(),
                       c.ctx_.config->fetch_window(),
                       c.LocalMasterTarget(c.parts_->Master(p)));
  fetcher.Start();
  while (true) {
    if (c.Dead()) {
      co_await fetcher.Cancel();
      break;
    }
    std::optional<Chunk> chunk = co_await fetcher.Next();
    if (!chunk.has_value()) {
      break;
    }
    co_await c.ctx_.sim->Delay(c.ctx_.CpuTime(chunk->count, cost.ns_per_update_gather) +
                               c.ctx_.MessageTime());
    // Fault back any pages of the working batches the windows evicted.
    co_await c.TouchBatch(out.vstate);
    co_await c.TouchBatch(out.accums);
    c.kernel_->GatherChunk(*chunk, out.vstate.batch, &out.accums.batch, base, &binner_);
    c.metrics_->updates_processed += chunk->count;
    ++c.metrics_->chunks_fetched;
    if (stolen) {
      ++c.metrics_->stolen_chunks;
    }
    co_await binner_.FlushPending(&writer_, UpdatesFor(c.superstep_ + 1));
  }
  co_return out;
}

Task<> GatherPhase::ProcessMaster(PartitionId p) {
  EngineCore& c = *core_;
  c.OnMasterStartsPartition(p);
  Streamed s = co_await Stream(p, /*stolen=*/false);
  // Close: no new stealers; the registered set is now final (§5.3).
  EngineCore::PartStatus& st = c.own_status_[p];
  st.s = EngineCore::PartStatus::S::kClosed;
  const auto& cost = c.ctx_.cost();

  // Pull and merge the replica accumulators of every stealer.
  for (const MachineId stealer : st.gather_stealers) {
    Message req;
    req.src = c.ctx_.machine;
    req.dst = stealer;
    req.service = kControlService;
    req.type = kAccumPullReq;
    req.wire_bytes = kControlMsgBytes;
    req.body = AccumPullReq{p, c.superstep_};
    Message resp;
    {
      BucketTimer wait_t(c.ctx_.sim, c.metrics_, Bucket::kMergeWait);
      resp = co_await c.ctx_.bus->Call(std::move(req));
    }
    const auto& pull = std::any_cast<const AccumPullResp&>(resp.body);
    BucketTimer merge_t(c.ctx_.sim, c.metrics_, Bucket::kMerge);
    co_await c.ctx_.sim->Delay(c.ctx_.CpuTime(pull.accums.count, cost.ns_per_vertex_merge));
    co_await c.TouchBatch(s.accums);
    c.kernel_->MergeAccumChunk(&s.accums.batch, pull.accums);
  }

  // Apply (folded into the gather phase, §4) and write the new vertex set.
  {
    BucketTimer t(c.ctx_.sim, c.metrics_, Bucket::kGpMaster);
    const VertexId base = c.parts_->Base(p);
    co_await c.ctx_.sim->Delay(
        c.ctx_.CpuTime(s.vstate.batch.count(), cost.ns_per_vertex_apply));
    co_await c.TouchBatch(s.vstate);
    co_await c.TouchBatch(s.accums);
    c.changed_ += c.kernel_->ApplyBatch(&s.vstate.batch, s.accums.batch, base, &binner_);
    co_await binner_.FlushPending(&writer_, UpdatesFor(c.superstep_ + 1));
    co_await c.WriteVertexSet(p, s.vstate.batch, SetKind::kVertices, &writer_);
  }

  // Checkpoint copy, written while the state is hot (2-phase step 1, §6.6).
  // A dead machine writes none — its superstep will never commit.
  if (c.CheckpointCopyDue()) {
    BucketTimer t(c.ctx_.sim, c.metrics_, Bucket::kCheckpoint);
    co_await c.WriteVertexSet(p, s.vstate.batch, c.CheckpointSide(), &writer_);
  }

  // Updates of this iteration are deleted after apply (Fig. 4 line 45).
  co_await DeleteSetEverywhere(&c.ctx_, c.UpdatesSet(p, c.superstep_));
}

Task<> GatherPhase::ProcessStolen(PartitionId p) {
  EngineCore& c = *core_;
  Streamed s = co_await Stream(p, /*stolen=*/true);
  // Park the replica accumulators for the master's pull (Fig. 4 line 52).
  // The chunk borrows the accumulator batch zero-copy; the batch's pool
  // lease stays live in this frame until the master has taken the replica.
  const uint64_t count = s.accums.batch.count();
  Chunk accums = s.accums.batch.BorrowChunk(0, 0, count, count * c.kernel_->accum_bytes());
  c.ParkStolenAccums(p, std::move(accums));
  co_await c.WaitStolenAccumsTaken(p);
}

}  // namespace chaos
