// The discrete-event simulator driving every Chaos cluster run.
//
// All simulated machines' engines execute as coroutines over one Simulator.
// Time only advances between events; within an event, code runs instantly in
// simulated time. All cross-coroutine wakeups are routed through the event
// queue at the current timestamp, which makes runs fully deterministic.
#ifndef CHAOS_SIM_SIMULATOR_H_
#define CHAOS_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>

#include "sim/event_queue.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

class Simulator {
 public:
  // `impl` selects the event-queue structure (ClusterConfig::event_queue);
  // the pop order — and thus every simulation result — is identical for all
  // implementations.
  explicit Simulator(EventQueueImpl impl = EventQueueImpl::kCalendar) : queue_(impl) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run `delay` (>= 0) after the current time. EventFn
  // stores typical captures inline (sim/event_queue.h), so posting an event
  // does not allocate.
  void Post(TimeNs delay, EventFn fn) {
    CHAOS_CHECK_GE(delay, 0);
    queue_.Push(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `when` (>= now).
  void PostAt(TimeNs when, EventFn fn) {
    CHAOS_CHECK_GE(when, now_);
    queue_.Push(when, std::move(fn));
  }

  // Resumes a suspended coroutine through the event queue (deterministic).
  void Resume(std::coroutine_handle<> h) {
    Post(0, [h] { h.resume(); });
  }

  // Awaitable that suspends the caller for `delay` nanoseconds.
  auto Delay(TimeNs delay) {
    struct Awaiter {
      Simulator* sim;
      TimeNs delay;
      bool await_ready() const noexcept { return delay <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->PostAt(sim->now_ + delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    CHAOS_CHECK_GE(delay, 0);
    return Awaiter{this, delay};
  }

  // Detaches `task` as a root task; it starts running immediately (at the
  // current simulated time) until its first suspension.
  void Spawn(Task<> task);

  // Runs until the event queue drains. Returns the number of events run.
  uint64_t Run();

  // Runs until the queue drains or simulated time would exceed `deadline`.
  // Returns true if the queue drained.
  bool RunUntil(TimeNs deadline);

  // Number of spawned root tasks that have not completed. A nonzero value
  // after Run() indicates a protocol deadlock (tests assert on this).
  size_t live_tasks() const { return live_tasks_; }
  uint64_t spawned_tasks() const { return spawned_; }
  uint64_t events_processed() const { return processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  static internal::DetachedTask RunDetached(Simulator* sim, Task<> task);

  EventQueue queue_;
  TimeNs now_ = 0;
  size_t live_tasks_ = 0;
  uint64_t spawned_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_SIM_SIMULATOR_H_
