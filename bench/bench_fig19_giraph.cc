// Figure 19: Chaos vs a Giraph-like system (static partition placement, no
// dynamic load balancing — the paper equates it with "alpha = 0 plus static
// partitions", §10.2), PageRank on RMAT, strong scaling, each system
// normalized to its own 1-machine runtime. Paper: static partitioning
// severely limits scalability.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig19, "Figure 19: Chaos vs a Giraph-like static-placement system") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 27)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // Unpermuted RMAT: the skew static partitioning cannot adapt to.
  RmatOptions gopt;
  gopt.scale = scale;
  gopt.permute_ids = false;
  gopt.seed = seed;
  InputGraph prepared = PrepareInput("pagerank", GenerateRmat(gopt));

  std::printf("== Figure 19: Chaos vs Giraph-like (PR, RMAT-%u), each norm. to own m=1 ==\n",
              scale);
  PrintHeader({"system", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "speedup@32"});
  for (const bool giraph : {false, true}) {
    PrintCell(giraph ? "giraph-like" : "chaos");
    double base_seconds = 0.0;
    double last = 1.0;
    for (const int m : MachineSweep()) {
      ClusterConfig cfg = BenchClusterConfig(prepared, m, seed);
      if (giraph) {
        cfg.alpha = 0.0;                          // no dynamic load balancing
        cfg.placement = Placement::kLocalMaster;  // data pinned to its partition's machine
      }
      auto result = RunChaosAlgorithm("pagerank", prepared, cfg);
      const double seconds = result.metrics.total_seconds();
      if (m == 1) {
        base_seconds = seconds;
      }
      last = base_seconds > 0 ? seconds / base_seconds : 0.0;
      PrintCell(last, "%.3f");
    }
    PrintCell(last > 0 ? 1.0 / last : 0.0, "%.1fx");
    EndRow();
  }
  std::printf("\npaper: Giraph's static partitions severely limit scaling; Chaos ~13x\n"
              "(absolute Giraph runtimes are additionally ~10x slower from JVM overheads,\n"
              " which normalization removes)\n");
  return 0;
}
