// Figure 12: 40 GigE vs 1 GigE, BFS and PR, weak scaling normalized to the
// 1-machine runtime. With 1 GigE the network (1/4 of disk bandwidth in the
// paper's setup) becomes the bottleneck and scaling degrades badly —
// the experiment behind the "network must be at least as fast as storage"
// requirement (§9.4).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig12, "Figure 12: 40 GigE vs 1 GigE weak scaling") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "pagerank"};
  const std::vector<bool> nets = {true, false};  // 40GigE, 1GigE

  Sweep<double> sweep;
  for (const std::string& name : algos) {
    for (const bool fast : nets) {
      int step = 0;
      for (const int m : MachineSweep()) {
        const uint32_t scale = base + static_cast<uint32_t>(step);
        sweep.Add([name, scale, fast, m, seed] {
          InputGraph prepared = PrepareInput(name, BenchRmat(scale, false, seed));
          ClusterConfig cfg = BenchClusterConfig(
              prepared, m, seed, StorageConfig::Ssd(),
              fast ? NetworkConfig::FortyGigE() : NetworkConfig::OneGigE());
          return RunJob(MakeJob(name, prepared, cfg)).metrics.total_seconds();
        });
        ++step;
      }
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 12: 40GigE vs 1GigE, weak scaling, normalized to m=1 ==\n");
  PrintHeader({"algo/net", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    for (const bool fast : nets) {
      PrintCell(name + (fast ? " 40G" : " 1G"));
      double base_seconds = 0.0;
      for (const int m : MachineSweep()) {
        const double s = seconds[idx++];
        if (m == 1) {
          base_seconds = s;  // each curve normalized to its own m=1
        }
        PrintCell(base_seconds > 0 ? s / base_seconds : 0.0);
        RecordMetric("fig12." + name + (fast ? ".40g" : ".1g") + ".m" + std::to_string(m) +
                         ".sim_s",
                     s);
      }
      EndRow();
    }
  }
  std::printf("\npaper: 1GigE curves blow up to 5-9x while 40GigE stays < 2x\n");
  return 0;
}
