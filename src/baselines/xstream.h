// Single-machine X-Stream baseline (Roy et al., SOSP 2013): edge-centric
// scatter-gather over streaming partitions, reading and writing one local
// storage device directly (no client-server storage protocol, no network).
//
// Used by bench_table1 to reproduce the paper's Table 1 comparison: Chaos on
// one machine is architecturally X-Stream plus the chunk-server indirection,
// so the two runtimes should be close, with Chaos paying the messaging
// overhead (paper §8).
#ifndef CHAOS_BASELINES_XSTREAM_H_
#define CHAOS_BASELINES_XSTREAM_H_

#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/gas.h"
#include "core/partition.h"
#include "graph/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "storage/chunk.h"

namespace chaos {

struct XStreamConfig {
  uint64_t memory_budget_bytes = 8ull << 20;
  uint64_t chunk_bytes = 256 << 10;
  int prefetch_window = 8;  // in-flight device requests (I/O / compute overlap)
  StorageConfig storage = StorageConfig::Ssd();
  CostModel cost;
  uint64_t max_supersteps = 100000;
};

template <GasProgram P>
struct XStreamResult {
  std::vector<typename P::VertexState> states;
  std::vector<double> values;
  std::vector<typename P::OutputRecord> outputs;
  typename P::GlobalState final_global{};
  uint64_t supersteps = 0;
  TimeNs total_time = 0;
  TimeNs preprocess_time = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  double device_utilization = 0.0;
};

template <GasProgram P>
class XStreamEngine {
 public:
  using VState = typename P::VertexState;
  using U = typename P::UpdateValue;
  using A = typename P::Accumulator;
  using G = typename P::GlobalState;
  using Rec = UpdateRecord<U>;

  XStreamEngine(const XStreamConfig& config, P prog)
      : config_(config), prog_(std::move(prog)), device_(&sim_, "xstream-ssd") {}

  XStreamResult<P> Run(const InputGraph& input) {
    parts_ = std::make_unique<Partitioning>(Partitioning::Compute(
        input.num_vertices, 1, sizeof(VState) + sizeof(A), config_.memory_budget_bytes));
    meta_wire_edge_ = input.edge_wire_bytes();
    meta_wire_update_ = UpdateWireBytes<U>(input.vertex_id_wire_bytes());
    global_ = prog_.InitGlobal(input.num_vertices);
    XStreamResult<P> result;
    sim_.Spawn(Main(&input, &result));
    sim_.Run();
    CHAOS_CHECK_EQ(sim_.live_tasks(), 0u);
    result.total_time = sim_.now();
    result.final_global = global_;
    result.bytes_read = bytes_read_;
    result.bytes_written = bytes_written_;
    result.device_utilization =
        sim_.now() > 0
            ? static_cast<double>(device_.total_busy()) / static_cast<double>(sim_.now())
            : 0.0;
    result.values.reserve(result.states.size());
    for (const VState& s : result.states) {
      result.values.push_back(prog_.Extract(s));
    }
    return result;
  }

 private:
  // One streamed read of `bytes` from the device.
  Task<> Read(uint64_t bytes) {
    co_await device_.Acquire(config_.storage.access_latency +
                             TransferTimeNs(bytes, config_.storage.bandwidth_bps));
    bytes_read_ += bytes;
  }
  Task<> Write(uint64_t bytes) {
    co_await device_.Acquire(config_.storage.access_latency +
                             TransferTimeNs(bytes, config_.storage.bandwidth_bps));
    bytes_written_ += bytes;
  }

  // Streams the record chunks of a set through the prefetch window, calling
  // `process(span)` for each chunk after charging its compute time.
  template <typename RecT, typename Fn>
  Task<> StreamSet(const std::vector<std::vector<RecT>>* chunks, double ns_per_item,
                   Fn&& process) {
    Semaphore window(&sim_, config_.prefetch_window);
    SimQueue<const std::vector<RecT>*> ready(&sim_);
    TaskGroup group(&sim_);
    for (const auto& chunk : *chunks) {
      co_await window.Acquire();
      group.Spawn([](XStreamEngine* self, const std::vector<RecT>* chunk, Semaphore* window,
                     SimQueue<const std::vector<RecT>*>* ready, uint64_t wire) -> Task<> {
        co_await self->Read(wire);
        ready->Push(chunk);
        window->Release();
      }(this, &chunk, &window, &ready,
        chunk.size() * (std::is_same_v<RecT, Edge> ? meta_wire_edge_ : meta_wire_update_)));
    }
    for (size_t i = 0; i < chunks->size(); ++i) {
      const std::vector<RecT>* chunk = co_await ready.Pop();
      co_await sim_.Delay(config_.cost.ItemsTime(chunk->size(), ns_per_item));
      process(*chunk);
    }
    co_await group.Join();
  }

  Task<> Main(const InputGraph* input, XStreamResult<P>* result) {
    const uint32_t nparts = parts_->num_partitions();
    // ---- Pre-processing: one pass over the input edge list (§3).
    edges_.assign(nparts, {});
    std::vector<std::vector<std::vector<Edge>>> edge_chunks(nparts);
    {
      std::vector<uint32_t> degrees;
      if (P::kNeedsOutDegrees) {
        degrees.assign(input->num_vertices, 0);
      }
      const uint64_t per_chunk =
          std::max<uint64_t>(1, config_.chunk_bytes / meta_wire_edge_);
      // Input is read sequentially chunk by chunk and binned.
      uint64_t offset = 0;
      std::vector<std::vector<Edge>> bins(nparts);
      while (offset < input->edges.size()) {
        const uint64_t n = std::min<uint64_t>(per_chunk, input->edges.size() - offset);
        co_await Read(n * meta_wire_edge_);
        co_await sim_.Delay(config_.cost.ItemsTime(n, config_.cost.ns_per_edge_scatter));
        for (uint64_t i = 0; i < n; ++i) {
          const Edge& e = input->edges[offset + i];
          bins[parts_->PartitionOf(e.src)].push_back(e);
          if (P::kNeedsOutDegrees && e.flags == kEdgeForward) {
            degrees[e.src]++;
          }
        }
        offset += n;
        for (PartitionId p = 0; p < nparts; ++p) {
          if (bins[p].size() >= per_chunk) {
            co_await Write(bins[p].size() * meta_wire_edge_);
            edges_[p].push_back(std::move(bins[p]));
            bins[p].clear();
          }
        }
      }
      for (PartitionId p = 0; p < nparts; ++p) {
        if (!bins[p].empty()) {
          co_await Write(bins[p].size() * meta_wire_edge_);
          edges_[p].push_back(std::move(bins[p]));
        }
      }
      // Vertex sets initialized and written out.
      vertices_.assign(nparts, {});
      for (PartitionId p = 0; p < nparts; ++p) {
        const VertexId base = parts_->Base(p);
        const uint64_t count = parts_->Count(p);
        vertices_[p].reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          vertices_[p].push_back(prog_.InitVertex(
              global_, base + i, degrees.empty() ? 0 : degrees[base + i]));
        }
        co_await Write(count * sizeof(VState));
      }
    }
    result->preprocess_time = sim_.now();

    // ---- Main loop (Fig. 1).
    updates_.assign(nparts, {});
    uint64_t superstep = 0;
    const uint64_t updates_per_chunk =
        std::max<uint64_t>(1, config_.chunk_bytes / meta_wire_update_);
    while (true) {
      CHAOS_CHECK_LT(superstep, config_.max_supersteps);
      G local = prog_.InitLocal();
      uint64_t changed = 0;
      std::vector<std::vector<std::vector<Rec>>> next_updates(nparts);
      std::vector<std::vector<Rec>> bins(nparts);
      auto emit = [&](VertexId dst, const U& value) {
        const PartitionId p = parts_->PartitionOf(dst);
        bins[p].push_back(Rec{dst, value});
        if (bins[p].size() >= updates_per_chunk) {
          pending_update_chunks_.emplace_back(p, std::move(bins[p]));
          bins[p].clear();
        }
      };
      auto flush_pending = [&](std::vector<std::vector<std::vector<Rec>>>& sink_sets)
          -> Task<> {
        while (!pending_update_chunks_.empty()) {
          auto [p, recs] = std::move(pending_update_chunks_.front());
          pending_update_chunks_.pop_front();
          co_await Write(recs.size() * meta_wire_update_);
          sink_sets[p].push_back(std::move(recs));
        }
      };

      // Scatter phase: one streaming partition at a time (§3). Scatter
      // updates feed *this* superstep's gather.
      if (prog_.WantScatter(global_)) {
        for (PartitionId p = 0; p < nparts; ++p) {
          co_await Read(parts_->Count(p) * sizeof(VState));  // vertex set
          const VertexId base = parts_->Base(p);
          co_await StreamSet<Edge>(
              &edges_[p], config_.cost.ns_per_edge_scatter,
              [&](const std::vector<Edge>& chunk) {
                for (const Edge& e : chunk) {
                  prog_.Scatter(global_, e.src, vertices_[p][e.src - base], e, emit);
                }
              });
          co_await flush_pending(updates_);
        }
        // Partial scatter buffers become whole (short) chunks before gather.
        for (PartitionId p = 0; p < nparts; ++p) {
          if (!bins[p].empty()) {
            pending_update_chunks_.emplace_back(p, std::move(bins[p]));
            bins[p].clear();
          }
        }
        co_await flush_pending(updates_);
      }
      // Gather + apply phase.
      for (PartitionId p = 0; p < nparts; ++p) {
        co_await Read(parts_->Count(p) * sizeof(VState));
        const VertexId base = parts_->Base(p);
        std::vector<A> accums(parts_->Count(p), prog_.InitAccum());
        co_await StreamSet<Rec>(&updates_[p], config_.cost.ns_per_update_gather,
                                [&](const std::vector<Rec>& chunk) {
                                  for (const Rec& r : chunk) {
                                    prog_.Gather(global_, r.dst, vertices_[p][r.dst - base],
                                                 accums[r.dst - base], r.value, emit);
                                  }
                                });
        co_await sim_.Delay(
            config_.cost.ItemsTime(accums.size(), config_.cost.ns_per_vertex_apply));
        auto sink = [&](const typename P::OutputRecord& out) { result->outputs.push_back(out); };
        for (uint64_t i = 0; i < accums.size(); ++i) {
          if (prog_.Apply(global_, base + i, vertices_[p][i], accums[i], local, emit, sink)) {
            ++changed;
          }
        }
        co_await flush_pending(next_updates);
        co_await Write(parts_->Count(p) * sizeof(VState));  // vertex write-back
        updates_[p].clear();
      }
      // Partial gather/apply emission buffers flush to the next superstep.
      for (PartitionId p = 0; p < nparts; ++p) {
        if (!bins[p].empty()) {
          pending_update_chunks_.emplace_back(p, std::move(bins[p]));
          bins[p].clear();
        }
      }
      co_await flush_pending(next_updates);
      updates_ = std::move(next_updates);

      prog_.ReduceGlobal(global_, local);
      const bool done = prog_.Advance(global_, superstep, changed);
      ++superstep;
      if (done) {
        break;
      }
    }
    result->supersteps = superstep;
    // Extract final states.
    result->states.assign(input->num_vertices, VState{});
    for (PartitionId p = 0; p < nparts; ++p) {
      const VertexId base = parts_->Base(p);
      for (uint64_t i = 0; i < vertices_[p].size(); ++i) {
        result->states[base + i] = vertices_[p][i];
      }
    }
  }

  XStreamConfig config_;
  P prog_;
  Simulator sim_;
  FifoResource device_;
  std::unique_ptr<Partitioning> parts_;
  G global_{};
  uint64_t meta_wire_edge_ = 8;
  uint64_t meta_wire_update_ = 8;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  std::vector<std::vector<std::vector<Edge>>> edges_;       // per partition: chunks
  std::vector<std::vector<VState>> vertices_;               // per partition
  std::vector<std::vector<std::vector<Rec>>> updates_;      // per partition: chunks
  std::deque<std::pair<PartitionId, std::vector<Rec>>> pending_update_chunks_;
};

}  // namespace chaos

#endif  // CHAOS_BASELINES_XSTREAM_H_
