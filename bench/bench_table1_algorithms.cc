// Table 1: single-machine runtime, X-Stream vs Chaos, all ten algorithms.
//
// The paper runs RMAT-27 on one machine with an SSD; we run a scaled-down
// RMAT (configurable). The shape to reproduce: the two systems are close,
// with Chaos paying the client-server storage overhead (1.0x - 2.5x).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(table1, "Table 1: single-machine runtime, X-Stream vs Chaos") {
  Options opt;
  opt.AddInt("scale", 13, "RMAT scale (paper: 27)");
  opt.AddInt("seed", 1, "graph + placement seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Table 1: algorithms, 1-machine X-Stream vs Chaos (RMAT-%u, SSD) ==\n", scale);
  PrintHeader({"algorithm", "xstream(s)", "chaos(s)", "chaos/xs"});
  double ratio_sum = 0.0;
  int rows = 0;
  for (const auto& info : Algorithms()) {
    InputGraph raw = BenchRmat(scale, info.needs_weights, seed);
    InputGraph prepared = PrepareInput(info.name, raw);

    // Both systems run identical profiles at *full* (unminiaturized)
    // latencies: Table 1's gap is exactly the per-request overhead of the
    // client-server chunk protocol, which miniaturized latencies would
    // hide. Single-machine runs need no cross-machine scaling.
    ClusterConfig ccfg;
    ccfg.machines = 1;
    ccfg.seed = seed;
    ccfg.memory_budget_bytes =
        std::max<uint64_t>(prepared.num_vertices * 48 / 4 + 1, 4 << 10);
    ccfg.chunk_bytes = std::min<uint64_t>(
        std::max<uint64_t>(prepared.input_wire_bytes() / 128 + 1, 2 << 10), 4ull << 20);
    XStreamConfig xcfg;
    xcfg.memory_budget_bytes = ccfg.memory_budget_bytes;
    xcfg.chunk_bytes = ccfg.chunk_bytes;
    xcfg.prefetch_window = ccfg.fetch_window();
    xcfg.storage = ccfg.storage;
    xcfg.cost = ccfg.cost;

    auto xs = RunXStreamAlgorithm(info.name, prepared, xcfg);
    auto chaos_run = RunChaosAlgorithm(info.name, prepared, ccfg);

    const double xs_s = ToSeconds(xs.total_time);
    const double ch_s = chaos_run.metrics.total_seconds();
    const double ratio = xs_s > 0 ? ch_s / xs_s : 0.0;
    ratio_sum += ratio;
    ++rows;
    PrintCell(info.name);
    PrintCell(xs_s);
    PrintCell(ch_s);
    PrintCell(ratio);
    EndRow();
  }
  std::printf("\nmean chaos/xstream ratio: %.2f (paper: 1.0x - 2.5x, mean ~1.4x)\n",
              ratio_sum / rows);
  return 0;
}
