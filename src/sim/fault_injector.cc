#include "sim/fault_injector.h"

#include <algorithm>
#include <utility>

#include "util/rng.h"

namespace chaos {

const char* FaultTargetName(FaultTarget target) {
  switch (target) {
    case FaultTarget::kCpu:
      return "cpu";
    case FaultTarget::kStorage:
      return "storage";
    case FaultTarget::kNic:
      return "nic";
    case FaultTarget::kMachine:
      return "machine";
  }
  return "?";
}

bool ParseFaultTarget(const std::string& text, FaultTarget* out) {
  if (text == "cpu") {
    *out = FaultTarget::kCpu;
  } else if (text == "storage") {
    *out = FaultTarget::kStorage;
  } else if (text == "nic") {
    *out = FaultTarget::kNic;
  } else if (text == "machine") {
    *out = FaultTarget::kMachine;
  } else {
    return false;
  }
  return true;
}

FaultSchedule FaultSchedule::Straggler(MachineId machine, double severity, FaultTarget target,
                                       TimeNs at) {
  CHAOS_CHECK_GE(severity, 1.0);
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.duration = 0;  // permanent
  e.machine = machine;
  e.target = target;
  e.factor = 1.0 / severity;
  return s.Add(e);
}

FaultSchedule FaultSchedule::TransientSlowdown(MachineId machine, FaultTarget target,
                                               double factor, TimeNs at, TimeNs duration) {
  CHAOS_CHECK_GT(duration, 0);
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.duration = duration;
  e.machine = machine;
  e.target = target;
  e.factor = factor;
  return s.Add(e);
}

FaultSchedule FaultSchedule::StorageBrownout(MachineId machine, double factor, TimeNs at,
                                             TimeNs duration) {
  return TransientSlowdown(machine, FaultTarget::kStorage, factor, at, duration);
}

FaultSchedule FaultSchedule::MachineCrash(MachineId machine, TimeNs at) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.duration = 0;  // fail-stop: permanent
  e.machine = machine;
  e.target = FaultTarget::kMachine;
  e.factor = 1.0;  // unused for crashes
  e.kind = FaultKind::kMachineCrash;
  return s.Add(e);
}

FaultSchedule FaultSchedule::Random(uint64_t seed, int machines, int count, TimeNs horizon,
                                    double min_factor, double max_factor) {
  CHAOS_CHECK_GT(machines, 0);
  CHAOS_CHECK_GT(horizon, 0);
  CHAOS_CHECK_GT(min_factor, 0.0);
  CHAOS_CHECK_LE(min_factor, max_factor);
  Rng rng(HashCombine(seed, 0xfa017ULL));
  FaultSchedule s;
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    e.machine = static_cast<MachineId>(rng.Below(static_cast<uint64_t>(machines)));
    e.target = static_cast<FaultTarget>(rng.Below(4));
    e.factor = min_factor + rng.NextDouble() * (max_factor - min_factor);
    e.at = static_cast<TimeNs>(rng.Below(static_cast<uint64_t>(horizon)));
    e.duration = 1 + static_cast<TimeNs>(
                         rng.Below(std::max<uint64_t>(static_cast<uint64_t>(horizon) / 4, 1)));
    s.Add(e);
  }
  return s;
}

FaultInjector::FaultInjector(Simulator* sim, FaultSchedule schedule, int machines)
    : sim_(sim), schedule_(std::move(schedule)), machines_(machines) {
  CHAOS_CHECK_GT(machines, 0);
  hooks_.resize(static_cast<size_t>(machines));
  cpu_rate_.assign(static_cast<size_t>(machines), 1.0);
  dead_.assign(static_cast<size_t>(machines), 0);
  dead_since_.assign(static_cast<size_t>(machines), -1);
  active_.resize(static_cast<size_t>(machines));
  records_.resize(schedule_.events.size());
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    CHAOS_CHECK(e.machine >= 0 && e.machine < machines);
    records_[i].event = e;
    timeline_.push_back(Change{e.at, i, /*begin=*/true});
    if (!e.permanent()) {
      timeline_.push_back(Change{e.end(), i, /*begin=*/false});
    }
  }
  // Recoveries before onsets at the same instant, then schedule order.
  std::sort(timeline_.begin(), timeline_.end(), [](const Change& a, const Change& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    if (a.begin != b.begin) {
      return !a.begin;
    }
    return a.event_index < b.event_index;
  });
}

void FaultInjector::AttachMachine(MachineId machine, const MachineHooks& hooks) {
  CHAOS_CHECK(machine >= 0 && machine < machines_);
  hooks_[static_cast<size_t>(machine)] = hooks;
}

void FaultInjector::Start() {
  CHAOS_CHECK(!started_);
  started_ = true;
  if (!timeline_.empty()) {
    sim_->Spawn(Run());
  }
}

Task<> FaultInjector::Run() {
  for (const Change& change : timeline_) {
    if (change.at > sim_->now()) {
      co_await sim_->Delay(change.at - sim_->now());
    }
    if (cancelled_) {
      break;  // workload finished: the rest of the plan was never reached
    }
    Apply(change);
  }
}

bool FaultInjector::Covers(FaultTarget event_target, FaultTarget dimension) const {
  return event_target == dimension || event_target == FaultTarget::kMachine;
}

void FaultInjector::Apply(const Change& change) {
  const FaultEvent& event = schedule_.events[change.event_index];
  FaultRecord& record = records_[change.event_index];
  auto& active = active_[static_cast<size_t>(event.machine)];
  if (event.kind == FaultKind::kMachineCrash) {
    // Fail-stop: no rate effect, no recovery change. Idempotent against a
    // schedule that crashes the same machine twice.
    record.applied_at = sim_->now();
    if (probe_) {
      record.at_apply = probe_(event.machine);
    }
    ++events_applied_;
    if (dead_[static_cast<size_t>(event.machine)] == 0) {
      dead_[static_cast<size_t>(event.machine)] = 1;
      dead_since_[static_cast<size_t>(event.machine)] = sim_->now();
      ++dead_count_;
    }
    return;
  }
  if (change.begin) {
    active.push_back(change.event_index);
    record.applied_at = sim_->now();
    if (probe_) {
      record.at_apply = probe_(event.machine);
    }
    ++events_applied_;
  } else {
    active.erase(std::find(active.begin(), active.end(), change.event_index));
    record.cleared_at = sim_->now();
    if (probe_) {
      record.at_clear = probe_(event.machine);
    }
  }
  RecomputeRates(event.machine, event.target);
}

void FaultInjector::RecomputeRates(MachineId machine, FaultTarget target) {
  const auto& active = active_[static_cast<size_t>(machine)];
  MachineHooks& hooks = hooks_[static_cast<size_t>(machine)];
  for (const FaultTarget dim : {FaultTarget::kCpu, FaultTarget::kStorage, FaultTarget::kNic}) {
    if (!Covers(target, dim)) {
      continue;
    }
    double rate = 1.0;
    for (const size_t idx : active) {
      const FaultEvent& e = schedule_.events[idx];
      if (Covers(e.target, dim)) {
        rate *= e.factor;
      }
    }
    switch (dim) {
      case FaultTarget::kCpu:
        cpu_rate_[static_cast<size_t>(machine)] = rate;
        break;
      case FaultTarget::kStorage:
        if (hooks.storage != nullptr) {
          hooks.storage->SetRate(rate);
        }
        break;
      case FaultTarget::kNic:
        if (hooks.nic_up != nullptr) {
          hooks.nic_up->SetRate(rate);
        }
        if (hooks.nic_down != nullptr) {
          hooks.nic_down->SetRate(rate);
        }
        break;
      case FaultTarget::kMachine:
        break;
    }
  }
}

}  // namespace chaos
