// RecordBinner: bins emitted records by destination partition into
// chunk-sized buffers. Untemplated — buffer management, parking and chunk
// flushing compile once in the untyped engine core — while Add<RecT>() is a
// tiny inline template so the per-record hot path (called from the typed
// kernels' per-edge loops) stays free of virtual dispatch.
//
// Buffering is arena-backed (core/record_arena.h): each partition fills a
// fixed-capacity 64-byte-aligned block, so the per-record path is one
// bounds check plus a fixed-size copy — no std::vector regrowth, and
// zero heap allocations (tests/hotpath_alloc_test.cc asserts this). A full
// block is parked as a finished Chunk zero-copy: the fill block itself
// becomes the payload. In kEdgeSoA mode records are written straight into
// the SoA region layout (core/edge_chunk_view.h), so each record is stored
// exactly once — there is no transpose pass re-reading a by-then-cold fill
// block on park. kUpdateSoA does the same for update records
// (core/update_chunk_view.h): AddUpdate<U>() splits each emission into the
// dst and value regions in place, parameterized by the program's value
// width at construction. Only tail chunks (FlushAll with a part-filled
// block) pay a compaction copy, because SoA region offsets depend on the
// record count.
//
// Both SoA paths additionally use software write-combining: records are
// staged 16-at-a-time in a small L1-resident per-partition buffer and
// flushed to the fill block's SoA regions with non-temporal stores, as
// whole cache lines per flush (six for edges; 128 B of dsts plus
// 16 * value_bytes of values for updates). Fill blocks total partitions ×
// chunk_bytes — far beyond L2 — so plain stores would pay a
// read-for-ownership miss per line (doubling DRAM traffic) and evict the
// caller's working set; streaming stores do neither. The NT path needs
// records_per_chunk to be a multiple of the staging quantum (keeps every
// flush 16-byte aligned and park boundaries on flush boundaries) and falls
// back to plain in-place stores otherwise, or when SSE2 is unavailable.
//
// Add() is synchronous; parked chunks are flushed by the owning coroutine
// between chunks (FlushPending / FlushAll).
#ifndef CHAOS_CORE_RECORD_BINNER_H_
#define CHAOS_CORE_RECORD_BINNER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#define CHAOS_BINNER_HAS_NT_STORES 1
#else
#define CHAOS_BINNER_HAS_NT_STORES 0
#endif

#include "core/chunk_io.h"
#include "core/edge_chunk_view.h"
#include "core/gas.h"
#include "core/partition.h"
#include "core/record_arena.h"
#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

// Builds a chunk whose payload is a copy of `bytes` in properly aligned
// storage: leased from `arena` when given, else a direct 64-byte-aligned
// allocation. (The previous implementation parked the bytes in a
// std::vector<uint8_t>, whose allocator only guarantees alignment for
// uint8_t — the arena block is aligned for any record type, asserted by
// ChunkSpan<T>.)
inline Chunk MakeChunkFromBytes(uint64_t index, uint64_t model_bytes, uint32_t count,
                                const uint8_t* bytes, uint64_t nbytes,
                                RecordArena* arena = nullptr) {
  Chunk c;
  c.index = index;
  c.model_bytes = model_bytes;
  c.count = count;
  c.payload_bytes = nbytes;
  if (nbytes > 0) {
    std::shared_ptr<uint8_t> payload;
    if (arena != nullptr) {
      payload = arena->LeaseShared(nbytes);
    } else {
      payload = std::shared_ptr<uint8_t>(
          static_cast<uint8_t*>(::operator new(nbytes, std::align_val_t{RecordArena::kAlign})),
          [](uint8_t* p) { ::operator delete(p, std::align_val_t{RecordArena::kAlign}); });
    }
    std::memcpy(payload.get(), bytes, nbytes);
    c.data = std::shared_ptr<const void>(payload, payload.get());
  }
  return c;
}

class RecordBinner {
 public:
  // How parked chunks are laid out. kRaw fills the block AoS; kEdgeSoA
  // (edge sets only, stride == sizeof(Edge)) fills it in the
  // ChunkLayout::kEdgeSoA region layout for the vectorized scatter loop;
  // kUpdateSoA (update sets, stride == sizeof(UpdateRecord<U>)) fills the
  // ChunkLayout::kUpdateSoA dst/value regions via AddUpdate<U>(). Either
  // way the full block parks as the chunk payload without a copy.
  enum class Format : uint8_t { kRaw = 0, kEdgeSoA = 1, kUpdateSoA = 2 };

  // `record_stride_bytes` is the in-memory record width (sizeof(RecT));
  // `record_wire_bytes` the modeled on-disk/wire width the paper charges.
  // `arena` is the owning engine's arena; null falls back to a private one
  // (host-side and test callers). `update_value_bytes` is sizeof(U) for
  // Format::kUpdateSoA (the packed value-region stride) and ignored
  // otherwise.
  RecordBinner(const Partitioning* parts, uint64_t record_stride_bytes,
               uint64_t record_wire_bytes, uint64_t chunk_bytes,
               RecordArena* arena = nullptr, Format format = Format::kRaw,
               uint64_t update_value_bytes = 0)
      : parts_(parts),
        stride_(record_stride_bytes),
        record_wire_(record_wire_bytes),
        value_bytes_(update_value_bytes),
        records_per_chunk_(RecordsPerChunk(chunk_bytes, record_wire_bytes)),
        fill_bytes_(records_per_chunk_ * record_stride_bytes),
        format_(format),
        cursor_stride_(format == Format::kRaw ? record_stride_bytes
                                              : sizeof(VertexId)),
        soa_dst_off_(8ull * records_per_chunk_),
        soa_weight_off_(16ull * records_per_chunk_),
        soa_flags_off_(20ull * records_per_chunk_),
        soa_value_off_(8ull * records_per_chunk_),
        wc_enabled_(CHAOS_BINNER_HAS_NT_STORES && format == Format::kEdgeSoA &&
                    records_per_chunk_ % kWcStage == 0),
        uwc_enabled_(CHAOS_BINNER_HAS_NT_STORES &&
                     format == Format::kUpdateSoA &&
                     records_per_chunk_ % kWcStage == 0),
        bins_(parts->num_partitions()) {
    CHAOS_CHECK_GT(stride_, 0u);
    if (format_ == Format::kEdgeSoA) {
      CHAOS_CHECK_EQ(stride_, sizeof(Edge));
    }
    if (format_ == Format::kUpdateSoA) {
      // The AoS record is at least as wide as the packed pair (alignment
      // padding only grows it), so fill blocks sized for AoS hold the SoA
      // regions too.
      CHAOS_CHECK_GT(value_bytes_, 0u);
      CHAOS_CHECK_GE(stride_, sizeof(VertexId) + value_bytes_);
    }
    if (wc_enabled_) {
      stage_ = std::make_unique<WcStage[]>(bins_.size());
    }
    if (uwc_enabled_) {
      // Update staging is runtime-sized (value width is a program property),
      // so it lives in one 64-byte-aligned slab: per partition, kWcStage
      // dsts then kWcStage packed values, the slot rounded up to keep every
      // partition's dst block 16-byte aligned for the streaming loads.
      ustage_stride_ = (kUwcDstBytes + kWcStage * value_bytes_ +
                        (RecordArena::kAlign - 1)) &
                       ~static_cast<uint64_t>(RecordArena::kAlign - 1);
      const uint64_t total = ustage_stride_ * bins_.size();
      ustage_.reset(static_cast<uint8_t*>(
          ::operator new(total, std::align_val_t{RecordArena::kAlign})));
      std::memset(ustage_.get(), 0, total);
      // Per-record path helpers: precomputed slot pointers (no
      // multiply on the store-address chain) and byte-wide counts (the
      // whole partition set's counts share one or two cache lines).
      ustage_slot_ = std::make_unique<uint8_t*[]>(bins_.size());
      for (size_t p = 0; p < bins_.size(); ++p) {
        ustage_slot_[p] = ustage_.get() + p * ustage_stride_;
      }
      ustage_count_ = std::make_unique<uint8_t[]>(bins_.size());
      std::memset(ustage_count_.get(), 0, bins_.size());
    }
    if (arena == nullptr) {
      own_arena_ = std::make_unique<RecordArena>();
      arena = own_arena_.get();
    }
    arena_ = arena;
  }

  // Chunk capacity in records. Floored at one record per chunk so records
  // wider than the chunk still make progress; zero-width records (empty
  // payloads) never fill a chunk by byte count, so they are binned as if
  // one byte wide instead of dividing by zero.
  static uint64_t RecordsPerChunk(uint64_t chunk_bytes, uint64_t record_wire_bytes) {
    const uint64_t wire = record_wire_bytes < 1 ? 1 : record_wire_bytes;
    const uint64_t per = chunk_bytes / wire;
    return per < 1 ? 1 : per;
  }

  template <typename RecT>
  void Add(PartitionId p, const RecT& record) {
    static_assert(std::is_trivially_copyable_v<RecT>, "binned records must be POD");
    CHAOS_DCHECK(sizeof(RecT) == stride_);
    // The whole per-record hot path: a fixed-size copy plus a cursor bump
    // (or a staging-buffer append on the write-combining path). Nothing
    // else (record counts, fill thresholds) is read or written per record —
    // emitted() derives counts from the cursors and staging fills instead.
    if constexpr (std::is_same_v<RecT, Edge>) {
      if (wc_enabled_) {
        // Write-combining path: stage into the partition's L1-resident
        // buffer; every 16th record flushes six whole cache lines to the
        // fill block with non-temporal stores (no read-for-ownership, no
        // cache pollution from the partitions × chunk_bytes fill set). The
        // bin itself — and its lease — is only touched at flush time.
        WcStage& st = stage_[p];
        const uint32_t s = st.count;
        st.src[s] = record.src;
        st.dst[s] = record.dst;
        st.weight[s] = record.weight;
        st.flags[s] = record.flags;
        st.count = s + 1;
        if (st.count == kWcStage) {
          FlushStage(p);
        }
        return;
      }
    }
    Bin& bin = bins_[p];
    if (bin.cursor == bin.end) {  // unleased bins have cursor == end == null
      LeaseBin(&bin);
    }
    if constexpr (std::is_same_v<RecT, Edge>) {
      if (format_ == Format::kEdgeSoA) {
        // Store each field straight into its SoA region: the cursor walks
        // the 8-byte src region, the dst slot sits at a constant offset
        // from it, and the 4-byte weight/flags slots at half the cursor's
        // progress past the region base.
        uint8_t* const cur = bin.cursor;
        uint8_t* const base = bin.end - soa_dst_off_;
        const auto half = static_cast<uint64_t>(cur - base) >> 1;
        *reinterpret_cast<VertexId*>(cur) = record.src;
        *reinterpret_cast<VertexId*>(cur + soa_dst_off_) = record.dst;
        *reinterpret_cast<float*>(base + soa_weight_off_ + half) = record.weight;
        *reinterpret_cast<uint32_t*>(base + soa_flags_off_ + half) = record.flags;
        bin.cursor = cur + sizeof(VertexId);
        if (bin.cursor == bin.end) {
          Park(p);
        }
        return;
      }
    }
    CHAOS_DCHECK(format_ == Format::kRaw);
    std::memcpy(bin.cursor, &record, sizeof(RecT));
    bin.cursor += sizeof(RecT);
    if (bin.cursor == bin.end) {
      Park(p);
    }
  }

  // Update-record hot path: the kernels' emit lambdas call this instead of
  // materializing an UpdateRecord<U>, so the kUpdateSoA fill stores dst and
  // value straight into their regions (no padded AoS temp). Over-aligned
  // values (alignof > 8) cannot use the packed layout — the engine
  // constructs such binners as kRaw and this degrades to Add().
  template <typename U>
  void AddUpdate(PartitionId p, VertexId dst, const U& value) {
    static_assert(std::is_trivially_copyable_v<U>, "binned records must be POD");
    if constexpr (alignof(U) <= 8) {
      if (format_ == Format::kUpdateSoA) {
        CHAOS_DCHECK(sizeof(U) == value_bytes_);
        if (uwc_enabled_) {
          // Write-combining path, mirroring the edge staging: per-record
          // stores land in the partition's L1-resident slot; every 16th
          // record streams whole lines into the fill block.
          uint8_t* const slot = ustage_slot_[p];
          const uint32_t s = ustage_count_[p];
          reinterpret_cast<VertexId*>(slot)[s] = dst;
          *reinterpret_cast<U*>(slot + kUwcDstBytes + s * sizeof(U)) = value;
          ustage_count_[p] = static_cast<uint8_t>(s + 1);
          if (s + 1 == kWcStage) {
            FlushUpdateStage(p);
          }
          return;
        }
        Bin& bin = bins_[p];
        if (bin.cursor == bin.end) {
          LeaseBin(&bin);
        }
        // The cursor walks the 8-byte dst region; the value slot sits in
        // the packed region at the same record index.
        uint8_t* const cur = bin.cursor;
        uint8_t* const base = bin.end - soa_value_off_;
        const auto idx = static_cast<uint64_t>(cur - base) >> 3;
        *reinterpret_cast<VertexId*>(cur) = dst;
        *reinterpret_cast<U*>(base + soa_value_off_ + idx * sizeof(U)) = value;
        bin.cursor = cur + sizeof(VertexId);
        if (bin.cursor == bin.end) {
          Park(p);
        }
        return;
      }
    }
    const UpdateRecord<U> rec{dst, value};
    Add(p, rec);
  }

  bool HasPending() const { return pending_head_ < pending_.size(); }

  // Records accepted so far: everything parked plus the partial fills. The
  // per-bin sum keeps this O(partitions), which is fine for its once-per-
  // phase metrics callers and keeps the per-record path free of counters.
  uint64_t emitted() const {
    uint64_t filling = 0;
    for (const Bin& bin : bins_) {
      filling += static_cast<uint64_t>(bin.cursor - bin.block.data());
    }
    uint64_t staged = 0;
    if (wc_enabled_) {
      for (size_t p = 0; p < bins_.size(); ++p) {
        staged += stage_[p].count;
      }
    }
    if (uwc_enabled_) {
      for (size_t p = 0; p < bins_.size(); ++p) {
        staged += ustage_count_[p];
      }
    }
    return parked_records_ + filling / cursor_stride_ + staged;
  }
  const RecordArena& arena() const { return *arena_; }

  // Test hook: fast-forwards chunk numbering (regression coverage for
  // 32-bit index wraparound without binning 2^32 chunks).
  void set_next_index_for_test(uint64_t index) { next_index_ = index; }

  // Test hook: drains the oldest parked chunk without a ChunkWriter.
  std::pair<PartitionId, Chunk> PopPendingForTest() {
    CHAOS_CHECK(HasPending());
    std::pair<PartitionId, Chunk> out = std::move(pending_[pending_head_]);
    ++pending_head_;
    if (pending_head_ == pending_.size()) {
      pending_.clear();
      pending_head_ = 0;
    }
    return out;
  }

  Task<> FlushPending(ChunkWriter* writer, SetKind kind) {
    while (pending_head_ < pending_.size()) {
      // NOTE: named locals (not braced temporaries) around coroutine calls;
      // g++ 12 miscompiles braced aggregate temporaries passed directly as
      // coroutine arguments (see docs in sim/task.h).
      const PartitionId p = pending_[pending_head_].first;
      Chunk chunk = std::move(pending_[pending_head_].second);
      ++pending_head_;
      if (pending_head_ == pending_.size()) {
        pending_.clear();  // keeps capacity; the park path stays alloc-free
        pending_head_ = 0;
      }
      const SetId target{p, kind};
      co_await writer->Write(target, std::move(chunk), parts_->Master(p));
    }
  }

  Task<> FlushAll(ChunkWriter* writer, SetKind kind) {
    ParkPartialFills();
    co_await FlushPending(writer, kind);
  }

  // Test hook: parks every partial fill — including write-combining tails
  // still sitting in staging buffers — without needing a ChunkWriter.
  void ParkAllForTest() { ParkPartialFills(); }

 private:
  struct Bin {
    // Hot pair, first in the struct: Add() touches nothing else until the
    // block fills. An unleased bin has cursor == end == nullptr.
    uint8_t* cursor = nullptr;  // next write position in the fill block
    uint8_t* end = nullptr;     // fill boundary (block start + fill_bytes_)
    RecordArena::Block block;   // owns the fixed-capacity fill buffer (AoS)
  };

  // Per-partition write-combining staging buffer (kEdgeSoA NT path): one
  // flush quantum of records, SoA, 16-byte aligned for the streaming
  // copies. All partitions' buffers together stay L1-resident (384 bytes
  // per partition), which is the point: per-record stores land here, and
  // only whole lines ever travel to the (cache-bypassing) fill blocks.
  static constexpr uint32_t kWcStage = 16;
  struct WcStage {
    uint32_t count = 0;  // records currently staged
    alignas(16) VertexId src[kWcStage];
    alignas(16) VertexId dst[kWcStage];
    alignas(16) float weight[kWcStage];
    alignas(16) uint32_t flags[kWcStage];
  };

  void LeaseBin(Bin* bin) {
    bin->block = arena_->Lease(fill_bytes_);
    bin->cursor = bin->block.data();
    // The leased block may be a larger pow2 class; the chunk boundary is
    // still records_per_chunk_ so chunk record counts are
    // capacity-independent. (For kEdgeSoA the cursor walks the 8-byte src
    // region, so the boundary is the region's end, not fill_bytes_.)
    bin->end = bin->cursor + records_per_chunk_ * cursor_stride_;
  }

  void ParkPartialFills() {
    for (PartitionId p = 0; p < bins_.size(); ++p) {
      if (wc_enabled_) {
        DrainStagePlain(p);  // staged records become part of the tail fill
      }
      if (uwc_enabled_) {
        DrainUpdateStagePlain(p);
      }
      if (bins_[p].cursor != bins_[p].block.data()) {  // partial fill
        Park(p);
      }
    }
  }

  // Flushes a full staging buffer to the partition's fill block as six
  // whole cache lines of non-temporal stores: two 128-byte runs (src, dst)
  // and two 64-byte runs (weight, flags). All destinations stay 16-byte
  // aligned because the block base is 64-byte aligned, flushes advance in
  // kWcStage-record quanta, and the region offsets are multiples of
  // 8 * records_per_chunk_ with records_per_chunk_ % kWcStage == 0.
  void FlushStage(PartitionId p) {
#if CHAOS_BINNER_HAS_NT_STORES
    Bin& bin = bins_[p];
    if (bin.cursor == bin.end) {
      LeaseBin(&bin);
    }
    WcStage& st = stage_[p];
    uint8_t* const cur = bin.cursor;
    uint8_t* const base = bin.end - soa_dst_off_;  // == block start
    const auto half = static_cast<uint64_t>(cur - base) >> 1;
    const auto* s_src = reinterpret_cast<const __m128i*>(st.src);
    const auto* s_dst = reinterpret_cast<const __m128i*>(st.dst);
    auto* d_src = reinterpret_cast<__m128i*>(cur);
    auto* d_dst = reinterpret_cast<__m128i*>(cur + soa_dst_off_);
    for (uint32_t k = 0; k < kWcStage / 2; ++k) {
      _mm_stream_si128(d_src + k, _mm_load_si128(s_src + k));
      _mm_stream_si128(d_dst + k, _mm_load_si128(s_dst + k));
    }
    const auto* s_weight = reinterpret_cast<const __m128i*>(st.weight);
    const auto* s_flags = reinterpret_cast<const __m128i*>(st.flags);
    auto* d_weight = reinterpret_cast<__m128i*>(base + soa_weight_off_ + half);
    auto* d_flags = reinterpret_cast<__m128i*>(base + soa_flags_off_ + half);
    for (uint32_t k = 0; k < kWcStage / 4; ++k) {
      _mm_stream_si128(d_weight + k, _mm_load_si128(s_weight + k));
      _mm_stream_si128(d_flags + k, _mm_load_si128(s_flags + k));
    }
    st.count = 0;
    bin.cursor = cur + kWcStage * sizeof(VertexId);
    if (bin.cursor == bin.end) {
      Park(p);
    }
#else
    (void)p;
#endif
  }

  // Writes a part-filled staging buffer into the fill block with plain
  // stores (tail records at FlushAll time — cold path). The cursor sits on
  // a flush boundary, so the fill can't complete mid-drain.
  void DrainStagePlain(PartitionId p) {
    WcStage& st = stage_[p];
    if (st.count == 0) {
      return;
    }
    Bin& bin = bins_[p];
    if (bin.cursor == bin.end) {
      LeaseBin(&bin);
    }
    uint8_t* const base = bin.end - soa_dst_off_;
    for (uint32_t i = 0; i < st.count; ++i) {
      uint8_t* const cur = bin.cursor;
      const auto half = static_cast<uint64_t>(cur - base) >> 1;
      *reinterpret_cast<VertexId*>(cur) = st.src[i];
      *reinterpret_cast<VertexId*>(cur + soa_dst_off_) = st.dst[i];
      *reinterpret_cast<float*>(base + soa_weight_off_ + half) = st.weight[i];
      *reinterpret_cast<uint32_t*>(base + soa_flags_off_ + half) = st.flags[i];
      bin.cursor = cur + sizeof(VertexId);
    }
    CHAOS_DCHECK(bin.cursor < bin.end);
    st.count = 0;
  }

  // Flushes a full update staging slot to the partition's fill block with
  // non-temporal stores: two cache lines of dsts plus kWcStage packed
  // values (16 * value_bytes, always a 16-byte multiple). Alignment mirrors
  // the edge path: the block base is 64-byte aligned, flushes advance in
  // kWcStage-record quanta, and the value-region offset is a multiple of
  // 8 * records_per_chunk_ with records_per_chunk_ % kWcStage == 0.
  void FlushUpdateStage(PartitionId p) {
#if CHAOS_BINNER_HAS_NT_STORES
    Bin& bin = bins_[p];
    if (bin.cursor == bin.end) {
      LeaseBin(&bin);
    }
    const uint8_t* const slot = ustage_slot_[p];
    uint8_t* const cur = bin.cursor;
    uint8_t* const base = bin.end - soa_value_off_;  // == block start
    const auto idx = static_cast<uint64_t>(cur - base) >> 3;
    const auto* s_dst = reinterpret_cast<const __m128i*>(slot);
    auto* d_dst = reinterpret_cast<__m128i*>(cur);
    for (uint32_t k = 0; k < kWcStage / 2; ++k) {
      _mm_stream_si128(d_dst + k, _mm_load_si128(s_dst + k));
    }
    const auto* s_val = reinterpret_cast<const __m128i*>(slot + kUwcDstBytes);
    auto* d_val =
        reinterpret_cast<__m128i*>(base + soa_value_off_ + idx * value_bytes_);
    const auto val_vecs = static_cast<uint32_t>(kWcStage * value_bytes_ / 16);
    for (uint32_t k = 0; k < val_vecs; ++k) {
      _mm_stream_si128(d_val + k, _mm_load_si128(s_val + k));
    }
    ustage_count_[p] = 0;
    bin.cursor = cur + kWcStage * sizeof(VertexId);
    if (bin.cursor == bin.end) {
      Park(p);
    }
#else
    (void)p;
#endif
  }

  // Writes a part-filled update staging slot into the fill block with plain
  // stores (tail records at FlushAll time — cold path).
  void DrainUpdateStagePlain(PartitionId p) {
    const uint32_t n = ustage_count_[p];
    if (n == 0) {
      return;
    }
    Bin& bin = bins_[p];
    if (bin.cursor == bin.end) {
      LeaseBin(&bin);
    }
    const uint8_t* const slot = ustage_slot_[p];
    const auto* s_dst = reinterpret_cast<const VertexId*>(slot);
    const uint8_t* const s_val = slot + kUwcDstBytes;
    uint8_t* const base = bin.end - soa_value_off_;
    for (uint32_t i = 0; i < n; ++i) {
      uint8_t* const cur = bin.cursor;
      const auto idx = static_cast<uint64_t>(cur - base) >> 3;
      *reinterpret_cast<VertexId*>(cur) = s_dst[i];
      std::memcpy(base + soa_value_off_ + idx * value_bytes_,
                  s_val + i * value_bytes_, value_bytes_);
      bin.cursor = cur + sizeof(VertexId);
    }
    CHAOS_DCHECK(bin.cursor < bin.end);
    ustage_count_[p] = 0;
  }

  // Finishes the partition's fill block as a pending chunk.
  void Park(PartitionId p) {
#if CHAOS_BINNER_HAS_NT_STORES
    if (wc_enabled_ || uwc_enabled_) {
      // Drain the write-combining buffers before the payload is published:
      // NT stores are weakly ordered, and the chunk may be consumed on
      // another thread.
      _mm_sfence();
    }
#endif
    Bin& bin = bins_[p];
    const auto count = static_cast<uint32_t>(
        static_cast<uint64_t>(bin.cursor - bin.block.data()) / cursor_stride_);
    parked_records_ += count;
    Chunk chunk;
    chunk.index = next_index_++;
    chunk.model_bytes = count * record_wire_;
    chunk.count = count;
    chunk.payload_bytes = count * stride_;
    if (format_ == Format::kEdgeSoA) {
      chunk.layout = ChunkLayout::kEdgeSoA;
      if (count == records_per_chunk_) {
        // Full block: the in-place SoA fill already is the payload.
        chunk.data = std::move(bin.block).ToShared();
      } else {
        // Tail chunk: region offsets depend on the count, so compact the
        // capacity-offset regions into an exact-count payload. Rare — only
        // FlushAll parks part-filled blocks.
        std::shared_ptr<uint8_t> payload = arena_->LeaseShared(chunk.payload_bytes);
        CompactSoaTail(bin.block.data(), count, payload.get());
        chunk.data = std::shared_ptr<const void>(payload, payload.get());
      }
    } else if (format_ == Format::kUpdateSoA) {
      chunk.layout = ChunkLayout::kUpdateSoA;
      // Packed payload: no AoS padding between dst and value, so the
      // in-memory footprint is count * (8 + value_bytes), not count *
      // sizeof(UpdateRecord<U>).
      chunk.payload_bytes = count * (sizeof(VertexId) + value_bytes_);
      if (count == records_per_chunk_) {
        chunk.data = std::move(bin.block).ToShared();
      } else {
        std::shared_ptr<uint8_t> payload = arena_->LeaseShared(chunk.payload_bytes);
        CompactUpdateSoaTail(bin.block.data(), count, payload.get());
        chunk.data = std::shared_ptr<const void>(payload, payload.get());
      }
    } else {
      // The fill block itself becomes the (immutable) chunk payload; a
      // fresh block is leased on the partition's next Add.
      chunk.data = std::move(bin.block).ToShared();
    }
    bin = Bin{};
    pending_.emplace_back(p, std::move(chunk));
  }

  // Copies the four part-filled SoA regions (at capacity-based offsets in
  // the fill block) into `out` at count-based offsets.
  void CompactSoaTail(const uint8_t* block, uint32_t count, uint8_t* out) const {
    std::memcpy(out, block, 8ull * count);
    std::memcpy(out + 8ull * count, block + soa_dst_off_, 8ull * count);
    std::memcpy(out + 16ull * count, block + soa_weight_off_, 4ull * count);
    std::memcpy(out + 20ull * count, block + soa_flags_off_, 4ull * count);
  }

  // kUpdateSoA analogue: two regions, dsts then packed values.
  void CompactUpdateSoaTail(const uint8_t* block, uint32_t count,
                            uint8_t* out) const {
    std::memcpy(out, block, 8ull * count);
    std::memcpy(out + 8ull * count, block + soa_value_off_,
                value_bytes_ * count);
  }

  struct AlignedSlabDelete {
    void operator()(uint8_t* p) const {
      ::operator delete(p, std::align_val_t{RecordArena::kAlign});
    }
  };

  const Partitioning* parts_;
  uint64_t stride_;
  uint64_t record_wire_;
  // sizeof(U) for kUpdateSoA (packed value-region stride); 0 otherwise.
  uint64_t value_bytes_;
  uint64_t records_per_chunk_;
  uint64_t fill_bytes_;
  Format format_;
  // Bytes the bin cursor advances per record: stride_ for kRaw (AoS fill),
  // sizeof(VertexId) for the SoA formats (the cursor walks the 8-byte
  // src/dst region).
  uint64_t cursor_stride_;
  // SoA region offsets within a full fill block (capacity-based).
  uint64_t soa_dst_off_;
  uint64_t soa_weight_off_;
  uint64_t soa_flags_off_;
  uint64_t soa_value_off_;  // kUpdateSoA value region (== 8 * capacity)
  // True when the kEdgeSoA / kUpdateSoA fill runs through the respective
  // write-combining staging path (SSE2 present and records_per_chunk_ a
  // staging-quantum multiple).
  bool wc_enabled_;
  bool uwc_enabled_;
  RecordArena* arena_ = nullptr;
  std::unique_ptr<RecordArena> own_arena_;
  std::vector<Bin> bins_;
  std::unique_ptr<WcStage[]> stage_;  // one per partition; null unless wc_enabled_
  // Update staging slab (uwc_enabled_ only): bins_.size() slots of
  // ustage_stride_ bytes, each kWcStage dsts followed by kWcStage packed
  // values; fill counts live separately so slots stay store-only.
  // ustage_slot_ caches each partition's slot address (keeps the
  // per-record store-address chain multiply-free) and the byte-wide
  // counts pack the whole partition set into one or two cache lines.
  static constexpr uint64_t kUwcDstBytes = kWcStage * sizeof(VertexId);
  uint64_t ustage_stride_ = 0;
  std::unique_ptr<uint8_t, AlignedSlabDelete> ustage_;
  std::unique_ptr<uint8_t*[]> ustage_slot_;
  std::unique_ptr<uint8_t[]> ustage_count_;
  // Drained front-to-back by FlushPending; vector + head cursor instead of
  // a deque so steady-state parking reuses capacity.
  std::vector<std::pair<PartitionId, Chunk>> pending_;
  size_t pending_head_ = 0;
  uint64_t next_index_ = 0;
  uint64_t parked_records_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_CORE_RECORD_BINNER_H_
