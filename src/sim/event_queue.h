// Deterministic event queue: events fire in (time, insertion sequence) order,
// so simultaneous events run in the order they were scheduled.
//
// Two interchangeable implementations live behind one class:
//
//   * kBinaryHeap — the classic array heap. O(log n) push/pop, trivially
//     correct; kept as the differential golden for the calendar structure.
//   * kCalendar — a calendar queue (Brown '88) with pow2 bucket widths and
//     lazily sorted buckets. Amortized O(1) push/pop at the event rates the
//     cluster simulation produces, and allocation-free in steady state
//     (tests/hotpath_alloc_test.cc asserts this).
//
// Both pop in strictly ascending (time, seq) order — a total order, since
// seq is unique — so simulation results are bitwise identical regardless of
// the implementation picked. tests/sim_test.cc drives both on identical
// seeded streams and asserts identical pop order.
#ifndef CHAOS_SIM_EVENT_QUEUE_H_
#define CHAOS_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/common.h"

namespace chaos {

// Move-only callable with small-buffer storage, sized for the DES hot path.
//
// Nearly every event callback captures a coroutine handle, sometimes plus a
// shared_ptr flag or a small pointer pair — well under kInlineBytes — so
// pushing an event performs no heap allocation at all, where std::function
// would allocate (libstdc++ inlines only 16 bytes) on every Push. This is
// the event "pooling" of the simulator: callback storage lives inside the
// bucket slot the queue already owns. Oversized captures fall back to the
// heap transparently.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() {
    CHAOS_DCHECK(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
    static void Move(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
    static constexpr Ops kOps = {&Invoke, &Move, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Ptr(void* storage) { return *reinterpret_cast<Fn**>(storage); }
    static void Invoke(void* storage) { (*Ptr(storage))(); }
    static void Move(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = Ptr(src);
    }
    static void Destroy(void* storage) { delete Ptr(storage); }
    static constexpr Ops kOps = {&Invoke, &Move, &Destroy};
  };

  void MoveFrom(EventFn& other) {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// Which event-queue data structure a Simulator (and thus a Cluster) uses.
// Selected via ClusterConfig::event_queue; kCalendar is the default hot-path
// structure, kBinaryHeap the differential golden.
enum class EventQueueImpl : uint8_t {
  kBinaryHeap = 0,
  kCalendar = 1,
};

class EventQueue {
 public:
  struct Event {
    TimeNs time = 0;
    uint64_t seq = 0;
    EventFn fn;
  };

  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kCalendar);

  void Push(TimeNs time, EventFn fn);
  // Removes and returns the earliest event. Queue must be non-empty.
  Event Pop();
  // Returns the earliest event without removing it. Non-const because the
  // calendar implementation advances its cursor / sorts its current bucket
  // to locate the minimum (the logical contents are unchanged).
  const Event& Peek();

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  uint64_t total_pushed() const { return next_seq_; }
  EventQueueImpl impl() const { return impl_; }

 private:
  // Typical cluster runs keep hundreds of in-flight events; reserving up
  // front keeps the first supersteps from re-allocating the heap array.
  static constexpr size_t kInitialCapacity = 256;
  // Calendar geometry. Buckets double whenever occupancy exceeds
  // kGrowOccupancy events per bucket (amortized rebuild, which also
  // re-estimates the bucket width from observed inter-event gaps).
  static constexpr size_t kInitialBuckets = 64;   // power of two
  static constexpr size_t kMaxBuckets = 1 << 20;  // power of two
  static constexpr size_t kGrowOccupancy = 4;
  static constexpr int kInitialShift = 12;  // 4096 ns buckets until tuned
  static constexpr int kMaxShift = 40;

  static bool Earlier(const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }
  // Buckets are kept sorted *descending* so the minimum is back() and Pop is
  // a pop_back. Strict order; (time, seq) keys are unique.
  static bool Later(const Event& a, const Event& b) { return Earlier(b, a); }

  // --- binary heap ---
  void HeapPush(Event ev);
  Event HeapPop();
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  // --- calendar ---
  size_t BucketOf(TimeNs time) const {
    return static_cast<size_t>(static_cast<uint64_t>(time) >> shift_) & (buckets_.size() - 1);
  }
  TimeNs BucketWidth() const { return TimeNs{1} << shift_; }
  void CalPush(Event ev);
  Event CalPop();
  // Positions cursor_ on the bucket holding the global minimum and sorts it;
  // afterwards buckets_[cursor_].back() is the minimum event. Requires
  // size_ > 0.
  void CalLocateMin();
  void JumpTo(TimeNs time);
  void SortCurrent();
  void Rebuild(size_t new_bucket_count);

  EventQueueImpl impl_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;

  std::vector<Event> heap_;  // binary min-heap by (time, seq)

  std::vector<std::vector<Event>> buckets_;  // calendar; pow2 bucket count
  std::vector<Event> scratch_;               // reused by Rebuild
  int shift_ = kInitialShift;                // bucket width = 1 << shift_ ns
  size_t cursor_ = 0;                        // bucket being drained
  TimeNs cur_start_ = 0;                     // window of cursor_'s rotation
  TimeNs cur_end_ = 0;
  bool cur_sorted_ = false;  // buckets_[cursor_] sorted descending?
};

}  // namespace chaos

#endif  // CHAOS_SIM_EVENT_QUEUE_H_
