// The edge-centric GAS programming model (paper §2).
//
// A program defines the vertex state, the update value carried over edges,
// the per-vertex accumulator, and a small POD global state reduced at every
// gather barrier (a Pregel-style aggregator, used for convergence detection
// and multi-phase algorithms).
//
// Core model (all ten benchmark algorithms):
//   Scatter(src)  -> updates along out-edges
//   Gather(upd)   -> fold into destination accumulator
//   Apply(accum)  -> new vertex value (merged into gather at the master, §4)
//
// Extended model (paper footnote 2; used by MCST):
//   * Scatter may address updates to arbitrary vertices (redirection).
//   * Gather and Apply may emit updates consumed by the *next* superstep's
//     gather (request/response pointer chasing).
#ifndef CHAOS_CORE_GAS_H_
#define CHAOS_CORE_GAS_H_

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "graph/types.h"

namespace chaos {

// Wrapper the engine stores in update chunks: destination plus the
// program-defined value. POD by construction.
template <typename U>
struct UpdateRecord {
  VertexId dst;
  U value;
};

// Compile-time description every GAS program must satisfy. Emitters are
// passed as generic callables (no virtual dispatch on the per-edge path):
//   emit(VertexId dst, const UpdateValue& value)
// Output sinks collect program results that are not vertex state (e.g. MSF
// edges): sink(const OutputRecord&).
template <typename P>
concept GasProgram = requires(const P p) {
  typename P::VertexState;
  typename P::UpdateValue;
  typename P::Accumulator;
  typename P::GlobalState;
  typename P::OutputRecord;
  requires std::is_trivially_copyable_v<typename P::VertexState>;
  requires std::is_trivially_copyable_v<typename P::UpdateValue>;
  requires std::is_trivially_copyable_v<typename P::Accumulator>;
  requires std::is_trivially_copyable_v<typename P::GlobalState>;
  requires std::is_trivially_copyable_v<typename P::OutputRecord>;
  { P::kNeedsOutDegrees } -> std::convertible_to<bool>;
  { P::kName } -> std::convertible_to<const char*>;
  { p.InitGlobal(uint64_t{}) } -> std::same_as<typename P::GlobalState>;
  { p.InitLocal() } -> std::same_as<typename P::GlobalState>;
  { p.InitAccum() } -> std::same_as<typename P::Accumulator>;
};

// Convenience empty types for programs that do not use a feature.
struct NoOutput {};
struct NoGlobal {};

// Modeled wire size of one update record: destination id at the input
// graph's id width plus the program's value payload.
template <typename U>
uint64_t UpdateWireBytes(uint64_t vertex_id_wire_bytes) {
  return vertex_id_wire_bytes + sizeof(U);
}

}  // namespace chaos

#endif  // CHAOS_CORE_GAS_H_
