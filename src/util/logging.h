// Minimal leveled logging with printf-style formatting.
//
// Chaos simulations run in a single thread, but logging is guarded by a mutex
// anyway so that multi-threaded test harnesses can share it safely.
#ifndef CHAOS_UTIL_LOGGING_H_
#define CHAOS_UTIL_LOGGING_H_

#include <cstdarg>
#include <string>

namespace chaos {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Sets the minimum level that is emitted. Default: kWarning (quiet for tests
// and benches; examples raise it to kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one log line if `level` is at or above the configured minimum.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

// Number of messages emitted since process start, per level; used by tests.
uint64_t LogCountForLevel(LogLevel level);

#define CHAOS_LOG(level, ...) \
  ::chaos::LogMessage((level), __FILE__, __LINE__, __VA_ARGS__)
#define CHAOS_LOG_DEBUG(...) CHAOS_LOG(::chaos::LogLevel::kDebug, __VA_ARGS__)
#define CHAOS_LOG_INFO(...) CHAOS_LOG(::chaos::LogLevel::kInfo, __VA_ARGS__)
#define CHAOS_LOG_WARN(...) CHAOS_LOG(::chaos::LogLevel::kWarning, __VA_ARGS__)
#define CHAOS_LOG_ERROR(...) CHAOS_LOG(::chaos::LogLevel::kError, __VA_ARGS__)

}  // namespace chaos

#endif  // CHAOS_UTIL_LOGGING_H_
