// GatherPhase: the untemplated gather-phase driver (paper §4, Fig. 4 lines
// 35-53). For each owned partition: stream the update set into replica
// accumulators, close the partition, pull and merge every stealer's
// replica, apply (folded into gather at the master, §4), write the new
// vertex set back (plus the hot checkpoint copy when due), and delete the
// consumed update set. Stolen partitions stream into a replica and park it
// for the master's accumulator pull. Per-update/per-vertex work happens
// inside the typed kernel; this driver compiles once.
#ifndef CHAOS_CORE_GATHER_PHASE_H_
#define CHAOS_CORE_GATHER_PHASE_H_

#include "core/engine_core.h"

namespace chaos {

class GatherPhase {
 public:
  explicit GatherPhase(EngineCore* core);

  // Runs the full phase: own partitions (master protocol), stealing, final
  // flush + drain. Emissions produced during gather/apply feed the *next*
  // superstep's update set.
  Task<> Run();

 private:
  struct Streamed {
    PooledBatch vstate;
    PooledBatch accums;
  };

  // Shared streaming part of gather; returns the loaded vertex states and
  // the gathered replica accumulators.
  Task<Streamed> Stream(PartitionId p, bool stolen);
  Task<> ProcessMaster(PartitionId p);
  Task<> ProcessStolen(PartitionId p);

  EngineCore* core_;
  RecordBinner binner_;
  ChunkWriter writer_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_GATHER_PHASE_H_
