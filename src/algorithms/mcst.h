// Minimum Cost Spanning Trees (forest) via distributed Borůvka.
//
// This program exercises the extended GAS model (paper footnote 2 and §5):
// updates redirected to arbitrary vertices (candidate aggregation at
// component roots) and gather/apply emissions (request/response pointer
// chasing for component relabeling). Phases per Borůvka round:
//
//   kFindMin:     stream graph edges; each vertex gathers its minimum
//                 cross-component incident edge; apply redirects the
//                 candidate to the component root.
//   kPickMin:     roots gather member candidates, pick the component
//                 minimum, notify the chosen neighbor component (hook).
//   kHookResolve: mutual hooks (A<->B) break toward the smaller root id;
//                 winners emit the MSF edge; everyone starts comp chasing.
//   kChase:       query/answer pointer shortcutting until component labels
//                 reach a fixed point (two consecutive quiet supersteps).
//
// Requires an undirected weighted edge list. Edge total order is
// (weight, min(u,v), max(u,v)), which makes mutual hooks pick the same edge.
#ifndef CHAOS_ALGORITHMS_MCST_H_
#define CHAOS_ALGORITHMS_MCST_H_

#include <cstdint>

#include "core/gas.h"
#include "graph/types.h"

namespace chaos {

class McstProgram {
 public:
  static constexpr const char* kName = "mcst";
  static constexpr bool kNeedsOutDegrees = false;
  static constexpr VertexId kNone = ~VertexId{0};

  enum Phase : uint8_t { kFindMin = 0, kPickMin = 1, kHookResolve = 2, kChase = 3 };
  enum UpdateType : uint8_t {
    kMinEdge = 0,
    kCandidate = 1,
    kHookNotify = 2,
    kQuery = 3,
    kAnswer = 4,
  };

  struct VertexState {
    VertexId comp;
    VertexId pending;  // hook target component (roots during a round)
    float cand_w;
    VertexId cand_u, cand_v;
    uint8_t has_cand;
  };
  struct UpdateValue {
    uint8_t type;
    float w;
    VertexId a;     // edge endpoint u / asker / notifying root / answer
    VertexId b;     // edge endpoint v
    VertexId comp;  // sender's component
  };
  struct Accumulator {
    float w;
    VertexId a, b, comp;
    uint8_t has;
    uint8_t mutual;
    VertexId answer;
    uint8_t has_answer;
  };
  struct GlobalState {
    uint8_t phase;
    uint32_t round;
    uint64_t candidates;
    uint64_t prev_changed;
  };
  struct OutputRecord {
    VertexId u, v;
    float w;
  };

  GlobalState InitGlobal(uint64_t) const { return GlobalState{kFindMin, 0, 0, 0}; }
  GlobalState InitLocal() const { return GlobalState{kFindMin, 0, 0, 0}; }
  Accumulator InitAccum() const { return Accumulator{0.0f, kNone, kNone, kNone, 0, 0, kNone, 0}; }
  VertexState InitVertex(const GlobalState&, VertexId v, uint32_t) const {
    return VertexState{v, kNone, 0.0f, kNone, kNone, 0};
  }
  bool WantScatter(const GlobalState& g) const { return g.phase == kFindMin; }

  // Total order on undirected edges: (w, min(u,v), max(u,v)).
  static bool EdgeLess(float w1, VertexId a1, VertexId b1, float w2, VertexId a2, VertexId b2) {
    if (w1 != w2) {
      return w1 < w2;
    }
    const VertexId lo1 = a1 < b1 ? a1 : b1, hi1 = a1 < b1 ? b1 : a1;
    const VertexId lo2 = a2 < b2 ? a2 : b2, hi2 = a2 < b2 ? b2 : a2;
    if (lo1 != lo2) {
      return lo1 < lo2;
    }
    return hi1 < hi2;
  }

  template <typename Emit>
  void Scatter(const GlobalState& g, VertexId src, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (g.phase == kFindMin && src != e.dst) {
      emit(e.dst, UpdateValue{kMinEdge, e.weight, src, e.dst, s.comp});
    }
  }

  template <typename Emit>
  void Gather(const GlobalState& g, VertexId, const VertexState& dst, Accumulator& a,
              const UpdateValue& u, Emit&& emit) const {
    switch (g.phase) {
      case kFindMin:
        // Type check drops stale chase queries/answers left over from the
        // final (quiet) chase superstep of the previous round.
        if (u.type == kMinEdge && u.comp != dst.comp &&
            (!a.has || EdgeLess(u.w, u.a, u.b, a.w, a.a, a.b))) {
          a.w = u.w;
          a.a = u.a;
          a.b = u.b;
          a.comp = u.comp;
          a.has = 1;
        }
        break;
      case kPickMin:
        if (u.type == kCandidate &&
            (!a.has || EdgeLess(u.w, u.a, u.b, a.w, a.a, a.b))) {
          a.w = u.w;
          a.a = u.a;
          a.b = u.b;
          a.comp = u.comp;
          a.has = 1;
        }
        break;
      case kHookResolve:
        if (u.type == kHookNotify && u.a == dst.pending) {
          a.mutual = 1;
        }
        break;
      case kChase:
        if (u.type == kQuery) {
          // Respond with our current component (shortcutting): consumed by
          // the asker's gather in the next superstep.
          emit(u.a, UpdateValue{kAnswer, 0.0f, dst.comp, kNone, kNone});
        } else if (u.type == kAnswer) {
          a.answer = u.a;
          a.has_answer = 1;
        }
        break;
      default:
        break;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    if (b.has && (!a.has || EdgeLess(b.w, b.a, b.b, a.w, a.a, a.b))) {
      a.w = b.w;
      a.a = b.a;
      a.b = b.b;
      a.comp = b.comp;
      a.has = 1;
    }
    a.mutual |= b.mutual;
    if (b.has_answer) {
      a.answer = b.answer;
      a.has_answer = 1;
    }
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState& g, VertexId v, VertexState& s, const Accumulator& a,
             GlobalState& local, Emit&& emit, Sink&& sink) const {
    switch (g.phase) {
      case kFindMin:
        if (a.has) {
          // Redirect the candidate to this vertex's component root.
          emit(s.comp, UpdateValue{kCandidate, a.w, a.a, a.b, a.comp});
        }
        return false;
      case kPickMin:
        if (a.has) {
          s.pending = a.comp;
          s.cand_w = a.w;
          s.cand_u = a.a;
          s.cand_v = a.b;
          s.has_cand = 1;
          ++local.candidates;
          emit(s.pending, UpdateValue{kHookNotify, 0.0f, v, kNone, kNone});
          return true;
        }
        s.pending = kNone;
        s.has_cand = 0;
        return false;
      case kHookResolve: {
        bool changed = false;
        if (s.pending != kNone) {
          const bool wins_mutual = a.mutual && v < s.pending;
          if (!wins_mutual) {
            s.comp = s.pending;
            changed = true;
          }
          // Mutual pairs pick the same edge; only the winner emits it.
          if (!(a.mutual && !wins_mutual)) {
            sink(OutputRecord{s.cand_u, s.cand_v, s.cand_w});
          }
          s.pending = kNone;
        }
        if (s.comp != v) {
          emit(s.comp, UpdateValue{kQuery, 0.0f, v, kNone, kNone});
          changed = true;  // keep the chase alive for at least one cycle
        }
        return changed;
      }
      case kChase: {
        bool changed = false;
        if (a.has_answer && a.answer != s.comp) {
          s.comp = a.answer;
          changed = true;
        }
        if (s.comp != v) {
          emit(s.comp, UpdateValue{kQuery, 0.0f, v, kNone, kNone});
        }
        return changed;
      }
      default:
        return false;
    }
  }

  void ReduceGlobal(GlobalState& g, const GlobalState& other) const {
    g.candidates += other.candidates;
  }

  bool Advance(GlobalState& g, uint64_t, uint64_t changed) const {
    switch (g.phase) {
      case kFindMin:
        g.phase = kPickMin;
        return false;
      case kPickMin: {
        const bool done = g.candidates == 0;
        g.candidates = 0;
        if (done) {
          return true;
        }
        g.phase = kHookResolve;
        return false;
      }
      case kHookResolve:
        g.phase = kChase;
        g.prev_changed = 1;
        return false;
      case kChase:
        if (changed == 0 && g.prev_changed == 0) {
          g.phase = kFindMin;
          ++g.round;
          g.prev_changed = 0;
        } else {
          g.prev_changed = changed;
        }
        return false;
      default:
        return true;
    }
  }

  double Extract(const VertexState& s) const { return static_cast<double>(s.comp); }
};

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_MCST_H_
