// RecordBatch: the type-erased, mutable array of fixed-width POD records
// the untemplated engine core (engine_core.h) moves between storage and the
// typed program kernels (gas_kernel.h). A batch owns one contiguous buffer;
// chunks written to storage *borrow* sub-ranges of it zero-copy (shared
// ownership through Chunk's aliasing payload pointer), which is what
// removed the per-chunk slice copies of the old WriteVertexSet path.
//
// Buffers lease from the owning engine's RecordArena (core/record_arena.h)
// when one is supplied — 64-byte aligned, recycled across supersteps, no
// per-batch heap allocation in steady state — and fall back to a direct
// aligned allocation otherwise (host-side and test callers).
//
// Contract: once a range has been borrowed into a Chunk, the batch must not
// be mutated again (stored chunks are immutable); the engine's phase flow
// mutates first (gather/apply), borrows last (vertex + checkpoint
// write-back), then drops the batch.
#ifndef CHAOS_CORE_RECORD_BATCH_H_
#define CHAOS_CORE_RECORD_BATCH_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "core/record_arena.h"
#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

class RecordBatch {
 public:
  RecordBatch() = default;
  // Allocates `count` zero-initialized records of `record_bytes` each,
  // leased from `arena` (or directly allocated if `arena` is null).
  RecordBatch(RecordArena* arena, uint64_t record_bytes, uint64_t count)
      : record_bytes_(record_bytes), count_(count) {
    const uint64_t bytes = record_bytes * count;
    if (bytes == 0) {
      return;
    }
    if (arena != nullptr) {
      data_ = arena->LeaseShared(bytes);
    } else {
      data_ = std::shared_ptr<uint8_t>(
          static_cast<uint8_t*>(::operator new(bytes, std::align_val_t{RecordArena::kAlign})),
          [](uint8_t* p) { ::operator delete(p, std::align_val_t{RecordArena::kAlign}); });
    }
    std::memset(data_.get(), 0, bytes);  // arena blocks are recycled dirty
  }
  RecordBatch(uint64_t record_bytes, uint64_t count)
      : RecordBatch(nullptr, record_bytes, count) {}

  template <typename T>
  static RecordBatch Of(uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>, "batch records must be POD");
    return RecordBatch(sizeof(T), count);
  }

  uint64_t record_bytes() const { return record_bytes_; }
  uint64_t count() const { return count_; }
  uint64_t size_bytes() const { return record_bytes_ * count_; }
  bool empty() const { return count_ == 0; }

  void* data() { return data_.get(); }
  const void* data() const { return data_.get(); }

  // Typed views for the kernels; the width must match exactly. The buffer
  // is at least 64-byte aligned, so any POD record is aligned.
  template <typename T>
  std::span<T> Span() {
    CHAOS_DCHECK(sizeof(T) == record_bytes_ || count_ == 0);
    return std::span<T>(static_cast<T*>(data()), count_);
  }
  template <typename T>
  std::span<const T> Span() const {
    CHAOS_DCHECK(sizeof(T) == record_bytes_ || count_ == 0);
    return std::span<const T>(static_cast<const T*>(data()), count_);
  }

  // Copies `n` records from `src` into records [dst_index, dst_index + n).
  void CopyIn(uint64_t dst_index, const void* src, uint64_t n) {
    CHAOS_CHECK_LE(dst_index + n, count_);
    if (n > 0) {
      std::memcpy(data_.get() + dst_index * record_bytes_, src, n * record_bytes_);
    }
  }

  // Borrows records [start, start + n) as a chunk payload without copying:
  // the chunk shares ownership of the whole buffer and aliases the range,
  // keeping it alive after the batch is gone (and, for arena-backed
  // buffers, returning the block to the arena only when the last chunk
  // referencing it is dropped).
  Chunk BorrowChunk(uint64_t index, uint64_t start, uint64_t n, uint64_t model_bytes) const {
    CHAOS_CHECK_LE(start + n, count_);
    Chunk c;
    c.index = index;
    c.model_bytes = model_bytes;
    c.count = static_cast<uint32_t>(n);
    c.payload_bytes = n * record_bytes_;
    c.data = std::shared_ptr<const void>(data_, data_.get() + start * record_bytes_);
    return c;
  }

 private:
  uint64_t record_bytes_ = 0;
  uint64_t count_ = 0;
  std::shared_ptr<uint8_t> data_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_RECORD_BATCH_H_
