// Common foundation types and invariant-checking macros used across Chaos.
//
// The library follows a no-exceptions policy for control flow: fallible
// operations return std::optional / status booleans, and broken invariants
// abort via CHECK. This mirrors the style used by comparable systems code.
#ifndef CHAOS_UTIL_COMMON_H_
#define CHAOS_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace chaos {

// Aborts after printing `msg` with source location. Used by the CHECK macros.
[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& msg);

namespace internal {
std::string CheckMessage();
template <typename A, typename B>
std::string CheckOpMessage(const char* a_str, const char* b_str, const A& a, const B& b) {
  return std::string(a_str) + " vs " + b_str + " (lhs=" + std::to_string(a) +
         ", rhs=" + std::to_string(b) + ")";
}
}  // namespace internal

#define CHAOS_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::chaos::CheckFailure(__FILE__, __LINE__, #cond, "");        \
    }                                                              \
  } while (0)

#define CHAOS_CHECK_MSG(cond, msg)                                 \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::chaos::CheckFailure(__FILE__, __LINE__, #cond, (msg));     \
    }                                                              \
  } while (0)

#define CHAOS_CHECK_OP(op, a, b)                                                           \
  do {                                                                                     \
    auto&& chaos_check_a = (a);                                                            \
    auto&& chaos_check_b = (b);                                                            \
    if (!(chaos_check_a op chaos_check_b)) [[unlikely]] {                                  \
      ::chaos::CheckFailure(__FILE__, __LINE__, #a " " #op " " #b,                         \
                            ::chaos::internal::CheckOpMessage(#a, #b, chaos_check_a,       \
                                                              chaos_check_b));             \
    }                                                                                      \
  } while (0)

#define CHAOS_CHECK_EQ(a, b) CHAOS_CHECK_OP(==, a, b)
#define CHAOS_CHECK_NE(a, b) CHAOS_CHECK_OP(!=, a, b)
#define CHAOS_CHECK_LT(a, b) CHAOS_CHECK_OP(<, a, b)
#define CHAOS_CHECK_LE(a, b) CHAOS_CHECK_OP(<=, a, b)
#define CHAOS_CHECK_GT(a, b) CHAOS_CHECK_OP(>, a, b)
#define CHAOS_CHECK_GE(a, b) CHAOS_CHECK_OP(>=, a, b)

// Debug-only check: compiled out in NDEBUG builds, for hot paths.
#ifdef NDEBUG
#define CHAOS_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define CHAOS_DCHECK(cond) CHAOS_CHECK(cond)
#endif

// Identifier of a simulated machine within the cluster (0-based).
using MachineId = int32_t;

// Identifier of a streaming partition (0-based; partitions are vertex ranges).
using PartitionId = uint32_t;

constexpr MachineId kNoMachine = -1;

}  // namespace chaos

#endif  // CHAOS_UTIL_COMMON_H_
