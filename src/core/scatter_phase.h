// ScatterPhase: the untemplated scatter-phase driver (paper §4, Fig. 4
// lines 23-33). Streams the edge chunks of every owned partition against
// the partition's vertex-state batch, then joins the randomized steal loop;
// emitted updates are binned by destination partition and written to the
// current superstep's update set. Per-edge work happens inside the typed
// kernel (ProgramKernel::ScatterChunk); this driver compiles once.
#ifndef CHAOS_CORE_SCATTER_PHASE_H_
#define CHAOS_CORE_SCATTER_PHASE_H_

#include "core/engine_core.h"

namespace chaos {

class ScatterPhase {
 public:
  explicit ScatterPhase(EngineCore* core);

  // Runs the full phase: own partitions, stealing, final flush + drain.
  Task<> Run();

 private:
  Task<> ProcessPartition(PartitionId p, bool stolen);

  EngineCore* core_;
  RecordBinner binner_;
  ChunkWriter writer_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_SCATTER_PHASE_H_
