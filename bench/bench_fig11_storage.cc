// Figure 11: SSD vs HDD, BFS and PR, weak scaling normalized to the
// 1-machine SSD runtime. Paper: Chaos scales the same on both; absolute
// runtime is inversely proportional to device bandwidth (HDD ~2x slower).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig11, "Figure 11: SSD vs HDD weak scaling") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Figure 11: SSD vs HDD, weak scaling, normalized to m=1 SSD ==\n");
  PrintHeader({"algo/device", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  for (const std::string name : {"bfs", "pagerank"}) {
    double base_ssd = 0.0;
    for (const bool ssd : {true, false}) {
      PrintCell(name + (ssd ? " SSD" : " HDD"));
      int step = 0;
      for (const int m : MachineSweep()) {
        InputGraph raw = BenchRmat(base + static_cast<uint32_t>(step), false, seed);
        InputGraph prepared = PrepareInput(name, raw);
        ClusterConfig cfg = BenchClusterConfig(
            prepared, m, seed, ssd ? StorageConfig::Ssd() : StorageConfig::Hdd());
        auto result = RunChaosAlgorithm(name, prepared, cfg);
        const double seconds = result.metrics.total_seconds();
        if (m == 1 && ssd) {
          base_ssd = seconds;
        }
        PrintCell(base_ssd > 0 ? seconds / base_ssd : 0.0);
        ++step;
      }
      EndRow();
    }
  }
  std::printf("\npaper: HDD curve ~2x above SSD (bandwidth ratio), same scaling shape\n");
  return 0;
}
