// Edge-case and robustness tests: degenerate graphs, extreme configs, the
// X-Stream baseline engine's internals, and algorithm parameter plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/basic.h"
#include "algorithms/runner.h"
#include "baselines/xstream.h"
#include "graph/generators.h"
#include "graph/ref/reference.h"

namespace chaos {
namespace {

ClusterConfig TinyConfig(int machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 4 << 10;
  cfg.chunk_bytes = 1 << 10;
  cfg.seed = 5;
  return cfg;
}

// ------------------------------------------------------ degenerate inputs

TEST(EdgeCaseTest, EdgelessGraph) {
  InputGraph g;
  g.num_vertices = 64;
  auto result = RunJob(MakeJob("wcc", g, TinyConfig(2)));
  ASSERT_EQ(result.values.size(), 64u);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], static_cast<double>(v));  // all singletons
  }
}

TEST(EdgeCaseTest, SingleVertexSelfLoop) {
  InputGraph g;
  g.num_vertices = 1;
  g.edges.push_back(Edge{0, 0, 1.0f, kEdgeForward});
  auto pr = RunJob(MakeJob("pagerank", g, TinyConfig(1)));
  // Self-loop PR fixed point: rank = 0.15 + 0.85 * rank -> 1.0.
  EXPECT_NEAR(pr.values[0], 1.0, 1e-3);
  auto bfs = RunJob(MakeJob("bfs", MakeUndirected(g), TinyConfig(1)));
  EXPECT_DOUBLE_EQ(bfs.values[0], 0.0);
}

TEST(EdgeCaseTest, AllSelfLoops) {
  InputGraph g;
  g.num_vertices = 16;
  for (VertexId v = 0; v < 16; ++v) {
    g.edges.push_back(Edge{v, v, 1.0f, kEdgeForward});
  }
  auto mis = RunJob(MakeJob("mis", MakeUndirected(g), TinyConfig(2)));
  // Self-loops do not constrain independence: everyone joins.
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(mis.values[v], 1.0);
  }
}

TEST(EdgeCaseTest, StarGraphSkew) {
  // One hub with edges to everyone: the most extreme update skew.
  InputGraph g;
  g.num_vertices = 256;
  for (VertexId v = 1; v < 256; ++v) {
    g.edges.push_back(Edge{0, v, 1.0f, kEdgeForward});
    g.edges.push_back(Edge{v, 0, 1.0f, kEdgeForward});
  }
  auto expect = ref::BfsDepths(g, 0);
  auto result = RunJob(MakeJob("bfs", g, TinyConfig(4)));
  for (VertexId v = 0; v < 256; ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v]));
  }
}

TEST(EdgeCaseTest, MorePartitionsThanSomeMachinesHaveChunks) {
  // A tiny graph on many machines: most storage engines hold nothing for
  // most sets; exhaustion detection must still work.
  InputGraph g = GenerateUniformRandom(64, 100, false, 9);
  auto expect = ref::ComponentLabels(MakeUndirected(g));
  auto result = RunJob(MakeJob("wcc", MakeUndirected(g), TinyConfig(8)));
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v]));
  }
}

TEST(EdgeCaseTest, SingleChunkPerEverything) {
  // Chunk big enough to hold the whole graph: one chunk per set.
  InputGraph g = GenerateUniformRandom(100, 300, false, 11);
  ClusterConfig cfg = TinyConfig(2);
  cfg.chunk_bytes = 64 << 20;
  cfg.memory_budget_bytes = 1 << 20;
  auto expect = ref::PageRank(g, 3);
  AlgoParams params;
  params.iterations = 3;
  auto result = RunJob(MakeJob("pagerank", g, cfg, params));
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR(result.values[v], expect[v], 1e-3 * (1.0 + std::abs(expect[v])));
  }
}

// ---------------------------------------------------------- param plumbing

TEST(ParamsTest, BfsSourceIsHonored) {
  InputGraph g = MakeUndirected(GenerateUniformRandom(128, 512, false, 13));
  AlgoParams params;
  params.source = 17;
  auto result = RunJob(MakeJob("bfs", g, TinyConfig(2), params));
  EXPECT_DOUBLE_EQ(result.values[17], 0.0);
  auto expect = ref::BfsDepths(g, 17);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], static_cast<double>(expect[v]));
  }
}

TEST(ParamsTest, PageRankIterationsControlSupersteps) {
  InputGraph g = GenerateUniformRandom(64, 256, false, 15);
  AlgoParams params;
  params.iterations = 7;
  auto result = RunJob(MakeJob("pagerank", g, TinyConfig(1), params));
  EXPECT_EQ(result.supersteps, 7u);
}

TEST(ParamsTest, SsspFindsWeightedShortestPaths) {
  InputGraph g = MakeUndirected(GenerateUniformRandom(100, 400, true, 17));
  AlgoParams params;
  params.source = 3;
  auto result = RunJob(MakeJob("sssp", g, TinyConfig(4), params));
  auto expect = ref::DijkstraDistances(g, 3);
  for (size_t v = 0; v < expect.size(); ++v) {
    if (std::isinf(expect[v])) {
      EXPECT_TRUE(std::isinf(result.values[v]));
    } else {
      EXPECT_NEAR(result.values[v], expect[v], 1e-2);
    }
  }
}

// ------------------------------------------------------- X-Stream baseline

TEST(XStreamEngineTest, PreprocessTimeIsAccounted) {
  InputGraph g = GenerateUniformRandom(256, 2048, false, 19);
  XStreamConfig cfg;
  cfg.memory_budget_bytes = 4 << 10;
  cfg.chunk_bytes = 1 << 10;
  XStreamEngine<PageRankProgram> engine(cfg, PageRankProgram(3));
  auto result = engine.Run(g);
  EXPECT_GT(result.preprocess_time, 0);
  EXPECT_LT(result.preprocess_time, result.total_time);
  EXPECT_EQ(result.supersteps, 3u);
  EXPECT_GT(result.bytes_read, g.input_wire_bytes());  // input + edges re-read
  EXPECT_GT(result.device_utilization, 0.0);
  EXPECT_LE(result.device_utilization, 1.0);
}

TEST(XStreamEngineTest, PrefetchWindowImprovesRuntime) {
  InputGraph g = GenerateUniformRandom(512, 8192, false, 21);
  XStreamConfig narrow;
  narrow.memory_budget_bytes = 8 << 10;
  narrow.chunk_bytes = 1 << 10;
  narrow.prefetch_window = 1;
  // Make compute commensurate with I/O so overlap matters.
  narrow.cost.ns_per_edge_scatter = 1500.0;
  narrow.cost.ns_per_update_gather = 1500.0;
  XStreamConfig wide = narrow;
  wide.prefetch_window = 8;
  XStreamEngine<PageRankProgram> slow(narrow, PageRankProgram(2));
  XStreamEngine<PageRankProgram> fast(wide, PageRankProgram(2));
  const TimeNs t_narrow = slow.Run(g).total_time;
  const TimeNs t_wide = fast.Run(g).total_time;
  EXPECT_LT(t_wide, t_narrow);
}

TEST(XStreamEngineTest, HddSlowerThanSsdProportionally) {
  InputGraph g = GenerateUniformRandom(256, 4096, false, 23);
  XStreamConfig ssd;
  ssd.memory_budget_bytes = 8 << 10;
  ssd.chunk_bytes = 2 << 10;
  XStreamConfig hdd = ssd;
  hdd.storage = StorageConfig::Hdd();
  XStreamEngine<BfsProgram> a(ssd, BfsProgram(0));
  XStreamEngine<BfsProgram> b(hdd, BfsProgram(0));
  const double ratio = static_cast<double>(b.Run(g).total_time) /
                       static_cast<double>(a.Run(g).total_time);
  EXPECT_GT(ratio, 1.3);  // HDD has half the bandwidth plus higher latency
}

// -------------------------------------------------------------- generators

TEST(EdgeCaseTest, WebGraphSingleHost) {
  WebGraphOptions opt;
  opt.num_pages = 256;
  opt.num_hosts = 1;
  opt.intra_host_fraction = 1.0;
  opt.seed = 25;
  InputGraph g = GenerateWebGraph(opt);
  std::string error;
  EXPECT_TRUE(ValidateGraph(g, &error)) << error;
}

TEST(EdgeCaseTest, GridOneRow) {
  GridGraphOptions opt;
  opt.width = 32;
  opt.height = 1;
  InputGraph g = GenerateGridGraph(opt);
  EXPECT_EQ(g.num_edges(), 2u * 31);
  auto depth = ref::BfsDepths(g, 0);
  EXPECT_EQ(depth[31], 31);
}

}  // namespace
}  // namespace chaos
