// FIFO bandwidth resources: the timing model for storage devices, NIC links
// and per-machine CPUs.
//
// A FifoResource serves requests one at a time in arrival order. Issuing a
// request at time t with service time s completes at
//     done = max(t, busy_until) + s / rate,
// which models queueing delay behind earlier requests exactly the way the
// paper's storage engine behaves ("a storage engine always serves a request
// for a chunk in its entirety before serving the next request", §6.2).
//
// The rate multiplier (SetRate) is the degradation hook used by the fault
// injector: rate 1.0 is nominal hardware speed, rate 0.25 is a 4x-slower
// brownout. Rate changes apply to the *in-flight queue* as well — every
// queued request's projected completion is re-derived from its remaining
// work under the new rate, and sleeping waiters are woken to re-project, so
// a mid-run brownout stretches (and a recovery shrinks) the existing backlog
// instead of only affecting future requests.
#ifndef CHAOS_SIM_RESOURCE_H_
#define CHAOS_SIM_RESOURCE_H_

#include <cmath>
#include <coroutine>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

class FifoResource {
 public:
  FifoResource(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;
  FifoResource(FifoResource&&) = default;

  // Completes when the request has been fully serviced (FIFO behind all
  // earlier requests). `service` is the nominal (rate-1.0) service time.
  Task<> Acquire(TimeNs service) {
    CHAOS_CHECK_GE(service, 0);
    const uint64_t id = next_ticket_id_++;
    const TimeNs start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
    TimeNs target = start + Scaled(service, rate_);
    busy_until_ = target;
    total_busy_ += Scaled(service, rate_);
    ++num_requests_;
    queue_.push_back(Ticket{id, target, service});
    // Sleep until the projected completion. The cached target only goes
    // stale when SetRate re-projects the queue, so the O(queue) ticket scan
    // is paid per rate change, not per wake — the hot no-fault path stays
    // O(1) per request.
    uint64_t seen_epoch = rate_epoch_;
    while (target > sim_->now()) {
      co_await WaitUntilOrRateChange(target);
      if (rate_epoch_ != seen_epoch) {
        seen_epoch = rate_epoch_;
        target = DoneTimeOf(id);
      }
    }
    PopTicket(id);
  }

  // Changes the service-rate multiplier (> 0; 1.0 = nominal). Remaining work
  // of every queued request — including the one in service — is re-projected
  // under the new rate.
  void SetRate(double rate) {
    CHAOS_CHECK_GT(rate, 0.0);
    const TimeNs now = sim_->now();
    if (!queue_.empty()) {
      const TimeNs old_busy_until = busy_until_;
      TimeNs prev = now;
      for (size_t i = 0; i < queue_.size(); ++i) {
        Ticket& t = queue_[i];
        TimeNs remaining_nominal;
        if (i == 0) {
          // The head request is in service; convert its remaining span back
          // to nominal work under the outgoing rate.
          const TimeNs remaining = t.done > now ? t.done - now : 0;
          remaining_nominal =
              static_cast<TimeNs>(std::ceil(static_cast<double>(remaining) * rate_));
        } else {
          remaining_nominal = t.work;  // not started yet
        }
        t.done = prev + Scaled(remaining_nominal, rate);
        prev = t.done;
      }
      busy_until_ = queue_.back().done;
      // The queue is contiguous from `now`, so the busy-time delta equals
      // the shift of the last completion.
      total_busy_ += busy_until_ - old_busy_until;
    }
    rate_ = rate;
    ++rate_epoch_;
    WakeAllWaiters();
  }

  double rate() const { return rate_; }

  // Queueing backlog at time `now` (0 when idle).
  TimeNs Backlog(TimeNs now) const { return busy_until_ > now ? busy_until_ - now : 0; }

  TimeNs busy_until() const { return busy_until_; }
  // Total service time charged; busy fraction = total_busy / horizon.
  TimeNs total_busy() const { return total_busy_; }
  uint64_t num_requests() const { return num_requests_; }
  size_t queue_length() const { return queue_.size(); }
  const std::string& name() const { return name_; }
  Simulator* sim() const { return sim_; }

 private:
  struct Ticket {
    uint64_t id;
    TimeNs done;  // projected completion under the current rate
    TimeNs work;  // nominal (rate-1.0) service time
  };

  static TimeNs Scaled(TimeNs service, double rate) {
    if (rate == 1.0 || service == 0) {
      return service;
    }
    return static_cast<TimeNs>(std::ceil(static_cast<double>(service) / rate));
  }

  TimeNs DoneTimeOf(uint64_t id) const {
    for (const Ticket& t : queue_) {
      if (t.id == id) {
        return t.done;
      }
    }
    CHAOS_CHECK_MSG(false, "FifoResource ticket vanished: " + name_);
    return 0;
  }

  void PopTicket(uint64_t id) {
    // Completions are FIFO except for same-timestamp wake reordering after
    // a rate change, so the front is the overwhelmingly common case.
    if (!queue_.empty() && queue_.front().id == id) {
      queue_.pop_front();
      return;
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->id == id) {
        queue_.erase(it);
        return;
      }
    }
    CHAOS_CHECK_MSG(false, "FifoResource pop of unknown ticket: " + name_);
  }

  struct RateWaiter {
    std::shared_ptr<bool> fired;
    std::coroutine_handle<> h;
  };

  // Awaitable resuming at absolute time `target`, or earlier if SetRate is
  // called first. Both wake paths route through the event queue and a
  // shared fired-flag guards double resumption, so order is deterministic.
  struct RateChangeAwaiter {
    FifoResource* res;
    TimeNs target;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      // Drop entries whose waiter already resumed (their timed callback
      // fired) so the registry tracks only live sleepers.
      auto& waiters = res->rate_waiters_;
      std::erase_if(waiters, [](const RateWaiter& w) { return *w.fired; });
      auto fired = std::make_shared<bool>(false);
      waiters.push_back(RateWaiter{fired, h});
      res->sim_->PostAt(target, [fired, h] {
        if (!*fired) {
          *fired = true;
          h.resume();
        }
      });
    }
    void await_resume() const noexcept {}
  };

  RateChangeAwaiter WaitUntilOrRateChange(TimeNs target) {
    return RateChangeAwaiter{this, target};
  }

  // Wakes every sleeper so it re-projects under the new rate. All handles
  // resume inside ONE posted event, in registration order — same
  // deterministic order as one event per waiter, but a rate change costs a
  // single heap push instead of re-sifting the event heap once per sleeper
  // (SetRate already pays an O(queue) ticket re-projection; this keeps the
  // event-queue side O(log n)).
  void WakeAllWaiters() {
    std::vector<RateWaiter> waiters;
    waiters.swap(rate_waiters_);
    std::vector<std::coroutine_handle<>> to_resume;
    to_resume.reserve(waiters.size());
    for (auto& w : waiters) {
      if (!*w.fired) {
        *w.fired = true;  // the pending timed callback becomes a no-op
        to_resume.push_back(w.h);
      }
    }
    if (to_resume.empty()) {
      return;
    }
    sim_->Post(0, [handles = std::move(to_resume)] {
      for (const auto h : handles) {
        h.resume();
      }
    });
  }

  Simulator* sim_;
  std::string name_;
  double rate_ = 1.0;
  uint64_t rate_epoch_ = 0;  // bumped by SetRate; waiters re-read on change
  TimeNs busy_until_ = 0;
  TimeNs total_busy_ = 0;
  uint64_t num_requests_ = 0;
  uint64_t next_ticket_id_ = 1;
  std::deque<Ticket> queue_;
  std::vector<RateWaiter> rate_waiters_;
};

}  // namespace chaos

#endif  // CHAOS_SIM_RESOURCE_H_
