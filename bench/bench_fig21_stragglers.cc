// Figure 21 (extension): straggler severity vs. randomized work stealing.
//
// A healthy cluster plus one machine degraded to 1/severity of nominal
// speed from t=0 (permanent straggler, injected by the fault subsystem).
// Sweeps severity x {stealing off (alpha=0), stealing on (alpha=1)} and
// reports the simulated runtime of each cell plus how often the victim's
// partitions were actually stolen.
//
// The paper's thesis (§5): uniform-random chunk placement plus randomized
// stealing tolerates imbalance without partitioning smarts — a claim the
// homogeneous benches never exercise. Configuration note: the miniaturized
// default config is storage-bandwidth-bound, which would mask a CPU
// straggler entirely; this bench therefore pins the compute-bound regime
// (1 core per machine, NVMe-class storage) where per-machine compute speed
// is the binding resource, as it is on the paper's testbed once storage is
// fast enough (§9.2, Fig. 11).
//
// The run fails (exit 1) if, under a >= 4x straggler, stealing does not
// strictly beat no-stealing — making `ok` in the chaos-bench JSON an
// executable record of the load-balancing claim.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig21_stragglers, "Figure 21: straggler severity vs work stealing") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (2^scale vertices)");
  opt.AddInt("machines", 4, "simulated machines");
  opt.AddInt("victim", 0, "machine that becomes the straggler");
  opt.AddString("algo", "pagerank", "algorithm to run");
  opt.AddString("target", "cpu", "degraded resource: cpu|storage|nic|machine");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto victim = static_cast<MachineId>(opt.GetInt("victim"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::string algo = opt.GetString("algo");
  FaultTarget target = FaultTarget::kCpu;
  if (!ParseFaultTarget(opt.GetString("target"), &target)) {
    std::fprintf(stderr, "unknown --target '%s'\n", opt.GetString("target").c_str());
    return 1;
  }
  if (victim < 0 || victim >= machines) {
    std::fprintf(stderr, "--victim must be in [0, %d)\n", machines);
    return 1;
  }

  auto g = std::make_shared<InputGraph>(PrepareInput(algo, BenchRmat(scale, false, seed)));

  auto configure = [=](double severity, double alpha) {
    ClusterConfig cfg = BenchClusterConfig(*g, machines, seed);
    // Compute-bound regime: one core per machine, NVMe-class devices.
    cfg.cost.cores = 1;
    cfg.storage.bandwidth_bps = 2e9;
    // ~4+ streaming partitions per machine so helpers can take over whole
    // untouched partitions (finer steal granularity than one giant scan).
    cfg.memory_budget_bytes =
        std::max<uint64_t>(g->num_vertices * 8 / (4 * static_cast<uint64_t>(machines)), 1024);
    cfg.alpha = alpha;
    if (severity > 1.0) {
      cfg.faults = FaultSchedule::Straggler(victim, severity, target);
    }
    return cfg;
  };

  const std::vector<double> severities = {1.0, 2.0, 4.0, 8.0};
  // Points: (severity x {steal off, steal on}).
  Sweep<AlgoResult> sweep;
  for (const double severity : severities) {
    for (const double alpha : {0.0, 1.0}) {
      sweep.Add([=] { return RunJob(MakeJob(algo, *g, configure(severity, alpha))); });
    }
  }
  const std::vector<AlgoResult> results = sweep.Run();

  std::printf("== Figure 21: %s, %d machines, machine %d straggling (%s), RMAT-%u ==\n",
              algo.c_str(), machines, victim, FaultTargetName(target), scale);
  PrintHeader({"severity", "steal-off s", "steal-on s", "speedup", "victim steals"});
  bool invariant_ok = true;
  size_t idx = 0;
  for (const double severity : severities) {
    const AlgoResult& off = results[idx++];
    const AlgoResult& on = results[idx++];
    uint64_t victim_steals = 0;
    for (const auto& r : on.metrics.faults) {
      victim_steals += on.metrics.StealsDuringFault(r);
    }
    const double off_s = off.metrics.total_seconds();
    const double on_s = on.metrics.total_seconds();
    PrintCell(Fixed(severity, 0) + "x");
    PrintCell(off_s, "%.4f");
    PrintCell(on_s, "%.4f");
    PrintCell(off_s / on_s);
    PrintCell(Fixed(static_cast<double>(victim_steals), 0));
    EndRow();
    const std::string prefix = "fig21.sev" + Fixed(severity, 0);
    RecordMetric(prefix + ".steal_off_sim_s", off_s);
    RecordMetric(prefix + ".steal_on_sim_s", on_s);
    RecordMetric(prefix + ".victim_steals", static_cast<double>(victim_steals));
    // The load-balancing claim: under a serious straggler, stealing must
    // strictly win (and the victim's partitions must actually get stolen).
    if (severity >= 4.0 && (on_s >= off_s || victim_steals == 0)) {
      invariant_ok = false;
    }
  }
  if (!invariant_ok) {
    std::printf("\nFAIL: stealing did not strictly beat no-stealing under a >=4x straggler\n");
    return 1;
  }
  std::printf("\nstealing absorbs the straggler; without it the victim gates every barrier\n");
  return 0;
}
