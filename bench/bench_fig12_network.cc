// Figure 12: 40 GigE vs 1 GigE, BFS and PR, weak scaling normalized to the
// 1-machine runtime. With 1 GigE the network (1/4 of disk bandwidth in the
// paper's setup) becomes the bottleneck and scaling degrades badly —
// the experiment behind the "network must be at least as fast as storage"
// requirement (§9.4).
//
// Also hosts the wire-format combining A/B (ClusterConfig::wire_combine):
// the same fixed-seed job with packed columnar update frames off vs on —
// combining is a pure re-encode (results identical) and the packed frame is
// only used when smaller, so simulated NIC bytes must strictly drop. CI
// asserts fig12.wire_combine.*.on_bytes < .off_bytes.
#include <utility>

#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig12, "Figure 12: 40 GigE vs 1 GigE weak scaling") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "pagerank"};
  const std::vector<bool> nets = {true, false};  // 40GigE, 1GigE

  Sweep<double> sweep;
  for (const std::string& name : algos) {
    for (const bool fast : nets) {
      int step = 0;
      for (const int m : MachineSweep()) {
        const uint32_t scale = base + static_cast<uint32_t>(step);
        sweep.Add([name, scale, fast, m, seed] {
          InputGraph prepared = PrepareInput(name, BenchRmat(scale, false, seed));
          ClusterConfig cfg = BenchClusterConfig(
              prepared, m, seed, StorageConfig::Ssd(),
              fast ? NetworkConfig::FortyGigE() : NetworkConfig::OneGigE());
          return RunJob(MakeJob(name, prepared, cfg)).metrics.total_seconds();
        });
        ++step;
      }
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 12: 40GigE vs 1GigE, weak scaling, normalized to m=1 ==\n");
  PrintHeader({"algo/net", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    for (const bool fast : nets) {
      PrintCell(name + (fast ? " 40G" : " 1G"));
      double base_seconds = 0.0;
      for (const int m : MachineSweep()) {
        const double s = seconds[idx++];
        if (m == 1) {
          base_seconds = s;  // each curve normalized to its own m=1
        }
        PrintCell(base_seconds > 0 ? s / base_seconds : 0.0);
        RecordMetric("fig12." + name + (fast ? ".40g" : ".1g") + ".m" + std::to_string(m) +
                         ".sim_s",
                     s);
      }
      EndRow();
    }
  }
  std::printf("\npaper: 1GigE curves blow up to 5-9x while 40GigE stays < 2x\n");

  // Wire-format combining A/B (see the header comment): {network_bytes,
  // update_wire_bytes_saved} per algo, combining off vs on, at a machine
  // count with real remote update traffic.
  const uint32_t cscale = base + 2;
  const int cm = 4;
  Sweep<std::pair<uint64_t, uint64_t>> combine;
  for (const std::string& name : algos) {
    for (const bool on : {false, true}) {
      combine.Add([name, cscale, cm, seed, on] {
        InputGraph prepared = PrepareInput(name, BenchRmat(cscale, false, seed));
        ClusterConfig cfg = BenchClusterConfig(prepared, cm, seed);
        cfg.wire_combine = on;
        const auto result = RunJob(MakeJob(name, prepared, cfg));
        return std::make_pair(result.metrics.network_bytes,
                              result.metrics.UpdateWireBytesSaved());
      });
    }
  }
  const auto cbytes = combine.Run();
  std::printf("\n== wire-format combining (m=%d, scale=%u): NIC bytes off vs on ==\n",
              cm, cscale);
  PrintHeader({"algo", "off_bytes", "on_bytes", "saved"});
  size_t cidx = 0;
  for (const std::string& name : algos) {
    const uint64_t off_bytes = cbytes[cidx++].first;
    const uint64_t on_bytes = cbytes[cidx].first;
    const uint64_t saved = cbytes[cidx++].second;
    PrintCell(name);
    PrintCell(static_cast<double>(off_bytes), "%.0f");
    PrintCell(static_cast<double>(on_bytes), "%.0f");
    PrintCell(static_cast<double>(saved), "%.0f");
    EndRow();
    RecordMetric("fig12.wire_combine." + name + ".off_bytes",
                 static_cast<double>(off_bytes));
    RecordMetric("fig12.wire_combine." + name + ".on_bytes",
                 static_cast<double>(on_bytes));
    RecordMetric("fig12.wire_combine." + name + ".saved_bytes",
                 static_cast<double>(saved));
  }
  return 0;
}
