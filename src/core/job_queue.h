// Ready-queue policy and machine bookkeeping for the job scheduler.
//
// Both pieces are deliberately dumb, fully deterministic data structures:
// the ready queue is a totally ordered list (policy key, then submission
// index as the final tie-break) and the ledger hands out the lowest-id free
// machines first, so a schedule is a pure function of the trace and the
// ServingConfig — never of host thread count or hash-map iteration order.
#ifndef CHAOS_CORE_JOB_QUEUE_H_
#define CHAOS_CORE_JOB_QUEUE_H_

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/common.h"

namespace chaos {

enum class SchedPolicy {
  kFifo,      // non-preemptive, strict arrival order
  kPriority,  // preemptive priority; arrival order within a class
};

inline const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kPriority:
      return "priority";
  }
  return "?";
}

inline std::optional<SchedPolicy> SchedPolicyByName(const std::string& name) {
  if (name == "fifo") {
    return SchedPolicy::kFifo;
  }
  if (name == "priority") {
    return SchedPolicy::kPriority;
  }
  return std::nullopt;
}

// One queued job, identified by its submission index.
struct ReadyJob {
  int job = 0;
  int priority = 0;
  TimeNs arrival = 0;
};

// Policy-ordered ready queue. Front() is the job the scheduler must place
// next; the dispatch loop stops at the first Front() that does not fit, so
// a lower-ranked job can never overtake one the policy ranks higher (no
// backfill, hence no priority inversion by construction).
class ReadyQueue {
 public:
  explicit ReadyQueue(SchedPolicy policy) : policy_(policy) {}

  bool empty() const { return jobs_.empty(); }
  size_t size() const { return jobs_.size(); }

  void Push(const ReadyJob& job) {
    const auto pos = std::upper_bound(
        jobs_.begin(), jobs_.end(), job,
        [this](const ReadyJob& a, const ReadyJob& b) { return Before(a, b); });
    jobs_.insert(pos, job);
  }

  const ReadyJob& Front() const {
    CHAOS_DCHECK(!jobs_.empty());
    return jobs_.front();
  }

  void PopFront() {
    CHAOS_DCHECK(!jobs_.empty());
    jobs_.erase(jobs_.begin());
  }

  // Highest priority among queued jobs (for tests and metrics).
  int MaxPriority() const {
    int best = std::numeric_limits<int>::min();
    for (const ReadyJob& j : jobs_) {
      best = std::max(best, j.priority);
    }
    return best;
  }

 private:
  bool Before(const ReadyJob& a, const ReadyJob& b) const {
    if (policy_ == SchedPolicy::kPriority && a.priority != b.priority) {
      return a.priority > b.priority;
    }
    if (a.arrival != b.arrival) {
      return a.arrival < b.arrival;
    }
    return a.job < b.job;
  }

  SchedPolicy policy_;
  std::vector<ReadyJob> jobs_;  // kept sorted by Before()
};

// Tracks which serving-cluster machines are free. Placement is first-fit on
// machine id: a job asking for k machines gets the k lowest-id free ones.
class MachineLedger {
 public:
  explicit MachineLedger(int machines) : busy_(static_cast<size_t>(machines), false) {}

  int machines() const { return static_cast<int>(busy_.size()); }

  int FreeCount() const {
    int n = 0;
    for (const bool b : busy_) {
      n += b ? 0 : 1;
    }
    return n;
  }

  bool Fits(int count) const { return count <= FreeCount(); }

  // Claims the `count` lowest-id free machines. Caller must check Fits().
  std::vector<int> Claim(int count) {
    std::vector<int> ids;
    ids.reserve(static_cast<size_t>(count));
    for (size_t m = 0; m < busy_.size() && static_cast<int>(ids.size()) < count; ++m) {
      if (!busy_[m]) {
        busy_[m] = true;
        ids.push_back(static_cast<int>(m));
      }
    }
    CHAOS_CHECK_MSG(static_cast<int>(ids.size()) == count, "Claim() without a fitting hole");
    return ids;
  }

  void Release(const std::vector<int>& ids) {
    for (const int m : ids) {
      CHAOS_DCHECK(busy_[static_cast<size_t>(m)]);
      busy_[static_cast<size_t>(m)] = false;
    }
  }

 private:
  std::vector<bool> busy_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_JOB_QUEUE_H_
