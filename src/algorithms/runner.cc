#include "algorithms/runner.h"

#include <utility>

#include "algorithms/basic.h"
#include "algorithms/evolving.h"
#include "algorithms/incremental.h"
#include "algorithms/mcst.h"
#include "algorithms/mis.h"
#include "algorithms/scc.h"
#include "core/job_execution.h"

namespace chaos {
namespace {

// Calls `fn(prog)` with the named algorithm's program instance. All three
// type-erased entry points funnel through here.
template <typename Fn>
auto DispatchAlgorithm(const std::string& name, const AlgoParams& params, Fn&& fn) {
  if (name == "bfs") {
    return fn(BfsProgram(params.source));
  }
  if (name == "wcc") {
    return fn(WccProgram{});
  }
  if (name == "mcst") {
    return fn(McstProgram{});
  }
  if (name == "mis") {
    return fn(MisProgram{});
  }
  if (name == "sssp") {
    return fn(SsspProgram(params.source));
  }
  if (name == "pagerank") {
    return fn(PageRankProgram(params.iterations, params.damping));
  }
  if (name == "scc") {
    return fn(SccProgram{});
  }
  if (name == "conductance") {
    return fn(ConductanceProgram{});
  }
  if (name == "spmv") {
    return fn(SpmvProgram{});
  }
  if (name == "bp") {
    return fn(BpProgram(params.iterations, params.bp_damping));
  }
  CHAOS_CHECK_MSG(false, "unknown algorithm: " + name);
  return fn(BfsProgram(params.source));
}

template <GasProgram P>
AlgoResult ToAlgoResult(RunResult<P>&& run) {
  AlgoResult result;
  result.metrics = std::move(run.metrics);
  result.values = std::move(run.values);
  result.supersteps = run.supersteps;
  result.crashed = run.crashed;
  result.output_records = run.outputs.size();
  if constexpr (std::is_same_v<P, ConductanceProgram>) {
    result.scalar = run.final_global.conductance;
  }
  if constexpr (std::is_same_v<P, McstProgram>) {
    double total = 0.0;
    for (const auto& edge : run.outputs) {
      total += static_cast<double>(edge.w);
    }
    result.scalar = total;
  }
  return result;
}

template <GasProgram P>
AlgoResult RunChaosWith(P prog, const InputGraph& input, const ClusterConfig& config) {
  Cluster<P> cluster(config, std::move(prog));
  return ToAlgoResult(cluster.Run(input));
}

// The RunResult<P> -> AlgoResult conversion, packaged for injection into
// core's TypedJobExecution (which cannot name program types itself).
struct FinalizeToAlgoResult {
  template <GasProgram P>
  AlgoResult operator()(RunResult<P>&& run) const {
    return ToAlgoResult(std::move(run));
  }
};

template <GasProgram P>
XStreamRunResult RunXStreamWith(P prog, const InputGraph& input, const XStreamConfig& config) {
  XStreamEngine<P> engine(config, std::move(prog));
  XStreamResult<P> run = engine.Run(input);
  XStreamRunResult result;
  result.values = std::move(run.values);
  result.supersteps = run.supersteps;
  result.total_time = run.total_time;
  result.preprocess_time = run.preprocess_time;
  result.bytes_moved = run.bytes_read + run.bytes_written;
  result.output_records = run.outputs.size();
  if constexpr (std::is_same_v<P, ConductanceProgram>) {
    result.scalar = run.final_global.conductance;
  }
  if constexpr (std::is_same_v<P, McstProgram>) {
    double total = 0.0;
    for (const auto& edge : run.outputs) {
      total += static_cast<double>(edge.w);
    }
    result.scalar = total;
  }
  return result;
}

// Evolving runs bind their own program set: BFS swaps to the warm-startable
// IncBfsProgram (the level-synchronous BfsProgram cannot resume from a
// reseeded state); SSSP and WCC warm-start natively. Extract() of the
// substitute is bitwise-compatible with the static program's.
template <typename Fn>
auto DispatchEvolving(const std::string& name, const AlgoParams& params, Fn&& fn) {
  if (name == "bfs") {
    return fn(IncBfsProgram(params.source));
  }
  if (name == "sssp") {
    return fn(SsspProgram(params.source));
  }
  if (name == "wcc") {
    return fn(WccProgram{});
  }
  CHAOS_CHECK_MSG(false, "evolving mode supports bfs/sssp/wcc, got " + name);
  return fn(IncBfsProgram(params.source));
}

}  // namespace

const std::vector<AlgorithmInfo>& Algorithms() {
  // Table 1 order: BFS, WCC, MCST, MIS, SSSP on undirected inputs; SCC, PR,
  // Cond, SpMV, BP on directed inputs (SCC additionally needs reverse
  // records for its backward phase).
  static const std::vector<AlgorithmInfo> kAlgorithms = {
      {"bfs", true, false, false},  {"wcc", true, false, false},
      {"mcst", true, false, true},  {"mis", true, false, false},
      {"sssp", true, false, true},  {"pagerank", false, false, false},
      {"scc", false, true, false},  {"conductance", false, false, false},
      {"spmv", false, false, false}, {"bp", false, false, false},
  };
  return kAlgorithms;
}

const AlgorithmInfo& AlgorithmByName(const std::string& name) {
  for (const AlgorithmInfo& info : Algorithms()) {
    if (info.name == name) {
      return info;
    }
  }
  CHAOS_CHECK_MSG(false, "unknown algorithm: " + name);
  return Algorithms().front();
}

InputGraph PrepareInput(const std::string& name, const InputGraph& raw) {
  const AlgorithmInfo& info = AlgorithmByName(name);
  if (info.needs_undirected) {
    return MakeUndirected(raw);
  }
  if (info.needs_bidirected) {
    return MakeBidirected(raw);
  }
  return raw;
}

JobResult RunJob(const JobSpec& spec) {
  CHAOS_CHECK_MSG(spec.input != nullptr, "JobSpec without an input graph");
  JobResult result;
  AlgoResult algo =
      spec.mutations.active()
          ? DispatchEvolving(spec.algorithm, spec.params,
                             [&](auto prog) {
                               // spec.input is RAW here; the controller
                               // prepares it per epoch. The recovery-capable
                               // driver degenerates to a plain run when no
                               // fault fires.
                               return ToAlgoResult(RunEvolvingWithRecovery(
                                   spec.cluster, std::move(prog), *spec.input, spec.algorithm,
                                   spec.mutations, spec.recover ? spec.recovery : RecoveryOptions{},
                                   &result.recovery));
                             })
          : DispatchAlgorithm(spec.algorithm, spec.params, [&](auto prog) {
              if (spec.recover) {
                return ToAlgoResult(RunWithRecovery(spec.cluster, std::move(prog), *spec.input,
                                                    spec.recovery, &result.recovery));
              }
              return RunChaosWith(std::move(prog), *spec.input, spec.cluster);
            });
  static_cast<AlgoResult&>(result) = std::move(algo);
  // Synthesize the trivial schedule of an isolated run: dispatched on
  // arrival, one slice, no queueing.
  result.sched.admitted = true;
  result.sched.completed = !result.crashed;
  result.sched.arrival = spec.arrival;
  result.sched.first_dispatch = spec.arrival;
  result.sched.service_time =
      spec.recover ? result.recovery.end_to_end_time : result.metrics.total_time;
  result.sched.completion = spec.arrival + result.sched.service_time;
  result.sched.supersteps = result.supersteps;
  result.sched.slices = 1;
  result.sched.machines = spec.cluster.machines;
  return result;
}

std::unique_ptr<JobExecution> MakeJobExecution(const JobSpec& spec) {
  CHAOS_CHECK_MSG(spec.input != nullptr, "JobSpec without an input graph");
  if (spec.mutations.active()) {
    // Sliced evolving execution: the controller (and its MutationFeed)
    // outlives every slice via the shared_ptr captured in the attach hook,
    // and the spec handed to the execution swaps the RAW input for the
    // controller's epoch-0 prepared graph (aliased to the same owner).
    return DispatchEvolving(
        spec.algorithm, spec.params, [&](auto prog) -> std::unique_ptr<JobExecution> {
          using P = decltype(prog);
          auto ctrl = std::make_shared<EvolvingController<P>>(prog, spec.algorithm, *spec.input,
                                                              spec.mutations);
          JobSpec prepared_spec = spec;
          prepared_spec.input =
              std::shared_ptr<const InputGraph>(ctrl, &ctrl->initial_prepared());
          auto exec = std::make_unique<TypedJobExecution<P, FinalizeToAlgoResult>>(
              std::move(prepared_spec), std::move(prog), FinalizeToAlgoResult{});
          exec->set_attach_hook([ctrl](Cluster<P>& cluster, uint64_t applied_epochs) {
            ctrl->Attach(&cluster, applied_epochs);
          });
          return exec;
        });
  }
  return DispatchAlgorithm(spec.algorithm, spec.params,
                           [&](auto prog) -> std::unique_ptr<JobExecution> {
                             return MakeTypedJobExecution(spec, std::move(prog),
                                                          FinalizeToAlgoResult{});
                           });
}

TraceRunResult RunJobTrace(const std::vector<JobSpec>& specs, const ServingConfig& serving) {
  std::vector<std::unique_ptr<JobExecution>> executions;
  executions.reserve(specs.size());
  std::vector<JobExecution*> handles;
  handles.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    executions.push_back(MakeJobExecution(spec));
    handles.push_back(executions.back().get());
  }
  ScheduleResult schedule = RunJobSchedule(serving, handles);
  TraceRunResult out;
  out.metrics = schedule.metrics;
  out.events = std::move(schedule.events);
  out.jobs.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    out.jobs[i].sched = schedule.jobs[i];
    if (schedule.jobs[i].completed) {
      static_cast<AlgoResult&>(out.jobs[i]) = executions[i]->TakeResult();
    }
  }
  return out;
}

AlgoResult RunChaosAlgorithm(const std::string& name, const InputGraph& prepared,
                             const ClusterConfig& config, const AlgoParams& params) {
  return RunJob(MakeJob(name, prepared, config, params));
}

AlgoResult RunChaosAlgorithmWithRecovery(const std::string& name, const InputGraph& prepared,
                                         const ClusterConfig& config, const AlgoParams& params,
                                         const RecoveryOptions& recovery,
                                         RecoveryReport* report) {
  JobSpec spec = MakeJob(name, prepared, config, params);
  spec.recover = true;
  spec.recovery = recovery;
  JobResult result = RunJob(spec);
  if (report != nullptr) {
    *report = result.recovery;
  }
  return std::move(static_cast<AlgoResult&>(result));
}

XStreamRunResult RunXStreamAlgorithm(const std::string& name, const InputGraph& prepared,
                                     const XStreamConfig& config, const AlgoParams& params) {
  return DispatchAlgorithm(name, params, [&](auto prog) {
    return RunXStreamWith(std::move(prog), prepared, config);
  });
}

}  // namespace chaos
