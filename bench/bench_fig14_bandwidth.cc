// Figure 14: aggregate storage bandwidth achieved during weak scaling,
// normalized to the 1-machine bandwidth, against the theoretical maximum
// (m x device bandwidth). Paper: Chaos scales linearly and stays within 3%
// of the available storage bandwidth.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig14, "Figure 14: aggregate storage bandwidth during weak scaling") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  opt.AddString("algos", "bfs,pagerank,wcc,sssp,spmv", "comma list (all ten = paper)");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  std::vector<std::string> algos;
  {
    std::string s = opt.GetString("algos");
    size_t pos = 0;
    while (pos != std::string::npos) {
      const size_t comma = s.find(',', pos);
      algos.push_back(s.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  Sweep<double> sweep;
  for (const auto& name : algos) {
    int step = 0;
    for (const int m : MachineSweep()) {
      const uint32_t scale = base + static_cast<uint32_t>(step);
      sweep.Add([name, scale, m, seed] {
        InputGraph prepared =
            PrepareInput(name, BenchRmat(scale, AlgorithmByName(name).needs_weights, seed));
        ClusterConfig cfg = BenchClusterConfig(prepared, m, seed);
        return RunJob(MakeJob(name, prepared, cfg)).metrics.AggregateStorageBandwidth();
      });
      ++step;
    }
  }
  const std::vector<double> bandwidths = sweep.Run();

  std::printf("== Figure 14: aggregate storage bandwidth, normalized to m=1 ==\n");
  PrintHeader({"algorithm", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "of max@32"});
  size_t idx = 0;
  for (const auto& name : algos) {
    PrintCell(name);
    double base_bw = 0.0;
    double frac_of_max = 0.0;
    for (const int m : MachineSweep()) {
      const double bw = bandwidths[idx++];
      if (m == 1) {
        base_bw = bw;
      }
      PrintCell(base_bw > 0 ? bw / base_bw : 0.0, "%.1f");
      RecordMetric("fig14." + name + ".m" + std::to_string(m) + ".agg_bw_bps", bw);
      frac_of_max = bw / (StorageConfig::Ssd().bandwidth_bps * m);
    }
    PrintCell(100.0 * frac_of_max, "%.0f%%");
    RecordMetric("fig14." + name + ".frac_of_max_at_32", frac_of_max);
    EndRow();
  }
  std::printf("\nmax line: m x %s per machine; paper: within 3%% of max, linear scaling\n",
              FormatBandwidth(StorageConfig::Ssd().bandwidth_bps).c_str());
  return 0;
}
