// The "simple" GAS benchmark programs: PageRank, BFS, WCC, SSSP, SpMV,
// Conductance and Belief Propagation (7 of the paper's 10 algorithms,
// Table 1). Each program is a small header-only POD-state class satisfying
// the GasProgram concept; the remaining three (MIS, SCC, MCST) live in
// their own headers.
#ifndef CHAOS_ALGORITHMS_BASIC_H_
#define CHAOS_ALGORITHMS_BASIC_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/gas.h"
#include "graph/types.h"
#include "util/rng.h"

namespace chaos {

// --------------------------------------------------------------- PageRank
// rank = 0.15 + 0.85 * sum(rank_u / deg_u) over in-neighbors, fixed
// iteration count (paper Fig. 2).
class PageRankProgram {
 public:
  static constexpr const char* kName = "pagerank";
  static constexpr bool kNeedsOutDegrees = true;

  struct VertexState {
    float rank;
    uint32_t degree;
  };
  using UpdateValue = float;
  using Accumulator = float;
  struct GlobalState {
    uint32_t iterations;
  };
  using OutputRecord = NoOutput;

  explicit PageRankProgram(uint32_t iterations = 5, float damping = 0.85f)
      : iterations_(iterations), damping_(damping) {}

  GlobalState InitGlobal(uint64_t) const { return GlobalState{iterations_}; }
  GlobalState InitLocal() const { return GlobalState{0}; }
  Accumulator InitAccum() const { return 0.0f; }
  VertexState InitVertex(const GlobalState&, VertexId, uint32_t degree) const {
    return VertexState{1.0f, degree};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& src, const Edge& e,
               Emit&& emit) const {
    if (e.flags != kEdgeForward) {
      return;
    }
    emit(e.dst, src.degree > 0 ? src.rank / static_cast<float>(src.degree) : 0.0f);
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    a += u;
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const { a += b; }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState&, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    v.rank = (1.0f - damping_) + damping_ * a;
    return true;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  bool Advance(GlobalState& g, uint64_t superstep, uint64_t) const {
    return superstep + 1 >= g.iterations;
  }
  double Extract(const VertexState& v) const { return v.rank; }

 private:
  uint32_t iterations_;
  float damping_;
};

// -------------------------------------------------------------------- BFS
// Level-synchronous BFS producing depth and parent per vertex.
class BfsProgram {
 public:
  static constexpr const char* kName = "bfs";
  static constexpr bool kNeedsOutDegrees = false;
  static constexpr VertexId kNone = ~VertexId{0};

  struct VertexState {
    int64_t depth;
    VertexId parent;
  };
  struct UpdateValue {
    VertexId parent;
  };
  struct Accumulator {
    VertexId best_parent;
    uint8_t valid;
  };
  struct GlobalState {
    VertexId source;
    int64_t level;
  };
  using OutputRecord = NoOutput;

  explicit BfsProgram(VertexId source = 0) : source_(source) {}

  GlobalState InitGlobal(uint64_t) const { return GlobalState{source_, 0}; }
  GlobalState InitLocal() const { return GlobalState{0, 0}; }
  Accumulator InitAccum() const { return Accumulator{kNone, 0}; }
  VertexState InitVertex(const GlobalState& g, VertexId v, uint32_t) const {
    return v == g.source ? VertexState{0, v} : VertexState{-1, kNone};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState& g, VertexId src, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (e.flags == kEdgeForward && s.depth == g.level) {
      emit(e.dst, UpdateValue{src});
    }
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (!a.valid || u.parent < a.best_parent) {
      a.best_parent = u.parent;
      a.valid = 1;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    if (b.valid && (!a.valid || b.best_parent < a.best_parent)) {
      a = b;
    }
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState& g, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    if (v.depth < 0 && a.valid) {
      v.depth = g.level + 1;
      v.parent = a.best_parent;
      return true;
    }
    return false;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  bool Advance(GlobalState& g, uint64_t, uint64_t changed) const {
    ++g.level;
    return changed == 0;
  }
  double Extract(const VertexState& v) const { return static_cast<double>(v.depth); }

 private:
  VertexId source_;
};

// -------------------------------------------------------------------- WCC
// Min-label propagation; converges when no label improves. Labels scatter
// only from vertices whose label changed in the previous iteration.
class WccProgram {
 public:
  static constexpr const char* kName = "wcc";
  static constexpr bool kNeedsOutDegrees = false;

  struct VertexState {
    VertexId label;
    uint8_t changed;
  };
  struct UpdateValue {
    VertexId label;
  };
  struct Accumulator {
    VertexId min_label;
    uint8_t valid;
  };
  using GlobalState = NoGlobal;
  using OutputRecord = NoOutput;

  GlobalState InitGlobal(uint64_t) const { return {}; }
  GlobalState InitLocal() const { return {}; }
  Accumulator InitAccum() const { return Accumulator{0, 0}; }
  VertexState InitVertex(const GlobalState&, VertexId v, uint32_t) const {
    return VertexState{v, 1};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (s.changed) {
      emit(e.dst, UpdateValue{s.label});
    }
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (!a.valid || u.label < a.min_label) {
      a.min_label = u.label;
      a.valid = 1;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    if (b.valid && (!a.valid || b.min_label < a.min_label)) {
      a = b;
    }
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState&, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    const bool improved = a.valid && a.min_label < v.label;
    if (improved) {
      v.label = a.min_label;
    }
    v.changed = improved ? 1 : 0;
    return improved;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  bool Advance(GlobalState&, uint64_t, uint64_t changed) const { return changed == 0; }
  double Extract(const VertexState& v) const { return static_cast<double>(v.label); }
};

// ------------------------------------------------------------------- SSSP
// Bellman-Ford over weighted arcs.
class SsspProgram {
 public:
  static constexpr const char* kName = "sssp";
  static constexpr bool kNeedsOutDegrees = false;

  struct VertexState {
    float dist;
    uint8_t changed;
  };
  struct UpdateValue {
    float dist;
  };
  struct Accumulator {
    float min_dist;
    uint8_t valid;
  };
  struct GlobalState {
    VertexId source;
  };
  using OutputRecord = NoOutput;

  explicit SsspProgram(VertexId source = 0) : source_(source) {}

  static constexpr float kInf = std::numeric_limits<float>::infinity();

  GlobalState InitGlobal(uint64_t) const { return GlobalState{source_}; }
  GlobalState InitLocal() const { return GlobalState{0}; }
  Accumulator InitAccum() const { return Accumulator{kInf, 0}; }
  VertexState InitVertex(const GlobalState& g, VertexId v, uint32_t) const {
    return v == g.source ? VertexState{0.0f, 1} : VertexState{kInf, 0};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (e.flags == kEdgeForward && s.changed) {
      emit(e.dst, UpdateValue{s.dist + e.weight});
    }
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (!a.valid || u.dist < a.min_dist) {
      a.min_dist = u.dist;
      a.valid = 1;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    if (b.valid && (!a.valid || b.min_dist < a.min_dist)) {
      a = b;
    }
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState&, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    const bool improved = a.valid && a.min_dist < v.dist;
    if (improved) {
      v.dist = a.min_dist;
    }
    v.changed = improved ? 1 : 0;
    return improved;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  bool Advance(GlobalState&, uint64_t, uint64_t changed) const { return changed == 0; }
  double Extract(const VertexState& v) const { return static_cast<double>(v.dist); }

 private:
  VertexId source_;
};

// ------------------------------------------------------------------- SpMV
// One iteration of y = A^T x with x_v = 1 / (1 + (v mod 16)).
class SpmvProgram {
 public:
  static constexpr const char* kName = "spmv";
  static constexpr bool kNeedsOutDegrees = false;

  struct VertexState {
    float x;
    float y;
  };
  using UpdateValue = float;
  using Accumulator = float;
  using GlobalState = NoGlobal;
  using OutputRecord = NoOutput;

  static float InputVector(VertexId v) { return 1.0f / (1.0f + static_cast<float>(v % 16)); }

  GlobalState InitGlobal(uint64_t) const { return {}; }
  GlobalState InitLocal() const { return {}; }
  Accumulator InitAccum() const { return 0.0f; }
  VertexState InitVertex(const GlobalState&, VertexId v, uint32_t) const {
    return VertexState{InputVector(v), 0.0f};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    emit(e.dst, s.x * e.weight);
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    a += u;
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const { a += b; }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState&, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    v.y = a;
    return false;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  // SpMV always advances; the runner bounds the superstep count.
  bool Advance(GlobalState&, uint64_t, uint64_t) const { return true; }
  double Extract(const VertexState& v) const { return static_cast<double>(v.y); }
};

// ------------------------------------------------------------ Conductance
// Conductance of S = {v : v odd}: cut(S, S̄) / min(vol(S), vol(S̄)), one
// scatter/gather pass; counters fold through the global aggregator.
class ConductanceProgram {
 public:
  static constexpr const char* kName = "conductance";
  static constexpr bool kNeedsOutDegrees = false;

  struct VertexState {
    uint8_t in_s;
  };
  struct UpdateValue {
    uint8_t src_in_s;
  };
  struct Accumulator {
    uint64_t cut;
    uint64_t vol_in;
    uint64_t vol_out;
  };
  struct GlobalState {
    uint64_t cut;
    uint64_t vol_in;
    uint64_t vol_out;
    double conductance;
  };
  using OutputRecord = NoOutput;

  static bool InSubset(VertexId v) { return (v & 1) != 0; }

  GlobalState InitGlobal(uint64_t) const { return GlobalState{0, 0, 0, 0.0}; }
  GlobalState InitLocal() const { return GlobalState{0, 0, 0, 0.0}; }
  Accumulator InitAccum() const { return Accumulator{0, 0, 0}; }
  VertexState InitVertex(const GlobalState&, VertexId v, uint32_t) const {
    return VertexState{InSubset(v) ? uint8_t{1} : uint8_t{0}};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    emit(e.dst, UpdateValue{s.in_s});
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState& dst, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (u.src_in_s) {
      ++a.vol_in;
    } else {
      ++a.vol_out;
    }
    if (u.src_in_s != dst.in_s) {
      ++a.cut;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    a.cut += b.cut;
    a.vol_in += b.vol_in;
    a.vol_out += b.vol_out;
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState&, VertexId, VertexState&, const Accumulator& a, GlobalState& local,
             Emit&&, Sink&&) const {
    local.cut += a.cut;
    local.vol_in += a.vol_in;
    local.vol_out += a.vol_out;
    return false;
  }

  void ReduceGlobal(GlobalState& g, const GlobalState& other) const {
    g.cut += other.cut;
    g.vol_in += other.vol_in;
    g.vol_out += other.vol_out;
  }

  bool Advance(GlobalState& g, uint64_t, uint64_t) const {
    const uint64_t denom = g.vol_in < g.vol_out ? g.vol_in : g.vol_out;
    g.conductance = denom == 0 ? 0.0 : static_cast<double>(g.cut) / static_cast<double>(denom);
    return true;  // single superstep
  }
  double Extract(const VertexState& v) const { return static_cast<double>(v.in_s); }
};

// --------------------------------------------------------------------- BP
// Simplified loopy belief propagation for binary labels: per iteration,
// belief_v = prior_v + damping * sum over arcs (u,v) of
// tanh(belief_u / 2) * weight.
class BpProgram {
 public:
  static constexpr const char* kName = "bp";
  static constexpr bool kNeedsOutDegrees = false;

  struct VertexState {
    float prior;
    float belief;
  };
  using UpdateValue = float;
  using Accumulator = float;
  struct GlobalState {
    uint32_t iterations;
    float damping;
  };
  using OutputRecord = NoOutput;

  explicit BpProgram(uint32_t iterations = 5, float damping = 0.5f)
      : iterations_(iterations), damping_(damping) {}

  // Deterministic pseudo-random prior in [-1, 1].
  static float Prior(VertexId v) {
    return (static_cast<float>(Mix64(v) % 2001) - 1000.0f) / 1000.0f;
  }

  GlobalState InitGlobal(uint64_t) const { return GlobalState{iterations_, damping_}; }
  GlobalState InitLocal() const { return GlobalState{0, 0.0f}; }
  Accumulator InitAccum() const { return 0.0f; }
  VertexState InitVertex(const GlobalState&, VertexId v, uint32_t) const {
    const float p = Prior(v);
    return VertexState{p, p};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState&, VertexId, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    emit(e.dst, std::tanh(s.belief * 0.5f) * e.weight);
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    a += u;
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const { a += b; }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState& g, VertexId, VertexState& v, const Accumulator& a, GlobalState&,
             Emit&&, Sink&&) const {
    v.belief = v.prior + g.damping * a;
    return true;
  }

  void ReduceGlobal(GlobalState&, const GlobalState&) const {}
  bool Advance(GlobalState& g, uint64_t superstep, uint64_t) const {
    return superstep + 1 >= g.iterations;
  }
  double Extract(const VertexState& v) const { return static_cast<double>(v.belief); }

 private:
  uint32_t iterations_;
  float damping_;
};

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_BASIC_H_
