// Tests for the per-machine buffer pool (core/buffer_pool.h): deterministic
// coldest-first eviction, FIFO blocking (device-queue serialization) under
// contention, the spill-out/fault-in round trip, unlimited-mode accounting,
// and — end to end — byte-identical run metrics between --jobs 1 and
// --jobs 8 when whole memory-pressured simulations run on the parallel
// sweep executor.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "algorithms/runner.h"
#include "core/buffer_pool.h"
#include "graph/generators.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "util/parallel.h"

namespace chaos {
namespace {

constexpr double kBw = 1e9;       // 1 GB/s device
constexpr TimeNs kLatency = 100;  // per-request

struct PoolRig {
  Simulator sim;
  FifoResource device{&sim, "device"};
  BufferPool pool;

  explicit PoolRig(uint64_t budget) : pool(&sim, &device, kBw, kLatency, budget) {}
};

TEST(BufferPoolTest, WithinBudgetNeverSpills) {
  PoolRig rig(1000);
  rig.sim.Spawn([](PoolRig* r) -> Task<> {
    BufferPool::Lease a = co_await r->pool.Acquire(400);
    BufferPool::Lease b = co_await r->pool.Acquire(600);
    EXPECT_EQ(r->pool.resident_bytes(), 1000u);
    EXPECT_EQ(r->pool.spilled_bytes(), 0u);
    a.Reset();
    b.Reset();
    EXPECT_EQ(r->pool.used_bytes(), 0u);
  }(&rig));
  rig.sim.Run();
  EXPECT_EQ(rig.pool.metrics().spill_out_bytes, 0u);
  EXPECT_EQ(rig.pool.metrics().peak_bytes, 1000u);
  EXPECT_EQ(rig.sim.now(), 0u);  // no spill -> no device time
}

TEST(BufferPoolTest, DeterministicColdestFirstEviction) {
  PoolRig rig(100);
  rig.sim.Spawn([](PoolRig* r) -> Task<> {
    BufferPool::Lease a = co_await r->pool.Acquire(60);
    BufferPool::Lease b = co_await r->pool.Acquire(30);
    // Over budget by 20: the coldest lease (a) loses exactly 20 bytes.
    BufferPool::Lease c = co_await r->pool.Acquire(30);
    EXPECT_EQ(r->pool.lease_spilled_bytes(a), 20u);
    EXPECT_EQ(r->pool.lease_spilled_bytes(b), 0u);
    EXPECT_EQ(r->pool.lease_spilled_bytes(c), 0u);
    EXPECT_EQ(r->pool.metrics().spill_out_bytes, 20u);
    // Touching a faults its 20 bytes back and evicts from the new coldest
    // (b) — strict last-touch order, fully deterministic.
    co_await r->pool.Touch(a);
    EXPECT_EQ(r->pool.lease_spilled_bytes(a), 0u);
    EXPECT_EQ(r->pool.lease_spilled_bytes(b), 20u);
    EXPECT_EQ(r->pool.metrics().spill_in_bytes, 20u);
    EXPECT_EQ(r->pool.metrics().spill_out_bytes, 40u);
    a.Reset();
    b.Reset();
    c.Reset();
  }(&rig));
  rig.sim.Run();
}

TEST(BufferPoolTest, SpillRoundTripChargesTheDevice) {
  PoolRig rig(100);
  rig.sim.Spawn([](PoolRig* r) -> Task<> {
    BufferPool::Lease a = co_await r->pool.Acquire(100);
    EXPECT_EQ(r->sim.now(), 0u);  // fits: free
    const TimeNs before = r->sim.now();
    BufferPool::Lease b = co_await r->pool.Acquire(50);  // evicts 50 of a
    EXPECT_GT(r->sim.now(), before);                     // spill write took device time
    const TimeNs after_spill = r->sim.now();
    co_await r->pool.Touch(a);  // faults 50 back, evicts 50 of b
    EXPECT_GT(r->sim.now(), after_spill);
    EXPECT_EQ(r->pool.metrics().spill_in_bytes, 50u);
    EXPECT_EQ(r->pool.metrics().spill_out_bytes, 100u);
    EXPECT_GT(r->pool.metrics().stall_time, 0);
    a.Reset();
    b.Reset();
  }(&rig));
  rig.sim.Run();
}

TEST(BufferPoolTest, ContendedAcquiresSerializeFifoOnTheDevice) {
  PoolRig rig(100);
  // Two coroutines racing over-budget acquisitions: both spill, and the
  // second's spill write queues FIFO behind the first's on the shared
  // device, so completion times are strictly ordered and deterministic.
  struct Times {
    TimeNs first = 0;
    TimeNs second = 0;
  } times;
  rig.sim.Spawn([](PoolRig* r, Times* t) -> Task<> {
    BufferPool::Lease a = co_await r->pool.Acquire(200);
    t->first = r->sim.now();
    co_await r->sim.Delay(1000000);
    a.Reset();
  }(&rig, &times));
  rig.sim.Spawn([](PoolRig* r, Times* t) -> Task<> {
    BufferPool::Lease b = co_await r->pool.Acquire(200);
    t->second = r->sim.now();
    b.Reset();
  }(&rig, &times));
  rig.sim.Run();
  EXPECT_GT(times.first, 0u);
  EXPECT_GT(times.second, times.first);  // FIFO: blocked behind the first spill
  EXPECT_EQ(rig.pool.metrics().spill_out_bytes, 100u + 200u);
}

TEST(BufferPoolTest, UnlimitedPoolOnlyAccounts) {
  PoolRig rig(0);  // budget 0 = enforcement off
  rig.sim.Spawn([](PoolRig* r) -> Task<> {
    BufferPool::Lease a = co_await r->pool.Acquire(1 << 20);
    BufferPool::Lease b = co_await r->pool.Acquire(1 << 20);
    co_await r->pool.Touch(a);
    a.Reset();
    b.Reset();
  }(&rig));
  rig.sim.Run();
  EXPECT_FALSE(rig.pool.enforced());
  EXPECT_EQ(rig.pool.metrics().spill_out_bytes, 0u);
  EXPECT_EQ(rig.pool.metrics().peak_bytes, 2u << 20);
  EXPECT_EQ(rig.sim.now(), 0u);
}

// ---- End to end: deterministic metrics across host thread counts.

// Serializes every simulation-derived field a bench would emit; any
// schedule dependence in pool admission/eviction would show up here.
std::string MetricsFingerprint(const AlgoResult& r) {
  std::ostringstream out;
  out << r.metrics.total_time << '|' << r.metrics.StorageBytesMoved() << '|'
      << r.metrics.SpillBytesMoved() << '|' << r.metrics.PeakMemoryBytes() << '|'
      << r.metrics.network_bytes << '|' << r.metrics.messages << '|' << r.supersteps;
  for (const PoolMetrics& p : r.metrics.pools) {
    out << ";pool:" << p.budget_bytes << ',' << p.peak_bytes << ',' << p.spill_out_bytes
        << ',' << p.spill_in_bytes << ',' << p.spill_events << ',' << p.acquires << ','
        << p.stall_time;
  }
  for (const double v : r.values) {
    out << ' ' << v;
  }
  return out.str();
}

std::vector<std::string> RunPressuredSweep(int jobs) {
  const std::vector<std::string> algos = {"bfs", "wcc", "pagerank"};
  std::vector<std::string> prints(algos.size());
  SweepExecutor executor(jobs);
  executor.ParallelFor(algos.size(), [&](size_t i) {
    RmatOptions gopt;
    gopt.scale = 9;
    gopt.seed = 11;
    const InputGraph prepared = PrepareInput(algos[i], GenerateRmat(gopt));
    ClusterConfig cfg;
    cfg.machines = 2;
    cfg.memory_budget_bytes = 8 << 10;
    cfg.chunk_bytes = 2 << 10;
    cfg.pool_budget_bytes = 12 << 10;  // well under the working set: spills
    cfg.seed = 11;
    prints[i] = MetricsFingerprint(RunJob(MakeJob(algos[i], prepared, cfg)));
  });
  return prints;
}

TEST(BufferPoolTest, MetricsByteIdenticalAcrossJobs1And8) {
  const auto serial = RunPressuredSweep(1);
  const auto parallel = RunPressuredSweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
  // The pressure must be real for the determinism claim to mean anything.
  EXPECT_NE(serial[0].find(";pool:"), std::string::npos);
}

}  // namespace
}  // namespace chaos
