// Machine-failure recovery (paper §6.6): a fault-injected MachineCrash
// kills one machine's engine mid-run, the failure is detected at the next
// barrier and aborts the superstep cluster-wide, and the recovery driver
// re-provisions a cluster (same size or the N-1 survivors) that resumes
// from the last committed checkpoint. Recovered results must match the
// fault-free run: bitwise for BFS (order-independent min-folds), and to
// float rounding for PageRank (re-executed gathers fold updates in a
// different arrival order).
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/basic.h"
#include "algorithms/runner.h"
#include "core/cluster.h"
#include "core/recovery.h"
#include "graph/generators.h"

namespace chaos {
namespace {

ClusterConfig BaseConfig(int machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.seed = 99;
  return cfg;
}

InputGraph TestGraph(uint64_t seed = 7) {
  RmatOptions opt;
  opt.scale = 9;
  opt.seed = seed;
  return GenerateRmat(opt);
}

// A kill time ~60% into the post-preprocessing computation of the
// fault-free run: late enough that checkpoints have committed, early
// enough that supersteps remain.
TimeNs MidRunKillTime(const RunMetrics& fault_free) {
  return fault_free.preprocess_time +
         static_cast<TimeNs>(0.6 * static_cast<double>(fault_free.total_time -
                                                       fault_free.preprocess_time));
}

TEST(MachineCrashTest, KillAbortsRunAndLeavesCommittedCheckpoint) {
  InputGraph g = TestGraph();
  ClusterConfig cfg = BaseConfig(4);
  cfg.checkpoint_interval = 1;
  Cluster<PageRankProgram> healthy(cfg, PageRankProgram(6));
  auto fault_free = healthy.Run(g);
  ASSERT_FALSE(fault_free.crashed);

  cfg.faults = FaultSchedule::MachineCrash(2, MidRunKillTime(fault_free.metrics));
  Cluster<PageRankProgram> cluster(cfg, PageRankProgram(6));
  auto result = cluster.Run(g);
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.metrics.crashed);
  EXPECT_LE(result.supersteps, fault_free.supersteps);  // aborted early
  ASSERT_TRUE(result.has_checkpoint);
  EXPECT_GT(result.checkpoint_superstep, 0u);
  // The crash is recorded as an applied fault.
  ASSERT_EQ(result.metrics.faults.size(), 1u);
  EXPECT_EQ(result.metrics.faults[0].event.kind, FaultKind::kMachineCrash);
  EXPECT_GE(result.metrics.faults[0].applied_at, 0);
}

TEST(MachineCrashTest, KillAfterCompletionIsNeverReached) {
  InputGraph g = TestGraph();
  ClusterConfig cfg = BaseConfig(4);
  Cluster<PageRankProgram> healthy(cfg, PageRankProgram(4));
  auto fault_free = healthy.Run(g);

  cfg.faults = FaultSchedule::MachineCrash(1, fault_free.metrics.total_time * 2);
  Cluster<PageRankProgram> cluster(cfg, PageRankProgram(4));
  auto result = cluster.Run(g);
  EXPECT_FALSE(result.crashed);
  ASSERT_EQ(result.metrics.faults.size(), 1u);
  EXPECT_LT(result.metrics.faults[0].applied_at, 0);  // not reached
}

TEST(RecoveryTest, SameSizeRecoveryMatchesFaultFreeBfsBitwise) {
  InputGraph g = PrepareInput("bfs", TestGraph(13));
  ClusterConfig cfg = BaseConfig(4);
  Cluster<BfsProgram> healthy(cfg, BfsProgram(0));
  auto truth = healthy.Run(g);

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(3, MidRunKillTime(truth.metrics));
  RecoveryReport report;
  auto recovered = RunWithRecovery(cfg, BfsProgram(0), g, RecoveryOptions{}, &report);

  EXPECT_TRUE(report.crash_detected);
  EXPECT_TRUE(report.recovered_from_checkpoint);
  EXPECT_FALSE(recovered.crashed);
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_EQ(recovered.values[v], truth.values[v]) << "vertex " << v;
  }
}

TEST(RecoveryTest, SameSizeRecoveryMatchesFaultFreePagerank) {
  InputGraph g = TestGraph(13);
  const uint32_t kIters = 6;
  ClusterConfig cfg = BaseConfig(4);
  Cluster<PageRankProgram> healthy(cfg, PageRankProgram(kIters));
  auto truth = healthy.Run(g);

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(1, MidRunKillTime(truth.metrics));
  RecoveryReport report;
  auto recovered =
      RunWithRecovery(cfg, PageRankProgram(kIters), g, RecoveryOptions{}, &report);

  EXPECT_TRUE(report.crash_detected);
  EXPECT_TRUE(report.recovered_from_checkpoint);
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_NEAR(recovered.values[v], truth.values[v],
                1e-4 * (1.0 + std::abs(truth.values[v])))
        << "vertex " << v;
  }
}

TEST(RecoveryTest, RescaledRecoveryRunsOnSurvivorsAndMatches) {
  InputGraph g = PrepareInput("bfs", TestGraph(21));
  const int kMachines = 4;
  ClusterConfig cfg = BaseConfig(kMachines);
  Cluster<BfsProgram> healthy(cfg, BfsProgram(0));
  auto truth = healthy.Run(g);

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(2, MidRunKillTime(truth.metrics));
  RecoveryOptions rescale;
  rescale.replacement_machines = kMachines - 1;
  RecoveryReport report;
  auto recovered = RunWithRecovery(cfg, BfsProgram(0), g, rescale, &report);

  EXPECT_TRUE(report.crash_detected);
  EXPECT_TRUE(report.recovered_from_checkpoint);
  EXPECT_EQ(report.machines_after, kMachines - 1);
  EXPECT_EQ(recovered.metrics.machines.size(), static_cast<size_t>(kMachines - 1));
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_EQ(recovered.values[v], truth.values[v]) << "vertex " << v;
  }
}

TEST(RecoveryTest, MetricsRecordTimeToRecoverAndLostWork) {
  InputGraph g = TestGraph(29);
  ClusterConfig cfg = BaseConfig(4);
  Cluster<PageRankProgram> healthy(cfg, PageRankProgram(6));
  auto truth = healthy.Run(g);

  cfg.checkpoint_interval = 2;
  cfg.faults = FaultSchedule::MachineCrash(0, MidRunKillTime(truth.metrics));
  RecoveryReport report;
  auto recovered =
      RunWithRecovery(cfg, PageRankProgram(6), g, RecoveryOptions{}, &report);

  EXPECT_TRUE(recovered.metrics.recovered);
  EXPECT_GT(recovered.metrics.crashed_run_time, 0);
  EXPECT_GT(recovered.metrics.time_to_recover, 0);
  EXPECT_LE(recovered.metrics.time_to_recover, recovered.metrics.total_time);
  EXPECT_EQ(recovered.metrics.lost_work_supersteps, report.lost_work_supersteps);
  // Interval-2 checkpoints: at most 2 supersteps of work can be lost.
  EXPECT_GE(report.lost_work_supersteps, 1u);
  EXPECT_LE(report.lost_work_supersteps, 2u);
  EXPECT_EQ(report.end_to_end_time,
            report.crashed_run_time + recovered.metrics.total_time);
  // The fault-free metrics of a healthy run carry no recovery accounting.
  EXPECT_FALSE(truth.metrics.recovered);
  EXPECT_EQ(truth.metrics.time_to_recover, 0);
  // Superstep end times back the time-to-recover measurement.
  EXPECT_FALSE(recovered.metrics.superstep_end_times.empty());
}

TEST(RecoveryTest, CrashBeforeFirstCheckpointRestartsFromScratch) {
  InputGraph g = TestGraph(31);
  ClusterConfig cfg = BaseConfig(4);
  Cluster<PageRankProgram> healthy(cfg, PageRankProgram(5));
  auto truth = healthy.Run(g);

  // No checkpointing at all: the only recovery is a full restart.
  cfg.faults = FaultSchedule::MachineCrash(1, MidRunKillTime(truth.metrics));
  RecoveryReport report;
  auto recovered =
      RunWithRecovery(cfg, PageRankProgram(5), g, RecoveryOptions{}, &report);

  EXPECT_TRUE(report.crash_detected);
  EXPECT_FALSE(report.recovered_from_checkpoint);
  EXPECT_FALSE(recovered.crashed);
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    // The replacement run re-executes everything from the input on a fresh
    // cluster with the same seed: identical traces, identical floats.
    ASSERT_EQ(recovered.values[v], truth.values[v]) << "vertex " << v;
  }
}

TEST(RecoveryTest, CrashDuringPreprocessingRestartsFromScratch) {
  InputGraph g = PrepareInput("bfs", TestGraph(37));
  ClusterConfig cfg = BaseConfig(4);
  cfg.checkpoint_interval = 1;
  Cluster<BfsProgram> healthy(cfg, BfsProgram(0));
  auto truth = healthy.Run(g);

  cfg.faults = FaultSchedule::MachineCrash(2, truth.metrics.preprocess_time / 2);
  RecoveryReport report;
  auto recovered = RunWithRecovery(cfg, BfsProgram(0), g, RecoveryOptions{}, &report);

  EXPECT_TRUE(report.crash_detected);
  EXPECT_FALSE(report.recovered_from_checkpoint);  // nothing had committed
  // No superstep ever ran: the lost work is the partial pre-processing,
  // not a superstep; time-to-recover is the re-run pre-processing.
  EXPECT_EQ(report.lost_work_supersteps, 0u);
  EXPECT_EQ(report.time_to_recover, recovered.metrics.preprocess_time);
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_EQ(recovered.values[v], truth.values[v]) << "vertex " << v;
  }
}

TEST(RecoveryTest, RecoveryIsDeterministic) {
  InputGraph g = PrepareInput("bfs", TestGraph(41));
  ClusterConfig cfg = BaseConfig(4);
  Cluster<BfsProgram> healthy(cfg, BfsProgram(0));
  auto truth = healthy.Run(g);

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(1, MidRunKillTime(truth.metrics));
  RecoveryReport a_report;
  RecoveryReport b_report;
  auto a = RunWithRecovery(cfg, BfsProgram(0), g, RecoveryOptions{}, &a_report);
  auto b = RunWithRecovery(cfg, BfsProgram(0), g, RecoveryOptions{}, &b_report);

  EXPECT_EQ(a_report.end_to_end_time, b_report.end_to_end_time);
  EXPECT_EQ(a_report.time_to_recover, b_report.time_to_recover);
  EXPECT_EQ(a_report.crash_superstep, b_report.crash_superstep);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t v = 0; v < a.values.size(); ++v) {
    ASSERT_EQ(a.values[v], b.values[v]);
  }
}

// Same-size recovery must also work under central-directory placement:
// imported edge chunks have to be re-registered with the replacement
// cluster's directory, or every scan would silently see an empty set
// (regression: recovered values diverged with no error raised).
TEST(RecoveryTest, SameSizeRecoveryWorksUnderCentralDirectory) {
  InputGraph g = PrepareInput("bfs", TestGraph(47));
  ClusterConfig cfg = BaseConfig(4);
  cfg.placement = Placement::kCentralDirectory;
  Cluster<BfsProgram> healthy(cfg, BfsProgram(0));
  auto truth = healthy.Run(g);

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(2, MidRunKillTime(truth.metrics));
  RecoveryReport report;
  auto recovered = RunWithRecovery(cfg, BfsProgram(0), g, RecoveryOptions{}, &report);

  EXPECT_TRUE(report.crash_detected);
  EXPECT_TRUE(report.recovered_from_checkpoint);
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_EQ(recovered.values[v], truth.values[v]) << "vertex " << v;
  }
}

// The type-erased runner surface used by chaos_run and the benches.
TEST(RecoveryTest, TypeErasedRunnerRecovers) {
  InputGraph g = PrepareInput("sssp", TestGraph(43));
  ClusterConfig cfg = BaseConfig(4);
  auto truth = RunJob(MakeJob("sssp", g, cfg));

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(3, MidRunKillTime(truth.metrics));
  JobSpec spec = MakeJob("sssp", g, cfg);
  spec.recover = true;
  auto recovered = RunJob(spec);

  EXPECT_TRUE(recovered.recovery.crash_detected);
  EXPECT_FALSE(recovered.crashed);
  ASSERT_EQ(recovered.values.size(), truth.values.size());
  for (size_t v = 0; v < truth.values.size(); ++v) {
    ASSERT_EQ(recovered.values[v], truth.values[v]) << "vertex " << v;
  }
}

// MCST streams its result out through the output sink while it runs, and
// its chase phases emit gather-to-gather updates that scatter cannot
// regenerate. Recovery must therefore (a) carry the crashed run's committed
// output stream across the restart and (b) restore the checkpoint's
// update-set snapshot — either omission loses or duplicates forest edges.
TEST(MachineCrashTest, McstRecoveryPreservesEmittedForestAndInFlightUpdates) {
  RmatOptions opt;
  opt.scale = 8;
  opt.weighted = true;
  opt.seed = 31;
  InputGraph g = PrepareInput("mcst", GenerateRmat(opt));
  ClusterConfig cfg = BaseConfig(4);

  auto truth = RunJob(MakeJob("mcst", g, cfg));
  ASSERT_GT(truth.output_records, 0u);

  cfg.checkpoint_interval = 1;
  cfg.faults = FaultSchedule::MachineCrash(1, MidRunKillTime(truth.metrics));
  JobSpec spec = MakeJob("mcst", g, cfg);
  spec.recover = true;
  auto recovered = RunJob(spec);
  ASSERT_TRUE(recovered.recovery.crash_detected);
  ASSERT_TRUE(recovered.recovery.recovered_from_checkpoint);
  EXPECT_EQ(recovered.output_records, truth.output_records);
  EXPECT_NEAR(recovered.scalar, truth.scalar, 1e-2);
}

}  // namespace
}  // namespace chaos
