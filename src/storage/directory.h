// Centralized chunk directory: the baseline design Chaos argues against
// (paper §10.1, Fig. 15).
//
// In directory mode, every chunk write first asks the directory which engine
// to place the chunk on, and every sequential-set read first asks the
// directory which (engine, chunk) to fetch. The directory runs on one
// machine behind a FIFO CPU resource, so it serializes all placement
// decisions — the central bottleneck whose cost Fig. 15 measures.
#ifndef CHAOS_STORAGE_DIRECTORY_H_
#define CHAOS_STORAGE_DIRECTORY_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "storage/chunk.h"
#include "util/common.h"
#include "util/rng.h"

namespace chaos {

enum DirectoryMsgType : uint32_t {
  kDirAllocReq = 200,   // body: DirAllocReq  -> kDirAllocResp
  kDirAllocResp = 201,  // body: DirAllocResp
  kDirNextReq = 202,    // body: DirNextReq   -> kDirNextResp
  kDirNextResp = 203,   // body: DirNextResp
  kDirForgetReq = 204,  // body: DirForgetReq -> kDirForgetResp
  kDirForgetResp = 205,
  kDirShutdown = 206,
};

struct DirAllocReq {
  SetId set;
};

struct DirAllocResp {
  MachineId engine = kNoMachine;
  uint64_t index = 0;  // directory-assigned, globally unique within the set
};

struct DirNextReq {
  SetId set;
  uint64_t epoch = 0;
};

struct DirNextResp {
  bool ok = false;
  MachineId engine = kNoMachine;
  uint64_t index = 0;
};

struct DirForgetReq {
  SetId set;
};

class DirectoryServer {
 public:
  DirectoryServer(Simulator* sim, MessageBus* bus, MachineId home, int machines, uint64_t seed,
                  TimeNs lookup_cost = 2 * kNsPerUs);

  void Start();

  // Host-side registration of chunks placed during (non-simulated) ingest.
  void HostRecord(const SetId& set, uint64_t index, MachineId engine);

  MachineId home() const { return home_; }
  uint64_t lookups() const { return lookups_; }
  FifoResource& cpu() { return cpu_; }

 private:
  struct Entry {
    std::vector<std::pair<MachineId, uint64_t>> locations;
    uint64_t next_index = 0;
    uint64_t epoch = std::numeric_limits<uint64_t>::max();
    size_t cursor = 0;
  };

  Task<> Serve();

  Simulator* sim_;
  MessageBus* bus_;
  MachineId home_;
  int machines_;
  Rng rng_;
  FifoResource cpu_;
  TimeNs lookup_cost_ = 2 * kNsPerUs;
  std::unordered_map<SetId, Entry, SetIdHash> entries_;
  uint64_t lookups_ = 0;
  bool started_ = false;
};

}  // namespace chaos

#endif  // CHAOS_STORAGE_DIRECTORY_H_
