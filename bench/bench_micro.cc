// Microbenchmarks (google-benchmark) backing the simulator's CPU cost
// parameters: per-edge scatter cost, per-edge grid-partitioning cost, event
// queue and chunk machinery throughput, and generator speed. Run these on a
// new host to recalibrate CostModel / --grid-ns-per-edge.
#include <benchmark/benchmark.h>

#include "algorithms/basic.h"
#include "baselines/grid_partitioner.h"
#include "core/partition.h"
#include "graph/generators.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "storage/chunk.h"

namespace chaos {
namespace {

InputGraph& BenchGraph() {
  static InputGraph g = [] {
    RmatOptions opt;
    opt.scale = 14;
    opt.seed = 7;
    return GenerateRmat(opt);
  }();
  return g;
}

// Per-edge cost of the PageRank scatter path (binning included): the basis
// for CostModel::ns_per_edge_scatter.
void BM_ScatterPerEdge(benchmark::State& state) {
  const InputGraph& g = BenchGraph();
  auto parts = Partitioning::Compute(g.num_vertices, 4, 16, 1 << 20);
  PageRankProgram prog(1);
  PageRankProgram::GlobalState global{1};
  std::vector<PageRankProgram::VertexState> states(g.num_vertices,
                                                   PageRankProgram::VertexState{1.0f, 16});
  std::vector<std::vector<UpdateRecord<float>>> bins(parts.num_partitions());
  for (auto _ : state) {
    for (auto& bin : bins) {
      bin.clear();
    }
    auto emit = [&](VertexId dst, const float& value) {
      bins[parts.PartitionOf(dst)].push_back(UpdateRecord<float>{dst, value});
    };
    for (const Edge& e : g.edges) {
      prog.Scatter(global, e.src, states[e.src], e, emit);
    }
    benchmark::DoNotOptimize(bins);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_ScatterPerEdge);

// Per-edge cost of grid partitioning: the basis for --grid-ns-per-edge.
void BM_GridPartitionPerEdge(benchmark::State& state) {
  const InputGraph& g = BenchGraph();
  for (auto _ : state) {
    auto result = GridPartition(g, 16, 7);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_GridPartitionPerEdge);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
      q.Push((i * 2654435761u) % 100000, [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.Pop());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_CoroutineDelayRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    sim.Spawn([](Simulator* sim) -> Task<> {
      for (int i = 0; i < 1000; ++i) {
        co_await sim->Delay(10);
      }
    }(&sim));
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_CoroutineDelayRoundtrip);

void BM_RmatGeneration(benchmark::State& state) {
  RmatOptions opt;
  opt.scale = 12;
  opt.seed = 7;
  for (auto _ : state) {
    auto g = GenerateRmat(opt);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * (16 << 12));
}
BENCHMARK(BM_RmatGeneration);

void BM_ChunkRoundTrip(benchmark::State& state) {
  std::vector<Edge> edges(8192);
  for (auto _ : state) {
    auto copy = edges;
    Chunk c = MakeChunk<Edge>(0, copy.size() * 8, std::move(copy));
    auto span = ChunkSpan<Edge>(c);
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_ChunkRoundTrip);

}  // namespace
}  // namespace chaos

BENCHMARK_MAIN();
