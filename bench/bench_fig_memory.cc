// Graceful degradation under memory pressure (§3, §9.3): the §9.3
// capacity story — "I/O volume per edge is scale-free, RAM only buys
// speed" — measured instead of asserted in a comment.
//
// Method: run each algorithm once unconstrained (buffer-pool accounting
// only) to learn the true peak working set B0, then re-run with the
// ENFORCED per-machine budget swept from in-core (B0) down to deep
// out-of-core (B0/8), holding the partitioning — and therefore the record
// streams — fixed. The pool converts the squeeze into spill I/O and
// simulated stall time on each machine's own storage device.
//
// Exit is nonzero unless, for every algorithm:
//  * every budget — including the 4x reduction point B0/4 — reproduces the
//    unconstrained outputs (bitwise for the order-insensitive min-fold
//    algorithms bfs/wcc/sssp; pagerank's float-sum gather folds in chunk
//    arrival order, which spill timing perturbs, so it gets the same 1e-3
//    relative bound the differential suite holds it to against the golden
//    model) with the same superstep count, and
//  * simulated I/O volume is monotonically non-decreasing as the budget
//    shrinks, strictly greater at B0/4 than unconstrained.
//
// Stealing is disabled here (alpha = 0): work stealing adds vertex-copy
// traffic that varies with timing, which would blur the memory-pressure
// signal this figure isolates; with it off, the base chunk traffic is
// byte-identical across budgets and every extra byte is attributable to
// the pool. Stealing's own traffic is fig18/fig21's subject.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig_memory, "Graceful degradation under an enforced memory budget") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (2^scale vertices)");
  opt.AddInt("machines", 4, "machines");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "wcc", "sssp", "pagerank"};
  // Budget divisors relative to the measured peak: 0 = unconstrained
  // baseline, then in-core -> deep out-of-core.
  const std::vector<uint64_t> divisors = {0, 1, 2, 4, 8};

  struct MemoryPoint {
    AlgoResult result;
    uint64_t budget = 0;
  };
  // Phase 1: unconstrained baselines (parallel over algorithms). The peak
  // working set B0 seeds phase 2's budget sweep.
  Sweep<MemoryPoint> base_sweep;
  for (const std::string& name : algos) {
    base_sweep.Add([name, scale, machines, seed] {
      const bool weighted = AlgorithmByName(name).needs_weights;
      InputGraph prepared = PrepareInput(name, BenchRmat(scale, weighted, seed));
      ClusterConfig cfg = BenchClusterConfig(prepared, machines, seed);
      cfg.alpha = 0.0;
      cfg.memory_enforced = false;  // accounting only: learn the peak
      MemoryPoint point;
      point.result = RunJob(MakeJob(name, prepared, cfg));
      return point;
    });
  }
  const std::vector<MemoryPoint> baselines = base_sweep.Run();

  // Phase 2: the budget sweep, one self-contained simulation per point.
  Sweep<MemoryPoint> sweep;
  for (size_t a = 0; a < algos.size(); ++a) {
    const uint64_t peak = baselines[a].result.metrics.PeakMemoryBytes();
    for (size_t d = 1; d < divisors.size(); ++d) {
      const std::string name = algos[a];
      const uint64_t budget = std::max<uint64_t>(peak / divisors[d], 1);
      sweep.Add([name, scale, machines, seed, budget] {
        const bool weighted = AlgorithmByName(name).needs_weights;
        InputGraph prepared = PrepareInput(name, BenchRmat(scale, weighted, seed));
        ClusterConfig cfg = BenchClusterConfig(prepared, machines, seed);
        cfg.alpha = 0.0;
        cfg.pool_budget_bytes = budget;
        MemoryPoint point;
        point.result = RunJob(MakeJob(name, prepared, cfg));
        point.budget = budget;
        return point;
      });
    }
  }
  const std::vector<MemoryPoint> points = sweep.Run();

  std::printf("== Memory degradation (enforced budget): RMAT-%u on %d machines ==\n", scale,
              machines);
  PrintHeader({"algorithm", "budget", "sim-time", "io-moved", "spill", "stall", "match"});
  bool ok = true;
  size_t idx = 0;
  for (size_t a = 0; a < algos.size(); ++a) {
    const std::string& name = algos[a];
    const AlgoResult& base = baselines[a].result;
    const bool bitwise = name != "pagerank";
    uint64_t prev_io = base.metrics.StorageBytesMoved();
    uint64_t io_at_4x = 0;
    {
      PrintCell(name);
      PrintCell("unlimited");
      PrintCell(FormatSeconds(base.metrics.total_seconds()));
      PrintCell(FormatBytes(prev_io));
      PrintCell(FormatBytes(base.metrics.SpillBytesMoved()));
      PrintCell("-");
      PrintCell("base");
      EndRow();
    }
    for (size_t d = 1; d < divisors.size(); ++d) {
      const MemoryPoint& point = points[idx++];
      const AlgoResult& r = point.result;
      // ---- result identity vs the unconstrained run.
      std::string match = bitwise ? "bitwise" : "approx";
      if (r.supersteps != base.supersteps || r.values.size() != base.values.size()) {
        match = "DIVERGED";
      } else {
        for (size_t v = 0; v < base.values.size(); ++v) {
          const double got = r.values[v];
          const double want = base.values[v];
          const bool same =
              bitwise ? (got == want || (std::isinf(got) && std::isinf(want)))
                      : std::abs(got - want) <= 1e-3 * (1.0 + std::abs(want));
          if (!same) {
            match = "DIVERGED";
            break;
          }
        }
      }
      // ---- monotone I/O volume as the budget shrinks.
      const uint64_t io = r.metrics.StorageBytesMoved();
      if (io < prev_io) {
        match = "IO-SHRANK";
      }
      if (divisors[d] == 4) {
        io_at_4x = io;
      }
      prev_io = io;
      TimeNs stall = 0;
      for (const PoolMetrics& p : r.metrics.pools) {
        stall += p.stall_time;
      }
      PrintCell(name);
      PrintCell("peak/" + std::to_string(divisors[d]));
      PrintCell(FormatSeconds(r.metrics.total_seconds()));
      PrintCell(FormatBytes(io));
      PrintCell(FormatBytes(r.metrics.SpillBytesMoved()));
      PrintCell(FormatSeconds(ToSeconds(stall)));
      PrintCell(match);
      EndRow();
      ok = ok && (match == "bitwise" || match == "approx");
      RecordMetric("fig_memory." + name + ".div" + std::to_string(divisors[d]) + ".io_bytes",
                   static_cast<double>(io));
      RecordMetric("fig_memory." + name + ".div" + std::to_string(divisors[d]) +
                       ".spill_bytes",
                   static_cast<double>(r.metrics.SpillBytesMoved()));
    }
    // The §9.3 claim, measured: a 4x RAM squeeze leaves answers identical
    // while the system visibly trades I/O for the missing memory.
    if (io_at_4x <= base.metrics.StorageBytesMoved()) {
      std::printf("  !! %s: no I/O growth at a 4x budget reduction (enforcement broken?)\n",
                  name.c_str());
      ok = false;
    }
    RecordMetric("fig_memory." + name + ".io_growth_4x",
                 static_cast<double>(io_at_4x) /
                     static_cast<double>(base.metrics.StorageBytesMoved()));
  }
  std::printf("\n%s: outputs invariant under memory pressure; I/O volume monotone in 1/budget\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
