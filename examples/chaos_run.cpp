// chaos_run: command-line driver — run any of the ten algorithms over an
// edge-list file (binary or text) or a generated graph on a configurable
// simulated cluster. The "release binary" a downstream user would reach
// for first.
//
//   chaos_run --algo pagerank --input graph.txt --machines 16
//   chaos_run --algo bfs --generate rmat --scale 18 --machines 32 --hdd
//   chaos_run --algo sssp --generate grid --scale 8 --out distances.txt
//
// Heterogeneity / fault injection (reproduces bench fig21_stragglers):
//   chaos_run --algo pagerank --scale 17 --machines 4 --cores 1
//             --storage-bw-mbps 2000 --partitions-per-machine 16
//             --straggler 0 --straggler-severity 8
//
// Machine-failure recovery (reproduces bench fig_recovery): kill machine 2
// mid-run, recover automatically from the last committed checkpoint —
// on the N-1 survivors with --rescale, on a same-size cluster without:
//   chaos_run --algo pagerank --scale 16 --machines 8
//             --checkpoint-interval 2 --kill-machine 2 --kill-at 0.08
//
// Sweep mode: cross-product over comma-separated knob lists, one
// self-contained simulation per point, run in parallel under --jobs
// (results are bitwise independent of the job count — util/parallel.h):
//   chaos_run --algo pagerank --scale 14 --jobs 8
//             --sweep "machines=1,2,4,8;chunk-kb=128,256"
#include <cstdio>
#include <fstream>
#include <memory>

#include "algorithms/runner.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/parallel.h"
#include "util/stats.h"

using namespace chaos;

namespace {

void RegisterFlags(Options& opt) {
  opt.AddString("algo", "pagerank",
                "bfs|wcc|mcst|mis|sssp|pagerank|scc|conductance|spmv|bp");
  opt.AddString("input", "", "edge-list file (binary or text; empty = --generate)");
  opt.AddString("generate", "rmat", "rmat|web|grid|uniform (when no --input)");
  opt.AddInt("scale", 14, "generator scale (2^scale vertices)");
  opt.AddInt("machines", 8, "simulated machines");
  opt.AddInt("partitions-per-machine", 4, "streaming partitions per machine");
  opt.AddInt("mem-mb", 0,
             "enforced per-machine memory budget in MiB (buffer-pool cap; over-budget "
             "buffers spill to the machine's storage device; 0 = auto headroom)");
  opt.AddInt("chunk-kb", 256, "storage chunk size in KiB (the steal granularity)");
  opt.AddBool("hdd", false, "use the HDD profile instead of SSD");
  opt.AddBool("slow-net", false, "use 1GigE instead of 40GigE");
  opt.AddInt("cores", 0, "CPU cores per machine (0 = cost-model default)");
  opt.AddDouble("storage-bw-mbps", 0.0, "storage bandwidth MB/s (0 = profile default)");
  opt.AddDouble("alpha", 1.0, "work-stealing bias (0 disables stealing)");
  opt.AddInt("straggler", -1, "machine to degrade (-1 = healthy cluster)");
  opt.AddDouble("straggler-severity", 4.0, "slowdown factor of the straggler");
  opt.AddString("straggler-target", "cpu", "degraded resource: cpu|storage|nic|machine");
  opt.AddDouble("fault-at-ms", 0.0, "simulated time the degradation begins");
  opt.AddDouble("fault-duration-ms", 0.0, "degradation length (0 = permanent)");
  opt.AddInt("checkpoint-interval", 0, "checkpoint every N supersteps (0 = off)");
  opt.AddInt("kill-machine", -1, "fail-stop this machine mid-run (-1 = none)");
  opt.AddDouble("kill-at", 0.5,
                "simulated failure time in SECONDS (note: --fault-at-ms is in ms)");
  opt.AddBool("rescale", false, "recover on N-1 machines instead of a same-size cluster");
  opt.AddInt("source", 0, "source vertex (bfs/sssp)");
  opt.AddInt("iterations", 5, "iterations (pagerank/bp)");
  opt.AddInt("seed", 1, "seed");
  opt.AddString("out", "", "write per-vertex results to this file (single run only)");
  opt.AddString("sweep", "",
                "semicolon-separated knob lists, e.g. \"machines=1,2,4;chunk-kb=128,256\":"
                " run the cross product as parallel points");
  opt.AddInt("jobs", 0, "host threads for --sweep points (0 = all cores)");
  opt.AddBool("verbose", false, "info-level logging");
}

struct RunOutcome {
  int rc = 1;
  double sim_seconds = 0.0;
  double preprocess_seconds = 0.0;
  uint64_t supersteps = 0;
  uint64_t vertices = 0;
  uint64_t edges = 0;
  bool recovered = false;
};

// One complete simulation driven by a parsed flag set. `quiet` suppresses
// the detailed per-run narration (sweep points print nothing; the summary
// table is produced by the caller after the sweep joins).
RunOutcome RunOnce(const Options& opt, bool quiet) {
  RunOutcome outcome;
  const std::string algo = opt.GetString("algo");
  const AlgorithmInfo& info = AlgorithmByName(algo);
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // ---- Input.
  InputGraph raw;
  if (!opt.GetString("input").empty()) {
    std::string error;
    auto loaded = LoadEdgeListBinary(opt.GetString("input"), &error);
    if (!loaded.has_value()) {
      loaded = LoadEdgeListText(opt.GetString("input"), &error);
    }
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot load %s: %s\n", opt.GetString("input").c_str(),
                   error.c_str());
      return outcome;
    }
    raw = std::move(*loaded);
    if (info.needs_weights && !raw.weighted && !quiet) {
      std::fprintf(stderr, "note: %s expects weights; using weight 1 per edge\n",
                   algo.c_str());
    }
  } else {
    const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
    const std::string kind = opt.GetString("generate");
    if (kind == "rmat") {
      RmatOptions gopt;
      gopt.scale = scale;
      gopt.weighted = info.needs_weights;
      gopt.seed = seed;
      raw = GenerateRmat(gopt);
    } else if (kind == "web") {
      WebGraphOptions gopt;
      gopt.num_pages = 1ull << scale;
      gopt.num_hosts = std::max<uint64_t>(gopt.num_pages >> 8, 4);
      gopt.seed = seed;
      raw = GenerateWebGraph(gopt);
    } else if (kind == "grid") {
      GridGraphOptions gopt;
      gopt.width = 1u << (scale / 2);
      gopt.height = 1u << (scale - scale / 2);
      gopt.seed = seed;
      raw = GenerateGridGraph(gopt);
    } else if (kind == "uniform") {
      raw = GenerateUniformRandom(1ull << scale, 16ull << scale, info.needs_weights, seed);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
      return outcome;
    }
  }
  InputGraph prepared = PrepareInput(algo, raw);
  outcome.vertices = prepared.num_vertices;
  outcome.edges = prepared.num_edges();
  if (!quiet) {
    std::printf("%s over %llu vertices / %llu edges (%s input)\n", algo.c_str(),
                static_cast<unsigned long long>(prepared.num_vertices),
                static_cast<unsigned long long>(prepared.num_edges()),
                FormatBytes(prepared.input_wire_bytes()).c_str());
  }

  // ---- Cluster.
  ClusterConfig cfg;
  cfg.machines = static_cast<int>(opt.GetInt("machines"));
  const auto ppm = static_cast<uint64_t>(opt.GetInt("partitions-per-machine"));
  cfg.memory_budget_bytes = std::max<uint64_t>(
      prepared.num_vertices * 48 / (ppm * static_cast<uint64_t>(cfg.machines)) + 1, 4 << 10);
  cfg.chunk_bytes = static_cast<uint64_t>(opt.GetInt("chunk-kb")) << 10;
  if (opt.GetInt("mem-mb") > 0) {
    // Squeeze the enforced buffer-pool budget without touching the
    // partitioning: the record streams stay identical, pressure shows up
    // as spill I/O and stall time (see docs/REPRODUCTION.md, fig_memory).
    cfg.pool_budget_bytes = static_cast<uint64_t>(opt.GetInt("mem-mb")) << 20;
  }
  cfg.storage = opt.GetBool("hdd") ? StorageConfig::Hdd() : StorageConfig::Ssd();
  cfg.net = opt.GetBool("slow-net") ? NetworkConfig::OneGigE() : NetworkConfig::FortyGigE();
  cfg.alpha = opt.GetDouble("alpha");
  cfg.checkpoint_interval = static_cast<uint32_t>(opt.GetInt("checkpoint-interval"));
  cfg.seed = seed;
  if (opt.GetInt("cores") > 0) {
    cfg.cost.cores = static_cast<int>(opt.GetInt("cores"));
  }
  if (opt.GetDouble("storage-bw-mbps") > 0.0) {
    cfg.storage.bandwidth_bps = opt.GetDouble("storage-bw-mbps") * 1e6;
  }

  // ---- Fault injection.
  const auto victim = static_cast<MachineId>(opt.GetInt("straggler"));
  if (victim >= 0) {
    if (victim >= cfg.machines) {
      std::fprintf(stderr, "--straggler must be in [0, %d)\n", cfg.machines);
      return outcome;
    }
    FaultTarget target = FaultTarget::kCpu;
    if (!ParseFaultTarget(opt.GetString("straggler-target"), &target)) {
      std::fprintf(stderr, "unknown --straggler-target '%s'\n",
                   opt.GetString("straggler-target").c_str());
      return outcome;
    }
    const double severity = opt.GetDouble("straggler-severity");
    if (severity < 1.0) {
      std::fprintf(stderr, "--straggler-severity must be >= 1\n");
      return outcome;
    }
    FaultEvent fault;
    fault.machine = victim;
    fault.target = target;
    fault.factor = 1.0 / severity;
    fault.at = static_cast<TimeNs>(opt.GetDouble("fault-at-ms") * kNsPerMs);
    fault.duration = static_cast<TimeNs>(opt.GetDouble("fault-duration-ms") * kNsPerMs);
    cfg.faults.Add(fault);
    if (!quiet) {
      std::printf("injecting: machine %d %s at %.1fx speed (%s)\n", victim,
                  FaultTargetName(target), 1.0 / severity,
                  fault.permanent() ? "permanent" : "transient");
    }
  }

  // ---- Machine failure + automatic recovery.
  const auto kill_machine = static_cast<MachineId>(opt.GetInt("kill-machine"));
  RecoveryOptions recovery;
  if (kill_machine >= 0) {
    if (kill_machine >= cfg.machines) {
      std::fprintf(stderr, "--kill-machine must be in [0, %d)\n", cfg.machines);
      return outcome;
    }
    if (opt.GetBool("rescale") && cfg.machines < 2) {
      std::fprintf(stderr, "--rescale needs at least 2 machines (cannot shrink below 1)\n");
      return outcome;
    }
    FaultEvent kill;
    kill.at = static_cast<TimeNs>(opt.GetDouble("kill-at") * static_cast<double>(kNsPerSec));
    kill.machine = kill_machine;
    kill.target = FaultTarget::kMachine;
    kill.kind = FaultKind::kMachineCrash;
    cfg.faults.Add(kill);
    if (opt.GetBool("rescale")) {
      recovery.replacement_machines = cfg.machines - 1;
    }
    if (!quiet) {
      std::printf(
          "injecting: machine %d fails (fail-stop) at %.3fs; recovery on %d machines\n",
          kill_machine, opt.GetDouble("kill-at"),
          recovery.replacement_machines > 0 ? recovery.replacement_machines : cfg.machines);
    }
  }

  AlgoParams params;
  params.source = static_cast<VertexId>(opt.GetInt("source"));
  params.iterations = static_cast<uint32_t>(opt.GetInt("iterations"));
  RecoveryReport recovery_report;
  auto result = kill_machine >= 0
                    ? RunChaosAlgorithmWithRecovery(algo, prepared, cfg, params, recovery,
                                                    &recovery_report)
                    : RunChaosAlgorithm(algo, prepared, cfg, params);
  outcome.sim_seconds = result.metrics.total_seconds();
  outcome.preprocess_seconds = ToSeconds(result.metrics.preprocess_time);
  outcome.supersteps = result.supersteps;
  outcome.recovered = recovery_report.crash_detected;
  outcome.rc = 0;

  // ---- Report.
  if (quiet) {
    return outcome;
  }
  std::printf("\n%s", result.metrics.Summary().c_str());
  if (kill_machine >= 0) {
    if (!recovery_report.crash_detected) {
      std::printf("machine failure never fired (run finished at %.3fs, before --kill-at)\n",
                  ToSeconds(result.metrics.total_time));
    } else {
      std::printf(
          "recovery: %s at superstep %llu, lost %llu superstep(s), "
          "time-to-recover %s, end-to-end %s\n",
          recovery_report.recovered_from_checkpoint ? "resumed from checkpoint"
                                                    : "restarted from input",
          static_cast<unsigned long long>(recovery_report.resume_superstep),
          static_cast<unsigned long long>(recovery_report.lost_work_supersteps),
          FormatSeconds(ToSeconds(recovery_report.time_to_recover)).c_str(),
          FormatSeconds(ToSeconds(recovery_report.end_to_end_time)).c_str());
    }
  }
  std::printf("supersteps: %llu\n", static_cast<unsigned long long>(result.supersteps));
  if (algo == "conductance") {
    std::printf("conductance: %.6f\n", result.scalar);
  }
  if (algo == "mcst") {
    std::printf("spanning forest: %llu edges, total weight %.2f\n",
                static_cast<unsigned long long>(result.output_records), result.scalar);
  }
  if (!opt.GetString("out").empty()) {
    std::ofstream out(opt.GetString("out"), std::ios::trunc);
    for (VertexId v = 0; v < prepared.num_vertices; ++v) {
      out << v << ' ' << result.values[v] << '\n';
    }
    std::printf("wrote %llu values to %s\n",
                static_cast<unsigned long long>(prepared.num_vertices),
                opt.GetString("out").c_str());
  }
  return outcome;
}

// ---- Sweep mode.

struct SweepKnob {
  std::string name;
  std::vector<std::string> values;
};

// Parses "machines=1,2,4;chunk-kb=128,256" into knob lists.
bool ParseSweepSpec(const std::string& spec, std::vector<SweepKnob>* knobs) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) {
      semi = spec.size();
    }
    const std::string part = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (part.empty()) {
      continue;
    }
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
      std::fprintf(stderr, "bad --sweep entry '%s' (want knob=v1,v2,...)\n", part.c_str());
      return false;
    }
    SweepKnob knob;
    knob.name = part.substr(0, eq);
    size_t vpos = eq + 1;
    while (vpos <= part.size()) {
      size_t comma = part.find(',', vpos);
      if (comma == std::string::npos) {
        comma = part.size();
      }
      const std::string value = part.substr(vpos, comma - vpos);
      if (value.empty()) {
        std::fprintf(stderr, "empty value in --sweep entry '%s'\n", part.c_str());
        return false;
      }
      knob.values.push_back(value);
      vpos = comma + 1;
    }
    knobs->push_back(std::move(knob));
  }
  if (knobs->empty()) {
    std::fprintf(stderr, "--sweep given but no knobs parsed\n");
    return false;
  }
  return true;
}

int RunSweep(const Options& base, const std::vector<SweepKnob>& knobs, int jobs) {
  // Cross product, row-major in declaration order: the last knob varies
  // fastest, matching nested for-loops.
  size_t num_points = 1;
  for (const SweepKnob& k : knobs) {
    num_points *= k.values.size();
  }
  struct Point {
    Options opt;          // base flags + this point's overrides
    std::string label;    // "machines=2 chunk-kb=128"
  };
  std::vector<Point> grid;
  grid.reserve(num_points);
  for (size_t p = 0; p < num_points; ++p) {
    size_t rem = p;
    std::vector<std::string> args;
    std::string label;
    for (size_t k = knobs.size(); k-- > 0;) {
      const SweepKnob& knob = knobs[k];
      const std::string& value = knob.values[rem % knob.values.size()];
      rem /= knob.values.size();
      args.push_back("--" + knob.name + "=" + value);
      label = knob.name + "=" + value + (label.empty() ? "" : " ") + label;
    }
    Point point{base, std::move(label)};
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& a : args) {
      argv.push_back(a.data());
    }
    if (auto err = point.opt.Parse(static_cast<int>(argv.size()), argv.data())) {
      std::fprintf(stderr, "--sweep knob rejected: %s\n", err->c_str());
      return 1;
    }
    grid.push_back(std::move(point));
  }

  SweepExecutor executor(jobs);  // <= 0 = all cores; executor normalizes
  std::printf("sweep: %zu points x {%s}, %d job(s)\n", grid.size(),
              base.GetString("algo").c_str(), executor.jobs());
  std::vector<RunOutcome> outcomes(grid.size());
  executor.ParallelFor(grid.size(),
                       [&](size_t i) { outcomes[i] = RunOnce(grid[i].opt, /*quiet=*/true); });

  std::printf("%-44s %14s %14s %12s %8s\n", "point", "sim-time(s)", "preproc(s)",
              "supersteps", "status");
  int rc = 0;
  for (size_t i = 0; i < grid.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    std::printf("%-44s %14.4f %14.4f %12llu %8s\n", grid[i].label.c_str(), o.sim_seconds,
                o.preprocess_seconds, static_cast<unsigned long long>(o.supersteps),
                o.rc == 0 ? (o.recovered ? "recov" : "ok") : "FAIL");
    rc = std::max(rc, o.rc);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  RegisterFlags(opt);
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }
  if (opt.GetBool("verbose")) {
    SetLogLevel(LogLevel::kInfo);
  }
  if (!opt.GetString("sweep").empty()) {
    std::vector<SweepKnob> knobs;
    if (!ParseSweepSpec(opt.GetString("sweep"), &knobs)) {
      return 1;
    }
    return RunSweep(opt, knobs, static_cast<int>(opt.GetInt("jobs")));
  }
  return RunOnce(opt, /*quiet=*/false).rc;
}
