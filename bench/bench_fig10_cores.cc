// Figure 10: sensitivity to CPU core count (p = 8, 12, 16), BFS and PR,
// weak scaling, normalized to the 1-machine/16-core runtime. Paper: the
// system performs adequately even with half the cores — a minimum is needed
// only to sustain network throughput.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig10, "Figure 10: sensitivity to CPU core count") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "pagerank"};
  const std::vector<int> core_counts = {16, 12, 8};

  Sweep<double> sweep;
  for (const std::string& name : algos) {
    for (const int cores : core_counts) {
      int step = 0;
      for (const int m : MachineSweep()) {
        const uint32_t scale = base + static_cast<uint32_t>(step);
        sweep.Add([name, scale, cores, m, seed] {
          InputGraph prepared = PrepareInput(name, BenchRmat(scale, false, seed));
          ClusterConfig cfg = BenchClusterConfig(prepared, m, seed);
          cfg.cost.cores = cores;
          return RunJob(MakeJob(name, prepared, cfg)).metrics.total_seconds();
        });
        ++step;
      }
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 10: weak scaling with p CPU cores, normalized to m=1/p=16 ==\n");
  PrintHeader({"algo/cores", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    double base16 = 0.0;
    for (const int cores : core_counts) {
      PrintCell(name + " p=" + std::to_string(cores));
      for (const int m : MachineSweep()) {
        const double s = seconds[idx++];
        if (m == 1 && cores == 16) {
          base16 = s;
        }
        PrintCell(base16 > 0 ? s / base16 : 0.0);
        RecordMetric("fig10." + name + ".p" + std::to_string(cores) + ".m" +
                         std::to_string(m) + ".sim_s",
                     s);
      }
      EndRow();
    }
  }
  std::printf("\npaper: adequate performance with half the cores (curves nearly overlap)\n");
  return 0;
}
