// MutationLog: a seeded, deterministic stream of edge insert/delete batches
// against a raw (directed, pre-PrepareInput) graph — the evolving-graph
// input the paper's production scenarios gesture at (social influence,
// road routing on live data).
//
// The log is generated eagerly at construction so the whole mutation
// history is a pure function of (base graph, options): batch k is produced
// against the graph state after batches [0, k) have been applied, with an
// rng derived per batch. Three generators shape the stream:
//
//   uniform — inserts pick (src, dst) uniformly; deletes pick surviving
//             edges uniformly.
//   hotspot — a small seeded vertex set receives most inserts and loses
//             most deletes (skewed churn, social-graph style).
//   churn   — short-lived edges: each batch preferentially deletes the
//             PREVIOUS batch's inserts before touching old edges.
//
// Deletes name exact edge records (src, dst, weight, flags); Apply removes
// one matching occurrence per record, so multigraph edges are handled and
// application order inside a batch is irrelevant.
#ifndef CHAOS_GRAPH_MUTATION_LOG_H_
#define CHAOS_GRAPH_MUTATION_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"

namespace chaos {

enum class MutatePreset : uint8_t {
  kUniform = 0,
  kHotspot = 1,
  kChurn = 2,
};

const char* MutatePresetName(MutatePreset preset);
std::optional<MutatePreset> MutatePresetByName(const std::string& name);

struct MutationLogOptions {
  // Number of batches in the log. 0 = inactive (JobSpec's default).
  uint32_t num_batches = 0;
  // Batch size as a fraction of the CURRENT edge count (>= 1 edge).
  double rate = 0.01;
  // Fraction of each batch that deletes edges; the rest inserts.
  double delete_fraction = 0.5;
  MutatePreset preset = MutatePreset::kUniform;
  uint64_t seed = 1;
};

struct MutationBatch {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;  // exact records present in the pre-batch graph
};

class MutationLog {
 public:
  MutationLog(const InputGraph& base, const MutationLogOptions& opt);

  uint64_t num_batches() const { return batches_.size(); }
  const MutationBatch& batch(uint64_t k) const { return batches_[k]; }
  const InputGraph& base() const { return base_; }

  // Removes one occurrence of every record in `b.deletes` (preserving the
  // relative order of survivors) and appends `b.inserts`. CHECK-fails if a
  // delete names an edge not present — the log only ever deletes edges it
  // can see, so a miss means the caller applied batches out of order.
  static void Apply(InputGraph* g, const MutationBatch& b);

  // The raw graph after batches [0, k) — GraphAfter(0) is the base.
  InputGraph GraphAfter(uint64_t k) const;

 private:
  InputGraph base_;
  std::vector<MutationBatch> batches_;
};

}  // namespace chaos

#endif  // CHAOS_GRAPH_MUTATION_LOG_H_
