// Figure 19: Chaos vs a Giraph-like system (static partition placement, no
// dynamic load balancing — the paper equates it with "alpha = 0 plus static
// partitions", §10.2), PageRank on RMAT, strong scaling, each system
// normalized to its own 1-machine runtime. Paper: static partitioning
// severely limits scalability.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig19, "Figure 19: Chaos vs a Giraph-like static-placement system") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 27)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<bool> systems = {false, true};  // chaos, giraph-like

  // Unpermuted RMAT: the skew static partitioning cannot adapt to.
  RmatOptions gopt;
  gopt.scale = scale;
  gopt.permute_ids = false;
  gopt.seed = seed;
  auto prepared =
      std::make_shared<InputGraph>(PrepareInput("pagerank", GenerateRmat(gopt)));

  Sweep<double> sweep;
  for (const bool giraph : systems) {
    for (const int m : MachineSweep()) {
      sweep.Add([prepared, giraph, m, seed] {
        ClusterConfig cfg = BenchClusterConfig(*prepared, m, seed);
        if (giraph) {
          cfg.alpha = 0.0;                          // no dynamic load balancing
          cfg.placement = Placement::kLocalMaster;  // data pinned to its partition's machine
        }
        return RunJob(MakeJob("pagerank", *prepared, cfg)).metrics.total_seconds();
      });
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 19: Chaos vs Giraph-like (PR, RMAT-%u), each norm. to own m=1 ==\n",
              scale);
  PrintHeader({"system", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "speedup@32"});
  size_t idx = 0;
  for (const bool giraph : systems) {
    const std::string label = giraph ? "giraph-like" : "chaos";
    PrintCell(label);
    double base_seconds = 0.0;
    double last = 1.0;
    for (const int m : MachineSweep()) {
      const double s = seconds[idx++];
      if (m == 1) {
        base_seconds = s;
      }
      last = base_seconds > 0 ? s / base_seconds : 0.0;
      PrintCell(last, "%.3f");
      RecordMetric("fig19." + label + ".m" + std::to_string(m) + ".sim_s", s);
    }
    PrintCell(last > 0 ? 1.0 / last : 0.0, "%.1fx");
    RecordMetric("fig19." + label + ".speedup_at_32", last > 0 ? 1.0 / last : 0.0);
    EndRow();
  }
  std::printf("\npaper: Giraph's static partitions severely limit scaling; Chaos ~13x\n"
              "(absolute Giraph runtimes are additionally ~10x slower from JVM overheads,\n"
              " which normalization removes)\n");
  return 0;
}
