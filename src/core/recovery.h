// Machine-failure recovery driver (paper §6.6): runs a workload, and if a
// fault-injected MachineCrash aborts it, re-provisions a replacement
// cluster — same size, or rescaled (e.g. the N-1 survivors) with
// repartitioned vertex ranges — imports the last committed checkpoint from
// the durable storage of the crashed cluster, and resumes. This is the
// closed loop behind the paper's "checkpointing is cheap because recovery
// is a restart from the last committed checkpoint" claim (Fig. 13): the
// recovered run must produce the same results as a fault-free one.
//
// Failure model: fail-stop machine failures (sim/fault_injector.h
// FaultKind::kMachineCrash), detected cluster-wide at the next barrier.
// Storage is durable and survives the compute engine's death (the same
// assumption the scripted ClusterConfig::crash_after_superstep experiments
// make), so checkpoint and edge sets can be re-imported host-side. One
// failure per run; the replacement cluster is healthy.
#ifndef CHAOS_CORE_RECOVERY_H_
#define CHAOS_CORE_RECOVERY_H_

#include <algorithm>
#include <utility>

#include "core/cluster.h"
#include "core/job_spec.h"  // RecoveryOptions / RecoveryReport live there now

namespace chaos {

// Runs `prog` over `input` on a cluster configured by `config`; on a
// machine-failure abort, re-provisions and resumes from the last committed
// checkpoint (or restarts from the input if no checkpoint had committed).
// Returns the completed run's result, with recovery accounting filled into
// its Metrics (recovered / lost_work_supersteps / time_to_recover /
// crashed_run_time). `report`, when non-null, receives the full timeline.
template <GasProgram P>
RunResult<P> RunWithRecovery(const ClusterConfig& config, P prog, const InputGraph& input,
                             const RecoveryOptions& opts = {},
                             RecoveryReport* report = nullptr) {
  RecoveryReport rep;
  rep.machines_after = config.machines;

  Cluster<P> cluster(config, prog);
  RunResult<P> first = cluster.Run(input);
  rep.end_to_end_time = first.metrics.total_time;
  if (!first.crashed) {
    if (report != nullptr) {
      *report = rep;
    }
    return first;
  }

  rep.crash_detected = true;
  rep.crashed_run_time = first.metrics.total_time;
  rep.crash_superstep = first.supersteps > 0 ? first.supersteps - 1 : 0;

  // Re-provision: the replacement rack is healthy (the failure already
  // happened; scripted whole-cluster crashes do not recur either).
  ClusterConfig rcfg = config;
  rcfg.faults = FaultSchedule{};
  rcfg.crash_after_superstep = -1;
  if (opts.replacement_machines > 0 && opts.replacement_machines != config.machines) {
    rcfg.machines = opts.replacement_machines;
    rcfg.profiles.clear();  // per-machine overrides do not carry over a rescale
  }
  rep.machines_after = rcfg.machines;

  GraphMeta meta;
  meta.num_vertices = input.num_vertices;
  meta.weighted = input.weighted;
  meta.edge_wire_bytes = input.edge_wire_bytes();
  meta.vertex_id_wire_bytes = input.vertex_id_wire_bytes();

  RunResult<P> second;
  if (first.has_checkpoint) {
    rcfg.resume = true;
    rcfg.resume_superstep = first.checkpoint_superstep;
    rep.resume_superstep = first.checkpoint_superstep;
    rep.recovered_from_checkpoint = true;
    Cluster<P> replacement(rcfg, prog);
    replacement.PreparePartitioning(input.num_vertices);
    // The resume superstep's update set travels with the checkpoint: its
    // commit-time snapshot (gather-phase emissions the resumed scatter
    // cannot regenerate) is re-imported under the live update-set kind the
    // first resumed gather will scan.
    const SetKind usnap = UpdatesCkptFor(first.checkpoint_side);
    const SetKind resume_updates = UpdatesFor(first.checkpoint_superstep);
    if (rcfg.machines == config.machines) {
      // Same-size replacement: chunk homes are machine-count-stable, so the
      // durable sets copy across position-for-position.
      replacement.ImportSets(cluster, first.checkpoint_edges_kind, SetKind::kEdges);
      replacement.ImportSets(cluster, first.checkpoint_side, SetKind::kVertices);
      replacement.ImportSets(cluster, usnap, resume_updates);
    } else {
      replacement.ImportRepartitioned(cluster, first.checkpoint_side, meta, usnap,
                                      resume_updates, first.checkpoint_edges_kind);
    }
    second = replacement.Resume(meta, first.checkpoint_global);
    // The replacement re-executes supersteps >= resume_superstep and
    // re-emits their sink outputs; outputs emitted by the crashed run's
    // earlier, completed supersteps (e.g. MSF edges) are part of the final
    // answer and must be carried across the restart.
    auto committed = cluster.OutputsBefore(first.checkpoint_superstep);
    second.outputs.insert(second.outputs.begin(),
                          std::make_move_iterator(committed.begin()),
                          std::make_move_iterator(committed.end()));
  } else {
    // The failure hit before any checkpoint committed (e.g. during
    // pre-processing): nothing to resume from, restart the whole run.
    rcfg.resume = false;
    Cluster<P> replacement(rcfg, std::move(prog));
    second = replacement.Run(input);
  }

  // A zero preprocess time marks a run that died before pre-processing
  // finished: no superstep was ever entered (the engine only records the
  // preprocess end on the healthy path).
  const bool died_in_preprocess = first.metrics.preprocess_time == 0;
  rep.lost_work_supersteps =
      !died_in_preprocess && rep.crash_superstep >= rep.resume_superstep
          ? rep.crash_superstep - rep.resume_superstep + 1
          : 0;
  // Time to recover: replacement-cluster time until the work the failure
  // destroyed has been re-done — the aborted superstep's gather barrier,
  // or the re-run pre-processing when the crash predated any superstep.
  // A crash between a checkpoint's commit and its phase-2 barrier can leave
  // resume_superstep past crash_superstep: nothing to re-execute.
  const auto& times = second.metrics.superstep_end_times;
  if (died_in_preprocess) {
    rep.time_to_recover = second.metrics.preprocess_time;
  } else if (rep.crash_superstep < rep.resume_superstep) {
    rep.time_to_recover = 0;
  } else if (times.empty()) {
    rep.time_to_recover = second.metrics.total_time;
  } else {
    const uint64_t idx = rep.crash_superstep - rep.resume_superstep;
    rep.time_to_recover = times[std::min<uint64_t>(idx, times.size() - 1)];
  }
  rep.end_to_end_time = rep.crashed_run_time + second.metrics.total_time;

  second.metrics.recovered = true;
  second.metrics.lost_work_supersteps = rep.lost_work_supersteps;
  second.metrics.time_to_recover = rep.time_to_recover;
  second.metrics.crashed_run_time = rep.crashed_run_time;
  if (report != nullptr) {
    *report = rep;
  }
  return second;
}

}  // namespace chaos

#endif  // CHAOS_CORE_RECOVERY_H_
