// Differential test suite: every Table-1 algorithm x {RMAT, grid, web}
// input x {1, 2, 4} machines x {fault-free, straggler, crash+recovery,
// low-mem} checked against the sequential golden models in src/graph/ref/.
//
// The full 360-point matrix runs as ONE parallel sweep on the
// SweepExecutor (util/parallel.h) the first time any test case asks for
// its outcome; each gtest parameterized case then just asserts its own
// point. Every point derives its seed as DeriveSeed(kBaseSeed, index) —
// the failure message names the point and its seed, so any red case is
// reproducible in isolation regardless of thread count or schedule.
//
// What the fault modes claim (paper §2: the answer is invariant under
// randomized placement, stealing, faults and recovery):
//  * straggler — a 4x CPU slowdown on one machine changes timing and steal
//    patterns but must not change results (floats: within tolerance).
//  * crash+recovery — a fail-stop machine crash mid-run, recovered from
//    the last committed checkpoint, must still produce reference results.
//  * low-mem — the enforced buffer-pool budget (core/buffer_pool.h)
//    squeezed far below the working set: heavy spill/fault-in traffic and
//    stalls change timing everywhere but must not change results.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/basic.h"
#include "algorithms/runner.h"
#include "graph/generators.h"
#include "graph/mutation_log.h"
#include "graph/ref/reference.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace chaos {
namespace {

constexpr uint64_t kBaseSeed = 20260729;

enum class FaultMode { kNone, kStraggler, kCrashRecovery, kLowMemory };

const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone:
      return "healthy";
    case FaultMode::kStraggler:
      return "straggler";
    case FaultMode::kCrashRecovery:
      return "crash";
    case FaultMode::kLowMemory:
      return "lowmem";
  }
  return "?";
}

struct Point {
  std::string algo;
  std::string graph;  // rmat | grid | web
  int machines = 1;
  FaultMode fault = FaultMode::kNone;
  // Steal-policy column: run the straggler fault under an explicit steal
  // policy (mode + backoff + victim_check) instead of the config default.
  bool policy_point = false;
  StealMode steal = StealMode::kStealOne;
  // Mutation column: run an evolving-graph schedule (3 batches, preset by
  // graph family) and check the incremental result against the golden model
  // of the POST-mutation graph.
  bool mutation_point = false;
  size_t index = 0;  // position in the grid; seeds derive from it
};

std::string PointName(const Point& p) {
  std::ostringstream name;
  name << p.algo << "_" << p.graph << "_m" << p.machines << "_" << FaultModeName(p.fault);
  if (p.policy_point) {
    name << "_" << StealModeName(p.steal);
  }
  if (p.mutation_point) {
    name << "_mutated";
  }
  return name.str();
}

std::vector<Point> BuildGrid() {
  std::vector<Point> grid;
  for (const auto& info : Algorithms()) {
    for (const std::string graph : {"rmat", "grid", "web"}) {
      for (const int machines : {1, 2, 4}) {
        for (const FaultMode fault :
             {FaultMode::kNone, FaultMode::kStraggler, FaultMode::kCrashRecovery}) {
          Point p;
          p.algo = info.name;
          p.graph = graph;
          p.machines = machines;
          p.fault = fault;
          p.index = grid.size();
          grid.push_back(p);
        }
      }
    }
  }
  // The low-mem column is APPENDED after the original 270-point block
  // rather than nested in the fault loop: point seeds derive from grid
  // indices, so inserting mid-grid would silently re-seed every later
  // point and reset the history the original block has accumulated.
  for (const auto& info : Algorithms()) {
    for (const std::string graph : {"rmat", "grid", "web"}) {
      for (const int machines : {1, 2, 4}) {
        Point p;
        p.algo = info.name;
        p.graph = graph;
        p.machines = machines;
        p.fault = FaultMode::kLowMemory;
        p.index = grid.size();
        grid.push_back(p);
      }
    }
  }
  // The steal-policy column (also appended, same reason): every algorithm x
  // graph under the straggler fault at 4 machines, once per steal mode with
  // the full policy runtime on (backoff + victim-check). Stealing amount and
  // proposal routing may change timing arbitrarily; results may not move.
  for (const auto& info : Algorithms()) {
    for (const std::string graph : {"rmat", "grid", "web"}) {
      for (const StealMode mode :
           {StealMode::kStealOne, StealMode::kStealHalf, StealMode::kAdaptive}) {
        Point p;
        p.algo = info.name;
        p.graph = graph;
        p.machines = 4;
        p.fault = FaultMode::kStraggler;
        p.policy_point = true;
        p.steal = mode;
        p.index = grid.size();
        grid.push_back(p);
      }
    }
  }
  // The mutation column (appended after the 450-point block, same
  // index-stability reason): the monotone algorithms under an evolving
  // schedule — 3 mutation batches applied at convergence barriers, the
  // incremental re-converged result checked against the golden model of the
  // fully mutated graph. The preset follows the graph family: uniform churn
  // for RMAT, hotspot writes for the road grid, insert/delete churn for web.
  for (const std::string algo : {"bfs", "wcc", "sssp"}) {
    for (const std::string graph : {"rmat", "grid", "web"}) {
      for (const int machines : {1, 2, 4}) {
        Point p;
        p.algo = algo;
        p.graph = graph;
        p.machines = machines;
        p.mutation_point = true;
        p.index = grid.size();
        grid.push_back(p);
      }
    }
  }
  return grid;
}

InputGraph MakeRawGraph(const std::string& kind, bool weighted, uint64_t seed) {
  if (kind == "rmat") {
    RmatOptions opt;
    opt.scale = 8;  // 256 vertices, 4096 edges
    opt.weighted = weighted;
    opt.seed = seed;
    return GenerateRmat(opt);
  }
  if (kind == "grid") {
    GridGraphOptions opt;
    opt.width = 16;
    opt.height = 16;
    opt.weighted = true;  // road lengths; harmless for unweighted programs
    opt.seed = seed;
    return GenerateGridGraph(opt);
  }
  WebGraphOptions opt;
  opt.num_pages = 256;
  opt.num_hosts = 8;
  opt.weighted = weighted;
  opt.seed = seed;
  return GenerateWebGraph(opt);
}

ClusterConfig PointConfig(int machines, uint64_t seed) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.seed = seed;
  return cfg;
}

std::vector<uint32_t> ToGroupIds(const std::vector<double>& values) {
  std::vector<uint32_t> out;
  out.reserve(values.size());
  std::map<double, uint32_t> ids;
  for (const double v : values) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(ids.size()));
    out.push_back(it->second);
  }
  return out;
}

// Compares a finished run against the golden model. `raw` is the graph
// before PrepareInput (SCC's reference runs on the plain directed edges),
// `prepared` the algorithm's actual input. Returns "" on success.
std::string CheckAgainstReference(const std::string& algo, const InputGraph& raw,
                                  const InputGraph& prepared, const AlgoParams& params,
                                  const AlgoResult& result) {
  std::ostringstream err;
  if (algo == "bfs") {
    const auto expect = ref::BfsDepths(prepared, params.source);
    for (size_t v = 0; v < expect.size(); ++v) {
      if (result.values[v] != static_cast<double>(expect[v])) {
        err << "bfs depth mismatch at vertex " << v << ": got " << result.values[v]
            << ", want " << expect[v];
        return err.str();
      }
    }
  } else if (algo == "wcc") {
    const auto expect = ref::ComponentLabels(prepared);
    for (size_t v = 0; v < expect.size(); ++v) {
      if (result.values[v] != static_cast<double>(expect[v])) {
        err << "wcc label mismatch at vertex " << v << ": got " << result.values[v]
            << ", want " << expect[v];
        return err.str();
      }
    }
  } else if (algo == "mcst") {
    const auto expect = ref::KruskalMsf(prepared);
    if (result.output_records != expect.num_edges) {
      err << "mcst forest size: got " << result.output_records << ", want "
          << expect.num_edges;
      return err.str();
    }
    if (std::abs(result.scalar - expect.total_weight) > 1e-2) {
      err << "mcst weight: got " << result.scalar << ", want " << expect.total_weight;
      return err.str();
    }
  } else if (algo == "mis") {
    std::vector<uint8_t> in_set(prepared.num_vertices);
    for (VertexId v = 0; v < prepared.num_vertices; ++v) {
      in_set[v] = result.values[v] > 0.5 ? 1 : 0;
    }
    if (!ref::IsMaximalIndependentSet(prepared, in_set)) {
      return "mis output is not a maximal independent set";
    }
  } else if (algo == "sssp") {
    const auto expect = ref::DijkstraDistances(prepared, params.source);
    for (size_t v = 0; v < expect.size(); ++v) {
      if (std::isinf(expect[v])) {
        if (!std::isinf(result.values[v])) {
          err << "sssp: vertex " << v << " should be unreachable, got " << result.values[v];
          return err.str();
        }
        continue;
      }
      if (std::abs(result.values[v] - expect[v]) > 1e-2) {
        err << "sssp distance mismatch at vertex " << v << ": got " << result.values[v]
            << ", want " << expect[v];
        return err.str();
      }
    }
  } else if (algo == "pagerank") {
    const auto expect = ref::PageRank(prepared, static_cast<int>(params.iterations),
                                      params.damping);
    for (size_t v = 0; v < expect.size(); ++v) {
      if (std::abs(result.values[v] - expect[v]) > 1e-3 * (1.0 + std::abs(expect[v]))) {
        err << "pagerank mismatch at vertex " << v << ": got " << result.values[v]
            << ", want " << expect[v];
        return err.str();
      }
    }
  } else if (algo == "scc") {
    const auto expect = ref::StronglyConnectedComponents(raw);
    if (!ref::SamePartition(ToGroupIds(result.values), expect)) {
      return "scc grouping differs from Tarjan's";
    }
  } else if (algo == "conductance") {
    std::vector<uint8_t> member(prepared.num_vertices);
    for (VertexId v = 0; v < prepared.num_vertices; ++v) {
      member[v] = ConductanceProgram::InSubset(v) ? 1 : 0;
    }
    const double expect = ref::Conductance(prepared, member);
    if (std::abs(result.scalar - expect) > 1e-9 * (1.0 + std::abs(expect))) {
      err << "conductance: got " << result.scalar << ", want " << expect;
      return err.str();
    }
  } else if (algo == "spmv") {
    std::vector<double> x(prepared.num_vertices);
    for (VertexId v = 0; v < prepared.num_vertices; ++v) {
      x[v] = SpmvProgram::InputVector(v);
    }
    const auto expect = ref::SpMV(prepared, x);
    for (size_t v = 0; v < expect.size(); ++v) {
      if (std::abs(result.values[v] - expect[v]) > 1e-2 * (1.0 + std::abs(expect[v]))) {
        err << "spmv mismatch at vertex " << v << ": got " << result.values[v] << ", want "
            << expect[v];
        return err.str();
      }
    }
  } else if (algo == "bp") {
    std::vector<double> priors(prepared.num_vertices);
    for (VertexId v = 0; v < prepared.num_vertices; ++v) {
      priors[v] = static_cast<double>(BpProgram::Prior(v));
    }
    const auto expect =
        ref::BeliefPropagation(prepared, priors, static_cast<int>(params.iterations),
                               params.bp_damping);
    for (size_t v = 0; v < expect.size(); ++v) {
      if (std::abs(result.values[v] - expect[v]) > 1e-2 * (1.0 + std::abs(expect[v]))) {
        err << "bp mismatch at vertex " << v << ": got " << result.values[v] << ", want "
            << expect[v];
        return err.str();
      }
    }
  } else {
    return "no reference check wired for algorithm " + algo;
  }
  return "";
}

// Runs one point start to finish: build input, run (with the point's fault
// mode), compare to the golden model. Returns "" or a failure description.
std::string RunPoint(const Point& p) {
  const uint64_t seed = DeriveSeed(kBaseSeed, p.index);
  const AlgorithmInfo& info = AlgorithmByName(p.algo);
  ScopedLogCounts log_scope;

  const InputGraph raw = MakeRawGraph(p.graph, info.needs_weights, seed);
  const InputGraph prepared = PrepareInput(p.algo, raw);
  AlgoParams params;  // defaults: source 0, 5 iterations

  if (p.mutation_point) {
    MutationLogOptions mopt;
    mopt.num_batches = 3;
    mopt.rate = 0.03;
    mopt.preset = p.graph == "rmat"    ? MutatePreset::kUniform
                  : p.graph == "grid" ? MutatePreset::kHotspot
                                      : MutatePreset::kChurn;
    mopt.seed = DeriveSeed(seed, 0x4d55);
    // Evolving jobs take the RAW graph; preparation happens per epoch.
    JobSpec spec = MakeJob(p.algo, raw, PointConfig(p.machines, seed), params);
    spec.mutations.log = mopt;
    const AlgoResult result = RunJob(spec);
    if (result.metrics.mutation_epochs.size() != mopt.num_batches) {
      std::ostringstream err;
      err << "applied " << result.metrics.mutation_epochs.size() << " of "
          << mopt.num_batches << " mutation epochs";
      return err.str();
    }
    // Golden model of the fully mutated graph, replayed independently.
    MutationLog log(raw, mopt);
    const InputGraph mutated_raw = log.GraphAfter(mopt.num_batches);
    const InputGraph mutated_prepared = PrepareInput(p.algo, mutated_raw);
    if (p.algo == "sssp") {
      // Tighter bound than the static sssp column: incremental warm starts
      // must land on the same fixed point, not merely near it.
      const auto expect = ref::DijkstraDistances(mutated_prepared, params.source);
      for (size_t v = 0; v < expect.size(); ++v) {
        if (std::isinf(expect[v]) != std::isinf(result.values[v]) ||
            (!std::isinf(expect[v]) && std::abs(result.values[v] - expect[v]) > 1e-3)) {
          std::ostringstream err;
          err << "mutated sssp mismatch at vertex " << v << ": got " << result.values[v]
              << ", want " << expect[v];
          return err.str();
        }
      }
    } else {
      const std::string failure =
          CheckAgainstReference(p.algo, mutated_raw, mutated_prepared, params, result);
      if (!failure.empty()) {
        return failure;
      }
    }
    const LogCounts counts = log_scope.Delta();
    if (counts.warnings() != 0 || counts.errors() != 0) {
      return "mutation point logged warnings/errors; expected a clean run";
    }
    return "";
  }

  AlgoResult result;
  switch (p.fault) {
    case FaultMode::kNone: {
      result = RunJob(MakeJob(p.algo, prepared, PointConfig(p.machines, seed), params));
      break;
    }
    case FaultMode::kStraggler: {
      ClusterConfig cfg = PointConfig(p.machines, seed);
      // Last machine at quarter speed from t=0, permanently.
      cfg.faults = FaultSchedule::Straggler(p.machines - 1, 4.0, FaultTarget::kCpu);
      if (p.policy_point) {
        cfg.steal.mode = p.steal;
        cfg.steal.backoff = true;
        cfg.steal.victim_check = true;
      }
      result = RunJob(MakeJob(p.algo, prepared, cfg, params));
      break;
    }
    case FaultMode::kCrashRecovery: {
      // Place the kill ~50% into the post-preprocessing computation of a
      // fault-free probe run, checkpoint every superstep, then demand the
      // recovered run still matches the reference.
      auto probe = RunJob(MakeJob(p.algo, prepared, PointConfig(p.machines, seed), params));
      const TimeNs kill_at =
          probe.metrics.preprocess_time +
          static_cast<TimeNs>(0.5 * static_cast<double>(probe.metrics.total_time -
                                                        probe.metrics.preprocess_time));
      ClusterConfig cfg = PointConfig(p.machines, seed);
      cfg.checkpoint_interval = 1;
      cfg.faults = FaultSchedule::MachineCrash(p.machines - 1, kill_at);
      JobSpec spec = MakeJob(p.algo, prepared, cfg, params);
      spec.recover = true;
      result = RunJob(spec);
      if (result.crashed) {
        return "recovery left the run in a crashed state";
      }
      break;
    }
    case FaultMode::kLowMemory: {
      // Squeeze the enforced buffer pool far below the streaming working
      // set (vertex batch + accumulators + fetch/write windows): the run
      // thrashes — spill, fault-in, device stalls — yet must still match
      // the golden model exactly like the healthy column.
      ClusterConfig cfg = PointConfig(p.machines, seed);
      // One chunk's worth of budget: any vertex batch plus a single
      // in-flight 2 KiB chunk is already over, so every point — the
      // 256-vertex grids at 4 machines included — really does thrash.
      cfg.pool_budget_bytes = 2 << 10;
      result = RunJob(MakeJob(p.algo, prepared, cfg, params));
      if (result.metrics.SpillBytesMoved() == 0) {
        return "low-mem point generated no spill traffic; pressure knob inert?";
      }
      break;
    }
  }

  std::string failure = CheckAgainstReference(p.algo, raw, prepared, params, result);
  if (!failure.empty()) {
    return failure;
  }
  // Clean-log invariant: no point may emit warnings or errors, and — with
  // the per-thread counters of util/logging.h — concurrently running
  // trials cannot inflate this scope's counts.
  const LogCounts counts = log_scope.Delta();
  if (counts.warnings() != 0 || counts.errors() != 0) {
    std::ostringstream err;
    err << "point logged " << counts.warnings() << " warning(s) and " << counts.errors()
        << " error(s); expected a clean run";
    return err.str();
  }
  return "";
}

// Lazily runs the entire grid as one parallel sweep and caches outcomes.
const std::vector<std::string>& Outcomes() {
  static const std::vector<std::string>* outcomes = [] {
    const std::vector<Point> grid = BuildGrid();
    auto* results = new std::vector<std::string>(grid.size());
    SweepExecutor executor;  // hardware concurrency
    executor.ParallelFor(grid.size(),
                         [&](size_t i) { (*results)[i] = RunPoint(grid[i]); });
    return results;
  }();
  return *outcomes;
}

class DifferentialTest : public ::testing::TestWithParam<Point> {};

TEST_P(DifferentialTest, MatchesGoldenModel) {
  const Point& p = GetParam();
  const std::string& failure = Outcomes()[p.index];
  EXPECT_TRUE(failure.empty())
      << "point " << PointName(p) << " (index " << p.index << ", seed "
      << DeriveSeed(kBaseSeed, p.index) << "): " << failure;
}

INSTANTIATE_TEST_SUITE_P(AllPoints, DifferentialTest, ::testing::ValuesIn(BuildGrid()),
                         [](const ::testing::TestParamInfo<Point>& info) {
                           return PointName(info.param);
                         });

// The seed grid itself is part of the contract: a reshuffled grid would
// silently re-seed every point and mask history-dependent regressions.
TEST(DifferentialGridTest, GridShapeAndSeedsAreStable) {
  const auto grid = BuildGrid();
  ASSERT_EQ(grid.size(), 10u * 3u * 3u * 4u + 10u * 3u * 3u + 3u * 3u * 3u);
  EXPECT_EQ(grid[0].algo, "bfs");
  EXPECT_EQ(grid[0].graph, "rmat");
  EXPECT_EQ(grid[0].machines, 1);
  EXPECT_EQ(grid[0].fault, FaultMode::kNone);
  // The original 270-point block keeps its indices (and so its seeds); the
  // low-mem column is strictly appended, the steal-policy column after it.
  EXPECT_EQ(grid[269].fault, FaultMode::kCrashRecovery);
  EXPECT_EQ(grid[269].algo, "bp");
  EXPECT_EQ(grid[270].fault, FaultMode::kLowMemory);
  EXPECT_EQ(grid[270].algo, "bfs");
  EXPECT_EQ(grid[270].machines, 1);
  EXPECT_EQ(grid[359].fault, FaultMode::kLowMemory);
  EXPECT_EQ(grid[359].algo, "bp");
  EXPECT_FALSE(grid[359].policy_point);
  EXPECT_TRUE(grid[360].policy_point);
  EXPECT_EQ(grid[360].algo, "bfs");
  EXPECT_EQ(grid[360].graph, "rmat");
  EXPECT_EQ(grid[360].machines, 4);
  EXPECT_EQ(grid[360].fault, FaultMode::kStraggler);
  EXPECT_EQ(grid[360].steal, StealMode::kStealOne);
  EXPECT_EQ(grid[449].steal, StealMode::kAdaptive);
  EXPECT_FALSE(grid[449].mutation_point);
  // The mutation column is strictly appended after the steal-policy block.
  EXPECT_TRUE(grid[450].mutation_point);
  EXPECT_EQ(grid[450].algo, "bfs");
  EXPECT_EQ(grid[450].graph, "rmat");
  EXPECT_EQ(grid[450].machines, 1);
  EXPECT_TRUE(grid[476].mutation_point);
  EXPECT_EQ(grid[476].algo, "sssp");
  EXPECT_EQ(grid[476].graph, "web");
  EXPECT_EQ(grid[476].machines, 4);
  // DeriveSeed is pinned: splitmix64-based, platform-stable.
  EXPECT_EQ(DeriveSeed(1, 0), DeriveSeed(1, 0));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
}

}  // namespace
}  // namespace chaos
