// Figure 12: 40 GigE vs 1 GigE, BFS and PR, weak scaling normalized to the
// 1-machine runtime. With 1 GigE the network (1/4 of disk bandwidth in the
// paper's setup) becomes the bottleneck and scaling degrades badly —
// the experiment behind the "network must be at least as fast as storage"
// requirement (§9.4).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig12, "Figure 12: 40 GigE vs 1 GigE weak scaling") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Figure 12: 40GigE vs 1GigE, weak scaling, normalized to m=1 ==\n");
  PrintHeader({"algo/net", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  for (const std::string name : {"bfs", "pagerank"}) {
    for (const bool fast : {true, false}) {
      PrintCell(name + (fast ? " 40G" : " 1G"));
      double base_seconds = 0.0;
      int step = 0;
      for (const int m : MachineSweep()) {
        InputGraph raw = BenchRmat(base + static_cast<uint32_t>(step), false, seed);
        InputGraph prepared = PrepareInput(name, raw);
        ClusterConfig cfg = BenchClusterConfig(
            prepared, m, seed, StorageConfig::Ssd(),
            fast ? NetworkConfig::FortyGigE() : NetworkConfig::OneGigE());
        auto result = RunChaosAlgorithm(name, prepared, cfg);
        const double seconds = result.metrics.total_seconds();
        if (m == 1) {
          base_seconds = seconds;  // each curve normalized to its own m=1
        }
        PrintCell(base_seconds > 0 ? seconds / base_seconds : 0.0);
        ++step;
      }
      EndRow();
    }
  }
  std::printf("\npaper: 1GigE curves blow up to 5-9x while 40GigE stays < 2x\n");
  return 0;
}
