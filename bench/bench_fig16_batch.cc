// Figure 16: runtime as a function of the batching window phi*k, all ten
// algorithms at the largest machine count, normalized to phi*k = 10 (the
// paper's sweet spot: k = 5, phi = 2 measured on its SSD/40GigE testbed).
// Small windows leave storage engines idle (Eq. 4); very large windows
// degrade through queueing and incast.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig16, "Figure 16: runtime vs batching window phi*k") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<int> windows = {1, 2, 3, 5, 10, 16, 32};

  Sweep<double> sweep;
  for (const auto& info : Algorithms()) {
    auto prepared = std::make_shared<InputGraph>(
        PrepareInput(info.name, BenchRmat(scale, info.needs_weights, seed)));
    for (const int window : windows) {
      const std::string name = info.name;
      sweep.Add([name, prepared, machines, seed, window] {
        ClusterConfig cfg = BenchClusterConfig(*prepared, machines, seed);
        cfg.phi = 1.0;
        cfg.batch_k = window;  // fetch window = phi * k = window
        return RunJob(MakeJob(name, *prepared, cfg)).metrics.total_seconds();
      });
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 16: runtime vs batch window phi*k (RMAT-%u, m=%d), norm to 10 ==\n",
              scale, machines);
  PrintHeader({"algorithm", "pk=1", "pk=2", "pk=3", "pk=5", "pk=10", "pk=16", "pk=32"});
  size_t idx = 0;
  for (const auto& info : Algorithms()) {
    const size_t row_start = idx;
    double sweet = 0.0;
    for (const int window : windows) {
      if (window == 10) {
        sweet = seconds[idx];
      }
      ++idx;
    }
    PrintCell(info.name);
    size_t col = row_start;
    for (const int window : windows) {
      const double s = seconds[col++];
      PrintCell(sweet > 0 ? s / sweet : 0.0);
      RecordMetric("fig16." + info.name + ".pk" + std::to_string(window) + ".sim_s", s);
    }
    EndRow();
  }
  std::printf("\npaper: clear sweet spot at phi*k = 10; slower below (idle devices)\n"
              "and slightly slower above (queueing delay and incast congestion)\n");
  return 0;
}
