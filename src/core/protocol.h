// Compute-engine to compute-engine protocol: work stealing, accumulator
// pulls, and the coordinator-based barrier with global-state reduction.
//
// Message-to-paper map (section / figure references are to the Chaos paper;
// "Fig. 4" line numbers are the paper's pseudocode listing of the engine
// loop, which src/core/compute_engine.h mirrors):
//
//   kHelpProposalReq/Resp  work stealing (§5.3-§5.4, Fig. 4 lines 23-33 for
//                          scatter, 46-53 for gather): an idle engine
//                          proposes to help a VICTIM MACHINE; the victim
//                          grants partitions it masters, each admitted iff
//                          V + D/(H+1) < alpha * D/H (§5.4). The request
//                          carries an amount hint (steal-half vs steal-one,
//                          core/steal_policy.h) and the response carries a
//                          task-indicator hint ("I still have open work")
//                          so helpers can skip drained victims — one
//                          round-trip per victim per sweep instead of one
//                          per partition, which is what keeps the request
//                          storm linear at 32-128 machines. With
//                          steal_combine on, proposals from one steal
//                          domain queued together at a victim are modeled
//                          as ONE merged control message (amount = sum of
//                          the members' asks): the victim pays a single
//                          per-message MessageTime() charge per co-domain
//                          run, while every member still receives its own
//                          grant decision and response (engine_core.cc
//                          ControlServer; pure math in steal_policy.h
//                          CombinedProposalCharges).
//   kAccumPullReq/Resp     gather-phase accumulator reconciliation (§5.3,
//                          Fig. 4 line 52): the master pulls each stealer's
//                          replica accumulator array and merges it before
//                          apply; the stealer parks its replica until taken.
//   kBarrierArrive/Release the end-of-phase global barrier (§4, §5.2): the
//                          coordinator (machine 0) folds every machine's
//                          aggregator delta into the global state, runs the
//                          program's Advance, and releases everyone with the
//                          canonical global for the next phase. Arrivals
//                          double as the failure detector (§6.6): an engine
//                          on a fault-killed machine flags its arrival
//                          (`failed`), and the coordinator aborts the
//                          superstep cluster-wide by releasing with `crash`.
//                          A release can also signal the scripted
//                          whole-cluster crash of the checkpoint-recovery
//                          experiments (§6.6/Fig. 13).
//   kControlShutdown       simulation teardown, no paper counterpart.
#ifndef CHAOS_CORE_PROTOCOL_H_
#define CHAOS_CORE_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

enum ComputeMsgType : uint32_t {
  kHelpProposalReq = 300,   // body: HelpProposalReq -> kHelpProposalResp
  kHelpProposalResp = 301,  // body: HelpProposalResp
  kAccumPullReq = 302,      // body: AccumPullReq -> kAccumPullResp
  kAccumPullResp = 303,     // body: AccumPullResp
  kBarrierArrive = 304,     // body: BarrierArriveMsg -> kBarrierRelease
  kBarrierRelease = 305,    // body: BarrierReleaseMsg
  kControlShutdown = 306,
};

// The two streaming phases of a superstep (§4). Steal proposals carry the
// proposer's phase so a master never hands out work for a phase it has
// already left (the proposal is then rejected, Fig. 4 line 27).
enum class EnginePhase : uint8_t {
  kScatter = 0,
  kGather = 1,
};

// "May I help you?" (Fig. 4 lines 24-26), sent by an engine that has
// finished its own partitions to a victim machine chosen in a seeded random
// sweep order (§5.3: randomized stealing needs no load information;
// EngineCore::StealVictimOrder adds the optional 2-level domain routing).
// `steal_half` is the amount hint of the configured StealMode: ask for up
// to half of the victim's open partitions instead of one. The superstep
// guards against stale proposals crossing a barrier.
struct HelpProposalReq {
  EnginePhase phase = EnginePhase::kScatter;
  uint64_t superstep = 0;
  bool steal_half = false;
};

// The victim's grant (§5.4, Fig. 4 lines 27-31): the partitions — up to
// StealGrantLimit(steal_half, open) of them, swept from a rotating cursor —
// whose steal decision accepted one more helper: remaining work D
// (estimated from local storage's unserved bytes, scaled by the machine
// count) must justify copying the partition's vertex set V to one more
// helper, V + D/(H+1) < alpha * D/H. alpha is the stealing bias of
// ClusterConfig (Fig. 18 sweeps it; 0 disables stealing). `more_work` is
// the task-indicator hint (victim still has open partitions); with
// victim_check on, a helper skips victims that said false for the rest of
// the phase.
struct HelpProposalResp {
  std::vector<PartitionId> granted;
  bool more_work = false;
};

// After closing a gather-phase partition, the master pulls the replica
// accumulators of every helper it admitted (Fig. 4 line 52) and merges them
// with MergeAccum before apply (§5.3: replicas make gather idempotent under
// concurrent streaming).
struct AccumPullReq {
  PartitionId partition = 0;
  uint64_t superstep = 0;
};

// The stealer's accumulator array for the partition, shipped as a chunk
// (count = partition vertex count, wire = count * sizeof(Accumulator)).
struct AccumPullResp {
  Chunk accums;
  uint64_t updates_gathered = 0;
};

// Arrival at the end-of-phase barrier (§5.2). `local` carries the
// machine's aggregator delta (e.g. PageRank's dangling mass, BFS's frontier
// count) as an opaque byte blob serialized by the program kernel
// (core/program_kernel.h) — the barrier protocol itself is untyped, so the
// coordinator FSM compiles once for every GAS program. The modeled wire
// size is kControlMsgBytes + the kernel's global_wire_bytes(). `advance`
// marks the gather barrier where the coordinator reduces the deltas and
// runs Advance to decide convergence (Fig. 4 line 54).
struct BarrierArriveMsg {
  uint64_t phase_id = 0;        // monotonically increasing per barrier
  std::vector<uint8_t> local;   // per-machine aggregator delta (kernel blob)
  uint64_t vertices_changed = 0;
  bool advance = false;  // gather barrier: reduce aggregators and Advance()
  bool failed = false;   // this machine was fault-killed mid-run: the
                         // coordinator must abort the superstep (§6.6).
                         // Models failure detection at the barrier — the
                         // point where a real cluster's heartbeat timeout
                         // would fire — without un-draining the sim.
  uint64_t superstep = 0;
};

// Coordinator release: the canonical global state every machine computes
// the next phase under (kernel blob). `done` ends the run (Advance returned
// true); `crash` aborts it — either a machine failure was detected this
// barrier (an arrival carried `failed`) or the scripted whole-cluster
// failure of the recovery experiments fired (§6.6). In both cases engines
// stop without finishing and durable storage contents survive, so a
// recovery driver can re-import the last committed checkpoint
// (core/recovery.h).
struct BarrierReleaseMsg {
  std::vector<uint8_t> global;  // canonical global state for the next phase
  bool done = false;
  bool crash = false;  // failure: stop without finishing, storage survives
  bool mutate = false;  // evolving graphs: the program converged but the
                        // attached MutationFeed has a pending batch — every
                        // engine must run the apply-mutations stage (re-bin
                        // the planned delta, reseed vertex states, commit)
                        // and continue instead of finishing (§ISSUE 8).
};

}  // namespace chaos

#endif  // CHAOS_CORE_PROTOCOL_H_
