// Simulated cluster network: one NIC (uplink + downlink FIFO resource pair)
// per machine behind a full-bisection switch, plus a message bus with typed
// messages and RPC correlation.
//
// The full-bisection assumption mirrors the paper (§1, §7): the switch is
// never the bottleneck, only per-machine NICs are. An optional incast model
// adds a retransmission penalty when a downlink's backlog exceeds a buffer
// threshold; the paper observes this regime past the batching sweet spot
// (§10.1, Fig. 16).
#ifndef CHAOS_NET_NETWORK_H_
#define CHAOS_NET_NETWORK_H_

#include <any>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

struct NetworkConfig {
  double nic_bandwidth_bps = 5e9;            // bytes/sec; 40 GigE ~ 5 GB/s
  TimeNs one_way_latency = 50 * kNsPerUs;    // propagation + stack, one way
  TimeNs local_latency = 5 * kNsPerUs;       // same-machine IPC cost
  bool model_incast = true;
  TimeNs incast_backlog_threshold = 500 * kNsPerUs;  // downlink backlog -> drops
  TimeNs incast_penalty = kNsPerMs;                  // retransmission delay

  // The paper's cluster: 40 GigE links, full bisection (§8).
  static NetworkConfig FortyGigE();
  // The slow-network experiment (§9.4, Fig. 12).
  static NetworkConfig OneGigE();
};

// Columnar wire format for outbound update batches (config wire_combine).
//
// An update batch is logically a sequence of (dst, value) records. The
// combined frame re-encodes it columnar: one format byte, the destination
// ids as zigzag-delta varints (binned batches target one partition, so ids
// cluster and deltas are small — most take 1-2 bytes instead of the
// modeled 4/8-byte id), then the raw values back to back. Pure
// re-encoding: Decode() restores the exact record sequence, so nothing
// downstream — arithmetic order included — can observe the wire format.
// The sender keeps the legacy verbatim frame when packing would not help
// (pathological id sequences), so the combined wire size never exceeds the
// uncombined one; PackedWireBytes() folds that min in.
//
// The simulator's hot path only needs the frame SIZE to charge the NIC
// (payloads are not actually serialized in the DES); UpdateWireSizer
// computes it incrementally with no allocation. Encode()/Decode() realize
// the byte format for the exactness tests and any host-side use.
class UpdateWireCodec {
 public:
  static uint64_t ZigZag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }
  static int64_t UnZigZag(uint64_t v) {
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }
  static uint32_t VarintLen(uint64_t v) {
    uint32_t len = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++len;
    }
    return len;
  }

  // Packed frame: flag byte + dst varints + n * value_bytes raw values.
  static uint64_t PackedFrameBytes(const uint64_t* dst, uint32_t n,
                                   uint64_t value_bytes);

  // Modeled wire bytes for a combined send of n records whose verbatim
  // (uncombined) record width is record_wire_bytes: the packed frame when
  // it wins, the verbatim frame otherwise.
  static uint64_t PackedWireBytes(const uint64_t* dst, uint32_t n,
                                  uint64_t record_wire_bytes,
                                  uint64_t value_bytes) {
    const uint64_t verbatim = n * record_wire_bytes;
    const uint64_t packed = PackedFrameBytes(dst, n, value_bytes);
    return packed < verbatim ? packed : verbatim;
  }

  // Serializes n records into `out` (appended). `values` is the packed
  // value column, value_bytes per record.
  static void Encode(const uint64_t* dst, const uint8_t* values, uint32_t n,
                     uint64_t value_bytes, std::vector<uint8_t>* out);
  // Inverse of Encode; returns the record count. Appends to dst/values.
  static uint32_t Decode(const uint8_t* in, size_t in_len, uint64_t value_bytes,
                         std::vector<uint64_t>* dst, std::vector<uint8_t>* values);
};

// Incremental packed-frame sizer for the simulator's send path: feed each
// destination id, then read the frame size. No allocation, O(1) state.
class UpdateWireSizer {
 public:
  void Add(uint64_t dst) {
    varint_bytes_ += UpdateWireCodec::VarintLen(UpdateWireCodec::ZigZag(
        static_cast<int64_t>(dst) - static_cast<int64_t>(prev_)));
    prev_ = dst;
    ++count_;
  }
  uint64_t count() const { return count_; }
  uint64_t PackedFrameBytes(uint64_t value_bytes) const {
    return 1 + varint_bytes_ + count_ * value_bytes;
  }
  uint64_t PackedWireBytes(uint64_t record_wire_bytes, uint64_t value_bytes) const {
    const uint64_t verbatim = count_ * record_wire_bytes;
    const uint64_t packed = PackedFrameBytes(value_bytes);
    return packed < verbatim ? packed : verbatim;
  }

 private:
  uint64_t prev_ = 0;
  uint64_t varint_bytes_ = 0;
  uint64_t count_ = 0;
};

// Well-known message bus services (mailboxes) per machine.
enum Service : int {
  kStorageService = 0,
  kComputeService = 1,
  kControlService = 2,
  kDirectoryService = 3,
  kNumServices = 4,
};

struct Message {
  MachineId src = 0;
  MachineId dst = 0;
  int service = kStorageService;
  uint64_t rpc_id = 0;  // nonzero when part of an RPC exchange
  bool is_response = false;
  uint32_t type = 0;        // protocol discriminator, see protocol headers
  uint64_t wire_bytes = 0;  // modeled size on the wire
  std::any body;
};

class Network {
 public:
  Network(Simulator* sim, int machines, const NetworkConfig& config);

  // Time to push `bytes` through the default-speed NIC link.
  TimeNs TxTime(uint64_t bytes) const {
    return TransferTimeNs(bytes, config_.nic_bandwidth_bps);
  }

  // Time to push `bytes` through machine `m`'s NIC (honors per-machine
  // bandwidth overrides in heterogeneous clusters).
  TimeNs TxTime(MachineId m, uint64_t bytes) const {
    return TransferTimeNs(bytes, links_[Index(m)].bandwidth_bps);
  }

  // Overrides one machine's NIC speed (applies to both directions). Static
  // heterogeneity only — call before traffic starts; dynamic mid-run
  // degradation goes through FifoResource::SetRate on the links instead.
  void SetNicBandwidth(MachineId m, double bps) {
    CHAOS_CHECK_GT(bps, 0.0);
    links_[Index(m)].bandwidth_bps = bps;
  }
  double nic_bandwidth(MachineId m) const { return links_[Index(m)].bandwidth_bps; }

  FifoResource& Uplink(MachineId m) { return *links_[Index(m)].up; }
  FifoResource& Downlink(MachineId m) { return *links_[Index(m)].down; }

  const NetworkConfig& config() const { return config_; }
  int machines() const { return machines_; }
  Simulator* sim() const { return sim_; }
  // Allocation counter for the large-N regression tests: per-machine link
  // records only, O(machines) by construction — never per-pair state.
  size_t link_count() const { return links_.size(); }

  uint64_t bytes_sent(MachineId m) const { return links_[Index(m)].bytes_sent; }
  uint64_t bytes_received(MachineId m) const { return links_[Index(m)].bytes_received; }
  uint64_t total_bytes() const;
  uint64_t incast_events() const { return incast_events_; }

  // Accounting hooks used by the bus.
  void NoteSent(MachineId m, uint64_t bytes) { links_[Index(m)].bytes_sent += bytes; }
  void NoteReceived(MachineId m, uint64_t bytes) { links_[Index(m)].bytes_received += bytes; }
  void NoteIncast() { ++incast_events_; }

 private:
  struct Link {
    std::unique_ptr<FifoResource> up;
    std::unique_ptr<FifoResource> down;
    double bandwidth_bps = 0.0;  // per-machine NIC speed (default from config)
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
  };

  size_t Index(MachineId m) const {
    CHAOS_CHECK(m >= 0 && m < machines_);
    return static_cast<size_t>(m);
  }

  Simulator* sim_;
  int machines_;
  NetworkConfig config_;
  std::vector<Link> links_;
  uint64_t incast_events_ = 0;
};

// Message delivery and RPC correlation on top of Network.
//
// Send() returns once the message has left the sender's uplink; propagation
// and the receiver's downlink are charged in the background, after which the
// message lands in the destination mailbox (or resolves a pending RPC).
class MessageBus {
 public:
  MessageBus(Simulator* sim, Network* network);

  SimQueue<Message>& Inbox(MachineId machine, int service);

  // Fire-and-forget variant; the transfer proceeds in the background.
  void PostSend(Message m) { sim_->Spawn(Send(std::move(m))); }

  Task<> Send(Message m);

  // Sends `request` and completes with the matched response.
  Task<Message> Call(Message request);

  // Builds and sends the response for `request`. Fire-and-forget.
  void PostReply(const Message& request, uint32_t type, uint64_t wire_bytes, std::any body);

  uint64_t messages_delivered() const { return delivered_; }
  // Allocation counter for the large-N regression tests: machines *
  // kNumServices mailboxes, O(machines) by construction.
  size_t inbox_count() const { return inboxes_.size(); }

 private:
  struct PendingCall {
    std::coroutine_handle<> waiter;
    Message response;
    bool ready = false;
  };

  void Deliver(Message m);
  internal::DetachedTask FinishRemote(Message m, TimeNs extra_latency);

  Simulator* sim_;
  Network* net_;
  std::vector<std::unique_ptr<SimQueue<Message>>> inboxes_;  // machine * kNumServices
  std::unordered_map<uint64_t, PendingCall*> pending_;
  uint64_t next_rpc_id_ = 1;
  uint64_t delivered_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_NET_NETWORK_H_
