// Lightweight descriptive statistics and fixed-boundary histograms used by
// the metrics subsystem and by the benchmark harnesses.
#ifndef CHAOS_UTIL_STATS_H_
#define CHAOS_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace chaos {

// Streaming summary: count / mean / variance (Welford) / min / max.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over caller-provided ascending bucket upper bounds; values above
// the last bound land in an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Add(double x);
  uint64_t BucketCount(size_t i) const;
  size_t NumBuckets() const { return counts_.size(); }  // includes overflow
  uint64_t TotalCount() const { return total_; }
  // Linear-interpolated quantile estimate, q in [0, 1].
  double Quantile(double q) const;
  std::string ToString() const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 entries
  uint64_t total_ = 0;
};

// Exact quantile over a sample vector (copies and sorts). q in [0, 1].
double ExactQuantile(std::vector<double> samples, double q);

// Pretty-printers used by benches and metrics dumps.
std::string FormatBytes(uint64_t bytes);
std::string FormatSeconds(double seconds);
std::string FormatBandwidth(double bytes_per_second);

}  // namespace chaos

#endif  // CHAOS_UTIL_STATS_H_
