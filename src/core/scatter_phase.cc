#include "core/scatter_phase.h"

namespace chaos {

ScatterPhase::ScatterPhase(EngineCore* core)
    : core_(core),
      binner_(core->parts_, core->kernel_->update_stride_bytes(),
              core->kernel_->update_wire_bytes(), core->ctx_.config->chunk_bytes,
              core->ctx_.arena,
              core->kernel_->update_soa_capable()
                  ? RecordBinner::Format::kUpdateSoA
                  : RecordBinner::Format::kRaw,
              core->kernel_->update_value_bytes()),
      writer_(&core->ctx_, &core->rng_, core->ctx_.config->fetch_window()) {
  if (core->ctx_.config->wire_combine) {
    writer_.EnableUpdateCombining(
        core->kernel_->update_wire_bytes() - core->kernel_->update_value_bytes(),
        core->metrics_);
  }
}

Task<> ScatterPhase::Run() {
  EngineCore& c = *core_;
  c.phase_ = EnginePhase::kScatter;
  c.ResetOwnStatuses();
  for (const PartitionId p : c.own_partitions_) {
    co_await ProcessPartition(p, /*stolen=*/false);
  }
  if (c.ctx_.config->stealing_enabled() && !c.Dead()) {
    auto work = [this](PartitionId p) { return ProcessPartition(p, /*stolen=*/true); };
    co_await c.StealLoop(EnginePhase::kScatter, work);
  }
  if (!c.Dead()) {
    // A dead machine's buffered emissions are lost with it; the aborted
    // superstep is re-run from the checkpoint anyway.
    co_await binner_.FlushAll(&writer_, UpdatesFor(c.superstep_));
  }
  co_await writer_.Drain();
  c.metrics_->updates_emitted += binner_.emitted();
  c.phase_ = EnginePhase::kGather;  // proposals for scatter now rejected
}

Task<> ScatterPhase::ProcessPartition(PartitionId p, bool stolen) {
  EngineCore& c = *core_;
  const bool mine = c.parts_->Master(p) == c.ctx_.machine;
  if (mine) {
    c.OnMasterStartsPartition(p);
  }
  PooledBatch vstate;
  {
    BucketTimer load_t(c.ctx_.sim, c.metrics_, stolen ? Bucket::kCopy : Bucket::kGpMaster);
    vstate = co_await c.LoadVertexSet(p);
  }
  BucketTimer t(c.ctx_.sim, c.metrics_, stolen ? Bucket::kGpSteal : Bucket::kGpMaster);
  const VertexId base = c.parts_->Base(p);
  const auto& cost = c.ctx_.cost();
  const SetKind target_kind = UpdatesFor(c.superstep_);
  ChunkFetcher fetcher(&c.ctx_, &c.rng_, c.EdgesSet(p), c.ScatterEpoch(),
                       c.ctx_.config->fetch_window(),
                       c.LocalMasterTarget(c.parts_->Master(p)));
  fetcher.Start();
  while (true) {
    if (c.Dead()) {
      co_await fetcher.Cancel();
      break;
    }
    std::optional<Chunk> chunk = co_await fetcher.Next();
    if (!chunk.has_value()) {
      break;
    }
    co_await c.ctx_.sim->Delay(c.ctx_.CpuTime(chunk->count, cost.ns_per_edge_scatter) +
                               c.ctx_.MessageTime());
    // Fault back any vertex-state pages the streaming windows evicted.
    co_await c.TouchBatch(vstate);
    c.kernel_->ScatterChunk(*chunk, vstate.batch, base, &binner_);
    c.metrics_->edges_processed += chunk->count;
    ++c.metrics_->chunks_fetched;
    if (stolen) {
      ++c.metrics_->stolen_chunks;
    }
    co_await binner_.FlushPending(&writer_, target_kind);
  }
  if (mine) {
    c.OnMasterFinishesPartition(p);
  }
}

}  // namespace chaos
