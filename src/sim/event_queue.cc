#include "sim/event_queue.h"

#include <utility>

#include "util/common.h"

namespace chaos {

void EventQueue::Push(TimeNs time, EventFn fn) {
  heap_.push_back(Event{time, next_seq_++, std::move(fn)});
  SiftUp(heap_.size() - 1);
}

EventQueue::Event EventQueue::Pop() {
  CHAOS_CHECK(!heap_.empty());
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  return top;
}

const EventQueue::Event& EventQueue::Peek() const {
  CHAOS_CHECK(!heap_.empty());
  return heap_.front();
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < n && Earlier(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < n && Earlier(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace chaos
