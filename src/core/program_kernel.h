// ProgramKernel: the type-erased boundary between the untemplated engine
// core (engine_core.h — phase control flow, stealing, barriers, the
// checkpoint FSM) and a typed GAS program (gas.h). The core never sees
// VertexState/UpdateValue/Accumulator types; it moves RecordBatch buffers
// and Chunk payloads and calls kernel methods at CHUNK granularity, so the
// per-edge/per-update loops stay fully inlined inside the typed adapter
// (gas_kernel.h) while the control flow compiles exactly once.
//
// Aggregator (GlobalState) values cross the barrier protocol as opaque
// byte blobs (protocol.h BarrierArriveMsg/BarrierReleaseMsg); the kernel
// owns serialization and the fold/advance operations on those blobs.
#ifndef CHAOS_CORE_PROGRAM_KERNEL_H_
#define CHAOS_CORE_PROGRAM_KERNEL_H_

#include <cstdint>
#include <vector>

#include "core/record_batch.h"
#include "core/record_binner.h"
#include "storage/chunk.h"

namespace chaos {

class ProgramKernel {
 public:
  virtual ~ProgramKernel() = default;

  // ---- Static program facts.
  virtual const char* name() const = 0;
  virtual bool needs_out_degrees() const = 0;
  virtual uint64_t vertex_state_bytes() const = 0;   // sizeof(VertexState)
  virtual uint64_t accum_bytes() const = 0;          // sizeof(Accumulator)
  virtual uint64_t update_stride_bytes() const = 0;  // sizeof(UpdateRecord<U>)
  virtual uint64_t update_wire_bytes() const = 0;    // modeled wire width
  virtual uint64_t update_value_bytes() const = 0;   // sizeof(UpdateValue)
  // True when update sets may use ChunkLayout::kUpdateSoA (the packed value
  // region needs alignof(UpdateValue) <= 8; see core/update_chunk_view.h).
  // The phase drivers construct kUpdateSoA binners only when this holds.
  virtual bool update_soa_capable() const = 0;
  virtual uint64_t global_wire_bytes() const = 0;    // sizeof(GlobalState)

  // ---- Engine-side aggregator state (the machine's global_/local_ pair).
  virtual bool WantScatter() const = 0;
  // Serializes the machine's aggregator delta and resets it to InitLocal().
  virtual std::vector<uint8_t> TakeLocalBlob() = 0;
  // Installs the coordinator's canonical global for the next phase.
  virtual void SetGlobal(const std::vector<uint8_t>& blob) = 0;
  virtual std::vector<uint8_t> GlobalBlob() const = 0;
  // Snapshots the current global as the committed-checkpoint global.
  virtual void CommitCheckpointGlobal() = 0;

  // ---- Coordinator-side folds on opaque global blobs (machine 0).
  virtual void ReduceGlobal(void* folded, const void* local) const = 0;
  virtual bool Advance(void* folded, uint64_t superstep, uint64_t changed) const = 0;

  // ---- Batch kernels (typed loops live in gas_kernel.h).
  // Fills `states` with InitVertex for vertices [base, base + count);
  // `degrees` is null for programs without out-degree pre-counting.
  virtual void InitVertexBatch(RecordBatch* states, VertexId base,
                               const uint32_t* degrees) = 0;
  virtual void InitAccumBatch(RecordBatch* accums) = 0;
  // Scatter over one edge chunk against the partition's vertex states.
  virtual void ScatterChunk(const Chunk& edges, const RecordBatch& vstate, VertexId base,
                            RecordBinner* binner) = 0;
  // Gather one update chunk into the partition's accumulators.
  virtual void GatherChunk(const Chunk& updates, const RecordBatch& vstate,
                           RecordBatch* accums, VertexId base, RecordBinner* binner) = 0;
  // Merges a stealer's replica accumulator chunk into `accums`.
  virtual void MergeAccumChunk(RecordBatch* accums, const Chunk& theirs) = 0;
  // Apply over the whole partition; returns the number of changed vertices.
  // Program outputs (sink records) accumulate inside the kernel.
  virtual uint64_t ApplyBatch(RecordBatch* vstate, const RecordBatch& accums, VertexId base,
                              RecordBinner* binner) = 0;
  virtual size_t num_outputs() const = 0;
};

}  // namespace chaos

#endif  // CHAOS_CORE_PROGRAM_KERNEL_H_
