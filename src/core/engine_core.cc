#include "core/engine_core.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "core/gas.h"  // UpdateRecord<uint32_t>: the fixed degree-count record
#include "core/gather_phase.h"
#include "core/scatter_phase.h"
#include "util/parallel.h"  // DeriveSeed: the sweep-wide seed-derivation rule

namespace chaos {

EngineCore::EngineCore(EngineContext ctx, ProgramKernel* kernel, GraphMeta meta,
                       const Partitioning* parts, MachineMetrics* metrics)
    : ctx_(std::move(ctx)),
      kernel_(kernel),
      meta_(meta),
      parts_(parts),
      metrics_(metrics),
      rng_(HashCombine(ctx_.config->seed, static_cast<uint64_t>(ctx_.machine) + 0xce)),
      steal_rng_(DeriveSeed(HashCombine(ctx_.config->seed, static_cast<uint64_t>(ctx_.machine)),
                            0x57ea1)),
      stolen_ready_(ctx_.sim),
      stolen_taken_(ctx_.sim) {
  for (PartitionId p = 0; p < parts_->num_partitions(); ++p) {
    if (parts_->Master(p) == ctx_.machine) {
      own_partitions_.push_back(p);
    }
  }
}

void EngineCore::Start() {
  if (ctx_.machine == 0) {
    ctx_.sim->Spawn(BarrierService());
  }
  ctx_.sim->Spawn(ControlServer());
  ctx_.sim->Spawn(Main());
}

size_t EngineCore::NumOutputsBefore(uint64_t superstep) const {
  if (superstep <= start_superstep_) {
    return 0;
  }
  const uint64_t completed = superstep - start_superstep_;
  if (output_marks_.empty()) {
    return 0;
  }
  return output_marks_[std::min<size_t>(completed, output_marks_.size()) - 1];
}

// ------------------------------------------------------------- main loop

Task<> EngineCore::Main() {
  if (!ctx_.config->resume) {
    co_await Preprocess();
  } else {
    superstep_ = ctx_.config->resume_superstep;
    start_superstep_ = ctx_.config->resume_superstep;
  }
  if (!aborted_) {
    co_await Barrier(/*advance=*/false);
  }
  // Recorded on the healthy path only: a zero preprocess time is how a
  // crash-during-preprocessing run is recognized (no superstep entered).
  if (ctx_.machine == 0 && !aborted_) {
    preprocess_end_time_ = ctx_.sim->now();
  }
  while (!aborted_) {
    CHAOS_CHECK_MSG(superstep_ - start_superstep_ < ctx_.config->max_supersteps,
                    "superstep limit exceeded; algorithm not converging?");
    if (kernel_->WantScatter()) {
      {
        ScatterPhase scatter(this);
        co_await scatter.Run();
      }
      co_await Barrier(/*advance=*/false);
      if (aborted_) {
        break;
      }
    }
    {
      GatherPhase gather(this);
      co_await gather.Run();
    }
    const BarrierOutcome out = co_await Barrier(/*advance=*/true);
    if (out.crash) {
      break;
    }
    // Superstep completed cluster-wide: everything the kernel has output so
    // far is part of the committed output stream (see NumOutputsBefore).
    output_marks_.push_back(kernel_->num_outputs());
    if (out.mutate) {
      // The program converged but the mutation feed has a pending batch:
      // apply it (re-bin edges, reseed states, commit — its own forced
      // checkpoint replaces the periodic one this superstep) and keep
      // running; the reseeded changed flags drive re-convergence.
      co_await ApplyMutationStage();
      if (aborted_) {
        break;
      }
    } else {
      // The final superstep's checkpoint copy is written during its gather
      // but not committed (the computation is complete; recovery would use
      // the final vertex sets themselves). The uncommitted side is left
      // behind, as in any in-flight 2-phase protocol.
      const bool checkpoint_due = ctx_.config->checkpoint_interval > 0 && !out.done &&
                                  (superstep_ + 1) % ctx_.config->checkpoint_interval == 0;
      if (checkpoint_due) {
        co_await CommitCheckpoint();
        if (aborted_) {
          break;
        }
      }
    }
    ++superstep_;
    if (out.done) {
      break;
    }
  }
  crashed_ = aborted_;
  // Stop this machine's control server.
  Message stop;
  stop.src = ctx_.machine;
  stop.dst = ctx_.machine;
  stop.service = kControlService;
  stop.type = kControlShutdown;
  stop.wire_bytes = kControlMsgBytes;
  ctx_.bus->PostSend(std::move(stop));
  finished_ = true;
}

// --------------------------------------------------------- preprocessing

Task<> EngineCore::Preprocess() {
  BucketTimer t(ctx_.sim, metrics_, Bucket::kPreprocess);
  const auto& cost = ctx_.cost();
  {
    // Edge chunks are parked in the SoA layout so every later scatter
    // superstep runs the vectorized loop (core/edge_chunk_view.h).
    RecordBinner edge_binner(parts_, sizeof(Edge), meta_.edge_wire_bytes,
                             ctx_.config->chunk_bytes, ctx_.arena,
                             RecordBinner::Format::kEdgeSoA);
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    std::unordered_map<VertexId, uint32_t> degree_counts;
    ChunkFetcher fetcher(&ctx_, &rng_, SetId{0, SetKind::kInput}, kInputEpoch,
                         ctx_.config->fetch_window(), LocalMasterTarget(ctx_.machine));
    fetcher.Start();
    const bool count_degrees = kernel_->needs_out_degrees();
    while (true) {
      if (Dead()) {
        co_await fetcher.Cancel();
        break;
      }
      std::optional<Chunk> chunk = co_await fetcher.Next();
      if (!chunk.has_value()) {
        break;
      }
      auto edges = ChunkSpan<Edge>(*chunk);
      co_await ctx_.sim->Delay(ctx_.CpuTime(edges.size(), cost.ns_per_edge_scatter) +
                               ctx_.MessageTime());
      for (const Edge& e : edges) {
        edge_binner.Add(parts_->PartitionOf(e.src), e);
        if (count_degrees && e.flags == kEdgeForward) {
          degree_counts[e.src]++;
        }
      }
      ++metrics_->chunks_fetched;
      co_await edge_binner.FlushPending(&writer, SetKind::kEdges);
    }
    co_await edge_binner.FlushAll(&writer, SetKind::kEdges);
    if (count_degrees) {
      RecordBinner degree_binner(parts_, sizeof(UpdateRecord<uint32_t>),
                                 meta_.vertex_id_wire_bytes + 4, ctx_.config->chunk_bytes,
                                 ctx_.arena);
      for (const auto& [vertex, count] : degree_counts) {
        const UpdateRecord<uint32_t> record{vertex, count};
        degree_binner.Add(parts_->PartitionOf(vertex), record);
      }
      co_await degree_binner.FlushAll(&writer, SetKind::kDegrees);
    }
    co_await writer.Drain();
  }
  co_await Barrier(/*advance=*/false);
  if (aborted_) {
    co_return;  // a machine died during pre-processing: no state to init
  }

  // Vertex-set initialization for owned partitions.
  ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
  for (const PartitionId p : own_partitions_) {
    const uint64_t count = parts_->Count(p);
    const VertexId base = parts_->Base(p);
    std::vector<uint32_t> degrees;
    if (kernel_->needs_out_degrees()) {
      degrees.assign(count, 0);
      ChunkFetcher fetcher(&ctx_, &rng_, SetId{p, SetKind::kDegrees}, kDegreesEpoch,
                           ctx_.config->fetch_window(), LocalMasterTarget(parts_->Master(p)));
      fetcher.Start();
      while (true) {
        std::optional<Chunk> chunk = co_await fetcher.Next();
        if (!chunk.has_value()) {
          break;
        }
        for (const auto& rec : ChunkSpan<UpdateRecord<uint32_t>>(*chunk)) {
          CHAOS_DCHECK(parts_->PartitionOf(rec.dst) == p);
          degrees[rec.dst - base] += rec.value;
        }
      }
      const SetId degrees_set{p, SetKind::kDegrees};
      co_await DeleteSetEverywhere(&ctx_, degrees_set);
    }
    co_await WriteVertexSetFromInit(p, degrees, &writer);
  }
  co_await writer.Drain();
}

Task<> EngineCore::WriteVertexSetFromInit(PartitionId p, const std::vector<uint32_t>& degrees,
                                          ChunkWriter* writer) {
  const uint64_t count = parts_->Count(p);
  const VertexId base = parts_->Base(p);
  co_await ctx_.sim->Delay(ctx_.CpuTime(count, ctx_.cost().ns_per_vertex_apply));
  PooledBatch states;
  if (ctx_.pool != nullptr) {
    states.lease = co_await ctx_.pool->Acquire(count * kernel_->vertex_state_bytes());
  }
  states.batch = RecordBatch(ctx_.arena, kernel_->vertex_state_bytes(), count);
  kernel_->InitVertexBatch(&states.batch, base, degrees.empty() ? nullptr : degrees.data());
  co_await WriteVertexSet(p, states.batch, SetKind::kVertices, writer);
}

// --------------------------------------------------- vertex set load/store

Task<PooledBatch> EngineCore::LoadVertexSet(PartitionId p) {
  const uint64_t count = parts_->Count(p);
  const uint64_t record_bytes = kernel_->vertex_state_bytes();
  PooledBatch out;
  if (ctx_.pool != nullptr) {
    out.lease = co_await ctx_.pool->Acquire(count * record_bytes);
  }
  out.batch = RecordBatch(ctx_.arena, record_bytes, count);
  const uint64_t per_chunk = VertsPerChunk();
  const uint64_t nchunks = (count + per_chunk - 1) / per_chunk;
  Semaphore window(ctx_.sim, ctx_.config->fetch_window());
  TaskGroup group(ctx_.sim);
  for (uint64_t idx = 0; idx < nchunks; ++idx) {
    co_await window.Acquire();
    group.Spawn(LoadVertexChunk(p, idx, &out.batch, &window));
  }
  co_await group.Join();
  co_return out;
}

Task<> EngineCore::LoadVertexChunk(PartitionId p, uint64_t idx, RecordBatch* out,
                                   Semaphore* window) {
  const MachineId home = VertexChunkHome(p, idx, ctx_.machines());
  Message req;
  req.src = ctx_.machine;
  req.dst = home;
  req.service = kStorageService;
  req.type = kReadIndexedReq;
  req.wire_bytes = kControlMsgBytes;
  req.body = ReadIndexedReq{SetId{p, SetKind::kVertices}, idx, false, 0};
  Message resp = co_await ctx_.bus->Call(std::move(req));
  const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
  CHAOS_CHECK_MSG(r.ok, "missing vertex chunk " + std::to_string(idx) + " of partition " +
                            std::to_string(p));
  const uint64_t start = static_cast<uint64_t>(idx) * VertsPerChunk();
  CHAOS_CHECK_LE(start + r.chunk.count, out->count());
  out->CopyIn(start, r.chunk.data.get(), r.chunk.count);
  window->Release();
}

Task<> EngineCore::WriteVertexSet(PartitionId p, const RecordBatch& states, SetKind kind,
                                  ChunkWriter* writer) {
  const uint64_t per_chunk = VertsPerChunk();
  for (uint64_t start = 0, idx = 0; start < states.count(); start += per_chunk, ++idx) {
    const uint64_t n = std::min(per_chunk, states.count() - start);
    // Zero-copy: the chunk aliases the batch's buffer (record_batch.h); no
    // per-chunk slice vector is materialized. Vertex (and checkpoint)
    // chunks live at hashed homes (§6.4); the writer window still bounds
    // outstanding requests.
    Chunk chunk = states.BorrowChunk(idx, start, n, n * states.record_bytes());
    const MachineId home = VertexChunkHome(p, idx, ctx_.machines());
    const SetId target{p, kind};
    co_await writer->Write(target, std::move(chunk), home);
  }
}

Task<> EngineCore::TouchBatch(const PooledBatch& b) {
  if (ctx_.pool != nullptr && b.lease.active()) {
    co_await ctx_.pool->Touch(b.lease);
  }
}

// ------------------------------------------------------------- stealing

void EngineCore::ResetOwnStatuses() {
  own_status_.clear();
  for (const PartitionId p : own_partitions_) {
    own_status_.emplace(p, PartStatus{});
  }
}

void EngineCore::OnMasterStartsPartition(PartitionId p) {
  PartStatus& st = own_status_[p];
  st.s = PartStatus::S::kActive;
  ++st.workers;
}

void EngineCore::OnMasterFinishesPartition(PartitionId p) {
  PartStatus& st = own_status_[p];
  st.s = PartStatus::S::kClosed;
  --st.workers;
}

bool EngineCore::StealDecision(PartitionId p, EnginePhase phase) {
  auto it = own_status_.find(p);
  CHAOS_CHECK(it != own_status_.end());
  PartStatus& st = it->second;
  if (st.s == PartStatus::S::kClosed) {
    return false;
  }
  const SetId set = phase == EnginePhase::kScatter ? EdgesSet(p) : UpdatesSet(p, superstep_);
  const uint64_t epoch = phase == EnginePhase::kScatter ? ScatterEpoch() : GatherEpoch();
  const double d_local = static_cast<double>(ctx_.local_storage()->RemainingBytes(set, epoch));
  const double d = d_local * ctx_.machines();
  const double v = static_cast<double>(parts_->Count(p)) *
                   static_cast<double>(kernel_->vertex_state_bytes());
  return StealAccept(v, d, st.workers, ctx_.config->alpha);
}

std::vector<MachineId> EngineCore::StealVictimOrder() {
  const int m = ctx_.machines();
  const std::vector<uint32_t> perm = steal_rng_.Permutation(static_cast<uint32_t>(m));
  std::vector<MachineId> order;
  order.reserve(static_cast<size_t>(m) - 1);
  const int domain = ctx_.config->steal.steal_domain;
  if (domain <= 1 || domain >= m) {
    for (const uint32_t v : perm) {
      if (static_cast<MachineId>(v) != ctx_.machine) {
        order.push_back(static_cast<MachineId>(v));
      }
    }
    return order;
  }
  // 2-level routing: in-domain victims first (both halves keep the
  // permutation's relative order, so the whole order stays seeded).
  const int mine = ctx_.machine / domain;
  for (const uint32_t v : perm) {
    if (static_cast<MachineId>(v) != ctx_.machine && static_cast<int>(v) / domain == mine) {
      order.push_back(static_cast<MachineId>(v));
    }
  }
  for (const uint32_t v : perm) {
    if (static_cast<MachineId>(v) != ctx_.machine && static_cast<int>(v) / domain != mine) {
      order.push_back(static_cast<MachineId>(v));
    }
  }
  return order;
}

Task<> EngineCore::StealLoop(EnginePhase phase, std::function<Task<>(PartitionId)> work) {
  const StealPolicy& policy = ctx_.config->steal;
  if (ctx_.machines() <= 1) {
    co_return;
  }
  StealSweepState state(policy.mode);
  // Task-indicator hints: victims that reported no open work this phase.
  // O(machines) per engine and local to the loop — no per-pair state.
  std::vector<uint8_t> drained(static_cast<size_t>(ctx_.machines()), 0);
  BackoffWindow backoff(policy.backoff_initial, policy.backoff_max);
  int dry_rounds = 0;
  while (!Dead()) {
    bool any_grant = false;
    for (const MachineId victim : StealVictimOrder()) {
      if (Dead()) {
        break;
      }
      if (policy.victim_check && drained[static_cast<size_t>(victim)] != 0) {
        continue;
      }
      ++metrics_->steal_proposals_sent;
      Message req;
      req.src = ctx_.machine;
      req.dst = victim;
      req.service = kControlService;
      req.type = kHelpProposalReq;
      req.wire_bytes = kControlMsgBytes;
      req.body = HelpProposalReq{phase, superstep_, state.steal_half()};
      Message resp = co_await ctx_.bus->Call(std::move(req));
      const auto& r = std::any_cast<const HelpProposalResp&>(resp.body);
      if (!r.more_work) {
        drained[static_cast<size_t>(victim)] = 1;
        ++metrics_->victim_misses;
      }
      if (r.granted.empty()) {
        ++metrics_->steal_requests_declined;
        continue;
      }
      any_grant = true;
      state.OnGrant(r.more_work);
      // A multi-partition grant is streamed concurrently, not sequentially:
      // a stolen gather partition ends in a park-until-the-master-pulls
      // handshake, and the master pulls in its own partition order — a
      // sequential helper holding grant [p3, p0] while the master waits on
      // p0 would deadlock the superstep.
      TaskGroup group(ctx_.sim);
      for (const PartitionId p : r.granted) {
        ++metrics_->steals_worked;
        group.Spawn(work(p));
      }
      co_await group.Join();
    }
    if (any_grant) {
      backoff.Reset();
      dry_rounds = 0;
      continue;
    }
    if (!policy.backoff || dry_rounds >= policy.max_backoff_rounds) {
      break;
    }
    // Dry sweep with backoff on: park and retry — work that opens late
    // (behind a slow victim stream) still finds this helper.
    ++dry_rounds;
    ++metrics_->steal_backoffs;
    const TimeNs wait = backoff.Next();
    metrics_->steal_backoff_time += wait;
    co_await ctx_.sim->Delay(wait);
  }
}

// ------------------------------------------------------- control server

Task<> EngineCore::ControlServer() {
  SimQueue<Message>& inbox = ctx_.bus->Inbox(ctx_.machine, kControlService);
  while (true) {
    Message m = co_await inbox.Pop();
    // Per-message handling CPU (0MQ cost, §7), like the data path charges
    // per chunk. Handling is serial, so a proposal storm hitting a
    // CPU-degraded machine backs up its control queue — the large-N cost
    // that victim hints and backoff exist to cut.
    co_await ctx_.sim->Delay(ctx_.MessageTime());
    switch (m.type) {
      case kHelpProposalReq: {
        HandleHelpProposal(m);
        // Domain-level proposal combining (config steal_combine): proposals
        // from the same steal domain queued behind this one arrive as one
        // merged control message, so they share the MessageTime() charge
        // already paid above. Each member still gets its own grant decision
        // and reply; the drain stops at the first cross-domain (or
        // non-proposal) message so handling order is untouched.
        if (ctx_.config->steal_combine) {
          const int domain = ctx_.config->steal.steal_domain;
          while (!inbox.empty() && inbox.front().type == kHelpProposalReq &&
                 CoDomainSteal(inbox.front().src, m.src, domain)) {
            const Message merged = inbox.PopNow();
            ++metrics_->steal_proposals_combined;
            HandleHelpProposal(merged);
          }
        }
        break;
      }
      case kAccumPullReq:
        ctx_.sim->Spawn(HandleAccumPull(std::move(m)));
        break;
      case kControlShutdown:
        co_return;
      default:
        CHAOS_CHECK_MSG(false, "unknown control message type " + std::to_string(m.type));
    }
  }
}

void EngineCore::HandleHelpProposal(const Message& m) {
  const auto& req = std::any_cast<const HelpProposalReq&>(m.body);
  ++metrics_->proposals_received;
  HelpProposalResp out;
  // A dead master accepts no new helpers (its superstep is doomed);
  // already-admitted stealers are drained by the handshake. A phase
  // or superstep mismatch means this victim has nothing left for the
  // proposer's phase: more_work stays false, so the helper's victim
  // check retires this victim for the rest of the phase.
  if (ctx_.config->stealing_enabled() && !Dead() && req.superstep == superstep_ &&
      req.phase == phase_ && !own_status_.empty()) {
    uint32_t open = 0;
    for (const PartitionId p : own_partitions_) {
      const auto it = own_status_.find(p);
      if (it != own_status_.end() && it->second.s != PartStatus::S::kClosed) {
        ++open;
      }
    }
    out.more_work = open > 0;
    const uint32_t limit = StealGrantLimit(req.steal_half, open);
    const size_t n = own_partitions_.size();
    for (size_t i = 0; i < n && out.granted.size() < limit; ++i) {
      const PartitionId p = own_partitions_[(grant_cursor_ + i) % n];
      if (!StealDecision(p, req.phase)) {
        continue;
      }
      PartStatus& st = own_status_[p];
      ++st.workers;
      if (st.s == PartStatus::S::kPending) {
        st.s = PartStatus::S::kActive;
      }
      if (req.phase == EnginePhase::kGather) {
        st.gather_stealers.push_back(m.src);
      }
      out.granted.push_back(p);
    }
    if (!out.granted.empty()) {
      ++metrics_->proposals_accepted;
      metrics_->partitions_granted += out.granted.size();
      grant_cursor_ = (grant_cursor_ + 1) % n;
    }
  }
  const uint64_t wire = kControlMsgBytes + 4ull * out.granted.size();
  ctx_.bus->PostReply(m, kHelpProposalResp, wire, std::move(out));
}

Task<> EngineCore::HandleAccumPull(Message m) {
  const auto& req = std::any_cast<const AccumPullReq&>(m.body);
  while (stolen_accums_.count(req.partition) == 0) {
    co_await stolen_ready_.Wait();
  }
  auto node = stolen_accums_.extract(req.partition);
  Chunk accums = std::move(node.mapped());
  const uint64_t wire = accums.model_bytes + kControlMsgBytes;
  AccumPullResp resp{std::move(accums), 0};
  ctx_.bus->PostReply(m, kAccumPullResp, wire, std::move(resp));
  stolen_taken_.NotifyAll();
}

void EngineCore::ParkStolenAccums(PartitionId p, Chunk accums) {
  stolen_accums_[p] = std::move(accums);
  stolen_ready_.NotifyAll();
}

Task<> EngineCore::WaitStolenAccumsTaken(PartitionId p) {
  BucketTimer wait_t(ctx_.sim, metrics_, Bucket::kMergeWait);
  while (stolen_accums_.count(p) != 0) {
    co_await stolen_taken_.Wait();
  }
}

}  // namespace chaos
