// Table 1: single-machine runtime, X-Stream vs Chaos, all ten algorithms.
//
// The paper runs RMAT-27 on one machine with an SSD; we run a scaled-down
// RMAT (configurable). The shape to reproduce: the two systems are close,
// with Chaos paying the client-server storage overhead (1.0x - 2.5x).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(table1, "Table 1: single-machine runtime, X-Stream vs Chaos") {
  Options opt;
  opt.AddInt("scale", 13, "RMAT scale (paper: 27)");
  opt.AddInt("seed", 1, "graph + placement seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // One point per algorithm; each runs both systems back to back, so the
  // sweep parallelizes across the ten rows.
  struct Row {
    double xstream_s = 0.0;
    double chaos_s = 0.0;
  };
  Sweep<Row> sweep;
  for (const auto& info : Algorithms()) {
    const std::string name = info.name;
    const bool weighted = info.needs_weights;
    sweep.Add([name, weighted, scale, seed] {
      InputGraph prepared = PrepareInput(name, BenchRmat(scale, weighted, seed));

      // Both systems run identical profiles at *full* (unminiaturized)
      // latencies: Table 1's gap is exactly the per-request overhead of the
      // client-server chunk protocol, which miniaturized latencies would
      // hide. Single-machine runs need no cross-machine scaling.
      ClusterConfig ccfg;
      ccfg.machines = 1;
      ccfg.seed = seed;
      ccfg.memory_budget_bytes =
          std::max<uint64_t>(prepared.num_vertices * 48 / 4 + 1, 4 << 10);
      ccfg.chunk_bytes = std::min<uint64_t>(
          std::max<uint64_t>(prepared.input_wire_bytes() / 128 + 1, 2 << 10), 4ull << 20);
      XStreamConfig xcfg;
      xcfg.memory_budget_bytes = ccfg.memory_budget_bytes;
      xcfg.chunk_bytes = ccfg.chunk_bytes;
      xcfg.prefetch_window = ccfg.fetch_window();
      xcfg.storage = ccfg.storage;
      xcfg.cost = ccfg.cost;

      Row row;
      row.xstream_s = ToSeconds(RunXStreamAlgorithm(name, prepared, xcfg).total_time);
      row.chaos_s = RunJob(MakeJob(name, prepared, ccfg)).metrics.total_seconds();
      return row;
    });
  }
  const std::vector<Row> rows = sweep.Run();

  std::printf("== Table 1: algorithms, 1-machine X-Stream vs Chaos (RMAT-%u, SSD) ==\n", scale);
  PrintHeader({"algorithm", "xstream(s)", "chaos(s)", "chaos/xs"});
  double ratio_sum = 0.0;
  int count = 0;
  size_t idx = 0;
  for (const auto& info : Algorithms()) {
    const Row& row = rows[idx++];
    const double ratio = row.xstream_s > 0 ? row.chaos_s / row.xstream_s : 0.0;
    ratio_sum += ratio;
    ++count;
    PrintCell(info.name);
    PrintCell(row.xstream_s);
    PrintCell(row.chaos_s);
    PrintCell(ratio);
    EndRow();
    RecordMetric("table1." + info.name + ".xstream_sim_s", row.xstream_s);
    RecordMetric("table1." + info.name + ".chaos_sim_s", row.chaos_s);
  }
  RecordMetric("table1.mean_ratio", ratio_sum / count);
  std::printf("\nmean chaos/xstream ratio: %.2f (paper: 1.0x - 2.5x, mean ~1.4x)\n",
              ratio_sum / count);
  return 0;
}
