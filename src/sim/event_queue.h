// Deterministic event queue: events fire in (time, insertion sequence) order,
// so simultaneous events run in the order they were scheduled.
#ifndef CHAOS_SIM_EVENT_QUEUE_H_
#define CHAOS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace chaos {

class EventQueue {
 public:
  struct Event {
    TimeNs time = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
  };

  void Push(TimeNs time, std::function<void()> fn);
  // Removes and returns the earliest event. Queue must be non-empty.
  Event Pop();
  const Event& Peek() const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  uint64_t total_pushed() const { return next_seq_; }

 private:
  static bool Earlier(const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Event> heap_;  // binary min-heap by (time, seq)
  uint64_t next_seq_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_SIM_EVENT_QUEUE_H_
