// Figure 17: breakdown of runtime at the largest machine count into
// graph processing (own / stolen partitions), stolen vertex-set copying,
// accumulator merging, merge waits, and barrier waits. Paper: 74-87%
// useful processing, idle below 4%, copy+merge 0-22%.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig17, "Figure 17: runtime breakdown at the largest machine count") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Figure 17: runtime breakdown (RMAT-%u, m=%d), fraction of tracked time ==\n",
              scale, machines);
  PrintHeader({"algorithm", "gp,own", "gp,stolen", "copy", "merge", "merge-wait", "barrier",
               "preproc"});
  for (const auto& info : Algorithms()) {
    InputGraph raw = BenchRmat(scale, info.needs_weights, seed);
    InputGraph prepared = PrepareInput(info.name, raw);
    auto result =
        RunChaosAlgorithm(info.name, prepared, BenchClusterConfig(prepared, machines, seed));
    PrintCell(info.name);
    for (const Bucket b : {Bucket::kGpMaster, Bucket::kGpSteal, Bucket::kCopy, Bucket::kMerge,
                           Bucket::kMergeWait, Bucket::kBarrier, Bucket::kPreprocess}) {
      PrintCell(100.0 * result.metrics.BucketFraction(b), "%.1f%%");
    }
    EndRow();
  }
  std::printf("\npaper: processing 74-87%% (avg 83%%), idle <4%%, copy+merge 0-22%%\n");
  return 0;
}
