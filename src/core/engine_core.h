// EngineCore: the untemplated engine of the Chaos computation loop
// (paper §5). One per machine. Owns every piece of control flow that used
// to live in the 1,000-line ComputeEngine<Program> template — the main
// superstep FSM, pre-processing, vertex-set load/store, randomized work
// stealing, the control server, the barrier protocol and the 2-phase
// checkpoint FSM — and compiles exactly once. Typed per-edge/per-update
// work is delegated at chunk granularity to a ProgramKernel
// (program_kernel.h / gas_kernel.h); data moves as type-erased RecordBatch
// buffers and Chunk payloads.
//
// The streaming phases themselves are driven by the ScatterPhase and
// GatherPhase drivers (scatter_phase.h, gather_phase.h); the barrier and
// checkpoint FSMs live in barrier_fsm.cc.
//
// Memory: every vertex-state / accumulator batch this core loads acquires
// pages from the machine's BufferPool (core/buffer_pool.h); batches are
// Touch()-ed per streamed chunk so evicted pages fault back in as simulated
// I/O — the mechanism behind graceful degradation under memory pressure.
#ifndef CHAOS_CORE_ENGINE_CORE_H_
#define CHAOS_CORE_ENGINE_CORE_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/buffer_pool.h"
#include "core/chunk_io.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/partition.h"
#include "core/program_kernel.h"
#include "core/protocol.h"
#include "core/record_batch.h"
#include "core/record_binner.h"
#include "sim/sync.h"
#include "storage/storage_engine.h"
#include "util/rng.h"

namespace chaos {

// Scoped simulated-time accounting into a metrics bucket. Safe across
// co_await: locals live in the coroutine frame.
class BucketTimer {
 public:
  BucketTimer(Simulator* sim, MachineMetrics* metrics, Bucket bucket)
      : sim_(sim), metrics_(metrics), bucket_(bucket), start_(sim->now()) {}
  ~BucketTimer() { Stop(); }
  BucketTimer(const BucketTimer&) = delete;
  BucketTimer& operator=(const BucketTimer&) = delete;

  void Stop() {
    if (!stopped_) {
      stopped_ = true;
      metrics_->Add(bucket_, sim_->now() - start_);
    }
  }

 private:
  Simulator* sim_;
  MachineMetrics* metrics_;
  Bucket bucket_;
  TimeNs start_;
  bool stopped_ = false;
};

// A loaded type-erased batch plus the buffer-pool lease backing its pages.
struct PooledBatch {
  RecordBatch batch;
  BufferPool::Lease lease;
};

// What a coordinator release told this engine to do next (protocol.h,
// BarrierReleaseMsg): finish, abort, or run the apply-mutations stage and
// keep going (evolving graphs — `done` and `mutate` are mutually exclusive).
struct BarrierOutcome {
  bool done = false;
  bool crash = false;
  bool mutate = false;
};

class EngineCore {
 public:
  EngineCore(EngineContext ctx, ProgramKernel* kernel, GraphMeta meta,
             const Partitioning* parts, MachineMetrics* metrics);

  // Spawns the main loop, the control server, and (machine 0) the barrier
  // coordinator.
  void Start();

  bool finished() const { return finished_; }
  bool crashed() const { return crashed_; }
  uint64_t supersteps_run() const { return superstep_; }
  // Prefix of the kernel's outputs emitted by supersteps that completed
  // their gather barrier before absolute superstep `superstep`. Recovery
  // uses this to carry a crashed run's already-committed output stream
  // (e.g. MSF edges) across the restart: the aborted superstep's partial
  // emissions fall after the last mark and are excluded.
  size_t NumOutputsBefore(uint64_t superstep) const;
  TimeNs preprocess_end_time() const { return preprocess_end_time_; }
  // Coordinator-side (machine 0): sim time at the end of each completed
  // superstep, indexed from the first superstep this run executed. Recovery
  // reads this to measure the time to re-reach the point of failure.
  const std::vector<TimeNs>& superstep_end_times() const { return superstep_end_times_; }
  // Superstep captured at the last committed checkpoint (the committed
  // global state itself is held typed by the kernel).
  uint64_t checkpointed_superstep() const { return checkpointed_superstep_; }
  bool has_checkpoint() const { return has_checkpoint_; }
  // Latest committed checkpoint side (for recovery imports).
  SetKind committed_checkpoint_side() const {
    CHAOS_CHECK(has_checkpoint_);
    return checkpoint_counter_ % 2 == 1 ? SetKind::kCheckpointA : SetKind::kCheckpointB;
  }
  // Edge side live at the last committed checkpoint (kEdges/kEdgesB): an
  // evolving run alternates edge sides per applied mutation batch, so a
  // recovery driver must import THIS side, not unconditionally kEdges.
  SetKind checkpoint_edges_kind() const { return checkpoint_edges_kind_; }
  // Mutation epochs durably applied at the last committed checkpoint: the
  // recovery driver restarts the MutationFeed here and replays the rest.
  uint64_t checkpoint_epoch() const { return checkpoint_epoch_; }
  // One record per mutation epoch this engine committed (machine 0 only).
  const std::vector<MutationEpochRecord>& mutation_records() const {
    return mutation_records_;
  }

 private:
  friend class ScatterPhase;
  friend class GatherPhase;

  struct PartStatus {
    enum class S { kPending, kActive, kClosed };
    S s = S::kPending;
    int workers = 0;
    std::vector<MachineId> gather_stealers;
  };

  // True once a MachineCrash fault has killed this machine. The engine
  // polls this at loop boundaries: streams are abandoned, new stealing
  // stops, and the next barrier arrival is flagged `failed`, which makes
  // the coordinator abort the run cluster-wide. Protocol handshakes that
  // peers are already blocked on (accumulator pulls, parked replicas)
  // still complete so the simulation drains — the *work* dies, the wires
  // stay up just long enough to tear down.
  bool Dead() const { return ctx_.faults != nullptr && ctx_.faults->dead(ctx_.machine); }

  // ----- epochs: every distinct sequential scan gets a unique epoch id.
  uint64_t ScatterEpoch() const { return 3 + 2 * superstep_; }
  uint64_t GatherEpoch() const { return 4 + 2 * superstep_; }
  // Commit-time update-snapshot scans use a disjoint range so they never
  // collide with a phase scan of the same set.
  uint64_t CheckpointScanEpoch() const { return (1ull << 40) + superstep_; }
  // Apply-mutations edge re-scan: its own disjoint range (one per superstep;
  // at most one mutation batch applies per convergence barrier).
  uint64_t MutateScanEpoch() const { return (1ull << 41) + superstep_; }
  static constexpr uint64_t kInputEpoch = 1;
  static constexpr uint64_t kDegreesEpoch = 2;

  uint64_t VertsPerChunk() const {
    const uint64_t per = ctx_.config->chunk_bytes / kernel_->vertex_state_bytes();
    return per < 1 ? 1 : per;
  }

  // The edge side currently being read. An evolving run's apply-mutations
  // stage writes the post-batch edge set to the OTHER side, commits, then
  // flips this parity and deletes the old side — so every scatter (and
  // steal D-estimate) automatically follows the committed side.
  SetKind EdgesKind() const {
    return edges_flips_ % 2 == 0 ? SetKind::kEdges : SetKind::kEdgesB;
  }
  SetId EdgesSet(PartitionId p) const { return SetId{p, EdgesKind()}; }
  SetId UpdatesSet(PartitionId p, uint64_t superstep) const {
    return SetId{p, UpdatesFor(superstep)};
  }
  MachineId LocalMasterTarget(MachineId master) const {
    return ctx_.config->placement == Placement::kLocalMaster ? master : kNoMachine;
  }

  // ------------------------------------------------------------- main loop
  Task<> Main();

  // --------------------------------------------------------- preprocessing
  // Streaming partition creation (§3): drain the shared input-chunk pool,
  // bin edges by partition of their source, count out-degrees (combiner),
  // then initialize and store the vertex sets of owned partitions.
  Task<> Preprocess();
  Task<> WriteVertexSetFromInit(PartitionId p, const std::vector<uint32_t>& degrees,
                                ChunkWriter* writer);

  // --------------------------------------------------- vertex set load/store
  // Acquires pool pages for the partition's vertex states and fills the
  // batch from the indexed vertex chunks at their hashed homes (§6.4).
  Task<PooledBatch> LoadVertexSet(PartitionId p);
  Task<> LoadVertexChunk(PartitionId p, uint64_t idx, RecordBatch* out, Semaphore* window);
  // Write-back: borrows chunk-sized ranges of the batch zero-copy.
  Task<> WriteVertexSet(PartitionId p, const RecordBatch& states, SetKind kind,
                        ChunkWriter* writer);
  // Faults a batch's evicted pages back in (no-op without a pool).
  Task<> TouchBatch(const PooledBatch& b);

  // ------------------------------------------------------------- stealing
  void ResetOwnStatuses();
  void OnMasterStartsPartition(PartitionId p);
  void OnMasterFinishesPartition(PartitionId p);
  // The steal decision (§5.4): accept iff V + D/(H+1) < alpha * D/H
  // (StealAccept in steal_policy.h), with D estimated as (local remaining
  // bytes) * machines.
  bool StealDecision(PartitionId p, EnginePhase phase);
  // Victim sweep order for one steal round: a seeded random permutation of
  // the other machines (from the dedicated steal RNG, so steal traffic
  // never perturbs placement draws), with in-domain victims first when
  // 2-level routing (StealPolicy::steal_domain) is configured.
  std::vector<MachineId> StealVictimOrder();
  // Randomized proposal sweep (§5.3) under the configured StealPolicy:
  // per-victim-machine proposals, optional task-indicator skips, optional
  // exponential backoff after dry sweeps, adaptive steal-half escalation.
  // `work` streams one stolen partition in the current phase (supplied by
  // the phase driver). Taken by value: coroutine parameters are copied into
  // the frame, so the callable safely outlives every suspension.
  Task<> StealLoop(EnginePhase phase, std::function<Task<>(PartitionId)> work);

  // ------------------------------------------------------- control server
  Task<> ControlServer();
  // Grant logic + reply for one queued steal proposal. Synchronous: the
  // per-message CPU charge is the caller's — ControlServer charges one
  // MessageTime() per popped message, or one per co-domain run when
  // steal_combine merges queued proposals (steal_policy.h,
  // CombinedProposalCharges).
  void HandleHelpProposal(const Message& m);
  Task<> HandleAccumPull(Message m);
  // Stolen-gather replica handshake (Fig. 4 line 52).
  void ParkStolenAccums(PartitionId p, Chunk accums);
  Task<> WaitStolenAccumsTaken(PartitionId p);

  // ------------------------------------------------------------- barriers
  // Returns the coordinator's release verdict.
  Task<BarrierOutcome> Barrier(bool advance);
  // Coordinator (machine 0): collects all machines' arrivals, folds
  // aggregator blobs through the kernel, runs Advance at gather barriers,
  // and releases everyone with the new canonical global.
  Task<> BarrierService();

  // ----------------------------------------------------------- checkpoint
  SetKind CheckpointSide() const {
    return checkpoint_counter_ % 2 == 0 ? SetKind::kCheckpointA : SetKind::kCheckpointB;
  }
  // True when the gather phase of this superstep must write the hot
  // checkpoint copy (2-phase step 1, §6.6).
  bool CheckpointCopyDue() const {
    return ctx_.config->checkpoint_interval > 0 && !Dead() &&
           (superstep_ + 1) % ctx_.config->checkpoint_interval == 0;
  }
  // 2-phase commit: all checkpoint data is durable (written during gather)
  // before the commit barrier; the previous side is deleted only afterwards.
  Task<> CommitCheckpoint();

  // ------------------------------------------------------------ mutations
  // Evolving graphs: applies the MutationFeed's planned delta. Streams the
  // current edge side of every owned partition (the read cost of finding
  // survivors), writes the post-batch edge set to the other side and the
  // reseeded vertex states over kVertices (+ the hot checkpoint copy when
  // checkpointing is on), commits at a barrier, flips the edge side, forces
  // a checkpoint commit, and only then deletes the old side — a crash at
  // any point leaves either the pre-batch or the post-batch state fully
  // intact (barrier_fsm.cc).
  Task<> ApplyMutationStage();
  Task<> WriteSeedStates(PartitionId p, ChunkWriter* writer);

  EngineContext ctx_;
  ProgramKernel* kernel_;
  GraphMeta meta_;
  const Partitioning* parts_;
  MachineMetrics* metrics_;
  Rng rng_;
  // Victim-selection stream, seeded via DeriveSeed from (config seed,
  // machine) — bitwise independent of --jobs and of the placement RNG.
  Rng steal_rng_;
  // Master-side grant cursor: successive granted proposals start their
  // own-partition sweep one slot later, spreading helpers across distinct
  // partitions instead of piling every helper onto the first open one.
  size_t grant_cursor_ = 0;

  uint64_t changed_ = 0;
  uint64_t superstep_ = 0;
  uint64_t start_superstep_ = 0;
  uint64_t next_phase_id_ = 0;
  EnginePhase phase_ = EnginePhase::kScatter;

  std::vector<PartitionId> own_partitions_;
  std::unordered_map<PartitionId, PartStatus> own_status_;

  std::unordered_map<PartitionId, Chunk> stolen_accums_;
  CondEvent stolen_ready_;
  CondEvent stolen_taken_;

  std::vector<size_t> output_marks_;  // kernel output count per completed superstep
  uint64_t checkpoint_counter_ = 0;
  uint64_t checkpointed_superstep_ = 0;
  bool has_checkpoint_ = false;
  // Evolving graphs: committed edge-side flips (parity picks kEdges/kEdgesB),
  // the edge side + mutation epoch captured at the last committed
  // checkpoint, and the per-epoch records (machine 0).
  uint64_t edges_flips_ = 0;
  SetKind checkpoint_edges_kind_ = SetKind::kEdges;
  uint64_t checkpoint_epoch_ = 0;
  std::vector<MutationEpochRecord> mutation_records_;
  TimeNs preprocess_end_time_ = 0;
  std::vector<TimeNs> superstep_end_times_;  // machine 0 only (coordinator)
  bool finished_ = false;
  bool crashed_ = false;
  bool aborted_ = false;  // a barrier released with crash: unwind, no more arrivals
};

}  // namespace chaos

#endif  // CHAOS_CORE_ENGINE_CORE_H_
