// chaos_run: command-line driver — run any of the ten algorithms over an
// edge-list file (binary or text) or a generated graph on a configurable
// simulated cluster. The "release binary" a downstream user would reach
// for first.
//
//   chaos_run --algo pagerank --input graph.txt --machines 16
//   chaos_run --algo bfs --generate rmat --scale 18 --machines 32 --hdd
//   chaos_run --algo sssp --generate grid --scale 8 --out distances.txt
//
// Heterogeneity / fault injection (reproduces bench fig21_stragglers):
//   chaos_run --algo pagerank --scale 17 --machines 4 --cores 1
//             --storage-bw-mbps 2000 --partitions-per-machine 16
//             --straggler 0 --straggler-severity 8
//
// Machine-failure recovery (reproduces bench fig_recovery): kill machine 2
// mid-run, recover automatically from the last committed checkpoint —
// on the N-1 survivors with --rescale, on a same-size cluster without:
//   chaos_run --algo pagerank --scale 16 --machines 8
//             --checkpoint-interval 2 --kill-machine 2 --kill-at 0.08
#include <cstdio>
#include <fstream>

#include "algorithms/runner.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/stats.h"

using namespace chaos;

int main(int argc, char** argv) {
  Options opt;
  opt.AddString("algo", "pagerank",
                "bfs|wcc|mcst|mis|sssp|pagerank|scc|conductance|spmv|bp");
  opt.AddString("input", "", "edge-list file (binary or text; empty = --generate)");
  opt.AddString("generate", "rmat", "rmat|web|grid|uniform (when no --input)");
  opt.AddInt("scale", 14, "generator scale (2^scale vertices)");
  opt.AddInt("machines", 8, "simulated machines");
  opt.AddInt("partitions-per-machine", 4, "streaming partitions per machine");
  opt.AddInt("chunk-kb", 256, "storage chunk size in KiB (the steal granularity)");
  opt.AddBool("hdd", false, "use the HDD profile instead of SSD");
  opt.AddBool("slow-net", false, "use 1GigE instead of 40GigE");
  opt.AddInt("cores", 0, "CPU cores per machine (0 = cost-model default)");
  opt.AddDouble("storage-bw-mbps", 0.0, "storage bandwidth MB/s (0 = profile default)");
  opt.AddDouble("alpha", 1.0, "work-stealing bias (0 disables stealing)");
  opt.AddInt("straggler", -1, "machine to degrade (-1 = healthy cluster)");
  opt.AddDouble("straggler-severity", 4.0, "slowdown factor of the straggler");
  opt.AddString("straggler-target", "cpu", "degraded resource: cpu|storage|nic|machine");
  opt.AddDouble("fault-at-ms", 0.0, "simulated time the degradation begins");
  opt.AddDouble("fault-duration-ms", 0.0, "degradation length (0 = permanent)");
  opt.AddInt("checkpoint-interval", 0, "checkpoint every N supersteps (0 = off)");
  opt.AddInt("kill-machine", -1, "fail-stop this machine mid-run (-1 = none)");
  opt.AddDouble("kill-at", 0.5,
                "simulated failure time in SECONDS (note: --fault-at-ms is in ms)");
  opt.AddBool("rescale", false, "recover on N-1 machines instead of a same-size cluster");
  opt.AddInt("source", 0, "source vertex (bfs/sssp)");
  opt.AddInt("iterations", 5, "iterations (pagerank/bp)");
  opt.AddInt("seed", 1, "seed");
  opt.AddString("out", "", "write per-vertex results to this file");
  opt.AddBool("verbose", false, "info-level logging");
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }
  if (opt.GetBool("verbose")) {
    SetLogLevel(LogLevel::kInfo);
  }
  const std::string algo = opt.GetString("algo");
  const AlgorithmInfo& info = AlgorithmByName(algo);
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // ---- Input.
  InputGraph raw;
  if (!opt.GetString("input").empty()) {
    std::string error;
    auto loaded = LoadEdgeListBinary(opt.GetString("input"), &error);
    if (!loaded.has_value()) {
      loaded = LoadEdgeListText(opt.GetString("input"), &error);
    }
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot load %s: %s\n", opt.GetString("input").c_str(),
                   error.c_str());
      return 1;
    }
    raw = std::move(*loaded);
    if (info.needs_weights && !raw.weighted) {
      std::fprintf(stderr, "note: %s expects weights; using weight 1 per edge\n",
                   algo.c_str());
    }
  } else {
    const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
    const std::string kind = opt.GetString("generate");
    if (kind == "rmat") {
      RmatOptions gopt;
      gopt.scale = scale;
      gopt.weighted = info.needs_weights;
      gopt.seed = seed;
      raw = GenerateRmat(gopt);
    } else if (kind == "web") {
      WebGraphOptions gopt;
      gopt.num_pages = 1ull << scale;
      gopt.num_hosts = std::max<uint64_t>(gopt.num_pages >> 8, 4);
      gopt.seed = seed;
      raw = GenerateWebGraph(gopt);
    } else if (kind == "grid") {
      GridGraphOptions gopt;
      gopt.width = 1u << (scale / 2);
      gopt.height = 1u << (scale - scale / 2);
      gopt.seed = seed;
      raw = GenerateGridGraph(gopt);
    } else if (kind == "uniform") {
      raw = GenerateUniformRandom(1ull << scale, 16ull << scale, info.needs_weights, seed);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
      return 1;
    }
  }
  InputGraph prepared = PrepareInput(algo, raw);
  std::printf("%s over %llu vertices / %llu edges (%s input)\n", algo.c_str(),
              static_cast<unsigned long long>(prepared.num_vertices),
              static_cast<unsigned long long>(prepared.num_edges()),
              FormatBytes(prepared.input_wire_bytes()).c_str());

  // ---- Cluster.
  ClusterConfig cfg;
  cfg.machines = static_cast<int>(opt.GetInt("machines"));
  const auto ppm = static_cast<uint64_t>(opt.GetInt("partitions-per-machine"));
  cfg.memory_budget_bytes = std::max<uint64_t>(
      prepared.num_vertices * 48 / (ppm * static_cast<uint64_t>(cfg.machines)) + 1, 4 << 10);
  cfg.chunk_bytes = static_cast<uint64_t>(opt.GetInt("chunk-kb")) << 10;
  cfg.storage = opt.GetBool("hdd") ? StorageConfig::Hdd() : StorageConfig::Ssd();
  cfg.net = opt.GetBool("slow-net") ? NetworkConfig::OneGigE() : NetworkConfig::FortyGigE();
  cfg.alpha = opt.GetDouble("alpha");
  cfg.checkpoint_interval = static_cast<uint32_t>(opt.GetInt("checkpoint-interval"));
  cfg.seed = seed;
  if (opt.GetInt("cores") > 0) {
    cfg.cost.cores = static_cast<int>(opt.GetInt("cores"));
  }
  if (opt.GetDouble("storage-bw-mbps") > 0.0) {
    cfg.storage.bandwidth_bps = opt.GetDouble("storage-bw-mbps") * 1e6;
  }

  // ---- Fault injection.
  const auto victim = static_cast<MachineId>(opt.GetInt("straggler"));
  if (victim >= 0) {
    if (victim >= cfg.machines) {
      std::fprintf(stderr, "--straggler must be in [0, %d)\n", cfg.machines);
      return 1;
    }
    FaultTarget target = FaultTarget::kCpu;
    if (!ParseFaultTarget(opt.GetString("straggler-target"), &target)) {
      std::fprintf(stderr, "unknown --straggler-target '%s'\n",
                   opt.GetString("straggler-target").c_str());
      return 1;
    }
    const double severity = opt.GetDouble("straggler-severity");
    if (severity < 1.0) {
      std::fprintf(stderr, "--straggler-severity must be >= 1\n");
      return 1;
    }
    FaultEvent fault;
    fault.machine = victim;
    fault.target = target;
    fault.factor = 1.0 / severity;
    fault.at = static_cast<TimeNs>(opt.GetDouble("fault-at-ms") * kNsPerMs);
    fault.duration = static_cast<TimeNs>(opt.GetDouble("fault-duration-ms") * kNsPerMs);
    cfg.faults.Add(fault);
    std::printf("injecting: machine %d %s at %.1fx speed (%s)\n", victim,
                FaultTargetName(target), 1.0 / severity,
                fault.permanent() ? "permanent" : "transient");
  }

  // ---- Machine failure + automatic recovery.
  const auto kill_machine = static_cast<MachineId>(opt.GetInt("kill-machine"));
  RecoveryOptions recovery;
  if (kill_machine >= 0) {
    if (kill_machine >= cfg.machines) {
      std::fprintf(stderr, "--kill-machine must be in [0, %d)\n", cfg.machines);
      return 1;
    }
    if (opt.GetBool("rescale") && cfg.machines < 2) {
      std::fprintf(stderr, "--rescale needs at least 2 machines (cannot shrink below 1)\n");
      return 1;
    }
    FaultEvent kill;
    kill.at = static_cast<TimeNs>(opt.GetDouble("kill-at") * static_cast<double>(kNsPerSec));
    kill.machine = kill_machine;
    kill.target = FaultTarget::kMachine;
    kill.kind = FaultKind::kMachineCrash;
    cfg.faults.Add(kill);
    if (opt.GetBool("rescale")) {
      recovery.replacement_machines = cfg.machines - 1;
    }
    std::printf("injecting: machine %d fails (fail-stop) at %.3fs; recovery on %d machines\n",
                kill_machine, opt.GetDouble("kill-at"),
                recovery.replacement_machines > 0 ? recovery.replacement_machines
                                                  : cfg.machines);
  }

  AlgoParams params;
  params.source = static_cast<VertexId>(opt.GetInt("source"));
  params.iterations = static_cast<uint32_t>(opt.GetInt("iterations"));
  RecoveryReport recovery_report;
  auto result = kill_machine >= 0
                    ? RunChaosAlgorithmWithRecovery(algo, prepared, cfg, params, recovery,
                                                    &recovery_report)
                    : RunChaosAlgorithm(algo, prepared, cfg, params);

  // ---- Report.
  std::printf("\n%s", result.metrics.Summary().c_str());
  if (kill_machine >= 0) {
    if (!recovery_report.crash_detected) {
      std::printf("machine failure never fired (run finished at %.3fs, before --kill-at)\n",
                  ToSeconds(result.metrics.total_time));
    } else {
      std::printf(
          "recovery: %s at superstep %llu, lost %llu superstep(s), "
          "time-to-recover %s, end-to-end %s\n",
          recovery_report.recovered_from_checkpoint ? "resumed from checkpoint"
                                                    : "restarted from input",
          static_cast<unsigned long long>(recovery_report.resume_superstep),
          static_cast<unsigned long long>(recovery_report.lost_work_supersteps),
          FormatSeconds(ToSeconds(recovery_report.time_to_recover)).c_str(),
          FormatSeconds(ToSeconds(recovery_report.end_to_end_time)).c_str());
    }
  }
  std::printf("supersteps: %llu\n", static_cast<unsigned long long>(result.supersteps));
  if (algo == "conductance") {
    std::printf("conductance: %.6f\n", result.scalar);
  }
  if (algo == "mcst") {
    std::printf("spanning forest: %llu edges, total weight %.2f\n",
                static_cast<unsigned long long>(result.output_records), result.scalar);
  }
  if (!opt.GetString("out").empty()) {
    std::ofstream out(opt.GetString("out"), std::ios::trunc);
    for (VertexId v = 0; v < prepared.num_vertices; ++v) {
      out << v << ' ' << result.values[v] << '\n';
    }
    std::printf("wrote %llu values to %s\n",
                static_cast<unsigned long long>(prepared.num_vertices),
                opt.GetString("out").c_str());
  }
  return 0;
}
