// The Chaos computation engine (paper §5): one per machine, executing the
// GAS loop over streaming partitions with randomized work stealing.
//
// Per superstep:
//   scatter phase:  own partitions, then steal (Fig. 4, lines 23-33)
//   barrier
//   gather phase:   own partitions (gather + accumulator pull + merge +
//                   apply + vertex write-back + update-set delete), then
//                   steal (lines 35-53)
//   barrier with global-state reduction (aggregator) and convergence check
//
// Machine 0 additionally runs the barrier coordinator; every machine runs a
// control server answering steal proposals and accumulator pulls while its
// main loop is busy streaming.
#ifndef CHAOS_CORE_COMPUTE_ENGINE_H_
#define CHAOS_CORE_COMPUTE_ENGINE_H_

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/chunk_io.h"
#include "core/config.h"
#include "core/gas.h"
#include "core/metrics.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "sim/sync.h"
#include "storage/storage_engine.h"
#include "util/rng.h"

namespace chaos {

// Scoped simulated-time accounting into a metrics bucket. Safe across
// co_await: locals live in the coroutine frame.
class BucketTimer {
 public:
  BucketTimer(Simulator* sim, MachineMetrics* metrics, Bucket bucket)
      : sim_(sim), metrics_(metrics), bucket_(bucket), start_(sim->now()) {}
  ~BucketTimer() { Stop(); }
  BucketTimer(const BucketTimer&) = delete;
  BucketTimer& operator=(const BucketTimer&) = delete;

  void Stop() {
    if (!stopped_) {
      stopped_ = true;
      metrics_->Add(bucket_, sim_->now() - start_);
    }
  }

 private:
  Simulator* sim_;
  MachineMetrics* metrics_;
  Bucket bucket_;
  TimeNs start_;
  bool stopped_ = false;
};

// Bins emitted records by destination partition into chunk-sized buffers.
// Add() is synchronous (called from the per-edge loop); full buffers are
// parked and flushed by the owning coroutine between chunks.
template <typename RecT>
class RecordBinner {
 public:
  RecordBinner(const Partitioning* parts, uint64_t record_wire_bytes, uint64_t chunk_bytes)
      : parts_(parts),
        record_wire_(record_wire_bytes),
        records_per_chunk_(RecordsPerChunk(chunk_bytes, record_wire_bytes)),
        buffers_(parts->num_partitions()) {}

  // Chunk capacity in records. Floored at one record per chunk so records
  // wider than the chunk still make progress; zero-width records (empty
  // payloads) never fill a chunk by byte count, so they are binned as if
  // one byte wide instead of dividing by zero.
  static uint64_t RecordsPerChunk(uint64_t chunk_bytes, uint64_t record_wire_bytes) {
    const uint64_t wire = record_wire_bytes < 1 ? 1 : record_wire_bytes;
    const uint64_t per = chunk_bytes / wire;
    return per < 1 ? 1 : per;
  }

  void Add(PartitionId p, const RecT& record) {
    auto& buffer = buffers_[p];
    buffer.push_back(record);
    ++emitted_;
    if (buffer.size() >= records_per_chunk_) {
      pending_.emplace_back(p, std::move(buffer));
      buffer.clear();
    }
  }

  bool HasPending() const { return !pending_.empty(); }

  Task<> FlushPending(ChunkWriter* writer, SetKind kind) {
    while (!pending_.empty()) {
      auto [p, records] = std::move(pending_.front());
      pending_.pop_front();
      const uint64_t wire = records.size() * record_wire_;
      // NOTE: named locals (not braced temporaries) around coroutine calls;
      // g++ 12 miscompiles braced aggregate temporaries passed directly as
      // coroutine arguments (see docs in sim/task.h).
      const SetId target{p, kind};
      Chunk chunk = MakeChunk<RecT>(next_index_++, wire, std::move(records));
      co_await writer->Write(target, std::move(chunk), parts_->Master(p));
    }
  }

  Task<> FlushAll(ChunkWriter* writer, SetKind kind) {
    for (PartitionId p = 0; p < buffers_.size(); ++p) {
      if (!buffers_[p].empty()) {
        pending_.emplace_back(p, std::move(buffers_[p]));
        buffers_[p].clear();
      }
    }
    co_await FlushPending(writer, kind);
  }

  uint64_t emitted() const { return emitted_; }

 private:
  const Partitioning* parts_;
  uint64_t record_wire_;
  uint64_t records_per_chunk_;
  std::vector<std::vector<RecT>> buffers_;
  std::deque<std::pair<PartitionId, std::vector<RecT>>> pending_;
  uint32_t next_index_ = 0;
  uint64_t emitted_ = 0;
};

template <GasProgram P>
class ComputeEngine {
 public:
  using VState = typename P::VertexState;
  using U = typename P::UpdateValue;
  using A = typename P::Accumulator;
  using G = typename P::GlobalState;
  using Out = typename P::OutputRecord;
  using Rec = UpdateRecord<U>;

  ComputeEngine(EngineContext ctx, const P* prog, GraphMeta meta, const Partitioning* parts,
                MachineMetrics* metrics, const G& initial_global)
      : ctx_(std::move(ctx)),
        prog_(prog),
        meta_(meta),
        parts_(parts),
        metrics_(metrics),
        rng_(HashCombine(ctx_.config->seed, static_cast<uint64_t>(ctx_.machine) + 0xce)),
        global_(initial_global),
        local_(prog->InitLocal()),
        stolen_ready_(ctx_.sim),
        stolen_taken_(ctx_.sim),
        update_wire_(UpdateWireBytes<U>(meta.vertex_id_wire_bytes)) {
    for (PartitionId p = 0; p < parts_->num_partitions(); ++p) {
      if (parts_->Master(p) == ctx_.machine) {
        own_partitions_.push_back(p);
      }
    }
  }

  // Spawns the main loop, the control server, and (machine 0) the barrier
  // coordinator.
  void Start() {
    if (ctx_.machine == 0) {
      ctx_.sim->Spawn(BarrierService());
    }
    ctx_.sim->Spawn(ControlServer());
    ctx_.sim->Spawn(Main());
  }

  bool finished() const { return finished_; }
  bool crashed() const { return crashed_; }
  uint64_t supersteps_run() const { return superstep_; }
  const G& final_global() const { return global_; }
  const std::vector<Out>& outputs() const { return outputs_; }
  // Prefix of outputs() emitted by supersteps that completed their gather
  // barrier before absolute superstep `superstep`. Recovery uses this to
  // carry a crashed run's already-committed output stream (e.g. MSF edges)
  // across the restart: the aborted superstep's partial emissions fall
  // after the last mark and are excluded.
  size_t NumOutputsBefore(uint64_t superstep) const {
    if (superstep <= start_superstep_) {
      return 0;
    }
    const uint64_t completed = superstep - start_superstep_;
    if (output_marks_.empty()) {
      return 0;
    }
    return output_marks_[std::min<size_t>(completed, output_marks_.size()) - 1];
  }
  TimeNs preprocess_end_time() const { return preprocess_end_time_; }
  // Coordinator-side (machine 0): sim time at the end of each completed
  // superstep, indexed from the first superstep this run executed. Recovery
  // reads this to measure the time to re-reach the point of failure.
  const std::vector<TimeNs>& superstep_end_times() const { return superstep_end_times_; }
  // Global state and superstep captured at the last committed checkpoint.
  const G& checkpointed_global() const { return checkpointed_global_; }
  uint64_t checkpointed_superstep() const { return checkpointed_superstep_; }
  bool has_checkpoint() const { return has_checkpoint_; }

 private:
  // True once a MachineCrash fault has killed this machine. The engine
  // polls this at loop boundaries: streams are abandoned, new stealing
  // stops, and the next barrier arrival is flagged `failed`, which makes
  // the coordinator abort the run cluster-wide. Protocol handshakes that
  // peers are already blocked on (accumulator pulls, parked replicas)
  // still complete so the simulation drains — the *work* dies, the wires
  // stay up just long enough to tear down.
  bool Dead() const {
    return ctx_.faults != nullptr && ctx_.faults->dead(ctx_.machine);
  }

  // ----- epochs: every distinct sequential scan gets a unique epoch id.
  uint64_t ScatterEpoch() const { return 3 + 2 * superstep_; }
  uint64_t GatherEpoch() const { return 4 + 2 * superstep_; }
  // Commit-time update-snapshot scans use a disjoint range so they never
  // collide with a phase scan of the same set.
  uint64_t CheckpointScanEpoch() const { return (1ull << 40) + superstep_; }
  static constexpr uint64_t kInputEpoch = 1;
  static constexpr uint64_t kDegreesEpoch = 2;

  uint64_t VertsPerChunk() const {
    const uint64_t per = ctx_.config->chunk_bytes / sizeof(VState);
    return per < 1 ? 1 : per;
  }

  SetId EdgesSet(PartitionId p) const { return SetId{p, SetKind::kEdges}; }
  SetId UpdatesSet(PartitionId p, uint64_t superstep) const {
    return SetId{p, UpdatesFor(superstep)};
  }

  // ------------------------------------------------------------- main loop

  Task<> Main() {
    if (!ctx_.config->resume) {
      co_await Preprocess();
    } else {
      superstep_ = ctx_.config->resume_superstep;
      start_superstep_ = ctx_.config->resume_superstep;
    }
    if (!aborted_) {
      co_await Barrier(/*advance=*/false);
    }
    // Recorded on the healthy path only: a zero preprocess time is how a
    // crash-during-preprocessing run is recognized (no superstep entered).
    if (ctx_.machine == 0 && !aborted_) {
      preprocess_end_time_ = ctx_.sim->now();
    }
    while (!aborted_) {
      CHAOS_CHECK_MSG(superstep_ - start_superstep_ < ctx_.config->max_supersteps,
                      "superstep limit exceeded; algorithm not converging?");
      if (prog_->WantScatter(global_)) {
        co_await ScatterPhase();
        co_await Barrier(/*advance=*/false);
        if (aborted_) {
          break;
        }
      }
      co_await GatherPhase();
      const auto [done, crash] = co_await Barrier(/*advance=*/true);
      if (crash) {
        break;
      }
      // Superstep completed cluster-wide: everything in outputs_ so far is
      // part of the committed output stream (see NumOutputsBefore).
      output_marks_.push_back(outputs_.size());
      // The final superstep's checkpoint copy is written during its gather
      // but not committed (the computation is complete; recovery would use
      // the final vertex sets themselves). The uncommitted side is left
      // behind, as in any in-flight 2-phase protocol.
      const bool checkpoint_due = ctx_.config->checkpoint_interval > 0 && !done &&
                                  (superstep_ + 1) % ctx_.config->checkpoint_interval == 0;
      if (checkpoint_due) {
        co_await CommitCheckpoint();
        if (aborted_) {
          break;
        }
      }
      ++superstep_;
      if (done) {
        break;
      }
    }
    crashed_ = aborted_;
    // Stop this machine's control server.
    Message stop;
    stop.src = ctx_.machine;
    stop.dst = ctx_.machine;
    stop.service = kControlService;
    stop.type = kControlShutdown;
    stop.wire_bytes = kControlMsgBytes;
    ctx_.bus->PostSend(std::move(stop));
    finished_ = true;
  }

  // --------------------------------------------------------- preprocessing

  // Streaming partition creation (§3): drain the shared input-chunk pool,
  // bin edges by partition of their source, count out-degrees (combiner),
  // then initialize and store the vertex sets of owned partitions.
  Task<> Preprocess() {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kPreprocess);
    const auto& cost = ctx_.cost();
    {
      RecordBinner<Edge> edge_binner(parts_, meta_.edge_wire_bytes, ctx_.config->chunk_bytes);
      ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
      std::unordered_map<VertexId, uint32_t> degree_counts;
      ChunkFetcher fetcher(&ctx_, &rng_, SetId{0, SetKind::kInput}, kInputEpoch,
                           ctx_.config->fetch_window(),
                           ctx_.config->placement == Placement::kLocalMaster ? ctx_.machine
                                                                             : kNoMachine);
      fetcher.Start();
      while (true) {
        if (Dead()) {
          co_await fetcher.Cancel();
          break;
        }
        std::optional<Chunk> chunk = co_await fetcher.Next();
        if (!chunk.has_value()) {
          break;
        }
        auto edges = ChunkSpan<Edge>(*chunk);
        co_await ctx_.sim->Delay(ctx_.CpuTime(edges.size(), cost.ns_per_edge_scatter) +
                                 ctx_.MessageTime());
        for (const Edge& e : edges) {
          edge_binner.Add(parts_->PartitionOf(e.src), e);
          if (P::kNeedsOutDegrees && e.flags == kEdgeForward) {
            degree_counts[e.src]++;
          }
        }
        ++metrics_->chunks_fetched;
        co_await edge_binner.FlushPending(&writer, SetKind::kEdges);
      }
      co_await edge_binner.FlushAll(&writer, SetKind::kEdges);
      if (P::kNeedsOutDegrees) {
        RecordBinner<UpdateRecord<uint32_t>> degree_binner(
            parts_, meta_.vertex_id_wire_bytes + 4, ctx_.config->chunk_bytes);
        for (const auto& [vertex, count] : degree_counts) {
          const UpdateRecord<uint32_t> record{vertex, count};
          degree_binner.Add(parts_->PartitionOf(vertex), record);
        }
        co_await degree_binner.FlushAll(&writer, SetKind::kDegrees);
      }
      co_await writer.Drain();
    }
    co_await Barrier(/*advance=*/false);
    if (aborted_) {
      co_return;  // a machine died during pre-processing: no state to init
    }

    // Vertex-set initialization for owned partitions.
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    for (const PartitionId p : own_partitions_) {
      const uint64_t count = parts_->Count(p);
      const VertexId base = parts_->Base(p);
      std::vector<uint32_t> degrees;
      if (P::kNeedsOutDegrees) {
        degrees.assign(count, 0);
        ChunkFetcher fetcher(&ctx_, &rng_, SetId{p, SetKind::kDegrees}, kDegreesEpoch,
                             ctx_.config->fetch_window(),
                             ctx_.config->placement == Placement::kLocalMaster ? parts_->Master(p)
                                                                               : kNoMachine);
        fetcher.Start();
        while (true) {
          std::optional<Chunk> chunk = co_await fetcher.Next();
          if (!chunk.has_value()) {
            break;
          }
          for (const auto& rec : ChunkSpan<UpdateRecord<uint32_t>>(*chunk)) {
            CHAOS_DCHECK(parts_->PartitionOf(rec.dst) == p);
            degrees[rec.dst - base] += rec.value;
          }
        }
        const SetId degrees_set{p, SetKind::kDegrees};
        co_await DeleteSetEverywhere(&ctx_, degrees_set);
      }
      co_await WriteVertexSetFromInit(p, degrees, &writer);
    }
    co_await writer.Drain();
  }

  Task<> WriteVertexSetFromInit(PartitionId p, const std::vector<uint32_t>& degrees,
                                ChunkWriter* writer) {
    const uint64_t count = parts_->Count(p);
    const VertexId base = parts_->Base(p);
    const uint64_t per_chunk = VertsPerChunk();
    co_await ctx_.sim->Delay(ctx_.CpuTime(count, ctx_.cost().ns_per_vertex_apply));
    for (uint64_t start = 0, idx = 0; start < count; start += per_chunk, ++idx) {
      const uint64_t n = std::min(per_chunk, count - start);
      std::vector<VState> states;
      states.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        const VertexId v = base + start + i;
        states.push_back(prog_->InitVertex(global_, v,
                                           degrees.empty() ? 0 : degrees[start + i]));
      }
      co_await WriteVertexChunk(p, static_cast<uint32_t>(idx), SetKind::kVertices,
                                std::move(states), writer);
    }
  }

  // --------------------------------------------------- vertex set load/store

  Task<> LoadVertexSet(PartitionId p, std::vector<VState>* out) {
    const uint64_t count = parts_->Count(p);
    out->assign(count, VState{});
    const uint64_t per_chunk = VertsPerChunk();
    const auto nchunks = static_cast<uint32_t>((count + per_chunk - 1) / per_chunk);
    Semaphore window(ctx_.sim, ctx_.config->fetch_window());
    TaskGroup group(ctx_.sim);
    for (uint32_t idx = 0; idx < nchunks; ++idx) {
      co_await window.Acquire();
      group.Spawn(LoadVertexChunk(p, idx, out, &window));
    }
    co_await group.Join();
  }

  Task<> LoadVertexChunk(PartitionId p, uint32_t idx, std::vector<VState>* out,
                         Semaphore* window) {
    const MachineId home = VertexChunkHome(p, idx, ctx_.machines());
    Message req;
    req.src = ctx_.machine;
    req.dst = home;
    req.service = kStorageService;
    req.type = kReadIndexedReq;
    req.wire_bytes = kControlMsgBytes;
    req.body = ReadIndexedReq{SetId{p, SetKind::kVertices}, idx, false, 0};
    Message resp = co_await ctx_.bus->Call(std::move(req));
    const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
    CHAOS_CHECK_MSG(r.ok, "missing vertex chunk " + std::to_string(idx) + " of partition " +
                              std::to_string(p));
    auto states = ChunkSpan<VState>(r.chunk);
    const uint64_t start = static_cast<uint64_t>(idx) * VertsPerChunk();
    CHAOS_CHECK_LE(start + states.size(), out->size());
    std::copy(states.begin(), states.end(), out->begin() + static_cast<int64_t>(start));
    window->Release();
  }

  Task<> WriteVertexChunk(PartitionId p, uint32_t idx, SetKind kind, std::vector<VState> states,
                          ChunkWriter* writer) {
    const uint64_t wire = states.size() * sizeof(VState);
    Chunk chunk = MakeChunk<VState>(idx, wire, std::move(states));
    // Vertex (and checkpoint) chunks live at hashed homes (§6.4); the writer
    // window still bounds outstanding requests.
    const MachineId home = VertexChunkHome(p, idx, ctx_.machines());
    const SetId target{p, kind};
    co_await writer->Write(target, std::move(chunk), home);
  }

  Task<> WriteVertexSet(PartitionId p, const std::vector<VState>& states, SetKind kind,
                        ChunkWriter* writer) {
    const uint64_t per_chunk = VertsPerChunk();
    for (uint64_t start = 0, idx = 0; start < states.size(); start += per_chunk, ++idx) {
      const uint64_t n = std::min(per_chunk, states.size() - start);
      std::vector<VState> copy(states.begin() + static_cast<int64_t>(start),
                               states.begin() + static_cast<int64_t>(start + n));
      co_await WriteVertexChunk(p, static_cast<uint32_t>(idx), kind, std::move(copy), writer);
    }
  }

  // ------------------------------------------------------------ scatter

  Task<> ScatterPhase() {
    phase_ = EnginePhase::kScatter;
    ResetOwnStatuses();
    RecordBinner<Rec> binner(parts_, update_wire_, ctx_.config->chunk_bytes);
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    for (const PartitionId p : own_partitions_) {
      co_await ProcessPartitionScatter(p, /*stolen=*/false, &binner, &writer);
    }
    if (ctx_.config->stealing_enabled() && !Dead()) {
      co_await StealLoop(EnginePhase::kScatter, &binner, &writer);
    }
    if (!Dead()) {
      // A dead machine's buffered emissions are lost with it; the aborted
      // superstep is re-run from the checkpoint anyway.
      co_await binner.FlushAll(&writer, UpdatesFor(superstep_));
    }
    co_await writer.Drain();
    metrics_->updates_emitted += binner.emitted();
    phase_ = EnginePhase::kGather;  // proposals for scatter now rejected
  }

  Task<> ProcessPartitionScatter(PartitionId p, bool stolen, RecordBinner<Rec>* binner,
                                 ChunkWriter* writer) {
    const bool mine = parts_->Master(p) == ctx_.machine;
    if (mine) {
      OnMasterStartsPartition(p);
    }
    std::vector<VState> vstate;
    {
      BucketTimer load_t(ctx_.sim, metrics_, stolen ? Bucket::kCopy : Bucket::kGpMaster);
      co_await LoadVertexSet(p, &vstate);
    }
    BucketTimer t(ctx_.sim, metrics_, stolen ? Bucket::kGpSteal : Bucket::kGpMaster);
    const VertexId base = parts_->Base(p);
    const auto& cost = ctx_.cost();
    const SetKind target_kind = UpdatesFor(superstep_);
    auto emit = [&](VertexId dst, const U& value) {
      binner->Add(parts_->PartitionOf(dst), Rec{dst, value});
    };
    ChunkFetcher fetcher(&ctx_, &rng_, EdgesSet(p), ScatterEpoch(), ctx_.config->fetch_window(),
                         ctx_.config->placement == Placement::kLocalMaster ? parts_->Master(p)
                                                                           : kNoMachine);
    fetcher.Start();
    while (true) {
      if (Dead()) {
        co_await fetcher.Cancel();
        break;
      }
      std::optional<Chunk> chunk = co_await fetcher.Next();
      if (!chunk.has_value()) {
        break;
      }
      auto edges = ChunkSpan<Edge>(*chunk);
      co_await ctx_.sim->Delay(ctx_.CpuTime(edges.size(), cost.ns_per_edge_scatter) +
                               ctx_.MessageTime());
      for (const Edge& e : edges) {
        CHAOS_DCHECK(parts_->PartitionOf(e.src) == p);
        prog_->Scatter(global_, e.src, vstate[e.src - base], e, emit);
      }
      metrics_->edges_processed += edges.size();
      ++metrics_->chunks_fetched;
      co_await binner->FlushPending(writer, target_kind);
    }
    if (mine) {
      OnMasterFinishesPartition(p);
    }
  }

  // ------------------------------------------------------------- gather

  Task<> GatherPhase() {
    phase_ = EnginePhase::kGather;
    ResetOwnStatuses();
    // Emissions produced during gather/apply feed the *next* superstep.
    RecordBinner<Rec> binner(parts_, update_wire_, ctx_.config->chunk_bytes);
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    // A dead master still visits every owned partition: registered gather
    // stealers are parked on the accumulator handshake and must be released
    // even though the superstep is doomed (streams themselves abort early).
    for (const PartitionId p : own_partitions_) {
      co_await ProcessPartitionGatherMaster(p, &binner, &writer);
    }
    if (ctx_.config->stealing_enabled() && !Dead()) {
      co_await StealLoop(EnginePhase::kGather, &binner, &writer);
    }
    if (!Dead()) {
      co_await binner.FlushAll(&writer, UpdatesFor(superstep_ + 1));
    }
    co_await writer.Drain();
    metrics_->updates_emitted += binner.emitted();
    phase_ = EnginePhase::kScatter;
  }

  // Shared streaming part of gather; returns gathered accumulators.
  Task<std::pair<std::vector<VState>, std::vector<A>>> GatherStream(
      PartitionId p, bool stolen, RecordBinner<Rec>* binner, ChunkWriter* writer) {
    std::vector<VState> vstate;
    {
      BucketTimer load_t(ctx_.sim, metrics_, stolen ? Bucket::kCopy : Bucket::kGpMaster);
      co_await LoadVertexSet(p, &vstate);
    }
    BucketTimer t(ctx_.sim, metrics_, stolen ? Bucket::kGpSteal : Bucket::kGpMaster);
    std::vector<A> accums(parts_->Count(p), prog_->InitAccum());
    const VertexId base = parts_->Base(p);
    const auto& cost = ctx_.cost();
    const SetKind emit_kind = UpdatesFor(superstep_ + 1);
    auto emit = [&](VertexId dst, const U& value) {
      binner->Add(parts_->PartitionOf(dst), Rec{dst, value});
    };
    ChunkFetcher fetcher(&ctx_, &rng_, UpdatesSet(p, superstep_), GatherEpoch(),
                         ctx_.config->fetch_window(),
                         ctx_.config->placement == Placement::kLocalMaster ? parts_->Master(p)
                                                                           : kNoMachine);
    fetcher.Start();
    while (true) {
      if (Dead()) {
        co_await fetcher.Cancel();
        break;
      }
      std::optional<Chunk> chunk = co_await fetcher.Next();
      if (!chunk.has_value()) {
        break;
      }
      auto records = ChunkSpan<Rec>(*chunk);
      co_await ctx_.sim->Delay(ctx_.CpuTime(records.size(), cost.ns_per_update_gather) +
                               ctx_.MessageTime());
      for (const Rec& r : records) {
        CHAOS_DCHECK(parts_->PartitionOf(r.dst) == p);
        prog_->Gather(global_, r.dst, vstate[r.dst - base], accums[r.dst - base], r.value, emit);
      }
      metrics_->updates_processed += records.size();
      ++metrics_->chunks_fetched;
      co_await binner->FlushPending(writer, emit_kind);
    }
    co_return std::make_pair(std::move(vstate), std::move(accums));
  }

  Task<> ProcessPartitionGatherMaster(PartitionId p, RecordBinner<Rec>* binner,
                                      ChunkWriter* writer) {
    OnMasterStartsPartition(p);
    auto [vstate, accums] = co_await GatherStream(p, /*stolen=*/false, binner, writer);
    // Close: no new stealers; the registered set is now final (§5.3).
    PartStatus& st = own_status_[p];
    st.s = PartStatus::S::kClosed;
    const auto& cost = ctx_.cost();

    // Pull and merge the replica accumulators of every stealer.
    for (const MachineId stealer : st.gather_stealers) {
      Message req;
      req.src = ctx_.machine;
      req.dst = stealer;
      req.service = kControlService;
      req.type = kAccumPullReq;
      req.wire_bytes = kControlMsgBytes;
      req.body = AccumPullReq{p, superstep_};
      Message resp;
      {
        BucketTimer wait_t(ctx_.sim, metrics_, Bucket::kMergeWait);
        resp = co_await ctx_.bus->Call(std::move(req));
      }
      const auto& pull = std::any_cast<const AccumPullResp&>(resp.body);
      auto theirs = ChunkSpan<A>(pull.accums);
      CHAOS_CHECK_EQ(theirs.size(), accums.size());
      BucketTimer merge_t(ctx_.sim, metrics_, Bucket::kMerge);
      co_await ctx_.sim->Delay(ctx_.CpuTime(theirs.size(), cost.ns_per_vertex_merge));
      for (size_t i = 0; i < accums.size(); ++i) {
        prog_->MergeAccum(accums[i], theirs[i]);
      }
    }

    // Apply (folded into the gather phase, §4) and write the new vertex set.
    {
      BucketTimer t(ctx_.sim, metrics_, Bucket::kGpMaster);
      const VertexId base = parts_->Base(p);
      const SetKind emit_kind = UpdatesFor(superstep_ + 1);
      auto emit = [&](VertexId dst, const U& value) {
        binner->Add(parts_->PartitionOf(dst), Rec{dst, value});
      };
      auto sink = [&](const Out& out) { outputs_.push_back(out); };
      co_await ctx_.sim->Delay(ctx_.CpuTime(vstate.size(), cost.ns_per_vertex_apply));
      for (size_t i = 0; i < vstate.size(); ++i) {
        if (prog_->Apply(global_, base + i, vstate[i], accums[i], local_, emit, sink)) {
          ++changed_;
        }
      }
      co_await binner->FlushPending(writer, emit_kind);
      co_await WriteVertexSet(p, vstate, SetKind::kVertices, writer);
    }

    // Checkpoint copy, written while the state is hot (2-phase step 1, §6.6).
    // A dead machine writes none — its superstep will never commit.
    const bool checkpoint_due =
        ctx_.config->checkpoint_interval > 0 && !Dead() &&
        (superstep_ + 1) % ctx_.config->checkpoint_interval == 0;
    if (checkpoint_due) {
      BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
      co_await WriteVertexSet(p, vstate, CheckpointSide(), writer);
    }

    // Updates of this iteration are deleted after apply (Fig. 4 line 45).
    co_await DeleteSetEverywhere(&ctx_, UpdatesSet(p, superstep_));
  }

  Task<> ProcessPartitionGatherStolen(PartitionId p, RecordBinner<Rec>* binner,
                                      ChunkWriter* writer) {
    auto [vstate, accums] = co_await GatherStream(p, /*stolen=*/true, binner, writer);
    (void)vstate;
    // Park the replica accumulators for the master's pull (Fig. 4 line 52).
    const uint64_t wire = accums.size() * sizeof(A);
    stolen_accums_[p] = MakeChunk<A>(0, wire, std::move(accums));
    stolen_ready_.NotifyAll();
    BucketTimer wait_t(ctx_.sim, metrics_, Bucket::kMergeWait);
    while (stolen_accums_.count(p) != 0) {
      co_await stolen_taken_.Wait();
    }
  }

  // ------------------------------------------------------------- stealing

  void ResetOwnStatuses() {
    own_status_.clear();
    for (const PartitionId p : own_partitions_) {
      own_status_.emplace(p, PartStatus{});
    }
  }

  void OnMasterStartsPartition(PartitionId p) {
    PartStatus& st = own_status_[p];
    st.s = PartStatus::S::kActive;
    ++st.workers;
  }

  void OnMasterFinishesPartition(PartitionId p) {
    PartStatus& st = own_status_[p];
    st.s = PartStatus::S::kClosed;
    --st.workers;
  }

  // The steal decision (§5.4): accept iff V + D/(H+1) < alpha * D/H, with D
  // estimated as (local remaining bytes) * machines.
  bool StealDecision(PartitionId p, EnginePhase phase) {
    auto it = own_status_.find(p);
    CHAOS_CHECK(it != own_status_.end());
    PartStatus& st = it->second;
    if (st.s == PartStatus::S::kClosed) {
      return false;
    }
    const SetId set =
        phase == EnginePhase::kScatter ? EdgesSet(p) : UpdatesSet(p, superstep_);
    const uint64_t epoch = phase == EnginePhase::kScatter ? ScatterEpoch() : GatherEpoch();
    const double d_local =
        static_cast<double>(ctx_.local_storage()->RemainingBytes(set, epoch));
    const double d = d_local * ctx_.machines();
    if (d <= 0.0) {
      return false;
    }
    const double v =
        static_cast<double>(parts_->Count(p)) * static_cast<double>(sizeof(VState));
    const int h = st.workers > 0 ? st.workers : 1;
    const double alpha = ctx_.config->alpha;
    const bool accept =
        std::isinf(alpha) || (v + d / (h + 1) < alpha * d / h);
    return accept;
  }

  Task<> StealLoop(EnginePhase phase, RecordBinner<Rec>* binner, ChunkWriter* writer) {
    while (!Dead()) {
      bool any_accept = false;
      std::vector<uint32_t> order = rng_.Permutation(parts_->num_partitions());
      for (const PartitionId p : order) {
        if (Dead()) {
          break;
        }
        if (parts_->Master(p) == ctx_.machine) {
          continue;
        }
        ++metrics_->steal_proposals_sent;
        Message req;
        req.src = ctx_.machine;
        req.dst = parts_->Master(p);
        req.service = kControlService;
        req.type = kHelpProposalReq;
        req.wire_bytes = kControlMsgBytes;
        req.body = HelpProposalReq{p, phase, superstep_};
        Message resp = co_await ctx_.bus->Call(std::move(req));
        if (!std::any_cast<const HelpProposalResp&>(resp.body).accept) {
          continue;
        }
        any_accept = true;
        ++metrics_->steals_worked;
        if (phase == EnginePhase::kScatter) {
          co_await ProcessPartitionScatter(p, /*stolen=*/true, binner, writer);
        } else {
          co_await ProcessPartitionGatherStolen(p, binner, writer);
        }
      }
      if (!any_accept) {
        break;
      }
    }
  }

  // ------------------------------------------------------- control server

  Task<> ControlServer() {
    SimQueue<Message>& inbox = ctx_.bus->Inbox(ctx_.machine, kControlService);
    while (true) {
      Message m = co_await inbox.Pop();
      switch (m.type) {
        case kHelpProposalReq: {
          const auto& req = std::any_cast<const HelpProposalReq&>(m.body);
          ++metrics_->proposals_received;
          bool accept = false;
          // A dead master accepts no new helpers (its superstep is doomed);
          // already-admitted stealers are drained by the handshake.
          if (ctx_.config->stealing_enabled() && !Dead() && req.superstep == superstep_ &&
              req.phase == phase_ && own_status_.count(req.partition) != 0) {
            accept = StealDecision(req.partition, req.phase);
            if (accept) {
              PartStatus& st = own_status_[req.partition];
              ++st.workers;
              if (st.s == PartStatus::S::kPending) {
                st.s = PartStatus::S::kActive;
              }
              if (req.phase == EnginePhase::kGather) {
                st.gather_stealers.push_back(m.src);
              }
              ++metrics_->proposals_accepted;
            }
          }
          ctx_.bus->PostReply(m, kHelpProposalResp, kControlMsgBytes, HelpProposalResp{accept});
          break;
        }
        case kAccumPullReq:
          ctx_.sim->Spawn(HandleAccumPull(std::move(m)));
          break;
        case kControlShutdown:
          co_return;
        default:
          CHAOS_CHECK_MSG(false, "unknown control message type " + std::to_string(m.type));
      }
    }
  }

  Task<> HandleAccumPull(Message m) {
    const auto& req = std::any_cast<const AccumPullReq&>(m.body);
    while (stolen_accums_.count(req.partition) == 0) {
      co_await stolen_ready_.Wait();
    }
    auto node = stolen_accums_.extract(req.partition);
    Chunk accums = std::move(node.mapped());
    const uint64_t wire = accums.model_bytes + kControlMsgBytes;
    AccumPullResp resp{std::move(accums), 0};
    ctx_.bus->PostReply(m, kAccumPullResp, wire, std::move(resp));
    stolen_taken_.NotifyAll();
  }

  // ------------------------------------------------------------- barriers

  Task<std::pair<bool, bool>> Barrier(bool advance) {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kBarrier);
    Message req;
    req.src = ctx_.machine;
    req.dst = 0;
    req.service = kComputeService;
    req.type = kBarrierArrive;
    req.wire_bytes = kControlMsgBytes + sizeof(G);
    BarrierArrive<G> body;
    body.phase_id = next_phase_id_++;
    body.local = local_;
    body.vertices_changed = changed_;
    body.advance = advance;
    body.failed = Dead();  // barrier doubles as the failure detector (§6.6)
    body.superstep = superstep_;
    req.body = body;
    Message resp = co_await ctx_.bus->Call(std::move(req));
    const auto& release = std::any_cast<const BarrierRelease<G>&>(resp.body);
    global_ = release.global;
    local_ = prog_->InitLocal();
    changed_ = 0;
    if (release.crash) {
      // The coordinator stops serving barriers after a crash release; every
      // caller must unwind to Main without arriving at another barrier.
      aborted_ = true;
    }
    co_return std::make_pair(release.done, release.crash);
  }

  // Coordinator: collects all machines' arrivals, folds aggregators, runs
  // Advance at gather barriers, and releases everyone with the new global.
  Task<> BarrierService() {
    SimQueue<Message>& inbox = ctx_.bus->Inbox(0, kComputeService);
    G canonical = global_;
    const int m = ctx_.machines();
    while (true) {
      std::vector<Message> arrivals;
      arrivals.reserve(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        Message msg = co_await inbox.Pop();
        CHAOS_CHECK_EQ(msg.type, static_cast<uint32_t>(kBarrierArrive));
        arrivals.push_back(std::move(msg));
      }
      const auto& first = std::any_cast<const BarrierArrive<G>&>(arrivals.front().body);
      const bool advance = first.advance;
      const uint64_t superstep = first.superstep;
      bool done = false;
      // Failure detection (§6.6): any flagged arrival — at any barrier —
      // aborts the run cluster-wide. Recovery is a fresh cluster resuming
      // from the last committed checkpoint (core/recovery.h).
      bool crash = false;
      for (const Message& msg : arrivals) {
        crash = crash || std::any_cast<const BarrierArrive<G>&>(msg.body).failed;
      }
      if (advance) {
        G folded = canonical;
        uint64_t changed = 0;
        for (const Message& msg : arrivals) {
          const auto& body = std::any_cast<const BarrierArrive<G>&>(msg.body);
          CHAOS_CHECK_EQ(body.phase_id, first.phase_id);
          CHAOS_CHECK_EQ(body.superstep, superstep);
          prog_->ReduceGlobal(folded, body.local);
          changed += body.vertices_changed;
        }
        done = prog_->Advance(folded, superstep, changed);
        canonical = folded;
        crash = crash || (ctx_.config->crash_after_superstep >= 0 &&
                          static_cast<uint64_t>(ctx_.config->crash_after_superstep) == superstep);
        if (!crash) {
          superstep_end_times_.push_back(ctx_.sim->now());
        }
      }
      for (const Message& msg : arrivals) {
        BarrierRelease<G> release;
        release.global = canonical;
        release.done = done;
        release.crash = crash;
        ctx_.bus->PostReply(msg, kBarrierRelease, kControlMsgBytes + sizeof(G), release);
      }
      if (crash || (advance && done)) {
        co_return;
      }
    }
  }

  // ----------------------------------------------------------- checkpoint

  SetKind CheckpointSide() const {
    return checkpoint_counter_ % 2 == 0 ? SetKind::kCheckpointA : SetKind::kCheckpointB;
  }

  // 2-phase commit: all checkpoint data is durable (written during gather)
  // before the commit barrier; the previous side is deleted only afterwards.
  // The phase-1 barrier is the commit point — a machine failure detected at
  // or after it leaves the new side committed and recoverable, while one
  // detected before it leaves the previous checkpoint in force.
  Task<> CommitCheckpoint() {
    co_await Barrier(/*advance=*/false);  // phase 1: all writes acked cluster-wide
    if (aborted_) {
      co_return;  // failure before the commit point: this checkpoint never was
    }
    // Snapshot the in-flight update set of the resume superstep into the
    // incoming snapshot side. Updates emitted by the just-finished gather
    // (targeting superstep_ + 1) cannot be regenerated from the vertex
    // checkpoint — resume re-runs that superstep's *scatter*, not the
    // previous gather — so they are part of the recoverable state. For
    // pure-scatter programs (WantScatter always true) this set is empty and
    // the snapshot costs only the scan handshakes.
    const SetKind new_usnap = checkpoint_counter_ % 2 == 0 ? SetKind::kUpdatesCkptA
                                                           : SetKind::kUpdatesCkptB;
    {
      BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
      ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
      for (const PartitionId p : own_partitions_) {
        ChunkFetcher fetcher(&ctx_, &rng_, UpdatesSet(p, superstep_ + 1),
                             CheckpointScanEpoch(), ctx_.config->fetch_window(),
                             ctx_.config->placement == Placement::kLocalMaster
                                 ? parts_->Master(p)
                                 : kNoMachine,
                             /*preserve_payload=*/true);
        fetcher.Start();
        while (true) {
          auto chunk = co_await fetcher.Next();
          if (!chunk.has_value()) {
            break;
          }
          co_await writer.Write(SetId{p, new_usnap}, std::move(*chunk), ctx_.machine);
        }
      }
      co_await writer.Drain();
    }
    co_await Barrier(/*advance=*/false);  // update snapshots durable cluster-wide
    if (aborted_) {
      co_return;  // failure before the commit point: prior checkpoint intact
    }
    checkpointed_global_ = global_;
    checkpointed_superstep_ = superstep_ + 1;
    has_checkpoint_ = true;
    const SetKind old_side =
        checkpoint_counter_ % 2 == 0 ? SetKind::kCheckpointB : SetKind::kCheckpointA;
    const SetKind old_usnap = checkpoint_counter_ % 2 == 0 ? SetKind::kUpdatesCkptB
                                                           : SetKind::kUpdatesCkptA;
    ++checkpoint_counter_;  // commit point passed: the new side is current
    {
      BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
      for (const PartitionId p : own_partitions_) {
        co_await DeleteSetEverywhere(&ctx_, SetId{p, old_side});
        co_await DeleteSetEverywhere(&ctx_, SetId{p, old_usnap});
      }
    }
    co_await Barrier(/*advance=*/false);  // phase 2: commit visible everywhere
  }

 public:
  // Latest committed checkpoint side (for recovery imports).
  SetKind committed_checkpoint_side() const {
    CHAOS_CHECK(has_checkpoint_);
    return checkpoint_counter_ % 2 == 1 ? SetKind::kCheckpointA : SetKind::kCheckpointB;
  }

 private:
  struct PartStatus {
    enum class S { kPending, kActive, kClosed };
    S s = S::kPending;
    int workers = 0;
    std::vector<MachineId> gather_stealers;
  };

  EngineContext ctx_;
  const P* prog_;
  GraphMeta meta_;
  const Partitioning* parts_;
  MachineMetrics* metrics_;
  Rng rng_;

  G global_;
  G local_;
  uint64_t changed_ = 0;
  uint64_t superstep_ = 0;
  uint64_t start_superstep_ = 0;
  uint64_t next_phase_id_ = 0;
  EnginePhase phase_ = EnginePhase::kScatter;

  std::vector<PartitionId> own_partitions_;
  std::unordered_map<PartitionId, PartStatus> own_status_;

  std::unordered_map<PartitionId, Chunk> stolen_accums_;
  CondEvent stolen_ready_;
  CondEvent stolen_taken_;

  std::vector<Out> outputs_;
  std::vector<size_t> output_marks_;  // outputs_.size() after each completed superstep
  uint64_t update_wire_;
  uint64_t checkpoint_counter_ = 0;
  G checkpointed_global_{};
  uint64_t checkpointed_superstep_ = 0;
  bool has_checkpoint_ = false;
  TimeNs preprocess_end_time_ = 0;
  std::vector<TimeNs> superstep_end_times_;  // machine 0 only (coordinator)
  bool finished_ = false;
  bool crashed_ = false;
  bool aborted_ = false;  // a barrier released with crash: unwind, no more arrivals
};

}  // namespace chaos

#endif  // CHAOS_CORE_COMPUTE_ENGINE_H_
