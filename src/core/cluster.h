// Cluster driver: assembles the simulated rack (network, storage engines,
// optional directory, computation engines), ingests the input edge list,
// runs the computation to completion and extracts results + metrics.
#ifndef CHAOS_CORE_CLUSTER_H_
#define CHAOS_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/buffer_pool.h"
#include "core/compute_engine.h"
#include "core/edge_chunk_view.h"
#include "core/mutation_feed.h"
#include "core/record_arena.h"
#include "core/update_chunk_view.h"
#include "graph/types.h"

namespace chaos {

template <GasProgram P>
struct RunResult {
  RunMetrics metrics;
  typename P::GlobalState final_global{};
  std::vector<typename P::VertexState> states;  // final vertex states, by id
  std::vector<double> values;                   // prog.Extract() per vertex
  std::vector<typename P::OutputRecord> outputs;
  bool crashed = false;
  uint64_t supersteps = 0;
  // Recovery bookkeeping (committed checkpoint, §6.6).
  bool has_checkpoint = false;
  typename P::GlobalState checkpoint_global{};
  uint64_t checkpoint_superstep = 0;
  SetKind checkpoint_side = SetKind::kCheckpointA;
  // Evolving graphs: the edge side (kEdges/kEdgesB) live at that checkpoint
  // and the number of mutation epochs durably baked into it.
  SetKind checkpoint_edges_kind = SetKind::kEdges;
  uint64_t checkpoint_epoch = 0;
};

template <GasProgram P>
class Cluster {
 public:
  using VState = typename P::VertexState;
  using A = typename P::Accumulator;
  using G = typename P::GlobalState;

  Cluster(ClusterConfig config, P prog)
      : config_(std::move(config)), prog_(std::move(prog)), sim_(config_.event_queue) {
    CHAOS_CHECK_GT(config_.machines, 0);
    net_ = std::make_unique<Network>(&sim_, config_.machines, config_.net);
    bus_ = std::make_unique<MessageBus>(&sim_, net_.get());
    for (MachineId m = 0; m < config_.machines; ++m) {
      // Heterogeneity: each machine gets its own storage/NIC hardware.
      storage_.push_back(
          std::make_unique<StorageEngine>(&sim_, bus_.get(), m, config_.storage_for(m)));
      net_->SetNicBandwidth(m, config_.nic_bandwidth_for(m));
      // Memory is a first-class simulated resource: each machine's buffer
      // pool enforces the configured budget, spilling to (and stalling on)
      // that machine's own storage device.
      const StorageConfig& scfg = config_.storage_for(m);
      pools_.push_back(std::make_unique<BufferPool>(
          &sim_, &storage_.back()->device(), scfg.bandwidth_bps, scfg.access_latency,
          config_.EffectivePoolBudget()));
      storage_.back()->set_pool(pools_.back().get());
      // Per-engine record arena (host memory; see core/record_arena.h).
      // Chunks parked in any machine's storage may outlive it — payload
      // deleters share the freelist state, so teardown order is free.
      arenas_.push_back(std::make_unique<RecordArena>());
    }
    if (config_.placement == Placement::kCentralDirectory) {
      directory_ = std::make_unique<DirectoryServer>(&sim_, bus_.get(), /*home=*/0,
                                                     config_.machines, config_.seed);
    }
    if (!config_.faults.empty()) {
      injector_ = std::make_unique<FaultInjector>(&sim_, config_.faults, config_.machines);
      for (MachineId m = 0; m < config_.machines; ++m) {
        FaultInjector::MachineHooks hooks;
        hooks.storage = &storage_[static_cast<size_t>(m)]->device();
        hooks.nic_up = &net_->Uplink(m);
        hooks.nic_down = &net_->Downlink(m);
        injector_->AttachMachine(m, hooks);
      }
    }
  }

  // Runs from an input edge list (includes pre-processing, as all paper
  // results do).
  RunResult<P> Run(const InputGraph& input) {
    CHAOS_CHECK(!config_.resume);
    GraphMeta meta;
    meta.num_vertices = input.num_vertices;
    meta.weighted = input.weighted;
    meta.edge_wire_bytes = input.edge_wire_bytes();
    meta.vertex_id_wire_bytes = input.vertex_id_wire_bytes();
    IngestInput(input);
    return Execute(meta, prog_.InitGlobal(input.num_vertices));
  }

  // Streaming variant of Run() for graphs too large to materialize as one
  // InputGraph: `next_batch` fills the (cleared) vector with the next run
  // of edges and returns false when the stream is exhausted (a final
  // partial batch with `true` then `false`-empty is also fine). Host
  // memory holds one batch plus the simulated kInput chunks — never the
  // full edge list. Chunk boundaries, placement and results are identical
  // to Run() on the concatenated stream.
  // Streaming variant of Run(): the edge list arrives in generator-supplied
  // batches instead of a materialized InputGraph, so host memory is bounded
  // by one batch plus the simulated chunks. `feed` is called once with a
  // sink; it pushes every batch through the sink and returns. Chunking and
  // placement are identical to Run() on the concatenated batches.
  using BatchSink = std::function<void(const std::vector<Edge>&)>;
  RunResult<P> RunStreaming(uint64_t num_vertices, bool weighted,
                            const std::function<void(const BatchSink&)>& feed) {
    CHAOS_CHECK(!config_.resume);
    InputGraph shape;  // wire-format facts only; edges stay in the stream
    shape.num_vertices = num_vertices;
    shape.weighted = weighted;
    GraphMeta meta;
    meta.num_vertices = num_vertices;
    meta.weighted = weighted;
    meta.edge_wire_bytes = shape.edge_wire_bytes();
    meta.vertex_id_wire_bytes = shape.vertex_id_wire_bytes();
    IngestInputStream(num_vertices, meta.edge_wire_bytes, feed);
    return Execute(meta, prog_.InitGlobal(num_vertices));
  }

  // Resumes from previously imported storage state (edges + vertex sets).
  RunResult<P> Resume(const GraphMeta& meta, const G& global) {
    CHAOS_CHECK(config_.resume);
    return Execute(meta, global);
  }

  // Evolving graphs: attaches the shared mutation feed the coordinator
  // consults at every convergence barrier (core/mutation_feed.h). Must be
  // called before Run/Resume; the feed outlives the run.
  void AttachMutations(MutationFeed* feed) { mutations_ = feed; }

  // Host-side storage access (setup, inspection, checkpoint export/import).
  StorageEngine* storage(MachineId m) { return storage_[static_cast<size_t>(m)].get(); }
  const Partitioning& partitioning() const {
    CHAOS_CHECK(parts_ != nullptr);
    return *parts_;
  }
  const ClusterConfig& config() const { return config_; }

  // Computes the partitioning for `n` vertices under this configuration
  // (needed to import sets before Resume).
  const Partitioning& PreparePartitioning(uint64_t n) {
    parts_ = std::make_unique<Partitioning>(
        Partitioning::Compute(n, config_.machines, sizeof(VState) + sizeof(A),
                              config_.memory_budget_bytes));
    return *parts_;
  }

  // Outputs emitted during supersteps that completed before `superstep`,
  // concatenated in machine order — the committed output stream a recovery
  // restart must preserve from a crashed run (core/recovery.h).
  std::vector<typename P::OutputRecord> OutputsBefore(uint64_t superstep) const {
    std::vector<typename P::OutputRecord> out;
    for (const auto& engine : engines_) {
      const auto& all = engine->outputs();
      const size_t n = engine->NumOutputsBefore(superstep);
      out.insert(out.end(), all.begin(), all.begin() + static_cast<ptrdiff_t>(n));
    }
    return out;
  }

  // Copies every chunk of `kind` sets (all partitions) from `from` into this
  // cluster's engines at the same machine positions, relabeling to `as`.
  // Machine counts must match. Used by crash-recovery flows.
  template <GasProgram Q>
  void ImportSets(Cluster<Q>& from, SetKind kind, SetKind as) {
    CHAOS_CHECK_EQ(from.config().machines, config_.machines);
    for (MachineId m = 0; m < config_.machines; ++m) {
      StorageEngine* src = from.storage(m);
      for (const SetId& id : src->HostListSets()) {
        if (id.kind != kind) {
          continue;
        }
        const SetId target{id.partition, as};
        const auto* chunks = src->HostGetSet(id);
        for (const Chunk& c : *chunks) {
          // Sequential sets are located through the directory in
          // kCentralDirectory mode: imported chunks must be registered or
          // the recovered run's scans would see an empty set.
          if (directory_ != nullptr && !IsIndexedKind(as)) {
            directory_->HostRecord(target, c.index, m);
          }
          storage_[static_cast<size_t>(m)]->HostAddChunk(target,
                                                         src->HostMaterialize(id, c));
        }
      }
    }
  }

  // Host-side: reassembles the full per-vertex state array from an indexed
  // vertex/checkpoint set of this cluster (the inverse of WriteVertexSet).
  // Returns false if any chunk is missing — only possible for a run that
  // crashed before vertex-set initialization completed.
  bool TryHostReadStates(SetKind kind, std::vector<VState>* out) const {
    CHAOS_CHECK(parts_ != nullptr);
    out->assign(parts_->num_vertices(), VState{});
    const uint64_t per_chunk = std::max<uint64_t>(1, config_.chunk_bytes / sizeof(VState));
    for (PartitionId p = 0; p < parts_->num_partitions(); ++p) {
      const VertexId base = parts_->Base(p);
      const uint64_t count = parts_->Count(p);
      const uint64_t nchunks = (count + per_chunk - 1) / per_chunk;
      for (uint64_t idx = 0; idx < nchunks; ++idx) {
        const MachineId home = VertexChunkHome(p, idx, config_.machines);
        const SetId set{p, kind};
        const auto* chunks = storage_[static_cast<size_t>(home)]->HostGetSet(set);
        if (chunks == nullptr) {
          return false;
        }
        const Chunk* found = nullptr;
        for (const Chunk& c : *chunks) {
          if (c.index == idx) {
            found = &c;
            break;
          }
        }
        if (found == nullptr) {
          return false;
        }
        const Chunk loaded = storage_[static_cast<size_t>(home)]->HostMaterialize(set, *found);
        auto span = ChunkSpan<VState>(loaded);
        const uint64_t start = base + static_cast<uint64_t>(idx) * per_chunk;
        CHAOS_CHECK_LE(start + span.size(), out->size());
        std::copy(span.begin(), span.end(), out->begin() + static_cast<int64_t>(start));
      }
    }
    return true;
  }

  void HostReadStates(SetKind kind, std::vector<VState>* out) const {
    CHAOS_CHECK_MSG(TryHostReadStates(kind, out),
                    "missing vertex chunks in " + std::string(SetKindName(kind)) + " set");
  }

  // Re-imports the durable state of a crashed cluster whose machine count
  // differs from ours (rescaled recovery, e.g. N-1 survivors): vertex states
  // are reassembled from `vertex_source` (the committed checkpoint side)
  // under the old partitioning, then re-chunked under THIS cluster's
  // partitioning and placed at their new hashed homes; edges are re-binned
  // by the new vertex ranges, and the checkpoint's update-set snapshot
  // (`updates_source`, when given) is re-binned by the new partition of
  // each record's destination vertex and relabeled `updates_as`. Call
  // PreparePartitioning first. Also valid for equal machine counts, where
  // ImportSets is the cheaper path. `edges_source` selects which edge side
  // of the crashed cluster to drain (an evolving run's committed side may
  // be kEdgesB); the imported copy is always relabeled kEdges, the side a
  // fresh cluster reads first.
  void ImportRepartitioned(Cluster<P>& from, SetKind vertex_source, const GraphMeta& meta,
                           std::optional<SetKind> updates_source = std::nullopt,
                           SetKind updates_as = SetKind::kUpdatesEven,
                           SetKind edges_source = SetKind::kEdges) {
    CHAOS_CHECK(parts_ != nullptr);
    CHAOS_CHECK_EQ(from.partitioning().num_vertices(), parts_->num_vertices());

    // ---- vertex states: old chunking -> flat array -> new chunking.
    std::vector<VState> states;
    from.HostReadStates(vertex_source, &states);
    const uint64_t per_chunk = std::max<uint64_t>(1, config_.chunk_bytes / sizeof(VState));
    for (PartitionId q = 0; q < parts_->num_partitions(); ++q) {
      const VertexId base = parts_->Base(q);
      const uint64_t count = parts_->Count(q);
      for (uint64_t start = 0, idx = 0; start < count; start += per_chunk, ++idx) {
        const uint64_t n = std::min(per_chunk, count - start);
        std::vector<VState> slice(states.begin() + static_cast<int64_t>(base + start),
                                  states.begin() + static_cast<int64_t>(base + start + n));
        const MachineId home = VertexChunkHome(q, idx, config_.machines);
        storage_[static_cast<size_t>(home)]->HostAddChunk(
            SetId{q, SetKind::kVertices},
            MakeChunk<VState>(idx, n * sizeof(VState), std::move(slice)));
      }
    }

    // ---- edges: drain every surviving edge chunk and re-bin by the new
    // partition of the source vertex, mirroring IngestInput's placement.
    const uint64_t per_edge_chunk =
        std::max<uint64_t>(1, config_.chunk_bytes / meta.edge_wire_bytes);
    std::vector<std::vector<Edge>> bins(parts_->num_partitions());
    std::vector<uint64_t> next_index(parts_->num_partitions(), 0);
    Rng rng(HashCombine(config_.seed, 0x4ec0u));
    auto flush = [&](PartitionId q) {
      const uint64_t wire = bins[q].size() * meta.edge_wire_bytes;
      const SetId set{q, SetKind::kEdges};
      const MachineId target =
          config_.placement == Placement::kLocalMaster
              ? parts_->Master(q)
              : static_cast<MachineId>(rng.Below(static_cast<uint64_t>(config_.machines)));
      if (directory_ != nullptr) {
        directory_->HostRecord(set, next_index[q], target);
      }
      // Re-binned edge chunks keep the SoA layout the engines expect to
      // stream (core/edge_chunk_view.h).
      storage_[static_cast<size_t>(target)]->HostAddChunk(
          set, MakeSoaEdgeChunk(next_index[q]++, wire, bins[q], /*arena=*/nullptr));
      bins[q].clear();
    };
    for (MachineId m = 0; m < from.config().machines; ++m) {
      StorageEngine* src = from.storage(m);
      for (const SetId& id : src->HostListSets()) {
        if (id.kind != edges_source) {
          continue;
        }
        for (const Chunk& c : *src->HostGetSet(id)) {
          const Chunk loaded = src->HostMaterialize(id, c);
          const EdgeChunkView view(loaded);
          for (uint32_t i = 0; i < view.size(); ++i) {
            const Edge e = view.At(i);
            // Validate both endpoints up front: PartitionOf(e.src) would
            // die with a cryptic range CHECK, and an out-of-range e.dst was
            // accepted silently — scatter later emits updates to vertices
            // that do not exist, corrupting the recovered run.
            CHAOS_CHECK_MSG(
                e.src < parts_->num_vertices() && e.dst < parts_->num_vertices(),
                "ImportRepartitioned: edge (" + std::to_string(e.src) + " -> " +
                    std::to_string(e.dst) + ") references a vertex beyond num_vertices=" +
                    std::to_string(parts_->num_vertices()));
            const PartitionId q = parts_->PartitionOf(e.src);
            bins[q].push_back(e);
            if (bins[q].size() >= per_edge_chunk) {
              flush(q);
            }
          }
        }
      }
    }
    for (PartitionId q = 0; q < parts_->num_partitions(); ++q) {
      if (!bins[q].empty()) {
        flush(q);
      }
    }

    // ---- update snapshot: re-bin each record by the new partition of its
    // destination vertex (updates are gathered at their target).
    if (updates_source.has_value()) {
      using Rec = UpdateRecord<typename P::UpdateValue>;
      const uint64_t update_wire = UpdateWireBytes<typename P::UpdateValue>(
          meta.vertex_id_wire_bytes);
      const uint64_t per_update_chunk =
          std::max<uint64_t>(1, config_.chunk_bytes / update_wire);
      std::vector<std::vector<Rec>> ubins(parts_->num_partitions());
      // 64-bit chunk numbering: paper-scale runs with miniaturized
      // chunk_bytes exceed 2^32 sequential chunks per set (Chunk::index is
      // uint64_t for the same reason; tests/core_test.cc pins this).
      std::vector<uint64_t> unext(parts_->num_partitions(), 0);
      auto uflush = [&](PartitionId q) {
        const uint64_t wire = ubins[q].size() * update_wire;
        const SetId set{q, updates_as};
        const MachineId target =
            config_.placement == Placement::kLocalMaster
                ? parts_->Master(q)
                : static_cast<MachineId>(rng.Below(static_cast<uint64_t>(config_.machines)));
        if (directory_ != nullptr) {
          directory_->HostRecord(set, unext[q], target);
        }
        storage_[static_cast<size_t>(target)]->HostAddChunk(
            set, MakeChunk<Rec>(unext[q]++, wire, std::move(ubins[q])));
        ubins[q] = {};
      };
      for (MachineId m = 0; m < from.config().machines; ++m) {
        StorageEngine* src = from.storage(m);
        for (const SetId& id : src->HostListSets()) {
          if (id.kind != *updates_source) {
            continue;
          }
          for (const Chunk& c : *src->HostGetSet(id)) {
            const Chunk loaded = src->HostMaterialize(id, c);
            // Snapshot chunks may be either layout (kUpdateSoA from the
            // binner, kAoS from imports); the view spans both.
            const UpdateChunkView view(loaded, sizeof(typename P::UpdateValue));
            for (uint32_t i = 0; i < view.size(); ++i) {
              const Rec r = view.template At<typename P::UpdateValue>(i);
              const PartitionId q = parts_->PartitionOf(r.dst);
              ubins[q].push_back(r);
              if (ubins[q].size() >= per_update_chunk) {
                uflush(q);
              }
            }
          }
        }
      }
      for (PartitionId q = 0; q < parts_->num_partitions(); ++q) {
        if (!ubins[q].empty()) {
          uflush(q);
        }
      }
    }
  }

 private:
  void IngestInput(const InputGraph& input) {
    parts_ = std::make_unique<Partitioning>(
        Partitioning::Compute(input.num_vertices, config_.machines,
                              sizeof(VState) + sizeof(A), config_.memory_budget_bytes));
    // The unsorted edge list is randomly distributed over all storage
    // devices before the (timed) run starts (§8).
    Rng rng(HashCombine(config_.seed, 0x1297u));
    const uint64_t per_chunk =
        std::max<uint64_t>(1, config_.chunk_bytes / input.edge_wire_bytes());
    const SetId input_set{0, SetKind::kInput};
    uint64_t index = 0;
    for (size_t start = 0; start < input.edges.size(); start += per_chunk) {
      const size_t n = std::min<uint64_t>(per_chunk, input.edges.size() - start);
      std::vector<Edge> slice(input.edges.begin() + static_cast<int64_t>(start),
                              input.edges.begin() + static_cast<int64_t>(start + n));
      const uint64_t wire = n * input.edge_wire_bytes();
      const auto target =
          static_cast<MachineId>(rng.Below(static_cast<uint64_t>(config_.machines)));
      Chunk chunk = MakeChunk<Edge>(index, wire, std::move(slice));
      if (directory_ != nullptr) {
        directory_->HostRecord(input_set, index, target);
      }
      storage_[static_cast<size_t>(target)]->HostAddChunk(input_set, std::move(chunk));
      ++index;
    }
  }

  // Batched version of IngestInput: same chunking, same seeded placement
  // sequence, but the edge list arrives in caller-supplied batches. A carry
  // buffer bridges batch boundaries so chunk contents match what one big
  // edge vector would have produced.
  void IngestInputStream(uint64_t num_vertices, uint64_t edge_wire_bytes,
                         const std::function<void(const BatchSink&)>& feed) {
    parts_ = std::make_unique<Partitioning>(
        Partitioning::Compute(num_vertices, config_.machines, sizeof(VState) + sizeof(A),
                              config_.memory_budget_bytes));
    Rng rng(HashCombine(config_.seed, 0x1297u));
    const uint64_t per_chunk = std::max<uint64_t>(1, config_.chunk_bytes / edge_wire_bytes);
    const SetId input_set{0, SetKind::kInput};
    uint64_t index = 0;
    auto emit = [&](std::vector<Edge> slice) {
      const uint64_t wire = slice.size() * edge_wire_bytes;
      const auto target =
          static_cast<MachineId>(rng.Below(static_cast<uint64_t>(config_.machines)));
      Chunk chunk = MakeChunk<Edge>(index, wire, std::move(slice));
      if (directory_ != nullptr) {
        directory_->HostRecord(input_set, index, target);
      }
      storage_[static_cast<size_t>(target)]->HostAddChunk(input_set, std::move(chunk));
      ++index;
    };
    std::vector<Edge> carry;
    feed([&](const std::vector<Edge>& batch) {
      carry.insert(carry.end(), batch.begin(), batch.end());
      size_t start = 0;
      while (carry.size() - start >= per_chunk) {
        emit(std::vector<Edge>(carry.begin() + static_cast<int64_t>(start),
                               carry.begin() + static_cast<int64_t>(start + per_chunk)));
        start += per_chunk;
      }
      carry.erase(carry.begin(), carry.begin() + static_cast<int64_t>(start));
    });
    if (!carry.empty()) {
      emit(std::move(carry));
    }
  }

  RunResult<P> Execute(const GraphMeta& meta, const G& initial_global) {
    CHAOS_CHECK(parts_ != nullptr);
    machine_metrics_.assign(static_cast<size_t>(config_.machines), MachineMetrics{});
    for (auto& engine : storage_) {
      engine->Start();
    }
    if (directory_ != nullptr) {
      directory_->Start();
    }
    engines_.clear();
    for (MachineId m = 0; m < config_.machines; ++m) {
      EngineContext ctx;
      ctx.sim = &sim_;
      ctx.net = net_.get();
      ctx.bus = bus_.get();
      for (auto& s : storage_) {
        ctx.storage.push_back(s.get());
      }
      ctx.directory = directory_.get();
      ctx.config = &config_;
      ctx.faults = injector_.get();
      ctx.pool = pools_[static_cast<size_t>(m)].get();
      ctx.mutations = mutations_;
      ctx.arena = arenas_[static_cast<size_t>(m)].get();
      ctx.machine = m;
      engines_.push_back(std::make_unique<ComputeEngine<P>>(
          std::move(ctx), &prog_, meta, parts_.get(),
          &machine_metrics_[static_cast<size_t>(m)], initial_global));
    }
    for (auto& engine : engines_) {
      engine->Start();
    }
    if (injector_ != nullptr) {
      // Sampled at each fault's onset/recovery so steal activity and idle
      // time are attributable to individual injected events.
      injector_->set_probe([this](MachineId m) {
        const MachineMetrics& mm = machine_metrics_[static_cast<size_t>(m)];
        FaultProbeSample sample;
        sample.proposals_accepted = mm.proposals_accepted;
        sample.steals_worked = mm.steals_worked;
        sample.barrier_wait = mm.bucket(Bucket::kBarrier);
        return sample;
      });
      injector_->Start();
    }
    sim_.Spawn(Supervise());
    sim_.Run();
    CHAOS_CHECK_MSG(sim_.live_tasks() == 0, "protocol deadlock: tasks still pending");

    RunResult<P> result;
    result.crashed = engines_[0]->crashed();
    result.supersteps = engines_[0]->supersteps_run() + (result.crashed ? 1 : 0);
    result.final_global = engines_[0]->final_global();
    result.metrics.total_time = finish_time_;
    result.metrics.preprocess_time = engines_[0]->preprocess_end_time();
    result.metrics.supersteps = result.supersteps;
    result.metrics.machines = machine_metrics_;
    result.metrics.crashed = result.crashed;
    for (auto& s : storage_) {
      DeviceMetrics d;
      d.bytes_read = s->bytes_read();
      d.bytes_written = s->bytes_written();
      d.busy = s->device().total_busy();
      d.chunks_served = s->chunks_served();
      result.metrics.devices.push_back(d);
    }
    for (const auto& pool : pools_) {
      result.metrics.pools.push_back(pool->metrics());
    }
    result.metrics.network_bytes = net_->total_bytes();
    result.metrics.incast_events = net_->incast_events();
    result.metrics.messages = bus_->messages_delivered();
    result.metrics.superstep_end_times = engines_[0]->superstep_end_times();
    result.metrics.mutation_epochs = engines_[0]->mutation_records();
    if (injector_ != nullptr) {
      result.metrics.faults = injector_->records();
    }
    for (auto& engine : engines_) {
      const auto& out = engine->outputs();
      result.outputs.insert(result.outputs.end(), out.begin(), out.end());
      if (engine->has_checkpoint()) {
        result.has_checkpoint = true;
        result.checkpoint_global = engine->checkpointed_global();
        result.checkpoint_superstep = engine->checkpointed_superstep();
        result.checkpoint_side = engine->committed_checkpoint_side();
        result.checkpoint_edges_kind = engine->checkpoint_edges_kind();
        result.checkpoint_epoch = engine->checkpoint_epoch();
      }
    }
    ExtractStates(meta.num_vertices, &result);
    return result;
  }

  // The supervisor waits for all computation engines to finish, then shuts
  // down the storage engines and the directory so the simulation drains.
  Task<> Supervise() {
    while (true) {
      bool all_done = true;
      for (const auto& engine : engines_) {
        if (!engine->finished() && !engine->crashed()) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        break;
      }
      // Fine-grained poll: runtime quantization must stay well below the
      // shortest miniaturized runs (tens of milliseconds).
      co_await sim_.Delay(20 * kNsPerUs);
    }
    finish_time_ = sim_.now();
    if (injector_ != nullptr) {
      // Degradations scheduled past this point were never reached; stop the
      // replay so they are not recorded as applied post-run.
      injector_->Cancel();
    }
    for (MachineId m = 0; m < config_.machines; ++m) {
      Message stop;
      stop.src = 0;
      stop.dst = m;
      stop.service = kStorageService;
      stop.type = kStorageShutdown;
      stop.wire_bytes = kControlMsgBytes;
      bus_->PostSend(std::move(stop));
    }
    if (directory_ != nullptr) {
      Message stop;
      stop.src = 0;
      stop.dst = directory_->home();
      stop.service = kDirectoryService;
      stop.type = kDirShutdown;
      stop.wire_bytes = kControlMsgBytes;
      bus_->PostSend(std::move(stop));
    }
  }

  void ExtractStates(uint64_t num_vertices, RunResult<P>* result) {
    if (!TryHostReadStates(SetKind::kVertices, &result->states)) {
      // A machine died before vertex-set initialization finished: there is
      // no meaningful state to extract (recovery restarts from the input).
      CHAOS_CHECK_MSG(result->crashed, "missing vertex chunks after a completed run");
      result->states.clear();
      return;
    }
    CHAOS_CHECK_EQ(result->states.size(), num_vertices);
    result->values.reserve(num_vertices);
    for (const VState& s : result->states) {
      result->values.push_back(prog_.Extract(s));
    }
  }

  ClusterConfig config_;
  P prog_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<MessageBus> bus_;
  std::vector<std::unique_ptr<StorageEngine>> storage_;
  std::vector<std::unique_ptr<BufferPool>> pools_;
  std::vector<std::unique_ptr<RecordArena>> arenas_;
  std::unique_ptr<DirectoryServer> directory_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Partitioning> parts_;
  MutationFeed* mutations_ = nullptr;
  std::vector<std::unique_ptr<ComputeEngine<P>>> engines_;
  std::vector<MachineMetrics> machine_metrics_;
  TimeNs finish_time_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_CORE_CLUSTER_H_
