#include "storage/directory.h"

#include "storage/storage_engine.h"

#include <utility>

namespace chaos {

DirectoryServer::DirectoryServer(Simulator* sim, MessageBus* bus, MachineId home, int machines,
                                 uint64_t seed, TimeNs lookup_cost)
    : sim_(sim),
      bus_(bus),
      home_(home),
      machines_(machines),
      rng_(HashCombine(seed, 0xd12ec7031ULL)),
      cpu_(sim, "directory-cpu") {
  lookup_cost_ = lookup_cost;
}

void DirectoryServer::Start() {
  CHAOS_CHECK(!started_);
  started_ = true;
  sim_->Spawn(Serve());
}

void DirectoryServer::HostRecord(const SetId& set, uint64_t index, MachineId engine) {
  Entry& entry = entries_[set];
  entry.locations.emplace_back(engine, index);
  if (index >= entry.next_index) {
    entry.next_index = index + 1;
  }
}

Task<> DirectoryServer::Serve() {
  SimQueue<Message>& inbox = bus_->Inbox(home_, kDirectoryService);
  while (true) {
    Message m = co_await inbox.Pop();
    if (m.type == kDirShutdown) {
      co_return;
    }
    ++lookups_;
    co_await cpu_.Acquire(lookup_cost_);
    switch (m.type) {
      case kDirAllocReq: {
        const auto& req = std::any_cast<const DirAllocReq&>(m.body);
        Entry& entry = entries_[req.set];
        DirAllocResp resp;
        resp.engine = static_cast<MachineId>(rng_.Below(static_cast<uint64_t>(machines_)));
        resp.index = entry.next_index++;
        entry.locations.emplace_back(resp.engine, resp.index);
        bus_->PostReply(m, kDirAllocResp, kControlMsgBytes, resp);
        break;
      }
      case kDirNextReq: {
        const auto& req = std::any_cast<const DirNextReq&>(m.body);
        DirNextResp resp;
        auto it = entries_.find(req.set);
        if (it != entries_.end()) {
          Entry& entry = it->second;
          if (entry.epoch != req.epoch) {
            entry.epoch = req.epoch;
            entry.cursor = 0;
          }
          if (entry.cursor < entry.locations.size()) {
            const auto& [engine, index] = entry.locations[entry.cursor++];
            resp.ok = true;
            resp.engine = engine;
            resp.index = index;
          }
        }
        bus_->PostReply(m, kDirNextResp, kControlMsgBytes, resp);
        break;
      }
      case kDirForgetReq: {
        const auto& req = std::any_cast<const DirForgetReq&>(m.body);
        entries_.erase(req.set);
        bus_->PostReply(m, kDirForgetResp, kControlMsgBytes, std::any());
        break;
      }
      default:
        CHAOS_CHECK_MSG(false, "unknown directory message type " + std::to_string(m.type));
    }
  }
}

}  // namespace chaos
