// SoA edge-chunk layout + a reader that spans both layouts.
//
// Partitioned edge sets (kEdges/kEdgesB) are the hottest read path in the
// system: every scatter superstep streams every edge chunk. Stored AoS, the
// per-edge loop strides 24 bytes and the compiler cannot vectorize across
// the struct. ChunkLayout::kEdgeSoA instead packs four arrays into one
// payload of identical total size (so model_bytes — the simulated footprint
// — is unchanged and results stay bitwise identical):
//
//   offset 0            : uint64_t src[count]
//   offset 8 * count    : uint64_t dst[count]
//   offset 16 * count   : float    weight[count]
//   offset 20 * count   : uint32_t flags[count]      (24 * count total)
//
// Each array starts naturally aligned for its element type for any count
// (8n, 16n, 20n are multiples of 8/4), given a max_align_t-or-better base —
// which arena payloads guarantee at 64 bytes (core/record_arena.h).
//
// Producers either write records straight into the regions as they bin
// (core/record_binner.h fills kEdgeSoA blocks in place — no transpose
// pass) or convert a host-side vector (MakeSoaEdgeChunk). Readers go
// through EdgeChunkView, which also accepts AoS chunks so mixed layouts
// coexist (e.g. imported checkpoints next to freshly binned sets).
#ifndef CHAOS_CORE_EDGE_CHUNK_VIEW_H_
#define CHAOS_CORE_EDGE_CHUNK_VIEW_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/record_arena.h"
#include "graph/types.h"
#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

static_assert(sizeof(Edge) == 24, "SoA layout assumes the 24-byte Edge");
static_assert(sizeof(VertexId) == 8 && alignof(Edge) == 8);

// Transposes `n` AoS edges into the SoA payload layout above. `out` must
// hold 24 * n bytes and be at least 8-byte aligned.
inline void TransposeEdgesToSoa(const Edge* aos, uint32_t n, uint8_t* out) {
  CHAOS_DCHECK(reinterpret_cast<uintptr_t>(out) % alignof(VertexId) == 0);
  auto* src = reinterpret_cast<VertexId*>(out);
  auto* dst = reinterpret_cast<VertexId*>(out + 8ull * n);
  auto* weight = reinterpret_cast<float*>(out + 16ull * n);
  auto* flags = reinterpret_cast<uint32_t*>(out + 20ull * n);
  for (uint32_t i = 0; i < n; ++i) {
    src[i] = aos[i].src;
    dst[i] = aos[i].dst;
    weight[i] = aos[i].weight;
    flags[i] = aos[i].flags;
  }
}

// Builds a kEdgeSoA chunk from a host-side edge vector. `arena` may be null
// (host-side callers without an engine); the payload is then a directly
// allocated aligned block.
inline Chunk MakeSoaEdgeChunk(uint64_t index, uint64_t model_bytes,
                              const std::vector<Edge>& edges, RecordArena* arena) {
  Chunk c;
  c.index = index;
  c.model_bytes = model_bytes;
  c.count = static_cast<uint32_t>(edges.size());
  c.payload_bytes = edges.size() * sizeof(Edge);
  c.layout = ChunkLayout::kEdgeSoA;
  if (!edges.empty()) {
    std::shared_ptr<uint8_t> payload;
    if (arena != nullptr) {
      payload = arena->LeaseShared(c.payload_bytes);
    } else {
      payload = std::shared_ptr<uint8_t>(
          static_cast<uint8_t*>(::operator new(c.payload_bytes,
                                               std::align_val_t{RecordArena::kAlign})),
          [](uint8_t* p) { ::operator delete(p, std::align_val_t{RecordArena::kAlign}); });
    }
    TransposeEdgesToSoa(edges.data(), c.count, payload.get());
    c.data = std::shared_ptr<const void>(payload, payload.get());
  }
  return c;
}

// Zero-copy reader over an edge chunk of either layout. Hot loops branch
// once on soa() and then run a layout-specific inner loop over raw arrays.
class EdgeChunkView {
 public:
  explicit EdgeChunkView(const Chunk& c) : count_(c.count) {
    if (count_ == 0) {
      return;
    }
    CHAOS_CHECK(c.data != nullptr);
    const auto* base = static_cast<const uint8_t*>(c.data.get());
    if (c.layout == ChunkLayout::kEdgeSoA) {
      CHAOS_DCHECK(c.payload_bytes == 24ull * count_);
      src_ = reinterpret_cast<const VertexId*>(base);
      dst_ = reinterpret_cast<const VertexId*>(base + 8ull * count_);
      weight_ = reinterpret_cast<const float*>(base + 16ull * count_);
      flags_ = reinterpret_cast<const uint32_t*>(base + 20ull * count_);
    } else {
      aos_ = reinterpret_cast<const Edge*>(base);
      CHAOS_DCHECK(reinterpret_cast<uintptr_t>(aos_) % alignof(Edge) == 0);
    }
  }

  uint32_t size() const { return count_; }
  bool soa() const { return src_ != nullptr; }

  // SoA arrays (valid when soa()).
  const VertexId* src() const { return src_; }
  const VertexId* dst() const { return dst_; }
  const float* weight() const { return weight_; }
  const uint32_t* flags() const { return flags_; }

  // AoS array (valid when !soa()).
  const Edge* aos() const { return aos_; }

  // Layout-independent materialization of one edge (cold paths / tests).
  Edge At(uint32_t i) const {
    CHAOS_DCHECK(i < count_);
    if (soa()) {
      Edge e;
      e.src = src_[i];
      e.dst = dst_[i];
      e.weight = weight_[i];
      e.flags = flags_[i];
      return e;
    }
    return aos_[i];
  }

 private:
  uint32_t count_ = 0;
  const VertexId* src_ = nullptr;
  const VertexId* dst_ = nullptr;
  const float* weight_ = nullptr;
  const uint32_t* flags_ = nullptr;
  const Edge* aos_ = nullptr;
};

}  // namespace chaos

#endif  // CHAOS_CORE_EDGE_CHUNK_VIEW_H_
