// Figure 11: SSD vs HDD, BFS and PR, weak scaling normalized to the
// 1-machine SSD runtime. Paper: Chaos scales the same on both; absolute
// runtime is inversely proportional to device bandwidth (HDD ~2x slower).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig11, "Figure 11: SSD vs HDD weak scaling") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "pagerank"};
  const std::vector<bool> devices = {true, false};  // SSD, HDD

  Sweep<double> sweep;
  for (const std::string& name : algos) {
    for (const bool ssd : devices) {
      int step = 0;
      for (const int m : MachineSweep()) {
        const uint32_t scale = base + static_cast<uint32_t>(step);
        sweep.Add([name, scale, ssd, m, seed] {
          InputGraph prepared = PrepareInput(name, BenchRmat(scale, false, seed));
          ClusterConfig cfg = BenchClusterConfig(
              prepared, m, seed, ssd ? StorageConfig::Ssd() : StorageConfig::Hdd());
          return RunJob(MakeJob(name, prepared, cfg)).metrics.total_seconds();
        });
        ++step;
      }
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 11: SSD vs HDD, weak scaling, normalized to m=1 SSD ==\n");
  PrintHeader({"algo/device", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    double base_ssd = 0.0;
    for (const bool ssd : devices) {
      PrintCell(name + (ssd ? " SSD" : " HDD"));
      for (const int m : MachineSweep()) {
        const double s = seconds[idx++];
        if (m == 1 && ssd) {
          base_ssd = s;
        }
        PrintCell(base_ssd > 0 ? s / base_ssd : 0.0);
        RecordMetric("fig11." + name + (ssd ? ".ssd" : ".hdd") + ".m" + std::to_string(m) +
                         ".sim_s",
                     s);
      }
      EndRow();
    }
  }
  std::printf("\npaper: HDD curve ~2x above SSD (bandwidth ratio), same scaling shape\n");
  return 0;
}
