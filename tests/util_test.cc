// Unit tests for src/util: rng, stats, options, logging, formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "util/common.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace chaos {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) {
    first.push_back(a.Next());
  }
  a.Seed(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.Next(), first[static_cast<size_t>(i)]);
  }
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Below(kBuckets)]++;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.Shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(RngTest, PermutationCoversAllValues) {
  Rng rng(23);
  auto p = rng.Permutation(100);
  std::set<uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, Mix64IsStable) {
  // Pinned values guard against accidental algorithm changes that would
  // silently change chunk placement of existing runs.
  EXPECT_EQ(Mix64(0), 16294208416658607535ULL);
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(RngTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---------------------------------------------------------------- stats

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  h.Add(0.5);
  h.Add(1.0);   // boundary goes to its bucket (<=)
  h.Add(5.0);
  h.Add(50.0);
  h.Add(1000.0);  // overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h({1, 2, 4, 8, 16, 32});
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.NextDouble() * 32.0);
  }
  double prev = 0.0;
  for (double q = 0.1; q <= 0.95; q += 0.1) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ExactQuantileTest, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.25), 2.0);
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(4ull << 20), "4.00 MiB");
  EXPECT_EQ(FormatBytes(16ull << 40), "16.00 TiB");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(0.5e-9 * 500), "250 ns");
  EXPECT_EQ(FormatSeconds(1.5), "1.50 s");
  EXPECT_EQ(FormatSeconds(600.0), "10.0 min");
  EXPECT_EQ(FormatSeconds(9.0 * 3600.0), "9.00 h");
}

TEST(FormatTest, Bandwidth) {
  EXPECT_EQ(FormatBandwidth(400e6), "400.00 MB/s");
  EXPECT_EQ(FormatBandwidth(7e9), "7.00 GB/s");
}

// ---------------------------------------------------------------- options

TEST(OptionsTest, DefaultsAndTypes) {
  Options opt;
  opt.AddInt("machines", 4, "machine count");
  opt.AddDouble("alpha", 1.0, "steal bias");
  opt.AddBool("steal", true, "enable stealing");
  opt.AddString("algo", "pagerank", "algorithm");
  EXPECT_EQ(opt.GetInt("machines"), 4);
  EXPECT_DOUBLE_EQ(opt.GetDouble("alpha"), 1.0);
  EXPECT_TRUE(opt.GetBool("steal"));
  EXPECT_EQ(opt.GetString("algo"), "pagerank");
}

TEST(OptionsTest, ParseEqualsForm) {
  Options opt;
  opt.AddInt("machines", 4, "");
  opt.AddDouble("alpha", 1.0, "");
  char arg0[] = "--machines=32";
  char arg1[] = "--alpha=0.8";
  char* argv[] = {arg0, arg1};
  EXPECT_FALSE(opt.Parse(2, argv).has_value());
  EXPECT_EQ(opt.GetInt("machines"), 32);
  EXPECT_DOUBLE_EQ(opt.GetDouble("alpha"), 0.8);
}

TEST(OptionsTest, ParseSpaceForm) {
  Options opt;
  opt.AddString("algo", "", "");
  char arg0[] = "--algo";
  char arg1[] = "bfs";
  char* argv[] = {arg0, arg1};
  EXPECT_FALSE(opt.Parse(2, argv).has_value());
  EXPECT_EQ(opt.GetString("algo"), "bfs");
}

TEST(OptionsTest, BoolForms) {
  Options opt;
  opt.AddBool("steal", false, "");
  opt.AddBool("checkpoint", true, "");
  char arg0[] = "--steal";
  char arg1[] = "--no-checkpoint";
  char* argv[] = {arg0, arg1};
  EXPECT_FALSE(opt.Parse(2, argv).has_value());
  EXPECT_TRUE(opt.GetBool("steal"));
  EXPECT_FALSE(opt.GetBool("checkpoint"));
}

TEST(OptionsTest, UnknownFlagIsError) {
  Options opt;
  char arg0[] = "--bogus=1";
  char* argv[] = {arg0};
  const auto err = opt.Parse(1, argv);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("bogus"), std::string::npos);
}

TEST(OptionsTest, BadIntIsError) {
  Options opt;
  opt.AddInt("n", 0, "");
  char arg0[] = "--n=abc";
  char* argv[] = {arg0};
  EXPECT_TRUE(opt.Parse(1, argv).has_value());
}

TEST(OptionsTest, HelpRequested) {
  Options opt;
  char arg0[] = "--help";
  char* argv[] = {arg0};
  EXPECT_FALSE(opt.Parse(1, argv).has_value());
  EXPECT_TRUE(opt.help_requested());
}

TEST(OptionsTest, MissingValueIsError) {
  Options opt;
  opt.AddInt("n", 0, "");
  char arg0[] = "--n";
  char* argv[] = {arg0};
  EXPECT_TRUE(opt.Parse(1, argv).has_value());
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  const uint64_t before = LogCountForLevel(LogLevel::kInfo);
  CHAOS_LOG_INFO("suppressed message %d", 1);
  EXPECT_EQ(LogCountForLevel(LogLevel::kInfo), before + 1);  // counted even when suppressed
  SetLogLevel(old);
}

TEST(LoggingTest, ScopedCountsObserveOnlyThisThread) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  ScopedLogCounts scope;
  CHAOS_LOG_WARN("mine %d", 1);
  // A concurrent thread logging must not inflate this scope's counts — the
  // cross-pollution the per-thread counters exist to prevent.
  std::thread other([] {
    for (int i = 0; i < 5; ++i) {
      CHAOS_LOG_WARN("other %d", i);
      CHAOS_LOG_ERROR("other err %d", i);
    }
  });
  other.join();
  CHAOS_LOG_WARN("mine %d", 2);
  const LogCounts delta = scope.Delta();
  EXPECT_EQ(delta.warnings(), 2u);
  EXPECT_EQ(delta.errors(), 0u);
  // The process-global counters do see everything.
  EXPECT_GE(GlobalLogCounts().warnings(), 7u);
  SetLogLevel(old);
}

TEST(LoggingTest, ScopedCountsNestAndSubtract) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  ScopedLogCounts outer;
  CHAOS_LOG_ERROR("one");
  {
    ScopedLogCounts inner;
    CHAOS_LOG_ERROR("two");
    EXPECT_EQ(inner.Delta().errors(), 1u);
  }
  EXPECT_EQ(outer.Delta().errors(), 2u);
  SetLogLevel(old);
}

// ---------------------------------------------------------------- parallel

TEST(SweepExecutorTest, RunsEveryIndexExactlyOnce) {
  SweepExecutor executor(4);
  EXPECT_EQ(executor.jobs(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  executor.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepExecutorTest, ResultsIndexedInDeclarationOrder) {
  // Results must land at their point's index regardless of schedule, and be
  // identical across job counts (the determinism contract).
  auto run = [](int jobs) {
    SweepExecutor executor(jobs);
    std::vector<std::function<uint64_t()>> points;
    for (uint64_t i = 0; i < 64; ++i) {
      points.push_back([i] { return Mix64(42, i); });
    }
    return executor.RunPoints(points);
  };
  const auto sequential = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(sequential.size(), 64u);
  EXPECT_EQ(sequential, parallel);
  EXPECT_EQ(sequential[7], DeriveSeed(42, 7));
}

TEST(SweepExecutorTest, ReusableAcrossSweeps) {
  SweepExecutor executor(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<size_t> sum{0};
    executor.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
  executor.ParallelFor(0, [](size_t) { FAIL() << "no points, no calls"; });
}

TEST(SweepExecutorTest, NestedSweepFromAPointRunsInline) {
  // A point that sweeps through the same executor must not deadlock on the
  // sweep mutex its own batch holds — nested calls run inline.
  SweepExecutor executor(4);
  std::atomic<int> total{0};
  executor.ParallelFor(8, [&](size_t) {
    executor.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(SweepExecutorTest, SingleJobRunsInline) {
  SweepExecutor executor(1);
  const auto caller = std::this_thread::get_id();
  executor.ParallelFor(16, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(SweepExecutorTest, DeriveSeedIsStableAndSpreads) {
  // The documented derivation rule: DeriveSeed == two-argument Mix64.
  EXPECT_EQ(DeriveSeed(1, 2), Mix64(1, 2));
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(DeriveSeed(12345, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions on a small grid
}

TEST(CheckTest, PassingChecksDoNotAbort) {
  CHAOS_CHECK(true);
  CHAOS_CHECK_EQ(1, 1);
  CHAOS_CHECK_LT(1, 2);
  CHAOS_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ CHAOS_CHECK_MSG(false, "boom"); }, "boom");
}

TEST(CheckDeathTest, FailingCheckOpPrintsValues) {
  EXPECT_DEATH({ CHAOS_CHECK_EQ(1 + 1, 3); }, "lhs=2");
}

}  // namespace
}  // namespace chaos
