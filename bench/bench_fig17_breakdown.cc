// Figure 17: breakdown of runtime at the largest machine count into
// graph processing (own / stolen partitions), stolen vertex-set copying,
// accumulator merging, merge waits, and barrier waits. Paper: 74-87%
// useful processing, idle below 4%, copy+merge 0-22%.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig17, "Figure 17: runtime breakdown at the largest machine count") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // One point per algorithm; the whole AlgoResult comes back so the print
  // phase can slice the bucket breakdown.
  Sweep<AlgoResult> sweep;
  for (const auto& info : Algorithms()) {
    const std::string name = info.name;
    const bool weighted = info.needs_weights;
    sweep.Add([name, weighted, scale, machines, seed] {
      InputGraph prepared = PrepareInput(name, BenchRmat(scale, weighted, seed));
      return RunJob(MakeJob(name, prepared, BenchClusterConfig(prepared, machines, seed)));
    });
  }
  const std::vector<AlgoResult> results = sweep.Run();

  std::printf("== Figure 17: runtime breakdown (RMAT-%u, m=%d), fraction of tracked time ==\n",
              scale, machines);
  PrintHeader({"algorithm", "gp,own", "gp,stolen", "copy", "merge", "merge-wait", "barrier",
               "preproc"});
  size_t idx = 0;
  for (const auto& info : Algorithms()) {
    const AlgoResult& result = results[idx++];
    PrintCell(info.name);
    for (const Bucket b : {Bucket::kGpMaster, Bucket::kGpSteal, Bucket::kCopy, Bucket::kMerge,
                           Bucket::kMergeWait, Bucket::kBarrier, Bucket::kPreprocess}) {
      const double frac = result.metrics.BucketFraction(b);
      PrintCell(100.0 * frac, "%.1f%%");
      RecordMetric("fig17." + info.name + "." + BucketName(b), frac);
    }
    EndRow();
  }
  std::printf("\npaper: processing 74-87%% (avg 83%%), idle <4%%, copy+merge 0-22%%\n");
  return 0;
}
