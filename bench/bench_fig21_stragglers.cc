// Figure 21 (extension): straggler severity x steal policy x cluster size.
//
// A healthy cluster plus a straggler *cluster* — machines [victim,
// victim+n) degraded to 1/severity of nominal speed from t=0 (n defaults
// to machines/8: one bad machine at small N, a bad rack-slice at 32+).
// Sweeps severity x {stealing off, steal_one, steal_half, adaptive}
// (core/steal_policy.h) x cluster size (--machines or --machines-list) and
// reports each cell's simulated runtime, p99 superstep duration, and how
// often the stragglers' partitions were actually stolen. Weak scaling: the
// graph grows with the cluster (--scale names the 4-machine cell) so
// per-machine work stays comparable across N.
//
// The paper's thesis (§5): uniform-random chunk placement plus randomized
// stealing tolerates imbalance without partitioning smarts — a claim the
// homogeneous benches never exercise. Configuration note: the miniaturized
// default config is storage-bandwidth-bound, which would mask a CPU
// straggler entirely; this bench therefore pins the compute-bound regime
// (1 core per machine, NVMe-class storage, heavy per-item CPU costs) where
// per-machine compute speed is the binding resource, as it is on the
// paper's testbed once storage is fast enough (§9.2, Fig. 11).
//
// Two executable gates make `ok` in the chaos-bench JSON a record of the
// load-balancing claims (exit 1 on failure); both apply only to cells
// where the straggler actually binds (>= 15% over the severity-1 "off"
// baseline when one was swept):
//  * under a >= 4x straggler, steal_one and adaptive must strictly beat
//    stealing-off (and the stragglers' partitions must actually get
//    stolen);
//  * at >= 32 machines — where the straggler cluster's open partitions
//    outnumber idle helpers — adaptive must strictly beat steal_one on
//    p99 superstep (tail) latency at the highest severity: a steal-one
//    helper is captive to its single stolen partition (a gather steal
//    parks until the slow master pulls the replica) while adaptive,
//    escalated by the victims' more-work hints, claims open partitions in
//    batches and streams them concurrently through one captivity period.
#include <algorithm>
#include <cstdlib>
#include <map>

#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

namespace {

std::vector<double> ParseDoubleList(const std::string& text) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (!item.empty()) {
      out.push_back(std::atof(item.c_str()));
    }
  }
  return out;
}

struct PolicyCell {
  std::string name;
  double alpha = 1.0;
  StealPolicy steal;
};

// The policy rows:
//   off        — stealing disabled (alpha = 0).
//   steal_one  — the paper's baseline protocol exactly as §5.4 describes
//                it: one partition per grant, give up after the first dry
//                sweep, no victim hints (the pre-policy engine behavior).
//   steal_half — the baseline with only the amount changed, isolating what
//                batch grants alone buy.
//   adaptive   — the full adaptive runtime this subsystem adds: hint-driven
//                amount escalation plus backoff, victim check, and 2-level
//                routing at >= 32 machines. The gated large-N claim
//                compares this runtime against the baseline protocol.
std::vector<PolicyCell> PolicyRows(int machines) {
  std::vector<PolicyCell> rows;
  rows.push_back({"off", 0.0, StealPolicy{}});
  PolicyCell one{"steal_one", 1.0, StealPolicy{}};
  one.steal.mode = StealMode::kStealOne;
  rows.push_back(one);
  PolicyCell half{"steal_half", 1.0, StealPolicy{}};
  half.steal.mode = StealMode::kStealHalf;
  rows.push_back(half);
  PolicyCell adaptive{"adaptive", 1.0, StealPolicy{}};
  adaptive.steal.mode = StealMode::kAdaptive;
  adaptive.steal.backoff = true;
  adaptive.steal.victim_check = true;
  adaptive.steal.steal_domain = machines >= 32 ? 8 : 0;
  rows.push_back(adaptive);
  return rows;
}

}  // namespace

CHAOS_BENCH_MAIN(fig21_stragglers,
                 "Figure 21: straggler severity x steal policy x cluster size") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale at 4 machines (weak scaling: +1 per doubling)");
  opt.AddInt("machines", 4, "simulated machines (used when --machines-list is empty)");
  // The default matrix carries both regimes the gates speak about: the
  // 4-machine cell where any stealing wins, and the 32-machine cell where
  // the steal amount and request-storm discipline decide the tail.
  opt.AddString("machines-list", "4,32", "comma list of cluster sizes (overrides --machines)");
  opt.AddString("severities", "1,2,4,8", "comma list of straggler severities");
  opt.AddInt("victim", 0, "first machine of the straggler cluster");
  opt.AddInt("stragglers", 0,
             "straggler cluster size, machines victim..victim+n-1 (0 = machines/8, min 1)");
  opt.AddInt("parts", 4, "target streaming partitions per machine");
  opt.AddString("algo", "pagerank", "algorithm to run");
  opt.AddString("target", "cpu", "degraded resource: cpu|storage|nic|machine");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto victim = static_cast<MachineId>(opt.GetInt("victim"));
  const int stragglers = opt.GetInt("stragglers");
  const auto parts = static_cast<uint64_t>(opt.GetInt("parts"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::string algo = opt.GetString("algo");
  FaultTarget target = FaultTarget::kCpu;
  if (!ParseFaultTarget(opt.GetString("target"), &target)) {
    std::fprintf(stderr, "unknown --target '%s'\n", opt.GetString("target").c_str());
    return 1;
  }
  std::vector<int> machine_counts;
  if (!opt.GetString("machines-list").empty()) {
    for (const double m : ParseDoubleList(opt.GetString("machines-list"))) {
      machine_counts.push_back(static_cast<int>(m));
    }
  } else {
    machine_counts.push_back(static_cast<int>(opt.GetInt("machines")));
  }
  const std::vector<double> severities = ParseDoubleList(opt.GetString("severities"));
  if (machine_counts.empty() || severities.empty()) {
    std::fprintf(stderr, "--machines-list/--severities must be non-empty\n");
    return 1;
  }
  // The straggler cluster grows with the machine count by default: one bad
  // machine at small N, a bad rack-slice (N/8) at 32+. That keeps the gated
  // comparison in the regime where the cluster's open partitions outnumber
  // idle helpers — where the steal amount starts to matter.
  auto cluster_stragglers = [&](int machines) {
    return stragglers > 0 ? stragglers : std::max(1, machines / 8);
  };
  for (const int m : machine_counts) {
    const int n = cluster_stragglers(m);
    if (victim < 0 || victim + n > m || n >= m) {
      std::fprintf(stderr, "straggler cluster [%d, %d) must leave a healthy machine in [0, %d)\n",
                   victim, victim + n, m);
      return 1;
    }
  }

  // Weak scaling: per-machine work is what decides whether a CPU straggler
  // binds, so the graph grows with the cluster — the flag names the scale
  // of the 4-machine cell and every doubling of machines adds one.
  auto effective_scale = [&](int machines) {
    uint32_t s = scale;
    for (int m = 4; m < machines; m *= 2) {
      ++s;
    }
    return s;
  };
  std::map<int, std::shared_ptr<InputGraph>> graphs;
  for (const int m : machine_counts) {
    if (graphs.count(m) == 0) {
      graphs[m] = std::make_shared<InputGraph>(
          PrepareInput(algo, BenchRmat(effective_scale(m), false, seed)));
    }
  }

  auto configure = [=](int machines, double severity, const PolicyCell& policy) {
    const std::shared_ptr<InputGraph>& g = graphs.at(machines);
    ClusterConfig cfg = BenchClusterConfig(*g, machines, seed);
    // Compute-bound regime: one core per machine, NVMe-class devices, and
    // per-item CPU costs heavy enough that each machine's scan compute —
    // not its storage stream — paces the superstep. A CPU straggler is
    // invisible in the bandwidth-bound default regime.
    cfg.cost.cores = 1;
    cfg.storage.bandwidth_bps = 10e9;
    cfg.cost.ns_per_edge_scatter = 30.0;
    cfg.cost.ns_per_update_gather = 30.0;
    cfg.cost.ns_per_vertex_apply = 20.0;
    cfg.cost.ns_per_vertex_merge = 10.0;
    // Control/ack messages are fixed-size; their per-message CPU cost does
    // not shrink with the chunk miniaturization, so restore the full-size
    // cost (this is what makes the large-N request storm a real load on a
    // degraded machine, as on the paper's testbed).
    cfg.cost.ns_per_message = 4000.0;
    // --parts streaming partitions per machine: helpers take over whole
    // untouched partitions, so finer partitions mean finer steal granularity
    // (and more open partitions for steal-half's batches to matter).
    cfg.memory_budget_bytes = std::max<uint64_t>(
        g->num_vertices * 8 / (parts * static_cast<uint64_t>(machines)), 1024);
    cfg.alpha = policy.alpha;
    cfg.steal = policy.steal;
    // Backoff windows live in the same miniaturized time frame as the
    // other fixed latencies (see BenchClusterConfig).
    cfg.steal.backoff_initial = BenchShrinkTime(cfg, cfg.steal.backoff_initial);
    cfg.steal.backoff_max = BenchShrinkTime(cfg, cfg.steal.backoff_max);
    if (severity > 1.0) {
      // A straggler *cluster*: machines victim..victim+n-1 all run
      // `severity` times slower from t=0.
      for (int s = 0; s < cluster_stragglers(machines); ++s) {
        FaultEvent e;
        e.machine = victim + s;
        e.target = target;
        e.factor = 1.0 / severity;
        cfg.faults.Add(e);
      }
    }
    return cfg;
  };

  // Points: cluster size x severity x policy, declared in print order.
  Sweep<AlgoResult> sweep;
  for (const int machines : machine_counts) {
    for (const double severity : severities) {
      for (const PolicyCell& policy : PolicyRows(machines)) {
        sweep.Add([=] {
          return RunJob(MakeJob(algo, *graphs.at(machines), configure(machines, severity, policy)));
        });
      }
    }
  }
  const std::vector<AlgoResult> results = sweep.Run();

  bool small_gate_ok = true;  // steal_one/adaptive beat off under >= 4x
  bool tail_gate_ok = true;   // N >= 32: adaptive p99 < steal_one p99 at max severity
  const double max_severity = *std::max_element(severities.begin(), severities.end());
  size_t idx = 0;
  for (const int machines : machine_counts) {
    const std::vector<PolicyCell> policies = PolicyRows(machines);
    std::printf("== Figure 21: %s, %d machines, machines [%d, %d) straggling (%s), RMAT-%u ==\n",
                algo.c_str(), machines, victim, victim + cluster_stragglers(machines),
                FaultTargetName(target), effective_scale(machines));
    PrintHeader({"severity", "off s", "one s", "half s", "adaptive s", "one p99ms",
                 "adapt p99ms", "adapt steals"});
    // The severity-1 "off" runtime of this cluster size: the baseline that
    // tells whether a given severity actually binds (gates only apply where
    // the straggler is the bottleneck, not where N-dependent fixed overheads
    // swamp the per-machine compute).
    double off_sev1 = -1.0;
    for (size_t si = 0; si < severities.size(); ++si) {
      if (severities[si] == 1.0) {
        off_sev1 = results[idx + si * policies.size()].metrics.total_seconds();
      }
    }
    for (const double severity : severities) {
      double off_s = 0.0;
      std::map<std::string, const AlgoResult*> row;
      for (const PolicyCell& policy : policies) {
        const AlgoResult& r = results[idx++];
        row[policy.name] = &r;
        const std::string prefix = "fig21.m" + std::to_string(machines) + ".sev" +
                                   Fixed(severity, 0) + "." + policy.name;
        RecordMetric(prefix + ".sim_s", r.metrics.total_seconds());
        RecordMetric(prefix + ".p99_superstep_s", ToSeconds(r.metrics.SuperstepTail(0.99)));
        if (std::getenv("CHAOS_FIG21_DUMP") != nullptr) {
          const auto durs = r.metrics.SuperstepDurations();
          for (size_t i = 0; i < durs.size(); ++i) {
            RecordMetric(prefix + ".ss" + std::to_string(i) + "_s", ToSeconds(durs[i]));
          }
          std::printf("---- %s ----\n%s", prefix.c_str(), r.metrics.Summary().c_str());
          for (const int mm : {static_cast<int>(victim), machines - 1}) {
            const auto& mach = r.metrics.machines[static_cast<size_t>(mm)];
            std::printf("  m%d:", mm);
            for (int b = 0; b < static_cast<int>(Bucket::kNumBuckets); ++b) {
              std::printf(" %s=%.2fms", BucketName(static_cast<Bucket>(b)),
                          1e3 * ToSeconds(mach.bucket(static_cast<Bucket>(b))));
            }
            std::printf("\n");
          }
        }
        if (policy.alpha > 0.0) {
          uint64_t victim_steals = 0;
          for (const auto& f : r.metrics.faults) {
            victim_steals += r.metrics.StealsDuringFault(f);
          }
          RecordMetric(prefix + ".victim_steals", static_cast<double>(victim_steals));
          RecordMetric(prefix + ".victim_miss_rate", r.metrics.VictimMissRate());
        }
      }
      auto seconds = [&](const char* name) { return row[name]->metrics.total_seconds(); };
      auto p99_ms = [&](const char* name) {
        return 1e3 * ToSeconds(row[name]->metrics.SuperstepTail(0.99));
      };
      auto victim_steals = [&](const char* name) {
        uint64_t total = 0;
        for (const auto& f : row[name]->metrics.faults) {
          total += row[name]->metrics.StealsDuringFault(f);
        }
        return total;
      };
      off_s = seconds("off");
      PrintCell(Fixed(severity, 0) + "x");
      PrintCell(off_s, "%.4f");
      PrintCell(seconds("steal_one"), "%.4f");
      PrintCell(seconds("steal_half"), "%.4f");
      PrintCell(seconds("adaptive"), "%.4f");
      PrintCell(p99_ms("steal_one"), "%.3f");
      PrintCell(p99_ms("adaptive"), "%.3f");
      PrintCell(Fixed(static_cast<double>(victim_steals("adaptive")), 0));
      EndRow();
      // Gates apply only where the straggler cluster is the bottleneck:
      // when a severity-1 baseline was swept, the degraded cell must be at
      // least 15% slower than it. Cells dominated by N-dependent fixed
      // overheads say nothing about steal policy.
      const bool straggler_binds = off_sev1 < 0.0 || off_s > 1.15 * off_sev1;
      // The load-balancing claim: under a serious straggler, stealing must
      // strictly win (and the victim's partitions must actually get stolen).
      if (severity >= 4.0 && straggler_binds) {
        for (const char* name : {"steal_one", "adaptive"}) {
          if (seconds(name) >= off_s || victim_steals(name) == 0) {
            small_gate_ok = false;
          }
        }
      }
      // The large-N tail claim (gated acceptance scenario): adaptive's
      // hint-driven steal-half escalation must strictly beat one-partition
      // grants on p99 superstep latency under the worst straggler.
      if (machines >= 32 && severity >= 4.0 && severity == max_severity && straggler_binds &&
          p99_ms("adaptive") >= p99_ms("steal_one")) {
        tail_gate_ok = false;
      }
    }
    std::printf("\n");
  }
  if (!small_gate_ok) {
    std::printf("FAIL: stealing did not strictly beat no-stealing under a >=4x straggler\n");
    return 1;
  }
  if (!tail_gate_ok) {
    std::printf("FAIL: adaptive did not beat steal_one on p99 superstep latency at >=32 "
                "machines\n");
    return 1;
  }
  std::printf("stealing absorbs the straggler; without it the victim gates every barrier\n");
  return 0;
}
