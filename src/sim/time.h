// Simulated time. All simulation timestamps are integer nanoseconds so that
// event ordering is exact and runs are bit-reproducible.
#ifndef CHAOS_SIM_TIME_H_
#define CHAOS_SIM_TIME_H_

#include <cmath>
#include <cstdint>

namespace chaos {

using TimeNs = int64_t;

constexpr TimeNs kNsPerUs = 1000;
constexpr TimeNs kNsPerMs = 1000 * kNsPerUs;
constexpr TimeNs kNsPerSec = 1000 * kNsPerMs;

constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / 1e9; }

constexpr TimeNs SecondsToNs(double s) { return static_cast<TimeNs>(s * 1e9); }

// Time to move `bytes` at `bytes_per_sec`, rounded up to whole nanoseconds so
// that nonzero transfers always take nonzero time.
inline TimeNs TransferTimeNs(uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) {
    return 0;
  }
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
  return static_cast<TimeNs>(std::ceil(ns));
}

}  // namespace chaos

#endif  // CHAOS_SIM_TIME_H_
