// RecordBinner: bins emitted records by destination partition into
// chunk-sized buffers. Untemplated — buffer management, parking and chunk
// flushing compile once in the untyped engine core — while Add<RecT>() is a
// tiny inline template so the per-record hot path (called from the typed
// kernels' per-edge loops) stays free of virtual dispatch.
//
// Add() is synchronous; full buffers are parked and flushed by the owning
// coroutine between chunks (FlushPending / FlushAll).
#ifndef CHAOS_CORE_RECORD_BINNER_H_
#define CHAOS_CORE_RECORD_BINNER_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "core/chunk_io.h"
#include "core/partition.h"
#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

// Builds a chunk whose payload is a raw byte buffer holding `count` records.
// The buffer comes from operator new (max_align_t-aligned), so ChunkSpan<T>
// views of any POD record type are valid.
inline Chunk MakeChunkFromBytes(uint32_t index, uint64_t model_bytes, uint32_t count,
                                std::vector<uint8_t> bytes) {
  Chunk c;
  c.index = index;
  c.model_bytes = model_bytes;
  c.count = count;
  c.payload_bytes = bytes.size();
  auto holder = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
  c.data = std::shared_ptr<const void>(holder, holder->data());
  return c;
}

class RecordBinner {
 public:
  // `record_stride_bytes` is the in-memory record width (sizeof(RecT));
  // `record_wire_bytes` the modeled on-disk/wire width the paper charges.
  RecordBinner(const Partitioning* parts, uint64_t record_stride_bytes,
               uint64_t record_wire_bytes, uint64_t chunk_bytes)
      : parts_(parts),
        stride_(record_stride_bytes),
        record_wire_(record_wire_bytes),
        records_per_chunk_(RecordsPerChunk(chunk_bytes, record_wire_bytes)),
        buffers_(parts->num_partitions()) {
    CHAOS_CHECK_GT(stride_, 0u);
  }

  // Chunk capacity in records. Floored at one record per chunk so records
  // wider than the chunk still make progress; zero-width records (empty
  // payloads) never fill a chunk by byte count, so they are binned as if
  // one byte wide instead of dividing by zero.
  static uint64_t RecordsPerChunk(uint64_t chunk_bytes, uint64_t record_wire_bytes) {
    const uint64_t wire = record_wire_bytes < 1 ? 1 : record_wire_bytes;
    const uint64_t per = chunk_bytes / wire;
    return per < 1 ? 1 : per;
  }

  template <typename RecT>
  void Add(PartitionId p, const RecT& record) {
    static_assert(std::is_trivially_copyable_v<RecT>, "binned records must be POD");
    CHAOS_DCHECK(sizeof(RecT) == stride_);
    auto& buffer = buffers_[p];
    const auto* raw = reinterpret_cast<const uint8_t*>(&record);
    buffer.insert(buffer.end(), raw, raw + sizeof(RecT));
    ++emitted_;
    if (buffer.size() >= records_per_chunk_ * stride_) {
      pending_.emplace_back(p, std::move(buffer));
      buffer.clear();
    }
  }

  bool HasPending() const { return !pending_.empty(); }
  uint64_t emitted() const { return emitted_; }

  Task<> FlushPending(ChunkWriter* writer, SetKind kind) {
    while (!pending_.empty()) {
      auto [p, bytes] = std::move(pending_.front());
      pending_.pop_front();
      const auto count = static_cast<uint32_t>(bytes.size() / stride_);
      const uint64_t wire = count * record_wire_;
      // NOTE: named locals (not braced temporaries) around coroutine calls;
      // g++ 12 miscompiles braced aggregate temporaries passed directly as
      // coroutine arguments (see docs in sim/task.h).
      const SetId target{p, kind};
      Chunk chunk = MakeChunkFromBytes(next_index_++, wire, count, std::move(bytes));
      co_await writer->Write(target, std::move(chunk), parts_->Master(p));
    }
  }

  Task<> FlushAll(ChunkWriter* writer, SetKind kind) {
    for (PartitionId p = 0; p < buffers_.size(); ++p) {
      if (!buffers_[p].empty()) {
        pending_.emplace_back(p, std::move(buffers_[p]));
        buffers_[p].clear();
      }
    }
    co_await FlushPending(writer, kind);
  }

 private:
  const Partitioning* parts_;
  uint64_t stride_;
  uint64_t record_wire_;
  uint64_t records_per_chunk_;
  std::vector<std::vector<uint8_t>> buffers_;
  std::deque<std::pair<PartitionId, std::vector<uint8_t>>> pending_;
  uint32_t next_index_ = 0;
  uint64_t emitted_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_CORE_RECORD_BINNER_H_
