// ComputeEngine<Program>: the thin typed composition layer over the layered
// engine core (paper §5). One per machine.
//
// All control flow — the per-superstep scatter/gather loop, randomized work
// stealing, barriers, the 2-phase checkpoint FSM, pre-processing, buffer
// management — lives untemplated in EngineCore (engine_core.h) and its
// phase drivers (scatter_phase.h, gather_phase.h, barrier_fsm.cc), compiled
// once for all programs. This template only binds a GAS program to that
// core through a GasKernel<P> adapter (gas_kernel.h), which keeps the
// per-edge/per-update/per-vertex loops fully typed and inlined, and
// re-exposes the typed results (global state, outputs) the cluster driver
// and recovery flow need.
//
// Per superstep:
//   scatter phase:  own partitions, then steal (Fig. 4, lines 23-33)
//   barrier
//   gather phase:   own partitions (gather + accumulator pull + merge +
//                   apply + vertex write-back + update-set delete), then
//                   steal (lines 35-53)
//   barrier with global-state reduction (aggregator) and convergence check
//
// Machine 0 additionally runs the barrier coordinator; every machine runs a
// control server answering steal proposals and accumulator pulls while its
// main loop is busy streaming.
#ifndef CHAOS_CORE_COMPUTE_ENGINE_H_
#define CHAOS_CORE_COMPUTE_ENGINE_H_

#include <utility>
#include <vector>

#include "core/engine_core.h"
#include "core/gas.h"
#include "core/gas_kernel.h"

namespace chaos {

template <GasProgram P>
class ComputeEngine {
 public:
  using VState = typename P::VertexState;
  using U = typename P::UpdateValue;
  using A = typename P::Accumulator;
  using G = typename P::GlobalState;
  using Out = typename P::OutputRecord;

  ComputeEngine(EngineContext ctx, const P* prog, GraphMeta meta, const Partitioning* parts,
                MachineMetrics* metrics, const G& initial_global)
      : kernel_(prog, parts, meta.vertex_id_wire_bytes, initial_global),
        core_(std::move(ctx), &kernel_, meta, parts, metrics) {}

  // Spawns the main loop, the control server, and (machine 0) the barrier
  // coordinator.
  void Start() { core_.Start(); }

  bool finished() const { return core_.finished(); }
  bool crashed() const { return core_.crashed(); }
  uint64_t supersteps_run() const { return core_.supersteps_run(); }
  const G& final_global() const { return kernel_.global(); }
  const std::vector<Out>& outputs() const { return kernel_.outputs(); }
  // Prefix of outputs() emitted by supersteps that completed their gather
  // barrier before absolute superstep `superstep` (recovery carries a
  // crashed run's committed output stream across the restart).
  size_t NumOutputsBefore(uint64_t superstep) const {
    return core_.NumOutputsBefore(superstep);
  }
  TimeNs preprocess_end_time() const { return core_.preprocess_end_time(); }
  // Coordinator-side (machine 0): sim time at the end of each completed
  // superstep, indexed from the first superstep this run executed.
  const std::vector<TimeNs>& superstep_end_times() const {
    return core_.superstep_end_times();
  }
  // Global state and superstep captured at the last committed checkpoint.
  const G& checkpointed_global() const { return kernel_.checkpointed_global(); }
  uint64_t checkpointed_superstep() const { return core_.checkpointed_superstep(); }
  bool has_checkpoint() const { return core_.has_checkpoint(); }
  // Latest committed checkpoint side (for recovery imports).
  SetKind committed_checkpoint_side() const { return core_.committed_checkpoint_side(); }
  // Evolving graphs: edge side + mutation epoch at the last committed
  // checkpoint, and the per-epoch apply records (machine 0 only).
  SetKind checkpoint_edges_kind() const { return core_.checkpoint_edges_kind(); }
  uint64_t checkpoint_epoch() const { return core_.checkpoint_epoch(); }
  const std::vector<MutationEpochRecord>& mutation_records() const {
    return core_.mutation_records();
  }

 private:
  GasKernel<P> kernel_;
  EngineCore core_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_COMPUTE_ENGINE_H_
