// Serving-layer benchmark: many concurrent graph jobs of mixed algorithms,
// sizes and priorities sharing one simulated cluster (ROADMAP item 2,
// "serve heavy traffic"). Replaces the old examples/capacity_planner what-if
// sweep with a real closed loop: a seeded arrival trace is served under
// FIFO and preemptive-priority scheduling at an under- and an overloaded
// offered load, and the bench reports per-class p50/p99 job latency,
// cluster utilization and preemption counts.
//
// Offered load is set by measuring each job's isolated service time first
// (wave 1), then compressing the trace's arrival horizon so that
// sum(service_i * machines_i) / (machines * horizon) hits the target rho.
//
// Ok-gate (exit 1 on violation):
//  * every scheduled job's values/scalar/output count are bitwise identical
//    to its isolated single-job run (preemption must not perturb results);
//  * no job is rejected (the trace is sized to fit admission);
//  * under overload, priority scheduling strictly improves high-priority
//    p99 latency over FIFO.
// All reported quantities are simulated times, so the gate is deterministic
// across hosts and across --jobs (CI byte-compares --jobs 1 vs 8).
#include "bench/bench_common.h"

#include <map>
#include <tuple>

#include "core/job_trace.h"

using namespace chaos;
using namespace chaos::bench;

namespace {

struct ScenarioStats {
  double p50_high = 0.0, p99_high = 0.0;
  double p50_low = 0.0, p99_low = 0.0;
  double utilization = 0.0;
  int preemptions = 0;
  int rejected = 0;
};

// bfs/wcc/sssp only: integer/min-fold algorithms whose values are bitwise
// stable under any superstep re-execution order.
const char* PickAlgorithm(uint64_t mix) {
  switch (mix % 3) {
    case 0:
      return "bfs";
    case 1:
      return "wcc";
    default:
      return "sssp";
  }
}

}  // namespace

CHAOS_BENCH_MAIN(serving, "Serving layer: multi-job scheduling, latency under load") {
  Options opt;
  opt.AddInt("num-jobs", 16, "jobs in the trace");
  opt.AddInt("machines", 8, "serving-cluster machines");
  opt.AddInt("quantum", 2, "preemption quantum (supersteps per slice)");
  opt.AddString("preset", "bursty", "arrival shape: uniform | bursty | diurnal");
  opt.AddInt("seed", 1, "trace seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const int num_jobs = static_cast<int>(opt.GetInt("num-jobs"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto quantum = static_cast<uint64_t>(opt.GetInt("quantum"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const auto preset = TracePresetByName(opt.GetString("preset"));
  if (!preset.has_value()) {
    std::fprintf(stderr, "error: unknown preset '%s'\n", opt.GetString("preset").c_str());
    return 1;
  }

  // ---- Trace synthesis: arrivals over a normalized 1 s horizon (rescaled
  // per offered load below), job shapes drawn from each entry's seed.
  constexpr TimeNs kNormalizedHorizon = 1'000'000'000;
  TraceOptions topt;
  topt.preset = *preset;
  topt.num_jobs = num_jobs;
  topt.horizon = kNormalizedHorizon;
  topt.seed = seed;
  const std::vector<TraceEntry> entries = GenerateTrace(topt);

  // Prepared graphs shared across jobs: all three algorithms take
  // undirected inputs, so one cache entry per (weighted, scale, graph seed).
  std::map<std::tuple<bool, uint32_t, uint64_t>, std::shared_ptr<const InputGraph>> graphs;
  auto shared_graph = [&](const char* algo, bool weighted, uint32_t scale, uint64_t gseed) {
    auto& slot = graphs[{weighted, scale, gseed}];
    if (!slot) {
      slot = std::make_shared<const InputGraph>(
          PrepareInput(algo, BenchRmat(scale, weighted, gseed)));
    }
    return slot;
  };

  // Two service classes, interactive vs batch: high-priority jobs are small
  // 2-machine probes (the "millions of users" request path); low-priority
  // jobs are wide, long analytics runs that monopolize machines under FIFO.
  std::vector<JobSpec> specs;
  specs.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const TraceEntry& entry = entries[i];
    const uint64_t mix = Mix64(entry.seed);
    const bool high = entry.priority > 0;
    const char* algo = PickAlgorithm(mix);
    const bool weighted = std::string(algo) == "sssp";
    const uint32_t scale = high ? 8 : 11;
    const uint64_t gseed = 1 + (mix >> 16) % 2;  // 2 graphs per shape
    const int job_machines = high ? 2 : 4;
    auto graph = shared_graph(algo, weighted, scale, gseed);
    JobSpec spec = MakeJob(algo, graph, BenchClusterConfig(*graph, job_machines, entry.seed));
    spec.params.source = 0;
    spec.name = std::string(algo) + "-" + std::to_string(i);
    spec.priority = entry.priority;
    spec.arrival = entry.arrival;
    specs.push_back(std::move(spec));
  }

  // ---- Wave 1: isolated truth runs — bitwise baselines + service times.
  Sweep<JobResult> isolated_sweep;
  for (const JobSpec& spec : specs) {
    JobSpec alone = spec;
    alone.arrival = 0;
    isolated_sweep.Add([alone] { return RunJob(alone); });
  }
  const std::vector<JobResult> isolated = isolated_sweep.Run();

  TimeNs total_work = 0;
  uint64_t max_budget = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    total_work += isolated[i].sched.service_time * specs[i].cluster.machines;
    max_budget = std::max(max_budget, specs[i].cluster.EffectivePoolBudget());
  }

  // ---- Wave 2: serve the trace under policy x load.
  struct Scenario {
    SchedPolicy policy;
    double rho;
    const char* tag;
  };
  const std::vector<Scenario> scenarios = {
      {SchedPolicy::kFifo, 0.6, "under"},
      {SchedPolicy::kPriority, 0.6, "under"},
      {SchedPolicy::kFifo, 2.5, "over"},
      {SchedPolicy::kPriority, 2.5, "over"},
  };

  bool ok = true;
  auto fail = [&ok](const char* what) {
    std::printf("FAIL: %s\n", what);
    ok = false;
  };

  std::map<std::pair<std::string, std::string>, ScenarioStats> table;
  for (const Scenario& scenario : scenarios) {
    // Horizon for the target offered load; integer math keeps it exact.
    const TimeNs horizon = static_cast<TimeNs>(
        static_cast<double>(total_work) / (static_cast<double>(machines) * scenario.rho));
    std::vector<JobSpec> scaled = specs;
    for (JobSpec& spec : scaled) {
      spec.arrival = static_cast<TimeNs>(
          static_cast<__int128>(spec.arrival) * horizon / kNormalizedHorizon);
    }

    ServingConfig serving;
    serving.machines = machines;
    serving.machine_memory_bytes = std::max<uint64_t>(2 * max_budget, 64ull << 20);
    serving.policy = scenario.policy;
    serving.preempt_quantum = quantum;
    serving.jobs = SweepJobsSetting();
    const TraceRunResult run = RunJobTrace(scaled, serving);

    ScenarioStats stats;
    std::vector<double> lat_high;
    std::vector<double> lat_low;
    for (size_t i = 0; i < scaled.size(); ++i) {
      const JobResult& job = run.jobs[i];
      if (!job.sched.admitted || !job.sched.completed) {
        fail("job rejected or unfinished (trace is sized to fit admission)");
        continue;
      }
      const double latency_s = static_cast<double>(job.sched.latency()) * 1e-9;
      (scaled[i].priority > 0 ? lat_high : lat_low).push_back(latency_s);
      // Results must be exactly the isolated run's, whatever the schedule.
      const JobResult& truth = isolated[i];
      const bool bitwise_equal = job.values == truth.values && job.scalar == truth.scalar &&
                                 job.output_records == truth.output_records &&
                                 job.supersteps == truth.supersteps;
      if (!bitwise_equal) {
        fail("scheduled result diverged from the isolated run");
      }
    }
    stats.p50_high = ExactQuantile(lat_high, 0.5);
    stats.p99_high = ExactQuantile(lat_high, 0.99);
    stats.p50_low = ExactQuantile(lat_low, 0.5);
    stats.p99_low = ExactQuantile(lat_low, 0.99);
    stats.utilization = run.metrics.utilization;
    stats.preemptions = run.metrics.preemptions;
    stats.rejected = run.metrics.rejected;
    table[{SchedPolicyName(scenario.policy), scenario.tag}] = stats;

    const std::string prefix =
        std::string("serving.") + SchedPolicyName(scenario.policy) + "." + scenario.tag;
    RecordMetric(prefix + ".p50_high_s", stats.p50_high);
    RecordMetric(prefix + ".p99_high_s", stats.p99_high);
    RecordMetric(prefix + ".p50_low_s", stats.p50_low);
    RecordMetric(prefix + ".p99_low_s", stats.p99_low);
    RecordMetric(prefix + ".utilization", stats.utilization);
    RecordMetric(prefix + ".preemptions", stats.preemptions);
    RecordMetric(prefix + ".makespan_s", static_cast<double>(run.metrics.makespan) * 1e-9);
  }

  // ---- Report.
  std::printf("== Serving: %d jobs (%s arrivals), %d machines, quantum %llu ==\n", num_jobs,
              TracePresetName(*preset), machines, static_cast<unsigned long long>(quantum));
  PrintHeader({"policy", "load", "p50-high s", "p99-high s", "p50-low s", "p99-low s", "util",
               "preempts"});
  for (const Scenario& scenario : scenarios) {
    const ScenarioStats& stats = table[{SchedPolicyName(scenario.policy), scenario.tag}];
    PrintCell(SchedPolicyName(scenario.policy));
    PrintCell(scenario.tag);
    PrintCell(stats.p50_high, "%.4f");
    PrintCell(stats.p99_high, "%.4f");
    PrintCell(stats.p50_low, "%.4f");
    PrintCell(stats.p99_low, "%.4f");
    PrintCell(stats.utilization, "%.2f");
    PrintCell(static_cast<double>(stats.preemptions), "%.0f");
    EndRow();
  }

  // ---- Ok-gate: under overload, priority must strictly beat FIFO on the
  // high-priority tail.
  const double fifo_over = table[{"fifo", "over"}].p99_high;
  const double prio_over = table[{"priority", "over"}].p99_high;
  RecordMetric("serving.gate.p99_high_improvement",
               fifo_over > 0 ? (fifo_over - prio_over) / fifo_over : 0.0);
  if (!(prio_over < fifo_over)) {
    fail("priority p99(high) did not strictly beat FIFO under overload");
  }
  if (table[{"priority", "over"}].preemptions < 1) {
    fail("overloaded priority run never preempted — the trace exercises nothing");
  }
  std::printf("\ngate: overload p99(high) fifo %.4fs vs priority %.4fs -> %s\n", fifo_over,
              prio_over, ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
