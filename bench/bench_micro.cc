// Microbenchmarks backing the simulator's CPU cost parameters: per-edge
// scatter cost, per-edge grid-partitioning cost, event queue and chunk
// machinery throughput, and generator speed. Run these on a new host to
// recalibrate CostModel / --grid-ns-per-edge.
//
// Self-contained timing harness (no google-benchmark dependency): each
// benchmark body is run for an adaptive number of iterations until the
// measured window exceeds --min-ms, then ns/op and items/s are reported.
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "algorithms/basic.h"
#include "baselines/grid_partitioner.h"
#include "bench/bench_common.h"
#include "core/partition.h"
#include "graph/generators.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "storage/chunk.h"

namespace chaos {
namespace {

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

struct MicroCase {
  const char* name;
  // Runs `iters` iterations of the benchmark body and returns the number of
  // logical items processed (edges, events, ...) across all iterations.
  std::function<uint64_t(uint64_t iters)> run;
};

InputGraph& BenchGraph() {
  static InputGraph g = [] {
    RmatOptions opt;
    opt.scale = 14;
    opt.seed = 7;
    return GenerateRmat(opt);
  }();
  return g;
}

// Per-edge cost of the PageRank scatter path (binning included): the basis
// for CostModel::ns_per_edge_scatter.
uint64_t RunScatterPerEdge(uint64_t iters) {
  const InputGraph& g = BenchGraph();
  auto parts = Partitioning::Compute(g.num_vertices, 4, 16, 1 << 20);
  PageRankProgram prog(1);
  PageRankProgram::GlobalState global{1};
  std::vector<PageRankProgram::VertexState> states(g.num_vertices,
                                                   PageRankProgram::VertexState{1.0f, 16});
  std::vector<std::vector<UpdateRecord<float>>> bins(parts.num_partitions());
  for (uint64_t it = 0; it < iters; ++it) {
    for (auto& bin : bins) {
      bin.clear();
    }
    auto emit = [&](VertexId dst, const float& value) {
      bins[parts.PartitionOf(dst)].push_back(UpdateRecord<float>{dst, value});
    };
    for (const Edge& e : g.edges) {
      prog.Scatter(global, e.src, states[e.src], e, emit);
    }
    DoNotOptimize(bins);
  }
  return iters * g.num_edges();
}

// Per-edge cost of grid partitioning: the basis for --grid-ns-per-edge.
uint64_t RunGridPartitionPerEdge(uint64_t iters) {
  const InputGraph& g = BenchGraph();
  for (uint64_t it = 0; it < iters; ++it) {
    auto result = GridPartition(g, 16, 7);
    DoNotOptimize(result);
  }
  return iters * g.num_edges();
}

uint64_t RunEventQueueThroughput(uint64_t iters) {
  for (uint64_t it = 0; it < iters; ++it) {
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
      q.Push((i * 2654435761u) % 100000, [] {});
    }
    while (!q.empty()) {
      DoNotOptimize(q.Pop());
    }
  }
  return iters * 10000;
}

// Event push/pop with a realistic wakeup capture (shared flag + pointer,
// ~24 B — what FifoResource and the sync primitives post): the case EventFn
// stores inline where a std::function-based queue heap-allocated per Push.
uint64_t RunEventQueueCapturedPush(uint64_t iters) {
  auto flag = std::make_shared<bool>(false);
  uint64_t sink = 0;
  for (uint64_t it = 0; it < iters; ++it) {
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
      q.Push((i * 2654435761u) % 100000, [flag, &sink] {
        if (!*flag) {
          ++sink;
        }
      });
    }
    while (!q.empty()) {
      q.Pop().fn();
    }
  }
  DoNotOptimize(sink);
  return iters * 10000;
}

uint64_t RunCoroutineDelayRoundtrip(uint64_t iters) {
  for (uint64_t it = 0; it < iters; ++it) {
    Simulator sim;
    sim.Spawn([](Simulator* s) -> Task<> {
      for (int i = 0; i < 1000; ++i) {
        co_await s->Delay(10);
      }
    }(&sim));
    sim.Run();
  }
  return iters * 1000;
}

uint64_t RunRmatGeneration(uint64_t iters) {
  RmatOptions opt;
  opt.scale = 12;
  opt.seed = 7;
  for (uint64_t it = 0; it < iters; ++it) {
    auto g = GenerateRmat(opt);
    DoNotOptimize(g);
  }
  return iters * (16ull << 12);
}

uint64_t RunChunkRoundTrip(uint64_t iters) {
  std::vector<Edge> edges(8192);
  for (uint64_t it = 0; it < iters; ++it) {
    auto copy = edges;
    Chunk c = MakeChunk<Edge>(0, copy.size() * 8, std::move(copy));
    auto span = ChunkSpan<Edge>(c);
    DoNotOptimize(span);
  }
  return iters * 8192;
}

const std::vector<MicroCase>& MicroCases() {
  static const std::vector<MicroCase> kCases = {
      {"ScatterPerEdge", RunScatterPerEdge},
      {"GridPartitionPerEdge", RunGridPartitionPerEdge},
      {"EventQueueThroughput", RunEventQueueThroughput},
      {"EventQueueCapturedPush", RunEventQueueCapturedPush},
      {"CoroutineDelayRoundtrip", RunCoroutineDelayRoundtrip},
      {"RmatGeneration", RunRmatGeneration},
      {"ChunkRoundTrip", RunChunkRoundTrip},
  };
  return kCases;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace
}  // namespace chaos

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(micro, "Microbenchmarks for CostModel calibration") {
  Options opt;
  opt.AddDouble("min-ms", 100.0, "minimum measured window per benchmark, in ms");
  opt.AddString("filter", "", "only run benchmarks whose name contains this substring");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const double min_ms = opt.GetDouble("min-ms");
  const std::string& filter = opt.GetString("filter");

  PrintHeader({"benchmark", "iters", "ns/op", "items/s"});
  for (const MicroCase& c : MicroCases()) {
    if (!filter.empty() && std::string(c.name).find(filter) == std::string::npos) {
      continue;
    }
    // Warm up once, then grow the iteration count until the window is long
    // enough to be trustworthy.
    c.run(1);
    uint64_t iters = 1;
    double elapsed_ms = 0.0;
    uint64_t items = 0;
    for (;;) {
      const double start = NowMs();
      items = c.run(iters);
      elapsed_ms = NowMs() - start;
      if (elapsed_ms >= min_ms || iters >= (1ull << 30)) {
        break;
      }
      const double growth = elapsed_ms > 0.0 ? (min_ms * 1.4) / elapsed_ms : 16.0;
      iters = std::max<uint64_t>(iters + 1, static_cast<uint64_t>(iters * growth));
    }
    const double ns_per_op = elapsed_ms * 1e6 / static_cast<double>(iters);
    const double items_per_sec =
        elapsed_ms > 0.0 ? static_cast<double>(items) * 1e3 / elapsed_ms : 0.0;
    PrintCell(c.name);
    PrintCell(static_cast<double>(iters), "%.0f");
    PrintCell(ns_per_op, "%.1f");
    PrintCell(items_per_sec, "%.3g");
    EndRow();
  }
  return 0;
}
