// Deterministic event queue: events fire in (time, insertion sequence) order,
// so simultaneous events run in the order they were scheduled.
#ifndef CHAOS_SIM_EVENT_QUEUE_H_
#define CHAOS_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/common.h"

namespace chaos {

// Move-only callable with small-buffer storage, sized for the DES hot path.
//
// Nearly every event callback captures a coroutine handle, sometimes plus a
// shared_ptr flag or a small pointer pair — well under kInlineBytes — so
// pushing an event performs no heap allocation at all, where std::function
// would allocate (libstdc++ inlines only 16 bytes) on every Push. This is
// the event "pooling" of the simulator: callback storage lives inside the
// heap slot the queue already owns. Oversized captures fall back to the
// heap transparently.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() {
    CHAOS_DCHECK(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
    static void Move(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
    static constexpr Ops kOps = {&Invoke, &Move, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Ptr(void* storage) { return *reinterpret_cast<Fn**>(storage); }
    static void Invoke(void* storage) { (*Ptr(storage))(); }
    static void Move(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = Ptr(src);
    }
    static void Destroy(void* storage) { delete Ptr(storage); }
    static constexpr Ops kOps = {&Invoke, &Move, &Destroy};
  };

  void MoveFrom(EventFn& other) {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  struct Event {
    TimeNs time = 0;
    uint64_t seq = 0;
    EventFn fn;
  };

  EventQueue() { heap_.reserve(kInitialCapacity); }

  void Push(TimeNs time, EventFn fn);
  // Removes and returns the earliest event. Queue must be non-empty.
  Event Pop();
  const Event& Peek() const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  uint64_t total_pushed() const { return next_seq_; }

 private:
  // Typical cluster runs keep hundreds of in-flight events; reserving up
  // front keeps the first supersteps from re-allocating the heap array.
  static constexpr size_t kInitialCapacity = 256;

  static bool Earlier(const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Event> heap_;  // binary min-heap by (time, seq)
  uint64_t next_seq_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_SIM_EVENT_QUEUE_H_
