// Tests for the perturbation subsystem: FifoResource rate multipliers
// (including in-flight queue re-projection), declarative fault schedules,
// deterministic replay, heterogeneous machine profiles, and the paper's
// load-balancing claim — a straggler with stealing beats one without.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algorithms/runner.h"
#include "core/cluster.h"
#include "graph/generators.h"
#include "sim/fault_injector.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace chaos {
namespace {

// ------------------------------------------------------ FifoResource rates

TEST(ResourceRateTest, SlowRateStretchesService) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  dev.SetRate(0.5);
  std::vector<TimeNs> completions;
  sim.Spawn([](FifoResource* dev, std::vector<TimeNs>* out) -> Task<> {
    co_await dev->Acquire(100);
    out->push_back(dev->sim()->now());
  }(&dev, &completions));
  sim.Run();
  EXPECT_EQ(completions, (std::vector<TimeNs>{200}));
}

// The satellite requirement: a rate change must re-project requests already
// queued on a busy resource, not only future arrivals.
TEST(ResourceRateTest, MidFlightSlowdownStretchesQueuedRequests) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  std::vector<TimeNs> completions;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](FifoResource* dev, std::vector<TimeNs>* out) -> Task<> {
      co_await dev->Acquire(100);
      out->push_back(dev->sim()->now());
    }(&dev, &completions));
  }
  sim.Spawn([](Simulator* s, FifoResource* dev) -> Task<> {
    co_await s->Delay(150);
    dev->SetRate(0.5);  // 2x slower from t=150
  }(&sim, &dev));
  sim.Run();
  // Request 1 finished at 100 before the brownout. Request 2 was in service
  // at 150 with 50 ns remaining -> stretched to 100 ns -> done 250. Request
  // 3 had not started: 100 ns of work at half speed -> done 250 + 200.
  EXPECT_EQ(completions, (std::vector<TimeNs>{100, 250, 450}));
  EXPECT_EQ(dev.busy_until(), 450);
  EXPECT_EQ(dev.total_busy(), 450);  // 100 + (50 + 100) + 200
}

TEST(ResourceRateTest, MidFlightRecoveryWakesSleepersEarly) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  dev.SetRate(0.25);
  std::vector<TimeNs> completions;
  for (int i = 0; i < 2; ++i) {
    sim.Spawn([](FifoResource* dev, std::vector<TimeNs>* out) -> Task<> {
      co_await dev->Acquire(100);
      out->push_back(dev->sim()->now());
    }(&dev, &completions));
  }
  EXPECT_EQ(dev.busy_until(), 800);  // 2 x 400 at quarter speed
  sim.Spawn([](Simulator* s, FifoResource* dev) -> Task<> {
    co_await s->Delay(200);
    dev->SetRate(1.0);  // recovery: sleepers must wake before t=400/800
  }(&sim, &dev));
  sim.Run();
  // At t=200 the head request has 200 effective ns left = 50 ns of nominal
  // work -> done 250; the second runs its full 100 ns -> done 350.
  EXPECT_EQ(completions, (std::vector<TimeNs>{250, 350}));
}

TEST(ResourceRateTest, RateOneIsExactlyNominal) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  dev.SetRate(2.0);
  dev.SetRate(1.0);
  std::vector<TimeNs> completions;
  sim.Spawn([](FifoResource* dev, std::vector<TimeNs>* out) -> Task<> {
    co_await dev->Acquire(77);
    out->push_back(dev->sim()->now());
  }(&dev, &completions));
  sim.Run();
  EXPECT_EQ(completions, (std::vector<TimeNs>{77}));
}

// --------------------------------------------------------- fault schedules

TEST(FaultScheduleTest, RandomIsDeterministicUnderFixedSeed) {
  const FaultSchedule a = FaultSchedule::Random(42, 8, 16, 10 * kNsPerMs);
  const FaultSchedule b = FaultSchedule::Random(42, 8, 16, 10 * kNsPerMs);
  ASSERT_EQ(a.events.size(), 16u);
  ASSERT_EQ(b.events.size(), a.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_EQ(a.events[i].machine, b.events[i].machine);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].factor, b.events[i].factor);
  }
  // A different seed must give a different plan.
  const FaultSchedule c = FaultSchedule::Random(43, 8, 16, 10 * kNsPerMs);
  bool any_differs = false;
  for (size_t i = 0; i < a.events.size(); ++i) {
    any_differs = any_differs || a.events[i].at != c.events[i].at ||
                  a.events[i].machine != c.events[i].machine;
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultScheduleTest, FactoriesBuildExpectedEvents) {
  const FaultSchedule s = FaultSchedule::Straggler(3, 4.0);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].machine, 3);
  EXPECT_TRUE(s.events[0].permanent());
  EXPECT_DOUBLE_EQ(s.events[0].factor, 0.25);
  EXPECT_EQ(s.events[0].target, FaultTarget::kCpu);

  const FaultSchedule b = FaultSchedule::StorageBrownout(1, 0.1, kNsPerMs, 2 * kNsPerMs);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(b.events[0].target, FaultTarget::kStorage);
  EXPECT_FALSE(b.events[0].permanent());
  EXPECT_EQ(b.events[0].end(), 3 * kNsPerMs);
}

// ---------------------------------------------------------- fault injector

TEST(FaultInjectorTest, TransientBrownoutStretchesBusyDeviceAndClears) {
  Simulator sim;
  FifoResource storage(&sim, "dev");
  FaultInjector injector(&sim,
                         FaultSchedule::StorageBrownout(0, 0.5, /*at=*/1000, /*duration=*/1000),
                         /*machines=*/1);
  FaultInjector::MachineHooks hooks;
  hooks.storage = &storage;
  injector.AttachMachine(0, hooks);
  injector.Start();
  std::vector<TimeNs> completions;
  sim.Spawn([](FifoResource* dev, std::vector<TimeNs>* out) -> Task<> {
    co_await dev->Acquire(3000);
    out->push_back(dev->sim()->now());
  }(&storage, &completions));
  sim.Run();
  // 1000 ns at full rate, then 1000 ns of wall time covering 500 ns of work
  // during the brownout, then the remaining 1500 ns at full rate again.
  EXPECT_EQ(completions, (std::vector<TimeNs>{3500}));
  ASSERT_EQ(injector.records().size(), 1u);
  EXPECT_EQ(injector.records()[0].applied_at, 1000);
  EXPECT_EQ(injector.records()[0].cleared_at, 2000);
  EXPECT_EQ(injector.events_applied(), 1u);
}

TEST(FaultInjectorTest, OverlappingCpuFaultsComposeMultiplicatively) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add(FaultEvent{/*at=*/100, /*duration=*/400, /*machine=*/0, FaultTarget::kCpu, 0.5});
  schedule.Add(FaultEvent{/*at=*/200, /*duration=*/100, /*machine=*/0, FaultTarget::kMachine, 0.5});
  FaultInjector injector(&sim, schedule, /*machines=*/1);
  injector.Start();
  std::vector<double> samples;
  sim.Spawn([](Simulator* s, FaultInjector* inj, std::vector<double>* out) -> Task<> {
    for (const TimeNs t : {50, 150, 250, 350, 550}) {
      co_await s->Delay(t - s->now());
      out->push_back(inj->CpuRate(0));
    }
  }(&sim, &injector, &samples));
  sim.Run();
  EXPECT_EQ(samples, (std::vector<double>{1.0, 0.5, 0.25, 0.5, 1.0}));
  // ScaleCpu stretches by the inverse rate.
  EXPECT_EQ(injector.ScaleCpu(0, 100), 100);
}

// ------------------------------------------------------------ cluster runs

ClusterConfig StragglerConfig(int machines, double alpha, double severity) {
  ClusterConfig cfg;
  cfg.machines = machines;
  // Compute-bound miniature regime (see bench_fig21_stragglers.cc): one
  // core, fast storage, latencies small against transfer times, and enough
  // partitions/chunks for meaningful steal granularity.
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.cost.cores = 1;
  cfg.storage.bandwidth_bps = 2e9;
  cfg.storage.access_latency = 2 * kNsPerUs;
  cfg.net.one_way_latency = kNsPerUs;
  cfg.alpha = alpha;
  cfg.seed = 5;
  if (severity > 1.0) {
    cfg.faults = FaultSchedule::Straggler(0, severity, FaultTarget::kCpu);
  }
  return cfg;
}

InputGraph StragglerGraph() {
  RmatOptions opt;
  opt.scale = 11;
  opt.seed = 17;
  return GenerateRmat(opt);
}

// The acceptance-criteria run: two machines, one degraded 4x; randomized
// stealing must strictly beat no-stealing — and both must still compute the
// correct answer (faults perturb timing, never results).
TEST(FaultClusterTest, FourXStragglerStealingBeatsNoStealing) {
  InputGraph g = PrepareInput("pagerank", StragglerGraph());
  auto healthy = RunJob(MakeJob("pagerank", g, StragglerConfig(2, 1.0, 1.0)));
  auto with = RunJob(MakeJob("pagerank", g, StragglerConfig(2, 1.0, 4.0)));
  auto without = RunJob(MakeJob("pagerank", g, StragglerConfig(2, 0.0, 4.0)));

  EXPECT_LT(with.metrics.total_time, without.metrics.total_time);
  uint64_t steals = 0;
  for (const auto& mm : with.metrics.machines) {
    steals += mm.steals_worked;
  }
  EXPECT_GT(steals, 0u);
  // The injected fault shows up in the run metrics, attributed.
  ASSERT_EQ(with.metrics.faults.size(), 1u);
  EXPECT_EQ(with.metrics.faults[0].applied_at, 0);
  EXPECT_EQ(with.metrics.faults[0].cleared_at, -1);
  EXPECT_GT(with.metrics.StealsDuringFault(with.metrics.faults[0]), 0u);
  // Same answer regardless of faults or stealing (timing changes reorder
  // float accumulator merges, so exact bit-equality is not expected).
  ASSERT_EQ(with.values.size(), healthy.values.size());
  for (size_t v = 0; v < healthy.values.size(); ++v) {
    const double tol = 1e-4 * std::max(1.0, std::abs(healthy.values[v]));
    ASSERT_NEAR(with.values[v], healthy.values[v], tol);
    ASSERT_NEAR(without.values[v], healthy.values[v], tol);
  }
}

// An event scheduled past the end of the workload must be recorded as never
// reached, not applied post-run (and must not stretch the simulated clock).
TEST(FaultClusterTest, EventsPastTheEndOfTheRunAreNotReached) {
  InputGraph g = PrepareInput("pagerank", StragglerGraph());
  ClusterConfig cfg = StragglerConfig(2, 1.0, 1.0);
  cfg.faults = FaultSchedule::TransientSlowdown(0, FaultTarget::kCpu, 0.5,
                                                /*at=*/10 * kNsPerSec, /*duration=*/kNsPerMs);
  auto r = RunJob(MakeJob("pagerank", g, cfg));
  EXPECT_LT(r.metrics.total_time, kNsPerSec);
  ASSERT_EQ(r.metrics.faults.size(), 1u);
  EXPECT_EQ(r.metrics.faults[0].applied_at, -1);
  EXPECT_EQ(r.metrics.StealsDuringFault(r.metrics.faults[0]), 0u);
  EXPECT_NE(r.metrics.Summary().find("not reached"), std::string::npos);
}

// Deterministic replay: an identical (workload, seed, schedule) triple must
// reproduce the identical simulated trace, fault timestamps included.
TEST(FaultClusterTest, FaultScheduleReplayIsDeterministic) {
  InputGraph g = PrepareInput("pagerank", StragglerGraph());
  auto run = [&] {
    ClusterConfig cfg = StragglerConfig(2, 1.0, 1.0);
    cfg.faults = FaultSchedule::Random(/*seed=*/9, /*machines=*/2, /*count=*/6,
                                       /*horizon=*/5 * kNsPerMs);
    return RunJob(MakeJob("pagerank", g, cfg));
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.metrics.total_time, b.metrics.total_time);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.network_bytes, b.metrics.network_bytes);
  ASSERT_EQ(a.metrics.faults.size(), b.metrics.faults.size());
  for (size_t i = 0; i < a.metrics.faults.size(); ++i) {
    EXPECT_EQ(a.metrics.faults[i].applied_at, b.metrics.faults[i].applied_at);
    EXPECT_EQ(a.metrics.faults[i].cleared_at, b.metrics.faults[i].cleared_at);
    EXPECT_EQ(a.metrics.faults[i].at_apply.proposals_accepted,
              b.metrics.faults[i].at_apply.proposals_accepted);
  }
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t v = 0; v < a.values.size(); ++v) {
    ASSERT_DOUBLE_EQ(a.values[v], b.values[v]);
  }
}

// ---------------------------------------------------------- heterogeneity

TEST(HeterogeneityTest, ProfileAccessorsFallBackToDefaults) {
  ClusterConfig cfg;
  cfg.machines = 3;
  cfg.profiles.resize(2);
  CostModel slow;
  slow.cores = 4;
  cfg.profiles[1].cost = slow;
  cfg.profiles[1].storage = StorageConfig::Hdd();
  cfg.profiles[1].nic_bandwidth_bps = 1.25e8;

  EXPECT_EQ(cfg.cost_for(0).cores, cfg.cost.cores);
  EXPECT_EQ(cfg.cost_for(1).cores, 4);
  EXPECT_EQ(cfg.cost_for(2).cores, cfg.cost.cores);  // beyond the vector
  EXPECT_DOUBLE_EQ(cfg.storage_for(1).bandwidth_bps, StorageConfig::Hdd().bandwidth_bps);
  EXPECT_DOUBLE_EQ(cfg.storage_for(0).bandwidth_bps, cfg.storage.bandwidth_bps);
  EXPECT_DOUBLE_EQ(cfg.nic_bandwidth_for(1), 1.25e8);
  EXPECT_DOUBLE_EQ(cfg.nic_bandwidth_for(2), cfg.net.nic_bandwidth_bps);
}

TEST(HeterogeneityTest, SlowMachineProfileSlowsTheRunButNotTheAnswer) {
  InputGraph g = PrepareInput("pagerank", StragglerGraph());
  ClusterConfig uniform = StragglerConfig(2, 1.0, 1.0);
  auto base = RunJob(MakeJob("pagerank", g, uniform));

  ClusterConfig skewed = uniform;
  skewed.profiles.resize(1);
  CostModel slow = skewed.cost;
  slow.ns_per_edge_scatter *= 4;
  slow.ns_per_update_gather *= 4;
  skewed.profiles[0].cost = slow;
  auto het = RunJob(MakeJob("pagerank", g, skewed));

  EXPECT_GT(het.metrics.total_time, base.metrics.total_time);
  ASSERT_EQ(het.values.size(), base.values.size());
  for (size_t v = 0; v < base.values.size(); ++v) {
    // Heterogeneity shifts steal/merge order (float non-associativity).
    ASSERT_NEAR(het.values[v], base.values[v],
                1e-4 * std::max(1.0, std::abs(base.values[v])));
  }
}

}  // namespace
}  // namespace chaos
