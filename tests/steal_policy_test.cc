// Steal-protocol test battery (core/steal_policy.h + the engine's steal
// controller). Three layers:
//
//  1. pure policy math in isolation — the accept rule, grant amounts,
//     backoff windows, the adaptive escalation bit, mode parsing;
//  2. small cluster runs — every mode must still absorb a straggler on the
//     acceptance-criteria 2-machine run, and runs must be deterministic;
//  3. large-N regressions — per-machine state is O(machines) by
//     construction (counted, not timed), and a 128-machine job under the
//     full adaptive runtime completes and answers correctly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "algorithms/runner.h"
#include "core/steal_policy.h"
#include "graph/generators.h"
#include "net/network.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace chaos {
namespace {

// ------------------------------------------------------- accept rule (§5.4)

TEST(StealAcceptTest, AlphaZeroNeverAccepts) {
  EXPECT_FALSE(StealAccept(/*vertex_bytes=*/1.0, /*remaining_bytes=*/1e9,
                           /*helpers=*/1, /*alpha=*/0.0));
}

TEST(StealAcceptTest, InfiniteAlphaAcceptsWhileWorkRemains) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(StealAccept(1e12, 1.0, 100, inf));
  EXPECT_FALSE(StealAccept(1.0, 0.0, 1, inf));  // no work left
}

TEST(StealAcceptTest, DefaultAlphaTradesCopyCostAgainstSplitWork) {
  // V + D/(H+1) < D/H: with H=1 the helper pays V to halve D — worth it
  // only when V < D/2.
  EXPECT_TRUE(StealAccept(/*V=*/10.0, /*D=*/100.0, /*H=*/1, /*alpha=*/1.0));
  EXPECT_FALSE(StealAccept(/*V=*/60.0, /*D=*/100.0, /*H=*/1, /*alpha=*/1.0));
  // More helpers shrink the marginal gain: same V, same D, H=4 declines.
  EXPECT_FALSE(StealAccept(/*V=*/10.0, /*D=*/100.0, /*H=*/4, /*alpha=*/1.0));
  EXPECT_FALSE(StealAccept(1.0, 0.0, 1, 1.0));
  // helpers <= 0 is clamped to 1, not UB.
  EXPECT_TRUE(StealAccept(10.0, 100.0, 0, 1.0));
}

// ----------------------------------------------------------- grant amounts

TEST(StealGrantLimitTest, StealOneTakesExactlyOne) {
  EXPECT_EQ(StealGrantLimit(false, 0u), 0u);
  EXPECT_EQ(StealGrantLimit(false, 1u), 1u);
  EXPECT_EQ(StealGrantLimit(false, 7u), 1u);
}

TEST(StealGrantLimitTest, StealHalfTakesCeilHalf) {
  EXPECT_EQ(StealGrantLimit(true, 0u), 0u);
  EXPECT_EQ(StealGrantLimit(true, 1u), 1u);
  EXPECT_EQ(StealGrantLimit(true, 2u), 1u);
  EXPECT_EQ(StealGrantLimit(true, 3u), 2u);
  EXPECT_EQ(StealGrantLimit(true, 4u), 2u);
  EXPECT_EQ(StealGrantLimit(true, 5u), 3u);
}

// --------------------------------------------------------- backoff windows

TEST(BackoffWindowTest, DoublesUpToCapAndResets) {
  BackoffWindow w(20 * kNsPerUs, 160 * kNsPerUs);
  EXPECT_EQ(w.Next(), 20 * kNsPerUs);
  EXPECT_EQ(w.Next(), 40 * kNsPerUs);
  EXPECT_EQ(w.Next(), 80 * kNsPerUs);
  EXPECT_EQ(w.Next(), 160 * kNsPerUs);
  EXPECT_EQ(w.Next(), 160 * kNsPerUs);  // capped
  w.Reset();
  EXPECT_EQ(w.Next(), 20 * kNsPerUs);
}

TEST(BackoffWindowTest, DegenerateBoundsAreSanitized) {
  BackoffWindow w(/*initial=*/0, /*max=*/0);
  EXPECT_EQ(w.Next(), 1);  // never a zero-length park
  BackoffWindow inverted(/*initial=*/100, /*max=*/10);  // max < initial
  EXPECT_EQ(inverted.Next(), 100);
  EXPECT_EQ(inverted.Next(), 100);
}

// ---------------------------------------------- adaptive escalation (hints)

TEST(StealSweepStateTest, StealOneNeverEscalates) {
  StealSweepState s(StealMode::kStealOne);
  EXPECT_FALSE(s.steal_half());
  s.OnGrant(/*more_work=*/true);
  EXPECT_FALSE(s.steal_half());
}

TEST(StealSweepStateTest, StealHalfAlwaysHalf) {
  StealSweepState s(StealMode::kStealHalf);
  EXPECT_TRUE(s.steal_half());
  s.OnGrant(/*more_work=*/false);
  EXPECT_TRUE(s.steal_half());
}

TEST(StealSweepStateTest, AdaptiveFollowsTheVictimHint) {
  StealSweepState s(StealMode::kAdaptive);
  // Starts polite.
  EXPECT_FALSE(s.steal_half());
  // A grant whose victim still reports open work escalates to steal-half...
  s.OnGrant(/*more_work=*/true);
  EXPECT_TRUE(s.steal_half());
  EXPECT_TRUE(s.escalated());
  // ...and a grant that exhausted its victim de-escalates.
  s.OnGrant(/*more_work=*/false);
  EXPECT_FALSE(s.steal_half());
}

// ------------------------------------------- domain-level proposal combining

TEST(StealCombineTest, FlatRoutingPutsEveryMachineInDomainZero) {
  EXPECT_EQ(StealDomainOf(0, 0), 0);
  EXPECT_EQ(StealDomainOf(17, 0), 0);
  EXPECT_EQ(StealDomainOf(17, 1), 0);
  EXPECT_TRUE(CoDomainSteal(3, 60, 0));
}

TEST(StealCombineTest, DomainGroupsMachinesByQuotient) {
  EXPECT_EQ(StealDomainOf(0, 8), 0);
  EXPECT_EQ(StealDomainOf(7, 8), 0);
  EXPECT_EQ(StealDomainOf(8, 8), 1);
  EXPECT_EQ(StealDomainOf(127, 8), 15);
  EXPECT_TRUE(CoDomainSteal(8, 15, 8));
  EXPECT_FALSE(CoDomainSteal(7, 8, 8));
}

TEST(StealCombineTest, ChargesCountMaximalCoDomainRuns) {
  EXPECT_EQ(CombinedProposalCharges({}, 8), 0u);
  EXPECT_EQ(CombinedProposalCharges({5}, 8), 1u);
  // One run: every source is in domain 0.
  EXPECT_EQ(CombinedProposalCharges({0, 3, 7, 1}, 8), 1u);
  // Alternating domains: nothing merges.
  EXPECT_EQ(CombinedProposalCharges({0, 8, 1, 9}, 8), 4u);
  // Runs {0,1} {8} {2,2} -> 3 charges.
  EXPECT_EQ(CombinedProposalCharges({0, 1, 8, 2, 2}, 8), 3u);
  // Flat routing merges everything queued together into one charge.
  EXPECT_EQ(CombinedProposalCharges({0, 31, 4, 9}, 0), 1u);
  // A domain seen again later starts a NEW run — no merging backwards.
  EXPECT_EQ(CombinedProposalCharges({0, 8, 0}, 8), 3u);
}

// ----------------------------------------------------------- mode parsing

TEST(StealModeTest, ParseRoundTripsEveryMode) {
  for (const StealMode m :
       {StealMode::kStealOne, StealMode::kStealHalf, StealMode::kAdaptive}) {
    StealMode parsed;
    ASSERT_TRUE(ParseStealMode(StealModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  StealMode parsed;
  EXPECT_FALSE(ParseStealMode("steal_two", &parsed));
  EXPECT_FALSE(ParseStealMode("", &parsed));
}

// ------------------------------------------------------------ cluster runs

// Same compute-bound miniature regime as fault_test.cc / fig21.
ClusterConfig PolicyRunConfig(int machines, double alpha, double severity) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.memory_budget_bytes = 8 << 10;
  cfg.chunk_bytes = 2 << 10;
  cfg.cost.cores = 1;
  cfg.storage.bandwidth_bps = 2e9;
  cfg.storage.access_latency = 2 * kNsPerUs;
  cfg.net.one_way_latency = kNsPerUs;
  cfg.alpha = alpha;
  cfg.seed = 5;
  if (severity > 1.0) {
    cfg.faults = FaultSchedule::Straggler(0, severity, FaultTarget::kCpu);
  }
  return cfg;
}

InputGraph PolicyRunGraph() {
  RmatOptions opt;
  opt.scale = 11;
  opt.seed = 17;
  return GenerateRmat(opt);
}

uint64_t TotalSteals(const RunMetrics& m) {
  uint64_t steals = 0;
  for (const auto& mm : m.machines) {
    steals += mm.steals_worked;
  }
  return steals;
}

// Every mode — not just the paper's steal-one — must absorb the 4x
// straggler on the acceptance-criteria 2-machine run: strictly faster than
// stealing disabled, with real stolen work on the books.
TEST(StealPolicyClusterTest, EveryModeBeatsNoStealingUnderStraggler) {
  InputGraph g = PrepareInput("pagerank", PolicyRunGraph());
  const auto without = RunJob(MakeJob("pagerank", g, PolicyRunConfig(2, 0.0, 4.0)));
  for (const StealMode mode :
       {StealMode::kStealOne, StealMode::kStealHalf, StealMode::kAdaptive}) {
    ClusterConfig cfg = PolicyRunConfig(2, 1.0, 4.0);
    cfg.steal.mode = mode;
    cfg.steal.backoff = true;
    cfg.steal.victim_check = true;
    const auto with = RunJob(MakeJob("pagerank", g, cfg));
    EXPECT_LT(with.metrics.total_time, without.metrics.total_time)
        << StealModeName(mode) << " failed to absorb the straggler";
    EXPECT_GT(TotalSteals(with.metrics), 0u) << StealModeName(mode);
    EXPECT_GT(with.metrics.StealProposalsSent(), 0u) << StealModeName(mode);
  }
}

// Same seed + same policy => identical simulated trace, for every mode and
// with the full policy runtime (backoff + victim_check + domains) on.
TEST(StealPolicyClusterTest, PolicyRunsAreDeterministic) {
  InputGraph g = PrepareInput("pagerank", PolicyRunGraph());
  for (const StealMode mode :
       {StealMode::kStealOne, StealMode::kStealHalf, StealMode::kAdaptive}) {
    auto run = [&] {
      ClusterConfig cfg = PolicyRunConfig(4, 1.0, 4.0);
      cfg.steal.mode = mode;
      cfg.steal.backoff = true;
      cfg.steal.victim_check = true;
      cfg.steal.steal_domain = 2;
      return RunJob(MakeJob("pagerank", g, cfg));
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.metrics.total_time, b.metrics.total_time) << StealModeName(mode);
    EXPECT_EQ(a.metrics.messages, b.metrics.messages) << StealModeName(mode);
    EXPECT_EQ(a.metrics.StealProposalsSent(), b.metrics.StealProposalsSent())
        << StealModeName(mode);
    EXPECT_EQ(a.metrics.PartitionsGranted(), b.metrics.PartitionsGranted())
        << StealModeName(mode);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (size_t v = 0; v < a.values.size(); ++v) {
      ASSERT_DOUBLE_EQ(a.values[v], b.values[v]) << StealModeName(mode);
    }
  }
}

// config steal_combine merges co-domain proposals queued back to back at a
// victim into one control-message CPU charge. The grant logic is untouched
// — every member still gets its own decision and reply — so results must
// match the uncombined run; the combined run is deterministic and, under
// the straggler-driven proposal storm, actually merges something.
TEST(StealPolicyClusterTest, ProposalCombiningKeepsResultsDeterministic) {
  InputGraph g = PrepareInput("pagerank", PolicyRunGraph());
  auto run = [&](bool combine) {
    ClusterConfig cfg = PolicyRunConfig(4, 1.0, 4.0);
    cfg.steal.steal_domain = 2;
    cfg.steal_combine = combine;
    return RunJob(MakeJob("pagerank", g, cfg));
  };
  const auto off = run(false);
  const auto on = run(true);
  const auto on2 = run(true);
  EXPECT_EQ(off.metrics.StealProposalsCombined(), 0u);  // default stays silent
  EXPECT_EQ(on.metrics.total_time, on2.metrics.total_time);
  EXPECT_EQ(on.metrics.StealProposalsCombined(), on2.metrics.StealProposalsCombined());
  ASSERT_EQ(on.values.size(), off.values.size());
  for (size_t v = 0; v < on.values.size(); ++v) {
    ASSERT_NEAR(on.values[v], off.values[v],
                1e-4 * std::max(1.0, std::abs(off.values[v])));
  }
}

// ------------------------------------------------------- large-N regressions

// Per-machine state must stay O(machines): the network keeps one link record
// per machine and the bus one mailbox per (machine, service) — never
// per-pair state. Counted at construction, so this can't flake on timing.
TEST(LargeClusterTest, NetworkAndBusAllocationsScaleLinearly) {
  auto count = [](int machines) {
    Simulator sim;
    Network net(&sim, machines, NetworkConfig::FortyGigE());
    MessageBus bus(&sim, &net);
    return std::pair<size_t, size_t>(net.link_count(), bus.inbox_count());
  };
  const auto [links32, inboxes32] = count(32);
  const auto [links128, inboxes128] = count(128);
  EXPECT_EQ(links32, 32u);
  EXPECT_EQ(links128, 128u);
  EXPECT_EQ(links128, 4u * links32);
  EXPECT_EQ(inboxes32, 32u * kNumServices);
  EXPECT_EQ(inboxes128, 4u * inboxes32);
}

// A 128-machine job under the full adaptive runtime completes, steals, and
// still computes the right answer (checked against the 1-machine run).
TEST(LargeClusterTest, AdaptiveRuntimeCompletesAt128Machines) {
  InputGraph g = PrepareInput("pagerank", PolicyRunGraph());
  const auto reference = RunJob(MakeJob("pagerank", g, PolicyRunConfig(1, 0.0, 1.0)));

  ClusterConfig cfg = PolicyRunConfig(128, 1.0, 1.0);
  // Straggler cluster in the fig21 shape: machines [0, 16) at quarter speed.
  for (int m = 0; m < 16; ++m) {
    cfg.faults.Add(FaultEvent{/*at=*/0, /*duration=*/0, /*machine=*/m,
                              FaultTarget::kCpu, /*factor=*/0.25});
  }
  cfg.steal.mode = StealMode::kAdaptive;
  cfg.steal.backoff = true;
  cfg.steal.victim_check = true;
  cfg.steal.steal_domain = 8;
  const auto big = RunJob(MakeJob("pagerank", g, cfg));

  EXPECT_FALSE(big.metrics.crashed);
  EXPECT_GT(big.metrics.supersteps, 0u);
  EXPECT_GT(TotalSteals(big.metrics), 0u);
  ASSERT_EQ(big.values.size(), reference.values.size());
  for (size_t v = 0; v < reference.values.size(); ++v) {
    ASSERT_NEAR(big.values[v], reference.values[v],
                1e-4 * std::max(1.0, std::abs(reference.values[v])));
  }
}

}  // namespace
}  // namespace chaos
