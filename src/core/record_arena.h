// Per-engine arena for record buffers and chunk payloads.
//
// The DES hot path used to regrow a std::vector<uint8_t> per partition in
// RecordBinner and make_shared a fresh payload per RecordBatch/Chunk; at
// paper-scale record counts that is one allocation (plus a growth memcpy)
// per chunk per partition per superstep. The arena designs that churn out:
//
//  * Blocks are pow2 size classes, recycled through freelists, so steady
//    state leases perform zero heap allocations
//    (tests/hotpath_alloc_test.cc pins this down).
//  * Every block is kAlign (64-byte, cache-line) aligned — strictly
//    stronger than the max_align_t alignment ChunkSpan<T> requires of
//    payloads, and enough for aligned SIMD loads over SoA edge arrays.
//  * Blocks may outlive the arena: the freelist state is shared
//    (shared_ptr), and chunk payload deleters hold a reference, so chunks
//    parked in a simulated StorageEngine stay valid after their producing
//    engine (and its arena) is destroyed. Returns after the arena's death
//    free directly instead of pooling.
//
// Host memory only: the arena is invisible to the simulation (BufferPool
// keeps modeling *simulated* memory; the two compose — pool leases account
// for bytes whose backing store happens to be arena blocks).
//
// Thread model: an arena belongs to one cluster, and a cluster runs on one
// SweepExecutor thread, but freelist ops take a mutex anyway so host-side
// importers (recovery) can safely release blocks from another job's thread.
#ifndef CHAOS_CORE_RECORD_ARENA_H_
#define CHAOS_CORE_RECORD_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "util/common.h"

namespace chaos {

class RecordArena {
  // Freelist state, shared with every outstanding block/payload deleter so
  // blocks may outlive the arena (returns after close free directly).
  struct State;

 public:
  static constexpr uint64_t kAlign = 64;
  static constexpr uint64_t kMinBlockBytes = 1ull << 12;  // 4 KiB
  static constexpr uint64_t kMaxBlockBytes = 1ull << 26;  // 64 MiB
  static_assert(kAlign >= alignof(std::max_align_t));

  // A leased block (move-only). Returns itself to the arena on destruction.
  class Block {
   public:
    Block() = default;
    Block(Block&& o) noexcept
        : data_(std::exchange(o.data_, nullptr)),
          capacity_(std::exchange(o.capacity_, 0)),
          state_(std::move(o.state_)) {}
    Block& operator=(Block&& o) noexcept {
      if (this != &o) {
        Release();
        data_ = std::exchange(o.data_, nullptr);
        capacity_ = std::exchange(o.capacity_, 0);
        state_ = std::move(o.state_);
      }
      return *this;
    }
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;
    ~Block() { Release(); }

    uint8_t* data() const { return data_; }
    uint64_t capacity() const { return capacity_; }
    explicit operator bool() const { return data_ != nullptr; }

    // Converts the block into a shared payload (for Chunk::data /
    // RecordBatch). The one control-block allocation here is per *chunk*,
    // never per record; the deleter keeps the freelist state alive so the
    // payload may outlive the arena.
    std::shared_ptr<uint8_t> ToShared() && {
      std::shared_ptr<State> state = std::move(state_);
      const uint64_t cap = std::exchange(capacity_, 0);
      uint8_t* p = std::exchange(data_, nullptr);
      return std::shared_ptr<uint8_t>(
          p, [state, cap](uint8_t* ptr) { State::Return(state.get(), ptr, cap); });
    }

   private:
    friend class RecordArena;
    Block(uint8_t* data, uint64_t capacity, std::shared_ptr<State> state)
        : data_(data), capacity_(capacity), state_(std::move(state)) {}
    void Release() {
      if (data_ != nullptr) {
        State::Return(state_.get(), data_, capacity_);
        data_ = nullptr;
      }
    }

    uint8_t* data_ = nullptr;
    uint64_t capacity_ = 0;
    std::shared_ptr<State> state_;
  };

  RecordArena() : state_(std::make_shared<State>()) {}
  RecordArena(const RecordArena&) = delete;
  RecordArena& operator=(const RecordArena&) = delete;
  ~RecordArena() {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closed = true;
    state_->FreeAllLocked();
  }

  // Leases a block of at least `bytes` capacity (pow2 size class, 64-byte
  // aligned). Freelist hit: zero heap allocations. Contents are
  // uninitialized (possibly recycled — callers zero if they need zeros).
  Block Lease(uint64_t bytes) {
    const uint64_t cap = ClassBytes(bytes);
    State* s = state_.get();
    {
      std::lock_guard<std::mutex> lock(s->mu);
      const int cls = ClassIndex(cap);
      if (cls >= 0 && !s->free[cls].empty()) {
        uint8_t* p = s->free[cls].back();
        s->free[cls].pop_back();
        ++s->recycled;
        return Block(p, cap, state_);
      }
    }
    uint8_t* p = NewBlock(cap);
    ++s->allocated;  // stats only; single writer
    return Block(p, cap, state_);
  }

  // Lease + hand off as a shared payload in one step.
  std::shared_ptr<uint8_t> LeaseShared(uint64_t bytes) { return Lease(bytes).ToShared(); }

  uint64_t blocks_allocated() const { return state_->allocated; }
  uint64_t blocks_recycled() const { return state_->recycled; }

 private:
  struct State {
    // Freelists per pow2 class: index i holds blocks of kMinBlockBytes<<i.
    static constexpr int kNumClasses = 15;  // 4 KiB .. 64 MiB
    std::mutex mu;
    std::vector<uint8_t*> free[kNumClasses];
    bool closed = false;
    uint64_t allocated = 0;
    uint64_t recycled = 0;

    ~State() {
      std::lock_guard<std::mutex> lock(mu);
      FreeAllLocked();
    }
    void FreeAllLocked() {
      for (auto& list : free) {
        for (uint8_t* p : list) {
          DeleteBlock(p);
        }
        list.clear();
      }
    }
    static void Return(State* s, uint8_t* p, uint64_t capacity) {
      const int cls = ClassIndex(capacity);
      if (s != nullptr && cls >= 0) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (!s->closed) {
          s->free[cls].push_back(p);
          return;
        }
      }
      DeleteBlock(p);
    }
  };

  // Smallest pow2 class covering `bytes`; oversize requests (> 64 MiB) get
  // an exact-size unpooled block.
  static uint64_t ClassBytes(uint64_t bytes) {
    if (bytes > kMaxBlockBytes) {
      return bytes;
    }
    uint64_t cap = kMinBlockBytes;
    while (cap < bytes) {
      cap <<= 1;
    }
    return cap;
  }
  static int ClassIndex(uint64_t capacity) {
    if (capacity < kMinBlockBytes || capacity > kMaxBlockBytes ||
        (capacity & (capacity - 1)) != 0) {
      return -1;  // unpooled
    }
    int idx = 0;
    uint64_t c = kMinBlockBytes;
    while (c < capacity) {
      c <<= 1;
      ++idx;
    }
    return idx;
  }

  static uint8_t* NewBlock(uint64_t bytes) {
    return static_cast<uint8_t*>(::operator new(bytes, std::align_val_t{kAlign}));
  }
  static void DeleteBlock(uint8_t* p) { ::operator delete(p, std::align_val_t{kAlign}); }

  std::shared_ptr<State> state_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_RECORD_ARENA_H_
