// Synthetic graph generators.
//
//  * RmatGenerator — the paper's RMAT graphs (Chakrabarti et al. [9]):
//    a scale-n graph has 2^n vertices and 2^(n+4) edges (16 edges/vertex).
//  * WebGraphGenerator — substitute for the Data Commons 2014 hyperlink
//    graph used in §9.2/§9.3: host-clustered power-law web topology.
//  * GridGraphGenerator — road-network-like 2D grid (low degree, large
//    diameter), used by the SSSP example.
#ifndef CHAOS_GRAPH_GENERATORS_H_
#define CHAOS_GRAPH_GENERATORS_H_

#include <cstdint>
#include <functional>

#include "graph/types.h"
#include "util/rng.h"

namespace chaos {

struct RmatOptions {
  uint32_t scale = 16;          // 2^scale vertices
  uint32_t edges_per_vertex = 16;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool weighted = false;
  // Randomly permute vertex ids so that degree is not correlated with id.
  // The paper's inputs are unsorted edge lists over arbitrary ids; keeping
  // the raw recursive ids (permute=false) concentrates heavy vertices at low
  // ids, which is useful for skew experiments.
  bool permute_ids = true;
  uint64_t seed = 1;
};

InputGraph GenerateRmat(const RmatOptions& options);

// Streams the exact edge sequence GenerateRmat(options) produces — same RNG
// consumption, same permutation, bit-identical edges (pinned by
// tests/graph_test.cc) — in batches of at most `batch_edges`, without ever
// materializing the full edge list. This is what lets bench_fig_scale
// ingest paper-scale graphs (>= 100M edges in CI, >= 1B locally) with host
// memory bounded by one batch plus the simulated chunks. The sink returns
// whether to keep generating; returning false stops after the current
// batch (used to sample a prefix without paying for the full stream).
void StreamRmat(const RmatOptions& options, uint64_t batch_edges,
                const std::function<bool(const std::vector<Edge>&)>& sink);

struct WebGraphOptions {
  uint64_t num_pages = 1 << 16;
  double mean_out_degree = 20.0;
  double intra_host_fraction = 0.8;  // links staying within a host
  uint64_t num_hosts = 1 << 8;
  double host_zipf_exponent = 1.2;   // host popularity skew
  double page_zipf_exponent = 1.1;   // target-page popularity skew within host
  bool weighted = false;
  uint64_t seed = 1;
};

InputGraph GenerateWebGraph(const WebGraphOptions& options);

struct GridGraphOptions {
  uint32_t width = 256;
  uint32_t height = 256;
  bool weighted = true;   // road lengths
  double max_weight = 10.0;
  uint64_t seed = 1;
};

// 4-connected grid; produces directed edges in both directions per road.
InputGraph GenerateGridGraph(const GridGraphOptions& options);

// Uniform random (Erdos-Renyi style) directed multigraph; handy for tests.
InputGraph GenerateUniformRandom(uint64_t num_vertices, uint64_t num_edges, bool weighted,
                                 uint64_t seed);

}  // namespace chaos

#endif  // CHAOS_GRAPH_GENERATORS_H_
