#include "graph/edge_list_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <algorithm>
#include <sstream>

namespace chaos {
namespace {

constexpr char kMagic[8] = {'C', 'H', 'A', 'O', 'S', 'E', 'L', '1'};

struct BinaryHeader {
  char magic[8];
  uint64_t num_vertices;
  uint64_t num_edges;
  uint8_t weighted;
  uint8_t compact;
  uint8_t reserved[6];
};
static_assert(sizeof(BinaryHeader) == 32);

template <typename T>
void Put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == sizeof(T);
}

}  // namespace

bool SaveEdgeListBinary(const InputGraph& graph, const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_vertices = graph.num_vertices;
  header.num_edges = graph.num_edges();
  header.weighted = graph.weighted ? 1 : 0;
  header.compact = graph.compact() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const Edge& e : graph.edges) {
    if (header.compact) {
      Put(out, static_cast<uint32_t>(e.src));
      Put(out, static_cast<uint32_t>(e.dst));
    } else {
      Put(out, static_cast<uint64_t>(e.src));
      Put(out, static_cast<uint64_t>(e.dst));
    }
    if (header.weighted) {
      Put(out, e.weight);
    }
  }
  out.close();
  if (!out.good()) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  return true;
}

std::optional<InputGraph> LoadEdgeListBinary(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  BinaryHeader header{};
  if (!Get(in, &header) || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    if (error != nullptr) {
      *error = path + " is not a Chaos edge-list file";
    }
    return std::nullopt;
  }
  InputGraph graph;
  graph.num_vertices = header.num_vertices;
  graph.weighted = header.weighted != 0;
  graph.edges.reserve(header.num_edges);
  for (uint64_t i = 0; i < header.num_edges; ++i) {
    Edge e;
    bool ok;
    if (header.compact) {
      uint32_t src;
      uint32_t dst;
      ok = Get(in, &src) && Get(in, &dst);
      e.src = src;
      e.dst = dst;
    } else {
      ok = Get(in, &e.src) && Get(in, &e.dst);
    }
    if (ok && header.weighted) {
      ok = Get(in, &e.weight);
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "truncated edge record " + std::to_string(i) + " in " + path;
      }
      return std::nullopt;
    }
    graph.edges.push_back(e);
  }
  std::string validation;
  if (!ValidateGraph(graph, &validation)) {
    if (error != nullptr) {
      *error = path + ": " + validation;
    }
    return std::nullopt;
  }
  return graph;
}

bool SaveEdgeListText(const InputGraph& graph, const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  out << "# chaos edge list: " << graph.num_vertices << " vertices, " << graph.num_edges()
      << " edges\n";
  for (const Edge& e : graph.edges) {
    out << e.src << ' ' << e.dst;
    if (graph.weighted) {
      out << ' ' << e.weight;
    }
    out << '\n';
  }
  out.close();
  if (!out.good()) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  return true;
}

std::optional<InputGraph> LoadEdgeListText(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  InputGraph graph;
  VertexId max_id = 0;
  bool any_edge = false;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream fields(line);
    Edge e;
    if (!(fields >> e.src >> e.dst)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": expected 'src dst [weight]'";
      }
      return std::nullopt;
    }
    float weight;
    if (fields >> weight) {
      e.weight = weight;
      graph.weighted = true;
    }
    max_id = std::max({max_id, e.src, e.dst});
    any_edge = true;
    graph.edges.push_back(e);
  }
  graph.num_vertices = any_edge ? max_id + 1 : 0;
  return graph;
}

}  // namespace chaos
