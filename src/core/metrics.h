// Run metrics: the per-machine time breakdown of Fig. 17/18 plus storage and
// network accounting used by Figs. 7-16.
#ifndef CHAOS_CORE_METRICS_H_
#define CHAOS_CORE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/time.h"

namespace chaos {

// Buckets of Fig. 17: graph processing on own/stolen partitions, stolen
// vertex-set copying, accumulator merging, waits on the accumulator
// handshake, and barrier waits. Pre-processing and checkpointing are kept
// separate so the paper's per-figure accounting can be recomputed.
enum class Bucket : int {
  kGpMaster = 0,   // streaming + compute, partitions this machine masters
  kGpSteal = 1,    // streaming + compute, stolen partitions
  kCopy = 2,       // vertex-set load for stolen partitions
  kMerge = 3,      // merging replica accumulators (master side, CPU)
  kMergeWait = 4,  // waiting on the accumulator pull handshake (both sides)
  kBarrier = 5,    // waiting at global barriers
  kPreprocess = 6, // streaming partition creation + vertex init
  kCheckpoint = 7, // 2-phase checkpoint writes
  kMutate = 8,     // evolving graphs: apply-mutations stage (re-bin + reseed)
  kNumBuckets = 9,
};

const char* BucketName(Bucket b);

struct MachineMetrics {
  std::array<TimeNs, static_cast<size_t>(Bucket::kNumBuckets)> buckets{};
  uint64_t edges_processed = 0;
  uint64_t updates_processed = 0;
  uint64_t updates_emitted = 0;
  uint64_t chunks_fetched = 0;
  uint64_t steal_proposals_sent = 0;
  uint64_t steals_worked = 0;       // stolen partition work items executed
  uint64_t proposals_received = 0;  // as master
  uint64_t proposals_accepted = 0;  // as master (granted >= 1 partition)
  // Steal-policy accounting (core/steal_policy.h).
  uint64_t steal_requests_declined = 0;  // as helper: responses granting nothing
  uint64_t victim_misses = 0;       // as helper: victim reported no open work
  uint64_t steal_backoffs = 0;      // as helper: dry-sweep backoff waits taken
  TimeNs steal_backoff_time = 0;    // as helper: sim time parked in backoff
  uint64_t partitions_granted = 0;  // as master: partitions handed to helpers
  uint64_t stolen_chunks = 0;       // as helper: chunks streamed on stolen partitions
  // Update-plane combining (config wire_combine / steal_combine).
  uint64_t update_wire_bytes_saved = 0;  // verbatim - packed, outbound updates
  uint64_t update_chunks_packed = 0;     // outbound update chunks re-encoded
  uint64_t steal_proposals_combined = 0; // as victim: MessageTime charges merged away

  TimeNs bucket(Bucket b) const { return buckets[static_cast<size_t>(b)]; }
  void Add(Bucket b, TimeNs t) { buckets[static_cast<size_t>(b)] += t; }
  TimeNs TotalTracked() const;
};

struct DeviceMetrics {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  TimeNs busy = 0;
  uint64_t chunks_served = 0;
};

// Per-machine buffer-pool accounting (core/buffer_pool.h): the enforced
// memory budget, the high-water mark of allocated buffer bytes, and the
// spill traffic memory pressure generated on the machine's storage device.
struct PoolMetrics {
  uint64_t budget_bytes = 0;  // 0 = enforcement off (accounting only)
  // High-water mark of RESIDENT buffer bytes — what RAM actually held,
  // sampled after admission control, so never above an enforced budget.
  // With enforcement off nothing evicts and this is the true peak working
  // set (what fig_memory's unconstrained baseline measures as B0).
  uint64_t peak_bytes = 0;
  uint64_t spill_out_bytes = 0;  // pages evicted to the device
  uint64_t spill_in_bytes = 0;   // pages faulted back from the device
  uint64_t spill_events = 0;     // eviction batches
  uint64_t acquires = 0;         // buffer admissions
  TimeNs stall_time = 0;         // sim time spent waiting on spill I/O
};

// One applied mutation epoch of an evolving run (engine_core.cc,
// ApplyMutationStage): when it ran, what it changed, and how much
// re-convergence work the incremental seeds left behind.
struct MutationEpochRecord {
  uint64_t epoch = 0;          // 0-based index into the MutationLog
  uint64_t superstep = 0;      // superstep whose barrier applied the batch
  TimeNs start_time = 0;       // coordinator-side stage entry
  TimeNs end_time = 0;         // coordinator-side stage exit (0 = aborted)
  uint64_t edges_inserted = 0;  // raw-graph inserts in the batch
  uint64_t edges_deleted = 0;   // raw-graph deletes in the batch
  uint64_t frontier = 0;        // seed states re-marked changed
  uint64_t resets = 0;          // seed states reset to their init value
};

struct RunMetrics {
  TimeNs total_time = 0;
  TimeNs preprocess_time = 0;  // up to the start of the first scatter
  uint64_t supersteps = 0;
  std::vector<MachineMetrics> machines;
  std::vector<DeviceMetrics> devices;
  std::vector<PoolMetrics> pools;  // per-machine memory accounting
  uint64_t network_bytes = 0;
  uint64_t incast_events = 0;
  uint64_t messages = 0;
  bool crashed = false;
  // Injected degradation events as they played out (empty = healthy run).
  std::vector<FaultRecord> faults;
  // Coordinator-side sim time at the end of each completed superstep,
  // indexed from the first superstep this run executed (resumed runs start
  // at their resume superstep). Backs the time-to-recover measurement.
  std::vector<TimeNs> superstep_end_times;
  // Machine-failure recovery accounting, filled by RunWithRecovery
  // (core/recovery.h) on the metrics of the completed replacement run; all
  // zero for runs that never failed.
  bool recovered = false;
  uint64_t lost_work_supersteps = 0;  // supersteps re-run after the restart
  TimeNs time_to_recover = 0;   // takeover -> point of failure re-reached
  TimeNs crashed_run_time = 0;  // sim time spent in the aborted run
  // Evolving-graph accounting: one record per mutation epoch applied by
  // this run, in application order (empty for static runs).
  std::vector<MutationEpochRecord> mutation_epochs;

  double total_seconds() const { return ToSeconds(total_time); }

  // Total device traffic: chunk reads/writes plus buffer-pool spill.
  uint64_t StorageBytesMoved() const;
  // Memory-pressure spill traffic alone (both directions, all machines).
  uint64_t SpillBytesMoved() const;
  // Max over machines of the pool's high-water mark of resident buffer
  // bytes (see PoolMetrics::peak_bytes).
  uint64_t PeakMemoryBytes() const;
  // Aggregate storage bandwidth over the run (Fig. 14).
  double AggregateStorageBandwidth() const;
  // Mean device utilization = busy / total, averaged over devices.
  double MeanDeviceUtilization() const;
  // Max over machines of a bucket (load-balance overhead views, Fig. 20).
  TimeNs MaxBucket(Bucket b) const;
  TimeNs SumBucket(Bucket b) const;
  // Fraction of summed machine time in a bucket (Fig. 17 bars).
  double BucketFraction(Bucket b) const;
  // Steals of the victim's partitions while the fault was active (difference
  // of the probe samples; for still-active faults, up to the end of the run).
  uint64_t StealsDuringFault(const FaultRecord& r) const;

  // Durations of each completed superstep (from superstep_end_times; the
  // first superstep starts when pre-processing ends). Coordinator-side, so
  // present on every finished run.
  std::vector<TimeNs> SuperstepDurations() const;
  // Tail quantile of the superstep durations (q in (0, 1]; q = 0.99 is the
  // p99 the fig21 large-N gate compares). Nearest-rank on the sorted
  // durations — deterministic, no interpolation.
  TimeNs SuperstepTail(double q) const;
  // Steal-policy aggregates over machines.
  uint64_t StealProposalsSent() const;
  uint64_t StealRequestsDeclined() const;
  uint64_t StealBackoffs() const;
  uint64_t PartitionsGranted() const;
  uint64_t StolenChunks() const;
  // Update-plane combining aggregates over machines.
  uint64_t UpdateWireBytesSaved() const;
  uint64_t UpdateChunksPacked() const;
  uint64_t StealProposalsCombined() const;
  // Fraction of proposals that hit a victim with no open work.
  double VictimMissRate() const;
  // Evolving-graph aggregates over mutation_epochs.
  uint64_t MutationEdgesApplied() const;  // inserts + deletes, all epochs
  uint64_t MutationFrontierTotal() const;
  uint64_t MutationResetsTotal() const;

  std::string Summary() const;
};

}  // namespace chaos

#endif  // CHAOS_CORE_METRICS_H_
