// The unit of work the serving layer schedules: one algorithm over one
// prepared graph on one cluster configuration, plus the scheduling metadata
// (priority, arrival time, preemptibility) the job scheduler consumes.
//
// JobSpec is the single config path shared by every entry point: the
// single-job RunJob() API (algorithms/runner.h), the chaos_run CLI (both its
// per-flag single-job mode and its --trace multi-job mode), and the
// job scheduler's admission queue (core/job_scheduler.h). This header also
// owns the algorithm-agnostic result/report vocabulary those layers share —
// AlgoParams/AlgoResult (formerly algorithms/runner.h) and
// RecoveryOptions/RecoveryReport (formerly core/recovery.h) — so core code
// can name them without depending on the algorithms layer.
#ifndef CHAOS_CORE_JOB_SPEC_H_
#define CHAOS_CORE_JOB_SPEC_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "graph/mutation_log.h"
#include "graph/types.h"

namespace chaos {

// Per-algorithm knobs; unused fields are ignored.
struct AlgoParams {
  VertexId source = 0;      // bfs, sssp
  uint32_t iterations = 5;  // pagerank, bp
  float damping = 0.85f;    // pagerank
  float bp_damping = 0.5f;  // bp
};

struct AlgoResult {
  RunMetrics metrics;
  std::vector<double> values;  // Extract() per vertex
  double scalar = 0.0;         // conductance value / MSF total weight
  uint64_t output_records = 0; // MSF edges emitted
  uint64_t supersteps = 0;
  bool crashed = false;
};

struct RecoveryOptions {
  // Replacement cluster size after a crash: 0 = same as the original
  // (the failed machine is swapped for a spare); otherwise the new machine
  // count, e.g. machines - 1 when the survivors absorb the work. Rescaled
  // recovery repartitions vertex ranges and re-bins edge sets.
  int replacement_machines = 0;
};

// How a recovered run unfolded, for reporting and benches. Times are
// simulated cluster times.
struct RecoveryReport {
  bool crash_detected = false;
  bool recovered_from_checkpoint = false;  // false: restarted from the input
  uint64_t crash_superstep = 0;            // superstep the failure aborted
  uint64_t resume_superstep = 0;           // checkpoint the restart used
  uint64_t lost_work_supersteps = 0;       // supersteps that had to be re-run
  TimeNs crashed_run_time = 0;   // sim time spent in the aborted run
  TimeNs time_to_recover = 0;    // takeover until the crash point re-reached
  TimeNs end_to_end_time = 0;    // aborted run + full replacement run
  int machines_after = 0;        // replacement cluster size
};

// Evolving-graph schedule (graph/mutation_log.h): when active, the job runs
// `log.num_batches` mutation epochs — each convergence applies the next
// seeded batch at the barrier and the run re-converges — and the final
// values are the fixed point of the fully mutated graph.
struct MutationSchedule {
  MutationLogOptions log;  // log.num_batches == 0 -> static (inactive)
  // Warm-start from the converged states via the incremental seeders
  // (algorithms/incremental.h); false = full-recompute baseline (fresh
  // InitVertex seeds every epoch, identical mutation-apply cost).
  bool incremental = true;
  // Arc budget for the per-deleted-edge WCC connectivity probe (planning is
  // host-side, so the default probes exhaustively — one traversal per arc).
  // A nonzero bound caps each probe; "don't know" then resets the whole
  // component, trading recompute work for probe work.
  uint64_t wcc_connectivity_budget = 0;

  bool active() const { return log.num_batches > 0; }
};

// One job: everything needed to run an algorithm on a cluster, plus the
// metadata the scheduler uses to place it.
struct JobSpec {
  // Algorithm name (algorithms/runner.h Algorithms() registry).
  std::string algorithm;
  // The prepared input (already through PrepareInput for `algorithm`).
  // Shared so a trace of jobs over the same graph holds one copy.
  // EXCEPTION: with mutations.active(), `input` must be the RAW graph —
  // the evolving driver prepares it per epoch (the mutation log mutates
  // raw edges, not prepared arcs).
  std::shared_ptr<const InputGraph> input;
  // Per-job cluster shape: machine count, memory budget, seed, knobs.
  // `cluster.machines` is the number of machines the scheduler reserves;
  // `cluster.EffectivePoolBudget()` is the admission-control footprint.
  ClusterConfig cluster;
  AlgoParams params;

  // Single-job mode only: run under the machine-failure recovery driver
  // (core/recovery.h). Scheduled (trace) jobs must leave this false and
  // `cluster.faults` empty — the scheduler owns the preemption machinery.
  bool recover = false;
  RecoveryOptions recovery;

  // Evolving graphs: only bfs/sssp/wcc support mutation schedules.
  MutationSchedule mutations;

  // Scheduling metadata, ignored by single-job RunJob().
  std::string name;        // label for traces and reports
  int priority = 0;        // larger = more urgent
  TimeNs arrival = 0;      // serving-cluster submission time
  bool preemptible = true; // may be stopped at a superstep barrier
};

// Convenience builders for the common "run this algorithm on this graph with
// this config" call. The shared_ptr overload shares ownership; the reference
// overload borrows — the caller's graph must outlive every use of the spec
// (fine for the typical RunJob(MakeJob(...)) call, wrong for specs stored in
// a long-lived trace: use the owning overload there).
inline JobSpec MakeJob(std::string algorithm, std::shared_ptr<const InputGraph> prepared,
                       ClusterConfig cluster, AlgoParams params = {}) {
  JobSpec spec;
  spec.algorithm = std::move(algorithm);
  spec.input = std::move(prepared);
  spec.cluster = std::move(cluster);
  spec.params = params;
  return spec;
}

inline JobSpec MakeJob(std::string algorithm, const InputGraph& prepared, ClusterConfig cluster,
                       AlgoParams params = {}) {
  // Aliasing constructor with an empty owner: non-owning view of `prepared`.
  return MakeJob(std::move(algorithm),
                 std::shared_ptr<const InputGraph>(std::shared_ptr<const InputGraph>{}, &prepared),
                 std::move(cluster), params);
}

// Accounting for one scheduler slice of a job (job_execution.h).
struct SliceResult {
  bool completed = false;       // the job finished inside this slice
  TimeNs slice_time = 0;        // sim time the slice occupied its machines
  uint64_t start_superstep = 0; // absolute superstep the slice resumed at
  uint64_t end_superstep = 0;   // resume point after preemption, or the
                                // final superstep count on completion
};

// Type-erased handle on one job's execution state across preemption slices.
// Concrete instances are TypedJobExecution<P> (core/job_execution.h),
// built by MakeJobExecution (algorithms/runner.h) which injects the
// program type and the RunResult<P> -> AlgoResult finalizer.
class JobExecution {
 public:
  virtual ~JobExecution() = default;

  JobExecution(const JobExecution&) = delete;
  JobExecution& operator=(const JobExecution&) = delete;

  const JobSpec& spec() const { return spec_; }

  // First superstep the next slice will execute (0 before the first slice;
  // the committed checkpoint superstep after a preemption).
  virtual uint64_t next_superstep() const = 0;

  // Runs the job from its current resume point until it completes or until
  // the scripted preemption point `stop_after_superstep` (an absolute
  // superstep index, > next_superstep(); < 0 = run to completion). A
  // preempted slice commits a checkpoint at stop_after_superstep so the next
  // slice resumes with zero completed supersteps lost.
  virtual SliceResult RunSlice(int64_t stop_after_superstep) = 0;

  // After a slice returned completed = true: the finished result.
  virtual AlgoResult TakeResult() = 0;

 protected:
  explicit JobExecution(JobSpec spec) : spec_(std::move(spec)) {}

  JobSpec spec_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_JOB_SPEC_H_
