// Figure 18: work-stealing bias sweep. alpha scales the steal criterion
// V + D/(H+1) < alpha * D/H: 0 = no stealing, 1 = Chaos default, infinity =
// always steal. Runtime normalized to alpha = 1, with the Fig. 17 breakdown
// per configuration. Paper: alpha = 1 is fastest.
#include <limits>

#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig18, "Figure 18: work-stealing bias (alpha) sweep") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const double kInf = std::numeric_limits<double>::infinity();
  const std::vector<std::string> algos = {"bfs", "pagerank"};
  const std::vector<double> alphas = {0.0, 0.8, 1.0, 1.2, kInf};

  // Points: (algorithm x alpha). The alpha = 1 point doubles as each
  // algorithm's normalization baseline (runs are deterministic, so reusing
  // it instead of re-running is exact).
  Sweep<AlgoResult> sweep;
  for (const std::string& name : algos) {
    // Unpermuted RMAT concentrates load in low partitions: stealing matters.
    RmatOptions gopt;
    gopt.scale = scale;
    gopt.permute_ids = false;
    gopt.seed = seed;
    auto prepared = std::make_shared<InputGraph>(PrepareInput(name, GenerateRmat(gopt)));
    for (const double alpha : alphas) {
      sweep.Add([name, prepared, machines, seed, alpha] {
        ClusterConfig cfg = BenchClusterConfig(*prepared, machines, seed);
        cfg.alpha = alpha;
        return RunJob(MakeJob(name, *prepared, cfg));
      });
    }
  }
  const std::vector<AlgoResult> results = sweep.Run();

  std::printf("== Figure 18: stealing bias alpha (RMAT-%u, m=%d), normalized to alpha=1 ==\n",
              scale, machines);
  PrintHeader({"algo/alpha", "runtime", "gp,own", "gp,stolen", "copy", "merge-wait",
               "barrier"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    const size_t row_start = idx;
    double at_one = 0.0;
    for (const double alpha : alphas) {
      if (alpha == 1.0) {
        at_one = results[idx].metrics.total_seconds();
      }
      ++idx;
    }
    size_t col = row_start;
    for (const double alpha : alphas) {
      const AlgoResult& result = results[col++];
      const double seconds = result.metrics.total_seconds();
      char label[64];
      std::snprintf(label, sizeof(label), "%s a=%s", name.c_str(),
                    alpha == kInf ? "inf" : Fixed(alpha, 1).c_str());
      PrintCell(label);
      PrintCell(at_one > 0 ? seconds / at_one : seconds, "%.3f");
      for (const Bucket b : {Bucket::kGpMaster, Bucket::kGpSteal, Bucket::kCopy,
                             Bucket::kMergeWait, Bucket::kBarrier}) {
        PrintCell(100.0 * result.metrics.BucketFraction(b), "%.1f%%");
      }
      EndRow();
      RecordMetric("fig18." + name + ".alpha_" +
                       (alpha == kInf ? std::string("inf") : Fixed(alpha, 1)) + ".sim_s",
                   seconds);
    }
  }
  std::printf("\nnote: runtimes are normalized to each algorithm's alpha=1 run\n");
  std::printf("paper: alpha=1 is fastest; alpha=0 shows large barrier time (imbalance)\n");
  return 0;
}
