#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/common.h"

namespace chaos {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  CHAOS_CHECK(!bounds_.empty());
  CHAOS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<size_t>(it - bounds_.begin())]++;
  ++total_;
}

uint64_t Histogram::BucketCount(size_t i) const {
  CHAOS_CHECK_LT(i, counts_.size());
  return counts_[i];
}

double Histogram::Quantile(double q) const {
  CHAOS_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : bounds_.back() * 2.0;
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i < bounds_.size()) {
      std::snprintf(line, sizeof(line), "<=%g: %llu\n", bounds_[i],
                    static_cast<unsigned long long>(counts_[i]));
    } else {
      std::snprintf(line, sizeof(line), ">%g: %llu\n", bounds_.back(),
                    static_cast<unsigned long long>(counts_[i]));
    }
    out += line;
  }
  return out;
}

double ExactQuantile(std::vector<double> samples, double q) {
  CHAOS_CHECK(!samples.empty());
  CHAOS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(units) / sizeof(units[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, units[unit]);
  }
  return buffer;
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 1e-6) {
    std::snprintf(buffer, sizeof(buffer), "%.0f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f h", seconds / 3600.0);
  }
  return buffer;
}

std::string FormatBandwidth(double bytes_per_second) {
  char buffer[64];
  if (bytes_per_second >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GB/s", bytes_per_second / 1e9);
  } else if (bytes_per_second >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MB/s", bytes_per_second / 1e6);
  } else if (bytes_per_second >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KB/s", bytes_per_second / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f B/s", bytes_per_second);
  }
  return buffer;
}

}  // namespace chaos
