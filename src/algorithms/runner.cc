#include "algorithms/runner.h"

#include "algorithms/basic.h"
#include "algorithms/mcst.h"
#include "algorithms/mis.h"
#include "algorithms/scc.h"

namespace chaos {
namespace {

template <GasProgram P>
AlgoResult RunChaosWith(P prog, const InputGraph& input, const ClusterConfig& config) {
  Cluster<P> cluster(config, std::move(prog));
  RunResult<P> run = cluster.Run(input);
  AlgoResult result;
  result.metrics = std::move(run.metrics);
  result.values = std::move(run.values);
  result.supersteps = run.supersteps;
  result.crashed = run.crashed;
  result.output_records = run.outputs.size();
  if constexpr (std::is_same_v<P, ConductanceProgram>) {
    result.scalar = run.final_global.conductance;
  }
  if constexpr (std::is_same_v<P, McstProgram>) {
    double total = 0.0;
    for (const auto& edge : run.outputs) {
      total += static_cast<double>(edge.w);
    }
    result.scalar = total;
  }
  return result;
}

template <GasProgram P>
XStreamRunResult RunXStreamWith(P prog, const InputGraph& input, const XStreamConfig& config) {
  XStreamEngine<P> engine(config, std::move(prog));
  XStreamResult<P> run = engine.Run(input);
  XStreamRunResult result;
  result.values = std::move(run.values);
  result.supersteps = run.supersteps;
  result.total_time = run.total_time;
  result.preprocess_time = run.preprocess_time;
  result.bytes_moved = run.bytes_read + run.bytes_written;
  result.output_records = run.outputs.size();
  if constexpr (std::is_same_v<P, ConductanceProgram>) {
    result.scalar = run.final_global.conductance;
  }
  if constexpr (std::is_same_v<P, McstProgram>) {
    double total = 0.0;
    for (const auto& edge : run.outputs) {
      total += static_cast<double>(edge.w);
    }
    result.scalar = total;
  }
  return result;
}

}  // namespace

const std::vector<AlgorithmInfo>& Algorithms() {
  // Table 1 order: BFS, WCC, MCST, MIS, SSSP on undirected inputs; SCC, PR,
  // Cond, SpMV, BP on directed inputs (SCC additionally needs reverse
  // records for its backward phase).
  static const std::vector<AlgorithmInfo> kAlgorithms = {
      {"bfs", true, false, false},  {"wcc", true, false, false},
      {"mcst", true, false, true},  {"mis", true, false, false},
      {"sssp", true, false, true},  {"pagerank", false, false, false},
      {"scc", false, true, false},  {"conductance", false, false, false},
      {"spmv", false, false, false}, {"bp", false, false, false},
  };
  return kAlgorithms;
}

const AlgorithmInfo& AlgorithmByName(const std::string& name) {
  for (const AlgorithmInfo& info : Algorithms()) {
    if (info.name == name) {
      return info;
    }
  }
  CHAOS_CHECK_MSG(false, "unknown algorithm: " + name);
  return Algorithms().front();
}

InputGraph PrepareInput(const std::string& name, const InputGraph& raw) {
  const AlgorithmInfo& info = AlgorithmByName(name);
  if (info.needs_undirected) {
    return MakeUndirected(raw);
  }
  if (info.needs_bidirected) {
    return MakeBidirected(raw);
  }
  return raw;
}

AlgoResult RunChaosAlgorithm(const std::string& name, const InputGraph& prepared,
                             const ClusterConfig& config, const AlgoParams& params) {
  if (name == "bfs") {
    return RunChaosWith(BfsProgram(params.source), prepared, config);
  }
  if (name == "wcc") {
    return RunChaosWith(WccProgram{}, prepared, config);
  }
  if (name == "mcst") {
    return RunChaosWith(McstProgram{}, prepared, config);
  }
  if (name == "mis") {
    return RunChaosWith(MisProgram{}, prepared, config);
  }
  if (name == "sssp") {
    return RunChaosWith(SsspProgram(params.source), prepared, config);
  }
  if (name == "pagerank") {
    return RunChaosWith(PageRankProgram(params.iterations, params.damping), prepared, config);
  }
  if (name == "scc") {
    return RunChaosWith(SccProgram{}, prepared, config);
  }
  if (name == "conductance") {
    return RunChaosWith(ConductanceProgram{}, prepared, config);
  }
  if (name == "spmv") {
    return RunChaosWith(SpmvProgram{}, prepared, config);
  }
  if (name == "bp") {
    return RunChaosWith(BpProgram(params.iterations, params.bp_damping), prepared, config);
  }
  CHAOS_CHECK_MSG(false, "unknown algorithm: " + name);
  return {};
}

XStreamRunResult RunXStreamAlgorithm(const std::string& name, const InputGraph& prepared,
                                     const XStreamConfig& config, const AlgoParams& params) {
  if (name == "bfs") {
    return RunXStreamWith(BfsProgram(params.source), prepared, config);
  }
  if (name == "wcc") {
    return RunXStreamWith(WccProgram{}, prepared, config);
  }
  if (name == "mcst") {
    return RunXStreamWith(McstProgram{}, prepared, config);
  }
  if (name == "mis") {
    return RunXStreamWith(MisProgram{}, prepared, config);
  }
  if (name == "sssp") {
    return RunXStreamWith(SsspProgram(params.source), prepared, config);
  }
  if (name == "pagerank") {
    return RunXStreamWith(PageRankProgram(params.iterations, params.damping), prepared, config);
  }
  if (name == "scc") {
    return RunXStreamWith(SccProgram{}, prepared, config);
  }
  if (name == "conductance") {
    return RunXStreamWith(ConductanceProgram{}, prepared, config);
  }
  if (name == "spmv") {
    return RunXStreamWith(SpmvProgram{}, prepared, config);
  }
  if (name == "bp") {
    return RunXStreamWith(BpProgram(params.iterations, params.bp_damping), prepared, config);
  }
  CHAOS_CHECK_MSG(false, "unknown algorithm: " + name);
  return {};
}

}  // namespace chaos
