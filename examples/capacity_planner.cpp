// Capacity planner: uses the simulator as a what-if tool — given a target
// graph size and algorithm, sweep cluster sizes and device/network options
// and report the predicted runtime, answering the paper's sizing questions
// (how many machines, SSD vs HDD, is my network fast enough — §9.4).
//
//   build/examples/capacity_planner [--scale N] [--algo pagerank]
#include <cstdio>

#include "algorithms/runner.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/stats.h"

using namespace chaos;

int main(int argc, char** argv) {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale of the target workload");
  opt.AddString("algo", "pagerank", "algorithm to plan for");
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }
  const std::string algo = opt.GetString("algo");

  RmatOptions graph_opt;
  graph_opt.scale = static_cast<uint32_t>(opt.GetInt("scale"));
  graph_opt.weighted = AlgorithmByName(algo).needs_weights;
  graph_opt.seed = 3;
  InputGraph prepared = PrepareInput(algo, GenerateRmat(graph_opt));
  std::printf("planning %s over %llu edges (%s input)\n\n", algo.c_str(),
              static_cast<unsigned long long>(prepared.num_edges()),
              FormatBytes(prepared.input_wire_bytes()).c_str());

  std::printf("%10s %14s %14s %14s %14s\n", "machines", "SSD/40G", "HDD/40G", "SSD/1G",
              "device-util");
  for (const int machines : {2, 4, 8, 16, 32}) {
    std::printf("%10d", machines);
    double util = 0.0;
    for (int variant = 0; variant < 3; ++variant) {
      ClusterConfig cfg;
      cfg.machines = machines;
      cfg.memory_budget_bytes =
          std::max<uint64_t>(prepared.num_vertices * 48 / (4ull * machines) + 1, 4 << 10);
      cfg.chunk_bytes = 64 << 10;
      cfg.storage = variant == 1 ? StorageConfig::Hdd() : StorageConfig::Ssd();
      cfg.net = variant == 2 ? NetworkConfig::OneGigE() : NetworkConfig::FortyGigE();
      auto result = RunChaosAlgorithm(algo, prepared, cfg);
      std::printf(" %14s", FormatSeconds(result.metrics.total_seconds()).c_str());
      if (variant == 0) {
        util = result.metrics.MeanDeviceUtilization();
      }
    }
    std::printf(" %13.0f%%\n", 100.0 * util);
  }
  std::printf("\nreading the table: runtime halves with machine count while devices stay\n"
              "utilized (SSD/40G); HDD runs ~2x slower; a 1GigE network caps scaling —\n"
              "the paper's requirement that network bandwidth match storage bandwidth.\n");
  return 0;
}
