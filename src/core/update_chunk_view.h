// SoA update-chunk layout + a reader that spans both layouts.
//
// Update sets (kUpdatesEven/kUpdatesOdd) are the other half of the hot
// streaming path: every gather superstep reads every update chunk, and the
// scatter/gather emit loops write every record through RecordBinner. Stored
// AoS, each UpdateRecord<U> strides sizeof(UpdateRecord<U>) — 16 bytes for
// a 4-byte value because of alignment padding — and the gather loop cannot
// vectorize across the struct. ChunkLayout::kUpdateSoA instead packs two
// regions into one payload (model_bytes — the simulated footprint — is
// unchanged, so results stay bitwise identical):
//
//   offset 0            : VertexId dst[count]
//   offset 8 * count    : U        value[count]   (packed at sizeof(U))
//
// payload_bytes == count * (8 + sizeof(U)) — for 4-byte values that is 12
// bytes per record instead of 16, a smaller resident footprint on top of
// the vectorizable layout. The value region starts at a multiple of 8, so
// it is naturally aligned for any U with alignof(U) <= 8 given an
// 8-byte-or-better base (arena payloads guarantee 64; core/record_arena.h).
// Programs whose update value is over-aligned (alignof > 8) stay on kAoS —
// GasKernel gates the layout on update_soa_capable().
//
// Unlike edges — whose record type the untyped engine core knows — update
// values are program-defined, so the view is untemplated and parameterized
// by the value width; typed readers (the kernels) reinterpret the packed
// value region, cold paths materialize records via At<U>().
#ifndef CHAOS_CORE_UPDATE_CHUNK_VIEW_H_
#define CHAOS_CORE_UPDATE_CHUNK_VIEW_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/gas.h"
#include "core/record_arena.h"
#include "graph/types.h"
#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

// Transposes `n` AoS update records into the SoA payload layout above.
// `out` must hold (8 + sizeof(U)) * n bytes and be at least 8-byte aligned.
template <typename U>
inline void TransposeUpdatesToSoa(const UpdateRecord<U>* aos, uint32_t n,
                                  uint8_t* out) {
  static_assert(alignof(U) <= 8, "kUpdateSoA requires alignof(value) <= 8");
  CHAOS_DCHECK(reinterpret_cast<uintptr_t>(out) % alignof(VertexId) == 0);
  auto* dst = reinterpret_cast<VertexId*>(out);
  auto* value = reinterpret_cast<U*>(out + 8ull * n);
  for (uint32_t i = 0; i < n; ++i) {
    dst[i] = aos[i].dst;
    value[i] = aos[i].value;
  }
}

// Builds a kUpdateSoA chunk from a host-side record vector. `arena` may be
// null (host-side callers without an engine); the payload is then a
// directly allocated aligned block.
template <typename U>
inline Chunk MakeSoaUpdateChunk(uint64_t index, uint64_t model_bytes,
                                const std::vector<UpdateRecord<U>>& records,
                                RecordArena* arena) {
  Chunk c;
  c.index = index;
  c.model_bytes = model_bytes;
  c.count = static_cast<uint32_t>(records.size());
  c.payload_bytes = records.size() * (8ull + sizeof(U));
  c.layout = ChunkLayout::kUpdateSoA;
  if (!records.empty()) {
    std::shared_ptr<uint8_t> payload;
    if (arena != nullptr) {
      payload = arena->LeaseShared(c.payload_bytes);
    } else {
      payload = std::shared_ptr<uint8_t>(
          static_cast<uint8_t*>(::operator new(c.payload_bytes,
                                               std::align_val_t{RecordArena::kAlign})),
          [](uint8_t* p) { ::operator delete(p, std::align_val_t{RecordArena::kAlign}); });
    }
    TransposeUpdatesToSoa(records.data(), c.count, payload.get());
    c.data = std::shared_ptr<const void>(payload, payload.get());
  }
  return c;
}

// Zero-copy reader over an update chunk of either layout. Hot loops branch
// once on soa() and then run a layout-specific inner loop over raw arrays;
// layout-agnostic readers (re-binning, wire packing) use DstAt/At.
// `value_bytes` is sizeof(U) for the owning program's update value.
class UpdateChunkView {
 public:
  UpdateChunkView(const Chunk& c, uint64_t value_bytes)
      : count_(c.count), value_bytes_(value_bytes) {
    if (count_ == 0) {
      return;
    }
    CHAOS_CHECK(c.data != nullptr);
    base_ = static_cast<const uint8_t*>(c.data.get());
    if (c.layout == ChunkLayout::kUpdateSoA) {
      CHAOS_DCHECK(c.payload_bytes == count_ * (8ull + value_bytes_));
      dst_ = reinterpret_cast<const VertexId*>(base_);
      values_ = base_ + 8ull * count_;
    } else {
      CHAOS_DCHECK(c.layout == ChunkLayout::kAoS);
      stride_ = c.payload_bytes / count_;
      CHAOS_DCHECK(stride_ * count_ == c.payload_bytes);
    }
  }

  uint32_t size() const { return count_; }
  bool soa() const { return dst_ != nullptr; }

  // SoA arrays (valid when soa()). values() is the packed value region;
  // typed readers cast it with values_as<U>().
  const VertexId* dst() const { return dst_; }
  const uint8_t* values() const { return values_; }
  template <typename U>
  const U* values_as() const {
    static_assert(alignof(U) <= 8, "kUpdateSoA requires alignof(value) <= 8");
    CHAOS_DCHECK(sizeof(U) == value_bytes_);
    return reinterpret_cast<const U*>(values_);
  }

  // AoS array (valid when !soa()).
  template <typename U>
  const UpdateRecord<U>* aos() const {
    CHAOS_DCHECK(!soa());
    CHAOS_DCHECK(count_ == 0 || stride_ == sizeof(UpdateRecord<U>));
    return reinterpret_cast<const UpdateRecord<U>*>(base_);
  }

  // Layout-independent destination id (wire packing, untyped audits).
  VertexId DstAt(uint32_t i) const {
    CHAOS_DCHECK(i < count_);
    if (soa()) {
      return dst_[i];
    }
    VertexId d;
    std::memcpy(&d, base_ + i * stride_, sizeof(VertexId));
    return d;
  }

  // Layout-independent materialization of one record (cold paths / tests).
  template <typename U>
  UpdateRecord<U> At(uint32_t i) const {
    CHAOS_DCHECK(i < count_);
    if (soa()) {
      UpdateRecord<U> r;
      r.dst = dst_[i];
      std::memcpy(&r.value, values_ + i * sizeof(U), sizeof(U));
      return r;
    }
    return aos<U>()[i];
  }

 private:
  uint32_t count_ = 0;
  uint64_t value_bytes_ = 0;
  uint64_t stride_ = 0;  // AoS record stride (payload_bytes / count)
  const uint8_t* base_ = nullptr;
  const VertexId* dst_ = nullptr;
  const uint8_t* values_ = nullptr;
};

}  // namespace chaos

#endif  // CHAOS_CORE_UPDATE_CHUNK_VIEW_H_
