// Figure 8: strong scaling — fixed RMAT graph, m = 1..32, runtime
// normalized to 1 machine. Paper: ~13x mean speedup at 32 machines on
// RMAT-27 (Cond 23x, MCST 8x); sub-linear because the graph is small.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig8, "Figure 8: strong scaling on fixed RMAT graph") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 27)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // Point list: (algorithm x machine count), one self-contained simulation
  // per point. Graphs are generated once per algorithm and shared read-only
  // across that algorithm's points.
  Sweep<double> sweep;
  for (const auto& info : Algorithms()) {
    auto prepared = std::make_shared<InputGraph>(
        PrepareInput(info.name, BenchRmat(scale, info.needs_weights, seed)));
    for (const int m : MachineSweep()) {
      const std::string name = info.name;
      sweep.Add([name, prepared, m, seed] {
        return RunJob(MakeJob(name, *prepared, BenchClusterConfig(*prepared, m, seed)))
            .metrics.total_seconds();
      });
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 8: strong scaling RMAT-%u, runtime normalized to m=1 ==\n", scale);
  PrintHeader({"algorithm", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "speedup@32"});
  RunningStat speedups;
  size_t idx = 0;
  for (const auto& info : Algorithms()) {
    PrintCell(info.name);
    double base_seconds = 0.0;
    double last_norm = 1.0;
    for (const int m : MachineSweep()) {
      const double s = seconds[idx++];
      if (m == 1) {
        base_seconds = s;
      }
      last_norm = base_seconds > 0 ? s / base_seconds : 0.0;
      PrintCell(last_norm);
      RecordMetric("fig8." + info.name + ".m" + std::to_string(m) + ".sim_s", s);
    }
    const double speedup = last_norm > 0 ? 1.0 / last_norm : 0.0;
    speedups.Add(speedup);
    RecordMetric("fig8." + info.name + ".speedup_at_32", speedup);
    PrintCell(speedup, "%.1fx");
    EndRow();
  }
  RecordMetric("fig8.mean_speedup_at_32", speedups.mean());
  std::printf("\nmean speedup at m=32: %.1fx (paper: ~13x on RMAT-27)\n", speedups.mean());
  return 0;
}
