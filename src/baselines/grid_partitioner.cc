#include "baselines/grid_partitioner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/common.h"
#include "util/rng.h"

namespace chaos {
namespace {

// Grid shape: the most square r x c with r * c >= machines.
std::pair<int, int> GridShape(int machines) {
  int rows = static_cast<int>(std::floor(std::sqrt(static_cast<double>(machines))));
  rows = std::max(rows, 1);
  const int cols = (machines + rows - 1) / rows;
  return {rows, cols};
}

}  // namespace

GridPartitionResult GridPartition(const InputGraph& graph, int machines, uint64_t seed) {
  CHAOS_CHECK_GT(machines, 0);
  const auto t0 = std::chrono::steady_clock::now();
  GridPartitionResult result;
  result.machines = machines;
  const auto [rows, cols] = GridShape(machines);
  result.rows = rows;
  result.cols = cols;
  result.edges_per_machine.assign(static_cast<size_t>(machines), 0);

  // Constraint set of a shard: all machines in its row and column that are
  // within [0, machines).
  auto shard_of = [&](VertexId v) {
    return static_cast<int>(Mix64(v ^ seed) % static_cast<uint64_t>(machines));
  };
  auto constraint_set = [&](int shard, std::vector<int>* out) {
    out->clear();
    const int r = shard / cols;
    const int c = shard % cols;
    for (int j = 0; j < cols; ++j) {
      const int m = r * cols + j;
      if (m < machines) {
        out->push_back(m);
      }
    }
    for (int i = 0; i < rows; ++i) {
      const int m = i * cols + c;
      if (m < machines && m != shard) {
        out->push_back(m);
      }
    }
  };

  CHAOS_CHECK_LE(machines, 64);  // replica masks are 64-bit
  std::vector<uint64_t> replicas(graph.num_vertices, 0);
  std::vector<int> set_u, set_v, candidates;
  for (const Edge& e : graph.edges) {
    constraint_set(shard_of(e.src), &set_u);
    constraint_set(shard_of(e.dst), &set_v);
    candidates.clear();
    for (const int m : set_u) {
      if (std::find(set_v.begin(), set_v.end(), m) != set_v.end()) {
        candidates.push_back(m);
      }
    }
    if (candidates.empty()) {
      // Disjoint row/column cover (possible with a ragged grid): fall back
      // to the union, as PowerGraph does.
      candidates = set_u;
    }
    // Least loaded candidate; ties broken deterministically by id.
    int best = candidates.front();
    for (const int m : candidates) {
      if (result.edges_per_machine[static_cast<size_t>(m)] <
          result.edges_per_machine[static_cast<size_t>(best)]) {
        best = m;
      }
    }
    result.edges_per_machine[static_cast<size_t>(best)]++;
    replicas[e.src] |= 1ull << best;
    replicas[e.dst] |= 1ull << best;
  }

  uint64_t replica_total = 0;
  uint64_t placed_vertices = 0;
  for (const uint64_t mask : replicas) {
    if (mask != 0) {
      replica_total += static_cast<uint64_t>(__builtin_popcountll(mask));
      ++placed_vertices;
    }
  }
  result.replication_factor =
      placed_vertices == 0
          ? 0.0
          : static_cast<double>(replica_total) / static_cast<double>(placed_vertices);
  const uint64_t max_load =
      *std::max_element(result.edges_per_machine.begin(), result.edges_per_machine.end());
  const double mean_load =
      static_cast<double>(graph.num_edges()) / static_cast<double>(machines);
  result.imbalance = mean_load > 0.0 ? static_cast<double>(max_load) / mean_load : 0.0;
  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

TimeNs GridPartitionSimTime(uint64_t edges, uint64_t edge_wire_bytes, int machines,
                            double device_bandwidth_bps, double ns_per_edge, int cores) {
  CHAOS_CHECK_GT(machines, 0);
  // One scan of the edge list from storage, spread over all devices.
  const double scan_seconds = static_cast<double>(edges * edge_wire_bytes) /
                              (device_bandwidth_bps * machines);
  // Partitioning CPU, parallelized over machines and cores.
  const double cpu_seconds =
      static_cast<double>(edges) * ns_per_edge * 1e-9 / (machines * cores);
  return SecondsToNs(scan_seconds + cpu_seconds);
}

}  // namespace chaos
