// Steal-policy subsystem: the paper's randomized steal-one baseline
// (§5.3-§5.4) generalized into a configurable policy, after the adaptive
// work-stealing runtime of aprell/tasking-2.0 (runtime.c):
//
//   * mode      steal_one — the paper: one partition per granted proposal.
//               steal_half — a granted proposal takes up to half of the
//               victim's still-open partitions in one exchange
//               (STEAL_ADAPTIVE's stealhalf requests).
//               adaptive — start polite (steal-one); when a granted
//               response reports the victim STILL has open work (the
//               task-indicator hint), escalate subsequent proposals to
//               steal-half, and de-escalate once a grant exhausts its
//               victim.
//   * backoff   a helper whose whole sweep found nothing parks for an
//               exponentially growing window and retries instead of giving
//               up immediately (STEAL_BACKOFF) — work that opens late
//               (e.g. behind a straggler's slow stream) still finds takers.
//   * victim_check  per-phase task-indicator hints (VICTIM_CHECK): every
//               proposal response carries "I still have open work"; victims
//               that said no are skipped for the rest of the phase, cutting
//               the request storm at large N.
//   * steal_domain  2-level steal routing for big clusters: machines are
//               grouped into domains of `steal_domain` machines and a
//               helper sweeps in-domain victims before crossing domains
//               (the manager/worker channel hierarchy of tasking-2.0,
//               flattened into a sweep order).
//
// Everything here is pure decision math — no simulator, no cluster — so
// tests/steal_policy_test.cc can pin the per-mode behavior in isolation.
// The engine-side implementation lives in EngineCore::StealLoop and the
// control server (engine_core.cc); the wire format in protocol.h.
#ifndef CHAOS_CORE_STEAL_POLICY_H_
#define CHAOS_CORE_STEAL_POLICY_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace chaos {

enum class StealMode : uint8_t {
  kStealOne = 0,
  kStealHalf = 1,
  kAdaptive = 2,
};

inline const char* StealModeName(StealMode m) {
  switch (m) {
    case StealMode::kStealOne:
      return "steal_one";
    case StealMode::kStealHalf:
      return "steal_half";
    case StealMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

inline bool ParseStealMode(const std::string& s, StealMode* out) {
  if (s == "steal_one") {
    *out = StealMode::kStealOne;
  } else if (s == "steal_half") {
    *out = StealMode::kStealHalf;
  } else if (s == "adaptive") {
    *out = StealMode::kAdaptive;
  } else {
    return false;
  }
  return true;
}

struct StealPolicy {
  StealMode mode = StealMode::kStealOne;

  // Retry after a grant-free sweep, parking exponentially longer between
  // attempts (initial, doubled per round, capped at max), up to
  // max_backoff_rounds rounds; off = give up after the first dry sweep
  // (the pre-policy baseline behavior).
  bool backoff = false;
  int max_backoff_rounds = 3;
  TimeNs backoff_initial = 20 * kNsPerUs;
  TimeNs backoff_max = 160 * kNsPerUs;

  // Skip victims that already reported "no open work" this phase.
  bool victim_check = false;

  // >0: sweep victims of my own domain (machine / steal_domain) first.
  int steal_domain = 0;
};

// The steal decision (§5.4): admit one more helper to a partition iff
//   V + D/(H+1) < alpha * D/H
// with V the partition's vertex-set bytes (the copy a helper must make),
// D the estimated remaining work bytes and H the current helper count.
// alpha = 0 disables stealing, infinity always accepts (while work remains).
inline bool StealAccept(double vertex_bytes, double remaining_bytes, int helpers,
                        double alpha) {
  if (remaining_bytes <= 0.0) {
    return false;
  }
  if (std::isinf(alpha)) {
    return true;
  }
  const int h = helpers > 0 ? helpers : 1;
  return vertex_bytes + remaining_bytes / (h + 1) < alpha * remaining_bytes / h;
}

// How many distinct partitions one granted proposal may take: 1 for
// steal-one, ceil(open/2) for steal-half (tasking-2.0's "half of the
// victim's deque"), 0 when the victim has nothing open.
inline uint32_t StealGrantLimit(bool steal_half, uint32_t open_partitions) {
  if (open_partitions == 0) {
    return 0;
  }
  return steal_half ? open_partitions - open_partitions / 2 : 1;
}

// Exponential backoff window: Next() returns the current wait and doubles
// it (capped); Reset() rewinds to the initial window after a grant.
class BackoffWindow {
 public:
  BackoffWindow(TimeNs initial, TimeNs max)
      : initial_(initial > 0 ? initial : 1), max_(max > initial_ ? max : initial_) {
    window_ = initial_;
  }

  TimeNs Next() {
    const TimeNs w = window_;
    window_ = window_ > max_ / 2 ? max_ : window_ * 2;
    return w;
  }
  void Reset() { window_ = initial_; }
  TimeNs current() const { return window_; }

 private:
  TimeNs initial_;
  TimeNs max_;
  TimeNs window_ = 0;
};

// Steal domain of a machine under `steal_domain` grouping. steal_domain
// <= 1 means flat routing: every machine shares domain 0 (so with
// combining on, ALL queued proposals merge).
inline int StealDomainOf(int machine, int steal_domain) {
  return steal_domain <= 1 ? 0 : machine / steal_domain;
}

inline bool CoDomainSteal(int a, int b, int steal_domain) {
  return StealDomainOf(a, steal_domain) == StealDomainOf(b, steal_domain);
}

// Domain-level proposal combining (config steal_combine): steal proposals
// from machines of one steal domain that are queued back to back at a
// victim are handled under a single per-message MessageTime() CPU charge —
// the domain's requests arrive as one merged control message whose amount
// is the sum of its members' asks (each member still gets its own grant
// decision and reply). Given the source machines of a victim's queued
// proposals in arrival order, returns how many MessageTime() charges the
// victim pays: one per maximal run of co-domain sources. Without combining
// the victim pays srcs.size() charges. Pure math — the engine-side drain
// lives in EngineCore::ControlServer (engine_core.cc); this function backs
// the steal_combine micro and steal_policy_test.cc.
inline uint64_t CombinedProposalCharges(const std::vector<int>& srcs,
                                        int steal_domain) {
  uint64_t charges = 0;
  for (size_t i = 0; i < srcs.size(); ++i) {
    if (i == 0 || !CoDomainSteal(srcs[i], srcs[i - 1], steal_domain)) {
      ++charges;
    }
  }
  return charges;
}

// Per-phase sweep state of one helper. For kAdaptive it carries the
// escalation bit, driven by the victims' task-indicator hints: a granted
// response that still reports open work means one-partition grants are not
// keeping up with that victim's backlog — the next proposal escalates to
// steal-half — while a grant that exhausted the victim de-escalates.
// Deterministic: the bit is a pure function of the response stream, never
// of timing.
class StealSweepState {
 public:
  explicit StealSweepState(StealMode mode) : mode_(mode) {}

  // Amount hint for the next proposal of this sweep.
  bool steal_half() const {
    return mode_ == StealMode::kStealHalf ||
           (mode_ == StealMode::kAdaptive && escalated_);
  }
  // Call on every granted proposal; more_work is the victim's hint that
  // open partitions remained even after this grant.
  void OnGrant(bool more_work) {
    if (mode_ == StealMode::kAdaptive) {
      escalated_ = more_work;
    }
  }
  bool escalated() const { return escalated_; }

 private:
  StealMode mode_;
  bool escalated_ = false;
};

}  // namespace chaos

#endif  // CHAOS_CORE_STEAL_POLICY_H_
