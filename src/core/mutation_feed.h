// MutationFeed: the untyped bridge between an evolving-graph driver (which
// owns the MutationLog, the typed program and the incremental seed math —
// algorithms/evolving.h) and the untemplated engine core.
//
// The coordinator consults the feed at every convergence barrier: if a
// batch is pending, it calls Plan() — a zero-sim-time host callback that
// reads the engines' converged vertex states, applies the next raw batch,
// prepares the post-batch edge set per partition and computes the reseeded
// vertex states — then releases the barrier with `mutate` set instead of
// `done`. Every engine then runs the timed apply-mutations stage
// (EngineCore::ApplyMutationStage) against the planned delta, so all data
// movement the plan implies is charged to simulated devices even though
// planning itself is host-side.
#ifndef CHAOS_CORE_MUTATION_FEED_H_
#define CHAOS_CORE_MUTATION_FEED_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/common.h"

namespace chaos {

// One planned mutation epoch, ready for engines to apply: the complete
// post-batch prepared edge set binned by partition (deletes are simply
// absent; inserts present), plus the full reseeded vertex-state image.
struct MutationDelta {
  // Prepared (post-MakeUndirected) edges of the NEW graph, one vector per
  // partition, in deterministic (host-computed) order.
  std::vector<std::vector<Edge>> part_edges;
  // Reseeded vertex states for ALL vertices, vertex_state_bytes() each.
  std::vector<uint8_t> seed_states;
  uint64_t vertex_state_bytes = 0;
  // Batch + seed accounting, copied into MutationEpochRecord on commit.
  uint64_t edges_inserted = 0;
  uint64_t edges_deleted = 0;
  uint64_t frontier = 0;  // seeds left with their changed flag set
  uint64_t resets = 0;    // seeds reset to the init value
};

class MutationFeed {
 public:
  using Planner = std::function<MutationDelta(uint64_t epoch)>;

  // `total_epochs` = number of batches in the log; `planner` produces the
  // delta for one epoch (called exactly once per epoch, in order, from the
  // coordinator's barrier FSM while every machine is parked at the barrier
  // — host reads of engine state are race-free there).
  void Configure(uint64_t total_epochs, Planner planner) {
    total_epochs_ = total_epochs;
    planner_ = std::move(planner);
    next_epoch_ = 0;
  }

  // Resume support: epochs [0, epoch) are already committed in the state
  // being imported; planning restarts at `epoch`.
  void SkipTo(uint64_t epoch) {
    CHAOS_CHECK_LE(epoch, total_epochs_);
    next_epoch_ = epoch;
  }

  bool HasPending() const { return planner_ != nullptr && next_epoch_ < total_epochs_; }

  // Plans the next epoch. Returns the epoch index just planned.
  uint64_t Plan() {
    CHAOS_CHECK(HasPending());
    const uint64_t epoch = next_epoch_;
    current_ = planner_(epoch);
    ++next_epoch_;
    return epoch;
  }

  const MutationDelta& Current() const { return current_; }

  // Epochs planned so far. Equal to epochs durably applied whenever the
  // cluster is at a committed checkpoint (a planned batch either commits in
  // the same superstep or the run aborts), which is when the engine records
  // it into checkpoint metadata.
  uint64_t applied_epochs() const { return next_epoch_; }
  uint64_t total_epochs() const { return total_epochs_; }

 private:
  uint64_t total_epochs_ = 0;
  uint64_t next_epoch_ = 0;
  Planner planner_;
  MutationDelta current_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_MUTATION_FEED_H_
