// Compute-engine to compute-engine protocol: work stealing, accumulator
// pulls, and the coordinator-based barrier with global-state reduction.
//
// Message-to-paper map (section / figure references are to the Chaos paper;
// "Fig. 4" line numbers are the paper's pseudocode listing of the engine
// loop, which src/core/compute_engine.h mirrors):
//
//   kHelpProposalReq/Resp  work stealing (§5.3-§5.4, Fig. 4 lines 23-33 for
//                          scatter, 46-53 for gather): an idle engine
//                          proposes to help with a partition; the master
//                          accepts iff V + D/(H+1) < alpha * D/H (§5.4).
//   kAccumPullReq/Resp     gather-phase accumulator reconciliation (§5.3,
//                          Fig. 4 line 52): the master pulls each stealer's
//                          replica accumulator array and merges it before
//                          apply; the stealer parks its replica until taken.
//   kBarrierArrive/Release the end-of-phase global barrier (§4, §5.2): the
//                          coordinator (machine 0) folds every machine's
//                          aggregator delta into the global state, runs the
//                          program's Advance, and releases everyone with the
//                          canonical global for the next phase. Arrivals
//                          double as the failure detector (§6.6): an engine
//                          on a fault-killed machine flags its arrival
//                          (`failed`), and the coordinator aborts the
//                          superstep cluster-wide by releasing with `crash`.
//                          A release can also signal the scripted
//                          whole-cluster crash of the checkpoint-recovery
//                          experiments (§6.6/Fig. 13).
//   kControlShutdown       simulation teardown, no paper counterpart.
#ifndef CHAOS_CORE_PROTOCOL_H_
#define CHAOS_CORE_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

enum ComputeMsgType : uint32_t {
  kHelpProposalReq = 300,   // body: HelpProposalReq -> kHelpProposalResp
  kHelpProposalResp = 301,  // body: HelpProposalResp
  kAccumPullReq = 302,      // body: AccumPullReq -> kAccumPullResp
  kAccumPullResp = 303,     // body: AccumPullResp
  kBarrierArrive = 304,     // body: BarrierArriveMsg -> kBarrierRelease
  kBarrierRelease = 305,    // body: BarrierReleaseMsg
  kControlShutdown = 306,
};

// The two streaming phases of a superstep (§4). Steal proposals carry the
// proposer's phase so a master never hands out work for a phase it has
// already left (the proposal is then rejected, Fig. 4 line 27).
enum class EnginePhase : uint8_t {
  kScatter = 0,
  kGather = 1,
};

// "May I help with partition `partition`?" (Fig. 4 lines 24-26). Sent by an
// engine that has finished its own partitions to the partition's master,
// chosen in a random sweep order (§5.3: randomized stealing needs no load
// information). The superstep guards against stale proposals crossing a
// barrier.
struct HelpProposalReq {
  PartitionId partition = 0;
  EnginePhase phase = EnginePhase::kScatter;
  uint64_t superstep = 0;
};

// The master's steal decision (§5.4, Fig. 4 lines 27-31): accept while the
// remaining work D (estimated from its local storage's unserved bytes,
// scaled by the machine count) justifies copying the partition's vertex set
// V to one more helper: V + D/(H+1) < alpha * D/H. alpha is the stealing
// bias of ClusterConfig (Fig. 18 sweeps it; 0 disables stealing).
struct HelpProposalResp {
  bool accept = false;
};

// After closing a gather-phase partition, the master pulls the replica
// accumulators of every helper it admitted (Fig. 4 line 52) and merges them
// with MergeAccum before apply (§5.3: replicas make gather idempotent under
// concurrent streaming).
struct AccumPullReq {
  PartitionId partition = 0;
  uint64_t superstep = 0;
};

// The stealer's accumulator array for the partition, shipped as a chunk
// (count = partition vertex count, wire = count * sizeof(Accumulator)).
struct AccumPullResp {
  Chunk accums;
  uint64_t updates_gathered = 0;
};

// Arrival at the end-of-phase barrier (§5.2). `local` carries the
// machine's aggregator delta (e.g. PageRank's dangling mass, BFS's frontier
// count) as an opaque byte blob serialized by the program kernel
// (core/program_kernel.h) — the barrier protocol itself is untyped, so the
// coordinator FSM compiles once for every GAS program. The modeled wire
// size is kControlMsgBytes + the kernel's global_wire_bytes(). `advance`
// marks the gather barrier where the coordinator reduces the deltas and
// runs Advance to decide convergence (Fig. 4 line 54).
struct BarrierArriveMsg {
  uint64_t phase_id = 0;        // monotonically increasing per barrier
  std::vector<uint8_t> local;   // per-machine aggregator delta (kernel blob)
  uint64_t vertices_changed = 0;
  bool advance = false;  // gather barrier: reduce aggregators and Advance()
  bool failed = false;   // this machine was fault-killed mid-run: the
                         // coordinator must abort the superstep (§6.6).
                         // Models failure detection at the barrier — the
                         // point where a real cluster's heartbeat timeout
                         // would fire — without un-draining the sim.
  uint64_t superstep = 0;
};

// Coordinator release: the canonical global state every machine computes
// the next phase under (kernel blob). `done` ends the run (Advance returned
// true); `crash` aborts it — either a machine failure was detected this
// barrier (an arrival carried `failed`) or the scripted whole-cluster
// failure of the recovery experiments fired (§6.6). In both cases engines
// stop without finishing and durable storage contents survive, so a
// recovery driver can re-import the last committed checkpoint
// (core/recovery.h).
struct BarrierReleaseMsg {
  std::vector<uint8_t> global;  // canonical global state for the next phase
  bool done = false;
  bool crash = false;  // failure: stop without finishing, storage survives
};

}  // namespace chaos

#endif  // CHAOS_CORE_PROTOCOL_H_
