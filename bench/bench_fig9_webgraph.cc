// Figure 9: strong scaling on the web graph (Data Commons substitute) from
// HDDs, BFS and PageRank, m = 1..32. Paper: speedups of 20x (BFS) and
// 18.5x (PR) at 32 machines — better than RMAT-27 strong scaling because
// the graph is much larger.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig9, "Figure 9: strong scaling on the web graph from HDDs") {
  Options opt;
  opt.AddInt("pages-log2", 15, "log2 of page count (paper: 1.7B pages)");
  opt.AddInt("mean-degree", 20, "mean out-degree (Data Commons 2014: ~38)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  WebGraphOptions wopt;
  wopt.num_pages = 1ull << static_cast<uint32_t>(opt.GetInt("pages-log2"));
  wopt.num_hosts = std::max<uint64_t>(wopt.num_pages >> 8, 16);
  wopt.mean_out_degree = static_cast<double>(opt.GetInt("mean-degree"));
  wopt.seed = static_cast<uint64_t>(opt.GetInt("seed"));
  InputGraph raw = GenerateWebGraph(wopt);

  const std::vector<std::string> algos = {"bfs", "pagerank"};
  Sweep<double> sweep;
  for (const std::string& name : algos) {
    auto prepared = std::make_shared<InputGraph>(PrepareInput(name, raw));
    for (const int m : MachineSweep()) {
      const uint64_t seed = wopt.seed;
      sweep.Add([name, prepared, m, seed] {
        // The web graph does not fit on SSDs (§9.2): HDD profile.
        ClusterConfig cfg = BenchClusterConfig(*prepared, m, seed, StorageConfig::Hdd());
        return RunJob(MakeJob(name, *prepared, cfg)).metrics.total_seconds();
      });
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 9: strong scaling, web graph (%llu pages, %llu links), HDD ==\n",
              static_cast<unsigned long long>(raw.num_vertices),
              static_cast<unsigned long long>(raw.num_edges()));
  PrintHeader({"algorithm", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32", "speedup@32"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    PrintCell(name);
    double base_seconds = 0.0;
    double last = 1.0;
    for (const int m : MachineSweep()) {
      const double s = seconds[idx++];
      if (m == 1) {
        base_seconds = s;
      }
      last = base_seconds > 0 ? s / base_seconds : 0.0;
      PrintCell(last);
      RecordMetric("fig9." + name + ".m" + std::to_string(m) + ".sim_s", s);
    }
    RecordMetric("fig9." + name + ".speedup_at_32", last > 0 ? 1.0 / last : 0.0);
    PrintCell(last > 0 ? 1.0 / last : 0.0, "%.1fx");
    EndRow();
  }
  std::printf("\npaper: BFS 20x, PR 18.5x at m=32 on Data Commons\n");
  return 0;
}
