// Unit and property tests for the discrete-event simulator substrate:
// event queue ordering, coroutine tasks, synchronization primitives and
// FIFO bandwidth resources.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/rng.h"

namespace chaos {
namespace {

// ------------------------------------------------------------------ EventFn

TEST(EventFnTest, InvokesSmallAndLargeCaptures) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);
  // A capture larger than the inline buffer takes the heap fallback and
  // must behave identically.
  std::array<uint64_t, 16> big{};
  big[15] = 7;
  uint64_t seen = 0;
  EventFn large([big, &seen] { seen = big[15]; });
  large();
  EXPECT_EQ(seen, 7u);
}

TEST(EventFnTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  EventFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
  c = EventFn{};  // destroying the stored callable releases the capture
  EXPECT_EQ(counter.use_count(), 1);
}

// ---------------------------------------------------------------- EventQueue

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, RandomizedHeapProperty) {
  EventQueue q;
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    q.Push(static_cast<TimeNs>(rng.Below(1000)), [] {});
  }
  TimeNs prev = -1;
  uint64_t prev_seq = 0;
  bool first = true;
  while (!q.empty()) {
    auto ev = q.Pop();
    if (!first && ev.time == prev) {
      EXPECT_GT(ev.seq, prev_seq);
    }
    EXPECT_GE(ev.time, prev);
    prev = ev.time;
    prev_seq = ev.seq;
    first = false;
  }
}

TEST(EventQueueTest, InterleavedPushPop) {
  EventQueue q;
  Rng rng(7);
  TimeNs now = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 5; ++i) {
      q.Push(now + static_cast<TimeNs>(rng.Below(50)), [] {});
    }
    for (int i = 0; i < 3 && !q.empty(); ++i) {
      auto ev = q.Pop();
      EXPECT_GE(ev.time, now);
      now = ev.time;
    }
  }
}

// ------------------------------------------- heap vs calendar differential

// Pops every remaining event and records its identity. (time, seq) is the
// full total order, so equal traces mean bitwise-identical pop order.
std::vector<std::pair<TimeNs, uint64_t>> DrainTrace(EventQueue* q) {
  std::vector<std::pair<TimeNs, uint64_t>> trace;
  while (!q->empty()) {
    auto ev = q->Pop();
    trace.emplace_back(ev.time, ev.seq);
  }
  return trace;
}

// Feeds the identical seeded stream of (push burst, pop burst) operations to
// a binary heap and a calendar queue and asserts the pop traces match
// element for element. `spread` shapes the time distribution: small spreads
// produce dense buckets, huge spreads force calendar rotations + rebuilds.
void RunQueueDifferential(uint64_t seed, int rounds, uint64_t spread) {
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  Rng rng(seed);
  std::vector<std::pair<TimeNs, uint64_t>> heap_trace;
  std::vector<std::pair<TimeNs, uint64_t>> cal_trace;
  TimeNs now = 0;
  for (int round = 0; round < rounds; ++round) {
    const int pushes = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < pushes; ++i) {
      // Occasionally collide exactly (simultaneous events must break ties
      // by seq identically in both implementations).
      const TimeNs t = rng.Below(4) == 0 ? now : now + static_cast<TimeNs>(rng.Below(spread));
      heap.Push(t, [] {});
      cal.Push(t, [] {});
    }
    const int pops = static_cast<int>(rng.Below(6));
    for (int i = 0; i < pops && !heap.empty(); ++i) {
      auto he = heap.Pop();
      auto ce = cal.Pop();
      ASSERT_EQ(he.time, ce.time);
      ASSERT_EQ(he.seq, ce.seq);
      now = he.time;  // like a simulator: never schedule behind now
    }
  }
  heap_trace = DrainTrace(&heap);
  cal_trace = DrainTrace(&cal);
  ASSERT_EQ(heap_trace, cal_trace);
  EXPECT_EQ(heap.total_pushed(), cal.total_pushed());
}

TEST(EventQueueDifferentialTest, DensePacked) {
  // Sub-bucket-width spread: most events land in the same calendar bucket.
  RunQueueDifferential(/*seed=*/1, /*rounds=*/3000, /*spread=*/64);
}

TEST(EventQueueDifferentialTest, MediumSpread) {
  RunQueueDifferential(/*seed=*/2, /*rounds=*/3000, /*spread=*/100'000);
}

TEST(EventQueueDifferentialTest, SparseForcesRotationSearch) {
  // Gaps far beyond bucket_count * width: every pop rotates fruitlessly and
  // falls back to the direct min search + jump.
  RunQueueDifferential(/*seed=*/3, /*rounds=*/1000, /*spread=*/1ull << 40);
}

TEST(EventQueueDifferentialTest, SimultaneousEventBursts) {
  // Large bursts at identical timestamps — the seq tiebreak carries the
  // entire ordering, as in barrier releases and CondEvent::NotifyAll storms.
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  Rng rng(77);
  TimeNs now = 0;
  for (int round = 0; round < 200; ++round) {
    now += static_cast<TimeNs>(rng.Below(1000));
    const int burst = 1 + static_cast<int>(rng.Below(64));
    for (int i = 0; i < burst; ++i) {
      heap.Push(now, [] {});
      cal.Push(now, [] {});
    }
  }
  EXPECT_EQ(DrainTrace(&heap), DrainTrace(&cal));
}

TEST(EventQueueDifferentialTest, RateReprojectionStorm) {
  // SetRate-style storm (net/network.cc): a batch of far-future completion
  // events gets popped and re-pushed at nearer times when bandwidth is
  // re-projected. The near pushes land *behind* the calendar cursor window,
  // exercising the Push rewind path.
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  Rng rng(1234);
  TimeNs now = 0;
  for (int storm = 0; storm < 50; ++storm) {
    for (int i = 0; i < 32; ++i) {
      const TimeNs far = now + 1'000'000 + static_cast<TimeNs>(rng.Below(1'000'000));
      heap.Push(far, [] {});
      cal.Push(far, [] {});
    }
    // Re-projection: new events at much nearer times than what's queued.
    for (int i = 0; i < 32; ++i) {
      const TimeNs near = now + static_cast<TimeNs>(rng.Below(1000));
      heap.Push(near, [] {});
      cal.Push(near, [] {});
    }
    for (int i = 0; i < 48; ++i) {
      auto he = heap.Pop();
      auto ce = cal.Pop();
      ASSERT_EQ(he.time, ce.time);
      ASSERT_EQ(he.seq, ce.seq);
      now = he.time;
    }
  }
  EXPECT_EQ(DrainTrace(&heap), DrainTrace(&cal));
}

TEST(EventQueueDifferentialTest, GrowthAndRebuild) {
  // Push enough to trigger several bucket-doubling rebuilds, then drain.
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  Rng rng(5);
  for (int i = 0; i < 100'000; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng.Below(1ull << 30));
    heap.Push(t, [] {});
    cal.Push(t, [] {});
  }
  EXPECT_EQ(cal.size(), 100'000u);
  EXPECT_EQ(DrainTrace(&heap), DrainTrace(&cal));
}

// ---------------------------------------------------------------- Simulator

TEST(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<TimeNs> times;
  sim.Post(100, [&] { times.push_back(sim.now()); });
  sim.Post(50, [&] { times.push_back(sim.now()); });
  sim.Post(150, [&] { times.push_back(sim.now()); });
  sim.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{50, 100, 150}));
}

TEST(SimulatorTest, NestedPostsRunAtCorrectTime) {
  Simulator sim;
  TimeNs inner_time = -1;
  sim.Post(10, [&] { sim.Post(5, [&] { inner_time = sim.now(); }); });
  sim.Run();
  EXPECT_EQ(inner_time, 15);
}

TEST(SimulatorTest, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.Post(i, [] {});
  }
  EXPECT_EQ(sim.Run(), 10u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.Post(10, [&] { ++ran; });
  sim.Post(20, [&] { ++ran; });
  sim.Post(30, [&] { ++ran; });
  EXPECT_FALSE(sim.RunUntil(25));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
}

Task<> DelayTwice(Simulator* sim, std::vector<TimeNs>* log) {
  co_await sim->Delay(100);
  log->push_back(sim->now());
  co_await sim->Delay(200);
  log->push_back(sim->now());
}

TEST(SimulatorTest, CoroutineDelays) {
  Simulator sim;
  std::vector<TimeNs> log;
  sim.Spawn(DelayTwice(&sim, &log));
  sim.Run();
  EXPECT_EQ(log, (std::vector<TimeNs>{100, 300}));
  EXPECT_EQ(sim.live_tasks(), 0u);
}

Task<int> Answer(Simulator* sim) {
  co_await sim->Delay(1);
  co_return 42;
}

Task<> AwaitValue(Simulator* sim, int* out) {
  *out = co_await Answer(sim);
}

TEST(SimulatorTest, TaskReturnsValue) {
  Simulator sim;
  int out = 0;
  sim.Spawn(AwaitValue(&sim, &out));
  sim.Run();
  EXPECT_EQ(out, 42);
}

Task<int> Fib(Simulator* sim, int n) {
  if (n <= 1) {
    co_return n;
  }
  const int a = co_await Fib(sim, n - 1);
  const int b = co_await Fib(sim, n - 2);
  co_return a + b;
}

Task<> FibDriver(Simulator* sim, int* out) { *out = co_await Fib(sim, 12); }

TEST(SimulatorTest, DeeplyNestedTasks) {
  Simulator sim;
  int out = 0;
  sim.Spawn(FibDriver(&sim, &out));
  sim.Run();
  EXPECT_EQ(out, 144);
}

TEST(SimulatorTest, ManyConcurrentTasks) {
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.Spawn([](Simulator* s, int* d, int delay) -> Task<> {
      co_await s->Delay(delay);
      ++*d;
    }(&sim, &done, i % 17));
  }
  sim.Run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(sim.live_tasks(), 0u);
  EXPECT_EQ(sim.spawned_tasks(), 1000u);
}

TEST(SimulatorTest, ZeroDelayDoesNotSuspendOrReorder) {
  Simulator sim;
  std::vector<int> order;
  sim.Spawn([](Simulator* s, std::vector<int>* ord) -> Task<> {
    ord->push_back(1);
    co_await s->Delay(0);  // ready immediately
    ord->push_back(2);
  }(&sim, &order));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // ran synchronously at spawn
  sim.Run();
}

// ---------------------------------------------------------------- sync

TEST(SyncTest, CondEventWakesAllWaiters) {
  Simulator sim;
  CondEvent cond(&sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn([](CondEvent* c, int* w) -> Task<> {
      co_await c->Wait();
      ++*w;
    }(&cond, &woken));
  }
  sim.Post(10, [&] { cond.NotifyAll(); });
  sim.Run();
  EXPECT_EQ(woken, 5);
}

TEST(SyncTest, QueuePushPopFifo) {
  Simulator sim;
  SimQueue<int> q(&sim);
  std::vector<int> got;
  sim.Spawn([](SimQueue<int>* q, std::vector<int>* got) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      got->push_back(co_await q->Pop());
    }
  }(&q, &got));
  sim.Post(1, [&] { q.Push(10); });
  sim.Post(2, [&] { q.Push(20); });
  sim.Post(3, [&] { q.Push(30); });
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(SyncTest, QueueMultipleConsumersEachItemOnce) {
  Simulator sim;
  SimQueue<int> q(&sim);
  std::vector<int> got;
  for (int c = 0; c < 4; ++c) {
    sim.Spawn([](SimQueue<int>* q, std::vector<int>* got) -> Task<> {
      for (int i = 0; i < 25; ++i) {
        got->push_back(co_await q->Pop());
      }
    }(&q, &got));
  }
  for (int i = 0; i < 100; ++i) {
    q.Push(i);
  }
  sim.Run();
  ASSERT_EQ(got.size(), 100u);
  std::sort(got.begin(), got.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
}

TEST(SyncTest, SemaphoreLimitsConcurrency) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  int active = 0;
  int max_active = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Spawn([](Simulator* s, Semaphore* sem, int* active, int* max_active) -> Task<> {
      co_await sem->Acquire();
      ++*active;
      *max_active = std::max(*max_active, *active);
      co_await s->Delay(10);
      --*active;
      sem->Release();
    }(&sim, &sem, &active, &max_active));
  }
  sim.Run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(sem.count(), 2);
}

TEST(SyncTest, BarrierReleasesTogetherAndIsReusable) {
  Simulator sim;
  SimBarrier barrier(&sim, 3);
  std::vector<TimeNs> release_times;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](Simulator* s, SimBarrier* b, std::vector<TimeNs>* out, int id) -> Task<> {
      for (int round = 0; round < 2; ++round) {
        co_await s->Delay((id + 1) * 10);  // staggered arrivals
        co_await b->Arrive();
        out->push_back(s->now());
      }
    }(&sim, &barrier, &release_times, i));
  }
  sim.Run();
  ASSERT_EQ(release_times.size(), 6u);
  // First round releases when the slowest (id=2, t=30) arrives.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(release_times[static_cast<size_t>(i)], 30);
  }
  // Second round: slowest started at 30, waits another 30 -> 60.
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(release_times[static_cast<size_t>(i)], 60);
  }
  EXPECT_EQ(barrier.generation(), 2u);
}

TEST(SyncTest, LatchWaitsForCount) {
  Simulator sim;
  Latch latch(&sim, 3);
  bool released = false;
  sim.Spawn([](Latch* l, bool* r) -> Task<> {
    co_await l->Wait();
    *r = true;
  }(&latch, &released));
  sim.Post(1, [&] { latch.CountDown(); });
  sim.Post(2, [&] { latch.CountDown(); });
  sim.RunUntil(5);
  EXPECT_FALSE(released);
  latch.CountDown();
  sim.Run();
  EXPECT_TRUE(released);
}

TEST(SyncTest, TaskGroupJoinsAll) {
  Simulator sim;
  sim.Spawn([](Simulator* s) -> Task<> {
    TaskGroup group(s);
    int done = 0;
    for (int i = 0; i < 8; ++i) {
      group.Spawn([](Simulator* s, int* done, int d) -> Task<> {
        co_await s->Delay(d);
        ++*done;
      }(s, &done, i * 5));
    }
    co_await group.Join();
    CHAOS_CHECK_EQ(done, 8);
    CHAOS_CHECK_EQ(s->now(), 35);
  }(&sim));
  sim.Run();
  EXPECT_EQ(sim.live_tasks(), 0u);
}

// ---------------------------------------------------------------- resources

TEST(ResourceTest, FifoServiceTimesAccumulate) {
  Simulator sim;
  FifoResource dev(&sim, "ssd");
  std::vector<TimeNs> completions;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](FifoResource* dev, std::vector<TimeNs>* out) -> Task<> {
      co_await dev->Acquire(100);
      out->push_back(dev->sim()->now());
    }(&dev, &completions));
  }
  sim.Run();
  // Three requests issued at t=0 serialize: 100, 200, 300.
  EXPECT_EQ(completions, (std::vector<TimeNs>{100, 200, 300}));
  EXPECT_EQ(dev.total_busy(), 300);
  EXPECT_EQ(dev.num_requests(), 3u);
}

TEST(ResourceTest, IdleGapsDoNotCount) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  sim.Spawn([](Simulator* s, FifoResource* dev) -> Task<> {
    co_await dev->Acquire(50);
    CHAOS_CHECK_EQ(s->now(), 50);
    co_await s->Delay(100);  // leave device idle
    co_await dev->Acquire(50);
    CHAOS_CHECK_EQ(s->now(), 200);  // 150 start + 50 service
  }(&sim, &dev));
  sim.Run();
  EXPECT_EQ(dev.total_busy(), 100);
  EXPECT_EQ(dev.busy_until(), 200);
}

TEST(ResourceTest, BacklogReflectsQueue) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  sim.Spawn(dev.Acquire(100));
  sim.Spawn(dev.Acquire(100));
  EXPECT_EQ(dev.Backlog(0), 200);
  EXPECT_EQ(dev.Backlog(150), 50);
  EXPECT_EQ(dev.Backlog(500), 0);
  sim.Run();
}

TEST(ResourceTest, AcquireProjectsCompletionTime) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  sim.Spawn(dev.Acquire(10));
  EXPECT_EQ(dev.busy_until(), 10);
  sim.Spawn(dev.Acquire(10));
  EXPECT_EQ(dev.busy_until(), 20);
  sim.Run();
}

TEST(ResourceTest, InterleavedArrivalsKeepFifoOrder) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  std::vector<std::pair<int, TimeNs>> completions;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](Simulator* s, FifoResource* dev, std::vector<std::pair<int, TimeNs>>* out,
                 int id) -> Task<> {
      co_await s->Delay(id * 10);  // arrive at 0, 10, 20, 30
      co_await dev->Acquire(100);
      out->push_back({id, s->now()});
    }(&sim, &dev, &completions, i));
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(completions[static_cast<size_t>(i)].first, i);
    EXPECT_EQ(completions[static_cast<size_t>(i)].second, (i + 1) * 100);
  }
}

TEST(ResourceTest, TransferTimeMath) {
  EXPECT_EQ(TransferTimeNs(0, 400e6), 0);
  // 4 MiB at 400 MB/s ~ 10.5 ms.
  const TimeNs t = TransferTimeNs(4ull << 20, 400e6);
  EXPECT_NEAR(static_cast<double>(t), 10.486e6, 1e4);
  // Tiny transfers still take at least 1 ns.
  EXPECT_GE(TransferTimeNs(1, 1e12), 1);
}

// Property: N producers acquiring one FIFO device never overlap and the
// device's total busy time equals the sum of all service times.
TEST(ResourceTest, PropertyBusyTimeConservation) {
  Simulator sim;
  FifoResource dev(&sim, "dev");
  Rng rng(4242);
  TimeNs expected_busy = 0;
  for (int i = 0; i < 200; ++i) {
    const TimeNs service = static_cast<TimeNs>(1 + rng.Below(50));
    const TimeNs arrival = static_cast<TimeNs>(rng.Below(1000));
    expected_busy += service;
    sim.Spawn([](Simulator* s, FifoResource* dev, TimeNs arrival, TimeNs service) -> Task<> {
      co_await s->Delay(arrival);
      co_await dev->Acquire(service);
    }(&sim, &dev, arrival, service));
  }
  sim.Run();
  EXPECT_EQ(dev.total_busy(), expected_busy);
  EXPECT_EQ(dev.num_requests(), 200u);
  EXPECT_GE(dev.busy_until(), expected_busy);  // idle gaps only push it later
}

// Determinism: the same seeded workload produces the identical completion
// trace on two separate simulators.
TEST(SimulatorTest, PropertyDeterministicReplay) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    FifoResource dev(&sim, "dev");
    Rng rng(seed);
    std::vector<TimeNs> trace;
    for (int i = 0; i < 300; ++i) {
      const TimeNs arrival = static_cast<TimeNs>(rng.Below(500));
      const TimeNs service = static_cast<TimeNs>(1 + rng.Below(20));
      sim.Spawn(
          [](Simulator* s, FifoResource* dev, std::vector<TimeNs>* t, TimeNs a, TimeNs sv)
              -> Task<> {
            co_await s->Delay(a);
            co_await dev->Acquire(sv);
            t->push_back(s->now());
          }(&sim, &dev, &trace, arrival, service));
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(321));
}

// End-to-end: a whole simulation run (coroutines, FIFO resources, seeded
// arrivals) completes with the identical trace under either queue impl.
TEST(SimulatorTest, HeapAndCalendarProduceIdenticalTraces) {
  auto run = [](EventQueueImpl impl) {
    Simulator sim(impl);
    FifoResource dev(&sim, "dev");
    Rng rng(2024);
    std::vector<TimeNs> trace;
    for (int i = 0; i < 300; ++i) {
      const TimeNs arrival = static_cast<TimeNs>(rng.Below(500));
      const TimeNs service = static_cast<TimeNs>(1 + rng.Below(20));
      sim.Spawn(
          [](Simulator* s, FifoResource* dev, std::vector<TimeNs>* t, TimeNs a, TimeNs sv)
              -> Task<> {
            co_await s->Delay(a);
            co_await dev->Acquire(sv);
            t->push_back(s->now());
          }(&sim, &dev, &trace, arrival, service));
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(EventQueueImpl::kBinaryHeap), run(EventQueueImpl::kCalendar));
}

}  // namespace
}  // namespace chaos
