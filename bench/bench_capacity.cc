// §9.3 capacity scaling: the paper's trillion-edge milestone. RMAT-36
// (250 B vertices, 1 T edges, 16 TB input) ran BFS in ~9 h and 5 PR
// iterations in ~19 h on 32 machines / 64 HDDs at ~7 GB/s aggregate,
// moving 214 TB (BFS) and 395 TB (PR).
//
// We run the largest graph that fits this host at a tiny per-machine memory
// budget (deep out-of-core regime), report the simulated I/O volume and
// aggregate bandwidth, and project linearly to RMAT-36 — the system's I/O
// volume per edge is scale-free.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(capacity, "Sec 9.3 capacity scaling toward the trillion-edge milestone") {
  Options opt;
  opt.AddInt("scale", 15, "RMAT scale (paper: 36)");
  opt.AddInt("machines", 32, "machines");
  opt.AddInt("mem-mb", 0,
             "enforced per-machine memory budget in MiB (0 = derived: the partition "
             "working set plus streaming headroom; smaller budgets spill)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto mem_mb = static_cast<uint64_t>(opt.GetInt("mem-mb"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "pagerank"};

  struct CapacityPoint {
    AlgoResult result;
    uint64_t num_edges = 0;
  };
  Sweep<CapacityPoint> sweep;
  for (const std::string& name : algos) {
    sweep.Add([name, scale, machines, mem_mb, seed] {
      InputGraph prepared = PrepareInput(name, BenchRmat(scale, false, seed));
      ClusterConfig cfg =
          BenchClusterConfig(prepared, machines, seed, StorageConfig::Hdd());
      // Deep out-of-core: ~8 partitions per machine, with the per-machine
      // memory budget ENFORCED by the buffer pool (not just the advisory
      // partition-sizing scalar): --mem-mb squeezes real RAM, and any
      // overflow shows up as measured spill I/O in the table below.
      cfg.memory_budget_bytes =
          std::max<uint64_t>(prepared.num_vertices * 48 / (8ull * machines) + 1, 4 << 10);
      if (mem_mb > 0) {
        cfg.pool_budget_bytes = mem_mb << 20;
      }
      CapacityPoint point;
      point.result = RunJob(MakeJob(name, prepared, cfg));
      point.num_edges = prepared.num_edges();
      return point;
    });
  }
  const std::vector<CapacityPoint> points = sweep.Run();

  std::printf("== Capacity scaling (paper 9.3): RMAT-%u on %d machines, HDD ==\n", scale,
              machines);
  PrintHeader({"algorithm", "time", "io-moved", "spill", "peak-mem", "agg-bw", "supersteps"});
  const double kPaperEdges = 1.1e12;  // RMAT-36
  size_t idx = 0;
  for (const std::string& name : algos) {
    const CapacityPoint& point = points[idx++];
    const AlgoResult& result = point.result;
    PrintCell(name);
    PrintCell(FormatSeconds(result.metrics.total_seconds()));
    PrintCell(FormatBytes(result.metrics.StorageBytesMoved()));
    PrintCell(FormatBytes(result.metrics.SpillBytesMoved()));
    PrintCell(FormatBytes(result.metrics.PeakMemoryBytes()));
    PrintCell(FormatBandwidth(result.metrics.AggregateStorageBandwidth()));
    PrintCell(static_cast<double>(result.supersteps), "%.0f");
    EndRow();
    const double io_per_edge = static_cast<double>(result.metrics.StorageBytesMoved()) /
                               static_cast<double>(point.num_edges);
    RecordMetric("capacity." + name + ".sim_s", result.metrics.total_seconds());
    RecordMetric("capacity." + name + ".io_bytes_per_edge", io_per_edge);
    RecordMetric("capacity." + name + ".spill_bytes",
                 static_cast<double>(result.metrics.SpillBytesMoved()));
    RecordMetric("capacity." + name + ".peak_mem_bytes",
                 static_cast<double>(result.metrics.PeakMemoryBytes()));
    std::printf("  -> %.1f B of I/O per input edge; linear projection to RMAT-36: %s\n",
                io_per_edge, FormatBytes(static_cast<uint64_t>(io_per_edge * kPaperEdges))
                                 .c_str());
  }
  std::printf("\npaper: 214 TB (BFS) / 395 TB (5-iteration PR) of I/O at 7 GB/s aggregate\n");
  return 0;
}
