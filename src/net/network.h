// Simulated cluster network: one NIC (uplink + downlink FIFO resource pair)
// per machine behind a full-bisection switch, plus a message bus with typed
// messages and RPC correlation.
//
// The full-bisection assumption mirrors the paper (§1, §7): the switch is
// never the bottleneck, only per-machine NICs are. An optional incast model
// adds a retransmission penalty when a downlink's backlog exceeds a buffer
// threshold; the paper observes this regime past the batching sweet spot
// (§10.1, Fig. 16).
#ifndef CHAOS_NET_NETWORK_H_
#define CHAOS_NET_NETWORK_H_

#include <any>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

struct NetworkConfig {
  double nic_bandwidth_bps = 5e9;            // bytes/sec; 40 GigE ~ 5 GB/s
  TimeNs one_way_latency = 50 * kNsPerUs;    // propagation + stack, one way
  TimeNs local_latency = 5 * kNsPerUs;       // same-machine IPC cost
  bool model_incast = true;
  TimeNs incast_backlog_threshold = 500 * kNsPerUs;  // downlink backlog -> drops
  TimeNs incast_penalty = kNsPerMs;                  // retransmission delay

  // The paper's cluster: 40 GigE links, full bisection (§8).
  static NetworkConfig FortyGigE();
  // The slow-network experiment (§9.4, Fig. 12).
  static NetworkConfig OneGigE();
};

// Well-known message bus services (mailboxes) per machine.
enum Service : int {
  kStorageService = 0,
  kComputeService = 1,
  kControlService = 2,
  kDirectoryService = 3,
  kNumServices = 4,
};

struct Message {
  MachineId src = 0;
  MachineId dst = 0;
  int service = kStorageService;
  uint64_t rpc_id = 0;  // nonzero when part of an RPC exchange
  bool is_response = false;
  uint32_t type = 0;        // protocol discriminator, see protocol headers
  uint64_t wire_bytes = 0;  // modeled size on the wire
  std::any body;
};

class Network {
 public:
  Network(Simulator* sim, int machines, const NetworkConfig& config);

  // Time to push `bytes` through the default-speed NIC link.
  TimeNs TxTime(uint64_t bytes) const {
    return TransferTimeNs(bytes, config_.nic_bandwidth_bps);
  }

  // Time to push `bytes` through machine `m`'s NIC (honors per-machine
  // bandwidth overrides in heterogeneous clusters).
  TimeNs TxTime(MachineId m, uint64_t bytes) const {
    return TransferTimeNs(bytes, links_[Index(m)].bandwidth_bps);
  }

  // Overrides one machine's NIC speed (applies to both directions). Static
  // heterogeneity only — call before traffic starts; dynamic mid-run
  // degradation goes through FifoResource::SetRate on the links instead.
  void SetNicBandwidth(MachineId m, double bps) {
    CHAOS_CHECK_GT(bps, 0.0);
    links_[Index(m)].bandwidth_bps = bps;
  }
  double nic_bandwidth(MachineId m) const { return links_[Index(m)].bandwidth_bps; }

  FifoResource& Uplink(MachineId m) { return *links_[Index(m)].up; }
  FifoResource& Downlink(MachineId m) { return *links_[Index(m)].down; }

  const NetworkConfig& config() const { return config_; }
  int machines() const { return machines_; }
  Simulator* sim() const { return sim_; }
  // Allocation counter for the large-N regression tests: per-machine link
  // records only, O(machines) by construction — never per-pair state.
  size_t link_count() const { return links_.size(); }

  uint64_t bytes_sent(MachineId m) const { return links_[Index(m)].bytes_sent; }
  uint64_t bytes_received(MachineId m) const { return links_[Index(m)].bytes_received; }
  uint64_t total_bytes() const;
  uint64_t incast_events() const { return incast_events_; }

  // Accounting hooks used by the bus.
  void NoteSent(MachineId m, uint64_t bytes) { links_[Index(m)].bytes_sent += bytes; }
  void NoteReceived(MachineId m, uint64_t bytes) { links_[Index(m)].bytes_received += bytes; }
  void NoteIncast() { ++incast_events_; }

 private:
  struct Link {
    std::unique_ptr<FifoResource> up;
    std::unique_ptr<FifoResource> down;
    double bandwidth_bps = 0.0;  // per-machine NIC speed (default from config)
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
  };

  size_t Index(MachineId m) const {
    CHAOS_CHECK(m >= 0 && m < machines_);
    return static_cast<size_t>(m);
  }

  Simulator* sim_;
  int machines_;
  NetworkConfig config_;
  std::vector<Link> links_;
  uint64_t incast_events_ = 0;
};

// Message delivery and RPC correlation on top of Network.
//
// Send() returns once the message has left the sender's uplink; propagation
// and the receiver's downlink are charged in the background, after which the
// message lands in the destination mailbox (or resolves a pending RPC).
class MessageBus {
 public:
  MessageBus(Simulator* sim, Network* network);

  SimQueue<Message>& Inbox(MachineId machine, int service);

  // Fire-and-forget variant; the transfer proceeds in the background.
  void PostSend(Message m) { sim_->Spawn(Send(std::move(m))); }

  Task<> Send(Message m);

  // Sends `request` and completes with the matched response.
  Task<Message> Call(Message request);

  // Builds and sends the response for `request`. Fire-and-forget.
  void PostReply(const Message& request, uint32_t type, uint64_t wire_bytes, std::any body);

  uint64_t messages_delivered() const { return delivered_; }
  // Allocation counter for the large-N regression tests: machines *
  // kNumServices mailboxes, O(machines) by construction.
  size_t inbox_count() const { return inboxes_.size(); }

 private:
  struct PendingCall {
    std::coroutine_handle<> waiter;
    Message response;
    bool ready = false;
  };

  void Deliver(Message m);
  internal::DetachedTask FinishRemote(Message m, TimeNs extra_latency);

  Simulator* sim_;
  Network* net_;
  std::vector<std::unique_ptr<SimQueue<Message>>> inboxes_;  // machine * kNumServices
  std::unordered_map<uint64_t, PendingCall*> pending_;
  uint64_t next_rpc_id_ = 1;
  uint64_t delivered_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_NET_NETWORK_H_
