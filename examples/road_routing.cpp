// Road-network routing: single-source shortest paths over a weighted grid
// graph (low degree, high diameter — the opposite regime from power-law
// webs), plus a minimum spanning forest of the same network. Demonstrates
// weighted inputs and the output-record sink (MSF edges).
//
//   build/examples/road_routing [--size N] [--machines M]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "algorithms/runner.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/stats.h"

using namespace chaos;

int main(int argc, char** argv) {
  Options opt;
  opt.AddInt("size", 96, "grid side length (size x size intersections)");
  opt.AddInt("machines", 4, "simulated machines");
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }
  const auto size = static_cast<uint32_t>(opt.GetInt("size"));

  GridGraphOptions graph_opt;
  graph_opt.width = size;
  graph_opt.height = size;
  graph_opt.seed = 9;
  InputGraph roads = GenerateGridGraph(graph_opt);
  std::printf("road network: %ux%u grid, %llu road segments\n", size, size,
              static_cast<unsigned long long>(roads.num_edges() / 2));

  ClusterConfig config;
  config.machines = static_cast<int>(opt.GetInt("machines"));
  config.memory_budget_bytes = roads.num_vertices * 16;
  config.chunk_bytes = 32 << 10;

  // Shortest travel distances from the north-west corner.
  AlgoParams params;
  params.source = 0;
  auto sssp = RunJob(MakeJob("sssp", roads, config, params));
  const VertexId far_corner = roads.num_vertices - 1;
  std::printf("\nshortest paths from corner (SSSP, %llu supersteps, %s simulated):\n",
              static_cast<unsigned long long>(sssp.supersteps),
              FormatSeconds(sssp.metrics.total_seconds()).c_str());
  std::printf("  to far corner: %.1f km\n", sssp.values[far_corner]);
  std::printf("  to grid center: %.1f km\n", sssp.values[(size / 2) * size + size / 2]);
  const double max_finite = *std::max_element(
      sssp.values.begin(), sssp.values.end(),
      [](double a, double b) { return (std::isinf(a) ? -1 : a) < (std::isinf(b) ? -1 : b); });
  std::printf("  farthest intersection: %.1f km\n", max_finite);

  // Cheapest road subset keeping everything connected (MSF).
  auto msf = RunJob(MakeJob("mcst", PrepareInput("mcst", roads), config));
  std::printf("\nminimum spanning road network (MCST, %llu supersteps, %s):\n",
              static_cast<unsigned long long>(msf.supersteps),
              FormatSeconds(msf.metrics.total_seconds()).c_str());
  std::printf("  %llu segments kept of %llu, total length %.1f km\n",
              static_cast<unsigned long long>(msf.output_records),
              static_cast<unsigned long long>(roads.num_edges() / 2), msf.scalar);
  return 0;
}
