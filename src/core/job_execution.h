// Slice-wise job execution: runs one JobSpec as a chain of cluster runs,
// each stopping at a scheduler-chosen superstep barrier and resuming from
// the checkpoint that barrier committed.
//
// Preemption reuses the machinery PR 3/5 already trust, end to end:
//
//  * The stop is scripted exactly like a ClusterConfig::crash_after_superstep
//    experiment — the barrier FSM aborts the run at the stop superstep's
//    gather barrier (core/barrier_fsm.cc).
//  * The checkpoint interval is set so the 2-phase checkpoint FSM commits at
//    superstep stop-1, i.e. the commit covers every superstep the slice
//    completed: checkpointed_superstep == stop, so the resume loses zero
//    finished supersteps. The honest preemption cost is the one aborted
//    superstep's partial work plus the checkpoint write itself.
//  * The next slice re-provisions a fresh Cluster and imports the durable
//    sets exactly like the machine-failure recovery driver (core/recovery.h):
//    edges, the committed checkpoint side as the live vertex set, and the
//    commit-time update-set snapshot under the kind the resumed gather scans.
//    Outputs emitted by completed supersteps are carried across slices.
//
// Because every slice is an ordinary deterministic cluster run and the resume
// path is the recovery path, a preempted job's final values are bitwise equal
// to an unpreempted run's (tests/scheduler_test.cc holds this for BFS/WCC).
#ifndef CHAOS_CORE_JOB_EXECUTION_H_
#define CHAOS_CORE_JOB_EXECUTION_H_

#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/job_spec.h"

namespace chaos {

// JobExecution for a concrete GAS program P. `Finalize` converts the typed
// RunResult<P> into the algorithm-agnostic AlgoResult — injected by the
// algorithms layer (runner.cc) so core stays ignorant of program types.
template <GasProgram P, typename Finalize>
class TypedJobExecution final : public JobExecution {
 public:
  TypedJobExecution(JobSpec spec, P prog, Finalize finalize)
      : JobExecution(std::move(spec)), prog_(std::move(prog)), finalize_(std::move(finalize)) {
    CHAOS_CHECK_MSG(spec_.input != nullptr, "JobSpec without an input graph");
    CHAOS_CHECK_MSG(spec_.cluster.faults.empty() && spec_.cluster.crash_after_superstep < 0,
                    "sliced execution owns the crash script; JobSpec must not inject faults");
    CHAOS_CHECK_MSG(!spec_.recover, "recovery mode is single-job only");
  }

  // Evolving-graph support: called after each slice's cluster is built (and,
  // on resume, after the durable sets are imported) but before Run/Resume,
  // with the number of mutation epochs already baked into the state the
  // cluster holds (0 for the first slice; the committed checkpoint's epoch
  // after a preemption). The hook attaches the job's MutationFeed — see
  // algorithms/evolving.h EvolvingController::Attach.
  using AttachHook = std::function<void(Cluster<P>&, uint64_t applied_epochs)>;
  void set_attach_hook(AttachHook hook) { attach_ = std::move(hook); }

  uint64_t next_superstep() const override { return next_superstep_; }

  SliceResult RunSlice(int64_t stop_after_superstep) override {
    CHAOS_CHECK_MSG(!done_, "RunSlice on a completed job");
    ClusterConfig cfg = spec_.cluster;
    cfg.crash_after_superstep = stop_after_superstep;
    if (stop_after_superstep >= 0) {
      const auto stop = static_cast<uint64_t>(stop_after_superstep);
      CHAOS_CHECK_MSG(stop > next_superstep_, "preemption point must be ahead of the resume point");
      CHAOS_CHECK(stop <= std::numeric_limits<uint32_t>::max());
      // Commit exactly once, at superstep stop-1: the engine checkpoints
      // after superstep s when (s+1) % interval == 0, so interval = stop
      // yields checkpointed_superstep == stop whatever the resume point was.
      cfg.checkpoint_interval = static_cast<uint32_t>(stop);
    }

    SliceResult out;
    out.start_superstep = next_superstep_;
    RunResult<P> run = next_superstep_ == 0 ? RunFirst(cfg) : RunResumed(cfg);
    out.slice_time = run.metrics.total_time;

    if (!run.crashed) {
      done_ = true;
      out.completed = true;
      out.end_superstep = run.supersteps;
      // Prepend outputs carried from earlier slices before finalizing: the
      // per-algorithm finalizer may fold outputs into the result (MSF total
      // weight sums them).
      run.outputs.insert(run.outputs.begin(), std::make_move_iterator(carried_outputs_.begin()),
                         std::make_move_iterator(carried_outputs_.end()));
      carried_outputs_.clear();
      result_ = finalize_(std::move(run));
      cluster_.reset();
      return out;
    }

    // Preempted at the scripted barrier. The commit at stop-1 covers every
    // completed superstep, so nothing but the aborted superstep re-runs.
    CHAOS_CHECK_MSG(run.has_checkpoint, "preempted slice has no committed checkpoint");
    CHAOS_CHECK(stop_after_superstep >= 0 &&
                run.checkpoint_superstep == static_cast<uint64_t>(stop_after_superstep));
    auto committed = cluster_->OutputsBefore(run.checkpoint_superstep);
    carried_outputs_.insert(carried_outputs_.end(), std::make_move_iterator(committed.begin()),
                            std::make_move_iterator(committed.end()));
    ckpt_global_ = run.checkpoint_global;
    ckpt_side_ = run.checkpoint_side;
    // A slice of an evolving job may have committed forced mutation
    // checkpoints: the next slice must import the edge side that was live
    // at the final commit and replay mutations from its epoch.
    ckpt_edges_kind_ = run.checkpoint_edges_kind;
    ckpt_epoch_ = run.checkpoint_epoch;
    next_superstep_ = run.checkpoint_superstep;
    out.end_superstep = next_superstep_;
    return out;
  }

  AlgoResult TakeResult() override {
    CHAOS_CHECK_MSG(done_, "TakeResult before the job completed");
    return std::move(result_);
  }

 private:
  RunResult<P> RunFirst(const ClusterConfig& cfg) {
    cluster_ = std::make_unique<Cluster<P>>(cfg, prog_);
    if (attach_) {
      attach_(*cluster_, 0);
    }
    return cluster_->Run(*spec_.input);
  }

  // Same import/resume recipe as core/recovery.h's same-size replacement:
  // chunk homes are machine-count-stable, so durable sets copy across
  // position-for-position from the previous slice's (dead) cluster.
  RunResult<P> RunResumed(ClusterConfig cfg) {
    cfg.resume = true;
    cfg.resume_superstep = next_superstep_;
    auto replacement = std::make_unique<Cluster<P>>(cfg, prog_);
    replacement->PreparePartitioning(spec_.input->num_vertices);
    replacement->ImportSets(*cluster_, ckpt_edges_kind_, SetKind::kEdges);
    replacement->ImportSets(*cluster_, ckpt_side_, SetKind::kVertices);
    replacement->ImportSets(*cluster_, UpdatesCkptFor(ckpt_side_), UpdatesFor(next_superstep_));
    if (attach_) {
      attach_(*replacement, ckpt_epoch_);
    }

    GraphMeta meta;
    meta.num_vertices = spec_.input->num_vertices;
    meta.weighted = spec_.input->weighted;
    meta.edge_wire_bytes = spec_.input->edge_wire_bytes();
    meta.vertex_id_wire_bytes = spec_.input->vertex_id_wire_bytes();
    RunResult<P> run = replacement->Resume(meta, ckpt_global_);
    cluster_ = std::move(replacement);  // the old donor dies here, post-import
    return run;
  }

  P prog_;
  Finalize finalize_;
  AttachHook attach_;

  std::unique_ptr<Cluster<P>> cluster_;  // previous slice = next slice's donor
  uint64_t next_superstep_ = 0;
  typename P::GlobalState ckpt_global_{};
  SetKind ckpt_side_ = SetKind::kCheckpointA;
  SetKind ckpt_edges_kind_ = SetKind::kEdges;
  uint64_t ckpt_epoch_ = 0;
  std::vector<typename P::OutputRecord> carried_outputs_;
  bool done_ = false;
  AlgoResult result_;
};

template <GasProgram P, typename Finalize>
std::unique_ptr<JobExecution> MakeTypedJobExecution(JobSpec spec, P prog, Finalize finalize) {
  return std::make_unique<TypedJobExecution<P, Finalize>>(std::move(spec), std::move(prog),
                                                          std::move(finalize));
}

}  // namespace chaos

#endif  // CHAOS_CORE_JOB_EXECUTION_H_
