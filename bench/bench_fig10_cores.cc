// Figure 10: sensitivity to CPU core count (p = 8, 12, 16), BFS and PR,
// weak scaling, normalized to the 1-machine/16-core runtime. Paper: the
// system performs adequately even with half the cores — a minimum is needed
// only to sustain network throughput.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig10, "Figure 10: sensitivity to CPU core count") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::printf("== Figure 10: weak scaling with p CPU cores, normalized to m=1/p=16 ==\n");
  PrintHeader({"algo/cores", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  for (const std::string name : {"bfs", "pagerank"}) {
    double base16 = 0.0;
    for (const int cores : {16, 12, 8}) {
      PrintCell(name + " p=" + std::to_string(cores));
      int step = 0;
      for (const int m : MachineSweep()) {
        InputGraph raw =
            BenchRmat(base + static_cast<uint32_t>(step), false, seed);
        InputGraph prepared = PrepareInput(name, raw);
        ClusterConfig cfg = BenchClusterConfig(prepared, m, seed);
        cfg.cost.cores = cores;
        auto result = RunChaosAlgorithm(name, prepared, cfg);
        const double seconds = result.metrics.total_seconds();
        if (m == 1 && cores == 16) {
          base16 = seconds;
        }
        PrintCell(base16 > 0 ? seconds / base16 : 0.0);
        ++step;
      }
      EndRow();
    }
  }
  std::printf("\npaper: adequate performance with half the cores (curves nearly overlap)\n");
  return 0;
}
