// Tests for edge-list file I/O: binary and text round-trips, format
// detection, corruption handling.
#include <gtest/gtest.h>

#include <fstream>

#include "graph/edge_list_io.h"
#include "graph/generators.h"

namespace chaos {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(EdgeListBinaryTest, RoundTripUnweighted) {
  InputGraph g = GenerateUniformRandom(500, 2000, false, 7);
  const std::string path = TempPath("roundtrip_unweighted.bin");
  std::string error;
  ASSERT_TRUE(SaveEdgeListBinary(g, path, &error)) << error;
  auto loaded = LoadEdgeListBinary(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_vertices, g.num_vertices);
  EXPECT_FALSE(loaded->weighted);
  ASSERT_EQ(loaded->edges.size(), g.edges.size());
  for (size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(loaded->edges[i].src, g.edges[i].src);
    EXPECT_EQ(loaded->edges[i].dst, g.edges[i].dst);
  }
}

TEST(EdgeListBinaryTest, RoundTripWeighted) {
  InputGraph g = GenerateUniformRandom(300, 1000, true, 9);
  const std::string path = TempPath("roundtrip_weighted.bin");
  std::string error;
  ASSERT_TRUE(SaveEdgeListBinary(g, path, &error)) << error;
  auto loaded = LoadEdgeListBinary(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->weighted);
  for (size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded->edges[i].weight, g.edges[i].weight);
  }
}

TEST(EdgeListBinaryTest, CompactFormatSizeOnDisk) {
  InputGraph g = GenerateUniformRandom(100, 1000, false, 11);
  const std::string path = TempPath("compact_size.bin");
  std::string error;
  ASSERT_TRUE(SaveEdgeListBinary(g, path, &error));
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  // Header (32) + 1000 edges x 8 bytes (compact unweighted, paper §8).
  EXPECT_EQ(static_cast<uint64_t>(in.tellg()), 32u + 1000u * 8u);
}

TEST(EdgeListBinaryTest, RejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  std::ofstream(path) << "this is not an edge list";
  std::string error;
  EXPECT_FALSE(LoadEdgeListBinary(path, &error).has_value());
  EXPECT_NE(error.find("not a Chaos edge-list"), std::string::npos);
}

TEST(EdgeListBinaryTest, RejectsTruncated) {
  InputGraph g = GenerateUniformRandom(100, 100, false, 13);
  const std::string path = TempPath("truncated.bin");
  std::string error;
  ASSERT_TRUE(SaveEdgeListBinary(g, path, &error));
  // Chop the file mid-record.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() - 5);
  EXPECT_FALSE(LoadEdgeListBinary(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(EdgeListBinaryTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(LoadEdgeListBinary(TempPath("does_not_exist.bin"), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(EdgeListTextTest, RoundTrip) {
  InputGraph g = GenerateUniformRandom(200, 800, true, 15);
  const std::string path = TempPath("roundtrip.txt");
  std::string error;
  ASSERT_TRUE(SaveEdgeListText(g, path, &error)) << error;
  auto loaded = LoadEdgeListText(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->weighted);
  ASSERT_EQ(loaded->edges.size(), g.edges.size());
  for (size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(loaded->edges[i].src, g.edges[i].src);
    EXPECT_EQ(loaded->edges[i].dst, g.edges[i].dst);
    EXPECT_NEAR(loaded->edges[i].weight, g.edges[i].weight, 1e-4);
  }
}

TEST(EdgeListTextTest, SnapStyleWithComments) {
  const std::string path = TempPath("snap.txt");
  std::ofstream(path) << "# Directed graph\n% another comment style\n0 1\n1 2\n\n2 0\n";
  std::string error;
  auto loaded = LoadEdgeListText(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_vertices, 3u);
  EXPECT_EQ(loaded->edges.size(), 3u);
  EXPECT_FALSE(loaded->weighted);
}

TEST(EdgeListTextTest, MixedWeightColumns) {
  const std::string path = TempPath("mixed.txt");
  std::ofstream(path) << "0 1 2.5\n1 2\n";
  std::string error;
  auto loaded = LoadEdgeListText(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->weighted);  // any weighted line makes the graph weighted
  EXPECT_FLOAT_EQ(loaded->edges[0].weight, 2.5f);
  EXPECT_FLOAT_EQ(loaded->edges[1].weight, 1.0f);
}

TEST(EdgeListTextTest, MalformedLineReportsLineNumber) {
  const std::string path = TempPath("bad.txt");
  std::ofstream(path) << "0 1\nnot numbers\n";
  std::string error;
  EXPECT_FALSE(LoadEdgeListText(path, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos);
}

TEST(EdgeListTextTest, EmptyFileIsEmptyGraph) {
  const std::string path = TempPath("empty.txt");
  std::ofstream(path) << "# nothing here\n";
  std::string error;
  auto loaded = LoadEdgeListText(path, &error);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices, 0u);
  EXPECT_TRUE(loaded->edges.empty());
}

}  // namespace
}  // namespace chaos
