// Evolving-graph driver (PR 8): binds a MutationLog to a cluster run.
//
// An evolving run is ONE continuous cluster run over a sequence of mutation
// epochs. Each time the algorithm converges, the barrier coordinator asks
// the attached MutationFeed for the next epoch's delta (planned here, on
// the host, against the engine's own converged vertex states), the engines
// apply it crash-atomically (engine_core.h ApplyMutationStage), and the run
// continues from the reseeded state instead of reporting done. The run only
// finishes after the last epoch's re-convergence, so the final values are
// the fixed point of the fully mutated graph.
//
// The EvolvingController owns everything host-side: the deterministic
// MutationLog, the raw graph as of the last applied epoch, and the planner
// closure that (1) applies the next raw batch, (2) re-prepares the graph,
// (3) computes warm-start seeds from the converged states (incremental.h) —
// or fresh InitVertex seeds for the full-recompute baseline — and (4) bins
// the complete post-batch prepared edge list by partition for the engines'
// re-bin stage. Recovery and preemption re-attach the controller at the
// checkpoint's epoch: current_raw rewinds via MutationLog::GraphAfter and
// the feed replays every epoch that was not durably committed.
#ifndef CHAOS_ALGORITHMS_EVOLVING_H_
#define CHAOS_ALGORITHMS_EVOLVING_H_

#include <algorithm>
#include <cstring>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/incremental.h"
#include "algorithms/runner.h"
#include "core/cluster.h"
#include "core/job_spec.h"
#include "core/mutation_feed.h"
#include "graph/mutation_log.h"

namespace chaos {

// Bounded-probe default for callers that want a capped WCC connectivity
// check (tests exercise both regimes). The controller itself follows
// MutationSchedule::wcc_connectivity_budget: 0 = exhaustive, which is free
// in simulated time (planning is host-side) and keeps giant components
// from re-flooding on every intra-component delete.
inline constexpr uint64_t kWccConnectivityBudget = 4096;

template <GasProgram P>
class EvolvingController {
 public:
  using VState = typename P::VertexState;

  EvolvingController(P prog, std::string algorithm, const InputGraph& raw,
                     const MutationSchedule& sched)
      : prog_(std::move(prog)),
        algorithm_(std::move(algorithm)),
        incremental_(sched.incremental),
        wcc_budget_(sched.wcc_connectivity_budget),
        log_(raw, sched.log),
        current_raw_(raw),
        initial_prepared_(PrepareInput(algorithm_, raw)) {
    CHAOS_CHECK_MSG(algorithm_ == "bfs" || algorithm_ == "sssp" || algorithm_ == "wcc",
                    "evolving mode supports bfs/sssp/wcc, got " + algorithm_);
  }

  // The epoch-0 prepared graph the cluster ingests (JobSpec::input stays RAW
  // in mutation mode; preparation happens here, per epoch).
  const InputGraph& initial_prepared() const { return initial_prepared_; }
  const MutationLog& log() const { return log_; }
  MutationFeed* feed() { return &feed_; }

  // Binds the feed's planner to `cluster` with epochs [0, start_epoch)
  // already durably baked into the state the cluster holds: 0 for a fresh
  // run, RunResult::checkpoint_epoch when resuming from a checkpoint. Must
  // run before Run/Resume; the controller must outlive the cluster's run.
  void Attach(Cluster<P>* cluster, uint64_t start_epoch) {
    CHAOS_CHECK_LE(start_epoch, log_.num_batches());
    current_raw_ = log_.GraphAfter(start_epoch);
    feed_.Configure(log_.num_batches(),
                    [this, cluster](uint64_t epoch) { return Plan(cluster, epoch); });
    feed_.SkipTo(start_epoch);
    cluster->AttachMutations(&feed_);
  }

 private:
  // Planned at the convergence barrier, host-side (zero simulated time; the
  // engines charge the data movement when they apply the delta).
  MutationDelta Plan(Cluster<P>* cluster, uint64_t epoch) {
    const MutationBatch& batch = log_.batch(epoch);
    const InputGraph old_prepared = PrepareInput(algorithm_, current_raw_);
    InputGraph new_raw = current_raw_;
    MutationLog::Apply(&new_raw, batch);
    const InputGraph new_prepared = PrepareInput(algorithm_, new_raw);

    MutationDelta delta;
    delta.vertex_state_bytes = sizeof(VState);
    delta.edges_inserted = batch.inserts.size();
    delta.edges_deleted = batch.deletes.size();

    std::vector<VState> seeds;
    SeedStats stats;
    if (incremental_) {
      // Warm-start from the engine's own converged states (read host-side
      // at the barrier instant — every machine is quiescent).
      cluster->HostReadStates(SetKind::kVertices, &seeds);
      stats = ComputeSeeds(old_prepared, new_prepared, batch, &seeds);
    } else {
      // Full-recompute baseline: fresh InitVertex seeds, identical apply
      // cost — the comparison isolates re-convergence work.
      const auto global = prog_.InitGlobal(new_prepared.num_vertices);
      seeds.reserve(new_prepared.num_vertices);
      for (VertexId v = 0; v < new_prepared.num_vertices; ++v) {
        seeds.push_back(prog_.InitVertex(global, v, 0));
      }
      stats.resets = new_prepared.num_vertices;
      stats.frontier = new_prepared.num_vertices;
    }
    delta.seed_states.resize(seeds.size() * sizeof(VState));
    std::memcpy(delta.seed_states.data(), seeds.data(), delta.seed_states.size());
    delta.frontier = stats.frontier;
    delta.resets = stats.resets;

    // The COMPLETE post-batch prepared edge list, binned by the partition
    // the engines stream (PartitionOf(src), edge-list order): the apply
    // stage replaces each partition's edge set wholesale, so chunk layout
    // is host-determined and independent of fetch arrival order.
    const Partitioning& parts = cluster->partitioning();
    delta.part_edges.assign(parts.num_partitions(), {});
    for (const Edge& e : new_prepared.edges) {
      delta.part_edges[parts.PartitionOf(e.src)].push_back(e);
    }

    current_raw_ = std::move(new_raw);
    return delta;
  }

  SeedStats ComputeSeeds(const InputGraph& old_prepared, const InputGraph& new_prepared,
                         const MutationBatch& batch, std::vector<VState>* seeds) const {
    // Per-arc (prepared) images of the batch: undirected preparation turns
    // each raw edge into two forward arcs.
    auto prepared_arcs = [](const std::vector<Edge>& raw) {
      std::vector<Edge> arcs;
      arcs.reserve(raw.size() * 2);
      for (const Edge& e : raw) {
        arcs.push_back(Edge{e.src, e.dst, e.weight, kEdgeForward});
        arcs.push_back(Edge{e.dst, e.src, e.weight, kEdgeForward});
      }
      return arcs;
    };
    const std::vector<Edge> del_arcs = prepared_arcs(batch.deletes);
    const std::vector<Edge> ins_arcs = prepared_arcs(batch.inserts);
    if constexpr (std::is_same_v<P, IncBfsProgram>) {
      return SeedIncBfs(old_prepared, new_prepared, del_arcs, ins_arcs,
                        prog_.InitGlobal(0).source, seeds);
    } else if constexpr (std::is_same_v<P, SsspProgram>) {
      return SeedSssp(old_prepared, new_prepared, del_arcs, ins_arcs,
                      prog_.InitGlobal(0).source, seeds);
    } else if constexpr (std::is_same_v<P, WccProgram>) {
      // Budget 0 = exhaustive: one traversal per arc fully explores any
      // component, so every intact deletion is certified.
      const uint64_t budget =
          wcc_budget_ != 0 ? wcc_budget_ : new_prepared.edges.size() + 1;
      return SeedWcc(new_prepared, batch.deletes, ins_arcs, budget, seeds);
    } else {
      CHAOS_CHECK_MSG(false, "no incremental seeder for this program");
      return SeedStats{};
    }
  }

  P prog_;
  std::string algorithm_;
  bool incremental_;
  uint64_t wcc_budget_;  // 0 = exhaustive probe
  MutationLog log_;
  InputGraph current_raw_;   // raw graph as of the last planned epoch
  InputGraph initial_prepared_;
  MutationFeed feed_;
};

// Evolving twin of core/recovery.h RunWithRecovery: runs the full mutation
// schedule; on a machine-failure abort, re-provisions, imports the last
// committed checkpoint — including WHICH edge side (kEdges/kEdgesB) was
// live at that commit, relabeled back to kEdges for the replacement — and
// rewinds the controller so every epoch after checkpoint_epoch replays.
// With no crash this is just the plain evolving run.
template <GasProgram P>
RunResult<P> RunEvolvingWithRecovery(const ClusterConfig& config, P prog, const InputGraph& raw,
                                     const std::string& algorithm,
                                     const MutationSchedule& sched,
                                     const RecoveryOptions& opts = {},
                                     RecoveryReport* report = nullptr) {
  EvolvingController<P> ctrl(prog, algorithm, raw, sched);
  RecoveryReport rep;
  rep.machines_after = config.machines;

  Cluster<P> cluster(config, prog);
  ctrl.Attach(&cluster, 0);
  RunResult<P> first = cluster.Run(ctrl.initial_prepared());
  rep.end_to_end_time = first.metrics.total_time;
  if (!first.crashed) {
    if (report != nullptr) {
      *report = rep;
    }
    return first;
  }

  rep.crash_detected = true;
  rep.crashed_run_time = first.metrics.total_time;
  rep.crash_superstep = first.supersteps > 0 ? first.supersteps - 1 : 0;

  ClusterConfig rcfg = config;
  rcfg.faults = FaultSchedule{};
  rcfg.crash_after_superstep = -1;
  if (opts.replacement_machines > 0 && opts.replacement_machines != config.machines) {
    rcfg.machines = opts.replacement_machines;
    rcfg.profiles.clear();
  }
  rep.machines_after = rcfg.machines;

  const InputGraph& prepared0 = ctrl.initial_prepared();
  GraphMeta meta;
  meta.num_vertices = prepared0.num_vertices;
  meta.weighted = prepared0.weighted;
  meta.edge_wire_bytes = prepared0.edge_wire_bytes();
  meta.vertex_id_wire_bytes = prepared0.vertex_id_wire_bytes();

  RunResult<P> second;
  if (first.has_checkpoint) {
    rcfg.resume = true;
    rcfg.resume_superstep = first.checkpoint_superstep;
    rep.resume_superstep = first.checkpoint_superstep;
    rep.recovered_from_checkpoint = true;
    Cluster<P> replacement(rcfg, prog);
    replacement.PreparePartitioning(meta.num_vertices);
    const SetKind usnap = UpdatesCkptFor(first.checkpoint_side);
    const SetKind resume_updates = UpdatesFor(first.checkpoint_superstep);
    if (rcfg.machines == config.machines) {
      // The committed edge side may be kEdgesB (odd number of applied
      // epochs); the replacement always starts on kEdges. A crash mid-apply
      // leaves partial chunks on the in-flight side — never imported, the
      // checkpoint pins the intact one.
      replacement.ImportSets(cluster, first.checkpoint_edges_kind, SetKind::kEdges);
      replacement.ImportSets(cluster, first.checkpoint_side, SetKind::kVertices);
      replacement.ImportSets(cluster, usnap, resume_updates);
    } else {
      replacement.ImportRepartitioned(cluster, first.checkpoint_side, meta, usnap,
                                      resume_updates, first.checkpoint_edges_kind);
    }
    // Mutations planned after the committed epoch died with the cluster:
    // rewind the raw graph to GraphAfter(checkpoint_epoch) and replay.
    ctrl.Attach(&replacement, first.checkpoint_epoch);
    second = replacement.Resume(meta, first.checkpoint_global);
    auto committed = cluster.OutputsBefore(first.checkpoint_superstep);
    second.outputs.insert(second.outputs.begin(), std::make_move_iterator(committed.begin()),
                          std::make_move_iterator(committed.end()));
  } else {
    rcfg.resume = false;
    Cluster<P> replacement(rcfg, std::move(prog));
    ctrl.Attach(&replacement, 0);
    second = replacement.Run(ctrl.initial_prepared());
  }

  const bool died_in_preprocess = first.metrics.preprocess_time == 0;
  rep.lost_work_supersteps =
      !died_in_preprocess && rep.crash_superstep >= rep.resume_superstep
          ? rep.crash_superstep - rep.resume_superstep + 1
          : 0;
  const auto& times = second.metrics.superstep_end_times;
  if (died_in_preprocess) {
    rep.time_to_recover = second.metrics.preprocess_time;
  } else if (rep.crash_superstep < rep.resume_superstep) {
    rep.time_to_recover = 0;
  } else if (times.empty()) {
    rep.time_to_recover = second.metrics.total_time;
  } else {
    const uint64_t idx = rep.crash_superstep - rep.resume_superstep;
    rep.time_to_recover = times[std::min<uint64_t>(idx, times.size() - 1)];
  }
  rep.end_to_end_time = rep.crashed_run_time + second.metrics.total_time;

  second.metrics.recovered = true;
  second.metrics.lost_work_supersteps = rep.lost_work_supersteps;
  second.metrics.time_to_recover = rep.time_to_recover;
  second.metrics.crashed_run_time = rep.crashed_run_time;
  if (report != nullptr) {
    *report = rep;
  }
  return second;
}

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_EVOLVING_H_
