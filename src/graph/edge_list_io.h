// Edge-list file I/O: the paper's input format is an unsorted edge list of
// (source, target[, weight]) records (§8). Two on-disk encodings:
//
//  * Binary: a small header (magic, version, vertex count, flags) followed
//    by packed records in the paper's compact (4-byte) or non-compact
//    (8-byte) format, chosen by vertex count exactly as the paper does.
//  * Text: one edge per line, "src dst [weight]", '#' comments — the SNAP /
//    webgraph-dump convention, so published datasets load directly.
#ifndef CHAOS_GRAPH_EDGE_LIST_IO_H_
#define CHAOS_GRAPH_EDGE_LIST_IO_H_

#include <optional>
#include <string>

#include "graph/types.h"

namespace chaos {

// Writes `graph` in the binary format. Returns false and fills `error` on
// I/O failure.
bool SaveEdgeListBinary(const InputGraph& graph, const std::string& path, std::string* error);

// Loads a binary edge list written by SaveEdgeListBinary.
std::optional<InputGraph> LoadEdgeListBinary(const std::string& path, std::string* error);

// Writes "src dst [weight]" lines.
bool SaveEdgeListText(const InputGraph& graph, const std::string& path, std::string* error);

// Loads a text edge list. Vertex ids may be arbitrary (non-contiguous);
// num_vertices becomes max id + 1. Lines starting with '#' or '%' are
// comments. A third column, when present on any line, makes the graph
// weighted (weight defaults to 1 elsewhere).
std::optional<InputGraph> LoadEdgeListText(const std::string& path, std::string* error);

}  // namespace chaos

#endif  // CHAOS_GRAPH_EDGE_LIST_IO_H_
