// Graph input types and the paper's on-storage record formats.
//
// Input to a computation is an unsorted edge list (paper §8). In memory each
// edge is a POD record; on (simulated) storage and on the wire it is modeled
// at the paper's sizes: compact format (4-byte vertex ids, graphs with fewer
// than 2^32 vertices) or non-compact (8-byte ids), each plus an optional
// 4-byte weight.
#ifndef CHAOS_GRAPH_TYPES_H_
#define CHAOS_GRAPH_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace chaos {

using VertexId = uint64_t;

// Edge flags (used by algorithms that need both directions, e.g. SCC).
enum EdgeFlags : uint32_t {
  kEdgeForward = 0,
  kEdgeReverse = 1,  // this record is the reverse image of an input edge
};

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;
  uint32_t flags = kEdgeForward;
};
static_assert(sizeof(Edge) == 24, "Edge must stay a compact POD");

struct InputGraph {
  uint64_t num_vertices = 0;
  bool weighted = false;
  std::vector<Edge> edges;

  uint64_t num_edges() const { return edges.size(); }
  // Paper §8: graphs with < 2^32 vertices use the 4-byte compact format.
  bool compact() const { return num_vertices < (1ull << 32); }
  // Modeled on-storage bytes for one edge record. The paper's formats use
  // 4 bytes per vertex id and per weight (compact) or 8 bytes (non-compact).
  uint64_t edge_wire_bytes() const {
    const uint64_t field = compact() ? 4 : 8;
    return 2 * field + (weighted ? field : 0);
  }
  // Modeled on-storage bytes of the whole input edge list.
  uint64_t input_wire_bytes() const { return num_edges() * edge_wire_bytes(); }
  // Modeled bytes of one vertex id on the wire.
  uint64_t vertex_id_wire_bytes() const { return compact() ? 4 : 8; }
};

// Appends the reverse of every edge: used to turn a directed input into the
// undirected graph the first five benchmark algorithms require (§8).
InputGraph MakeUndirected(const InputGraph& g);

// Appends a kEdgeReverse-flagged mirror of every edge, for algorithms that
// traverse both directions of a directed graph (SCC backward phase, BP).
InputGraph MakeBidirected(const InputGraph& g);

// Out-degree per vertex (counting only kEdgeForward records).
std::vector<uint32_t> OutDegrees(const InputGraph& g);

// Basic structural validation: endpoints within range, no self-check beyond
// that. Returns false and fills `error` on failure.
bool ValidateGraph(const InputGraph& g, std::string* error);

}  // namespace chaos

#endif  // CHAOS_GRAPH_TYPES_H_
