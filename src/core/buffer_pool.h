// Per-machine buffer pool (paper §3): turns ClusterConfig::memory_budget
// from an advisory partition-sizing scalar into an enforced, contended
// simulated resource.
//
// Every sizable in-memory buffer a machine holds — loaded vertex-state and
// accumulator batches, buffered fetch/write chunks, storage-engine staging,
// parked stolen accumulators, checkpoint snapshots — acquires a Lease for
// its byte footprint. While total resident bytes fit the budget, admission
// is free. When an acquisition pushes the machine over budget, the pool
// evicts pages of the coldest resident leases (strict last-touch FIFO,
// oldest first, partially if needed) to the machine's storage device: the
// evicted bytes are charged as a spill WRITE on the same FifoResource that
// serves chunk I/O, so memory pressure queues behind — and delays — real
// traffic. Touching a lease whose pages were evicted faults them back in
// (a spill READ) and may evict someone else. Releasing a lease drops its
// pages, resident and spilled alike, with no I/O.
//
// Properties:
//  * Deadlock-free: the pool never waits for another lease to be released,
//    only for the device FIFO, which always drains. Pressure surfaces as
//    simulated stall time and extra simulated I/O volume, never as a stuck
//    protocol.
//  * Deterministic: admission order is coroutine arrival order, eviction
//    order is the last-touch list — both fixed by the (seeded, single-
//    threaded) simulation, so runs are byte-identical across host thread
//    counts (--jobs 1 vs N).
//  * Monotone: for a fixed event sequence, total spill traffic is the
//    positive variation of max(0, used - budget), which is pointwise
//    non-decreasing as the budget shrinks — the measured backbone of the
//    bench_fig_memory degradation sweep (§9.3's scale-free-I/O story).
//
// A budget of 0 disables enforcement: the pool still accounts (peak bytes)
// but never spills — the "unconstrained RAM" baseline.
#ifndef CHAOS_CORE_BUFFER_POOL_H_
#define CHAOS_CORE_BUFFER_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "sim/resource.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

class BufferPool {
 public:
  // `device` is the machine's storage FifoResource; spill traffic is served
  // FIFO behind regular chunk reads/writes at the device's bandwidth and
  // access latency. `budget_bytes` 0 = unlimited (accounting only).
  BufferPool(Simulator* sim, FifoResource* device, double bandwidth_bps,
             TimeNs access_latency, uint64_t budget_bytes)
      : sim_(sim),
        device_(device),
        bandwidth_bps_(bandwidth_bps),
        access_latency_(access_latency),
        budget_(budget_bytes) {
    metrics_.budget_bytes = budget_bytes;
  }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Move-only RAII handle for one buffer's pages. Destruction releases.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept : pool_(other.pool_), id_(other.id_) {
      other.pool_ = nullptr;
      other.id_ = 0;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Reset();
        pool_ = other.pool_;
        id_ = other.id_;
        other.pool_ = nullptr;
        other.id_ = 0;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Reset(); }

    bool active() const { return pool_ != nullptr; }
    void Reset() {
      if (pool_ != nullptr) {
        pool_->Release(id_);
        pool_ = nullptr;
        id_ = 0;
      }
    }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, uint64_t id) : pool_(pool), id_(id) {}
    BufferPool* pool_ = nullptr;
    uint64_t id_ = 0;
  };

  // Admits `bytes` of buffer pages, evicting the coldest leases when over
  // budget. Completes after any spill write has been served by the device.
  Task<Lease> Acquire(uint64_t bytes);

  // Faults the lease's evicted pages back in (device read; may evict other
  // leases) and marks it most-recently-used. No-op while fully resident.
  Task<> Touch(const Lease& lease);

  // ---- Inspection (tests, metrics extraction).
  uint64_t budget() const { return budget_; }
  bool enforced() const { return budget_ > 0; }
  uint64_t used_bytes() const { return resident_ + spilled_; }
  uint64_t resident_bytes() const { return resident_; }
  uint64_t spilled_bytes() const { return spilled_; }
  uint64_t lease_resident_bytes(const Lease& lease) const;
  uint64_t lease_spilled_bytes(const Lease& lease) const;
  const PoolMetrics& metrics() const { return metrics_; }

 private:
  friend class Lease;

  struct Slot {
    uint64_t id = 0;
    uint64_t resident = 0;
    uint64_t spilled = 0;
  };

  void Release(uint64_t id);
  const Slot* Find(uint64_t id) const;
  // Evicts coldest-first (slots_ front) until resident_ <= budget_; the
  // caller charges the returned byte count as one spill write.
  uint64_t EvictToBudget();
  Task<> ChargeSpill(uint64_t bytes);

  Simulator* sim_;
  FifoResource* device_;
  double bandwidth_bps_;
  TimeNs access_latency_;
  uint64_t budget_;
  uint64_t resident_ = 0;
  uint64_t spilled_ = 0;
  uint64_t next_id_ = 1;
  std::vector<Slot> slots_;  // last-touch order: front = coldest
  PoolMetrics metrics_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_BUFFER_POOL_H_
