#include "net/network.h"

#include <utility>

namespace chaos {

NetworkConfig NetworkConfig::FortyGigE() {
  NetworkConfig c;
  c.nic_bandwidth_bps = 5e9;  // 40 Gbit/s
  c.one_way_latency = 50 * kNsPerUs;
  return c;
}

NetworkConfig NetworkConfig::OneGigE() {
  NetworkConfig c;
  c.nic_bandwidth_bps = 1.25e8;  // 1 Gbit/s
  c.one_way_latency = 50 * kNsPerUs;
  return c;
}

Network::Network(Simulator* sim, int machines, const NetworkConfig& config)
    : sim_(sim), machines_(machines), config_(config) {
  CHAOS_CHECK_GT(machines, 0);
  links_.resize(static_cast<size_t>(machines));
  for (int m = 0; m < machines; ++m) {
    links_[static_cast<size_t>(m)].up =
        std::make_unique<FifoResource>(sim, "nic-up-" + std::to_string(m));
    links_[static_cast<size_t>(m)].down =
        std::make_unique<FifoResource>(sim, "nic-down-" + std::to_string(m));
    links_[static_cast<size_t>(m)].bandwidth_bps = config.nic_bandwidth_bps;
  }
}

uint64_t Network::total_bytes() const {
  uint64_t total = 0;
  for (const auto& link : links_) {
    total += link.bytes_sent;
  }
  return total;
}

MessageBus::MessageBus(Simulator* sim, Network* network) : sim_(sim), net_(network) {
  inboxes_.reserve(static_cast<size_t>(network->machines()) * kNumServices);
  for (int m = 0; m < network->machines(); ++m) {
    for (int s = 0; s < kNumServices; ++s) {
      inboxes_.push_back(std::make_unique<SimQueue<Message>>(sim));
    }
  }
}

SimQueue<Message>& MessageBus::Inbox(MachineId machine, int service) {
  CHAOS_CHECK(machine >= 0 && machine < net_->machines());
  CHAOS_CHECK(service >= 0 && service < kNumServices);
  return *inboxes_[static_cast<size_t>(machine) * kNumServices + static_cast<size_t>(service)];
}

void MessageBus::Deliver(Message m) {
  ++delivered_;
  if (m.is_response) {
    auto it = pending_.find(m.rpc_id);
    CHAOS_CHECK_MSG(it != pending_.end(),
                    "response for unknown rpc_id " + std::to_string(m.rpc_id));
    PendingCall* call = it->second;
    pending_.erase(it);
    call->response = std::move(m);
    call->ready = true;
    if (call->waiter) {
      sim_->Resume(call->waiter);
    }
    return;
  }
  Inbox(m.dst, m.service).Push(std::move(m));
}

internal::DetachedTask MessageBus::FinishRemote(Message m, TimeNs extra_latency) {
  co_await sim_->Delay(extra_latency);
  FifoResource& down = net_->Downlink(m.dst);
  TimeNs service = net_->TxTime(m.dst, m.wire_bytes);
  const NetworkConfig& cfg = net_->config();
  if (cfg.model_incast && down.Backlog(sim_->now()) > cfg.incast_backlog_threshold) {
    service += cfg.incast_penalty;
    net_->NoteIncast();
  }
  co_await down.Acquire(service);
  net_->NoteReceived(m.dst, m.wire_bytes);
  Deliver(std::move(m));
}

Task<> MessageBus::Send(Message m) {
  CHAOS_CHECK(m.dst >= 0 && m.dst < net_->machines());
  if (m.src == m.dst) {
    // Same machine: no NIC involvement, just IPC latency.
    co_await sim_->Delay(net_->config().local_latency);
    Deliver(std::move(m));
    co_return;
  }
  net_->NoteSent(m.src, m.wire_bytes);
  co_await net_->Uplink(m.src).Acquire(net_->TxTime(m.src, m.wire_bytes));
  // Propagation and receiver-side work continue without blocking the sender.
  FinishRemote(std::move(m), net_->config().one_way_latency);
}

Task<Message> MessageBus::Call(Message request) {
  CHAOS_CHECK_EQ(request.rpc_id, 0u);
  CHAOS_CHECK(!request.is_response);
  request.rpc_id = next_rpc_id_++;
  PendingCall call;
  pending_.emplace(request.rpc_id, &call);
  co_await Send(std::move(request));
  struct ResponseAwaiter {
    PendingCall* call;
    bool await_ready() const noexcept { return call->ready; }
    void await_suspend(std::coroutine_handle<> h) { call->waiter = h; }
    void await_resume() const noexcept {}
  };
  co_await ResponseAwaiter{&call};
  CHAOS_CHECK(call.ready);
  co_return std::move(call.response);
}

void MessageBus::PostReply(const Message& request, uint32_t type, uint64_t wire_bytes,
                           std::any body) {
  CHAOS_CHECK_NE(request.rpc_id, 0u);
  Message response;
  response.src = request.dst;
  response.dst = request.src;
  response.service = request.service;
  response.rpc_id = request.rpc_id;
  response.is_response = true;
  response.type = type;
  response.wire_bytes = wire_bytes;
  response.body = std::move(body);
  PostSend(std::move(response));
}

}  // namespace chaos
